// Command tracegen materialises suite workloads into binary trace
// files (the "CHTR" format internal/trace defines), so runs can be
// replayed or inspected without the generators.
//
//	tracegen -workload db-000 -instr 5000000 -o db-000.chtr
//	tracegen -all -n 16 -instr 1000000 -dir traces/
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"github.com/chirplab/chirp/internal/engine"
	"github.com/chirplab/chirp/internal/trace"
	"github.com/chirplab/chirp/internal/workloads"
	"github.com/chirplab/chirp/internal/workloads/spec"
)

func main() { os.Exit(run()) }

func run() int {
	workload := flag.String("workload", "", "suite workload to materialise")
	workloadSpec := flag.String("workload-spec", "", "workload spec (registry name or JSON file); -workload then names one of its compiled workloads, -all materialises them all")
	seed := flag.Uint64("seed", 0, "master seed for -workload-spec; overrides the spec document's seed")
	out := flag.String("o", "", "output file (default <workload>.chtr)")
	all := flag.Bool("all", false, "materialise a suite prefix instead of one workload")
	n := flag.Int("n", 8, "suite prefix size with -all")
	dir := flag.String("dir", ".", "output directory with -all")
	instr := flag.Uint64("instr", 1_000_000, "instructions per trace")
	workers := flag.Int("workers", 0, "parallel trace writers with -all (0 = GOMAXPROCS)")
	checkpoint := flag.String("checkpoint", "", "JSONL checkpoint file with -all; already-written traces are skipped on resume")
	progress := flag.Duration("progress", 0, "print a progress line to stderr at this interval (0 = off)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	flag.Parse()

	seedSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			seedSet = true
		}
	})
	if seedSet && *workloadSpec == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -seed requires -workload-spec")
		return 2
	}
	var compiled *spec.Compiled
	if *workloadSpec != "" {
		s, err := spec.Resolve(*workloadSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			return 2
		}
		compiled, err = spec.Compile(s, spec.Options{Seed: *seed, SeedSet: seedSet})
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			return 2
		}
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	if *cpuprofile != "" {
		stopProf, err := engine.StartCPUProfile(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			return 1
		}
		defer stopProf()
	}

	write := func(w *workloads.Workload, path string) (traceSummary, error) {
		records, instructions, err := trace.WriteFile(path, trace.NewLimit(w.Source(), *instr))
		if err != nil {
			return traceSummary{}, fmt.Errorf("%s: %w", w.Name, err)
		}
		fi, err := os.Stat(path)
		if err != nil {
			return traceSummary{}, err
		}
		return traceSummary{Path: path, Records: records, Instructions: instructions, Bytes: fi.Size()}, nil
	}

	switch {
	case *all:
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			return 1
		}
		cfg := engine.Config{Workers: *workers}
		if *progress > 0 {
			cfg.Sink = engine.NewReporter(os.Stderr, *progress)
		}
		if *checkpoint != "" {
			// A checkpointed row stands in for the file it describes:
			// resume trusts that a recorded trace is already on disk and
			// skips regenerating it.
			meta := fmt.Sprintf("tracegen n=%d instr=%d dir=%s", *n, *instr, *dir)
			ck, err := engine.Open(*checkpoint, meta)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
				return 1
			}
			defer ck.Close()
			cfg.Checkpoint = ck
		}
		ws := workloads.SuiteN(*n)
		if compiled != nil {
			ws = compiled.Workloads()
			if *n > 0 && *n < len(ws) {
				ws = ws[:*n]
			}
		}
		jobs := make([]engine.Job[traceSummary], 0, len(ws))
		for _, w := range ws {
			w := w
			jobs = append(jobs, engine.Job[traceSummary]{
				Key: engine.Key{Workload: w.Name, Policy: "tracegen"},
				Run: func(context.Context) (traceSummary, error) {
					return write(w, filepath.Join(*dir, fileName(w.Name)))
				},
			})
		}
		results, err := engine.Run(ctx, jobs, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			return 1
		}
		for _, s := range results {
			fmt.Printf("%s: %d records, %d instructions, %d bytes\n", s.Path, s.Records, s.Instructions, s.Bytes)
		}
	case *workload != "":
		var w *workloads.Workload
		if compiled != nil {
			w = compiled.ByName(*workload)
		} else {
			w = workloads.ByName(*workload)
		}
		if w == nil {
			fmt.Fprintf(os.Stderr, "tracegen: unknown workload %q\n", *workload)
			return 1
		}
		path := *out
		if path == "" {
			path = fileName(w.Name)
		}
		s, err := write(w, path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			return 1
		}
		fmt.Printf("%s: %d records, %d instructions, %d bytes\n", s.Path, s.Records, s.Instructions, s.Bytes)
	default:
		fmt.Fprintln(os.Stderr, "tracegen: -workload or -all is required")
		return 2
	}
	return 0
}

// fileName maps a workload name to its default trace file name;
// spec-compiled tenant views carry "/" in their names, which must not
// become directories.
func fileName(workload string) string {
	return strings.ReplaceAll(workload, "/", "_") + ".chtr"
}

// traceSummary records one materialised trace; exported fields so it
// survives a JSON checkpoint round-trip.
type traceSummary struct {
	Path         string
	Records      uint64
	Instructions uint64
	Bytes        int64
}
