// Command tracegen materialises suite workloads into binary trace
// files (the "CHTR" format internal/trace defines), so runs can be
// replayed or inspected without the generators.
//
//	tracegen -workload db-000 -instr 5000000 -o db-000.chtr
//	tracegen -all -n 16 -instr 1000000 -dir traces/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/chirplab/chirp/internal/trace"
	"github.com/chirplab/chirp/internal/workloads"
)

func main() {
	workload := flag.String("workload", "", "suite workload to materialise")
	out := flag.String("o", "", "output file (default <workload>.chtr)")
	all := flag.Bool("all", false, "materialise a suite prefix instead of one workload")
	n := flag.Int("n", 8, "suite prefix size with -all")
	dir := flag.String("dir", ".", "output directory with -all")
	instr := flag.Uint64("instr", 1_000_000, "instructions per trace")
	flag.Parse()

	write := func(w *workloads.Workload, path string) {
		records, instructions, err := trace.WriteFile(path, trace.NewLimit(w.Source(), *instr))
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %s: %v\n", w.Name, err)
			os.Exit(1)
		}
		fi, _ := os.Stat(path)
		fmt.Printf("%s: %d records, %d instructions, %d bytes\n", path, records, instructions, fi.Size())
	}

	switch {
	case *all:
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		for _, w := range workloads.SuiteN(*n) {
			write(w, filepath.Join(*dir, w.Name+".chtr"))
		}
	case *workload != "":
		w := workloads.ByName(*workload)
		if w == nil {
			fmt.Fprintf(os.Stderr, "tracegen: unknown workload %q\n", *workload)
			os.Exit(1)
		}
		path := *out
		if path == "" {
			path = w.Name + ".chtr"
		}
		write(w, path)
	default:
		fmt.Fprintln(os.Stderr, "tracegen: -workload or -all is required")
		os.Exit(2)
	}
}
