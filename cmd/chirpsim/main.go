// Command chirpsim simulates one workload (or one trace file) under
// one or more L2 TLB replacement policies and prints MPKI, and — with
// -timing — IPC under the Table II machine.
//
//	chirpsim -workload db-000 -policies lru,srrip,chirp -instr 2000000
//	chirpsim -trace t.chtr -policies lru,chirp -timing -penalty 150
//	chirpsim -workload db-000 -describe   # program model as JSON
//	chirpsim -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/chirplab/chirp/internal/pipeline"
	"github.com/chirplab/chirp/internal/policy"
	"github.com/chirplab/chirp/internal/sim"
	"github.com/chirplab/chirp/internal/stats"
	"github.com/chirplab/chirp/internal/tlb"
	"github.com/chirplab/chirp/internal/trace"
	"github.com/chirplab/chirp/internal/workloads"
)

func main() {
	workload := flag.String("workload", "", "suite workload name (e.g. db-000)")
	traceFile := flag.String("trace", "", "binary trace file (alternative to -workload)")
	policies := flag.String("policies", "lru,random,srrip,ship,ghrp,chirp", "comma-separated policy list")
	instr := flag.Uint64("instr", 2_000_000, "instruction budget")
	timing := flag.Bool("timing", false, "run the full timing model (IPC) instead of TLB-only")
	penalty := flag.Uint64("penalty", 150, "L2 TLB miss penalty in cycles (timing mode)")
	list := flag.Bool("list", false, "list policies and suite workloads, then exit")
	describe := flag.Bool("describe", false, "print the workload's program model as JSON and exit")
	flag.Parse()

	if *describe {
		if *workload == "" {
			fatal("-describe requires -workload")
		}
		w := workloads.ByName(*workload)
		if w == nil {
			fatal("unknown workload %q (try -list)", *workload)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(workloads.Describe(w.Program())); err != nil {
			fatal("%v", err)
		}
		return
	}

	if *list {
		fmt.Println("policies:", strings.Join(sim.PolicyNames(), " "))
		fmt.Println("workloads: the 870-entry suite, named <category>-<index>:")
		fmt.Println("  categories:", strings.Join(workloads.Categories, " "))
		fmt.Println("  e.g. spec-000 … spec-108, db-000 …, crypto-000 …")
		return
	}

	source := func() trace.Source {
		switch {
		case *workload != "":
			w := workloads.ByName(*workload)
			if w == nil {
				fatal("unknown workload %q (try -list)", *workload)
			}
			return trace.NewLimit(w.Source(), *instr)
		case *traceFile != "":
			fs, err := trace.OpenFile(*traceFile)
			if err != nil {
				fatal("%v", err)
			}
			return trace.NewLimit(fs, *instr)
		default:
			fatal("one of -workload or -trace is required (see -list)")
			return nil
		}
	}

	names := strings.Split(*policies, ",")
	var rows [][]string
	var baseMPKI, baseIPC float64
	for i, name := range names {
		name = strings.TrimSpace(name)
		p, err := sim.NewPolicy(name)
		if err != nil {
			fatal("%v", err)
		}
		if *timing {
			m, err := pipeline.New(pipeline.DefaultConfig(*instr, *penalty), p,
				func() tlb.Policy { return policy.NewLRU() })
			if err != nil {
				fatal("%v", err)
			}
			res, err := m.Run(source())
			if err != nil {
				fatal("%s: %v", name, err)
			}
			if i == 0 {
				baseMPKI, baseIPC = res.MPKI, res.IPC
			}
			rows = append(rows, []string{
				name,
				fmt.Sprintf("%.4f", res.MPKI),
				fmt.Sprintf("%+.2f%%", stats.Reduction(baseMPKI, res.MPKI)),
				fmt.Sprintf("%.4f", res.IPC),
				fmt.Sprintf("%+.2f%%", (res.IPC/baseIPC-1)*100),
				fmt.Sprintf("%.3f", res.BranchAccuracy),
			})
		} else {
			res, err := sim.RunTLBOnly(source(), p, sim.DefaultTLBOnlyConfig(*instr))
			if err != nil {
				fatal("%s: %v", name, err)
			}
			if i == 0 {
				baseMPKI = res.MPKI
			}
			rows = append(rows, []string{
				name,
				fmt.Sprintf("%.4f", res.MPKI),
				fmt.Sprintf("%+.2f%%", stats.Reduction(baseMPKI, res.MPKI)),
				fmt.Sprintf("%.3f", res.Efficiency),
				fmt.Sprintf("%.3f", res.TableAccessRate),
			})
		}
	}
	var err error
	if *timing {
		err = stats.Table(os.Stdout, []string{"policy", "MPKI", "vs first", "IPC", "speedup", "branch acc"}, rows)
	} else {
		err = stats.Table(os.Stdout, []string{"policy", "MPKI", "vs first", "efficiency", "table rate"}, rows)
	}
	if err != nil {
		fatal("%v", err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "chirpsim: "+format+"\n", args...)
	os.Exit(1)
}
