// Command chirpsim simulates one workload (or one trace file) under
// one or more L2 TLB replacement policies and prints MPKI, and — with
// -timing — IPC under the Table II machine.
//
//	chirpsim -workload db-000 -policies lru,srrip,chirp -instr 2000000
//	chirpsim -trace t.chtr -policies lru,chirp -timing -penalty 150
//	chirpsim -workload db-000 -describe   # program model as JSON
//	chirpsim -list
//
// With -workload-spec the workload population comes from a declarative
// spec (a registry name like "default", or a JSON file; see
// internal/workloads/spec). A spec with clients compiles to a combined
// multi-tenant workload (the default subject) plus per-tenant views;
// -seed overrides the document's master seed:
//
//	chirpsim -workload-spec examples/specs/multitenant.json -policies lru,chirp
//	chirpsim -workload-spec spec.json -workload mix/tenant-a -seed 7
//	chirpsim -workload-spec spec.json -list
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"github.com/chirplab/chirp/internal/engine"
	"github.com/chirplab/chirp/internal/l2stream"
	"github.com/chirplab/chirp/internal/obs"
	"github.com/chirplab/chirp/internal/pipeline"
	"github.com/chirplab/chirp/internal/policy"
	"github.com/chirplab/chirp/internal/sim"
	"github.com/chirplab/chirp/internal/stats"
	"github.com/chirplab/chirp/internal/tlb"
	"github.com/chirplab/chirp/internal/trace"
	"github.com/chirplab/chirp/internal/workloads"
	"github.com/chirplab/chirp/internal/workloads/spec"
)

func main() { os.Exit(run()) }

func run() int {
	workload := flag.String("workload", "", "suite workload name (e.g. db-000)")
	workloadSpec := flag.String("workload-spec", "", "workload spec: a built-in registry name (e.g. \"default\") or a JSON spec file; its compiled workloads replace the built-in suite")
	seed := flag.Uint64("seed", 0, "master seed for -workload-spec; overrides the spec document's seed")
	traceFile := flag.String("trace", "", "binary trace file (alternative to -workload)")
	policies := flag.String("policies", "lru,random,srrip,ship,ghrp,chirp", "comma-separated policy list")
	instr := flag.Uint64("instr", 2_000_000, "instruction budget")
	timing := flag.Bool("timing", false, "run the full timing model (IPC) instead of TLB-only")
	penalty := flag.Uint64("penalty", 150, "L2 TLB miss penalty in cycles (timing mode)")
	list := flag.Bool("list", false, "list policies and suite workloads, then exit")
	describe := flag.Bool("describe", false, "print the workload's program model as JSON and exit")
	workers := flag.Int("workers", 0, "parallel policy runs (0 = GOMAXPROCS)")
	l2cache := flag.Int64("l2cache", 0, "L2 event-stream cache budget in MiB for TLB-only runs: the trace is generated and L1-filtered once and replayed per policy (0 = 256 MiB default, negative = disable capture/replay)")
	capturedir := flag.String("capturedir", "", "persistent capture directory: captured L2 event streams are stored here (content-addressed) and reused by later runs in any process sharing the directory")
	capturedirMax := flag.Int64("capturedir-max-bytes", 0, "byte budget for -capturedir: least-recently-used captures (and their derived sidecars) are evicted to stay under it (0 = unbounded)")
	checkpoint := flag.String("checkpoint", "", "JSONL checkpoint file; completed policies are restored, not re-run")
	metricsAddr := flag.String("metrics", "", "serve /metrics (Prometheus), /debug/vars (JSON) and /debug/pprof on this address (e.g. localhost:8080)")
	manifest := flag.String("manifest", "", "append a JSONL run manifest (run identity + per-job metric deltas) to this file")
	progress := flag.Duration("progress", 0, "print a progress line to stderr at this interval (0 = off)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	// Master-seed supremacy needs set-detection, not just a value: an
	// explicit `-seed 0` must still override the document's seed.
	seedSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			seedSet = true
		}
	})
	if seedSet && *workloadSpec == "" {
		fatal("-seed requires -workload-spec (suite workload seeds are part of their identity)")
	}
	var compiled *spec.Compiled
	if *workloadSpec != "" {
		if *traceFile != "" {
			fatal("-workload-spec and -trace are mutually exclusive")
		}
		s, err := spec.Resolve(*workloadSpec)
		if err != nil {
			fatal("%v", err)
		}
		compiled, err = spec.Compile(s, spec.Options{Seed: *seed, SeedSet: seedSet})
		if err != nil {
			fatal("%v", err)
		}
	}
	// lookup resolves a workload name against the compiled spec when
	// one is loaded, the built-in suite otherwise.
	lookup := func(name string) *workloads.Workload {
		if compiled != nil {
			return compiled.ByName(name)
		}
		return workloads.ByName(name)
	}
	// resolve picks the run subject: a named workload, or the spec's
	// combined population when -workload is omitted.
	resolve := func() *workloads.Workload {
		if *workload != "" {
			w := lookup(*workload)
			if w == nil {
				fatal("unknown workload %q (try -list)", *workload)
			}
			return w
		}
		if compiled != nil && compiled.Combined() != nil {
			return compiled.Combined()
		}
		return nil
	}

	if *describe {
		w := resolve()
		if w == nil {
			fatal("-describe requires -workload (or a -workload-spec with clients)")
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(w.Describe()); err != nil {
			fatal("%v", err)
		}
		return 0
	}

	if *list {
		fmt.Println("policies:", strings.Join(sim.PolicyNames(), " "))
		if compiled != nil {
			fmt.Printf("workloads of spec %s (hash %s, seed %d):\n", compiled.Spec.Name, compiled.Hash, compiled.Seed)
			for _, w := range compiled.Workloads() {
				fmt.Printf("  %s (%s, %s)\n", w.Name, w.Category, w.Profile())
			}
			return 0
		}
		fmt.Println("workloads: the 870-entry suite, named <category>-<index>:")
		fmt.Println("  categories:", strings.Join(workloads.Categories, " "))
		fmt.Println("  e.g. spec-000 … spec-108, db-000 …, crypto-000 …")
		fmt.Println("specs: built-in", strings.Join(spec.Names(), " "), "or a JSON file via -workload-spec")
		return 0
	}

	// Validate the flag set before any resources (profile, checkpoint)
	// are open: fatal() bypasses their deferred teardown.
	names := strings.Split(*policies, ",")
	for i, name := range names {
		names[i] = strings.TrimSpace(name)
	}
	factories, err := sim.Factories(names)
	if err != nil {
		fatal("%v", err)
	}
	w := resolve()
	subject := *traceFile
	specHash := ""
	switch {
	case w != nil:
		subject = w.Name
		specHash = w.SpecHash
	case *traceFile != "":
	default:
		fatal("one of -workload, -workload-spec or -trace is required (see -list)")
	}
	openSource := func() (trace.Source, error) {
		if w != nil {
			return trace.NewLimit(w.Source(), *instr), nil
		}
		fs, err := trace.OpenFile(*traceFile)
		if err != nil {
			return nil, err
		}
		return trace.NewLimit(fs, *instr), nil
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	stopProf, err := engine.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chirpsim: %v\n", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "chirpsim: %v\n", err)
		}
	}()
	meta := fmt.Sprintf("chirpsim workload=%s trace=%s spec=%s instr=%d timing=%v penalty=%d",
		subject, *traceFile, specHash, *instr, *timing, *penalty)

	if *metricsAddr != "" {
		bound, stopMetrics, err := obs.Serve(*metricsAddr, obs.Default)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chirpsim: %v\n", err)
			return 1
		}
		defer stopMetrics()
		fmt.Fprintf(os.Stderr, "chirpsim: metrics on http://%s/metrics\n", bound)
	}

	cfg := engine.Config{Workers: *workers}
	var sinks []engine.Sink
	if *progress > 0 {
		sinks = append(sinks, engine.NewReporter(os.Stderr, *progress))
	}
	if *manifest != "" {
		man, err := obs.OpenManifest(*manifest, obs.Default, meta)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chirpsim: %v\n", err)
			return 1
		}
		defer func() {
			if err := man.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "chirpsim: %v\n", err)
			}
		}()
		sinks = append(sinks, engine.ManifestSink(man))
	}
	if len(sinks) > 0 {
		cfg.Sink = engine.MultiSink(sinks...)
	}
	if *checkpoint != "" {
		ck, err := engine.Open(*checkpoint, meta)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chirpsim: %v\n", err)
			return 1
		}
		defer ck.Close()
		cfg.Checkpoint = ck
	}

	// TLB-only runs capture the policy-invariant L2 event stream once
	// and replay it under each policy (the timing model needs the full
	// per-instruction stream, so -timing stays on the direct path).
	var streams *l2stream.Cache
	if !*timing && *l2cache >= 0 {
		if *capturedir != "" {
			streams, err = l2stream.NewPersistent(*l2cache<<20, *capturedir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "chirpsim: %v\n", err)
				return 1
			}
			streams.SetStoreMaxBytes(*capturedirMax)
		} else {
			streams = l2stream.NewCache(*l2cache<<20, "")
		}
		defer streams.Close()
	}

	var results []policyRow
	if streams != nil {
		// Fused TLB-only path: one engine job captures (or loads) the
		// stream and replays every policy's TLB in a single pass over
		// the event view (sim.ReplayMulti). Rows stay in -policies
		// order, so the first policy remains the comparison baseline.
		pf := make([]sim.PolicyFactory, len(factories))
		for i, f := range factories {
			pf[i] = f.New
		}
		jobs := []engine.Job[[]policyRow]{{
			Key: engine.Key{Workload: subject, Policy: strings.Join(names, "+")},
			Run: func(jctx context.Context) ([]policyRow, error) {
				rs, err := sim.RunMulti(jctx, sim.RunSpec{
					Name:     subject,
					SpecHash: specHash,
					Open:     openSource,
					Config:   sim.DefaultTLBOnlyConfig(*instr),
					Cache:    streams,
				}, pf)
				if err != nil {
					return nil, err
				}
				rows := make([]policyRow, len(rs))
				for i, res := range rs {
					rows[i] = policyRow{MPKI: res.MPKI, Efficiency: res.Efficiency, TableRate: res.TableAccessRate}
				}
				return rows, nil
			},
		}}
		grouped, err := engine.Run(ctx, jobs, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chirpsim: %v\n", err)
			return 1
		}
		results = grouped[0]
	} else {
		// One engine job per policy; results stay in -policies order.
		jobs := make([]engine.Job[policyRow], 0, len(factories))
		for _, f := range factories {
			f := f
			jobs = append(jobs, engine.Job[policyRow]{
				Key: engine.Key{Workload: subject, Policy: f.Name},
				Run: func(jctx context.Context) (policyRow, error) {
					if *timing {
						src, err := openSource()
						if err != nil {
							return policyRow{}, err
						}
						m, err := pipeline.New(pipeline.DefaultConfig(*instr, *penalty), f.New(),
							func() tlb.Policy { return policy.NewLRU() })
						if err != nil {
							return policyRow{}, err
						}
						res, err := m.Run(src)
						if err != nil {
							return policyRow{}, err
						}
						return policyRow{MPKI: res.MPKI, IPC: res.IPC, BranchAccuracy: res.BranchAccuracy}, nil
					}
					// Capture/replay is off (negative -l2cache): the direct
					// path runs the full trace per policy.
					res, err := sim.Run(jctx, sim.RunSpec{
						Name:     subject,
						SpecHash: specHash,
						Open:     openSource,
						Policy:   f.New,
						Config:   sim.DefaultTLBOnlyConfig(*instr),
					})
					if err != nil {
						return policyRow{}, err
					}
					return policyRow{MPKI: res.MPKI, Efficiency: res.Efficiency, TableRate: res.TableAccessRate}, nil
				},
			})
		}
		results, err = engine.Run(ctx, jobs, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chirpsim: %v\n", err)
			return 1
		}
	}

	var rows [][]string
	base := results[0]
	for i, res := range results {
		if *timing {
			rows = append(rows, []string{
				names[i],
				fmt.Sprintf("%.4f", res.MPKI),
				fmt.Sprintf("%+.2f%%", stats.Reduction(base.MPKI, res.MPKI)),
				fmt.Sprintf("%.4f", res.IPC),
				fmt.Sprintf("%+.2f%%", (res.IPC/base.IPC-1)*100),
				fmt.Sprintf("%.3f", res.BranchAccuracy),
			})
		} else {
			rows = append(rows, []string{
				names[i],
				fmt.Sprintf("%.4f", res.MPKI),
				fmt.Sprintf("%+.2f%%", stats.Reduction(base.MPKI, res.MPKI)),
				fmt.Sprintf("%.3f", res.Efficiency),
				fmt.Sprintf("%.3f", res.TableRate),
			})
		}
	}
	if *timing {
		err = stats.Table(os.Stdout, []string{"policy", "MPKI", "vs first", "IPC", "speedup", "branch acc"}, rows)
	} else {
		err = stats.Table(os.Stdout, []string{"policy", "MPKI", "vs first", "efficiency", "table rate"}, rows)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "chirpsim: %v\n", err)
		return 1
	}
	return 0
}

// policyRow is one rendered measurement; exported fields so it
// survives a JSON checkpoint round-trip.
type policyRow struct {
	MPKI           float64
	IPC            float64
	Efficiency     float64
	TableRate      float64
	BranchAccuracy float64
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "chirpsim: "+format+"\n", args...)
	os.Exit(1)
}
