// Command chirpexp regenerates the paper's evaluation artifacts: every
// figure and table of §VI plus this reproduction's extensions.
//
//	chirpexp -exp fig7 -n 870 -instr 2000000
//	chirpexp -exp all  -n 128 -instr 1000000
//
// Experiments: fig1 fig2 fig3 fig6 fig7 fig8 fig9 fig10 fig11 table1
// table2, the extensions opt walker baselines mixed consolidated
// prefetch, or all. MPKI experiments default to the full suite; timing
// experiments are much slower, so scale -n down (the shapes stabilise
// quickly).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/chirplab/chirp/internal/engine"
	"github.com/chirplab/chirp/internal/experiments"
	"github.com/chirplab/chirp/internal/l2stream"
	"github.com/chirplab/chirp/internal/obs"
	"github.com/chirplab/chirp/internal/workloads"
	"github.com/chirplab/chirp/internal/workloads/spec"
)

type runner struct {
	name string
	desc string
	run  func(experiments.Options) error
}

func main() { os.Exit(run()) }

func run() int {
	exp := flag.String("exp", "fig7", "experiment id (or comma list, or 'all')")
	n := flag.Int("n", 0, "suite prefix size (0 = full 870-workload suite)")
	workloadSpec := flag.String("workload-spec", "", "workload spec (registry name or JSON file) replacing the built-in suite; -n still selects a prefix of its compiled workloads")
	seed := flag.Uint64("seed", 0, "master seed for -workload-spec; overrides the spec document's seed")
	instr := flag.Uint64("instr", 2_000_000, "instructions per trace")
	penalty := flag.Uint64("penalty", 150, "L2 TLB miss penalty in cycles for timing experiments")
	workers := flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
	l2cache := flag.Int64("l2cache", 0, "L2 event-stream cache budget in MiB, shared across the selected experiments (0 = 256 MiB default, negative = per-experiment caches only)")
	capturedir := flag.String("capturedir", "", "persistent capture directory: captured L2 event streams are stored here (content-addressed) and reused by later runs in any process sharing the directory")
	capturedirMax := flag.Int64("capturedir-max-bytes", 0, "byte budget for -capturedir: least-recently-used captures (and their derived sidecars) are evicted to stay under it (0 = unbounded)")
	checkpoint := flag.String("checkpoint", "", "JSONL checkpoint file: completed (workload, policy) runs are restored from it and new ones appended, so a killed sweep resumes where it stopped")
	metricsAddr := flag.String("metrics", "", "serve /metrics (Prometheus), /debug/vars (JSON) and /debug/pprof on this address (e.g. localhost:8080)")
	manifest := flag.String("manifest", "", "append a JSONL run manifest (run identity + per-job metric deltas) to this file")
	progress := flag.Duration("progress", 0, "print a progress line to stderr at this interval (e.g. 10s; 0 = off)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	seedSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			seedSet = true
		}
	})
	if seedSet && *workloadSpec == "" {
		fmt.Fprintln(os.Stderr, "chirpexp: -seed requires -workload-spec")
		return 2
	}
	var suite []*workloads.Workload
	specLabel := ""
	if *workloadSpec != "" {
		s, err := spec.Resolve(*workloadSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chirpexp: %v\n", err)
			return 2
		}
		compiled, err := spec.Compile(s, spec.Options{Seed: *seed, SeedSet: seedSet})
		if err != nil {
			fmt.Fprintf(os.Stderr, "chirpexp: %v\n", err)
			return 2
		}
		suite = compiled.Workloads()
		specLabel = compiled.Hash
	}

	// Ctrl-C / SIGTERM stop dispatching new simulations, drain the
	// in-flight ones and leave the checkpoint resumable.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	stopProf, err := engine.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chirpexp: %v\n", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "chirpexp: %v\n", err)
		}
	}()

	// The same fingerprint guards the checkpoint and names the manifest
	// run: resumed rows must be exchangeable with fresh ones. The
	// experiment list is deliberately excluded: scopes already namespace
	// per-experiment keys, so one file covers any subset of `-exp all`.
	meta := fmt.Sprintf("chirpexp n=%d instr=%d penalty=%d spec=%s", *n, *instr, *penalty, specLabel)

	if *metricsAddr != "" {
		bound, stopMetrics, err := obs.Serve(*metricsAddr, obs.Default)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chirpexp: %v\n", err)
			return 1
		}
		defer stopMetrics()
		fmt.Fprintf(os.Stderr, "chirpexp: metrics on http://%s/metrics\n", bound)
	}

	o := experiments.Options{
		Workloads:    *n,
		Suite:        suite,
		Instructions: *instr,
		WalkPenalty:  *penalty,
		Workers:      *workers,
		Ctx:          ctx,
	}
	var sinks []engine.Sink
	if *manifest != "" {
		man, err := obs.OpenManifest(*manifest, obs.Default, meta)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chirpexp: %v\n", err)
			return 1
		}
		defer func() {
			if err := man.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "chirpexp: %v\n", err)
			}
		}()
		sinks = append(sinks, engine.ManifestSink(man))
	}
	if *l2cache >= 0 {
		// One shared stream cache means `-exp all` captures each
		// workload's L2 event stream once across every MPKI experiment
		// (the experiments own per-call caches when this is nil). With
		// -capturedir the captures also persist on disk, so a re-run
		// (or another process) skips the capture passes entirely.
		var streams *l2stream.Cache
		if *capturedir != "" {
			var err error
			streams, err = l2stream.NewPersistent(*l2cache<<20, *capturedir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "chirpexp: %v\n", err)
				return 1
			}
			streams.SetStoreMaxBytes(*capturedirMax)
		} else {
			streams = l2stream.NewCache(*l2cache<<20, "")
		}
		defer streams.Close()
		o.StreamCache = streams
	}
	if *progress > 0 {
		sinks = append(sinks, engine.NewReporter(os.Stderr, *progress))
	}
	if len(sinks) > 0 {
		o.Sink = engine.MultiSink(sinks...)
	}
	if *checkpoint != "" {
		ck, err := engine.Open(*checkpoint, meta)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chirpexp: %v\n", err)
			return 1
		}
		defer ck.Close()
		o.Checkpoint = ck
	}

	out := os.Stdout
	runners := []runner{
		{"fig1", "TLB efficiency heat map (§VI-D)", func(o experiments.Options) error {
			r, err := experiments.Fig1(o)
			if err != nil {
				return err
			}
			return r.Write(out)
		}},
		{"fig2", "speedup vs PC history length (§III)", func(o experiments.Options) error {
			r, err := experiments.Fig2(o)
			if err != nil {
				return err
			}
			return r.Write(out)
		}},
		{"fig3", "ADALINE PC-bit salience (§III-A)", func(o experiments.Options) error {
			r, err := experiments.Fig3(o)
			if err != nil {
				return err
			}
			return r.Write(out)
		}},
		{"fig6", "feature/optimisation ablation (§III)", func(o experiments.Options) error {
			r, err := experiments.Fig6(o)
			if err != nil {
				return err
			}
			return r.Write(out)
		}},
		{"fig7", "MPKI S-curve and averages (§VI-A)", func(o experiments.Options) error {
			r, err := experiments.Fig7(o)
			if err != nil {
				return err
			}
			return r.Write(out)
		}},
		{"fig8", "speedup at the headline walk penalty (§VI-C)", func(o experiments.Options) error {
			r, err := experiments.Fig8(o)
			if err != nil {
				return err
			}
			return r.Write(out)
		}},
		{"fig9", "prediction-table size sweep (§VI-F)", func(o experiments.Options) error {
			r, err := experiments.Fig9(o)
			if err != nil {
				return err
			}
			return r.Write(out)
		}},
		{"fig10", "speedup vs walk penalty (§VI-C)", func(o experiments.Options) error {
			r, err := experiments.Fig10(o)
			if err != nil {
				return err
			}
			return r.Write(out)
		}},
		{"fig11", "prediction-table access-rate density (§VI-B)", func(o experiments.Options) error {
			r, err := experiments.Fig11(o)
			if err != nil {
				return err
			}
			return r.Write(out)
		}},
		{"table1", "CHiRP storage budget", func(o experiments.Options) error {
			r, err := experiments.Table1(o)
			if err != nil {
				return err
			}
			return r.Write(out)
		}},
		{"table2", "simulation parameters", func(o experiments.Options) error {
			return experiments.Table2(o, out)
		}},
		{"opt", "Bélády OPT upper bound (extension X1)", func(o experiments.Options) error {
			r, err := experiments.OptBound(o)
			if err != nil {
				return err
			}
			return r.Write(out)
		}},
		{"walker", "radix page-walker vs fixed penalty (extension X2)", func(o experiments.Options) error {
			r, err := experiments.Walker(o)
			if err != nil {
				return err
			}
			return r.Write(out)
		}},
		{"baselines", "extended baseline comparison (extension X3)", func(o experiments.Options) error {
			r, err := experiments.Baselines(o)
			if err != nil {
				return err
			}
			return r.Write(out)
		}},
		{"mixed", "mixed 4KB/2MB page sizes (extension X4)", func(o experiments.Options) error {
			r, err := experiments.Mixed(o)
			if err != nil {
				return err
			}
			return r.Write(out)
		}},
		{"consolidated", "ASID-tagged consolidation (extension X5)", func(o experiments.Options) error {
			r, err := experiments.Consolidated(o)
			if err != nil {
				return err
			}
			return r.Write(out)
		}},
		{"prefetch", "sequential prefetch × replacement (extension X6)", func(o experiments.Options) error {
			r, err := experiments.Prefetch(o)
			if err != nil {
				return err
			}
			return r.Write(out)
		}},
		{"categories", "per-category MPKI breakdown", func(o experiments.Options) error {
			r, err := experiments.Categories(o)
			if err != nil {
				return err
			}
			return r.Write(out)
		}},
	}

	want := map[string]bool{}
	if *exp == "all" {
		for _, r := range runners {
			want[r.name] = true
		}
	} else {
		for _, name := range strings.Split(*exp, ",") {
			want[strings.TrimSpace(name)] = true
		}
	}
	known := map[string]bool{}
	for _, r := range runners {
		known[r.name] = true
	}
	for name := range want {
		if !known[name] {
			fmt.Fprintf(os.Stderr, "chirpexp: unknown experiment %q\n", name)
			return 2
		}
	}

	for _, r := range runners {
		if !want[r.name] {
			continue
		}
		start := time.Now()
		fmt.Fprintf(out, "== %s: %s ==\n", r.name, r.desc)
		if err := r.run(o); err != nil {
			fmt.Fprintf(os.Stderr, "chirpexp: %s: %v\n", r.name, err)
			return 1
		}
		fmt.Fprintf(out, "-- %s done in %v --\n\n", r.name, time.Since(start).Round(time.Millisecond))
	}
	return 0
}
