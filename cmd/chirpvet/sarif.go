package main

import (
	"encoding/json"
	"io"
	"path/filepath"

	"github.com/chirplab/chirp/internal/analysis"
)

// The subset of SARIF 2.1.0 code-scanning consumers require: one run,
// the rule index in the driver, and one result per diagnostic with a
// physical location. Field names follow the spec exactly; everything
// optional is omitted.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// writeSARIF renders the diagnostics as one SARIF run. Every selected
// rule appears in the driver's rule table (so a clean run still
// documents what was checked); results reference rules by index as the
// spec recommends. File URIs are module-root-relative with forward
// slashes, which is what code-scanning upload endpoints expect.
func writeSARIF(w io.Writer, root string, rules []analysis.Rule, diags []analysis.Diagnostic) error {
	srules := make([]sarifRule, len(rules))
	index := make(map[string]int, len(rules))
	for i, r := range rules {
		srules[i] = sarifRule{ID: r.Name(), ShortDescription: sarifMessage{Text: r.Doc()}}
		index[r.Name()] = i
	}
	// The directive pseudo-rule reports //chirp: hygiene problems; it is
	// not selectable, so register it on demand.
	results := make([]sarifResult, len(diags))
	for i, d := range diags {
		idx, ok := index[d.Rule]
		if !ok {
			idx = len(srules)
			index[d.Rule] = idx
			srules = append(srules, sarifRule{ID: d.Rule, ShortDescription: sarifMessage{Text: "//chirp: directive hygiene"}})
		}
		results[i] = sarifResult{
			RuleID:    d.Rule,
			RuleIndex: idx,
			Level:     "error",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: toSlashRel(root, d.Pos.Filename)},
				Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
			}}},
		}
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "chirpvet", Rules: srules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// toSlashRel renders path relative to root with forward slashes.
func toSlashRel(root, path string) string {
	return filepath.ToSlash(relTo(root, path))
}
