package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// repoRoot walks up from the working directory to the go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}

// vet runs chirpvet with -C pointed at the repo root and returns its
// exit code and streams.
func vet(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(append([]string{"-C", repoRoot(t)}, args...), &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestList(t *testing.T) {
	code, out, _ := vet(t, "-list")
	if code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, rule := range []string{"hotpath-alloc", "obs-boundary", "determinism", "ctx-first", "no-deprecated"} {
		if !strings.Contains(out, rule) {
			t.Errorf("-list output missing rule %s:\n%s", rule, out)
		}
	}
}

func TestUnknownRuleExits2(t *testing.T) {
	code, _, stderr := vet(t, "-rules", "nope", "internal/policy")
	if code != 2 {
		t.Fatalf("unknown rule exited %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown rule") {
		t.Errorf("stderr missing unknown-rule error: %s", stderr)
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	code, out, stderr := vet(t, "internal/analysis")
	if code != 0 {
		t.Fatalf("clean package exited %d\nstdout: %s\nstderr: %s", code, out, stderr)
	}
	if out != "" {
		t.Errorf("clean package produced output: %s", out)
	}
}

func TestFixtureFindingsExitOne(t *testing.T) {
	code, out, stderr := vet(t, "-rules", "hotpath-alloc", "internal/analysis/testdata/src/hotpath")
	if code != 1 {
		t.Fatalf("violation fixture exited %d, want 1\nstdout: %s\nstderr: %s", code, out, stderr)
	}
	if !strings.Contains(out, "[hotpath-alloc]") {
		t.Errorf("stdout missing hotpath-alloc diagnostics:\n%s", out)
	}
	// Paths render relative to the module root for stable output.
	if !strings.Contains(out, filepath.Join("internal", "analysis", "testdata", "src", "hotpath", "hotpath.go")) {
		t.Errorf("diagnostics are not module-relative:\n%s", out)
	}
	if !strings.Contains(stderr, "finding(s)") {
		t.Errorf("stderr missing finding count: %s", stderr)
	}
}

func TestSARIFOutput(t *testing.T) {
	code, out, _ := vet(t, "-sarif", "-rules", "lock-balance", "internal/analysis/testdata/src/lockbalance")
	if code != 1 {
		t.Fatalf("-sarif fixture run exited %d, want 1", code)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out), &log); err != nil {
		t.Fatalf("-sarif output does not parse: %v\n%s", err, out)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("unexpected log shape: version=%q runs=%d", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "chirpvet" || len(run.Tool.Driver.Rules) == 0 {
		t.Fatalf("malformed driver: %+v", run.Tool.Driver)
	}
	if len(run.Results) == 0 {
		t.Fatal("-sarif reported no results for the lockbalance fixture")
	}
	for _, res := range run.Results {
		if res.RuleID != "lock-balance" || res.Message.Text == "" || len(res.Locations) != 1 {
			t.Errorf("malformed result: %+v", res)
			continue
		}
		loc := res.Locations[0].PhysicalLocation
		if !strings.HasPrefix(loc.ArtifactLocation.URI, "internal/analysis/testdata/src/lockbalance/") {
			t.Errorf("URI not module-relative with forward slashes: %q", loc.ArtifactLocation.URI)
		}
		if loc.Region.StartLine == 0 {
			t.Errorf("result missing start line: %+v", res)
		}
		if res.RuleIndex < 0 || res.RuleIndex >= len(run.Tool.Driver.Rules) ||
			run.Tool.Driver.Rules[res.RuleIndex].ID != res.RuleID {
			t.Errorf("ruleIndex %d does not point at %s in the driver rule table", res.RuleIndex, res.RuleID)
		}
	}
}

func TestJSONAndSARIFExclusive(t *testing.T) {
	code, _, stderr := vet(t, "-json", "-sarif", "internal/policy")
	if code != 2 {
		t.Fatalf("-json -sarif exited %d, want 2", code)
	}
	if !strings.Contains(stderr, "mutually exclusive") {
		t.Errorf("stderr missing mutual-exclusion error: %s", stderr)
	}
}

func TestJSONOutput(t *testing.T) {
	code, out, _ := vet(t, "-json", "-rules", "determinism", "internal/analysis/testdata/src/determinism/internal/workloads")
	if code != 1 {
		t.Fatalf("-json fixture run exited %d, want 1", code)
	}
	var rows []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		Rule    string `json:"rule"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal([]byte(out), &rows); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out)
	}
	if len(rows) == 0 {
		t.Fatal("-json reported no diagnostics for the determinism fixture")
	}
	for _, r := range rows {
		if r.Rule != "determinism" || r.File == "" || r.Line == 0 {
			t.Errorf("malformed row: %+v", r)
		}
	}
}
