// Command chirpvet runs the repository's custom static analysis suite
// (internal/analysis): stdlib-only go/ast + go/types rules that
// mechanically enforce the hot-path allocation budget, the
// obs-at-run-boundaries contract, workload bit-determinism, the
// context-first API shape, and the deprecation ban list.
//
// Usage:
//
//	chirpvet [-rules r1,r2] [-json|-sarif] [-list] [packages ...]
//
// With no arguments (or "./...") it analyzes every non-test package in
// the module containing the working directory. Explicit directory
// arguments analyze just those packages — handy for pointing it at a
// testdata fixture.
//
// -sarif emits a SARIF 2.1.0 log on stdout (one run, one result per
// diagnostic) for code-scanning uploads and CI artifacts; the exit
// code still reflects the findings, so a pipeline can archive the
// report and gate on the same invocation.
//
// Exit codes: 0 clean, 1 diagnostics reported, 2 usage or load error.
// There is no -fix: every finding is either a bug to fix or a
// //chirp:allow to justify in review.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/chirplab/chirp/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("chirpvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rulesFlag := fs.String("rules", "", "comma-separated rule subset to run (default: all)")
	jsonFlag := fs.Bool("json", false, "emit diagnostics as a JSON array instead of file:line:col lines")
	sarifFlag := fs.Bool("sarif", false, "emit diagnostics as a SARIF 2.1.0 log instead of file:line:col lines")
	listFlag := fs.Bool("list", false, "list the registered rules and exit")
	dirFlag := fs.String("C", "", "module root to analyze (default: locate go.mod above the working directory)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: chirpvet [-rules r1,r2] [-json|-sarif] [-list] [packages ...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonFlag && *sarifFlag {
		fmt.Fprintln(stderr, "chirpvet: -json and -sarif are mutually exclusive")
		return 2
	}

	rules, err := analysis.SelectRules(*rulesFlag)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *listFlag {
		for _, r := range rules {
			fmt.Fprintf(stdout, "%-15s %s\n", r.Name(), r.Doc())
		}
		return 0
	}

	root := *dirFlag
	if root == "" {
		root, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	var mod *analysis.Module
	targets := fs.Args()
	if whole := len(targets) == 0 || (len(targets) == 1 && targets[0] == "./..."); whole {
		mod, err = loader.LoadModule()
	} else {
		dirs := make([]string, 0, len(targets))
		for _, t := range targets {
			dirs = append(dirs, strings.TrimSuffix(t, "/..."))
		}
		mod, err = loader.LoadDirs(dirs...)
	}
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	diags := analysis.Run(mod, rules)
	switch {
	case *sarifFlag:
		if err := writeSARIF(stdout, root, rules, diags); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	case *jsonFlag:
		type row struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Col     int    `json:"col"`
			Rule    string `json:"rule"`
			Message string `json:"message"`
		}
		rows := make([]row, len(diags))
		for i, d := range diags {
			rows[i] = row{File: relTo(root, d.Pos.Filename), Line: d.Pos.Line, Col: d.Pos.Column, Rule: d.Rule, Message: d.Message}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	default:
		for _, d := range diags {
			d.Pos.Filename = relTo(root, d.Pos.Filename)
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "chirpvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("chirpvet: no go.mod above %s (use -C)", dir)
		}
		dir = parent
	}
}

// relTo renders a file path relative to the module root when possible,
// for stable, copy-pasteable diagnostics.
func relTo(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
