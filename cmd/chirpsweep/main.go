// Command chirpsweep runs free-form parameter sweeps beyond the
// paper's figures: CHiRP configuration knobs, TLB geometry, and
// update-filter ablations, measured as average MPKI reduction versus
// LRU over a suite prefix.
//
//	chirpsweep -sweep table    # prediction-table size (like Fig. 9)
//	chirpsweep -sweep history  # path-history length
//	chirpsweep -sweep branchhist
//	chirpsweep -sweep threshold
//	chirpsweep -sweep ways     # L2 TLB associativity
//	chirpsweep -sweep entries  # L2 TLB capacity
//	chirpsweep -sweep filters  # selective-hit-update / first-hit ablation
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/chirplab/chirp/internal/core"
	"github.com/chirplab/chirp/internal/sim"
	"github.com/chirplab/chirp/internal/stats"
	"github.com/chirplab/chirp/internal/tlb"
	"github.com/chirplab/chirp/internal/workloads"
)

func main() {
	sweep := flag.String("sweep", "table", "table | history | branchhist | threshold | ways | entries | filters")
	n := flag.Int("n", 96, "suite prefix size")
	instr := flag.Uint64("instr", 1_000_000, "instructions per trace")
	workers := flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
	flag.Parse()

	ws := workloads.SuiteN(*n)
	cfg := sim.DefaultTLBOnlyConfig(*instr)

	// measure returns the average MPKI for a policy factory, with an
	// optional TLB geometry override.
	measure := func(f sim.PolicyFactory, geom *tlb.Config) float64 {
		c := cfg
		if geom != nil {
			c.Hierarchy.L2 = *geom
		}
		rs, err := sim.RunSuiteTLBOnly(ws, []sim.NamedFactory{{Name: "x", New: f}}, c, *workers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chirpsweep: %v\n", err)
			os.Exit(1)
		}
		sum := 0.0
		for _, r := range rs {
			sum += r.MPKI
		}
		return sum / float64(len(rs))
	}
	lruF, _ := sim.Factories([]string{"lru"})
	chirpWith := func(mut func(*core.Config)) sim.PolicyFactory {
		c := core.DefaultConfig()
		mut(&c)
		return sim.CHiRPFactory(c)
	}

	var rows [][]string
	switch *sweep {
	case "table":
		base := measure(lruF[0].New, nil)
		for _, entries := range []int{512, 1024, 2048, 4096, 8192, 16384, 32768} {
			m := measure(chirpWith(func(c *core.Config) { c.TableEntries = entries }), nil)
			rows = append(rows, []string{fmt.Sprintf("%d counters (%dB)", entries, entries/4),
				fmt.Sprintf("%.3f", m), fmt.Sprintf("%+.2f%%", stats.Reduction(base, m))})
		}
	case "history":
		base := measure(lruF[0].New, nil)
		for _, l := range []int{4, 8, 12, 16, 24, 32, 40} {
			m := measure(chirpWith(func(c *core.Config) { c.History.PathLength = l }), nil)
			rows = append(rows, []string{fmt.Sprintf("path length %d", l),
				fmt.Sprintf("%.3f", m), fmt.Sprintf("%+.2f%%", stats.Reduction(base, m))})
		}
	case "branchhist":
		base := measure(lruF[0].New, nil)
		for _, l := range []int{2, 4, 8, 16, 32} {
			m := measure(chirpWith(func(c *core.Config) { c.History.BranchLength = l }), nil)
			rows = append(rows, []string{fmt.Sprintf("branch length %d", l),
				fmt.Sprintf("%.3f", m), fmt.Sprintf("%+.2f%%", stats.Reduction(base, m))})
		}
	case "threshold":
		base := measure(lruF[0].New, nil)
		for _, tc := range []struct {
			bits uint
			th   uint8
		}{{2, 0}, {2, 1}, {2, 2}, {3, 3}, {3, 5}} {
			m := measure(chirpWith(func(c *core.Config) { c.CounterBits = tc.bits; c.DeadThreshold = tc.th }), nil)
			rows = append(rows, []string{fmt.Sprintf("%d-bit counters, threshold %d", tc.bits, tc.th),
				fmt.Sprintf("%.3f", m), fmt.Sprintf("%+.2f%%", stats.Reduction(base, m))})
		}
	case "ways":
		for _, ways := range []int{2, 4, 8, 16} {
			geom := tlb.Config{Name: "L2 TLB", Entries: 1024, Ways: ways, PageShift: 12}
			base := measure(lruF[0].New, &geom)
			m := measure(sim.CHiRPFactory(core.DefaultConfig()), &geom)
			rows = append(rows, []string{fmt.Sprintf("%d-way", ways),
				fmt.Sprintf("%.3f", m), fmt.Sprintf("%+.2f%%", stats.Reduction(base, m))})
		}
	case "entries":
		for _, entries := range []int{256, 512, 1024, 2048, 4096} {
			geom := tlb.Config{Name: "L2 TLB", Entries: entries, Ways: 8, PageShift: 12}
			base := measure(lruF[0].New, &geom)
			m := measure(sim.CHiRPFactory(core.DefaultConfig()), &geom)
			rows = append(rows, []string{fmt.Sprintf("%d entries", entries),
				fmt.Sprintf("%.3f", m), fmt.Sprintf("%+.2f%%", stats.Reduction(base, m))})
		}
	case "filters":
		base := measure(lruF[0].New, nil)
		for _, fc := range []struct {
			label               string
			selective, firstHit bool
		}{
			{"both filters on (paper)", true, true},
			{"no selective hit update", false, true},
			{"no first-hit-only", true, false},
			{"both filters off", false, false},
		} {
			m := measure(chirpWith(func(c *core.Config) {
				c.SelectiveHitUpdate = fc.selective
				c.FirstHitOnly = fc.firstHit
			}), nil)
			rows = append(rows, []string{fc.label,
				fmt.Sprintf("%.3f", m), fmt.Sprintf("%+.2f%%", stats.Reduction(base, m))})
		}
	default:
		fmt.Fprintf(os.Stderr, "chirpsweep: unknown sweep %q\n", *sweep)
		os.Exit(2)
	}
	if err := stats.Table(os.Stdout, []string{"configuration", "mean MPKI", "vs LRU"}, rows); err != nil {
		fmt.Fprintf(os.Stderr, "chirpsweep: %v\n", err)
		os.Exit(1)
	}
}
