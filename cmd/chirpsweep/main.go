// Command chirpsweep runs free-form parameter sweeps beyond the
// paper's figures: CHiRP configuration knobs, TLB geometry, and
// update-filter ablations, measured as average MPKI reduction versus
// LRU over a suite prefix.
//
//	chirpsweep -sweep table    # prediction-table size (like Fig. 9)
//	chirpsweep -sweep history  # path-history length
//	chirpsweep -sweep branchhist
//	chirpsweep -sweep threshold
//	chirpsweep -sweep ways     # L2 TLB associativity
//	chirpsweep -sweep entries  # L2 TLB capacity
//	chirpsweep -sweep filters  # selective-hit-update / first-hit ablation
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"github.com/chirplab/chirp/internal/core"
	"github.com/chirplab/chirp/internal/engine"
	"github.com/chirplab/chirp/internal/l2stream"
	"github.com/chirplab/chirp/internal/obs"
	"github.com/chirplab/chirp/internal/sim"
	"github.com/chirplab/chirp/internal/stats"
	"github.com/chirplab/chirp/internal/tlb"
	"github.com/chirplab/chirp/internal/workloads"
	"github.com/chirplab/chirp/internal/workloads/spec"
)

func main() { os.Exit(run()) }

func run() int {
	sweep := flag.String("sweep", "table", "table | history | branchhist | threshold | ways | entries | filters")
	n := flag.Int("n", 96, "suite prefix size")
	workloadSpec := flag.String("workload-spec", "", "workload spec (registry name or JSON file) replacing the built-in suite; -n still selects a prefix of its compiled workloads")
	seed := flag.Uint64("seed", 0, "master seed for -workload-spec; overrides the spec document's seed")
	instr := flag.Uint64("instr", 1_000_000, "instructions per trace")
	workers := flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
	l2cache := flag.Int64("l2cache", 0, "L2 event-stream cache budget in MiB, shared across every sweep point (0 = 256 MiB default, negative = disable capture/replay)")
	capturedir := flag.String("capturedir", "", "persistent capture directory: captured L2 event streams are stored here (content-addressed) and reused by later runs in any process sharing the directory")
	capturedirMax := flag.Int64("capturedir-max-bytes", 0, "byte budget for -capturedir: least-recently-used captures (and their derived sidecars) are evicted to stay under it (0 = unbounded)")
	checkpoint := flag.String("checkpoint", "", "JSONL checkpoint file; a killed sweep resumes where it stopped")
	metricsAddr := flag.String("metrics", "", "serve /metrics (Prometheus), /debug/vars (JSON) and /debug/pprof on this address (e.g. localhost:8080)")
	manifest := flag.String("manifest", "", "append a JSONL run manifest (run identity + per-job metric deltas) to this file")
	progress := flag.Duration("progress", 0, "print a progress line to stderr at this interval (0 = off)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	seedSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			seedSet = true
		}
	})
	if seedSet && *workloadSpec == "" {
		fmt.Fprintln(os.Stderr, "chirpsweep: -seed requires -workload-spec")
		return 2
	}
	ws := workloads.SuiteN(*n)
	specLabel := ""
	if *workloadSpec != "" {
		s, err := spec.Resolve(*workloadSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chirpsweep: %v\n", err)
			return 2
		}
		compiled, err := spec.Compile(s, spec.Options{Seed: *seed, SeedSet: seedSet})
		if err != nil {
			fmt.Fprintf(os.Stderr, "chirpsweep: %v\n", err)
			return 2
		}
		ws = compiled.Workloads()
		if *n > 0 && *n < len(ws) {
			ws = ws[:*n]
		}
		specLabel = compiled.Hash
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	stopProf, err := engine.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chirpsweep: %v\n", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "chirpsweep: %v\n", err)
		}
	}()
	meta := fmt.Sprintf("chirpsweep sweep=%s n=%d instr=%d spec=%s", *sweep, *n, *instr, specLabel)

	if *metricsAddr != "" {
		bound, stopMetrics, err := obs.Serve(*metricsAddr, obs.Default)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chirpsweep: %v\n", err)
			return 1
		}
		defer stopMetrics()
		fmt.Fprintf(os.Stderr, "chirpsweep: metrics on http://%s/metrics\n", bound)
	}

	opts := sim.SuiteOptions{Workers: *workers}
	var sinks []engine.Sink
	if *manifest != "" {
		man, err := obs.OpenManifest(*manifest, obs.Default, meta)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chirpsweep: %v\n", err)
			return 1
		}
		defer func() {
			if err := man.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "chirpsweep: %v\n", err)
			}
		}()
		sinks = append(sinks, engine.ManifestSink(man))
	}
	if *l2cache >= 0 {
		// Sweep points vary only the L2 policy and geometry, which the
		// captured stream is invariant to — one cache serves every
		// measure() call below, so each workload's trace is generated
		// and L1-filtered once for the whole sweep. With -capturedir the
		// captures also persist on disk, so a re-run (or another
		// process) skips the capture passes entirely.
		var streams *l2stream.Cache
		if *capturedir != "" {
			var err error
			streams, err = l2stream.NewPersistent(*l2cache<<20, *capturedir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "chirpsweep: %v\n", err)
				return 1
			}
			streams.SetStoreMaxBytes(*capturedirMax)
		} else {
			streams = l2stream.NewCache(*l2cache<<20, "")
		}
		defer streams.Close()
		opts.StreamCache = streams
	} else {
		opts.StreamBudget = -1
	}
	if *progress > 0 {
		sinks = append(sinks, engine.NewReporter(os.Stderr, *progress))
	}
	if len(sinks) > 0 {
		opts.Sink = engine.MultiSink(sinks...)
	}
	if *checkpoint != "" {
		ck, err := engine.Open(*checkpoint, meta)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chirpsweep: %v\n", err)
			return 1
		}
		defer ck.Close()
		opts.Checkpoint = ck
	}

	cfg := sim.DefaultTLBOnlyConfig(*instr)

	// measure returns the average MPKI for a policy factory, with an
	// optional TLB geometry override. Every sweep point shares the
	// policy name "x", so the scope is what keeps checkpoint keys of
	// different configurations apart.
	fail := false
	measure := func(scope string, f sim.PolicyFactory, geom *tlb.Config) float64 {
		if fail {
			return 0
		}
		c := cfg
		if geom != nil {
			c.Hierarchy.L2 = *geom
		}
		o := opts
		o.Scope = scope
		rs, err := sim.RunSuiteTLBOnlyCtx(ctx, ws, []sim.NamedFactory{{Name: "x", New: f}}, c, o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chirpsweep: %v\n", err)
			fail = true
			return 0
		}
		sum := 0.0
		for _, r := range rs {
			sum += r.MPKI
		}
		return sum / float64(len(rs))
	}
	lruF, _ := sim.Factories([]string{"lru"})
	chirpWith := func(mut func(*core.Config)) sim.PolicyFactory {
		c := core.DefaultConfig()
		mut(&c)
		return sim.CHiRPFactory(c)
	}

	var rows [][]string
	switch *sweep {
	case "table":
		base := measure("lru", lruF[0].New, nil)
		for _, entries := range []int{512, 1024, 2048, 4096, 8192, 16384, 32768} {
			m := measure(fmt.Sprintf("table/%d", entries), chirpWith(func(c *core.Config) { c.TableEntries = entries }), nil)
			rows = append(rows, []string{fmt.Sprintf("%d counters (%dB)", entries, entries/4),
				fmt.Sprintf("%.3f", m), fmt.Sprintf("%+.2f%%", stats.Reduction(base, m))})
		}
	case "history":
		base := measure("lru", lruF[0].New, nil)
		for _, l := range []int{4, 8, 12, 16, 24, 32, 40} {
			m := measure(fmt.Sprintf("history/%d", l), chirpWith(func(c *core.Config) { c.History.PathLength = l }), nil)
			rows = append(rows, []string{fmt.Sprintf("path length %d", l),
				fmt.Sprintf("%.3f", m), fmt.Sprintf("%+.2f%%", stats.Reduction(base, m))})
		}
	case "branchhist":
		base := measure("lru", lruF[0].New, nil)
		for _, l := range []int{2, 4, 8, 16, 32} {
			m := measure(fmt.Sprintf("branchhist/%d", l), chirpWith(func(c *core.Config) { c.History.BranchLength = l }), nil)
			rows = append(rows, []string{fmt.Sprintf("branch length %d", l),
				fmt.Sprintf("%.3f", m), fmt.Sprintf("%+.2f%%", stats.Reduction(base, m))})
		}
	case "threshold":
		base := measure("lru", lruF[0].New, nil)
		for _, tc := range []struct {
			bits uint
			th   uint8
		}{{2, 0}, {2, 1}, {2, 2}, {3, 3}, {3, 5}} {
			m := measure(fmt.Sprintf("threshold/%d-%d", tc.bits, tc.th), chirpWith(func(c *core.Config) { c.CounterBits = tc.bits; c.DeadThreshold = tc.th }), nil)
			rows = append(rows, []string{fmt.Sprintf("%d-bit counters, threshold %d", tc.bits, tc.th),
				fmt.Sprintf("%.3f", m), fmt.Sprintf("%+.2f%%", stats.Reduction(base, m))})
		}
	case "ways":
		for _, ways := range []int{2, 4, 8, 16} {
			geom := tlb.Config{Name: "L2 TLB", Entries: 1024, Ways: ways, PageShift: 12}
			base := measure(fmt.Sprintf("ways/%d/lru", ways), lruF[0].New, &geom)
			m := measure(fmt.Sprintf("ways/%d/chirp", ways), sim.CHiRPFactory(core.DefaultConfig()), &geom)
			rows = append(rows, []string{fmt.Sprintf("%d-way", ways),
				fmt.Sprintf("%.3f", m), fmt.Sprintf("%+.2f%%", stats.Reduction(base, m))})
		}
	case "entries":
		for _, entries := range []int{256, 512, 1024, 2048, 4096} {
			geom := tlb.Config{Name: "L2 TLB", Entries: entries, Ways: 8, PageShift: 12}
			base := measure(fmt.Sprintf("entries/%d/lru", entries), lruF[0].New, &geom)
			m := measure(fmt.Sprintf("entries/%d/chirp", entries), sim.CHiRPFactory(core.DefaultConfig()), &geom)
			rows = append(rows, []string{fmt.Sprintf("%d entries", entries),
				fmt.Sprintf("%.3f", m), fmt.Sprintf("%+.2f%%", stats.Reduction(base, m))})
		}
	case "filters":
		base := measure("lru", lruF[0].New, nil)
		for _, fc := range []struct {
			label               string
			selective, firstHit bool
		}{
			{"both filters on (paper)", true, true},
			{"no selective hit update", false, true},
			{"no first-hit-only", true, false},
			{"both filters off", false, false},
		} {
			m := measure(fmt.Sprintf("filters/%v-%v", fc.selective, fc.firstHit), chirpWith(func(c *core.Config) {
				c.SelectiveHitUpdate = fc.selective
				c.FirstHitOnly = fc.firstHit
			}), nil)
			rows = append(rows, []string{fc.label,
				fmt.Sprintf("%.3f", m), fmt.Sprintf("%+.2f%%", stats.Reduction(base, m))})
		}
	default:
		fmt.Fprintf(os.Stderr, "chirpsweep: unknown sweep %q\n", *sweep)
		return 2
	}
	if fail {
		return 1
	}
	if err := stats.Table(os.Stdout, []string{"configuration", "mean MPKI", "vs LRU"}, rows); err != nil {
		fmt.Fprintf(os.Stderr, "chirpsweep: %v\n", err)
		return 1
	}
	return 0
}
