package chirp

import (
	"context"

	"github.com/chirplab/chirp/internal/adaline"
	"github.com/chirplab/chirp/internal/l2stream"
	"github.com/chirplab/chirp/internal/obs"
	"github.com/chirplab/chirp/internal/sim"
)

// Simulation entry point. RunSpec and Run are the preferred surface
// for single measurements; MeasureMPKI remains as the minimal one-line
// convenience.
type (
	// RunSpec bundles one TLB-only measurement: workload or source,
	// policy factory, configuration, and an optional stream cache that
	// switches Run onto the capture/replay path.
	RunSpec = sim.RunSpec
	// TLBOnlyConfig parameterises TLB-only runs (hierarchy, instruction
	// budget, warmup fraction, prefetch distance).
	TLBOnlyConfig = sim.TLBOnlyConfig
	// PolicyFactory builds a fresh policy instance per run.
	PolicyFactory = sim.PolicyFactory
	// NamedFactory pairs a display name with a PolicyFactory.
	NamedFactory = sim.NamedFactory
	// SuiteOptions carries the cross-cutting controls of a suite run
	// (workers, telemetry sink, checkpoint, stream cache).
	SuiteOptions = sim.SuiteOptions
	// SuiteResult is one (workload, policy) suite measurement.
	SuiteResult = sim.SuiteResult
	// StreamCache memoises captured L2 event streams across runs.
	StreamCache = l2stream.Cache
	// ReuseSample is one completed L2 TLB entry lifetime (inserting PC,
	// reused before eviction?) — the offline-learning training example.
	ReuseSample = sim.ReuseSample
)

// Run is the context-first simulation entry point: it measures
// spec.Policy over spec's trace, replaying a captured stream when
// spec.Cache is set and driving the trace directly otherwise (the two
// paths are bit-identical).
func Run(ctx context.Context, spec RunSpec) (MPKIResult, error) { return sim.Run(ctx, spec) }

// RunSuite measures each workload under each policy with the TLB-only
// driver across a worker pool; see SuiteOptions for cancellation,
// checkpointing and stream-cache sharing.
func RunSuite(ctx context.Context, ws []*Workload, pols []NamedFactory, cfg TLBOnlyConfig, opts SuiteOptions) ([]SuiteResult, error) {
	return sim.RunSuiteTLBOnlyCtx(ctx, ws, pols, cfg, opts)
}

// DefaultTLBOnlyConfig returns the paper's Table II setup at the given
// instruction budget (warmup on the first half).
func DefaultTLBOnlyConfig(instructions uint64) TLBOnlyConfig {
	return sim.DefaultTLBOnlyConfig(instructions)
}

// Factories resolves registered policy names into NamedFactory values.
func Factories(names []string) ([]NamedFactory, error) { return sim.Factories(names) }

// NewStreamCache builds a stream cache with the given in-memory byte
// budget (<= 0 = 256 MiB) spilling to dir ("" = the OS temp dir).
func NewStreamCache(budget int64, dir string) *StreamCache { return l2stream.NewCache(budget, dir) }

// CollectReuseSamples harvests up to max completed L2-entry lifetimes
// (0 = unbounded) from src under LRU replacement — the training set of
// the paper's offline ADALINE study.
func CollectReuseSamples(src Source, cfg TLBOnlyConfig, max int) ([]ReuseSample, error) {
	return sim.CollectReuseSamples(src, cfg, max)
}

// Observability. Every simulation layer publishes into one default
// metrics registry; these re-exports expose it without importing the
// internal obs package.
type (
	// MetricsRegistry is a set of named counters, gauges and histograms
	// with snapshot/delta semantics and Prometheus/JSON exporters.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time flat view of a registry.
	MetricsSnapshot = obs.Snapshot
	// Manifest appends a JSONL run manifest: a run-identity header, one
	// line per completed job with metric deltas, and closing totals.
	Manifest = obs.Manifest
)

// Metrics returns the process-wide default registry that the TLB,
// predictor, stream-cache and engine layers publish into.
func Metrics() *MetricsRegistry { return obs.Default }

// ServeMetrics serves /metrics (Prometheus text format), /debug/vars
// (JSON) and /debug/pprof for the default registry on addr, returning
// the bound address and a stop function.
func ServeMetrics(addr string) (string, func() error, error) { return obs.Serve(addr, obs.Default) }

// OpenManifest appends a run manifest for the default registry to
// path; config is the caller's run fingerprint, recorded and hashed in
// the header.
func OpenManifest(path, config string) (*Manifest, error) {
	return obs.OpenManifest(path, obs.Default, config)
}

// Offline learning (the §III-A ADALINE study).
type (
	// Adaline is the adaptive linear neuron of the paper's feature
	// study.
	Adaline = adaline.Adaline
	// AdalineConfig parameterises it.
	AdalineConfig = adaline.Config
)

// NewAdaline builds an ADALINE.
func NewAdaline(cfg AdalineConfig) *Adaline { return adaline.New(cfg) }

// EncodePCBits maps pc's bits [firstBit, firstBit+n) onto a ±1 input
// vector for ADALINE training.
func EncodePCBits(pc uint64, firstBit, n int) []float64 {
	return adaline.EncodePCBits(pc, firstBit, n)
}
