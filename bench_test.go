package chirp

// The benchmarks below regenerate every table and figure of the
// paper's evaluation at a reduced scale (suite prefix + shorter
// traces) and publish the headline numbers as custom benchmark
// metrics, so `go test -bench=.` doubles as the reproduction harness:
//
//	BenchmarkFig7MPKI            …  chirp_red_% / srrip_red_% / …
//	BenchmarkFig8Speedup         …  chirp_speedup_%
//	BenchmarkFig9TableSize       …  red_1KB_% …
//
// cmd/chirpexp runs the same experiments at full scale.

import (
	"context"
	"io"
	"testing"

	"github.com/chirplab/chirp/internal/core"
	"github.com/chirplab/chirp/internal/experiments"
	"github.com/chirplab/chirp/internal/l2stream"
	"github.com/chirplab/chirp/internal/policy"
	"github.com/chirplab/chirp/internal/sim"
	"github.com/chirplab/chirp/internal/tlb"
	"github.com/chirplab/chirp/internal/trace"
	"github.com/chirplab/chirp/internal/workloads"
)

// benchOptions is the reduced scale every experiment benchmark uses.
func benchOptions() experiments.Options {
	return experiments.Options{
		Workloads:    24,
		Instructions: 400_000,
		WalkPenalty:  150,
	}
}

// tinyOptions is for the expensive multi-sweep experiments.
func tinyOptions() experiments.Options {
	return experiments.Options{
		Workloads:    8,
		Instructions: 250_000,
		WalkPenalty:  150,
	}
}

func BenchmarkFig1TLBEfficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.AvgGainPct["chirp"], "chirp_eff_gain_%")
		b.ReportMetric(r.AvgGainPct["random"], "random_eff_gain_%")
	}
}

func BenchmarkFig2HistoryLength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2(tinyOptions())
		if err != nil {
			b.Fatal(err)
		}
		last := r.Points[len(r.Points)-1]
		b.ReportMetric(last.PathOnlyPct, "pathonly_len40_%")
		b.ReportMetric(last.CombinedPct, "combined_len40_%")
	}
}

func BenchmarkFig3Adaline(b *testing.B) {
	o := benchOptions()
	o.Workloads = 8
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3(o)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.MeanSalience) > 1 {
			b.ReportMetric(r.MeanSalience[0], "bit2_salience")
			b.ReportMetric(r.MeanSalience[1], "bit3_salience")
		}
	}
}

func BenchmarkFig6Ablation(b *testing.B) {
	o := benchOptions()
	o.Workloads = 16
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(o)
		if err != nil {
			b.Fatal(err)
		}
		for _, v := range r.Variants {
			switch v.Name {
			case "ship", "chirp-pc", "chirp":
				b.ReportMetric(v.ReductionPct, v.Name+"_red_%")
			}
		}
	}
}

func BenchmarkFig7MPKI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, a := range r.Averages {
			b.ReportMetric(a.ReductionPct, a.Policy+"_red_%")
		}
		b.ReportMetric(r.BestReductionPct, "best_red_%")
	}
}

func BenchmarkFig8Speedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.GeoMeanPct["chirp"], "chirp_speedup_%")
		b.ReportMetric(r.GeoMeanPct["srrip"], "srrip_speedup_%")
	}
}

func BenchmarkFig9TableSize(b *testing.B) {
	o := benchOptions()
	o.Workloads = 16
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(o)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range r.Points {
			if p.Bytes == 128 || p.Bytes == 1024 || p.Bytes == 8192 {
				b.ReportMetric(p.ReductionPct, "red_"+itoa(p.Bytes)+"B_%")
			}
		}
	}
}

func BenchmarkFig10PenaltySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(tinyOptions())
		if err != nil {
			b.Fatal(err)
		}
		first, last := r.Points[0], r.Points[len(r.Points)-1]
		b.ReportMetric(first.GeoMeanPct["chirp"], "chirp_at20_%")
		b.ReportMetric(last.GeoMeanPct["chirp"], "chirp_at340_%")
	}
}

func BenchmarkFig11TableAccessRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, d := range r.Densities {
			b.ReportMetric(d.Mean*100, d.Name+"_rate_%")
		}
	}
}

func BenchmarkTable1Storage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Configs[1].TotalBytes/1024, "main_cfg_KB")
	}
}

func BenchmarkTable2Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Table2(benchOptions(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptUpperBound(b *testing.B) {
	o := tinyOptions()
	for i := 0; i < b.N; i++ {
		r, err := experiments.OptBound(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.OptReductionPct, "opt_red_%")
	}
}

func BenchmarkRadixWalker(b *testing.B) {
	o := tinyOptions()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Walker(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.RadixAvgWalk, "avg_walk_cycles")
	}
}

// --- micro-benchmarks of the hot paths ---

func BenchmarkCHiRPSignature(b *testing.B) {
	p := core.MustNew(core.DefaultConfig())
	p.Attach(128, 8)
	for i := 0; i < 64; i++ {
		p.OnBranch(uint64(i)<<4, i%2 == 0, i%3 == 0, true, 0)
	}
	b.ResetTimer()
	var sink uint16
	for i := 0; i < b.N; i++ {
		sink = p.Signature(uint64(i) << 2)
	}
	_ = sink
}

// BenchmarkHistoriesPush is the O(1) per-event kernel alone: one path
// push plus one branch push with their incremental fold updates —
// the work CHiRP's OnAccess/OnBranch add beyond the signature hash.
func BenchmarkHistoriesPush(b *testing.B) {
	h := core.NewHistories(core.DefaultHistoryConfig())
	for i := 0; i < b.N; i++ {
		h.PushAccess(uint64(i) << 2)
		h.PushCond(uint64(i) << 4)
	}
	_ = h.Path()
}

func BenchmarkTLBLookupHit(b *testing.B) {
	tl, err := tlb.New(tlb.Config{Name: "b", Entries: 1024, Ways: 8, PageShift: 12}, policy.NewLRU())
	if err != nil {
		b.Fatal(err)
	}
	a := tlb.Access{PC: 0x1000, VPN: 42}
	tl.Lookup(&a)
	tl.Insert(&a, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl.Lookup(&a)
	}
}

func BenchmarkTLBLookupCHiRP(b *testing.B) {
	tl, err := tlb.New(tlb.Config{Name: "b", Entries: 1024, Ways: 8, PageShift: 12}, core.MustNew(core.DefaultConfig()))
	if err != nil {
		b.Fatal(err)
	}
	a := tlb.Access{PC: 0x1000, VPN: 42}
	tl.Lookup(&a)
	tl.Insert(&a, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.VPN = uint64(i) & 1023 // mixed sets exercise the full path
		if _, hit := tl.Lookup(&a); !hit {
			tl.Insert(&a, a.VPN)
		}
	}
}

func BenchmarkTraceGeneration(b *testing.B) {
	w := workloads.ByName("db-003")
	src := w.Source()
	var rec trace.Record
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Next(&rec)
	}
}

func BenchmarkTLBOnlySimThroughput(b *testing.B) {
	w := workloads.ByName("db-003")
	cfg := sim.DefaultTLBOnlyConfig(0)
	cfg.WarmupFraction = 0
	b.ResetTimer()
	total := uint64(0)
	for i := 0; i < b.N; i++ {
		res, err := sim.RunTLBOnly(trace.NewLimit(w.Source(), 500_000), policy.NewLRU(), sim.DefaultTLBOnlyConfig(500_000))
		if err != nil {
			b.Fatal(err)
		}
		total += res.Instructions
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// --- capture/replay benchmarks (internal/l2stream) ---

// streamBenchPolicies spans the cheap and expensive ends of the
// registry: replay wins most where the policy itself is light.
var streamBenchPolicies = []string{"lru", "srrip", "ship", "ghrp", "chirp"}

func streamBenchSource(cfg sim.TLBOnlyConfig) trace.Source {
	return trace.NewLimit(workloads.ByName("db-003").Source(), cfg.Instructions)
}

// BenchmarkRunTLBOnly is the direct path: generate + L1-filter + L2
// simulate, per policy, every iteration.
func BenchmarkRunTLBOnly(b *testing.B) {
	cfg := sim.DefaultTLBOnlyConfig(400_000)
	for _, name := range streamBenchPolicies {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := sim.NewPolicy(name)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sim.RunTLBOnly(streamBenchSource(cfg), p, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReplayTLBOnly is the replay path over a pre-captured
// stream — what every policy after the first pays in a sweep.
func BenchmarkReplayTLBOnly(b *testing.B) {
	cfg := sim.DefaultTLBOnlyConfig(400_000)
	stream, err := l2stream.Capture(streamBenchSource(cfg), sim.CaptureConfig(cfg), l2stream.CaptureOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer stream.Close()
	for _, name := range streamBenchPolicies {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := sim.NewPolicy(name)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sim.ReplayTLBOnly(stream, p, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReplayMulti compares the fused single-pass kernel against
// the same policies replayed independently over one captured stream.
// "independent" is N full decode-view passes (one per policy);
// "fused" is one pass driving all N TLBs per event. The ratio is the
// per-workload replay speedup a multi-policy sweep sees.
func BenchmarkReplayMulti(b *testing.B) {
	cfg := sim.DefaultTLBOnlyConfig(400_000)
	stream, err := l2stream.Capture(streamBenchSource(cfg), sim.CaptureConfig(cfg), l2stream.CaptureOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer stream.Close()
	build := func() []tlb.Policy {
		pols := make([]tlb.Policy, len(streamBenchPolicies))
		for i, name := range streamBenchPolicies {
			p, err := sim.NewPolicy(name)
			if err != nil {
				b.Fatal(err)
			}
			pols[i] = p
		}
		return pols
	}
	b.Run("independent", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, p := range build() {
				if _, err := sim.ReplayTLBOnly(stream, p, cfg); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sim.ReplayMulti(stream, build(), cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStreamCapture measures the encode side: one full
// generate + L1-filter + delta/varint-encode pass.
func BenchmarkStreamCapture(b *testing.B) {
	cfg := sim.DefaultTLBOnlyConfig(400_000)
	var records, events, bytes float64
	for i := 0; i < b.N; i++ {
		s, err := l2stream.Capture(streamBenchSource(cfg), sim.CaptureConfig(cfg), l2stream.CaptureOptions{})
		if err != nil {
			b.Fatal(err)
		}
		records = float64(s.Records())
		events = float64(s.Events())
		bytes = float64(s.MemBytes())
		s.Close()
	}
	b.ReportMetric(records*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrec/s")
	b.ReportMetric(bytes/events, "bytes/event")
}

// BenchmarkStreamDecode measures the decode side alone: one pass over
// the captured event sequence, no TLB behind it, through both the
// record-at-a-time and the block decoder replay actually uses.
func BenchmarkStreamDecode(b *testing.B) {
	cfg := sim.DefaultTLBOnlyConfig(400_000)
	s, err := l2stream.Capture(streamBenchSource(cfg), sim.CaptureConfig(cfg), l2stream.CaptureOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.Run("event", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d := s.Decode()
			var ev l2stream.Event
			n := 0
			for d.Next(&ev) {
				n++
			}
			if err := d.Err(); err != nil {
				b.Fatal(err)
			}
			if uint64(n) != s.Events() {
				b.Fatalf("decoded %d events, captured %d", n, s.Events())
			}
		}
		b.ReportMetric(float64(s.Events())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mevents/s")
	})
	b.Run("block", func(b *testing.B) {
		var evs [256]l2stream.Event
		for i := 0; i < b.N; i++ {
			d := s.Decode()
			n := 0
			for {
				k := d.NextBlock(evs[:])
				if k == 0 {
					break
				}
				n += k
			}
			if err := d.Err(); err != nil {
				b.Fatal(err)
			}
			if uint64(n) != s.Events() {
				b.Fatalf("decoded %d events, captured %d", n, s.Events())
			}
		}
		b.ReportMetric(float64(s.Events())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mevents/s")
	})
}

// BenchmarkSweepPolicies is the headline comparison: multi-policy
// suite sweeps with capture/replay on versus off. The ratio of each
// pair of sub-benchmark times is the wall-clock speedup chirpsweep
// sees for that policy set. Each capture-replay iteration builds its
// own stream cache, so it pays every capture and decode — nothing is
// amortized across iterations.
func BenchmarkSweepPolicies(b *testing.B) {
	sets := []struct {
		name     string
		policies []string
	}{
		// The paper's four non-predictive baselines (Fig. 7 minus the
		// predictors), the headline 4-policy comparison…
		{"baseline4", []string{"lru", "random", "srrip", "ship"}},
		// …the 4-policy set with both branch-history predictors…
		{"predictive4", []string{"lru", "srrip", "ghrp", "chirp"}},
		// …and the full Figure 7 set.
		{"fig7", []string{"lru", "random", "srrip", "ship", "ghrp", "chirp"}},
	}
	ws := workloads.SuiteN(8)
	cfg := sim.DefaultTLBOnlyConfig(400_000)
	for _, set := range sets {
		pols, err := sim.Factories(set.policies)
		if err != nil {
			b.Fatal(err)
		}
		run := func(b *testing.B, budget int64) {
			for i := 0; i < b.N; i++ {
				rs, err := sim.RunSuiteTLBOnlyCtx(context.Background(), ws, pols, cfg,
					sim.SuiteOptions{Workers: 1, StreamBudget: budget})
				if err != nil {
					b.Fatal(err)
				}
				if len(rs) != len(ws)*len(pols) {
					b.Fatalf("got %d results", len(rs))
				}
			}
		}
		b.Run(set.name+"/direct", func(b *testing.B) { run(b, -1) })
		b.Run(set.name+"/capture-replay", func(b *testing.B) { run(b, 0) })
	}
}

// BenchmarkSweepPersistent is the warm-store sweep: the Figure 7
// policy set over a capture directory populated before the timer, with
// a fresh cache per iteration (standing in for a fresh process). Every
// iteration therefore loads each workload's stream from disk and runs
// one fused replay per workload — zero captures, which is what a
// second `chirpexp -capturedir` run pays.
func BenchmarkSweepPersistent(b *testing.B) {
	ws := workloads.SuiteN(8)
	cfg := sim.DefaultTLBOnlyConfig(400_000)
	pols, err := sim.Factories([]string{"lru", "random", "srrip", "ship", "ghrp", "chirp"})
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	warm, err := l2stream.NewPersistent(0, dir)
	if err != nil {
		b.Fatal(err)
	}
	// Warm with the full policy set so the derived sidecars (replay
	// views, signature sequences) are on disk too: a second
	// `chirpexp -capturedir` run loads them instead of rebuilding.
	if _, err := sim.RunSuiteTLBOnlyCtx(context.Background(), ws, pols, cfg,
		sim.SuiteOptions{Workers: 1, StreamCache: warm}); err != nil {
		b.Fatal(err)
	}
	if err := warm.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache, err := l2stream.NewPersistent(0, dir)
		if err != nil {
			b.Fatal(err)
		}
		rs, err := sim.RunSuiteTLBOnlyCtx(context.Background(), ws, pols, cfg,
			sim.SuiteOptions{Workers: 1, StreamCache: cache})
		if err != nil {
			b.Fatal(err)
		}
		if len(rs) != len(ws)*len(pols) {
			b.Fatalf("got %d results", len(rs))
		}
		if err := cache.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepWorkers measures multi-worker sweep scaling over the
// capture+replay path: the full Figure 7 policy set across a suite
// prefix, at increasing engine worker counts. Workers share each
// workload's captured stream (single-flight capture, memoized decode
// views), so scaling is limited only by the policy simulations
// themselves.
func BenchmarkSweepWorkers(b *testing.B) {
	ws := workloads.SuiteN(8)
	cfg := sim.DefaultTLBOnlyConfig(400_000)
	pols, err := sim.Factories([]string{"lru", "random", "srrip", "ship", "ghrp", "chirp"})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run("workers-"+itoa(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rs, err := sim.RunSuiteTLBOnlyCtx(context.Background(), ws, pols, cfg,
					sim.SuiteOptions{Workers: workers, StreamBudget: 0})
				if err != nil {
					b.Fatal(err)
				}
				if len(rs) != len(ws)*len(pols) {
					b.Fatalf("got %d results", len(rs))
				}
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func BenchmarkExtendedBaselines(b *testing.B) {
	o := tinyOptions()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Baselines(o)
		if err != nil {
			b.Fatal(err)
		}
		for _, a := range r.Averages {
			switch a.Policy {
			case "sdbp", "drrip", "perceptron":
				b.ReportMetric(a.ReductionPct, a.Policy+"_red_%")
			}
		}
	}
}

func BenchmarkMixedPageSizes(b *testing.B) {
	o := tinyOptions()
	o.Workloads = 6
	for i := 0; i < b.N; i++ {
		r, err := experiments.Mixed(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MeanReductionPct, "mpki_red_%")
		b.ReportMetric(r.ReachSavedPct, "reach_saved_%")
	}
}

func BenchmarkConsolidated(b *testing.B) {
	ws := workloads.SuiteN(4)
	cfg := sim.DefaultConsolidatedConfig(300_000)
	for i := 0; i < b.N; i++ {
		lru, err := sim.RunConsolidated(ws, policy.NewLRU(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		ch, err := sim.RunConsolidated(ws, core.MustNew(core.DefaultConfig()), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if lru.MPKI > 0 {
			b.ReportMetric((lru.MPKI-ch.MPKI)/lru.MPKI*100, "chirp_red_%")
		}
	}
}

func BenchmarkPrefetchCompose(b *testing.B) {
	o := tinyOptions()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Prefetch(o)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Distance == 4 {
				b.ReportMetric(row.MeanMPKI, row.Policy+"_d4_mpki")
			}
		}
	}
}
