package chirp

// The benchmarks below regenerate every table and figure of the
// paper's evaluation at a reduced scale (suite prefix + shorter
// traces) and publish the headline numbers as custom benchmark
// metrics, so `go test -bench=.` doubles as the reproduction harness:
//
//	BenchmarkFig7MPKI            …  chirp_red_% / srrip_red_% / …
//	BenchmarkFig8Speedup         …  chirp_speedup_%
//	BenchmarkFig9TableSize       …  red_1KB_% …
//
// cmd/chirpexp runs the same experiments at full scale.

import (
	"io"
	"testing"

	"github.com/chirplab/chirp/internal/core"
	"github.com/chirplab/chirp/internal/experiments"
	"github.com/chirplab/chirp/internal/policy"
	"github.com/chirplab/chirp/internal/sim"
	"github.com/chirplab/chirp/internal/tlb"
	"github.com/chirplab/chirp/internal/trace"
	"github.com/chirplab/chirp/internal/workloads"
)

// benchOptions is the reduced scale every experiment benchmark uses.
func benchOptions() experiments.Options {
	return experiments.Options{
		Workloads:    24,
		Instructions: 400_000,
		WalkPenalty:  150,
	}
}

// tinyOptions is for the expensive multi-sweep experiments.
func tinyOptions() experiments.Options {
	return experiments.Options{
		Workloads:    8,
		Instructions: 250_000,
		WalkPenalty:  150,
	}
}

func BenchmarkFig1TLBEfficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.AvgGainPct["chirp"], "chirp_eff_gain_%")
		b.ReportMetric(r.AvgGainPct["random"], "random_eff_gain_%")
	}
}

func BenchmarkFig2HistoryLength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2(tinyOptions())
		if err != nil {
			b.Fatal(err)
		}
		last := r.Points[len(r.Points)-1]
		b.ReportMetric(last.PathOnlyPct, "pathonly_len40_%")
		b.ReportMetric(last.CombinedPct, "combined_len40_%")
	}
}

func BenchmarkFig3Adaline(b *testing.B) {
	o := benchOptions()
	o.Workloads = 8
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3(o)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.MeanSalience) > 1 {
			b.ReportMetric(r.MeanSalience[0], "bit2_salience")
			b.ReportMetric(r.MeanSalience[1], "bit3_salience")
		}
	}
}

func BenchmarkFig6Ablation(b *testing.B) {
	o := benchOptions()
	o.Workloads = 16
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(o)
		if err != nil {
			b.Fatal(err)
		}
		for _, v := range r.Variants {
			switch v.Name {
			case "ship", "chirp-pc", "chirp":
				b.ReportMetric(v.ReductionPct, v.Name+"_red_%")
			}
		}
	}
}

func BenchmarkFig7MPKI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, a := range r.Averages {
			b.ReportMetric(a.ReductionPct, a.Policy+"_red_%")
		}
		b.ReportMetric(r.BestReductionPct, "best_red_%")
	}
}

func BenchmarkFig8Speedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.GeoMeanPct["chirp"], "chirp_speedup_%")
		b.ReportMetric(r.GeoMeanPct["srrip"], "srrip_speedup_%")
	}
}

func BenchmarkFig9TableSize(b *testing.B) {
	o := benchOptions()
	o.Workloads = 16
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(o)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range r.Points {
			if p.Bytes == 128 || p.Bytes == 1024 || p.Bytes == 8192 {
				b.ReportMetric(p.ReductionPct, "red_"+itoa(p.Bytes)+"B_%")
			}
		}
	}
}

func BenchmarkFig10PenaltySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(tinyOptions())
		if err != nil {
			b.Fatal(err)
		}
		first, last := r.Points[0], r.Points[len(r.Points)-1]
		b.ReportMetric(first.GeoMeanPct["chirp"], "chirp_at20_%")
		b.ReportMetric(last.GeoMeanPct["chirp"], "chirp_at340_%")
	}
}

func BenchmarkFig11TableAccessRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, d := range r.Densities {
			b.ReportMetric(d.Mean*100, d.Name+"_rate_%")
		}
	}
}

func BenchmarkTable1Storage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Configs[1].TotalBytes/1024, "main_cfg_KB")
	}
}

func BenchmarkTable2Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Table2(benchOptions(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptUpperBound(b *testing.B) {
	o := tinyOptions()
	for i := 0; i < b.N; i++ {
		r, err := experiments.OptBound(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.OptReductionPct, "opt_red_%")
	}
}

func BenchmarkRadixWalker(b *testing.B) {
	o := tinyOptions()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Walker(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.RadixAvgWalk, "avg_walk_cycles")
	}
}

// --- micro-benchmarks of the hot paths ---

func BenchmarkCHiRPSignature(b *testing.B) {
	p := core.MustNew(core.DefaultConfig())
	p.Attach(128, 8)
	for i := 0; i < 64; i++ {
		p.OnBranch(uint64(i)<<4, i%2 == 0, i%3 == 0, true, 0)
	}
	b.ResetTimer()
	var sink uint16
	for i := 0; i < b.N; i++ {
		sink = p.Signature(uint64(i) << 2)
	}
	_ = sink
}

func BenchmarkTLBLookupHit(b *testing.B) {
	tl, err := tlb.New(tlb.Config{Name: "b", Entries: 1024, Ways: 8, PageShift: 12}, policy.NewLRU())
	if err != nil {
		b.Fatal(err)
	}
	a := tlb.Access{PC: 0x1000, VPN: 42}
	tl.Lookup(&a)
	tl.Insert(&a, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl.Lookup(&a)
	}
}

func BenchmarkTLBLookupCHiRP(b *testing.B) {
	tl, err := tlb.New(tlb.Config{Name: "b", Entries: 1024, Ways: 8, PageShift: 12}, core.MustNew(core.DefaultConfig()))
	if err != nil {
		b.Fatal(err)
	}
	a := tlb.Access{PC: 0x1000, VPN: 42}
	tl.Lookup(&a)
	tl.Insert(&a, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.VPN = uint64(i) & 1023 // mixed sets exercise the full path
		if _, hit := tl.Lookup(&a); !hit {
			tl.Insert(&a, a.VPN)
		}
	}
}

func BenchmarkTraceGeneration(b *testing.B) {
	w := workloads.ByName("db-003")
	src := workloads.NewGenerator(w.Program())
	var rec trace.Record
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Next(&rec)
	}
}

func BenchmarkTLBOnlySimThroughput(b *testing.B) {
	w := workloads.ByName("db-003")
	cfg := sim.DefaultTLBOnlyConfig(0)
	cfg.WarmupFraction = 0
	b.ResetTimer()
	total := uint64(0)
	for i := 0; i < b.N; i++ {
		res, err := sim.RunTLBOnly(trace.NewLimit(w.Source(), 500_000), policy.NewLRU(), sim.DefaultTLBOnlyConfig(500_000))
		if err != nil {
			b.Fatal(err)
		}
		total += res.Instructions
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func BenchmarkExtendedBaselines(b *testing.B) {
	o := tinyOptions()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Baselines(o)
		if err != nil {
			b.Fatal(err)
		}
		for _, a := range r.Averages {
			switch a.Policy {
			case "sdbp", "drrip", "perceptron":
				b.ReportMetric(a.ReductionPct, a.Policy+"_red_%")
			}
		}
	}
}

func BenchmarkMixedPageSizes(b *testing.B) {
	o := tinyOptions()
	o.Workloads = 6
	for i := 0; i < b.N; i++ {
		r, err := experiments.Mixed(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MeanReductionPct, "mpki_red_%")
		b.ReportMetric(r.ReachSavedPct, "reach_saved_%")
	}
}

func BenchmarkConsolidated(b *testing.B) {
	ws := workloads.SuiteN(4)
	cfg := sim.DefaultConsolidatedConfig(300_000)
	for i := 0; i < b.N; i++ {
		lru, err := sim.RunConsolidated(ws, policy.NewLRU(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		ch, err := sim.RunConsolidated(ws, core.MustNew(core.DefaultConfig()), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if lru.MPKI > 0 {
			b.ReportMetric((lru.MPKI-ch.MPKI)/lru.MPKI*100, "chirp_red_%")
		}
	}
}

func BenchmarkPrefetchCompose(b *testing.B) {
	o := tinyOptions()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Prefetch(o)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Distance == 4 {
				b.ReportMetric(row.MeanMPKI, row.Policy+"_d4_mpki")
			}
		}
	}
}
