// Package l2stream captures the policy-invariant event stream an L2
// TLB policy observes — demand accesses that missed the L1 TLBs,
// committed branches, and the warmup boundary — so an N-policy sweep
// pays trace generation and L1 filtering once per workload instead of
// once per (workload, policy) cell.
//
// The invariance argument: the paper holds the L1 TLBs fixed at LRU
// (Table II), and nothing below the L1s feeds back into them, so the
// sequence of L2 demand accesses and the interleaved branch stream are
// identical for every L2 replacement policy. Capture runs the
// generator and the two L1 filters once and encodes that shared
// sequence; sim.ReplayTLBOnly then drives any number of L2 policies
// over it, bit-identical to sim.RunTLBOnly.
//
// Streams are delta/varint-encoded in memory (a few bytes per event).
// Streams that exceed the capture byte budget spill the raw record
// prefix to a CHTR trace file instead (the same on-disk machinery as
// internal/trace/file.go); replaying a spilled stream degrades to a
// direct run over the file, which is bit-identical by construction.
package l2stream

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"

	"github.com/chirplab/chirp/internal/tlb"
)

// Config identifies the policy-invariant part of a TLB-only run: the
// L1 geometries, the L2 page size, and the instruction/warmup budget.
// Two runs with equal Configs share the same captured stream no matter
// which L2 policy, L2 geometry, or prefetch distance they use, so
// Config doubles as the cache key. It is comparable.
type Config struct {
	// L1I and L1D are the L1 TLB geometries (always LRU).
	L1I, L1D tlb.Config
	// PageShift is the L2 TLB's page-size shift (VPN = address >> shift).
	PageShift uint
	// Instructions bounds the committed instruction count (0 = drain).
	Instructions uint64
	// WarmupFraction of instructions warms structures before measurement.
	WarmupFraction float64
}

// EventKind discriminates the replay events.
type EventKind uint8

const (
	// EventInstrAccess is an instruction-side L2 demand access; the VPN
	// is the fetch page (PC >> PageShift).
	EventInstrAccess EventKind = iota
	// EventDataAccess is a data-side L2 demand access.
	EventDataAccess
	// EventBranch is a committed branch (for BranchObserver policies).
	EventBranch
	// EventWarmup marks the warmup boundary: replay snapshots its L2
	// statistics exactly here, mirroring RunTLBOnly's per-record check.
	EventWarmup
)

// Event is one decoded stream event.
type Event struct {
	Kind   EventKind
	PC     uint64
	VPN    uint64 // access events only
	Target uint64 // branch events only
	// Conditional/Indirect/Taken qualify branch events, matching the
	// tlb.BranchObserver.OnBranch signature.
	Conditional bool
	Indirect    bool
	Taken       bool
}

// Encoding: each event is a tag byte followed by varint payloads. The
// tag's low 3 bits are the wire kind; bit 3 is the branch-taken flag.
// PCs are signed deltas against the previous event's PC (shared across
// kinds: consecutive events come from nearby code). Data-access VPNs
// are signed deltas against the previous data VPN; instruction-access
// VPNs are derived from the PC and not stored. Branch targets are
// signed deltas against the branch's own PC.
const (
	wireInstrAccess = 0
	wireDataAccess  = 1
	wireCondBranch  = 2
	wireDirBranch   = 3
	wireIndBranch   = 4
	wireWarmup      = 5

	wireKindMask = 0x07
	wireTaken    = 1 << 3
)

// encoder appends delta/varint events to a byte buffer.
type encoder struct {
	buf     []byte
	lastPC  uint64
	lastVPN uint64
}

func (e *encoder) putPC(pc uint64) {
	e.buf = binary.AppendVarint(e.buf, int64(pc-e.lastPC))
	e.lastPC = pc
}

func (e *encoder) access(pc, vpn uint64, instr bool) {
	if instr {
		e.buf = append(e.buf, wireInstrAccess)
		e.putPC(pc)
		return
	}
	e.buf = append(e.buf, wireDataAccess)
	e.putPC(pc)
	e.buf = binary.AppendVarint(e.buf, int64(vpn-e.lastVPN))
	e.lastVPN = vpn
}

func (e *encoder) branch(pc uint64, conditional, indirect, taken bool, target uint64) {
	tag := byte(wireDirBranch)
	if conditional {
		tag = wireCondBranch
	} else if indirect {
		tag = wireIndBranch
	}
	if taken {
		tag |= wireTaken
	}
	e.buf = append(e.buf, tag)
	e.putPC(pc)
	e.buf = binary.AppendVarint(e.buf, int64(target-pc))
}

func (e *encoder) warmup() { e.buf = append(e.buf, wireWarmup) }

// Decoder iterates a captured in-memory stream. It is single-use and
// not safe for concurrent use; take one Decoder per replay.
type Decoder struct {
	buf       []byte
	pos       int
	lastPC    uint64
	lastVPN   uint64
	pageShift uint
	err       error
}

// Next fills ev with the next event and reports whether one was
// available. Decoding errors stop the stream; check Err afterwards.
func (d *Decoder) Next(ev *Event) bool {
	if d.err != nil || d.pos >= len(d.buf) {
		return false
	}
	tag := d.buf[d.pos]
	d.pos++
	kind := tag & wireKindMask
	if kind == wireWarmup {
		*ev = Event{Kind: EventWarmup}
		return true
	}
	pcDelta, ok := d.varint()
	if !ok {
		return false
	}
	pc := d.lastPC + uint64(pcDelta)
	d.lastPC = pc
	switch kind {
	case wireInstrAccess:
		*ev = Event{Kind: EventInstrAccess, PC: pc, VPN: pc >> d.pageShift}
	case wireDataAccess:
		vpnDelta, ok := d.varint()
		if !ok {
			return false
		}
		vpn := d.lastVPN + uint64(vpnDelta)
		d.lastVPN = vpn
		*ev = Event{Kind: EventDataAccess, PC: pc, VPN: vpn}
	case wireCondBranch, wireDirBranch, wireIndBranch:
		tgtDelta, ok := d.varint()
		if !ok {
			return false
		}
		*ev = Event{
			Kind:        EventBranch,
			PC:          pc,
			Target:      pc + uint64(tgtDelta),
			Conditional: kind == wireCondBranch,
			Indirect:    kind == wireIndBranch,
			Taken:       tag&wireTaken != 0,
		}
	default:
		d.err = fmt.Errorf("l2stream: corrupt stream: unknown event kind %d at offset %d", kind, d.pos-1)
		return false
	}
	return true
}

// NextBlock decodes up to len(evs) events and returns how many it
// produced; 0 means the stream is exhausted (or broken — check Err).
// It is the bulk counterpart of Next for replay loops: decode state
// stays in locals, varints are open-coded, and — unlike Next — each
// event's fields are stored selectively, so only the fields meaningful
// for the decoded Kind are valid (an access event's Target, say, holds
// whatever the buffer held before). Consumers must switch on Kind
// before touching the rest, which every replay loop does anyway.
func (d *Decoder) NextBlock(evs []Event) int {
	if d.err != nil {
		return 0
	}
	buf, pos := d.buf, d.pos
	lastPC, lastVPN := d.lastPC, d.lastVPN
	shift := d.pageShift
	n := 0
	for n < len(evs) && pos < len(buf) {
		tag := buf[pos]
		pos++
		kind := tag & wireKindMask
		ev := &evs[n]
		if kind == wireWarmup {
			ev.Kind = EventWarmup
			n++
			continue
		}
		delta, p, ok := decodeVarint(buf, pos)
		if !ok {
			d.err = fmt.Errorf("l2stream: corrupt stream: truncated varint at offset %d", pos)
			break
		}
		pos = p
		pc := lastPC + uint64(delta)
		lastPC = pc
		switch kind {
		case wireInstrAccess:
			ev.Kind = EventInstrAccess
			ev.PC = pc
			ev.VPN = pc >> shift
		case wireDataAccess:
			delta, p, ok = decodeVarint(buf, pos)
			if !ok {
				d.err = fmt.Errorf("l2stream: corrupt stream: truncated varint at offset %d", pos)
				break
			}
			pos = p
			lastVPN += uint64(delta)
			ev.Kind = EventDataAccess
			ev.PC = pc
			ev.VPN = lastVPN
		case wireCondBranch, wireDirBranch, wireIndBranch:
			delta, p, ok = decodeVarint(buf, pos)
			if !ok {
				d.err = fmt.Errorf("l2stream: corrupt stream: truncated varint at offset %d", pos)
				break
			}
			pos = p
			ev.Kind = EventBranch
			ev.PC = pc
			ev.Target = pc + uint64(delta)
			ev.Conditional = kind == wireCondBranch
			ev.Indirect = kind == wireIndBranch
			ev.Taken = tag&wireTaken != 0
		default:
			d.err = fmt.Errorf("l2stream: corrupt stream: unknown event kind %d at offset %d", kind, pos-1)
		}
		if d.err != nil {
			break
		}
		n++
	}
	d.pos, d.lastPC, d.lastVPN = pos, lastPC, lastVPN
	return n
}

// skipVarint advances past one varint without decoding its value —
// the cheap path for payloads the access-only view discards (branch
// target deltas).
//
//chirp:hotpath
func skipVarint(buf []byte, pos int) (int, bool) {
	for pos < len(buf) {
		if buf[pos] < 0x80 {
			return pos + 1, true
		}
		pos++
	}
	return pos, false
}

// decodeVarint is binary.Varint open-coded against (buf, pos): no
// subslice construction per call, and a branch-light fast path for the
// one- and two-byte encodings that dominate delta streams.
//
//chirp:hotpath
func decodeVarint(buf []byte, pos int) (int64, int, bool) {
	if pos+1 < len(buf) {
		b := buf[pos]
		if b < 0x80 {
			u := uint64(b)
			return int64(u>>1) ^ -int64(u&1), pos + 1, true
		}
		if b2 := buf[pos+1]; b2 < 0x80 {
			u := uint64(b&0x7f) | uint64(b2)<<7
			return int64(u>>1) ^ -int64(u&1), pos + 2, true
		}
	}
	var u uint64
	var shift uint
	for pos < len(buf) {
		b := buf[pos]
		pos++
		if b < 0x80 {
			if shift == 63 && b > 1 {
				return 0, pos, false // overflow
			}
			u |= uint64(b) << shift
			return int64(u>>1) ^ -int64(u&1), pos, true
		}
		if shift == 63 {
			return 0, pos, false // overflow
		}
		u |= uint64(b&0x7f) << shift
		shift += 7
	}
	return 0, pos, false // truncated
}

func (d *Decoder) varint() (int64, bool) {
	v, n := binary.Varint(d.buf[d.pos:])
	if n <= 0 {
		d.err = fmt.Errorf("l2stream: corrupt stream: truncated varint at offset %d", d.pos)
		return 0, false
	}
	d.pos += n
	return v, true
}

// Err returns the first decoding error, if any.
func (d *Decoder) Err() error { return d.err }

// Stream is one captured workload stream: either an in-memory encoded
// event buffer or a spilled CHTR record file, plus the policy-invariant
// run scalars (instruction totals, warmup position, L1 miss counts)
// that every replay shares. Streams are immutable after capture and
// safe for concurrent replays.
type Stream struct {
	cfg Config
	buf []byte // encoded events; nil when spilled

	decodeOnce sync.Once
	decoded    []Event // memoized DecodeAll result
	decodeErr  error
	// sidecar holds the fixed-width pre-decoded event records a
	// persistent-store load carries (zero-copy into the store file's
	// ReadFile allocation; see store.go). When present, replay kernels
	// and DecodeAll read events from it with a fixed-stride loop
	// instead of the varint decoder. Written only at construction.
	sidecar []byte

	// Second memoized view: access + warmup events only, for the
	// policies that do not observe branches. Like decoded it is
	// materialized single-flight (sync.Once) so concurrent replays of
	// one stream from different engine workers share one decode.
	accOnce sync.Once
	accEvts []Event
	accErr  error

	// Derived views (see derived.go): keyed single-flight memos of
	// precomputed arrays, plus the persistence and accounting hooks the
	// capture store and the cache install. dvLoad/dvSave are written
	// once when the store loads or saves the stream, onGrow once when
	// the cache commits it — all before other goroutines can reach the
	// stream, so only the map itself needs the mutex.
	// dvLoad returns a sidecar payload plus a release hook (either may
	// be nil); the payload may alias a pooled buffer, so Derived calls
	// release as soon as the spec's Decode has copied out of it.
	derivedMu sync.Mutex
	derived   map[string]*derivedSlot
	dvLoad    func(key string) (payload []byte, release func())
	dvSave    func(key string, payload []byte)
	onGrow    func(delta int64)

	spillPath string

	// Spill-file lifetime. Replays of a spilled stream hold the file
	// open for their whole pass, while Cache.Close (or an explicit
	// Stream.Close) may run concurrently — the eviction contract
	// promises in-flight replays keep working. RetainSpill/release
	// refcount the file so deletion is deferred until the last reader
	// is done; persistent streams' files belong to the capture store
	// and are never deleted by Close at all.
	spillMu    sync.Mutex
	spillRefs  int
	spillClose bool // Close ran; delete the file when refs reach zero
	persistent bool // file owned by the on-disk capture store

	records      uint64
	instructions uint64
	events       uint64
	accesses     uint64

	warmed      bool
	warmupAt    uint64
	warmInstrAt uint64
	l1iMisses   uint64 // post-warmup
	l1dMisses   uint64 // post-warmup
}

// Config returns the capture configuration the stream was built under.
func (s *Stream) Config() Config { return s.cfg }

// Spilled reports whether the stream overflowed its byte budget and
// lives on disk as a raw record file instead of in memory.
func (s *Stream) Spilled() bool { return s.spillPath != "" }

// SpillPath returns the CHTR file path of a spilled stream ("" when
// the stream is in memory).
func (s *Stream) SpillPath() string { return s.spillPath }

// MemBytes returns the in-memory encoded size (0 when spilled).
func (s *Stream) MemBytes() int { return len(s.buf) }

// Records returns how many trace records the capture consumed.
func (s *Stream) Records() uint64 { return s.records }

// Instructions returns the total committed instruction count.
func (s *Stream) Instructions() uint64 { return s.instructions }

// Events returns the captured event count (0 when spilled).
func (s *Stream) Events() uint64 { return s.events }

// Accesses returns the L2 demand access count (0 when spilled).
func (s *Stream) Accesses() uint64 { return s.accesses }

// Warmed reports whether the capture reached the warmup boundary.
func (s *Stream) Warmed() bool { return s.warmed }

// WarmupAt returns the configured warmup boundary in instructions.
func (s *Stream) WarmupAt() uint64 { return s.warmupAt }

// WarmupInstructions returns the instruction count at which the warmup
// snapshot fired (the first record boundary at or past WarmupAt).
func (s *Stream) WarmupInstructions() uint64 { return s.warmInstrAt }

// L1IMisses returns the post-warmup L1 instruction-TLB miss count.
func (s *Stream) L1IMisses() uint64 { return s.l1iMisses }

// L1DMisses returns the post-warmup L1 data-TLB miss count.
func (s *Stream) L1DMisses() uint64 { return s.l1dMisses }

// Decode returns a fresh event iterator over an in-memory stream. It
// panics on spilled streams — callers must branch on Spilled first.
func (s *Stream) Decode() *Decoder {
	if s.Spilled() {
		panic("l2stream: Decode on a spilled stream; replay the spill file instead")
	}
	return &Decoder{buf: s.buf, pageShift: s.cfg.PageShift}
}

// eventBytes is the in-memory cost of one decoded Event, used by
// FootprintBytes to account the DecodeAll memo against cache budgets.
const eventBytes = 32

// DecodeFixed returns a decoder over the fixed-width pre-decoded
// sidecar a persistent-store load carries, or ok=false when the
// stream has none (fresh captures, spilled streams). The sidecar's
// fixed-stride records decode several times cheaper than the varint
// buffer and without materializing a view, so replay kernels prefer
// it when present. The sidecar is validated at load time; the decoder
// has no error path.
func (s *Stream) DecodeFixed() (*FixedDecoder, bool) {
	if s.sidecar == nil {
		return nil, false
	}
	return &FixedDecoder{data: s.sidecar, pageShift: s.cfg.PageShift}, true
}

// DecodeAll returns the stream's full event sequence as one shared
// slice, decoding and memoizing it on first use — so an N-policy
// replay fan-out pays the decode once, not N times. The slice is
// shared between every caller and MUST be treated as read-only.
// Like Decode, it panics on spilled streams.
func (s *Stream) DecodeAll() ([]Event, error) {
	if s.Spilled() {
		panic("l2stream: DecodeAll on a spilled stream; replay the spill file instead")
	}
	s.decodeOnce.Do(func() {
		evs := make([]Event, s.events)
		if s.sidecar != nil {
			d := FixedDecoder{data: s.sidecar, pageShift: s.cfg.PageShift}
			if n := d.NextBlock(evs); uint64(n) != s.events {
				s.decodeErr = fmt.Errorf("l2stream: corrupt sidecar: decoded %d of %d events", n, s.events)
				return
			}
			s.decoded = evs
			return
		}
		d := s.Decode()
		n := d.NextBlock(evs)
		if err := d.Err(); err != nil {
			s.decodeErr = err
			return
		}
		if uint64(n) != s.events || d.pos != len(d.buf) {
			s.decodeErr = fmt.Errorf("l2stream: corrupt stream: decoded %d of %d events", n, s.events)
			return
		}
		s.decoded = evs
	})
	return s.decoded, s.decodeErr
}

// DecodeAccesses returns the stream's access-and-warmup event
// subsequence — the branch-free view non-BranchObserver policies
// replay over, skipping the branch events they would discard (branch
// events outnumber L2 demand accesses by an order of magnitude on
// branchy workloads). The slice is decoded directly from the encoded
// buffer on first use (branch PC deltas are consumed to keep the
// delta chain intact, target deltas are skipped undecoded), memoized
// single-flight, shared between callers and MUST be treated as
// read-only. Like DecodeAll, it panics on spilled streams.
func (s *Stream) DecodeAccesses() ([]Event, error) {
	if s.Spilled() {
		panic("l2stream: DecodeAccesses on a spilled stream; replay the spill file instead")
	}
	s.accOnce.Do(func() {
		n := s.accesses
		if s.warmed && s.warmupAt > 0 {
			n++ // the warmup marker survives into the filtered view
		}
		evs := make([]Event, 0, n)
		buf := s.buf
		shift := s.cfg.PageShift
		var lastPC, lastVPN uint64
		pos := 0
		for pos < len(buf) {
			tag := buf[pos]
			pos++
			kind := tag & wireKindMask
			if kind == wireWarmup {
				evs = append(evs, Event{Kind: EventWarmup})
				continue
			}
			delta, p, ok := decodeVarint(buf, pos)
			if !ok {
				s.accErr = fmt.Errorf("l2stream: corrupt stream: truncated varint at offset %d", pos)
				return
			}
			pos = p
			lastPC += uint64(delta)
			switch kind {
			case wireInstrAccess:
				evs = append(evs, Event{Kind: EventInstrAccess, PC: lastPC, VPN: lastPC >> shift})
			case wireDataAccess:
				delta, p, ok = decodeVarint(buf, pos)
				if !ok {
					s.accErr = fmt.Errorf("l2stream: corrupt stream: truncated varint at offset %d", pos)
					return
				}
				pos = p
				lastVPN += uint64(delta)
				evs = append(evs, Event{Kind: EventDataAccess, PC: lastPC, VPN: lastVPN})
			case wireCondBranch, wireDirBranch, wireIndBranch:
				// The branch PC delta above kept the chain intact; the
				// target delta carries no cross-event state, so skip it.
				if pos, ok = skipVarint(buf, pos); !ok {
					s.accErr = fmt.Errorf("l2stream: corrupt stream: truncated varint at offset %d", pos)
					return
				}
			default:
				s.accErr = fmt.Errorf("l2stream: corrupt stream: unknown event kind %d at offset %d", kind, pos-1)
				return
			}
		}
		if uint64(len(evs)) != n {
			s.accErr = fmt.Errorf("l2stream: corrupt stream: decoded %d of %d access events", len(evs), n)
			return
		}
		s.accEvts = evs
	})
	return s.accEvts, s.accErr
}

// FootprintBytes is the stream's total in-memory cost: the encoded
// buffer plus both decoded views replays memoize (the full DecodeAll
// slice and the branch-free DecodeAccesses slice), accounted at their
// materialized size even before first decode so cache eviction never
// undercounts. The cache accounts this, not just MemBytes, against
// its budget.
func (s *Stream) FootprintBytes() int64 {
	return int64(len(s.buf)) + int64(len(s.sidecar)) + int64(s.events)*eventBytes + int64(s.accesses+1)*eventBytes
}

// Persistent reports whether the stream's backing file (spill case)
// belongs to a persistent capture store, in which case Close never
// deletes it.
func (s *Stream) Persistent() bool { return s.persistent }

// RetainSpill pins the spill file of a spilled stream and returns its
// path with a release function. While retained, a concurrent Close
// (from Cache.Close or cache eviction) defers the file deletion until
// release runs, so a long replay cannot lose the file mid-pass. It
// fails once Close has already run, which is the one clean error a
// replay racing a cache shutdown should see.
//
//chirp:acquires spillref
func (s *Stream) RetainSpill() (string, func(), error) {
	if s.spillPath == "" {
		return "", nil, fmt.Errorf("l2stream: RetainSpill on an in-memory stream")
	}
	s.spillMu.Lock()
	defer s.spillMu.Unlock()
	if s.spillClose {
		return "", nil, fmt.Errorf("l2stream: spilled stream already closed")
	}
	s.spillRefs++
	return s.spillPath, s.releaseSpill, nil
}

// releaseSpill drops one spill reference, deleting the file if Close
// already ran and this was the last reader.
//
//chirp:releases spillref
func (s *Stream) releaseSpill() {
	s.spillMu.Lock()
	s.spillRefs--
	remove := s.spillRefs == 0 && s.spillClose && !s.persistent
	path := s.spillPath
	s.spillMu.Unlock()
	if remove {
		os.Remove(path)
	}
}

// Close releases the stream's spill file, if any. In-memory streams
// need no cleanup and Close is a no-op for them, as it is for
// persistent streams whose files the capture store owns. If replays
// still hold the file via RetainSpill, deletion is deferred until the
// last one releases it.
func (s *Stream) Close() error {
	if s.spillPath == "" {
		return nil
	}
	s.spillMu.Lock()
	if s.spillClose {
		s.spillMu.Unlock()
		return nil
	}
	s.spillClose = true
	remove := s.spillRefs == 0 && !s.persistent
	path := s.spillPath
	s.spillMu.Unlock()
	if remove {
		return os.Remove(path)
	}
	return nil
}
