package l2stream

import (
	"os"
	"sync"
	"testing"

	"github.com/chirplab/chirp/internal/policy"
	"github.com/chirplab/chirp/internal/tlb"
	"github.com/chirplab/chirp/internal/trace"
)

func testConfig(instructions uint64) Config {
	return Config{
		L1I:            tlb.Config{Name: "L1 iTLB", Entries: 16, Ways: 4, PageShift: 12},
		L1D:            tlb.Config{Name: "L1 dTLB", Entries: 16, Ways: 4, PageShift: 12},
		PageShift:      12,
		Instructions:   instructions,
		WarmupFraction: 0.5,
	}
}

// testRecords synthesises a deterministic mixed trace that pressures
// the small test L1s: strided loads over many pages, branches, skips.
func testRecords(n int) []trace.Record {
	rng := trace.NewRNG(7)
	recs := make([]trace.Record, n)
	pc := uint64(0x400000)
	for i := range recs {
		pc += uint64(4 * (1 + rng.Intn(8)))
		if pc > 0x500000 {
			pc = 0x400000 // wrap so the code footprint cycles the L1I
		}
		cls := trace.Class(rng.Intn(trace.NumClasses))
		rec := trace.Record{PC: pc, Class: cls, Skip: uint32(rng.Intn(6))}
		switch {
		case cls.IsMemory():
			rec.EA = uint64(rng.Intn(512)) << 12 // 512 pages >> L1D reach
		case cls.IsBranch():
			rec.Taken = rng.Bool(0.6) || cls != trace.ClassCondBranch
			rec.Target = pc + uint64(rng.Intn(1<<10))
		}
		recs[i] = rec
	}
	return recs
}

// referenceEvents independently L1-filters recs the way RunTLBOnly
// does and returns the expected event sequence.
func referenceEvents(t *testing.T, recs []trace.Record, cfg Config) []Event {
	t.Helper()
	l1i, err := tlb.New(cfg.L1I, policy.NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	l1d, err := tlb.New(cfg.L1D, policy.NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	warmupAt := uint64(float64(cfg.Instructions) * cfg.WarmupFraction)
	if cfg.Instructions == 0 {
		warmupAt = 0
	}
	warmed := warmupAt == 0
	var events []Event
	var instructions uint64
	access := func(l1 *tlb.TLB, pc, vpn uint64, instr bool) {
		a := tlb.Access{PC: pc, VPN: vpn, Instr: instr}
		if _, hit := l1.Lookup(&a); hit {
			return
		}
		kind := EventDataAccess
		if instr {
			kind = EventInstrAccess
		}
		events = append(events, Event{Kind: kind, PC: pc, VPN: vpn})
		l1.Insert(&a, vpn)
	}
	for i := range recs {
		rec := &recs[i]
		instructions += rec.Instructions()
		if !warmed && instructions >= warmupAt {
			warmed = true
			events = append(events, Event{Kind: EventWarmup})
		}
		access(l1i, rec.PC, rec.PC>>cfg.PageShift, true)
		switch {
		case rec.Class.IsMemory():
			access(l1d, rec.PC, rec.EA>>cfg.PageShift, false)
		case rec.Class.IsBranch():
			events = append(events, Event{
				Kind: EventBranch, PC: rec.PC, Target: rec.Target,
				Conditional: rec.Class == trace.ClassCondBranch,
				Indirect:    rec.Class == trace.ClassUncondIndirect,
				Taken:       rec.Taken,
			})
		}
		if cfg.Instructions > 0 && instructions >= cfg.Instructions {
			break
		}
	}
	return events
}

func TestCaptureMatchesReference(t *testing.T) {
	recs := testRecords(5000)
	cfg := testConfig(8000)
	s, err := Capture(trace.NewSliceSource(recs), cfg, CaptureOptions{})
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}
	if s.Spilled() {
		t.Fatal("unbudgeted capture must not spill")
	}
	want := referenceEvents(t, recs, cfg)
	if s.Events() != uint64(len(want)) {
		t.Fatalf("Events() = %d, want %d", s.Events(), len(want))
	}
	d := s.Decode()
	var ev Event
	for i := 0; i < len(want); i++ {
		if !d.Next(&ev) {
			t.Fatalf("stream ended at event %d of %d (err: %v)", i, len(want), d.Err())
		}
		if ev != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, ev, want[i])
		}
	}
	if d.Next(&ev) {
		t.Fatal("decoder produced extra events")
	}
	if d.Err() != nil {
		t.Fatalf("decode error: %v", d.Err())
	}
	if s.MemBytes() == 0 || float64(s.MemBytes())/float64(s.Events()) > 6 {
		t.Errorf("encoding too fat: %d bytes for %d events", s.MemBytes(), s.Events())
	}
}

// TestFixedDecoderMatchesDecode pins the persistent-store sidecar
// decode (FixedDecoder, what fused replays of loaded streams walk) to
// the varint round-trip, field for field. Any divergence here would
// silently break fused/solo bit-identity across a store round-trip.
func TestFixedDecoderMatchesDecode(t *testing.T) {
	recs := testRecords(5000)
	cfg := testConfig(8000)
	s, err := Capture(trace.NewSliceSource(recs), cfg, CaptureOptions{})
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}
	if _, ok := s.DecodeFixed(); ok {
		t.Fatal("fresh capture must not carry a sidecar")
	}
	want, err := s.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	fd := FixedDecoder{data: encodeSidecar(want), pageShift: cfg.PageShift}
	got := make([]Event, len(want)+1)
	n := fd.NextBlock(got)
	if n != len(want) {
		t.Fatalf("FixedDecoder produced %d events, want %d", n, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sidecar event %d = %+v, decoded %+v", i, got[i], want[i])
		}
	}
}

func TestCaptureScalars(t *testing.T) {
	recs := testRecords(3000)
	cfg := testConfig(5000)
	s, err := Capture(trace.NewSliceSource(recs), cfg, CaptureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Warmed() {
		t.Fatal("capture must cross the warmup boundary")
	}
	if s.WarmupAt() != 2500 {
		t.Errorf("WarmupAt = %d, want 2500", s.WarmupAt())
	}
	if s.WarmupInstructions() < s.WarmupAt() {
		t.Errorf("WarmupInstructions %d < WarmupAt %d", s.WarmupInstructions(), s.WarmupAt())
	}
	if s.Instructions() < cfg.Instructions {
		t.Errorf("Instructions = %d, want >= %d", s.Instructions(), cfg.Instructions)
	}
	if s.L1IMisses() == 0 || s.L1DMisses() == 0 {
		t.Errorf("post-warmup L1 misses = (%d, %d), want both > 0", s.L1IMisses(), s.L1DMisses())
	}
}

func TestCaptureDeterministic(t *testing.T) {
	recs := testRecords(2000)
	cfg := testConfig(3000)
	a, err := Capture(trace.NewSliceSource(recs), cfg, CaptureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Capture(trace.NewSliceSource(recs), cfg, CaptureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a.MemBytes() != b.MemBytes() || a.Events() != b.Events() || a.Records() != b.Records() {
		t.Fatalf("captures diverged: (%d B, %d ev) vs (%d B, %d ev)",
			a.MemBytes(), a.Events(), b.MemBytes(), b.Events())
	}
}

func TestCaptureSpills(t *testing.T) {
	recs := testRecords(4000)
	cfg := testConfig(6000)
	mem, err := Capture(trace.NewSliceSource(recs), cfg, CaptureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := Capture(trace.NewSliceSource(recs), cfg, CaptureOptions{MaxBytes: 64, SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	if !sp.Spilled() {
		t.Fatal("64-byte budget must force a spill")
	}
	if sp.MemBytes() != 0 {
		t.Errorf("spilled stream holds %d in-memory bytes", sp.MemBytes())
	}
	// Scalars must match the in-memory capture exactly.
	if sp.Records() != mem.Records() || sp.Instructions() != mem.Instructions() ||
		sp.WarmupInstructions() != mem.WarmupInstructions() ||
		sp.L1IMisses() != mem.L1IMisses() || sp.L1DMisses() != mem.L1DMisses() {
		t.Errorf("spilled scalars diverge from in-memory capture")
	}
	// The spill file must hold exactly the consumed record prefix.
	fs, err := trace.OpenFile(sp.SpillPath())
	if err != nil {
		t.Fatalf("opening spill file: %v", err)
	}
	got := trace.Collect(fs)
	fs.Close()
	if uint64(len(got)) != sp.Records() {
		t.Fatalf("spill file holds %d records, capture consumed %d", len(got), sp.Records())
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Fatalf("spilled record %d diverged", i)
		}
	}
	path := sp.SpillPath()
	if err := sp.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("Close must delete the spill file")
	}
}

func TestCacheSingleFlight(t *testing.T) {
	recs := testRecords(2000)
	cfg := testConfig(3000)
	c := NewCache(0, t.TempDir())
	defer c.Close()
	var mu sync.Mutex
	captures := 0
	key := Key{Workload: "w0", Config: cfg}
	var wg sync.WaitGroup
	streams := make([]*Stream, 8)
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := c.GetOrCapture(key, func(opts CaptureOptions) (*Stream, error) {
				mu.Lock()
				captures++
				mu.Unlock()
				return Capture(trace.NewSliceSource(recs), cfg, opts)
			})
			if err != nil {
				t.Error(err)
				return
			}
			streams[i] = s
		}()
	}
	wg.Wait()
	if captures != 1 {
		t.Errorf("capture ran %d times under concurrency, want 1", captures)
	}
	for i := 1; i < 8; i++ {
		if streams[i] != streams[0] {
			t.Fatal("concurrent callers got distinct streams")
		}
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	recs := testRecords(2000)
	cfg := testConfig(3000)
	probe, err := Capture(trace.NewSliceSource(recs), cfg, CaptureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	one := probe.FootprintBytes()
	// Budget for two streams; insert three distinct keys.
	c := NewCache(2*one+one/2, t.TempDir())
	defer c.Close()
	for _, w := range []string{"a", "b", "c"} {
		if _, err := c.GetOrCapture(Key{Workload: w, Config: cfg}, func(opts CaptureOptions) (*Stream, error) {
			return Capture(trace.NewSliceSource(recs), cfg, opts)
		}); err != nil {
			t.Fatal(err)
		}
	}
	if c.Used() > c.Budget() {
		t.Errorf("cache over budget: %d > %d", c.Used(), c.Budget())
	}
	if c.Len() != 2 {
		t.Errorf("cache holds %d streams after eviction, want 2", c.Len())
	}
}

func TestCacheRetriesFailedCapture(t *testing.T) {
	c := NewCache(0, t.TempDir())
	defer c.Close()
	key := Key{Workload: "w", Config: testConfig(100)}
	calls := 0
	fail := func(CaptureOptions) (*Stream, error) {
		calls++
		return nil, os.ErrPermission
	}
	if _, err := c.GetOrCapture(key, fail); err == nil {
		t.Fatal("expected capture error")
	}
	recs := testRecords(500)
	cfg := testConfig(100)
	if _, err := c.GetOrCapture(Key{Workload: "w", Config: cfg}, func(opts CaptureOptions) (*Stream, error) {
		calls++
		return Capture(trace.NewSliceSource(recs), cfg, opts)
	}); err != nil {
		t.Fatalf("retry after failure: %v", err)
	}
	if calls != 2 {
		t.Errorf("capture ran %d times, want 2 (fail + retry)", calls)
	}
}

func TestDecodeAllMatchesNext(t *testing.T) {
	recs := testRecords(5000)
	cfg := testConfig(8000)
	s, err := Capture(trace.NewSliceSource(recs), cfg, CaptureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Reference: the event-at-a-time decoder, which fully populates
	// every Event (unused fields zero).
	var want []Event
	d := s.Decode()
	var ev Event
	for d.Next(&ev) {
		want = append(want, ev)
	}
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
	evs, err := s.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != len(want) {
		t.Fatalf("DecodeAll returned %d events, Next produced %d", len(evs), len(want))
	}
	// DecodeAll decodes into a fresh zeroed slice, so fields NextBlock
	// leaves untouched are zero — directly comparable to Next's output.
	for i := range want {
		if evs[i] != want[i] {
			t.Fatalf("event %d: DecodeAll %+v, Next %+v", i, evs[i], want[i])
		}
	}
	// The decode is memoized: a second call returns the same slice.
	again, err := s.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	if &again[0] != &evs[0] {
		t.Error("DecodeAll re-decoded instead of returning the memoized slice")
	}
}

// TestDecodeAccessesMatchesFilteredDecodeAll: the branch-free view
// must be exactly the full view with branch events removed — same
// order, same PCs, same VPNs, same warmup position.
func TestDecodeAccessesMatchesFilteredDecodeAll(t *testing.T) {
	recs := testRecords(5000)
	cfg := testConfig(8000)
	s, err := Capture(trace.NewSliceSource(recs), cfg, CaptureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := s.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	var want []Event
	for _, ev := range full {
		if ev.Kind != EventBranch {
			want = append(want, ev)
		}
	}
	got, err := s.DecodeAccesses()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("DecodeAccesses returned %d events, filtered DecodeAll %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: DecodeAccesses %+v, filtered %+v", i, got[i], want[i])
		}
	}
	// The view is memoized: a second call returns the same slice.
	again, err := s.DecodeAccesses()
	if err != nil {
		t.Fatal(err)
	}
	if &again[0] != &got[0] {
		t.Error("DecodeAccesses re-decoded instead of returning the memoized slice")
	}
	// Both memoized views fit the accounted footprint.
	if fp := s.FootprintBytes(); fp < int64(len(s.buf))+int64(len(full)+len(got))*eventBytes {
		t.Errorf("FootprintBytes %d undercounts buf+both views", fp)
	}
	// A stream reconstructed without the capture-built views (the shape
	// a spill reload produces) must varint-decode both views to slices
	// identical to the eager ones.
	cold := freshView(s)
	coldFull, err := cold.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(coldFull) != len(full) {
		t.Fatalf("cold DecodeAll returned %d events, eager %d", len(coldFull), len(full))
	}
	for i := range full {
		if coldFull[i] != full[i] {
			t.Fatalf("event %d: cold DecodeAll %+v, eager %+v", i, coldFull[i], full[i])
		}
	}
	coldAcc, err := cold.DecodeAccesses()
	if err != nil {
		t.Fatal(err)
	}
	if len(coldAcc) != len(got) {
		t.Fatalf("cold DecodeAccesses returned %d events, eager %d", len(coldAcc), len(got))
	}
	for i := range got {
		if coldAcc[i] != got[i] {
			t.Fatalf("event %d: cold DecodeAccesses %+v, eager %+v", i, coldAcc[i], got[i])
		}
	}
}

// TestDecodeViewsSingleFlight hammers both memoizations from many
// goroutines; under -race this is the regression test for sharing one
// stream across engine workers, and each view must come back as the
// same materialized slice for every caller.
func TestDecodeViewsSingleFlight(t *testing.T) {
	recs := testRecords(4000)
	cfg := testConfig(6000)
	s, err := Capture(trace.NewSliceSource(recs), cfg, CaptureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 16
	fulls := make([][]Event, workers)
	accs := make([][]Event, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Alternate which view each goroutine touches first.
			if i%2 == 0 {
				fulls[i], _ = s.DecodeAll()
				accs[i], _ = s.DecodeAccesses()
			} else {
				accs[i], _ = s.DecodeAccesses()
				fulls[i], _ = s.DecodeAll()
			}
		}()
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if len(fulls[i]) == 0 || &fulls[i][0] != &fulls[0][0] {
			t.Fatalf("goroutine %d got a different DecodeAll slice", i)
		}
		if len(accs[i]) == 0 || &accs[i][0] != &accs[0][0] {
			t.Fatalf("goroutine %d got a different DecodeAccesses slice", i)
		}
	}
}

func TestDecoderRejectsGarbage(t *testing.T) {
	d := &Decoder{buf: []byte{0x07, 0xff}, pageShift: 12} // kind 7 unused
	var ev Event
	if d.Next(&ev) {
		t.Fatal("decoder accepted an unknown event kind")
	}
	if d.Err() == nil {
		t.Fatal("decoder must report corruption")
	}
	// Truncated varint payload.
	d = &Decoder{buf: []byte{wireDataAccess, 0x80}, pageShift: 12}
	if d.Next(&ev) || d.Err() == nil {
		t.Fatal("decoder must reject a truncated varint")
	}
}

// freshView returns a Stream sharing s's encoded buffer but with its
// own decode memos, so benchmarks can measure a cold decode per
// iteration without re-capturing.
func freshView(s *Stream) *Stream {
	return &Stream{
		cfg: s.cfg, buf: s.buf,
		records: s.records, instructions: s.instructions,
		events: s.events, accesses: s.accesses,
		warmed: s.warmed, warmupAt: s.warmupAt, warmInstrAt: s.warmInstrAt,
		l1iMisses: s.l1iMisses, l1dMisses: s.l1dMisses,
	}
}

// BenchmarkDecodeViews compares a cold decode of the full event view
// against the branch-free access view non-observer policies replay.
func BenchmarkDecodeViews(b *testing.B) {
	recs := testRecords(200000)
	cfg := testConfig(0)
	s, err := Capture(trace.NewSliceSource(recs), cfg, CaptureOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			evs, err := freshView(s).DecodeAll()
			if err != nil || uint64(len(evs)) != s.Events() {
				b.Fatalf("decoded %d events (%v)", len(evs), err)
			}
		}
		b.ReportMetric(float64(s.Events())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mevents/s")
	})
	b.Run("accesses", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			evs, err := freshView(s).DecodeAccesses()
			if err != nil || uint64(len(evs)) < s.Accesses() {
				b.Fatalf("decoded %d events (%v)", len(evs), err)
			}
		}
		b.ReportMetric(float64(s.Accesses())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Maccesses/s")
	})
}
