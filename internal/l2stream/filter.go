package l2stream

import "github.com/chirplab/chirp/internal/tlb"

// l1Filter is the capture path's stand-in for one L1 TLB simulation:
// a set-associative true-LRU membership filter. Which accesses hit
// under exact LRU depends only on the access order, never on way
// placement or victim tie-breaking (stack positions are a permutation,
// so the LRU entry is unique), so this produces the same hit/miss
// sequence — and the same miss count — as a tlb.TLB running
// policy.NewLRU, at a fraction of the cost: each set is kept
// MRU-ordered in place, making lookup a short scan and both the
// recency update and the fill a single memmove.
type l1Filter struct {
	ways   int
	mask   uint64
	vpns   []uint64 // sets × ways; each set's valid prefix, MRU first
	used   []int32  // valid entries per set
	misses uint64
}

func newL1Filter(cfg tlb.Config) (*l1Filter, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := cfg.Entries / cfg.Ways
	return &l1Filter{
		ways: cfg.Ways,
		mask: uint64(sets - 1),
		vpns: make([]uint64, cfg.Entries),
		used: make([]int32, sets),
	}, nil
}

// access looks vpn up, updates recency, and fills on miss. It reports
// whether the lookup hit.
//
//chirp:hotpath
func (f *l1Filter) access(vpn uint64) bool {
	set := vpn & f.mask
	base := int(set) * f.ways
	n := int(f.used[set])
	w := f.vpns[base : base+n]
	for i, v := range w {
		if v == vpn {
			copy(w[1:i+1], w[:i])
			w[0] = vpn
			return true
		}
	}
	f.misses++
	if n < f.ways {
		f.used[set] = int32(n + 1)
		n++
		w = f.vpns[base : base+n]
	}
	copy(w[1:], w) // shifts right; the LRU tail entry falls off
	w[0] = vpn
	return false
}
