package l2stream

import (
	"os"
	"testing"

	"github.com/chirplab/chirp/internal/trace"
)

// TestPersistentSecondCacheCapturesNothing is the cross-process reuse
// contract: a second cache (standing in for a second process) on the
// same capture directory must perform zero captures — every stream
// loads from disk, misses stay flat, and the loaded stream is
// event-identical to the captured one.
func TestPersistentSecondCacheCapturesNothing(t *testing.T) {
	recs := testRecords(3000)
	cfg := testConfig(5000)
	dir := t.TempDir()

	first, err := NewPersistent(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	writes0 := obsCacheDiskWrites.Value()
	keys := []Key{
		{Workload: "a", Config: cfg},
		{Workload: "b", Config: cfg},
	}
	want := make(map[string]*Stream)
	for _, k := range keys {
		s, err := first.GetOrCapture(k, func(opts CaptureOptions) (*Stream, error) {
			return Capture(trace.NewSliceSource(recs), cfg, opts)
		})
		if err != nil {
			t.Fatal(err)
		}
		want[k.Workload] = s
	}
	if d := obsCacheDiskWrites.Value() - writes0; d != 2 {
		t.Errorf("disk writes delta = %d, want 2", d)
	}
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}

	second, err := NewPersistent(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	misses0, diskHits0 := obsCacheMisses.Value(), obsCacheDiskHits.Value()
	for _, k := range keys {
		got, err := second.GetOrCapture(k, func(CaptureOptions) (*Stream, error) {
			t.Errorf("second cache captured %s instead of loading it", k.Workload)
			return nil, os.ErrInvalid
		})
		if err != nil {
			t.Fatal(err)
		}
		w := want[k.Workload]
		if got.Records() != w.Records() || got.Instructions() != w.Instructions() ||
			got.Events() != w.Events() || got.Accesses() != w.Accesses() ||
			got.WarmupAt() != w.WarmupAt() || got.WarmupInstructions() != w.WarmupInstructions() ||
			got.L1IMisses() != w.L1IMisses() || got.L1DMisses() != w.L1DMisses() ||
			got.Warmed() != w.Warmed() {
			t.Fatalf("loaded scalars diverge for %s", k.Workload)
		}
		ge, err := got.DecodeAll()
		if err != nil {
			t.Fatal(err)
		}
		we, err := w.DecodeAll()
		if err != nil {
			t.Fatal(err)
		}
		if len(ge) != len(we) {
			t.Fatalf("loaded stream has %d events, captured %d", len(ge), len(we))
		}
		for i := range we {
			if ge[i] != we[i] {
				t.Fatalf("event %d diverged after disk round-trip", i)
			}
		}
	}
	if d := obsCacheMisses.Value() - misses0; d != 0 {
		t.Errorf("second cache counted %d misses, want 0", d)
	}
	if d := obsCacheDiskHits.Value() - diskHits0; d != 2 {
		t.Errorf("disk hits delta = %d, want 2", d)
	}
}

// TestPersistentSpillAdoption: a capture that spills inside a
// persistent cache is adopted into the store (its record file renamed,
// not copied), survives Close, and a later cache replays it from the
// same file.
func TestPersistentSpillAdoption(t *testing.T) {
	recs := testRecords(4000)
	cfg := testConfig(6000)
	dir := t.TempDir()
	c, err := NewPersistent(64, dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key{Workload: "w", Config: cfg}
	s, err := c.GetOrCapture(key, func(opts CaptureOptions) (*Stream, error) {
		return Capture(trace.NewSliceSource(recs), cfg, opts)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Spilled() {
		t.Fatal("64-byte budget must force a spill")
	}
	if !s.Persistent() {
		t.Fatal("spilled capture was not adopted into the store")
	}
	path := s.SpillPath()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("Close deleted the store-owned spill file: %v", err)
	}

	c2, err := NewPersistent(64, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	s2, err := c2.GetOrCapture(key, func(CaptureOptions) (*Stream, error) {
		t.Error("adopted spill was re-captured")
		return nil, os.ErrInvalid
	})
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Spilled() || s2.Records() != s.Records() {
		t.Fatalf("loaded spill stream diverges: spilled=%v records=%d want %d",
			s2.Spilled(), s2.Records(), s.Records())
	}
	fs, err := trace.OpenFile(s2.SpillPath())
	if err != nil {
		t.Fatal(err)
	}
	n := len(trace.Collect(fs))
	fs.Close()
	if uint64(n) != s.Records() {
		t.Errorf("adopted file holds %d records, capture consumed %d", n, s.Records())
	}
}

// TestPersistentCorruptionRecaptures: a truncated, garbage, or
// version-mismatched store file must read as absent — the cache
// recaptures and atomically replaces it rather than erroring out.
func TestPersistentCorruptionRecaptures(t *testing.T) {
	recs := testRecords(2000)
	cfg := testConfig(3000)
	key := Key{Workload: "w", Config: cfg}

	corrupt := []struct {
		name string
		mod  func(t *testing.T, meta string)
	}{
		{"truncated", func(t *testing.T, meta string) {
			if err := os.Truncate(meta, storeHeaderSize-1); err != nil {
				t.Fatal(err)
			}
		}},
		{"bad-magic", func(t *testing.T, meta string) {
			data, err := os.ReadFile(meta)
			if err != nil {
				t.Fatal(err)
			}
			data[0] ^= 0xff
			if err := os.WriteFile(meta, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"version-mismatch", func(t *testing.T, meta string) {
			data, err := os.ReadFile(meta)
			if err != nil {
				t.Fatal(err)
			}
			data[4]++ // codec version bump invalidates the file
			if err := os.WriteFile(meta, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"short-payload", func(t *testing.T, meta string) {
			fi, err := os.Stat(meta)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(meta, fi.Size()-1); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range corrupt {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			c, err := NewPersistent(0, dir)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := c.GetOrCapture(key, func(opts CaptureOptions) (*Stream, error) {
				return Capture(trace.NewSliceSource(recs), cfg, opts)
			}); err != nil {
				t.Fatal(err)
			}
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
			meta, _ := (&store{dir: dir}).paths(key)
			tc.mod(t, meta)

			c2, err := NewPersistent(0, dir)
			if err != nil {
				t.Fatal(err)
			}
			defer c2.Close()
			captures := 0
			s, err := c2.GetOrCapture(key, func(opts CaptureOptions) (*Stream, error) {
				captures++
				return Capture(trace.NewSliceSource(recs), cfg, opts)
			})
			if err != nil {
				t.Fatalf("corrupted store file broke GetOrCapture: %v", err)
			}
			if captures != 1 {
				t.Errorf("capture ran %d times, want 1 (recapture past the corrupt file)", captures)
			}
			if s.Events() == 0 {
				t.Error("recaptured stream is empty")
			}
			// The recapture healed the store: a third cache loads it.
			c3, err := NewPersistent(0, dir)
			if err != nil {
				t.Fatal(err)
			}
			defer c3.Close()
			if _, err := c3.GetOrCapture(key, func(CaptureOptions) (*Stream, error) {
				t.Error("store not healed; captured again")
				return nil, os.ErrInvalid
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFingerprintSensitivity: any key field change must address a
// different store file, so stale captures are never served.
func TestFingerprintSensitivity(t *testing.T) {
	base := Key{Workload: "w", Config: testConfig(3000)}
	mut := []Key{
		{Workload: "x", Config: base.Config},
		{Workload: "w", Config: func() Config { c := base.Config; c.Instructions = 4000; return c }()},
		{Workload: "w", Config: func() Config { c := base.Config; c.WarmupFraction = 0.25; return c }()},
		{Workload: "w", Config: func() Config { c := base.Config; c.PageShift = 13; return c }()},
		{Workload: "w", Config: func() Config { c := base.Config; c.L1D.Entries = 32; return c }()},
		// Two specs differing only in one client's rate fraction hash to
		// distinct spec digests, which must key distinct captures.
		{Workload: "w", Spec: "5a1f0b0c8d2e4f6a7b8c9d0e1f2a3b4c", Config: base.Config},
		{Workload: "w", Spec: "5a1f0b0c8d2e4f6a7b8c9d0e1f2a3b4d", Config: base.Config},
	}
	seen := map[[32]byte]int{fingerprint(base): -1}
	for i, k := range mut {
		h := fingerprint(k)
		if j, dup := seen[h]; dup {
			t.Errorf("key %d collides with %d", i, j)
		}
		seen[h] = i
	}
}
