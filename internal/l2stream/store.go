package l2stream

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// CodecVersion identifies the on-disk and in-memory event encoding.
// It is folded into every persistent-store key, so bumping it after
// an encoding change invalidates all previously persisted captures at
// once — stale files are simply never addressed again.
const CodecVersion = 2

// Store file format (".l2s"): a fixed 128-byte header, the stream's
// delta/varint event buffer verbatim, then a fixed-width pre-decoded
// event sidecar (storeEventSize bytes per event). Loading is one
// os.ReadFile: the middle of that allocation IS the stream's encoded
// buffer (zero-copy), and the sidecar decodes with a fixed-stride
// loop — several times cheaper than the varint pass — into the
// stream's memoized full event view, so warm replays never touch the
// varint decoder at all. Spilled streams write a header-only .l2s
// carrying the run scalars, with the raw CHTR record file adopted into
// the store next to it as ".chtr".
const (
	storeMagic      = "CHL2"
	storeHeaderSize = 128
	storeFlagSpill  = 1

	// Sidecar record: kind+flag byte, PC, then the kind's auxiliary
	// word (data-access VPN or branch target; unused otherwise).
	storeEventSize = 17
	storeFlagTaken = 1 << 4
	storeFlagCond  = 1 << 5
	storeFlagInd   = 1 << 6
)

// store is the cache's persistent tier: a content-addressed directory
// of captured streams, keyed by the capture key fingerprint (workload
// name + policy-invariant config + codec version). Writers stage into
// a temp file and atomically rename, so concurrent processes sharing
// one directory either see a complete capture or none — the worst
// race outcome is two processes capturing the same stream once each.
type store struct {
	dir string

	// mu serializes the size-budget GC; limit <= 0 means unbounded.
	mu    sync.Mutex
	limit int64
}

// newStore opens (creating if needed) a persistent capture directory.
func newStore(dir string) (*store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("l2stream: capture dir: %w", err)
	}
	return &store{dir: dir}, nil
}

// setLimit installs the directory's byte budget and immediately
// rebalances, so a long-lived directory inherited from earlier runs is
// trimmed at open rather than on the first write.
func (st *store) setLimit(maxBytes int64) {
	st.mu.Lock()
	st.limit = maxBytes
	st.mu.Unlock()
	st.gc()
}

// fingerprint derives the content address of a capture key: every
// field of the key plus the codec version, hashed. Two runs agree on
// the file name exactly when they would produce byte-identical
// captures.
func fingerprint(key Key) [sha256.Size]byte {
	c := key.Config
	id := fmt.Sprintf(
		"chirp-l2stream-v%d|%q|l1i:%q,%d,%d,%d|l1d:%q,%d,%d,%d|shift:%d|instr:%d|warm:%g",
		CodecVersion, key.Workload,
		c.L1I.Name, c.L1I.Entries, c.L1I.Ways, c.L1I.PageShift,
		c.L1D.Name, c.L1D.Entries, c.L1D.Ways, c.L1D.PageShift,
		c.PageShift, c.Instructions, c.WarmupFraction,
	)
	// The spec hash is appended only when present so legacy (spec-less)
	// fingerprints — and the persistent captures stored under them —
	// stay valid.
	if key.Spec != "" {
		id += fmt.Sprintf("|spec:%q", key.Spec)
	}
	return sha256.Sum256([]byte(id))
}

// paths returns the metadata and spill-payload file paths for key.
func (st *store) paths(key Key) (meta, spill string) {
	h := fingerprint(key)
	base := filepath.Join(st.dir, fmt.Sprintf("chirp-%x", h[:12]))
	return base + ".l2s", base + ".chtr"
}

// Derived sidecar format (".l2d"): magic, the derived-format and
// stream-codec versions, the full derived key string, then a
// checksummed payload. The payload's meaning belongs to the
// DerivedSpec that wrote it; the store only guarantees that what load
// returns is byte-identical to what save was given, under the same
// key, or nothing at all.
const (
	derivedMagic = "CHDV"
	// DerivedFormatVersion identifies the sidecar container framing.
	// Specs version their payloads separately, inside their keys.
	// Version 2 replaced the payload's FNV-64a checksum with CRC-32C:
	// warm sweeps checksum every sidecar they load, and the
	// hardware-assisted CRC took that from ~15% of a warm fig7
	// iteration's profile to noise.
	DerivedFormatVersion = 2
)

// derivedCRC is the sidecar payload checksum table (Castagnoli, the
// polynomial with hardware support on amd64 and arm64).
var derivedCRC = crc32.MakeTable(crc32.Castagnoli)

// derivedPath returns the sidecar file path for a derived key: the
// stream's content-addressed base plus a hash of the derived key.
func (st *store) derivedPath(key Key, dkey string) string {
	meta, _ := st.paths(key)
	h := fnv.New64a()
	h.Write([]byte(dkey))
	return fmt.Sprintf("%s-d%016x.l2d", strings.TrimSuffix(meta, ".l2s"), h.Sum64())
}

// attachDerived wires the stream's derived-view persistence hooks to
// this store under key. Called once, while the stream is still private
// to the loading/saving goroutine.
func (st *store) attachDerived(s *Stream, key Key) {
	s.dvLoad = func(dkey string) ([]byte, func()) { return st.loadDerived(key, dkey) }
	s.dvSave = func(dkey string, payload []byte) {
		if err := st.saveDerived(key, dkey, payload); err != nil {
			obsCacheDiskErrors.Inc()
		} else {
			obsDerivedDiskWrites.Inc()
		}
	}
}

// sidecarBufs recycles whole-file read buffers across sidecar loads:
// warm sweeps load a handful of sidecars per stream, and re-zeroing a
// fresh allocation for each was measurable next to the decode itself.
var sidecarBufs sync.Pool

// loadDerived returns the persisted payload for (key, dkey) plus a
// hook releasing the pooled buffer the payload aliases, or (nil, nil)
// when the store holds nothing usable — missing reads as absent
// silently; a present-but-invalid file counts as corruption and also
// reads as absent, so the caller recomputes and atomically replaces
// it.
func (st *store) loadDerived(key Key, dkey string) ([]byte, func()) {
	f, err := os.Open(st.derivedPath(key, dkey))
	if err != nil {
		if !os.IsNotExist(err) {
			obsCacheDiskErrors.Inc()
		}
		return nil, nil
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		obsCacheDiskErrors.Inc()
		return nil, nil
	}
	size := int(fi.Size())
	var data []byte
	if bp, _ := sidecarBufs.Get().(*[]byte); bp != nil && cap(*bp) >= size {
		data = (*bp)[:size]
	} else {
		data = make([]byte, size)
	}
	release := func() { sidecarBufs.Put(&data) }
	if _, err := io.ReadFull(f, data); err != nil {
		obsCacheDiskErrors.Inc()
		release()
		return nil, nil
	}
	payload, ok := decodeDerivedFile(data, dkey)
	if !ok {
		obsDerivedCorrupt.Inc()
		release()
		return nil, nil
	}
	return payload, release
}

// decodeDerivedFile validates a sidecar's framing against the derived
// key and returns its payload. Split from loadDerived for tests.
func decodeDerivedFile(data []byte, dkey string) ([]byte, bool) {
	if len(data) < 16 || string(data[:4]) != derivedMagic {
		return nil, false
	}
	if binary.LittleEndian.Uint32(data[4:8]) != DerivedFormatVersion ||
		binary.LittleEndian.Uint32(data[8:12]) != CodecVersion {
		return nil, false
	}
	keyLen := int(binary.LittleEndian.Uint32(data[12:16]))
	if len(data) < 16+keyLen+16 {
		return nil, false
	}
	if string(data[16:16+keyLen]) != dkey {
		return nil, false
	}
	body := data[16+keyLen:]
	payloadLen := binary.LittleEndian.Uint64(body[:8])
	sum := binary.LittleEndian.Uint64(body[8:16])
	payload := body[16:]
	if uint64(len(payload)) != payloadLen {
		return nil, false
	}
	if uint64(crc32.Checksum(payload, derivedCRC)) != sum {
		return nil, false
	}
	return payload, true
}

// encodeDerivedFile frames a payload under its derived key.
func encodeDerivedFile(dkey string, payload []byte) []byte {
	out := make([]byte, 0, 16+len(dkey)+16+len(payload))
	out = append(out, derivedMagic...)
	out = binary.LittleEndian.AppendUint32(out, DerivedFormatVersion)
	out = binary.LittleEndian.AppendUint32(out, CodecVersion)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(dkey)))
	out = append(out, dkey...)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	out = binary.LittleEndian.AppendUint64(out, uint64(crc32.Checksum(payload, derivedCRC)))
	return append(out, payload...)
}

// saveDerived persists a derived payload under (key, dkey), staged and
// atomically renamed like every other store write, then rebalances the
// directory budget.
func (st *store) saveDerived(key Key, dkey string, payload []byte) error {
	f, err := os.CreateTemp(st.dir, "chirp-*.l2d.tmp")
	if err != nil {
		return fmt.Errorf("l2stream: staging derived sidecar: %w", err)
	}
	tmp := f.Name()
	_, err = f.Write(encodeDerivedFile(dkey, payload))
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, st.derivedPath(key, dkey))
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("l2stream: persisting derived sidecar: %w", err)
	}
	st.gc()
	return nil
}

// gc holds the persistent directory to its byte budget: capture groups
// — a stream's .l2s metadata plus its .chtr spill payload and .l2d
// derived sidecars, which stand or fall together — are evicted
// least-recently-used first (by the group's newest mtime; loads touch
// the .l2s, so "used" means read or written) until the directory
// fits. Concurrent processes sharing a directory may each run gc; the
// worst race outcome is a double eviction of the same group, and a
// load racing an eviction reads as absent and recaptures.
func (st *store) gc() {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.limit <= 0 {
		return
	}
	type group struct {
		paths []string
		bytes int64
		mtime time.Time
	}
	ents, err := os.ReadDir(st.dir)
	if err != nil {
		obsCacheDiskErrors.Inc()
		return
	}
	groups := map[string]*group{}
	total := int64(0)
	for _, ent := range ents {
		name := ent.Name()
		// Group id = the content-address hex in "chirp-<hex>…". Temp
		// files and foreign files are left alone.
		if !strings.HasPrefix(name, "chirp-") || strings.HasSuffix(name, ".tmp") {
			continue
		}
		ext := filepath.Ext(name)
		if ext != ".l2s" && ext != ".chtr" && ext != ".l2d" {
			continue
		}
		id := strings.TrimPrefix(name, "chirp-")
		if i := strings.IndexAny(id, "-."); i >= 0 {
			id = id[:i]
		}
		info, err := ent.Info()
		if err != nil {
			continue
		}
		g := groups[id]
		if g == nil {
			g = &group{}
			groups[id] = g
		}
		g.paths = append(g.paths, filepath.Join(st.dir, name))
		g.bytes += info.Size()
		if m := info.ModTime(); m.After(g.mtime) {
			g.mtime = m
		}
		total += info.Size()
	}
	obsStoreBytes.Set(total)
	if total <= st.limit {
		return
	}
	order := make([]*group, 0, len(groups))
	//chirp:allow determinism groups are sorted by mtime below before eviction order matters
	for _, g := range groups {
		order = append(order, g)
	}
	sort.Slice(order, func(i, j int) bool { return order[i].mtime.Before(order[j].mtime) })
	for _, g := range order {
		if total <= st.limit {
			break
		}
		for _, p := range g.paths {
			if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
				obsCacheDiskErrors.Inc()
			}
		}
		total -= g.bytes
		obsStoreEvictions.Inc()
	}
	obsStoreBytes.Set(total)
}

// load returns the persisted stream for key, or (nil, nil) when the
// store holds nothing usable for it — a missing, truncated, or
// mismatched file all read as "absent", so the caller recaptures and
// save atomically replaces whatever was there.
func (st *store) load(key Key) (*Stream, error) {
	meta, spill := st.paths(key)
	data, err := os.ReadFile(meta)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("l2stream: reading persisted capture: %w", err)
	}
	if len(data) < storeHeaderSize || string(data[:4]) != storeMagic {
		return nil, nil
	}
	if binary.LittleEndian.Uint32(data[4:8]) != CodecVersion {
		return nil, nil
	}
	want := fingerprint(key)
	if string(data[8:8+sha256.Size]) != string(want[:]) {
		return nil, nil
	}
	flags := data[40]
	u := func(i int) uint64 { return binary.LittleEndian.Uint64(data[48+8*i:]) }
	s := &Stream{
		cfg:          key.Config,
		records:      u(0),
		instructions: u(1),
		events:       u(2),
		accesses:     u(3),
		warmupAt:     u(4),
		warmInstrAt:  u(5),
		l1iMisses:    u(6),
		l1dMisses:    u(7),
		warmed:       u(8) != 0,
		persistent:   true,
	}
	buflen := u(9)
	if flags&storeFlagSpill != 0 {
		if buflen != 0 {
			return nil, nil
		}
		if _, err := os.Stat(spill); err != nil {
			return nil, nil // metadata without its payload: recapture
		}
		s.spillPath = spill
		return s, nil
	}
	if uint64(len(data)-storeHeaderSize) != buflen+s.events*storeEventSize {
		return nil, nil
	}
	// Zero-copy: the middle of the ReadFile allocation is the encoded
	// event buffer and the tail is the fixed-width sidecar; no decode,
	// no second copy. The sidecar is validated here once so FixedDecoder
	// needs no error path.
	s.buf = data[storeHeaderSize : storeHeaderSize+buflen]
	side := data[storeHeaderSize+buflen:]
	if !sidecarValid(side) {
		return nil, nil
	}
	s.sidecar = side
	st.attachDerived(s, key)
	// Touch the metadata file so the GC's LRU order counts reads as
	// uses, not just the original capture time. Best-effort, and only
	// worth a syscall when a byte budget means the GC can actually run.
	st.mu.Lock()
	limited := st.limit > 0
	st.mu.Unlock()
	if limited {
		now := time.Now()
		_ = os.Chtimes(meta, now, now)
	}
	return s, nil
}

// sidecarValid scans the sidecar's kind bytes. A malformed record
// reads as "absent" like any other corruption, so the cache
// recaptures.
func sidecarValid(data []byte) bool {
	for i := 0; i < len(data); i += storeEventSize {
		if data[i]&0x0f > byte(EventWarmup) {
			return false
		}
	}
	return true
}

// FixedDecoder iterates the fixed-width sidecar records of a
// persistently loaded stream. It mirrors Decoder's NextBlock shape so
// replay kernels can stream either encoding in blocks, but each record
// decodes with three fixed-offset loads instead of a varint chain.
type FixedDecoder struct {
	data      []byte
	pageShift uint
	pos       int
}

// NextBlock decodes up to len(evs) events and returns how many it
// produced; 0 means the sidecar is exhausted.
func (d *FixedDecoder) NextBlock(evs []Event) int {
	n := 0
	for n < len(evs) && d.pos+storeEventSize <= len(d.data) {
		rec := d.data[d.pos : d.pos+storeEventSize : d.pos+storeEventSize]
		d.pos += storeEventSize
		ev := &evs[n]
		n++
		*ev = Event{Kind: EventKind(rec[0] & 0x0f)}
		pc := binary.LittleEndian.Uint64(rec[1:9])
		aux := binary.LittleEndian.Uint64(rec[9:17])
		switch ev.Kind {
		case EventInstrAccess:
			ev.PC, ev.VPN = pc, pc>>d.pageShift
		case EventDataAccess:
			ev.PC, ev.VPN = pc, aux
		case EventBranch:
			ev.PC, ev.Target = pc, aux
			ev.Taken = rec[0]&storeFlagTaken != 0
			ev.Conditional = rec[0]&storeFlagCond != 0
			ev.Indirect = rec[0]&storeFlagInd != 0
		}
	}
	return n
}

// encodeSidecar serializes the full event view in fixed-width form.
func encodeSidecar(evs []Event) []byte {
	out := make([]byte, len(evs)*storeEventSize)
	for i := range evs {
		ev := &evs[i]
		rec := out[i*storeEventSize:]
		b := byte(ev.Kind)
		aux := uint64(0)
		switch ev.Kind {
		case EventDataAccess:
			aux = ev.VPN
		case EventBranch:
			aux = ev.Target
			if ev.Taken {
				b |= storeFlagTaken
			}
			if ev.Conditional {
				b |= storeFlagCond
			}
			if ev.Indirect {
				b |= storeFlagInd
			}
		}
		rec[0] = b
		binary.LittleEndian.PutUint64(rec[1:9], ev.PC)
		binary.LittleEndian.PutUint64(rec[9:17], aux)
	}
	return out
}

// save persists a freshly captured stream under key. In-memory
// streams write header+buffer to a temp file and rename into place;
// spilled streams adopt their CHTR record file into the store (an
// atomic rename when the capture spilled into the store directory,
// which the cache arranges) and then write the header-only metadata.
// After a successful save of a spilled stream, the stream's spill
// path points into the store and the stream is marked persistent, so
// Close never deletes what the store now owns.
func (st *store) save(key Key, s *Stream) error {
	meta, spill := st.paths(key)
	if s.Spilled() {
		// Payload first: metadata must never address a missing file.
		if err := os.Rename(s.spillPath, spill); err != nil {
			return fmt.Errorf("l2stream: adopting spill file: %w", err)
		}
		s.spillMu.Lock()
		s.spillPath = spill
		s.persistent = true
		s.spillMu.Unlock()
	}
	h := fingerprint(key)
	hdr := make([]byte, storeHeaderSize)
	copy(hdr, storeMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], CodecVersion)
	copy(hdr[8:], h[:])
	var buflen uint64
	var sidecar []byte
	if s.Spilled() {
		hdr[40] = storeFlagSpill
	} else {
		buflen = uint64(len(s.buf))
		evs, err := s.DecodeAll()
		if err != nil {
			return fmt.Errorf("l2stream: persisting capture: %w", err)
		}
		sidecar = encodeSidecar(evs)
	}
	for i, v := range [10]uint64{
		s.records, s.instructions, s.events, s.accesses,
		s.warmupAt, s.warmInstrAt, s.l1iMisses, s.l1dMisses,
		b2u(s.warmed), buflen,
	} {
		binary.LittleEndian.PutUint64(hdr[48+8*i:], v)
	}

	f, err := os.CreateTemp(st.dir, "chirp-*.l2s.tmp")
	if err != nil {
		return fmt.Errorf("l2stream: staging persisted capture: %w", err)
	}
	tmp := f.Name()
	_, err = f.Write(hdr)
	if err == nil && !s.Spilled() {
		_, err = f.Write(s.buf)
		if err == nil {
			_, err = f.Write(sidecar)
		}
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, meta)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("l2stream: persisting capture: %w", err)
	}
	if !s.Spilled() {
		s.persistent = true
		st.attachDerived(s, key)
	}
	st.gc()
	return nil
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
