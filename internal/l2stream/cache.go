package l2stream

import (
	"os"
	"sync"
	"time"

	"github.com/chirplab/chirp/internal/obs"
)

// Cache metrics in the default registry. Captures are rare (once per
// (workload, config) per cache) and already pay a full trace pass, so
// instrumenting them directly costs nothing measurable. The gauges
// accumulate additively, so several live caches report their combined
// residency.
//
// Hit accounting is honest about latency: a GetOrCapture call that
// found a finished stream is a hit; a call that ran the capture is a
// miss; a call that blocked on another goroutine's in-flight capture
// paid full capture latency and counts as a wait — not a hit — so the
// hit ratio in run manifests reflects what callers actually
// experienced. Disk hits are captures avoided entirely by loading a
// previous process's persisted stream from the capture directory.
var (
	obsCacheHits = obs.Default.Counter("chirp_l2stream_cache_hits_total",
		"GetOrCapture calls served from an already-captured stream.")
	obsCacheMisses = obs.Default.Counter("chirp_l2stream_cache_misses_total",
		"GetOrCapture calls that ran a capture.")
	obsCacheWaits = obs.Default.Counter("chirp_l2stream_cache_waits_total",
		"GetOrCapture calls that blocked on another goroutine's in-flight capture.")
	obsCacheDiskHits = obs.Default.Counter("chirp_l2stream_cache_disk_hits_total",
		"GetOrCapture calls served by loading a persisted capture from the capture directory.")
	obsCacheDiskWrites = obs.Default.Counter("chirp_l2stream_cache_disk_writes_total",
		"Captures persisted to the capture directory.")
	obsCacheDiskErrors = obs.Default.Counter("chirp_l2stream_cache_disk_errors_total",
		"Failed persistent-store reads or writes (the run continues on the in-memory tier).")
	obsCacheSpills = obs.Default.Counter("chirp_l2stream_cache_spills_total",
		"Captures that overflowed the byte budget and spilled to disk.")
	obsCacheEvictions = obs.Default.Counter("chirp_l2stream_cache_evictions_total",
		"In-memory streams evicted to hold the byte budget.")
	obsCaptureSeconds = obs.Default.Histogram("chirp_l2stream_capture_seconds",
		"Wall time of each capture pass.", obs.DurationBuckets())
	obsCacheBytes = obs.Default.Gauge("chirp_l2stream_cache_bytes",
		"In-memory bytes currently accounted to stream caches.")
	obsCacheStreams = obs.Default.Gauge("chirp_l2stream_cache_streams",
		"Captured streams currently resident in stream caches.")
	obsDerivedBuilds = obs.Default.Counter("chirp_l2stream_derived_builds_total",
		"Derived views computed from stream events (sidecar absent or not persisted).")
	obsDerivedDiskHits = obs.Default.Counter("chirp_l2stream_derived_disk_hits_total",
		"Derived views loaded from persisted sidecars instead of being recomputed.")
	obsDerivedDiskWrites = obs.Default.Counter("chirp_l2stream_derived_disk_writes_total",
		"Derived-view sidecars persisted to the capture directory.")
	obsDerivedCorrupt = obs.Default.Counter("chirp_l2stream_derived_corrupt_total",
		"Derived-view sidecars rejected as corrupt, truncated, or stale (the view is recomputed).")
	obsStoreEvictions = obs.Default.Counter("chirp_l2stream_store_evictions_total",
		"Capture groups (stream plus sidecars) evicted from persistent capture directories by the size-budget GC.")
	obsStoreBytes = obs.Default.Gauge("chirp_l2stream_store_bytes",
		"Bytes currently held in persistent capture directories, as of the last GC scan.")
)

// DefaultBudget is the cache's default in-memory byte budget: large
// enough to hold hundreds of suite-sized streams, small next to the
// working memory an 870-workload sweep already uses.
const DefaultBudget int64 = 256 << 20

// Key identifies a cached stream: the workload name plus the
// policy-invariant capture configuration. Comparable, so it indexes
// the cache map directly.
type Key struct {
	Workload string
	// Spec is the content hash of the workload spec the workload was
	// compiled from ("" for legacy suite workloads and trace files).
	// It enters the fingerprint, so two specs that agree on a
	// workload's name but differ anywhere in content — one client's
	// rate fraction included — can never alias each other's persistent
	// captures.
	Spec   string
	Config Config
}

// Cache memoises captured streams under an LRU byte budget, with
// single-flight capture: concurrent GetOrCapture calls for the same
// key run the capture once and share the result — exactly the shape
// the engine produces, since it dispatches a workload's jobs to
// different workers back to back.
//
// A cache built with NewPersistent additionally keeps a
// content-addressed on-disk tier (see store): captures are persisted
// under their key fingerprint, and later caches — including ones in
// other processes, on other days — load those files instead of
// re-capturing. The spill fallback feeds the same tier: a spilled
// capture's record file is adopted into the store rather than
// deleted at Close.
//
// Spilled streams cost the cache (almost) nothing in memory and are
// never evicted; their files are deleted by Close — deferred past any
// replay still holding the file (Stream.RetainSpill), and skipped
// entirely for store-owned files. Evicting an in-memory stream only
// drops the cache's reference — replays already holding the stream
// keep working, and the bytes are reclaimed when they finish.
type Cache struct {
	mu      sync.Mutex
	budget  int64
	dir     string
	store   *store
	used    int64
	tick    uint64
	entries map[Key]*cacheEntry
	spills  []*Stream
}

// cacheEntry is one single-flight slot. The owning goroutine (the one
// that created the entry) runs the capture, publishes stream/err, and
// closes done; everyone else blocks on done. A failed capture deletes
// the entry from the map before closing done, so woken waiters—and
// any caller that read the entry just before the failure—re-check the
// map and retry instead of inheriting the memoized error forever.
type cacheEntry struct {
	done    chan struct{} // closed once stream/err below are final
	stream  *Stream
	err     error
	lastUse uint64
	bytes   int64
	ready   bool // capture succeeded; stream is resident
}

// NewCache returns a cache with the given in-memory byte budget
// (<= 0 means DefaultBudget). Captures that would exceed the whole
// budget on their own spill to files in dir ("" = the OS temp dir).
func NewCache(budget int64, dir string) *Cache {
	if budget <= 0 {
		budget = DefaultBudget
	}
	return &Cache{budget: budget, dir: dir, entries: map[Key]*cacheEntry{}}
}

// NewPersistent returns a cache backed by a persistent capture
// directory: every capture is also written there (content-addressed
// by key fingerprint + codec version, staged and atomically renamed),
// and GetOrCapture consults the directory before capturing, so sweeps
// across processes reuse captures instead of re-capturing. Spill
// files are created inside the directory too, which keeps their
// adoption into the store a same-filesystem rename.
func NewPersistent(budget int64, captureDir string) (*Cache, error) {
	st, err := newStore(captureDir)
	if err != nil {
		return nil, err
	}
	c := NewCache(budget, captureDir)
	c.store = st
	return c, nil
}

// Budget returns the cache's in-memory byte budget.
func (c *Cache) Budget() int64 { return c.budget }

// GetOrCapture returns the cached stream for key, running capture
// (once, even under concurrent callers) to produce it on first use.
// The CaptureOptions passed to capture carry the cache's byte budget
// and spill directory. A failed capture is not cached: every caller
// that observed the failure — including ones that were already
// blocked on it — retries through a fresh entry.
func (c *Cache) GetOrCapture(key Key, capture func(CaptureOptions) (*Stream, error)) (*Stream, error) {
	for {
		c.mu.Lock()
		e, ok := c.entries[key]
		if !ok {
			e = &cacheEntry{done: make(chan struct{})}
			c.entries[key] = e
			c.mu.Unlock()
			return c.runCapture(key, e, capture)
		}
		c.mu.Unlock()

		select {
		case <-e.done:
			// Finished before this caller arrived: a plain hit (or a
			// failure memo, handled below).
			if e.err == nil {
				obsCacheHits.Inc()
			}
		default:
			// In flight: this caller pays the full capture latency, so
			// it is a wait, not a hit.
			obsCacheWaits.Inc()
			<-e.done
		}
		if e.err != nil {
			// The owner deleted the failed entry before closing done;
			// loop to re-check the map and retry (or join a retry
			// already in flight).
			continue
		}
		c.mu.Lock()
		c.tick++
		e.lastUse = c.tick
		c.mu.Unlock()
		return e.stream, nil
	}
}

// runCapture is the owning goroutine's path: load from the persistent
// tier if one is attached, capture otherwise, publish the outcome,
// and wake the waiters. stream/err are published before done is
// closed, so waiters may read them without the lock.
func (c *Cache) runCapture(key Key, e *cacheEntry, capture func(CaptureOptions) (*Stream, error)) (*Stream, error) {
	defer close(e.done)
	if c.store != nil {
		s, err := c.store.load(key)
		if err != nil {
			obsCacheDiskErrors.Inc() // degrade to a recapture
		}
		if s != nil {
			obsCacheDiskHits.Inc()
			c.commit(key, e, s)
			return s, nil
		}
	}

	obsCacheMisses.Inc()
	start := time.Now()
	s, err := capture(CaptureOptions{MaxBytes: c.budget, SpillDir: c.dir})
	obsCaptureSeconds.Observe(time.Since(start).Seconds())
	if err != nil {
		c.mu.Lock()
		e.err = err
		// Drop the failed entry so every later (and currently waiting)
		// caller retries against a fresh one.
		if c.entries[key] == e {
			delete(c.entries, key)
		}
		c.mu.Unlock()
		return nil, err
	}
	if s.Spilled() {
		obsCacheSpills.Inc()
	}
	if c.store != nil {
		if serr := c.store.save(key, s); serr != nil {
			obsCacheDiskErrors.Inc()
		} else {
			obsCacheDiskWrites.Inc()
		}
	}
	c.commit(key, e, s)
	return s, nil
}

// commit publishes a successful capture (or persisted-tier load) into
// the entry, accounts its footprint, and rebalances the budget.
func (c *Cache) commit(key Key, e *cacheEntry, s *Stream) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Derived views materialize after commit (first replay builds or
	// loads them); the hook folds their bytes into this entry so the
	// budget keeps holding. Installed under c.mu, before any other
	// goroutine can observe the entry as ready.
	s.SetGrowthHook(func(delta int64) { c.growStream(key, s, delta) })
	e.stream = s
	e.ready = true
	e.bytes = s.FootprintBytes()
	c.used += e.bytes
	obsCacheBytes.Add(e.bytes)
	obsCacheStreams.Inc()
	if s.Spilled() {
		c.spills = append(c.spills, s)
	}
	c.evictLocked(e)
	c.tick++
	e.lastUse = c.tick
}

// growStream accounts a late footprint increase of a committed stream
// (a derived view materializing) and rebalances the budget. A stream
// already evicted from the cache is no longer accounted at all, so its
// growth is ignored — the bytes die with the replays holding it.
func (c *Cache) growStream(key Key, s *Stream, delta int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || e.stream != s {
		return
	}
	e.bytes += delta
	c.used += delta
	obsCacheBytes.Add(delta)
	// Unlike commit, the grown entry itself is evictable: the replays
	// that triggered the growth hold their own stream reference, and a
	// view that alone blew the budget must not pin the cache over it.
	c.evictLocked(nil)
}

// SetStoreMaxBytes bounds the persistent capture directory's total
// size: after every store write, least-recently-used capture groups
// (the .l2s stream plus its .chtr spill and .l2d derived sidecars) are
// evicted oldest-mtime-first until the directory fits. Zero or
// negative means unbounded. No-op on caches without a persistent tier.
func (c *Cache) SetStoreMaxBytes(maxBytes int64) {
	if c.store != nil {
		c.store.setLimit(maxBytes)
	}
}

// evictLocked drops least-recently-used completed in-memory entries
// until the budget holds again. keep, when non-nil, is never evicted
// (it is the entry that just finished capturing and is about to be
// returned).
func (c *Cache) evictLocked(keep *cacheEntry) {
	for c.used > c.budget {
		var victimKey Key
		var victim *cacheEntry
		for k, e := range c.entries {
			if e == keep || !e.ready || e.bytes == 0 {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victimKey, victim = k, e
			}
		}
		if victim == nil {
			return // nothing evictable; a single oversized stream stays
		}
		c.used -= victim.bytes
		obsCacheBytes.Add(-victim.bytes)
		obsCacheStreams.Dec()
		obsCacheEvictions.Inc()
		delete(c.entries, victimKey)
	}
}

// Len returns the number of resident streams (including in-flight
// captures). For tests and telemetry.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Used returns the in-memory bytes currently accounted to the cache.
func (c *Cache) Used() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Close drops every entry and deletes the cache's spill files —
// except files the persistent store owns, which later processes will
// reuse, and except files a replay still holds retained, which delete
// when the replay releases them. It is not safe to race Close with
// GetOrCapture.
func (c *Cache) Close() error {
	c.mu.Lock()
	spills := c.spills
	c.spills = nil
	resident := int64(0)
	for _, e := range c.entries {
		if e.ready {
			resident++
		}
	}
	obsCacheBytes.Add(-c.used)
	obsCacheStreams.Add(-resident)
	c.entries = map[Key]*cacheEntry{}
	c.used = 0
	c.mu.Unlock()

	var first error
	for _, s := range spills {
		if err := s.Close(); err != nil && !os.IsNotExist(err) && first == nil {
			first = err
		}
	}
	return first
}
