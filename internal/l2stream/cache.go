package l2stream

import (
	"os"
	"sync"
	"time"

	"github.com/chirplab/chirp/internal/obs"
)

// Cache metrics in the default registry. Captures are rare (once per
// (workload, config) per cache) and already pay a full trace pass, so
// instrumenting them directly costs nothing measurable. The gauges
// accumulate additively, so several live caches report their combined
// residency.
var (
	obsCacheHits = obs.Default.Counter("chirp_l2stream_cache_hits_total",
		"GetOrCapture calls served from an already-captured stream.")
	obsCacheMisses = obs.Default.Counter("chirp_l2stream_cache_misses_total",
		"GetOrCapture calls that ran a capture.")
	obsCacheSpills = obs.Default.Counter("chirp_l2stream_cache_spills_total",
		"Captures that overflowed the byte budget and spilled to disk.")
	obsCacheEvictions = obs.Default.Counter("chirp_l2stream_cache_evictions_total",
		"In-memory streams evicted to hold the byte budget.")
	obsCaptureSeconds = obs.Default.Histogram("chirp_l2stream_capture_seconds",
		"Wall time of each capture pass.", obs.DurationBuckets())
	obsCacheBytes = obs.Default.Gauge("chirp_l2stream_cache_bytes",
		"In-memory bytes currently accounted to stream caches.")
	obsCacheStreams = obs.Default.Gauge("chirp_l2stream_cache_streams",
		"Captured streams currently resident in stream caches.")
)

// DefaultBudget is the cache's default in-memory byte budget: large
// enough to hold hundreds of suite-sized streams, small next to the
// working memory an 870-workload sweep already uses.
const DefaultBudget int64 = 256 << 20

// Key identifies a cached stream: the workload name plus the
// policy-invariant capture configuration. Comparable, so it indexes
// the cache map directly.
type Key struct {
	Workload string
	Config   Config
}

// Cache memoises captured streams under an LRU byte budget, with
// single-flight capture: concurrent GetOrCapture calls for the same
// key run the capture once and share the result — exactly the shape
// the engine produces, since it dispatches a workload's per-policy
// jobs to different workers back to back.
//
// Spilled streams cost the cache (almost) nothing in memory and are
// never evicted; their files are deleted by Close. Evicting an
// in-memory stream only drops the cache's reference — replays already
// holding the stream keep working, and the bytes are reclaimed when
// they finish.
type Cache struct {
	mu      sync.Mutex
	budget  int64
	dir     string
	used    int64
	tick    uint64
	entries map[Key]*cacheEntry
	spills  []*Stream
}

type cacheEntry struct {
	once    sync.Once
	stream  *Stream
	err     error
	lastUse uint64
	bytes   int64
	done    bool
}

// NewCache returns a cache with the given in-memory byte budget
// (<= 0 means DefaultBudget). Captures that would exceed the whole
// budget on their own spill to files in dir ("" = the OS temp dir).
func NewCache(budget int64, dir string) *Cache {
	if budget <= 0 {
		budget = DefaultBudget
	}
	return &Cache{budget: budget, dir: dir, entries: map[Key]*cacheEntry{}}
}

// Budget returns the cache's in-memory byte budget.
func (c *Cache) Budget() int64 { return c.budget }

// GetOrCapture returns the cached stream for key, running capture
// (once, even under concurrent callers) to produce it on first use.
// The CaptureOptions passed to capture carry the cache's byte budget
// and spill directory. A failed capture is not cached: the next caller
// retries.
func (c *Cache) GetOrCapture(key Key, capture func(CaptureOptions) (*Stream, error)) (*Stream, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()

	ran := false
	e.once.Do(func() {
		ran = true
		obsCacheMisses.Inc()
		start := time.Now()
		e.stream, e.err = capture(CaptureOptions{MaxBytes: c.budget, SpillDir: c.dir})
		obsCaptureSeconds.Observe(time.Since(start).Seconds())
		c.mu.Lock()
		defer c.mu.Unlock()
		if e.err != nil {
			// Drop the failed entry so a later caller can retry (unless a
			// retry already replaced it).
			if c.entries[key] == e {
				delete(c.entries, key)
			}
			return
		}
		e.done = true
		e.bytes = e.stream.FootprintBytes()
		c.used += e.bytes
		obsCacheBytes.Add(e.bytes)
		obsCacheStreams.Inc()
		if e.stream.Spilled() {
			obsCacheSpills.Inc()
			c.spills = append(c.spills, e.stream)
		}
		c.evictLocked(key)
	})
	if e.err != nil {
		return nil, e.err
	}
	if !ran {
		// Served from the memo: either a finished capture or one this
		// caller waited on another goroutine to finish.
		obsCacheHits.Inc()
	}

	c.mu.Lock()
	c.tick++
	e.lastUse = c.tick
	c.mu.Unlock()
	return e.stream, nil
}

// evictLocked drops least-recently-used completed in-memory entries
// until the budget holds again. keep is never evicted (it is the entry
// that just finished capturing and is about to be returned).
func (c *Cache) evictLocked(keep Key) {
	for c.used > c.budget {
		var victimKey Key
		var victim *cacheEntry
		for k, e := range c.entries {
			if k == keep || !e.done || e.bytes == 0 {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victimKey, victim = k, e
			}
		}
		if victim == nil {
			return // nothing evictable; a single oversized stream stays
		}
		c.used -= victim.bytes
		obsCacheBytes.Add(-victim.bytes)
		obsCacheStreams.Dec()
		obsCacheEvictions.Inc()
		delete(c.entries, victimKey)
	}
}

// Len returns the number of resident streams (including in-flight
// captures). For tests and telemetry.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Used returns the in-memory bytes currently accounted to the cache.
func (c *Cache) Used() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Close drops every entry and deletes all spill files the cache ever
// produced. It is not safe to race Close with GetOrCapture.
func (c *Cache) Close() error {
	c.mu.Lock()
	spills := c.spills
	c.spills = nil
	resident := int64(0)
	for _, e := range c.entries {
		if e.done {
			resident++
		}
	}
	obsCacheBytes.Add(-c.used)
	obsCacheStreams.Add(-resident)
	c.entries = map[Key]*cacheEntry{}
	c.used = 0
	c.mu.Unlock()

	var first error
	for _, s := range spills {
		if err := s.Close(); err != nil && !os.IsNotExist(err) && first == nil {
			first = err
		}
	}
	return first
}
