// Derived views: per-stream precomputed arrays that are pure functions
// of the captured event stream plus a small configuration key — set
// indices for a TLB geometry, folded predictor signature sequences,
// prefetch fill schedules. They are memoized on the stream (single-
// flight, like the decoded views), accounted against the owning
// cache's byte budget, and — when the stream belongs to a persistent
// capture store — persisted as content-addressed sidecar files so warm
// sweeps across processes skip the computation entirely.
//
// The l2stream package stays agnostic about what a derived view
// contains: builders and codecs live with their consumers (internal/
// sim), which hands them in as a DerivedSpec. This package owns the
// cross-cutting mechanics only — memoization, concurrency, budget
// accounting, and the sidecar load/store protocol.
package l2stream

import (
	"fmt"
	"sync"
)

// DerivedSpec describes one derived-view family to Stream.Derived: an
// invalidation key, a builder, and an optional persistence codec.
//
// Key must change whenever the view's contents would: it should embed
// the family name, a format version, and every configuration input the
// view depends on (TLB geometry, predictor history configuration,
// prefetch distance, …). Streams never compare keys semantically —
// distinct keys are distinct views.
type DerivedSpec struct {
	// Key is the full invalidation key (family + version + config).
	Key string
	// Build computes the view from the stream's events. It runs at
	// most once per (stream, key) and may use the stream's decoders
	// freely; the stream is immutable underneath it.
	Build func(s *Stream) (view any, err error)
	// Bytes reports the view's in-memory footprint for cache budget
	// accounting.
	Bytes func(view any) int64
	// Encode serializes the view for the persistent sidecar tier; nil
	// means the family is never persisted.
	Encode func(view any) []byte
	// Decode deserializes and validates a sidecar payload. ok=false
	// means the payload is corrupt or stale, in which case the view is
	// rebuilt (and the sidecar atomically replaced). nil means sidecar
	// loads are skipped even if a file exists.
	Decode func(s *Stream, data []byte) (view any, ok bool)
}

// derivedSlot is one single-flight memo cell: the first Derived call
// for a key populates it under once; everyone else shares the result.
type derivedSlot struct {
	once sync.Once
	view any
	err  error
}

// Derived returns the stream's memoized derived view for spec,
// building it on first use: the persistent sidecar tier is consulted
// first (when the stream belongs to a capture store and the spec has a
// codec), then Build runs and the result is persisted for the next
// process. Concurrent calls for one key share a single build. The
// returned view is shared between every caller and MUST be treated as
// read-only. Spilled streams have no decodable event sequence, so
// Derived fails on them; callers branch on Spilled first, as they do
// for DecodeAll.
func (s *Stream) Derived(spec *DerivedSpec) (any, error) {
	if s.Spilled() {
		return nil, fmt.Errorf("l2stream: derived view %q on a spilled stream", spec.Key)
	}
	s.derivedMu.Lock()
	if s.derived == nil {
		s.derived = make(map[string]*derivedSlot)
	}
	slot, ok := s.derived[spec.Key]
	if !ok {
		slot = &derivedSlot{}
		s.derived[spec.Key] = slot
	}
	s.derivedMu.Unlock()

	slot.once.Do(func() {
		if s.dvLoad != nil && spec.Decode != nil {
			if data, release := s.dvLoad(spec.Key); data != nil {
				v, ok := spec.Decode(s, data)
				// Decode copies what it keeps, so the payload buffer can
				// go back to its pool before the view is even installed.
				if release != nil {
					release()
				}
				if ok {
					obsDerivedDiskHits.Inc()
					slot.view = v
					s.noteGrowth(spec.Bytes(v))
					return
				}
				// A sidecar that parsed at the store layer but failed
				// the spec's validation is corrupt: rebuild, and let
				// the save below atomically replace it.
				obsDerivedCorrupt.Inc()
			}
		}
		v, err := spec.Build(s)
		if err != nil {
			slot.err = err
			return
		}
		obsDerivedBuilds.Inc()
		slot.view = v
		s.noteGrowth(spec.Bytes(v))
		if s.dvSave != nil && spec.Encode != nil {
			s.dvSave(spec.Key, spec.Encode(v))
		}
	})
	return slot.view, slot.err
}

// noteGrowth reports a late footprint increase (a derived or decoded
// view materializing after commit) to the owning cache, which adds it
// to the stream's accounted bytes and rebalances the budget. Streams
// outside any cache ignore it.
func (s *Stream) noteGrowth(delta int64) {
	if s.onGrow != nil && delta > 0 {
		s.onGrow(delta)
	}
}

// SetGrowthHook registers the cache callback noteGrowth reports to.
// The cache installs it while committing the stream, before other
// goroutines can observe the entry, so the field needs no lock.
func (s *Stream) SetGrowthHook(fn func(delta int64)) { s.onGrow = fn }

// DerivedKeys returns the keys of the derived views materialized (or
// attempted) so far, for tests and telemetry.
func (s *Stream) DerivedKeys() []string {
	s.derivedMu.Lock()
	defer s.derivedMu.Unlock()
	keys := make([]string, 0, len(s.derived))
	for k := range s.derived {
		keys = append(keys, k)
	}
	return keys
}
