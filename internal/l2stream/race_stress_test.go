package l2stream

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"github.com/chirplab/chirp/internal/trace"
)

// TestRaceDerivedCloseRetain hammers the three surfaces that cross
// goroutines in a real sweep at the same time: derived-view
// memoization on an in-memory stream (single-flight slot.once plus the
// growth-hook accounting callback into the cache), RetainSpill/release
// reference counting on a spilled stream, and Cache.Close tearing the
// cache down underneath both. It asserts no outcome beyond the
// documented contracts — views stay correct, a retained path stays
// readable, RetainSpill after Close fails cleanly, the file is gone
// once the last reference drops — and leaves the interleavings to the
// race detector (CI runs this package with -race -count=2).
func TestRaceDerivedCloseRetain(t *testing.T) {
	recs := testRecords(4000)
	cfg := testConfig(6000)
	dir := t.TempDir()
	c := NewCache(0, dir)

	inmem, err := c.GetOrCapture(Key{Workload: "mem", Config: cfg}, func(opts CaptureOptions) (*Stream, error) {
		return Capture(trace.NewSliceSource(recs), cfg, opts)
	})
	if err != nil {
		t.Fatal(err)
	}
	if inmem.Spilled() {
		t.Fatal("unbudgeted capture must stay in memory")
	}
	wantEvents := int(inmem.Events())

	spilled, err := c.GetOrCapture(Key{Workload: "spill", Config: cfg}, func(CaptureOptions) (*Stream, error) {
		return Capture(trace.NewSliceSource(recs), cfg, CaptureOptions{MaxBytes: 64, SpillDir: dir})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !spilled.Spilled() {
		t.Fatal("64-byte budget must force a spill")
	}

	// Several small view families so the builders contend on the
	// derivedMu map as well as on individual slots.
	specs := make([]*DerivedSpec, 4)
	for i := range specs {
		specs[i] = &DerivedSpec{
			Key: fmt.Sprintf("racestress/v1/%d", i),
			Build: func(s *Stream) (any, error) {
				evs, err := s.DecodeAll()
				if err != nil {
					return nil, err
				}
				return len(evs), nil
			},
			Bytes: func(any) int64 { return 8 },
		}
	}

	const builders, retainers, rounds = 3, 3, 400
	var wg sync.WaitGroup
	start := make(chan struct{})
	closed := make(chan struct{})

	for g := 0; g < builders; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < rounds; i++ {
				v, err := inmem.Derived(specs[i%len(specs)])
				if err != nil {
					t.Errorf("Derived on an in-memory stream: %v", err)
					return
				}
				if n := v.(int); n != wantEvents {
					t.Errorf("derived view sees %d events, want %d", n, wantEvents)
					return
				}
			}
		}()
	}

	for g := 0; g < retainers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < rounds; i++ {
				path, release, err := spilled.RetainSpill()
				if err != nil {
					// Close won the race: the documented clean failure.
					return
				}
				if _, err := os.Stat(path); err != nil {
					t.Errorf("retained spill file missing: %v", err)
					release()
					return
				}
				release()
			}
		}()
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		if err := c.Close(); err != nil {
			t.Errorf("Cache.Close under load: %v", err)
		}
		close(closed)
	}()

	close(start)
	wg.Wait()
	<-closed

	// The spill path must be fully torn down: no new references, no
	// file once the last in-flight release ran.
	if _, _, err := spilled.RetainSpill(); err == nil {
		t.Error("RetainSpill after Cache.Close must fail")
	}
	if _, err := os.Stat(spilled.SpillPath()); !os.IsNotExist(err) {
		t.Errorf("spill file survives close with no references: %v", err)
	}

	// Derived views remain valid after the cache is gone — the stream
	// owns them, the cache only accounted them.
	for _, spec := range specs {
		v, err := inmem.Derived(spec)
		if err != nil || v.(int) != wantEvents {
			t.Errorf("derived view %q after close: %v, %v", spec.Key, v, err)
		}
	}
}
