package l2stream

import (
	"fmt"
	"os"

	"github.com/chirplab/chirp/internal/trace"
)

// CaptureOptions bounds a capture.
type CaptureOptions struct {
	// MaxBytes caps the in-memory stream footprint — the encoded buffer
	// plus the decoded views capture materializes (Stream.FootprintBytes);
	// a capture that would exceed it restarts and spills the raw record
	// prefix to a CHTR file instead. <= 0 means unlimited (never spill).
	MaxBytes int64
	// SpillDir is where spill files are created ("" = the OS temp dir).
	SpillDir string
}

// Capture runs src once through the two LRU L1 TLB filters and records
// the policy-invariant L2 event stream. The record loop mirrors
// sim.RunTLBOnly exactly — per record: count instructions, check the
// warmup boundary, filter the instruction-side access, then the
// data-side access or branch, then check the instruction budget — so a
// replay over the captured events reproduces RunTLBOnly bit for bit.
//
// src is consumed like RunTLBOnly consumes it: until cfg.Instructions
// is reached, or exhaustion when cfg.Instructions is 0 (callers must
// bound infinite sources with trace.Limit, as usual). On byte-budget
// overflow src.Reset is called and the same record prefix is written
// to a spill file instead.
func Capture(src trace.Source, cfg Config, opts CaptureOptions) (*Stream, error) {
	s, overflow, err := capture(src, cfg, opts.MaxBytes, nil)
	if err != nil {
		return nil, err
	}
	if !overflow {
		return s, nil
	}

	// Spill: re-run the capture pass from the top, writing the raw
	// record prefix through the CHTR trace writer instead of encoding
	// events. The file holds exactly the records RunTLBOnly would
	// consume, so replaying it is a direct run by construction.
	src.Reset()
	f, err := os.CreateTemp(opts.SpillDir, "l2stream-*.chtr")
	if err != nil {
		return nil, fmt.Errorf("l2stream: creating spill file: %w", err)
	}
	w, err := trace.NewWriter(f)
	if err != nil {
		f.Close()
		os.Remove(f.Name())
		return nil, err
	}
	s, _, err = capture(src, cfg, 0, w)
	if err == nil {
		err = w.Close()
	}
	if err == nil {
		err = f.Close()
	}
	if err != nil {
		f.Close()
		os.Remove(f.Name())
		return nil, err
	}
	s.spillPath = f.Name()
	return s, nil
}

// capture is the single-pass worker behind Capture. With spill nil it
// encodes events in memory, reporting overflow=true (and a nil stream)
// as soon as the encoded size passes maxBytes; with spill non-nil it
// writes each consumed record to the spill writer and keeps only the
// run scalars.
func capture(src trace.Source, cfg Config, maxBytes int64, spill *trace.Writer) (*Stream, bool, error) {
	// The L1s are always LRU (that fixed choice is what makes the
	// stream policy-invariant in the first place), so the capture path
	// runs the specialized membership filter instead of two full
	// tlb.TLB simulations; the hit/miss sequence is identical.
	l1i, err := newL1Filter(cfg.L1I)
	if err != nil {
		return nil, false, err
	}
	l1d, err := newL1Filter(cfg.L1D)
	if err != nil {
		return nil, false, err
	}

	pageShift := cfg.PageShift
	warmupAt := uint64(float64(cfg.Instructions) * cfg.WarmupFraction)
	if cfg.Instructions == 0 {
		warmupAt = 0 // unbounded runs measure everything
	}

	s := &Stream{cfg: cfg, warmupAt: warmupAt, warmed: warmupAt == 0}
	var (
		enc          encoder
		instructions uint64
		warmI, warmD uint64 // L1 miss counts at the warmup boundary
	)
	if spill == nil {
		enc.buf = make([]byte, 0, 64<<10)
	}

	bs := trace.Blocks(src)
	var buf [trace.DefaultBlockSize]trace.Record
loop:
	for {
		n := bs.NextBlock(buf[:])
		if n == 0 {
			break
		}
		for i := 0; i < n; i++ {
			rec := &buf[i]
			if spill != nil {
				if err := spill.Write(rec); err != nil {
					return nil, false, err
				}
			}
			s.records++
			instructions += rec.Instructions()
			if !s.warmed && instructions >= warmupAt {
				s.warmed = true
				s.warmInstrAt = instructions
				warmI, warmD = l1i.misses, l1d.misses
				if spill == nil {
					enc.warmup()
					s.events++
				}
			}

			if !l1i.access(rec.PC>>pageShift) && spill == nil {
				enc.access(rec.PC, rec.PC>>pageShift, true)
				s.events++
				s.accesses++
			}
			switch {
			case rec.Class.IsMemory():
				if !l1d.access(rec.EA>>pageShift) && spill == nil {
					enc.access(rec.PC, rec.EA>>pageShift, false)
					s.events++
					s.accesses++
				}
			case rec.Class.IsBranch():
				if spill == nil {
					enc.branch(rec.PC,
						rec.Class == trace.ClassCondBranch,
						rec.Class == trace.ClassUncondIndirect,
						rec.Taken, rec.Target)
					s.events++
				}
			}
			if cfg.Instructions > 0 && instructions >= cfg.Instructions {
				break loop
			}
		}
		if maxBytes > 0 && footprint(&enc, s) > maxBytes {
			return nil, true, nil
		}
	}
	if maxBytes > 0 && footprint(&enc, s) > maxBytes {
		return nil, true, nil
	}

	s.instructions = instructions
	if s.warmed {
		s.l1iMisses = l1i.misses - warmI
		s.l1dMisses = l1d.misses - warmD
	}
	s.buf = enc.buf
	return s, false, nil
}

// footprint mirrors Stream.FootprintBytes for an in-flight capture:
// the encoded bytes plus both decoded views replays will memoize, at
// their accounted per-event size. Checking the full footprint (not
// just the encoded buffer) against MaxBytes matches what the cache
// later charges the stream against, so a capture that could never be
// held within budget spills instead of thrashing the cache.
func footprint(enc *encoder, s *Stream) int64 {
	return int64(len(enc.buf)) + int64(s.events+s.accesses+1)*eventBytes
}
