package l2stream

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/chirplab/chirp/internal/trace"
)

// eventCountSpec is a minimal derived-view family for exercising the
// memo/persistence machinery: the view is the stream's event count as
// a uint64, persisted as 8 little-endian bytes.
func eventCountSpec(key string, builds *atomic.Int64) *DerivedSpec {
	return &DerivedSpec{
		Key: key,
		Build: func(s *Stream) (any, error) {
			if builds != nil {
				builds.Add(1)
			}
			evs, err := s.DecodeAll()
			if err != nil {
				return nil, err
			}
			return uint64(len(evs)), nil
		},
		Bytes:  func(any) int64 { return 8 },
		Encode: func(v any) []byte { return binary.LittleEndian.AppendUint64(nil, v.(uint64)) },
		Decode: func(_ *Stream, data []byte) (any, bool) {
			if len(data) != 8 {
				return nil, false
			}
			return binary.LittleEndian.Uint64(data), true
		},
	}
}

func persistentStreamFor(t *testing.T, dir, workload string, instr uint64) *Stream {
	t.Helper()
	cache, err := NewPersistent(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cache.Close() })
	cfg := testConfig(instr)
	s, err := cache.GetOrCapture(Key{Workload: workload, Config: cfg}, func(opts CaptureOptions) (*Stream, error) {
		return Capture(trace.NewSliceSource(testRecords(int(instr))), cfg, opts)
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestDerivedSingleFlight: concurrent Derived calls for one key build
// once and share the view; a different key builds separately.
func TestDerivedSingleFlight(t *testing.T) {
	s, err := Capture(trace.NewSliceSource(testRecords(3000)), testConfig(5000), CaptureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var builds atomic.Int64
	spec := eventCountSpec("test:count", &builds)
	var wg sync.WaitGroup
	got := make([]any, 8)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := s.Derived(spec)
			if err != nil {
				t.Error(err)
			}
			got[i] = v
		}(i)
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Errorf("concurrent Derived ran %d builds, want 1", n)
	}
	for i, v := range got {
		if v != uint64(s.Events()) {
			t.Errorf("caller %d saw %v, want %d", i, v, s.Events())
		}
	}
	if _, err := s.Derived(eventCountSpec("test:count2", &builds)); err != nil {
		t.Fatal(err)
	}
	if n := builds.Load(); n != 2 {
		t.Errorf("distinct key reused the memo (%d builds, want 2)", n)
	}
	keys := s.DerivedKeys()
	if len(keys) != 2 {
		t.Errorf("DerivedKeys = %v, want 2 entries", keys)
	}
}

// TestDerivedSidecarRoundTrip: a derived view built on a persistent
// stream writes a sidecar; a second cache on the same directory serves
// the view from disk without rebuilding.
func TestDerivedSidecarRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := persistentStreamFor(t, dir, "w", 4000)
	var builds atomic.Int64
	writes0 := obsDerivedDiskWrites.Value()
	v1, err := s.Derived(eventCountSpec("test:rt", &builds))
	if err != nil {
		t.Fatal(err)
	}
	if builds.Load() != 1 {
		t.Fatalf("first use built %d times, want 1", builds.Load())
	}
	if d := obsDerivedDiskWrites.Value() - writes0; d != 1 {
		t.Errorf("sidecar writes delta = %d, want 1", d)
	}

	s2 := persistentStreamFor(t, dir, "w", 4000)
	hits0 := obsDerivedDiskHits.Value()
	v2, err := s2.Derived(eventCountSpec("test:rt", &builds))
	if err != nil {
		t.Fatal(err)
	}
	if builds.Load() != 1 {
		t.Errorf("warm load rebuilt the view (%d builds)", builds.Load())
	}
	if d := obsDerivedDiskHits.Value() - hits0; d != 1 {
		t.Errorf("sidecar hits delta = %d, want 1", d)
	}
	if v1 != v2 {
		t.Errorf("disk round-trip changed the view: %v != %v", v1, v2)
	}
}

// derivedFiles lists the .l2d sidecar paths in dir.
func derivedFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".l2d") {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	return out
}

// TestDerivedSidecarCorruptionRebuilds: flipping payload bytes,
// truncating the file, or emptying it must each read as absent — the
// view rebuilds from the stream and the sidecar is rewritten.
func TestDerivedSidecarCorruptionRebuilds(t *testing.T) {
	corruptions := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"flip-payload-byte", func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b }},
		{"flip-key-byte", func(b []byte) []byte { b[20] ^= 0xff; return b }},
		{"truncate", func(b []byte) []byte { return b[:len(b)/2] }},
		{"empty", func([]byte) []byte { return nil }},
		{"bad-magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"bad-version", func(b []byte) []byte { b[4]++; return b }},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s := persistentStreamFor(t, dir, "w", 4000)
			var builds atomic.Int64
			want, err := s.Derived(eventCountSpec("test:c", &builds))
			if err != nil {
				t.Fatal(err)
			}
			files := derivedFiles(t, dir)
			if len(files) != 1 {
				t.Fatalf("found %d sidecars, want 1", len(files))
			}
			data, err := os.ReadFile(files[0])
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(files[0], tc.mut(data), 0o644); err != nil {
				t.Fatal(err)
			}

			s2 := persistentStreamFor(t, dir, "w", 4000)
			corrupt0 := obsDerivedCorrupt.Value()
			got, err := s2.Derived(eventCountSpec("test:c", &builds))
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("rebuilt view %v, want %v", got, want)
			}
			if builds.Load() != 2 {
				t.Errorf("corrupt sidecar served without rebuild (%d builds, want 2)", builds.Load())
			}
			if d := obsDerivedCorrupt.Value() - corrupt0; d != 1 {
				t.Errorf("corruption counter delta = %d, want 1", d)
			}
			// The rebuild rewrote the sidecar; a third stream loads clean.
			s3 := persistentStreamFor(t, dir, "w", 4000)
			if got, err := s3.Derived(eventCountSpec("test:c", &builds)); err != nil || got != want {
				t.Fatalf("rewritten sidecar load = %v, %v", got, err)
			}
			if builds.Load() != 2 {
				t.Errorf("rewritten sidecar was not served from disk (%d builds)", builds.Load())
			}
		})
	}
}

// TestDerivedSidecarKeyed: sidecar files are content-addressed by
// derived key — distinct keys write distinct files, and a sidecar
// echoing the wrong key (same hash path would be required, so simulate
// by renaming) is rejected.
func TestDerivedSidecarKeyed(t *testing.T) {
	dir := t.TempDir()
	s := persistentStreamFor(t, dir, "w", 4000)
	if _, err := s.Derived(eventCountSpec("test:k1", nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Derived(eventCountSpec("test:k2", nil)); err != nil {
		t.Fatal(err)
	}
	files := derivedFiles(t, dir)
	if len(files) != 2 {
		t.Fatalf("two keys wrote %d sidecars, want 2", len(files))
	}
	// A payload framed under one key must not decode under another:
	// copy k1's file onto k2's path and verify the key echo rejects it.
	data0, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := decodeDerivedFile(data0, "test:other"); ok {
		t.Error("sidecar decoded under a mismatched key")
	}
}

// TestDerivedSpilledStreamErrors: derived views need a decodable event
// sequence, which spilled streams do not have.
func TestDerivedSpilledStreamErrors(t *testing.T) {
	s, err := Capture(trace.NewSliceSource(testRecords(4000)), testConfig(6000),
		CaptureOptions{MaxBytes: 1024, SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !s.Spilled() {
		t.Fatal("1 KiB budget must force a spill")
	}
	if _, err := s.Derived(eventCountSpec("test:sp", nil)); err == nil {
		t.Error("Derived succeeded on a spilled stream")
	}
}

// TestDerivedGrowthAccounting: a derived view materializing on a
// cached stream must grow the cache's accounted bytes by the view's
// footprint and trigger the budget rebalance.
func TestDerivedGrowthAccounting(t *testing.T) {
	cache := NewCache(1<<20, t.TempDir())
	defer cache.Close()
	cfg := testConfig(5000)
	key := Key{Workload: "w", Config: cfg}
	s, err := cache.GetOrCapture(key, func(opts CaptureOptions) (*Stream, error) {
		return Capture(trace.NewSliceSource(testRecords(3000)), cfg, opts)
	})
	if err != nil {
		t.Fatal(err)
	}
	cache.mu.Lock()
	used0 := cache.used
	bytes0 := cache.entries[key].bytes
	cache.mu.Unlock()

	const viewBytes = 4096
	spec := eventCountSpec("test:grow", nil)
	spec.Bytes = func(any) int64 { return viewBytes }
	if _, err := s.Derived(spec); err != nil {
		t.Fatal(err)
	}
	cache.mu.Lock()
	used1 := cache.used
	bytes1 := cache.entries[key].bytes
	cache.mu.Unlock()
	if used1-used0 != viewBytes {
		t.Errorf("cache.used grew by %d, want %d", used1-used0, viewBytes)
	}
	if bytes1-bytes0 != viewBytes {
		t.Errorf("entry bytes grew by %d, want %d", bytes1-bytes0, viewBytes)
	}

	// Growth hooks on an evicted stream must not corrupt accounting:
	// evict by overflowing the budget, then materialize another view.
	big := eventCountSpec("test:grow2", nil)
	big.Bytes = func(any) int64 { return 2 << 20 } // over budget: evicts
	if _, err := s.Derived(big); err != nil {
		t.Fatal(err)
	}
	cache.mu.Lock()
	_, stillThere := cache.entries[key]
	used2 := cache.used
	cache.mu.Unlock()
	if stillThere {
		t.Error("over-budget derived growth did not evict the stream")
	}
	if used2 != 0 {
		t.Errorf("cache.used = %d after eviction, want 0", used2)
	}
	spec3 := eventCountSpec("test:grow3", nil)
	spec3.Bytes = func(any) int64 { return 512 }
	if _, err := s.Derived(spec3); err != nil {
		t.Fatal(err)
	}
	cache.mu.Lock()
	used3 := cache.used
	cache.mu.Unlock()
	if used3 != used2 {
		t.Errorf("growth on an evicted stream changed cache.used by %d", used3-used2)
	}
}

// TestStoreGC: setting a byte budget on a persistent directory evicts
// whole capture groups — stream file plus derived sidecars — oldest
// first, until the directory fits, and leaves newer groups intact.
func TestStoreGC(t *testing.T) {
	dir := t.TempDir()
	cache, err := NewPersistent(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Close()
	cfg := testConfig(5000)
	var streams []*Stream
	var metas []string
	for _, w := range []string{"a", "b", "c"} {
		s, err := cache.GetOrCapture(Key{Workload: w, Config: cfg}, func(opts CaptureOptions) (*Stream, error) {
			return Capture(trace.NewSliceSource(testRecords(3000)), cfg, opts)
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Derived(eventCountSpec("test:gc", nil)); err != nil {
			t.Fatal(err)
		}
		streams = append(streams, s)
		meta, _ := cache.store.paths(Key{Workload: w, Config: cfg})
		metas = append(metas, meta)
	}
	if got := len(derivedFiles(t, dir)); got != 3 {
		t.Fatalf("expected 3 sidecars before GC, found %d", got)
	}
	// Age the groups deterministically: a oldest, c newest.
	base := time.Now().Add(-time.Hour)
	for i, meta := range metas {
		mt := base.Add(time.Duration(i) * time.Minute)
		for _, p := range append(derivedFiles(t, dir), metas...) {
			if strings.HasPrefix(p, strings.TrimSuffix(meta, ".l2s")) {
				if err := os.Chtimes(p, mt, mt); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	var total int64
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		info, _ := e.Info()
		total += info.Size()
	}
	perGroup := total / 3
	evict0 := obsStoreEvictions.Value()
	cache.SetStoreMaxBytes(total - perGroup/2) // forces out exactly one group
	if d := obsStoreEvictions.Value() - evict0; d != 1 {
		t.Errorf("store evictions delta = %d, want 1", d)
	}
	if _, err := os.Stat(metas[0]); !os.IsNotExist(err) {
		t.Errorf("oldest group's .l2s survived GC (err=%v)", err)
	}
	for _, meta := range metas[1:] {
		if _, err := os.Stat(meta); err != nil {
			t.Errorf("newer group's .l2s was evicted: %v", err)
		}
	}
	// The evicted group's sidecar went with it.
	for _, p := range derivedFiles(t, dir) {
		if strings.HasPrefix(p, strings.TrimSuffix(metas[0], ".l2s")) {
			t.Errorf("evicted group left sidecar %s behind", p)
		}
	}
	// An unbounded budget never evicts.
	cache.SetStoreMaxBytes(0)
	if d := obsStoreEvictions.Value() - evict0; d != 1 {
		t.Errorf("unbounded budget evicted (delta %d, want 1)", d)
	}
	_ = streams
}
