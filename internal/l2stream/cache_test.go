package l2stream

import (
	"os"
	"sync"
	"testing"
	"time"

	"github.com/chirplab/chirp/internal/trace"
)

// waitForCounter polls until the counter has grown past base — the
// only way to observe that a concurrent GetOrCapture caller reached
// the blocked-waiter path (it bumps the waits counter immediately
// before blocking).
func waitForCounter(t *testing.T, value func() uint64, base uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for value() <= base {
		if time.Now().After(deadline) {
			t.Fatal("counter never advanced; waiter did not block")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCacheConcurrentRetryAfterFailure is the regression test for the
// failed-capture retry race: a caller already blocked on an in-flight
// capture that then FAILS must not inherit the memoized error — it
// must re-check the map and retry. The old sync.Once memo made the
// waiter's once.Do a no-op, so it was stuck with the dead entry
// forever.
func TestCacheConcurrentRetryAfterFailure(t *testing.T) {
	recs := testRecords(500)
	cfg := testConfig(800)
	c := NewCache(0, t.TempDir())
	defer c.Close()
	key := Key{Workload: "w", Config: cfg}

	var mu sync.Mutex
	captures := 0
	started := make(chan struct{})
	release := make(chan struct{})
	waitsBase := obsCacheWaits.Value()

	// Owner: starts capturing, then fails once released.
	ownerErr := make(chan error, 1)
	go func() {
		_, err := c.GetOrCapture(key, func(CaptureOptions) (*Stream, error) {
			mu.Lock()
			captures++
			mu.Unlock()
			close(started)
			<-release
			return nil, os.ErrPermission
		})
		ownerErr <- err
	}()
	<-started

	// Waiter: arrives while the owner's capture is in flight, blocks,
	// and — after the failure — must retry with its own (succeeding)
	// capture.
	type got struct {
		s   *Stream
		err error
	}
	waiterGot := make(chan got, 1)
	go func() {
		s, err := c.GetOrCapture(key, func(opts CaptureOptions) (*Stream, error) {
			mu.Lock()
			captures++
			mu.Unlock()
			return Capture(trace.NewSliceSource(recs), cfg, opts)
		})
		waiterGot <- got{s, err}
	}()
	waitForCounter(t, obsCacheWaits.Value, waitsBase)
	close(release)

	if err := <-ownerErr; err == nil {
		t.Fatal("owner's failed capture reported no error")
	}
	w := <-waiterGot
	if w.err != nil {
		t.Fatalf("waiter inherited the failure instead of retrying: %v", w.err)
	}
	if w.s == nil || w.s.Events() == 0 {
		t.Fatal("waiter's retry produced no stream")
	}
	mu.Lock()
	defer mu.Unlock()
	if captures != 2 {
		t.Errorf("capture ran %d times, want 2 (owner fails, waiter retries)", captures)
	}
}

// TestCacheWaitAccounting: a caller that blocks on an in-flight
// capture pays full capture latency and must count as a wait, not a
// hit; a caller that arrives after completion is the hit.
func TestCacheWaitAccounting(t *testing.T) {
	recs := testRecords(500)
	cfg := testConfig(800)
	c := NewCache(0, t.TempDir())
	defer c.Close()
	key := Key{Workload: "w", Config: cfg}

	hits0, misses0, waits0 := obsCacheHits.Value(), obsCacheMisses.Value(), obsCacheWaits.Value()
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 2)
	go func() {
		_, err := c.GetOrCapture(key, func(opts CaptureOptions) (*Stream, error) {
			close(started)
			<-release
			return Capture(trace.NewSliceSource(recs), cfg, opts)
		})
		done <- err
	}()
	<-started
	go func() {
		_, err := c.GetOrCapture(key, func(opts CaptureOptions) (*Stream, error) {
			t.Error("waiter ran a second capture")
			return Capture(trace.NewSliceSource(recs), cfg, opts)
		})
		done <- err
	}()
	waitForCounter(t, obsCacheWaits.Value, waits0)
	close(release)
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	// A post-completion caller is a plain hit.
	if _, err := c.GetOrCapture(key, func(CaptureOptions) (*Stream, error) {
		t.Error("hit ran a capture")
		return nil, os.ErrInvalid
	}); err != nil {
		t.Fatal(err)
	}
	if d := obsCacheMisses.Value() - misses0; d != 1 {
		t.Errorf("misses delta = %d, want 1 (the owner)", d)
	}
	if d := obsCacheWaits.Value() - waits0; d != 1 {
		t.Errorf("waits delta = %d, want 1 (the blocked caller)", d)
	}
	if d := obsCacheHits.Value() - hits0; d != 1 {
		t.Errorf("hits delta = %d, want 1 (the post-completion caller)", d)
	}
}

// TestRetainSpillDefersDeletion: Close while a replay holds the spill
// file retained must leave the file on disk until the reference drops —
// the "in-flight replays keep working" contract for spilled streams.
func TestRetainSpillDefersDeletion(t *testing.T) {
	recs := testRecords(4000)
	cfg := testConfig(6000)
	sp, err := Capture(trace.NewSliceSource(recs), cfg, CaptureOptions{MaxBytes: 64, SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if !sp.Spilled() {
		t.Fatal("64-byte budget must force a spill")
	}
	path, releaseA, err := sp.RetainSpill()
	if err != nil {
		t.Fatal(err)
	}
	_, releaseB, err := sp.RetainSpill()
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Close(); err != nil {
		t.Fatalf("Close with readers: %v", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("Close deleted the spill file under %d readers: %v", 2, err)
	}
	releaseA()
	if _, err := os.Stat(path); err != nil {
		t.Fatal("first release deleted the file while a reader remains")
	}
	releaseB()
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("last release must delete the closed spill file")
	}
	if _, _, err := sp.RetainSpill(); err == nil {
		t.Error("RetainSpill after Close must fail")
	}
}

// TestCacheCloseRacesSpilledReplay drives the cache-level version of
// the same contract: GetOrCapture hands out a spilled stream, a
// "replay" retains it, Cache.Close runs, and the file must survive
// until release.
func TestCacheCloseRacesSpilledReplay(t *testing.T) {
	recs := testRecords(4000)
	cfg := testConfig(6000)
	c := NewCache(64, t.TempDir())
	s, err := c.GetOrCapture(Key{Workload: "w", Config: cfg}, func(opts CaptureOptions) (*Stream, error) {
		return Capture(trace.NewSliceSource(recs), cfg, opts)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Spilled() {
		t.Fatal("64-byte cache budget must force a spill")
	}
	path, release, err := s.RetainSpill()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Cache.Close: %v", err)
	}
	fs, err := trace.OpenFile(path)
	if err != nil {
		t.Fatalf("spill file unreadable after Cache.Close: %v", err)
	}
	n := len(trace.Collect(fs))
	fs.Close()
	if uint64(n) != s.Records() {
		t.Errorf("read %d records mid-Close, want %d", n, s.Records())
	}
	release()
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("release after Cache.Close must delete the spill file")
	}
}

// TestEvictOversizedStreamStays: a single stream whose footprint
// exceeds the whole budget must stay resident (there is nothing useful
// to evict it for), not thrash in and out. Capture itself spills
// rather than over-committing, so the oversized-resident case arises
// through the persistent tier: a small-budget cache loading a capture
// a bigger-budget process persisted.
func TestEvictOversizedStreamStays(t *testing.T) {
	recs := testRecords(2000)
	cfg := testConfig(3000)
	dir := t.TempDir()
	big, err := NewPersistent(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	seed, err := big.GetOrCapture(Key{Workload: "big", Config: cfg}, func(opts CaptureOptions) (*Stream, error) {
		return Capture(trace.NewSliceSource(recs), cfg, opts)
	})
	if err != nil {
		t.Fatal(err)
	}
	if seed.Spilled() {
		t.Fatal("default-budget capture must stay in memory")
	}
	if err := big.Close(); err != nil {
		t.Fatal(err)
	}

	c, err := NewPersistent(seed.FootprintBytes()/2, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, err := c.GetOrCapture(Key{Workload: "big", Config: cfg}, func(CaptureOptions) (*Stream, error) {
		t.Error("persisted capture was re-captured")
		return nil, os.ErrInvalid
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Spilled() {
		t.Fatal("persisted in-memory stream loaded as spilled")
	}
	if c.Used() <= c.Budget() {
		t.Fatalf("test premise broken: resident %d fits budget %d", c.Used(), c.Budget())
	}
	if c.Len() != 1 {
		t.Fatalf("oversized stream evicted: cache holds %d entries, want 1", c.Len())
	}
	// And it is a hit on re-request, not a recapture.
	if _, err := c.GetOrCapture(Key{Workload: "big", Config: cfg}, func(CaptureOptions) (*Stream, error) {
		t.Error("oversized stream was recaptured")
		return nil, os.ErrInvalid
	}); err != nil {
		t.Fatal(err)
	}
}

// TestEvictSparesKeep: when the entry that just finished capturing is
// itself the eviction candidate set's LRU, eviction must take the next
// oldest entry, never the one about to be returned.
func TestEvictSparesKeep(t *testing.T) {
	recs := testRecords(2000)
	cfg := testConfig(3000)
	probe, err := Capture(trace.NewSliceSource(recs), cfg, CaptureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	one := probe.FootprintBytes()
	c := NewCache(one+one/2, t.TempDir())
	defer c.Close()
	capture := func(opts CaptureOptions) (*Stream, error) {
		return Capture(trace.NewSliceSource(recs), cfg, opts)
	}
	if _, err := c.GetOrCapture(Key{Workload: "old", Config: cfg}, capture); err != nil {
		t.Fatal(err)
	}
	// "new" finishes with zero lastUse — nominally the LRU — but must
	// survive its own commit's eviction pass.
	if _, err := c.GetOrCapture(Key{Workload: "new", Config: cfg}, capture); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", c.Len())
	}
	if _, err := c.GetOrCapture(Key{Workload: "new", Config: cfg}, func(CaptureOptions) (*Stream, error) {
		t.Error("keep entry was evicted by its own commit")
		return nil, os.ErrInvalid
	}); err != nil {
		t.Fatal(err)
	}
}

// TestCacheGaugeConsistency: the shared residency gauges must track
// the cache's accounting through capture, eviction, and Close — ending
// exactly where they started.
func TestCacheGaugeConsistency(t *testing.T) {
	recs := testRecords(2000)
	cfg := testConfig(3000)
	probe, err := Capture(trace.NewSliceSource(recs), cfg, CaptureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	one := probe.FootprintBytes()
	bytes0, streams0 := obsCacheBytes.Value(), obsCacheStreams.Value()
	evict0 := obsCacheEvictions.Value()

	c := NewCache(2*one+one/2, t.TempDir())
	capture := func(opts CaptureOptions) (*Stream, error) {
		return Capture(trace.NewSliceSource(recs), cfg, opts)
	}
	for _, w := range []string{"a", "b", "c"} {
		if _, err := c.GetOrCapture(Key{Workload: w, Config: cfg}, capture); err != nil {
			t.Fatal(err)
		}
	}
	if d := obsCacheEvictions.Value() - evict0; d != 1 {
		t.Errorf("evictions delta = %d, want 1", d)
	}
	if d := obsCacheBytes.Value() - bytes0; d != c.Used() {
		t.Errorf("bytes gauge delta = %d, cache accounts %d", d, c.Used())
	}
	if d := obsCacheStreams.Value() - streams0; d != int64(c.Len()) {
		t.Errorf("streams gauge delta = %d, cache holds %d", d, c.Len())
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if d := obsCacheBytes.Value() - bytes0; d != 0 {
		t.Errorf("bytes gauge leaks %d after Close", d)
	}
	if d := obsCacheStreams.Value() - streams0; d != 0 {
		t.Errorf("streams gauge leaks %d after Close", d)
	}
}
