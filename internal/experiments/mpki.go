package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"

	"github.com/chirplab/chirp/internal/core"
	"github.com/chirplab/chirp/internal/engine"
	"github.com/chirplab/chirp/internal/policy"
	"github.com/chirplab/chirp/internal/sim"
	"github.com/chirplab/chirp/internal/stats"
	"github.com/chirplab/chirp/internal/tlb"
	"github.com/chirplab/chirp/internal/trace"
)

// Fig7Result is the Figure 7 data: the MPKI S-curve over the suite for
// every policy, plus the §VI-A averages.
type Fig7Result struct {
	Curve    *stats.SCurve
	Averages []PolicyAverages
	// BestReductionPct is the largest per-benchmark MPKI reduction
	// CHiRP achieves (paper: 58.93%).
	BestReductionPct float64
}

// Fig7 reproduces Figure 7 (MPKI comparison of the six policies, §VI-A).
func Fig7(o Options) (*Fig7Result, error) {
	byPolicy, ws, err := suiteMPKI(o, "fig7", sim.PaperPolicies)
	if err != nil {
		return nil, err
	}
	curve := &stats.SCurve{
		Labels: make([]string, len(ws)),
		Series: map[string][]float64{},
		Order:  "lru",
	}
	for i, w := range ws {
		curve.Labels[i] = w.Name
	}
	for name, rs := range byPolicy {
		vals := make([]float64, len(ws))
		for i, r := range rs {
			vals[i] = r.MPKI
		}
		curve.Series[name] = vals
	}
	res := &Fig7Result{Curve: curve, Averages: averages(byPolicy, sim.PaperPolicies)}
	for i := range ws {
		lru := curve.Series["lru"][i]
		ch := curve.Series["chirp"][i]
		if lru > 0.05 { // ignore near-zero-MPKI head
			if red := stats.Reduction(lru, ch); red > res.BestReductionPct {
				res.BestReductionPct = red
			}
		}
	}
	return res, nil
}

// Write renders the averages table and the S-curve CSV.
func (r *Fig7Result) Write(w io.Writer) error {
	fmt.Fprintln(w, "Figure 7 — MPKI over the suite (S-curve ordered by LRU)")
	if err := writeAverages(w, r.Averages); err != nil {
		return err
	}
	fmt.Fprintf(w, "best per-benchmark CHiRP reduction: %.2f%% (paper: 58.93%%)\n\n", r.BestReductionPct)
	return r.Curve.WriteCSV(w, sim.PaperPolicies)
}

// Fig1Result is the Figure 1 data: per-benchmark TLB efficiency per
// policy (scaled by LRU), and the §VI-D average efficiency gains.
type Fig1Result struct {
	Labels []string
	// Rows maps policy to per-benchmark efficiency (absolute).
	Rows map[string][]float64
	// AvgGainPct maps policy to average efficiency gain over LRU
	// (paper: CHiRP 8.07, Random 3.10, GHRP 2.92, SRRIP 2.84, SHiP
	// 1.85).
	AvgGainPct map[string]float64
	Order      []string
}

// Fig1 reproduces Figure 1 / §VI-D (TLB efficiency heat map).
func Fig1(o Options) (*Fig1Result, error) {
	byPolicy, ws, err := suiteMPKI(o, "fig1", sim.PaperPolicies)
	if err != nil {
		return nil, err
	}
	res := &Fig1Result{
		Labels:     make([]string, len(ws)),
		Rows:       map[string][]float64{},
		AvgGainPct: map[string]float64{},
		Order:      sim.PaperPolicies,
	}
	for i, w := range ws {
		res.Labels[i] = w.Name
	}
	lruEffs := collect(byPolicy["lru"], func(r sim.SuiteResult) float64 { return r.Efficiency })
	baseMean := stats.Mean(lruEffs)
	for name, rs := range byPolicy {
		effs := collect(rs, func(r sim.SuiteResult) float64 { return r.Efficiency })
		res.Rows[name] = effs
		res.AvgGainPct[name] = (stats.Mean(effs) - baseMean) / baseMean * 100
	}
	return res, nil
}

// Write renders the heat map (one row per benchmark, sorted by LRU
// efficiency as the paper does) and the average-gain table.
func (r *Fig1Result) Write(w io.Writer) error {
	fmt.Fprintln(w, "Figure 1 — TLB efficiency heat map (lighter = more efficient)")
	rows := make([][]string, 0, len(r.Order))
	for _, p := range r.Order {
		rows = append(rows, []string{p, fmt.Sprintf("%+.2f%%", r.AvgGainPct[p])})
	}
	if err := stats.Table(w, []string{"policy", "avg efficiency vs LRU"}, rows); err != nil {
		return err
	}
	// Sort benchmarks by LRU efficiency, ascending (paper: "sorted from
	// low to high cache efficiency").
	idx := make([]int, len(r.Labels))
	for i := range idx {
		idx[i] = i
	}
	lru := r.Rows["lru"]
	sort.SliceStable(idx, func(a, b int) bool { return lru[idx[a]] < lru[idx[b]] })
	fmt.Fprintf(w, "\n%-14s %s\n", "benchmark", "efficiency per policy (order:")
	fmt.Fprintf(w, "%-14s %v)\n", "", r.Order)
	for _, i := range idx {
		vals := make([]float64, len(r.Order))
		for j, p := range r.Order {
			vals[j] = r.Rows[p][i]
		}
		fmt.Fprintf(w, "%-14s %s\n", r.Labels[i], stats.HeatRow(vals))
	}
	return nil
}

// Fig6Variant is one rung of the Figure 6 ablation ladder.
type Fig6Variant struct {
	Name         string
	Description  string
	MeanMPKI     float64
	ReductionPct float64
	// PaperPct is the reduction the paper reports for the comparable
	// configuration.
	PaperPct float64
}

// Fig6Result is the ablation ladder.
type Fig6Result struct {
	Variants []Fig6Variant
}

// Fig6 reproduces Figure 6 (§III): the effect of each feature,
// input transform and update-policy optimisation on MPKI reduction.
func Fig6(o Options) (*Fig6Result, error) {
	// Nine suite passes over one trace budget: share one stream cache
	// so each workload is generated and L1-filtered once, not nine
	// times.
	o, done := o.withCache()
	defer done()
	ws := o.suite()
	cfg := o.tlbCfg()

	type variant struct {
		name, desc string
		paper      float64
		factory    sim.PolicyFactory
	}
	chirpCfg := func(mut func(*core.Config)) sim.PolicyFactory {
		c := core.DefaultConfig()
		mut(&c)
		return sim.CHiRPFactory(c)
	}
	lruF, _ := sim.Factories([]string{"lru"})
	shipF, _ := sim.Factories([]string{"ship"})
	shipU, _ := sim.Factories([]string{"ship-unlimited"})
	shipS, _ := sim.Factories([]string{"ship-sampled"})

	variants := []variant{
		{"ship", "PC-only signature (SHiP, §III)", 0.88, shipF[0].New},
		{"ship-unlimited", "SHiP with an unaliased prediction table", 0.63, shipU[0].New},
		{"ship-sampled", "SHiP predicting a subset of sets", 1.28, shipS[0].New},
		{"chirp-pc", "CHiRP update policy, PC-only signature (selective hit update)", 5.85, chirpCfg(func(c *core.Config) {
			c.UsePathHistory, c.UseCondHistory, c.UseIndirectHistory = false, false, false
		})},
		{"chirp-path", "+ global path history of PC bits", 15.0, chirpCfg(func(c *core.Config) {
			c.UseCondHistory, c.UseIndirectHistory = false, false
		})},
		{"chirp-path-cond", "+ conditional branch address history", 23.88, chirpCfg(func(c *core.Config) {
			c.UseIndirectHistory = false
			c.History.PathLeadingZeros = false
		})},
		{"chirp-lz", "+ leading-zero shift-and-scale", 26.98, chirpCfg(func(c *core.Config) {
			c.UseIndirectHistory = false
		})},
		{"chirp", "full CHiRP (+ indirect branch history)", 28.21, sim.CHiRPFactory(core.DefaultConfig())},
	}

	lruRes, err := sim.RunSuiteTLBOnlyCtx(o.ctx(), ws, lruF, cfg, o.suiteOpts("fig6"))
	if err != nil {
		return nil, err
	}
	base := stats.Mean(collect(lruRes, func(r sim.SuiteResult) float64 { return r.MPKI }))

	res := &Fig6Result{}
	for _, v := range variants {
		rs, err := sim.RunSuiteTLBOnlyCtx(o.ctx(), ws, []sim.NamedFactory{{Name: v.name, New: v.factory}}, cfg, o.suiteOpts("fig6"))
		if err != nil {
			return nil, err
		}
		m := stats.Mean(collect(rs, func(r sim.SuiteResult) float64 { return r.MPKI }))
		res.Variants = append(res.Variants, Fig6Variant{
			Name: v.name, Description: v.desc,
			MeanMPKI: m, ReductionPct: stats.Reduction(base, m), PaperPct: v.paper,
		})
	}
	return res, nil
}

// Write renders the ladder.
func (r *Fig6Result) Write(w io.Writer) error {
	fmt.Fprintln(w, "Figure 6 — feature/optimisation ablation (avg MPKI reduction vs LRU)")
	rows := make([][]string, 0, len(r.Variants))
	for _, v := range r.Variants {
		rows = append(rows, []string{
			v.Name,
			fmt.Sprintf("%+.2f%%", v.ReductionPct),
			fmt.Sprintf("%+.2f%%", v.PaperPct),
			v.Description,
		})
	}
	return stats.Table(w, []string{"variant", "measured", "paper", "description"}, rows)
}

// Fig9Point is one prediction-table budget measurement.
type Fig9Point struct {
	Bytes        int
	Entries      int
	MeanMPKI     float64
	ReductionPct float64
}

// Fig9Result is the table-size sweep.
type Fig9Result struct {
	Points []Fig9Point
}

// Fig9 reproduces Figure 9 (§VI-F): CHiRP MPKI improvement over LRU
// for prediction-table budgets from 128 B to 8 KB (2-bit counters).
func Fig9(o Options) (*Fig9Result, error) {
	// Eight suite passes (LRU base + seven budgets) share captures.
	o, done := o.withCache()
	defer done()
	ws := o.suite()
	cfg := o.tlbCfg()
	lruF, _ := sim.Factories([]string{"lru"})
	lruRes, err := sim.RunSuiteTLBOnlyCtx(o.ctx(), ws, lruF, cfg, o.suiteOpts("fig9"))
	if err != nil {
		return nil, err
	}
	base := stats.Mean(collect(lruRes, func(r sim.SuiteResult) float64 { return r.MPKI }))

	res := &Fig9Result{}
	for _, bytes := range []int{128, 256, 512, 1024, 2048, 4096, 8192} {
		entries := bytes * 8 / 2 // 2-bit counters
		c := core.DefaultConfig()
		c.TableEntries = entries
		rs, err := sim.RunSuiteTLBOnlyCtx(o.ctx(), ws, []sim.NamedFactory{{Name: "chirp", New: sim.CHiRPFactory(c)}}, cfg, o.suiteOpts(fmt.Sprintf("fig9/%dB", bytes)))
		if err != nil {
			return nil, err
		}
		m := stats.Mean(collect(rs, func(r sim.SuiteResult) float64 { return r.MPKI }))
		res.Points = append(res.Points, Fig9Point{
			Bytes: bytes, Entries: entries,
			MeanMPKI: m, ReductionPct: stats.Reduction(base, m),
		})
	}
	return res, nil
}

// Write renders the sweep with proportional bars.
func (r *Fig9Result) Write(w io.Writer) error {
	fmt.Fprintln(w, "Figure 9 — CHiRP MPKI improvement over LRU vs prediction-table size")
	max := 0.0
	for _, p := range r.Points {
		if p.ReductionPct > max {
			max = p.ReductionPct
		}
	}
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%dB", p.Bytes),
			fmt.Sprintf("%d", p.Entries),
			fmt.Sprintf("%+.2f%%", p.ReductionPct),
			stats.Bar(p.ReductionPct, max, 30),
		})
	}
	return stats.Table(w, []string{"budget", "counters", "MPKI vs LRU", ""}, rows)
}

// Fig11Result is the Figure 11 data: the distribution of
// prediction-table accesses per TLB access for the table-based
// policies.
type Fig11Result struct {
	Densities []stats.Density
}

// Fig11 reproduces Figure 11 (§VI-B): CHiRP touches its table on
// ~10% of TLB accesses, SHiP and GHRP on (over) 100%.
func Fig11(o Options) (*Fig11Result, error) {
	byPolicy, _, err := suiteMPKI(o, "fig11", []string{"ship", "ghrp", "chirp"})
	if err != nil {
		return nil, err
	}
	res := &Fig11Result{}
	for _, name := range []string{"ship", "ghrp", "chirp"} {
		rates := collect(byPolicy[name], func(r sim.SuiteResult) float64 { return r.TableAccessRate })
		res.Densities = append(res.Densities, stats.Summarize(name, rates))
	}
	return res, nil
}

// Write renders the density summary table.
func (r *Fig11Result) Write(w io.Writer) error {
	fmt.Fprintln(w, "Figure 11 — prediction-table accesses per TLB access")
	rows := make([][]string, 0, len(r.Densities))
	for _, d := range r.Densities {
		rows = append(rows, []string{
			d.Name,
			fmt.Sprintf("%.3f", d.Mean),
			fmt.Sprintf("%.3f", d.StdDev),
			fmt.Sprintf("%.3f", d.P10),
			fmt.Sprintf("%.3f", d.P50),
			fmt.Sprintf("%.3f", d.P90),
			fmt.Sprintf("%.3f", d.Max),
		})
	}
	if err := stats.Table(w, []string{"policy", "mean", "stddev", "p10", "p50", "p90", "max"}, rows); err != nil {
		return err
	}
	fmt.Fprintln(w, "(paper: CHiRP mean 10.14% with low variance; SHiP/GHRP ≈100%+ with high variance)")
	return nil
}

// OptResult is the extension X1 data: the Bélády upper bound.
type OptResult struct {
	Averages []PolicyAverages
	// OptMeanMPKI and OptReductionPct position the offline optimum.
	OptMeanMPKI     float64
	OptReductionPct float64
}

// OptBound runs LRU, CHiRP and the offline OPT oracle over a suite
// subset, quantifying how much of the optimal headroom CHiRP captures.
func OptBound(o Options) (*OptResult, error) {
	// One cache serves the lru/chirp suite pass AND the oracle jobs:
	// the capture that replayed lru and chirp also yields the VPN
	// sequence OPT's oracle needs and the event stream its run replays,
	// so each workload's trace is generated exactly once.
	o, done := o.withCache()
	defer done()
	ws := o.suite()
	cfg := o.tlbCfg()
	byPolicy, _, err := suiteMPKI(o, "opt", []string{"lru", "chirp"})
	if err != nil {
		return nil, err
	}
	res := &OptResult{Averages: averages(byPolicy, []string{"lru", "chirp"})}

	// The oracle runs are engine jobs too; they gain the most from the
	// worker pool — and from checkpointing.
	jobs := make([]engine.Job[float64], 0, len(ws))
	for _, w := range ws {
		w := w
		jobs = append(jobs, engine.Job[float64]{
			Key: engine.Key{Scope: "opt", Workload: w.Name, Policy: "opt"},
			Run: func(context.Context) (float64, error) {
				stream, err := sim.StreamFor(o.StreamCache, w.Name, w.SpecHash, cfg, func() (trace.Source, error) {
					return trace.NewLimit(w.Source(), o.Instructions), nil
				})
				if err != nil {
					return 0, err
				}
				vpns, err := sim.StreamVPNs(stream, cfg)
				if err != nil {
					return 0, err
				}
				r, err := sim.ReplayTLBOnly(stream, newOPT(vpns), cfg)
				if err != nil {
					return 0, err
				}
				return r.MPKI, nil
			},
		})
	}
	optMPKI, err := engine.Run(o.ctx(), jobs, engine.Config{Workers: o.Workers, Sink: o.Sink, Checkpoint: o.Checkpoint})
	if err != nil {
		return nil, err
	}
	res.OptMeanMPKI = stats.Mean(optMPKI)
	res.OptReductionPct = stats.Reduction(res.Averages[0].MeanMPKI, res.OptMeanMPKI)
	return res, nil
}

// Write renders the bound.
func (r *OptResult) Write(w io.Writer) error {
	fmt.Fprintln(w, "Extension X1 — Bélády OPT upper bound")
	if err := writeAverages(w, r.Averages); err != nil {
		return err
	}
	fmt.Fprintf(w, "opt     %.3f  %+.2f%% (offline optimum)\n", r.OptMeanMPKI, r.OptReductionPct)
	chirpRed := r.Averages[1].ReductionPct
	if r.OptReductionPct > 0 {
		fmt.Fprintf(w, "CHiRP captures %.1f%% of the optimal headroom\n", chirpRed/r.OptReductionPct*100)
	}
	return nil
}

// newOPT wraps the offline optimal policy around a pre-collected L2
// access stream.
func newOPT(stream []uint64) tlb.Policy {
	return policy.NewOPT(policy.BuildOracle(stream))
}

// BaselinesResult is the extension X3 data: the paper's comparison
// extended with SDBP (set sampling — §II-B's negative result), DRRIP
// and perceptron-based reuse prediction.
type BaselinesResult struct {
	Averages []PolicyAverages
}

// Baselines runs the extended baseline comparison.
func Baselines(o Options) (*BaselinesResult, error) {
	byPolicy, _, err := suiteMPKI(o, "baselines", sim.ExtendedPolicies)
	if err != nil {
		return nil, err
	}
	return &BaselinesResult{Averages: averages(byPolicy, sim.ExtendedPolicies)}, nil
}

// Write renders the comparison.
func (r *BaselinesResult) Write(w io.Writer) error {
	fmt.Fprintln(w, "Extension X3 — extended baseline comparison (adds SDBP, DRRIP, perceptron)")
	if err := writeAverages(w, r.Averages); err != nil {
		return err
	}
	fmt.Fprintln(w, "(§II-B predicts SDBP's set sampling does not generalise to TLBs)")
	return nil
}

// CategoryResult is the per-category breakdown of the Figure 7
// comparison — the paper's §V lists the trace categories; this view
// shows where each policy's gains come from.
type CategoryResult struct {
	Categories []CategoryRow
	Order      []string
}

// CategoryRow is one workload family.
type CategoryRow struct {
	Category string
	Count    int
	// MeanMPKI maps policy → mean MPKI within the category.
	MeanMPKI map[string]float64
	// ReductionPct maps policy → reduction vs the category's LRU mean.
	ReductionPct map[string]float64
}

// Categories runs the paper's six policies and reduces per category.
func Categories(o Options) (*CategoryResult, error) {
	byPolicy, ws, err := suiteMPKI(o, "categories", sim.PaperPolicies)
	if err != nil {
		return nil, err
	}
	byCat := map[string]map[string][]float64{} // category → policy → MPKIs
	for _, name := range sim.PaperPolicies {
		for i, r := range byPolicy[name] {
			cat := ws[i].Category
			if byCat[cat] == nil {
				byCat[cat] = map[string][]float64{}
			}
			byCat[cat][name] = append(byCat[cat][name], r.MPKI)
		}
	}
	res := &CategoryResult{Order: sim.PaperPolicies}
	for _, cat := range workloadCategories() {
		m := byCat[cat]
		if m == nil {
			continue
		}
		row := CategoryRow{
			Category:     cat,
			Count:        len(m["lru"]),
			MeanMPKI:     map[string]float64{},
			ReductionPct: map[string]float64{},
		}
		base := stats.Mean(m["lru"])
		for _, p := range sim.PaperPolicies {
			mean := stats.Mean(m[p])
			row.MeanMPKI[p] = mean
			row.ReductionPct[p] = stats.Reduction(base, mean)
		}
		res.Categories = append(res.Categories, row)
	}
	return res, nil
}

// Write renders one row per category.
func (r *CategoryResult) Write(w io.Writer) error {
	fmt.Fprintln(w, "Per-category MPKI (mean) and reduction vs category LRU")
	header := []string{"category", "n", "lru"}
	for _, p := range r.Order {
		if p != "lru" {
			header = append(header, p)
		}
	}
	rows := make([][]string, 0, len(r.Categories))
	for _, row := range r.Categories {
		cells := []string{row.Category, fmt.Sprintf("%d", row.Count), fmt.Sprintf("%.3f", row.MeanMPKI["lru"])}
		for _, p := range r.Order {
			if p == "lru" {
				continue
			}
			cells = append(cells, fmt.Sprintf("%.2f (%+.0f%%)", row.MeanMPKI[p], row.ReductionPct[p]))
		}
		rows = append(rows, cells)
	}
	return stats.Table(w, header, rows)
}

// workloadCategories avoids importing workloads here for one slice.
func workloadCategories() []string {
	return []string{"spec", "db", "crypto", "sci", "web", "bigdata", "ml", "osmix"}
}
