// Package experiments regenerates every table and figure of the
// paper's evaluation (§VI): each Fig*/Table* function runs the
// required simulations over the synthetic suite and returns the series
// the paper plots, plus a writer that renders them as text/CSV. The
// cmd/chirpexp binary and the repository's benchmarks are thin
// wrappers over this package.
package experiments

import (
	"context"
	"fmt"
	"io"

	"github.com/chirplab/chirp/internal/engine"
	"github.com/chirplab/chirp/internal/l2stream"
	"github.com/chirplab/chirp/internal/sim"
	"github.com/chirplab/chirp/internal/stats"
	"github.com/chirplab/chirp/internal/workloads"
)

// Options scales an experiment run. The paper simulates 870 traces for
// up to 100 M instructions; on a laptop-class host use fewer
// workloads and instructions — shapes stabilise long before full
// scale.
type Options struct {
	// Workloads is the suite prefix size (≤ 870; 0 means the full
	// suite).
	Workloads int
	// Suite, when non-nil, replaces the default 870-workload suite —
	// e.g. the compiled population of a -workload-spec run. Workloads
	// still selects a prefix of it.
	Suite []*workloads.Workload
	// Instructions bounds each trace.
	Instructions uint64
	// WalkPenalty is the L2 TLB miss penalty for timing experiments
	// (the paper's headline speedups use 150).
	WalkPenalty uint64
	// Workers bounds simulation parallelism (0 = GOMAXPROCS).
	Workers int
	// Ctx cancels in-progress suite runs (nil = Background). A
	// cancelled run stops dispatching jobs, drains the in-flight ones
	// and — with Checkpoint set — leaves a resumable file behind.
	Ctx context.Context
	// Sink observes per-job engine progress (nil = silent).
	Sink engine.Sink
	// Checkpoint, when non-nil, makes every suite run resumable: each
	// experiment namespaces its jobs with a scope, so one file covers
	// a whole `-exp all` sweep.
	Checkpoint *engine.Checkpoint
	// StreamCache shares captured L2 event streams across an
	// experiment's suite invocations (and across experiments, when the
	// caller passes one cache to several). Sweep-style experiments that
	// call the suite many times with a fixed trace budget — Fig6's
	// history sweeps, Fig9's storage ladder, the prefetch-distance
	// sweep — capture each workload once total instead of once per
	// sweep point. Nil leaves each suite call to its own per-call
	// cache; see sim.SuiteOptions.StreamCache.
	StreamCache *l2stream.Cache
}

// ctx returns the run context.
func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// suiteOpts assembles the engine-facing options for one suite
// invocation. Experiments that drive the suite several times under
// one name (config sweeps reusing policy names) must pass a distinct
// scope per invocation so checkpoint keys never collide.
func (o Options) suiteOpts(scope string) sim.SuiteOptions {
	return sim.SuiteOptions{Workers: o.Workers, Sink: o.Sink, Checkpoint: o.Checkpoint, Scope: scope,
		StreamCache: o.StreamCache}
}

// withCache returns options that are guaranteed to carry a stream
// cache, plus the cleanup for it. Experiments that invoke the suite
// several times with one trace budget call this so every invocation
// shares captures; when the caller already supplied a cache, it is
// kept (and the cleanup is a no-op, since the caller owns it).
func (o Options) withCache() (Options, func()) {
	if o.StreamCache != nil {
		return o, func() {}
	}
	c := l2stream.NewCache(0, "")
	o.StreamCache = c
	return o, func() { c.Close() }
}

// DefaultOptions returns a laptop-scale configuration: the full suite
// at 2 M instructions per trace for MPKI experiments.
func DefaultOptions() Options {
	return Options{
		Workloads:    workloads.SuiteSize,
		Instructions: 2_000_000,
		WalkPenalty:  150,
	}
}

func (o Options) suite() []*workloads.Workload {
	if o.Suite != nil {
		if n := o.Workloads; n > 0 && n < len(o.Suite) {
			return o.Suite[:n]
		}
		return o.Suite
	}
	n := o.Workloads
	if n <= 0 || n > workloads.SuiteSize {
		n = workloads.SuiteSize
	}
	return workloads.SuiteN(n)
}

func (o Options) tlbCfg() sim.TLBOnlyConfig {
	return sim.DefaultTLBOnlyConfig(o.Instructions)
}

// PolicyAverages summarises one policy over a suite run.
type PolicyAverages struct {
	Policy        string
	MeanMPKI      float64
	ReductionPct  float64 // of mean MPKI vs LRU
	MeanEff       float64
	EffGainPct    float64 // vs LRU
	TableRateMean float64
}

// suiteMPKI runs the TLB-only suite for the named policies under the
// given checkpoint scope and indexes results by policy.
func suiteMPKI(o Options, scope string, policyNames []string) (map[string][]sim.SuiteResult, []*workloads.Workload, error) {
	ws := o.suite()
	pols, err := sim.Factories(policyNames)
	if err != nil {
		return nil, nil, err
	}
	results, err := sim.RunSuiteTLBOnlyCtx(o.ctx(), ws, pols, o.tlbCfg(), o.suiteOpts(scope))
	if err != nil {
		return nil, nil, err
	}
	byPolicy := make(map[string][]sim.SuiteResult, len(pols))
	for _, r := range results {
		byPolicy[r.Policy] = append(byPolicy[r.Policy], r)
	}
	return byPolicy, ws, nil
}

// averages reduces per-policy results against the "lru" baseline.
func averages(byPolicy map[string][]sim.SuiteResult, order []string) []PolicyAverages {
	lruMPKI := collect(byPolicy["lru"], func(r sim.SuiteResult) float64 { return r.MPKI })
	lruEff := collect(byPolicy["lru"], func(r sim.SuiteResult) float64 { return r.Efficiency })
	baseMPKI := stats.Mean(lruMPKI)
	baseEff := stats.Mean(lruEff)
	out := make([]PolicyAverages, 0, len(order))
	for _, name := range order {
		rs := byPolicy[name]
		m := stats.Mean(collect(rs, func(r sim.SuiteResult) float64 { return r.MPKI }))
		e := stats.Mean(collect(rs, func(r sim.SuiteResult) float64 { return r.Efficiency }))
		out = append(out, PolicyAverages{
			Policy:        name,
			MeanMPKI:      m,
			ReductionPct:  stats.Reduction(baseMPKI, m),
			MeanEff:       e,
			EffGainPct:    stats.Reduction(baseEff, e) * -1, // gain, not reduction
			TableRateMean: stats.Mean(collect(rs, func(r sim.SuiteResult) float64 { return r.TableAccessRate })),
		})
	}
	return out
}

func collect[T any](rs []T, f func(T) float64) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = f(r)
	}
	return out
}

func writeAverages(w io.Writer, avgs []PolicyAverages) error {
	rows := make([][]string, 0, len(avgs))
	for _, a := range avgs {
		rows = append(rows, []string{
			a.Policy,
			fmt.Sprintf("%.3f", a.MeanMPKI),
			fmt.Sprintf("%+.2f%%", a.ReductionPct),
			fmt.Sprintf("%.3f", a.MeanEff),
			fmt.Sprintf("%+.2f%%", a.EffGainPct),
		})
	}
	return stats.Table(w, []string{"policy", "mean MPKI", "MPKI vs LRU", "efficiency", "eff vs LRU"}, rows)
}
