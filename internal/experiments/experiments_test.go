package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tiny keeps experiment tests fast; shapes are asserted loosely since
// sample sizes are small.
func tiny() Options {
	return Options{Workloads: 8, Instructions: 250_000, WalkPenalty: 150}
}

func TestFig7(t *testing.T) {
	r, err := Fig7(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Averages) != 6 {
		t.Fatalf("averages = %d, want 6", len(r.Averages))
	}
	if r.Averages[0].Policy != "lru" || r.Averages[0].ReductionPct != 0 {
		t.Errorf("baseline row: %+v", r.Averages[0])
	}
	var chirpRed float64
	for _, a := range r.Averages {
		if a.Policy == "chirp" {
			chirpRed = a.ReductionPct
		}
	}
	if chirpRed <= 0 {
		t.Errorf("CHiRP reduction = %v, want positive", chirpRed)
	}
	if len(r.Curve.Labels) != 8 {
		t.Errorf("curve labels = %d, want 8", len(r.Curve.Labels))
	}
	var sb bytes.Buffer
	if err := r.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "chirp") {
		t.Error("report missing chirp row")
	}
}

func TestFig1(t *testing.T) {
	r, err := Fig1(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows["chirp"]) != 8 {
		t.Fatalf("chirp rows = %d, want 8", len(r.Rows["chirp"]))
	}
	for p, effs := range r.Rows {
		for i, e := range effs {
			if e < 0 || e > 1 {
				t.Errorf("%s efficiency[%d] = %v out of [0,1]", p, i, e)
			}
		}
	}
	var sb bytes.Buffer
	if err := r.Write(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestFig6LadderShape(t *testing.T) {
	r, err := Fig6(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Variants) != 8 {
		t.Fatalf("variants = %d, want 8", len(r.Variants))
	}
	if r.Variants[0].Name != "ship" || r.Variants[len(r.Variants)-1].Name != "chirp" {
		t.Errorf("ladder endpoints: %s .. %s", r.Variants[0].Name, r.Variants[len(r.Variants)-1].Name)
	}
	var sb bytes.Buffer
	if err := r.Write(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestFig9MonotoneBudget(t *testing.T) {
	r, err := Fig9(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 7 {
		t.Fatalf("points = %d, want 7", len(r.Points))
	}
	if r.Points[0].Bytes != 128 || r.Points[len(r.Points)-1].Bytes != 8192 {
		t.Errorf("budget endpoints: %d..%d", r.Points[0].Bytes, r.Points[len(r.Points)-1].Bytes)
	}
	for _, p := range r.Points {
		if p.Entries != p.Bytes*4 {
			t.Errorf("%dB: entries = %d, want %d (2-bit counters)", p.Bytes, p.Entries, p.Bytes*4)
		}
	}
}

func TestFig11Ordering(t *testing.T) {
	r, err := Fig11(tiny())
	if err != nil {
		t.Fatal(err)
	}
	rates := map[string]float64{}
	for _, d := range r.Densities {
		rates[d.Name] = d.Mean
	}
	// CHiRP must access its table far less often than SHiP and GHRP —
	// the paper's Figure 11 claim.
	if rates["chirp"] >= rates["ship"] || rates["chirp"] >= rates["ghrp"] {
		t.Errorf("CHiRP table rate %.3f not below SHiP %.3f / GHRP %.3f",
			rates["chirp"], rates["ship"], rates["ghrp"])
	}
}

func TestFig8SpeedupRuns(t *testing.T) {
	r, err := Fig8(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if r.GeoMeanPct["lru"] != 0 {
		t.Errorf("LRU self-speedup = %v, want 0", r.GeoMeanPct["lru"])
	}
	if len(r.Curve.Labels) != 8 {
		t.Errorf("labels = %d", len(r.Curve.Labels))
	}
}

func TestFig3SalienceNormalised(t *testing.T) {
	o := tiny()
	o.Instructions = 500_000 // needs enough evictions for samples
	r, err := Fig3(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Skip("no workloads produced enough lifetime samples at this scale")
	}
	for _, row := range r.Rows {
		for i, s := range row.Salience {
			if s < 0 || s > 1 {
				t.Errorf("%s salience[%d] = %v out of [0,1]", row.Workload, i, s)
			}
		}
	}
	var sb bytes.Buffer
	if err := r.Write(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestTable1(t *testing.T) {
	r, err := Table1(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Configs) != 3 {
		t.Fatalf("configs = %d, want 3", len(r.Configs))
	}
	// The paper's main budget: 3.15 KB total for a 1 KB counter table.
	if got := r.Configs[1].TotalBytes; got != 3224 {
		t.Errorf("main config total = %v bytes, want 3224", got)
	}
	if r.Configs[0].TotalBytes >= r.Configs[2].TotalBytes {
		t.Error("budgets not increasing")
	}
}

func TestTable2(t *testing.T) {
	var sb bytes.Buffer
	if err := Table2(tiny(), &sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"L2 Unified TLB", "1024 entries", "hashed perceptron", "240 cycles"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("Table II output missing %q", want)
		}
	}
}

func TestOptBound(t *testing.T) {
	o := tiny()
	o.Workloads = 4
	r, err := OptBound(o)
	if err != nil {
		t.Fatal(err)
	}
	// The offline optimum must dominate both online policies.
	if r.OptMeanMPKI > r.Averages[0].MeanMPKI || r.OptMeanMPKI > r.Averages[1].MeanMPKI {
		t.Errorf("OPT mean %.3f above online policies %+v", r.OptMeanMPKI, r.Averages)
	}
}

func TestWalker(t *testing.T) {
	o := tiny()
	o.Workloads = 2
	r, err := Walker(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.FixedIPC <= 0 || r.RadixIPC <= 0 {
		t.Fatalf("IPCs: %+v", r)
	}
	if r.RadixAvgWalk <= 0 {
		t.Errorf("radix avg walk = %v, want positive", r.RadixAvgWalk)
	}
}

func TestDefaultOptions(t *testing.T) {
	o := DefaultOptions()
	if o.Workloads != 870 || o.WalkPenalty != 150 {
		t.Errorf("DefaultOptions = %+v", o)
	}
	if got := len(o.suite()); got != 870 {
		t.Errorf("suite size = %d", got)
	}
	o.Workloads = -1
	if got := len(o.suite()); got != 870 {
		t.Errorf("negative workload count must clamp to full suite, got %d", got)
	}
}
