package experiments

import (
	"fmt"
	"io"

	"github.com/chirplab/chirp/internal/adaline"
	"github.com/chirplab/chirp/internal/core"
	"github.com/chirplab/chirp/internal/mixed"
	"github.com/chirplab/chirp/internal/paging"
	"github.com/chirplab/chirp/internal/pipeline"
	"github.com/chirplab/chirp/internal/sim"
	"github.com/chirplab/chirp/internal/stats"
	"github.com/chirplab/chirp/internal/trace"
)

// Fig3Row is one benchmark's trained ADALINE weight vector.
type Fig3Row struct {
	Workload string
	// Salience is |w| normalised per row; index i is PC bit FirstBit+i.
	Salience []float64
	Accuracy float64
}

// Fig3Result is the PC-bit salience study.
type Fig3Result struct {
	FirstBit int
	Bits     int
	Rows     []Fig3Row
	// MeanSalience averages each bit's salience over benchmarks.
	MeanSalience []float64
}

// Fig3 reproduces Figure 3 (§III-A): per benchmark, train an ADALINE
// offline on (insertion PC bits → reused?) lifetimes harvested from
// the LRU-replaced TLB, then read each PC bit's salience from the
// trained weights. The paper finds bits 2 and 3 carry the most reuse
// information, which is why CHiRP's path history records exactly those
// bits.
func Fig3(o Options) (*Fig3Result, error) {
	const firstBit, bits = 2, 16
	res := &Fig3Result{FirstBit: firstBit, Bits: bits, MeanSalience: make([]float64, bits)}
	ws := o.suite()
	cfg := o.tlbCfg()
	for _, w := range ws {
		samples, err := sim.CollectReuseSamples(trace.NewLimit(w.Source(), o.Instructions), cfg, 200_000)
		if err != nil {
			return nil, err
		}
		if len(samples) < 100 {
			continue // not enough evictions to learn from
		}
		a := adaline.New(adaline.Config{Inputs: bits, LearningRate: 0.02, L1Decay: 0.0003})
		for epoch := 0; epoch < 3; epoch++ {
			for _, s := range samples {
				d := -1.0
				if s.Reused {
					d = 1.0
				}
				a.Train(adaline.EncodePCBits(s.PC, firstBit, bits), d)
			}
		}
		row := Fig3Row{Workload: w.Name, Salience: a.Salience(), Accuracy: a.Accuracy()}
		res.Rows = append(res.Rows, row)
		for i, s := range row.Salience {
			res.MeanSalience[i] += s
		}
	}
	if len(res.Rows) > 0 {
		for i := range res.MeanSalience {
			res.MeanSalience[i] /= float64(len(res.Rows))
		}
	}
	return res, nil
}

// Write renders the weight heat map, one row per benchmark plus the
// mean row.
func (r *Fig3Result) Write(w io.Writer) error {
	fmt.Fprintln(w, "Figure 3 — ADALINE weight magnitude per PC bit (lighter = more salient)")
	fmt.Fprintf(w, "%-14s bits %d..%d\n", "benchmark", r.FirstBit, r.FirstBit+r.Bits-1)
	for _, row := range r.Rows {
		// HeatRow renders high values light; salience is already 0..1.
		fmt.Fprintf(w, "%-14s %s  (train acc %.2f)\n", row.Workload, stats.HeatRow(row.Salience), row.Accuracy)
	}
	fmt.Fprintf(w, "%-14s %s\n", "MEAN", stats.HeatRow(r.MeanSalience))
	cols := make([]string, len(r.MeanSalience))
	for i := range cols {
		cols[i] = fmt.Sprintf("bit%-2d=%.2f", r.FirstBit+i, r.MeanSalience[i])
	}
	fmt.Fprintln(w, cols)
	return nil
}

// Table1Result is the storage-budget table.
type Table1Result struct {
	Configs []Table1Row
}

// Table1Row is one budget column of Table I.
type Table1Row struct {
	Label          string
	Storage        core.Storage
	TotalBytes     float64
	TLBOverheadPct float64 // vs the 14.75 KB TLB estimate of §VI
}

// Table1 reproduces Table I: CHiRP's storage for a 1024-entry 8-way
// L2 TLB across counter-table budgets. The paper estimates the TLB
// itself at 118 bits/entry ≈ 14.75 KB.
func Table1(_ Options) (*Table1Result, error) {
	const tlbBytes = 1024 * 118 / 8
	res := &Table1Result{}
	for _, tc := range []struct {
		label   string
		entries int
	}{
		{"small (512 counters, 128B)", 512},
		{"1KB table (paper main)", 4096},
		{"8KB table (paper large)", 32768},
	} {
		cfg := core.DefaultConfig()
		cfg.TableEntries = tc.entries
		s := core.StorageFor(cfg, 1024)
		res.Configs = append(res.Configs, Table1Row{
			Label:          tc.label,
			Storage:        s,
			TotalBytes:     s.TotalBytes(),
			TLBOverheadPct: s.TotalBytes() / tlbBytes * 100,
		})
	}
	return res, nil
}

// Write renders the budget table.
func (r *Table1Result) Write(w io.Writer) error {
	fmt.Fprintln(w, "Table I — CHiRP storage for a 1024-entry, 8-way, 4KB-page L2 TLB")
	rows := make([][]string, 0, len(r.Configs))
	for _, c := range r.Configs {
		rows = append(rows, []string{
			c.Label,
			fmt.Sprintf("%dB", c.Storage.PredictionBits/8),
			fmt.Sprintf("%dB", c.Storage.SignatureBits/8),
			fmt.Sprintf("%dB", c.Storage.HistoryBits/8),
			fmt.Sprintf("%dB", c.Storage.CounterBits/8),
			fmt.Sprintf("%.2fKB", c.TotalBytes/1024),
			fmt.Sprintf("%.1f%%", c.TLBOverheadPct),
		})
	}
	if err := stats.Table(w, []string{"config", "pred bits", "signatures", "histories", "counters", "total", "of TLB"}, rows); err != nil {
		return err
	}
	fmt.Fprintln(w, "(paper Table I totals: 2.65KB small to 8.14KB large)")
	return nil
}

// Table2 writes the Table II machine parameters as configured.
func Table2(o Options, w io.Writer) error {
	cfg := pipeline.DefaultConfig(o.Instructions, o.WalkPenalty)
	rows := [][]string{
		{"L1 i-Cache", fmt.Sprintf("%dKB, %d way, %d cycles", cfg.Mem.L1I.SizeBytes>>10, cfg.Mem.L1I.Ways, cfg.Mem.L1I.LatencyCycles)},
		{"L1 d-Cache", fmt.Sprintf("%dKB, %d way, %d cycles", cfg.Mem.L1D.SizeBytes>>10, cfg.Mem.L1D.Ways, cfg.Mem.L1D.LatencyCycles)},
		{"L2 Unified Cache", fmt.Sprintf("%dKB, %d way, %d cycles", cfg.Mem.L2.SizeBytes>>10, cfg.Mem.L2.Ways, cfg.Mem.L2.LatencyCycles)},
		{"L3 Unified Cache", fmt.Sprintf("%dMB, %d way, %d cycles", cfg.Mem.L3.SizeBytes>>20, cfg.Mem.L3.Ways, cfg.Mem.L3.LatencyCycles)},
		{"DRAM", fmt.Sprintf("%d cycles", cfg.Mem.DRAMLatency)},
		{"Branch Predictor", "hashed perceptron, 4K-entry BTB, 20-cycle miss penalty"},
		{"L1 i-TLB", fmt.Sprintf("%d entry, %d way", cfg.L1ITLB.Entries, cfg.L1ITLB.Ways)},
		{"L1 d-TLB", fmt.Sprintf("%d entry, %d way", cfg.L1DTLB.Entries, cfg.L1DTLB.Ways)},
		{"L2 Unified TLB", fmt.Sprintf("%d entries, %d way, %d cycle hit, %d cycle miss penalty",
			cfg.L2TLB.Entries, cfg.L2TLB.Ways, cfg.L2TLBHitLatency, cfg.WalkPenalty)},
	}
	fmt.Fprintln(w, "Table II — simulation parameters")
	return stats.Table(w, []string{"component", "parameter"}, rows)
}

// WalkerResult compares the fixed-penalty walk model with the radix
// walker + PSC substrate (extension X2).
type WalkerResult struct {
	FixedIPC      float64
	RadixIPC      float64
	RadixAvgWalk  float64
	RadixPSCShare float64
}

// Walker runs one pressure workload under LRU with both walk models.
func Walker(o Options) (*WalkerResult, error) {
	ws := o.suite()
	if len(ws) == 0 {
		return nil, fmt.Errorf("experiments: empty suite")
	}
	w := ws[0]
	res := &WalkerResult{}

	fixed := o.timingCfg(o.WalkPenalty)
	m, err := pipeline.New(fixed, mustFactory("lru")(), mustFactory("lru"))
	if err != nil {
		return nil, err
	}
	fr, err := m.Run(trace.NewLimit(w.Source(), o.Instructions))
	if err != nil {
		return nil, err
	}
	res.FixedIPC = fr.IPC

	radix := o.timingCfg(o.WalkPenalty)
	radix.UseRadixWalker = true
	radix.PSC = paging.PSCConfig{EntriesPerLevel: 32}
	m2, err := pipeline.New(radix, mustFactory("lru")(), mustFactory("lru"))
	if err != nil {
		return nil, err
	}
	rr, err := m2.Run(trace.NewLimit(w.Source(), o.Instructions))
	if err != nil {
		return nil, err
	}
	res.RadixIPC = rr.IPC
	res.RadixAvgWalk = rr.AvgWalkCycles
	return res, nil
}

// Write renders the comparison.
func (r *WalkerResult) Write(w io.Writer) error {
	fmt.Fprintln(w, "Extension X2 — fixed-penalty vs radix walker with PSCs")
	fmt.Fprintf(w, "fixed-penalty IPC: %.4f\n", r.FixedIPC)
	fmt.Fprintf(w, "radix walker IPC:  %.4f (avg walk %.1f cycles)\n", r.RadixIPC, r.RadixAvgWalk)
	return nil
}

// MixedRow is one workload's mixed-page-size comparison.
type MixedRow struct {
	Workload string
	LRU      mixed.Result
	CHiRP    mixed.Result
}

// MixedResult is the extension X4 data: replacement with mixed page
// sizes (the paper's §VIII future work).
type MixedResult struct {
	Rows []MixedRow
	// MeanReductionPct is cost-aware CHiRP's mean MPKI reduction vs
	// mixed-size LRU.
	MeanReductionPct float64
	// ReachSavedPct is the mean reduction in reach-weighted live
	// evictions.
	ReachSavedPct float64
}

// Mixed runs the mixed-page-size study over workloads that have
// 2 MB-backed regions.
func Mixed(o Options) (*MixedResult, error) {
	n := o.Workloads
	if n <= 0 || n > 64 {
		n = 64
	}
	rows, err := mixed.CompareOnSuite(n, o.Instructions, func() []mixed.Policy {
		ca, err := mixed.NewCostAware(core.DefaultConfig())
		if err != nil {
			panic(err)
		}
		return []mixed.Policy{mixed.NewLRU(), ca}
	})
	if err != nil {
		return nil, err
	}
	res := &MixedResult{}
	var redSum, reachSum float64
	var counted int
	for i, row := range rows {
		mr := MixedRow{Workload: fmt.Sprintf("mixed-%02d", i), LRU: row[0], CHiRP: row[1]}
		res.Rows = append(res.Rows, mr)
		if row[0].MPKI > 0 {
			redSum += stats.Reduction(row[0].MPKI, row[1].MPKI)
			counted++
		}
		if row[0].ReachLostPerKI > 0 {
			reachSum += stats.Reduction(row[0].ReachLostPerKI, row[1].ReachLostPerKI)
		}
	}
	if counted > 0 {
		res.MeanReductionPct = redSum / float64(counted)
		res.ReachSavedPct = reachSum / float64(counted)
	}
	return res, nil
}

// Write renders the mixed-size comparison.
func (r *MixedResult) Write(w io.Writer) error {
	fmt.Fprintln(w, "Extension X4 — mixed 4KB/2MB page sizes (§VIII future work)")
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Workload,
			fmt.Sprintf("%.1f%%", row.LRU.HugeShare*100),
			fmt.Sprintf("%.3f", row.LRU.MPKI),
			fmt.Sprintf("%.3f", row.CHiRP.MPKI),
			fmt.Sprintf("%+.1f%%", stats.Reduction(row.LRU.MPKI, row.CHiRP.MPKI)),
			fmt.Sprintf("%.1f", row.LRU.ReachLostPerKI),
			fmt.Sprintf("%.1f", row.CHiRP.ReachLostPerKI),
		})
	}
	if err := stats.Table(w, []string{"workload", "2M share", "LRU MPKI", "CHiRP MPKI", "Δ", "LRU reach-lost/KI", "CHiRP"}, rows); err != nil {
		return err
	}
	fmt.Fprintf(w, "mean MPKI reduction %+.2f%%, mean reach-weighted saving %+.2f%%\n",
		r.MeanReductionPct, r.ReachSavedPct)
	return nil
}

// ConsolidatedResult is the extension X5 data: consolidated
// (multi-address-space) execution with ASID-tagged TLBs.
type ConsolidatedResult struct {
	Degrees []ConsolidatedDegree
}

// ConsolidatedDegree is one consolidation level.
type ConsolidatedDegree struct {
	Workloads    int
	LRUMPKI      float64
	CHiRPMPKI    float64
	ReductionPct float64
	// FlushMPKI is LRU with full flushes at every context switch
	// (hardware without ASIDs) — the cost ASID tagging avoids.
	FlushMPKI float64
}

// Consolidated measures CHiRP vs LRU when 2, 4 and 8 workloads
// time-share the core with ASID-tagged TLBs (extension X5). The §I
// motivation — consolidated servers pressuring TLBs — becomes
// directly measurable: consolidation multiplies the live working set
// while the L2 TLB stays 1024 entries.
func Consolidated(o Options) (*ConsolidatedResult, error) {
	res := &ConsolidatedResult{}
	ws := o.suite()
	for _, degree := range []int{2, 4, 8} {
		if len(ws) < degree {
			break
		}
		group := ws[:degree]
		cfg := sim.DefaultConsolidatedConfig(o.Instructions)

		lruRes, err := sim.RunConsolidated(group, mustFactory("lru")(), cfg)
		if err != nil {
			return nil, err
		}
		chirpRes, err := sim.RunConsolidated(group, mustFactory("chirp")(), cfg)
		if err != nil {
			return nil, err
		}
		flushCfg := cfg
		flushCfg.FlushOnSwitch = true
		flushRes, err := sim.RunConsolidated(group, mustFactory("lru")(), flushCfg)
		if err != nil {
			return nil, err
		}
		res.Degrees = append(res.Degrees, ConsolidatedDegree{
			Workloads:    degree,
			LRUMPKI:      lruRes.MPKI,
			CHiRPMPKI:    chirpRes.MPKI,
			ReductionPct: stats.Reduction(lruRes.MPKI, chirpRes.MPKI),
			FlushMPKI:    flushRes.MPKI,
		})
	}
	return res, nil
}

// Write renders the consolidation study.
func (r *ConsolidatedResult) Write(w io.Writer) error {
	fmt.Fprintln(w, "Extension X5 — consolidated workloads (ASID-tagged TLBs)")
	rows := make([][]string, 0, len(r.Degrees))
	for _, d := range r.Degrees {
		rows = append(rows, []string{
			fmt.Sprintf("%d-way", d.Workloads),
			fmt.Sprintf("%.3f", d.LRUMPKI),
			fmt.Sprintf("%.3f", d.CHiRPMPKI),
			fmt.Sprintf("%+.2f%%", d.ReductionPct),
			fmt.Sprintf("%.3f", d.FlushMPKI),
		})
	}
	if err := stats.Table(w, []string{"consolidation", "LRU MPKI", "CHiRP MPKI", "Δ", "LRU+flush MPKI"}, rows); err != nil {
		return err
	}
	fmt.Fprintln(w, "(flush column: hardware without ASIDs pays full shootdowns per switch)")
	return nil
}

// PrefetchResult is the extension X6 data: sequential TLB prefetching
// composed with replacement.
type PrefetchResult struct {
	Rows []PrefetchRow
}

// PrefetchRow is one (policy, distance) cell.
type PrefetchRow struct {
	Policy   string
	Distance int
	MeanMPKI float64
}

// Prefetch measures sequential next-page prefetching ([44], [45])
// composed with LRU and CHiRP: replacement gains and prefetch gains
// are largely orthogonal, which is the paper's §II positioning.
func Prefetch(o Options) (*PrefetchResult, error) {
	// The captured stream is prefetch-distance-invariant (the replay
	// runs its own prefetcher), so all six (policy, distance) suite
	// passes share one capture per workload.
	o, done := o.withCache()
	defer done()
	ws := o.suite()
	res := &PrefetchResult{}
	for _, name := range []string{"lru", "chirp"} {
		for _, dist := range []int{0, 1, 4} {
			cfg := o.tlbCfg()
			cfg.PrefetchDistance = dist
			pols, err := sim.Factories([]string{name})
			if err != nil {
				return nil, err
			}
			rs, err := sim.RunSuiteTLBOnlyCtx(o.ctx(), ws, pols, cfg, o.suiteOpts(fmt.Sprintf("prefetch/d=%d", dist)))
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, PrefetchRow{
				Policy:   name,
				Distance: dist,
				MeanMPKI: stats.Mean(collect(rs, func(r sim.SuiteResult) float64 { return r.MPKI })),
			})
		}
	}
	return res, nil
}

// Write renders the prefetch × replacement matrix.
func (r *PrefetchResult) Write(w io.Writer) error {
	fmt.Fprintln(w, "Extension X6 — sequential TLB prefetching × replacement policy")
	rows := make([][]string, 0, len(r.Rows))
	var base float64
	for i, row := range r.Rows {
		if i == 0 {
			base = row.MeanMPKI
		}
		rows = append(rows, []string{
			row.Policy,
			fmt.Sprintf("%d", row.Distance),
			fmt.Sprintf("%.3f", row.MeanMPKI),
			fmt.Sprintf("%+.2f%%", stats.Reduction(base, row.MeanMPKI)),
		})
	}
	if err := stats.Table(w, []string{"policy", "prefetch distance", "mean MPKI", "vs LRU/no-prefetch"}, rows); err != nil {
		return err
	}
	fmt.Fprintln(w, "(stride prefetching hides this suite's sequential misses — streams and")
	fmt.Fprintln(w, " sweeps — while replacement targets capacity misses among live entries;")
	fmt.Fprintln(w, " the best configuration combines both, supporting the paper's position")
	fmt.Fprintln(w, " that replacement is orthogonal to the prefetching literature of §II)")
	return nil
}
