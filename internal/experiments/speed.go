package experiments

import (
	"fmt"
	"io"

	"github.com/chirplab/chirp/internal/core"
	"github.com/chirplab/chirp/internal/pipeline"
	"github.com/chirplab/chirp/internal/sim"
	"github.com/chirplab/chirp/internal/stats"
)

// timingCfg builds the pipeline configuration for an Options value.
func (o Options) timingCfg(penalty uint64) pipeline.Config {
	return pipeline.DefaultConfig(o.Instructions, penalty)
}

// speedups runs the timing suite for the named policies and returns,
// per policy, the per-workload IPC ratios versus LRU (LRU must be in
// the list).
func speedups(o Options, scope string, policyNames []string, penalty uint64) (map[string][]float64, []string, error) {
	ws := o.suite()
	pols, err := sim.Factories(policyNames)
	if err != nil {
		return nil, nil, err
	}
	results, err := sim.RunSuiteTimingCtx(o.ctx(), ws, pols, o.timingCfg(penalty), o.suiteOpts(scope))
	if err != nil {
		return nil, nil, err
	}
	ipc := map[string]map[string]float64{} // policy → workload → IPC
	for _, r := range results {
		if ipc[r.Policy] == nil {
			ipc[r.Policy] = map[string]float64{}
		}
		ipc[r.Policy][r.Workload] = r.IPC
	}
	names := make([]string, len(ws))
	for i, w := range ws {
		names[i] = w.Name
	}
	out := map[string][]float64{}
	for _, p := range policyNames {
		ratios := make([]float64, len(names))
		for i, wn := range names {
			base := ipc["lru"][wn]
			if base > 0 {
				ratios[i] = ipc[p][wn] / base
			}
		}
		out[p] = ratios
	}
	return out, names, nil
}

// Fig8Result is the Figure 8 data: per-workload speedup over LRU at a
// 150-cycle walk penalty, with geometric means (§VI-C).
type Fig8Result struct {
	Penalty uint64
	Curve   *stats.SCurve
	// GeoMeanPct maps policy to geometric-mean speedup in percent
	// (paper at 150 cycles: CHiRP 4.80, SRRIP 1.65, GHRP 0.94, Random
	// 0.42, SHiP 0.13).
	GeoMeanPct map[string]float64
	// CHiRPCILo/Hi bound CHiRP's geomean speedup (95% bootstrap CI,
	// percent) — the §VI-G statistical-significance check.
	CHiRPCILo, CHiRPCIHi float64
	Order                []string
}

// Fig8 reproduces Figure 8 (speedup for the suite at WalkPenalty).
func Fig8(o Options) (*Fig8Result, error) {
	ratios, names, err := speedups(o, "fig8", sim.PaperPolicies, o.WalkPenalty)
	if err != nil {
		return nil, err
	}
	res := &Fig8Result{
		Penalty:    o.WalkPenalty,
		Curve:      &stats.SCurve{Labels: names, Series: ratios, Order: "chirp"},
		GeoMeanPct: map[string]float64{},
		Order:      sim.PaperPolicies,
	}
	for p, rs := range ratios {
		res.GeoMeanPct[p] = (stats.GeoMean(rs) - 1) * 100
	}
	lo, hi := stats.BootstrapCI(ratios["chirp"], 1000, 0.95, 42)
	res.CHiRPCILo, res.CHiRPCIHi = (lo-1)*100, (hi-1)*100
	return res, nil
}

// Write renders the geomean table and the speedup CSV.
func (r *Fig8Result) Write(w io.Writer) error {
	fmt.Fprintf(w, "Figure 8 — speedup over LRU at %d-cycle walk penalty\n", r.Penalty)
	rows := make([][]string, 0, len(r.Order))
	for _, p := range r.Order {
		rows = append(rows, []string{p, fmt.Sprintf("%+.2f%%", r.GeoMeanPct[p])})
	}
	if err := stats.Table(w, []string{"policy", "geomean speedup"}, rows); err != nil {
		return err
	}
	fmt.Fprintf(w, "CHiRP 95%% bootstrap CI: [%+.2f%%, %+.2f%%] (§VI-G significance check)\n\n",
		r.CHiRPCILo, r.CHiRPCIHi)
	return r.Curve.WriteCSV(w, r.Order)
}

// Fig10Point is one penalty measurement.
type Fig10Point struct {
	Penalty    uint64
	GeoMeanPct map[string]float64
}

// Fig10Result is the penalty sweep.
type Fig10Result struct {
	Points []Fig10Point
	Order  []string
}

// Fig10 reproduces Figure 10: average speedup for L2 TLB miss
// penalties from 20 to 340 cycles. The paper's observation: at higher
// latencies predictive policies' advantage grows; CHiRP exceeds 10%
// above ~320 cycles.
func Fig10(o Options) (*Fig10Result, error) {
	res := &Fig10Result{Order: sim.PaperPolicies}
	for _, penalty := range []uint64{20, 60, 100, 150, 200, 260, 320, 340} {
		ratios, _, err := speedups(o, fmt.Sprintf("fig10/penalty=%d", penalty), sim.PaperPolicies, penalty)
		if err != nil {
			return nil, err
		}
		pt := Fig10Point{Penalty: penalty, GeoMeanPct: map[string]float64{}}
		for p, rs := range ratios {
			pt.GeoMeanPct[p] = (stats.GeoMean(rs) - 1) * 100
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Write renders the sweep, one row per penalty, plus a chart of the
// CHiRP/SRRIP/LRU curves.
func (r *Fig10Result) Write(w io.Writer) error {
	fmt.Fprintln(w, "Figure 10 — geomean speedup vs L2 TLB miss penalty")
	header := append([]string{"penalty"}, r.Order...)
	rows := make([][]string, 0, len(r.Points))
	for _, pt := range r.Points {
		row := []string{fmt.Sprintf("%d", pt.Penalty)}
		for _, p := range r.Order {
			row = append(row, fmt.Sprintf("%+.2f%%", pt.GeoMeanPct[p]))
		}
		rows = append(rows, row)
	}
	if err := stats.Table(w, header, rows); err != nil {
		return err
	}
	chart := &stats.LineChart{Series: map[rune][]float64{}}
	for _, pt := range r.Points {
		chart.XLabels = append(chart.XLabels, fmt.Sprintf("%d", pt.Penalty))
		chart.Series['C'] = append(chart.Series['C'], pt.GeoMeanPct["chirp"])
		chart.Series['s'] = append(chart.Series['s'], pt.GeoMeanPct["srrip"])
		chart.Series['g'] = append(chart.Series['g'], pt.GeoMeanPct["ghrp"])
	}
	fmt.Fprintln(w, "\nspeedup %% vs penalty (C=chirp, s=srrip, g=ghrp):")
	return chart.Render(w)
}

// Fig2Point is one history-length measurement.
type Fig2Point struct {
	Length int
	// PathOnlyPct is the geomean speedup of a path-history-only
	// signature of that length.
	PathOnlyPct float64
	// CombinedPct is full CHiRP with that path-history length.
	CombinedPct float64
}

// Fig2Result is the history-length study.
type Fig2Result struct {
	Points []Fig2Point
}

// Fig2 reproduces Figure 2 (§III Observation 3): speedup versus global
// PC history length. A PC-history-only signature stops improving
// around length 15; combining branch histories lets CHiRP exploit
// effective lengths beyond 30.
func Fig2(o Options) (*Fig2Result, error) {
	res := &Fig2Result{}
	for _, length := range []int{4, 8, 12, 16, 24, 32, 40} {
		pathOnly := core.DefaultConfig()
		pathOnly.History.PathLength = length
		pathOnly.UseCondHistory = false
		pathOnly.UseIndirectHistory = false

		combined := core.DefaultConfig()
		combined.History.PathLength = length

		ws := o.suite()
		cfgT := o.timingCfg(o.WalkPenalty)
		pols := []sim.NamedFactory{
			{Name: "lru", New: mustFactory("lru")},
			{Name: "path-only", New: sim.CHiRPFactory(pathOnly)},
			{Name: "combined", New: sim.CHiRPFactory(combined)},
		}
		results, err := sim.RunSuiteTimingCtx(o.ctx(), ws, pols, cfgT, o.suiteOpts(fmt.Sprintf("fig2/len=%d", length)))
		if err != nil {
			return nil, err
		}
		ipc := map[string]map[string]float64{}
		for _, r := range results {
			if ipc[r.Policy] == nil {
				ipc[r.Policy] = map[string]float64{}
			}
			ipc[r.Policy][r.Workload] = r.IPC
		}
		ratio := func(p string) float64 {
			var rs []float64
			for wn, base := range ipc["lru"] {
				if base > 0 {
					rs = append(rs, ipc[p][wn]/base)
				}
			}
			return (stats.GeoMean(rs) - 1) * 100
		}
		res.Points = append(res.Points, Fig2Point{
			Length:      length,
			PathOnlyPct: ratio("path-only"),
			CombinedPct: ratio("combined"),
		})
	}
	return res, nil
}

// Write renders the two curves.
func (r *Fig2Result) Write(w io.Writer) error {
	fmt.Fprintln(w, "Figure 2 — speedup vs global PC history length")
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Length),
			fmt.Sprintf("%+.2f%%", p.PathOnlyPct),
			fmt.Sprintf("%+.2f%%", p.CombinedPct),
		})
	}
	if err := stats.Table(w, []string{"history length", "PC history only", "CHiRP (with branch history)"}, rows); err != nil {
		return err
	}
	chart := &stats.LineChart{Series: map[rune][]float64{}}
	for _, p := range r.Points {
		chart.XLabels = append(chart.XLabels, fmt.Sprintf("%d", p.Length))
		chart.Series['p'] = append(chart.Series['p'], p.PathOnlyPct)
		chart.Series['C'] = append(chart.Series['C'], p.CombinedPct)
	}
	fmt.Fprintln(w, "\nspeedup %% vs history length (p=PC-only, C=combined):")
	if err := chart.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "(paper: PC-only plateaus near length 15; the combined signature keeps gaining past 30)")
	return nil
}

func mustFactory(name string) sim.PolicyFactory {
	fs, err := sim.Factories([]string{name})
	if err != nil {
		panic(err)
	}
	return fs[0].New
}
