package experiments

import (
	"bytes"
	"strings"
	"testing"

	"github.com/chirplab/chirp/internal/stats"
)

func TestConsolidated(t *testing.T) {
	o := tiny()
	o.Instructions = 400_000
	r, err := Consolidated(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Degrees) != 3 {
		t.Fatalf("degrees = %d, want 3 (2/4/8-way)", len(r.Degrees))
	}
	for _, d := range r.Degrees {
		if d.LRUMPKI <= 0 || d.CHiRPMPKI <= 0 {
			t.Errorf("%d-way: empty MPKIs %+v", d.Workloads, d)
		}
		if d.FlushMPKI < d.LRUMPKI {
			t.Errorf("%d-way: flush MPKI %.3f below ASID MPKI %.3f", d.Workloads, d.FlushMPKI, d.LRUMPKI)
		}
	}
	var sb bytes.Buffer
	if err := r.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "2-way") {
		t.Error("report missing 2-way row")
	}
}

func TestPrefetch(t *testing.T) {
	r, err := Prefetch(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 (2 policies × 3 distances)", len(r.Rows))
	}
	// Distance-0 rows must match the plain policies' behaviour: LRU
	// first, positive MPKIs everywhere.
	if r.Rows[0].Policy != "lru" || r.Rows[0].Distance != 0 {
		t.Errorf("first row = %+v", r.Rows[0])
	}
	for _, row := range r.Rows {
		if row.MeanMPKI < 0 {
			t.Errorf("negative MPKI: %+v", row)
		}
	}
	// Prefetching must help LRU on this suite (sequential-heavy).
	if r.Rows[2].MeanMPKI >= r.Rows[0].MeanMPKI {
		t.Errorf("prefetch d=4 (%.3f) did not beat no-prefetch (%.3f)", r.Rows[2].MeanMPKI, r.Rows[0].MeanMPKI)
	}
	var sb bytes.Buffer
	if err := r.Write(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestMixedExperiment(t *testing.T) {
	o := tiny()
	o.Workloads = 3
	r, err := Mixed(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("no mixed-page workloads found")
	}
	for _, row := range r.Rows {
		if row.LRU.Stats.Accesses == 0 || row.CHiRP.Stats.Accesses == 0 {
			t.Errorf("empty mixed run: %+v", row)
		}
	}
	var sb bytes.Buffer
	if err := r.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "2M share") {
		t.Error("report missing 2M share column")
	}
}

func TestCategories(t *testing.T) {
	o := tiny()
	o.Workloads = 16 // two per category
	r, err := Categories(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Categories) != 8 {
		t.Fatalf("categories = %d, want 8", len(r.Categories))
	}
	for _, row := range r.Categories {
		if row.Count != 2 {
			t.Errorf("%s count = %d, want 2", row.Category, row.Count)
		}
		if row.ReductionPct["lru"] != 0 {
			t.Errorf("%s LRU self-reduction = %v", row.Category, row.ReductionPct["lru"])
		}
	}
	var sb bytes.Buffer
	if err := r.Write(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestFig2WriteRenders(t *testing.T) {
	r := &Fig2Result{Points: []Fig2Point{
		{Length: 4, PathOnlyPct: 1.0, CombinedPct: 1.2},
		{Length: 16, PathOnlyPct: 2.0, CombinedPct: 2.5},
	}}
	var sb bytes.Buffer
	if err := r.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "history length") {
		t.Error("fig2 report malformed")
	}
}

func TestFig10WriteRenders(t *testing.T) {
	r := &Fig10Result{
		Order: []string{"lru", "srrip", "ghrp", "chirp"},
		Points: []Fig10Point{
			{Penalty: 20, GeoMeanPct: map[string]float64{"lru": 0, "srrip": 0.2, "ghrp": 0.5, "chirp": 0.7}},
			{Penalty: 340, GeoMeanPct: map[string]float64{"lru": 0, "srrip": 1.8, "ghrp": 5.3, "chirp": 7.0}},
		},
	}
	var sb bytes.Buffer
	if err := r.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "340") {
		t.Error("fig10 report missing penalty row")
	}
}

func TestFig8WriteIncludesCI(t *testing.T) {
	r := &Fig8Result{
		Penalty: 150,
		Curve: &stats.SCurve{
			Labels: []string{"w0"},
			Series: map[string][]float64{"lru": {1}},
			Order:  "lru",
		},
		Order:      []string{"lru"},
		GeoMeanPct: map[string]float64{"lru": 0},
		CHiRPCILo:  3.8, CHiRPCIHi: 4.8,
	}
	var sb bytes.Buffer
	if err := r.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "bootstrap CI") {
		t.Error("fig8 report missing CI line")
	}
}
