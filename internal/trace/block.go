package trace

// BlockSource is the batched counterpart of Source: NextBlock fills a
// caller-provided slice with up to len(buf) records and returns how
// many were produced (0 once the stream is exhausted). Hot consumers —
// the L2-stream capture path, CountInstructions — read through this
// interface to amortise the per-record dynamic-dispatch cost that
// dominates the generator side of a simulation; sources with cheap
// internal batching (the workload Generator, SliceSource, Limit)
// implement it natively.
type BlockSource interface {
	// NextBlock fills buf with the next records and returns the count.
	// A return of 0 means the stream is exhausted (and, like
	// Source.Next, it keeps returning 0 until Reset).
	NextBlock(buf []Record) int
	// Reset restarts the stream from the beginning.
	Reset()
}

// DefaultBlockSize is the batch size the package's own block consumers
// use: large enough to amortise interface calls, small enough that a
// block of Records stays cache- and stack-friendly.
const DefaultBlockSize = 512

// Blocks adapts src to batched reads. Sources that already implement
// BlockSource are returned as-is; otherwise the adapter loops
// src.Next, which preserves semantics but not the batching win.
func Blocks(src Source) BlockSource {
	if bs, ok := src.(BlockSource); ok {
		return bs
	}
	return &blockAdapter{src: src}
}

type blockAdapter struct{ src Source }

func (b *blockAdapter) NextBlock(buf []Record) int {
	n := 0
	for n < len(buf) && b.src.Next(&buf[n]) {
		n++
	}
	return n
}

func (b *blockAdapter) Reset() { b.src.Reset() }

// Unblock adapts a BlockSource back to a record-at-a-time Source.
// BlockSources that already implement Source are returned as-is;
// otherwise records are staged through an internal block buffer.
func Unblock(bs BlockSource) Source {
	if src, ok := bs.(Source); ok {
		return src
	}
	return &blockReader{bs: bs, buf: make([]Record, DefaultBlockSize)}
}

type blockReader struct {
	bs     BlockSource
	buf    []Record
	pos, n int
}

func (r *blockReader) Next(rec *Record) bool {
	if r.pos >= r.n {
		r.n = r.bs.NextBlock(r.buf)
		r.pos = 0
		if r.n == 0 {
			return false
		}
	}
	*rec = r.buf[r.pos]
	r.pos++
	return true
}

func (r *blockReader) Reset() {
	r.bs.Reset()
	r.pos, r.n = 0, 0
}

// NextBlock implements BlockSource natively: records are copied out of
// the slice in one step.
func (s *SliceSource) NextBlock(buf []Record) int {
	n := copy(buf, s.Records[s.pos:])
	s.pos += n
	return n
}

// NextBlock implements BlockSource. It reads a block from the
// underlying source (batched when the source supports it) and applies
// the same budget clamp as Next; records drawn beyond the budget
// within the final block are discarded, which only matters for callers
// that keep reading the underlying source past the limit.
func (l *Limit) NextBlock(buf []Record) int {
	if l.seen >= l.Max {
		return 0
	}
	if l.blocks == nil {
		l.blocks = Blocks(l.Src)
	}
	n := l.blocks.NextBlock(buf)
	for i := 0; i < n; i++ {
		ins := buf[i].Instructions()
		if l.seen+ins >= l.Max {
			if l.seen+ins > l.Max {
				buf[i].Skip = uint32(l.Max - l.seen - 1)
			}
			l.seen = l.Max
			return i + 1
		}
		l.seen += ins
	}
	return n
}
