package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text trace format: a line-oriented import/export format so users can
// feed externally captured traces (e.g. converted CVP-1 or Pin logs)
// into the simulators without writing Go. One record per line:
//
//	pc class [ea|taken target] [skip]
//
//	0x401000 alu 12
//	0x401004 load 0x7f32000 3
//	0x401008 cond-branch 1 0x401000 0
//	0x40100c uncond-indirect 1 0x402000
//
// Fields are whitespace-separated; integers accept 0x prefixes; class
// names match Class.String(). Lines starting with '#' and blank lines
// are ignored.

// ParseTextRecord parses one line of the text format.
func ParseTextRecord(line string) (Record, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Record{}, fmt.Errorf("trace: text record needs at least pc and class: %q", line)
	}
	pc, err := parseUint(fields[0])
	if err != nil {
		return Record{}, fmt.Errorf("trace: bad pc %q: %v", fields[0], err)
	}
	rec := Record{PC: pc}
	switch fields[1] {
	case "alu":
		rec.Class = ClassALU
	case "load":
		rec.Class = ClassLoad
	case "store":
		rec.Class = ClassStore
	case "cond-branch":
		rec.Class = ClassCondBranch
	case "uncond-direct":
		rec.Class = ClassUncondDirect
	case "uncond-indirect":
		rec.Class = ClassUncondIndirect
	default:
		return Record{}, fmt.Errorf("trace: unknown class %q", fields[1])
	}
	rest := fields[2:]
	switch {
	case rec.Class.IsMemory():
		if len(rest) < 1 {
			return Record{}, fmt.Errorf("trace: %s record needs an effective address: %q", rec.Class, line)
		}
		ea, err := parseUint(rest[0])
		if err != nil {
			return Record{}, fmt.Errorf("trace: bad ea %q: %v", rest[0], err)
		}
		rec.EA = ea
		rest = rest[1:]
	case rec.Class.IsBranch():
		if len(rest) < 2 {
			return Record{}, fmt.Errorf("trace: branch record needs taken and target: %q", line)
		}
		taken, err := strconv.ParseBool(rest[0])
		if err != nil {
			return Record{}, fmt.Errorf("trace: bad taken flag %q: %v", rest[0], err)
		}
		target, err := parseUint(rest[1])
		if err != nil {
			return Record{}, fmt.Errorf("trace: bad target %q: %v", rest[1], err)
		}
		rec.Taken, rec.Target = taken, target
		rest = rest[2:]
	}
	if len(rest) > 0 {
		skip, err := parseUint(rest[0])
		if err != nil {
			return Record{}, fmt.Errorf("trace: bad skip %q: %v", rest[0], err)
		}
		rec.Skip = uint32(skip)
	}
	return rec, nil
}

func parseUint(s string) (uint64, error) {
	return strconv.ParseUint(strings.TrimPrefix(s, "0x"), base(s), 64)
}

func base(s string) int {
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		return 16
	}
	return 10
}

// TextReader streams records from the text format. It implements
// Source for a single pass.
type TextReader struct {
	sc   *bufio.Scanner
	line int
	err  error
}

// NewTextReader wraps r.
func NewTextReader(r io.Reader) *TextReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 64<<10)
	return &TextReader{sc: sc}
}

// Next implements Source.
func (t *TextReader) Next(rec *Record) bool {
	if t.err != nil {
		return false
	}
	for t.sc.Scan() {
		t.line++
		line := strings.TrimSpace(t.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		r, err := ParseTextRecord(line)
		if err != nil {
			t.err = fmt.Errorf("line %d: %w", t.line, err)
			return false
		}
		*rec = r
		return true
	}
	t.err = t.sc.Err()
	return false
}

// Reset implements Source but always panics: wrap the input in a
// SliceSource (via Collect) for resettable replay.
func (t *TextReader) Reset() { panic("trace: TextReader cannot Reset; Collect it first") }

// Err returns the first parse or IO error.
func (t *TextReader) Err() error { return t.err }

// WriteText emits src in the text format.
func WriteText(w io.Writer, src Source) error {
	bw := bufio.NewWriter(w)
	var rec Record
	for src.Next(&rec) {
		var line string
		switch {
		case rec.Class.IsMemory():
			line = fmt.Sprintf("0x%x %s 0x%x %d", rec.PC, rec.Class, rec.EA, rec.Skip)
		case rec.Class.IsBranch():
			t := 0
			if rec.Taken {
				t = 1
			}
			line = fmt.Sprintf("0x%x %s %d 0x%x %d", rec.PC, rec.Class, t, rec.Target, rec.Skip)
		default:
			line = fmt.Sprintf("0x%x %s %d", rec.PC, rec.Class, rec.Skip)
		}
		if _, err := fmt.Fprintln(bw, line); err != nil {
			return err
		}
	}
	return bw.Flush()
}
