package trace

import "testing"

// scriptedRecords builds a deterministic record sequence for the
// adapter tests.
func scriptedRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{PC: uint64(i) * 4, Skip: uint32(i % 7), Class: ClassLoad, EA: uint64(i) << 12}
	}
	return recs
}

func TestBlocksMatchesNext(t *testing.T) {
	recs := scriptedRecords(1000)
	// Odd block size so block boundaries never align with the stream.
	bs := Blocks(NewSliceSource(recs))
	buf := make([]Record, 33)
	var got []Record
	for {
		n := bs.NextBlock(buf)
		if n == 0 {
			break
		}
		got = append(got, buf[:n]...)
	}
	if len(got) != len(recs) {
		t.Fatalf("block read returned %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d diverged: %+v vs %+v", i, got[i], recs[i])
		}
	}
}

func TestBlocksAdaptsPlainSource(t *testing.T) {
	recs := scriptedRecords(100)
	// Hide the SliceSource behind a plain Source so Blocks must wrap it.
	var plain Source = &onlySource{src: NewSliceSource(recs)}
	bs := Blocks(plain)
	if _, native := plain.(BlockSource); native {
		t.Fatal("test premise broken: plain source implements BlockSource")
	}
	buf := make([]Record, 16)
	total := 0
	for {
		n := bs.NextBlock(buf)
		if n == 0 {
			break
		}
		total += n
	}
	if total != len(recs) {
		t.Errorf("adapter produced %d records, want %d", total, len(recs))
	}
	bs.Reset()
	if n := bs.NextBlock(buf); n != 16 {
		t.Errorf("after Reset NextBlock = %d, want 16", n)
	}
}

// onlySource strips any extra interfaces off a Source.
type onlySource struct{ src Source }

func (o *onlySource) Next(rec *Record) bool { return o.src.Next(rec) }
func (o *onlySource) Reset()                { o.src.Reset() }

func TestUnblockRoundTrip(t *testing.T) {
	recs := scriptedRecords(257) // not a multiple of any block size
	src := Unblock(&blockAdapter{src: &onlySource{src: NewSliceSource(recs)}})
	got := Collect(src)
	if len(got) != len(recs) {
		t.Fatalf("round trip returned %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d diverged after round trip", i)
		}
	}
	src.Reset()
	var rec Record
	if !src.Next(&rec) || rec != recs[0] {
		t.Error("Reset must restart the round-tripped stream")
	}
}

func TestLimitNextBlockClampsBudget(t *testing.T) {
	recs := make([]Record, 100)
	for i := range recs {
		recs[i] = Record{PC: uint64(i), Skip: 9} // 10 instructions each
	}
	lim := NewLimit(NewSliceSource(recs), 55)
	buf := make([]Record, 8)
	var instrs, records uint64
	for {
		n := lim.NextBlock(buf)
		if n == 0 {
			break
		}
		for i := 0; i < n; i++ {
			records++
			instrs += buf[i].Instructions()
		}
	}
	if records != 6 || instrs != 55 {
		t.Errorf("block-read limit = (%d instrs, %d records), want (55, 6)", instrs, records)
	}
	// Block and record reads must agree exactly.
	lim.Reset()
	i2, r2 := CountInstructions(&onlySource{src: lim})
	if i2 != instrs || r2 != records {
		t.Errorf("record-at-a-time read = (%d, %d), want (%d, %d)", i2, r2, instrs, records)
	}
}

func TestLimitBlockMatchesNextExactly(t *testing.T) {
	recs := scriptedRecords(500)
	a := NewLimit(NewSliceSource(recs), 700)
	b := NewLimit(NewSliceSource(recs), 700)
	var viaNext []Record
	var rec Record
	for a.Next(&rec) {
		viaNext = append(viaNext, rec)
	}
	var viaBlock []Record
	buf := make([]Record, 13)
	for {
		n := b.NextBlock(buf)
		if n == 0 {
			break
		}
		viaBlock = append(viaBlock, buf[:n]...)
	}
	if len(viaNext) != len(viaBlock) {
		t.Fatalf("Next yielded %d records, NextBlock %d", len(viaNext), len(viaBlock))
	}
	for i := range viaNext {
		if viaNext[i] != viaBlock[i] {
			t.Fatalf("record %d diverged: %+v vs %+v", i, viaNext[i], viaBlock[i])
		}
	}
}
