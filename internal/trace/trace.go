// Package trace defines the instruction-trace model that drives the
// simulators: a compact per-instruction record, a streaming Source
// interface, a deterministic RNG, and a binary on-disk trace format.
//
// The model follows the shape of the CVP-1 championship traces the
// paper used: each record carries the committed instruction's PC, its
// class, the effective address for memory operations, and the outcome
// and target for branches. Runs of plain ALU instructions between
// interesting records are compressed into a Skip count.
package trace

import "fmt"

// Class identifies the kind of a traced instruction. The distinctions
// match exactly what the simulated structures need: loads and stores
// drive the data TLB and caches, conditional branches drive the
// direction predictor and CHiRP's conditional-branch history, and
// indirect unconditional branches drive the indirect predictor and
// CHiRP's indirect-branch history.
type Class uint8

const (
	// ClassALU is a non-memory, non-branch instruction.
	ClassALU Class = iota
	// ClassLoad is a memory read; EA holds the effective address.
	ClassLoad
	// ClassStore is a memory write; EA holds the effective address.
	ClassStore
	// ClassCondBranch is a conditional branch; Taken and Target are valid.
	ClassCondBranch
	// ClassUncondDirect is an unconditional direct branch, jump or call.
	ClassUncondDirect
	// ClassUncondIndirect is an unconditional indirect branch, call or
	// return; Target is the dynamic target.
	ClassUncondIndirect

	numClasses
)

// NumClasses is the count of distinct instruction classes.
const NumClasses = int(numClasses)

var classNames = [...]string{
	ClassALU:            "alu",
	ClassLoad:           "load",
	ClassStore:          "store",
	ClassCondBranch:     "cond-branch",
	ClassUncondDirect:   "uncond-direct",
	ClassUncondIndirect: "uncond-indirect",
}

// String returns the lower-case name of the class.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// IsBranch reports whether the class is any kind of branch.
func (c Class) IsBranch() bool {
	return c == ClassCondBranch || c == ClassUncondDirect || c == ClassUncondIndirect
}

// IsMemory reports whether the class accesses data memory.
func (c Class) IsMemory() bool { return c == ClassLoad || c == ClassStore }

// Record is one committed instruction (plus a compressed run of the
// plain ALU instructions that preceded it). A zero Record is a single
// ALU instruction at PC 0.
type Record struct {
	// PC is the virtual address of the instruction.
	PC uint64
	// EA is the effective virtual address for loads and stores.
	EA uint64
	// Target is the branch target for taken branches.
	Target uint64
	// Skip counts plain ALU instructions that executed (in straight-line
	// code ending at PC) since the previous record. They matter only for
	// instruction counting and fetch-page accounting.
	Skip uint32
	// Class is the instruction's kind.
	Class Class
	// Taken is the outcome of a conditional branch. It is true for
	// unconditional branches and meaningless otherwise.
	Taken bool
}

// Instructions returns the number of committed instructions the record
// represents, including its skipped ALU run.
func (r *Record) Instructions() uint64 { return uint64(r.Skip) + 1 }

// Source is a stream of trace records. Implementations must be
// deterministic: after Reset the exact same sequence is produced again.
type Source interface {
	// Next fills rec with the next record and reports whether one was
	// available. After Next returns false it keeps returning false until
	// Reset is called.
	Next(rec *Record) bool
	// Reset restarts the stream from the beginning.
	Reset()
}

// CountInstructions drains src and returns the total committed
// instruction count and record count. The source is left exhausted.
// Reads are batched through BlockSource, so counting pays one
// interface call per block instead of one per record.
func CountInstructions(src Source) (instructions, records uint64) {
	bs := Blocks(src)
	var buf [DefaultBlockSize]Record
	for {
		n := bs.NextBlock(buf[:])
		if n == 0 {
			return instructions, records
		}
		records += uint64(n)
		for i := 0; i < n; i++ {
			instructions += buf[i].Instructions()
		}
	}
}

// Limit wraps a Source and truncates it after max committed
// instructions. Reset propagates to the underlying source.
type Limit struct {
	Src Source
	Max uint64

	seen   uint64
	blocks BlockSource // lazy batched view of Src, for NextBlock
}

// NewLimit returns a Source that yields records from src until exactly
// max committed instructions have been produced: a record whose Skip
// run would straddle the budget has its Skip clamped so the stream
// never overshoots (the record's own PC event is always kept, so a
// clamped stream still ends on a real instruction).
func NewLimit(src Source, max uint64) *Limit { return &Limit{Src: src, Max: max} }

// Next implements Source.
func (l *Limit) Next(rec *Record) bool {
	if l.seen >= l.Max {
		return false
	}
	if !l.Src.Next(rec) {
		return false
	}
	if n := rec.Instructions(); l.seen+n > l.Max {
		rec.Skip = uint32(l.Max - l.seen - 1)
		l.seen = l.Max
	} else {
		l.seen += n
	}
	return true
}

// Reset implements Source.
func (l *Limit) Reset() {
	l.seen = 0
	l.Src.Reset()
}

// SliceSource replays a fixed slice of records; useful in tests and for
// materialised traces.
type SliceSource struct {
	Records []Record
	pos     int
}

// NewSliceSource returns a Source over recs.
func NewSliceSource(recs []Record) *SliceSource { return &SliceSource{Records: recs} }

// Next implements Source.
func (s *SliceSource) Next(rec *Record) bool {
	if s.pos >= len(s.Records) {
		return false
	}
	*rec = s.Records[s.pos]
	s.pos++
	return true
}

// Reset implements Source.
func (s *SliceSource) Reset() { s.pos = 0 }

// Collect drains src into a slice. Intended for tests and small traces.
func Collect(src Source) []Record {
	var out []Record
	var rec Record
	for src.Next(&rec) {
		out = append(out, rec)
	}
	return out
}
