package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseTextRecord(t *testing.T) {
	tests := []struct {
		line string
		want Record
	}{
		{"0x401000 alu 12", Record{PC: 0x401000, Class: ClassALU, Skip: 12}},
		{"0x401004 load 0x7f32000 3", Record{PC: 0x401004, Class: ClassLoad, EA: 0x7f32000, Skip: 3}},
		{"4198408 store 1024", Record{PC: 4198408, Class: ClassStore, EA: 1024}},
		{"0x401008 cond-branch 1 0x401000 0", Record{PC: 0x401008, Class: ClassCondBranch, Taken: true, Target: 0x401000}},
		{"0x40100c uncond-indirect 1 0x402000", Record{PC: 0x40100c, Class: ClassUncondIndirect, Taken: true, Target: 0x402000}},
		{"0x401010 uncond-direct 1 0x403000 7", Record{PC: 0x401010, Class: ClassUncondDirect, Taken: true, Target: 0x403000, Skip: 7}},
	}
	for _, tt := range tests {
		got, err := ParseTextRecord(tt.line)
		if err != nil {
			t.Errorf("ParseTextRecord(%q): %v", tt.line, err)
			continue
		}
		if got != tt.want {
			t.Errorf("ParseTextRecord(%q) = %+v, want %+v", tt.line, got, tt.want)
		}
	}
}

func TestParseTextRecordErrors(t *testing.T) {
	for _, line := range []string{
		"",
		"0x1000",
		"zzz alu",
		"0x1000 wiggle",
		"0x1000 load",          // missing ea
		"0x1000 load zz",       // bad ea
		"0x1000 cond-branch 1", // missing target
		"0x1000 cond-branch x 0x2000",
		"0x1000 alu notanumber",
	} {
		if _, err := ParseTextRecord(line); err == nil {
			t.Errorf("ParseTextRecord(%q) accepted", line)
		}
	}
}

func TestTextReaderSkipsCommentsAndBlanks(t *testing.T) {
	input := `# a comment

0x1000 alu 1
   # indented comment
0x1004 load 0x2000 2
`
	tr := NewTextReader(strings.NewReader(input))
	recs := Collect(tr)
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
}

func TestTextReaderReportsLine(t *testing.T) {
	tr := NewTextReader(strings.NewReader("0x1000 alu 1\nbogus line here\n"))
	var rec Record
	if !tr.Next(&rec) {
		t.Fatal("first record should parse")
	}
	if tr.Next(&rec) {
		t.Fatal("second record should fail")
	}
	if err := tr.Err(); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error should name line 2: %v", err)
	}
}

func TestTextRoundTrip(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := NewRNG(seed)
		count := int(n%50) + 1
		recs := make([]Record, count)
		for i := range recs {
			cls := Class(rng.Intn(NumClasses))
			rec := Record{PC: rng.Uint64(), Class: cls, Skip: rng.Uint32() % 100}
			switch {
			case cls.IsMemory():
				rec.EA = rng.Uint64()
			case cls.IsBranch():
				rec.Taken = rng.Bool(0.5) || cls != ClassCondBranch
				rec.Target = rng.Uint64()
			}
			recs[i] = rec
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, NewSliceSource(recs)); err != nil {
			return false
		}
		tr := NewTextReader(&buf)
		got := Collect(tr)
		if tr.Err() != nil || len(got) != len(recs) {
			return false
		}
		for i := range recs {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestTextReaderNeverPanicsOnGarbage(t *testing.T) {
	f := func(garbage []byte) bool {
		tr := NewTextReader(bytes.NewReader(garbage))
		var rec Record
		for tr.Next(&rec) {
		}
		return true // reaching here without panic is the property
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBinaryReaderNeverPanicsOnGarbage(t *testing.T) {
	f := func(garbage []byte) bool {
		r, _, _, err := NewReader(bytes.NewReader(garbage))
		if err != nil {
			return true
		}
		var rec Record
		for i := 0; i < 1000 && r.Next(&rec); i++ {
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
