package trace

import (
	"bytes"
	"testing"
)

// Fuzz targets: the decoders must never panic on arbitrary input.
// `go test -fuzz=FuzzBinaryReader ./internal/trace` explores further;
// the seeds below run as ordinary tests.

func FuzzBinaryReader(f *testing.F) {
	// Seed with a valid file and a few mutations.
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		f.Fatal(err)
	}
	recs := []Record{
		{PC: 0x1000, Class: ClassLoad, EA: 0x2000, Skip: 3},
		{PC: 0x1004, Class: ClassCondBranch, Taken: true, Target: 0x1000},
		{PC: 0x1010, Class: ClassALU, Skip: 100},
	}
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("CHTR garbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, _, _, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var rec Record
		for i := 0; i < 10_000 && r.Next(&rec); i++ {
		}
	})
}

func FuzzTextParser(f *testing.F) {
	f.Add("0x1000 load 0x2000 3")
	f.Add("0x1 cond-branch 1 0x2 9")
	f.Add("")
	f.Add("# comment")
	f.Add("x y z")
	f.Fuzz(func(t *testing.T, line string) {
		rec, err := ParseTextRecord(line)
		if err != nil {
			return
		}
		// A successfully parsed record must survive a write→parse
		// round trip.
		var buf bytes.Buffer
		if err := WriteText(&buf, NewSliceSource([]Record{rec})); err != nil {
			t.Fatalf("WriteText failed on parsed record %+v: %v", rec, err)
		}
		tr := NewTextReader(&buf)
		var back Record
		if !tr.Next(&back) {
			t.Fatalf("round trip lost record %+v (err %v)", rec, tr.Err())
		}
		if back != rec {
			t.Fatalf("round trip changed record: %+v → %+v", rec, back)
		}
	})
}
