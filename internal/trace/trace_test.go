package trace

import (
	"bytes"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestClassString(t *testing.T) {
	tests := []struct {
		c    Class
		want string
	}{
		{ClassALU, "alu"},
		{ClassLoad, "load"},
		{ClassStore, "store"},
		{ClassCondBranch, "cond-branch"},
		{ClassUncondDirect, "uncond-direct"},
		{ClassUncondIndirect, "uncond-indirect"},
		{Class(250), "class(250)"},
	}
	for _, tt := range tests {
		if got := tt.c.String(); got != tt.want {
			t.Errorf("Class(%d).String() = %q, want %q", tt.c, got, tt.want)
		}
	}
}

func TestClassPredicates(t *testing.T) {
	if !ClassLoad.IsMemory() || !ClassStore.IsMemory() {
		t.Error("loads and stores must be memory")
	}
	if ClassALU.IsMemory() || ClassCondBranch.IsMemory() {
		t.Error("ALU and branches must not be memory")
	}
	for _, c := range []Class{ClassCondBranch, ClassUncondDirect, ClassUncondIndirect} {
		if !c.IsBranch() {
			t.Errorf("%v must be a branch", c)
		}
	}
	if ClassALU.IsBranch() || ClassLoad.IsBranch() {
		t.Error("ALU and loads must not be branches")
	}
}

func TestRecordInstructions(t *testing.T) {
	r := Record{Skip: 0}
	if got := r.Instructions(); got != 1 {
		t.Errorf("Instructions() = %d, want 1", got)
	}
	r.Skip = 7
	if got := r.Instructions(); got != 8 {
		t.Errorf("Instructions() = %d, want 8", got)
	}
}

func TestSliceSourceRoundTrip(t *testing.T) {
	recs := []Record{
		{PC: 0x1000, Class: ClassALU, Skip: 3},
		{PC: 0x1010, Class: ClassLoad, EA: 0xdead000},
		{PC: 0x1014, Class: ClassCondBranch, Taken: true, Target: 0x1000},
	}
	src := NewSliceSource(recs)
	got := Collect(src)
	if len(got) != len(recs) {
		t.Fatalf("Collect returned %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
	// After exhaustion Next keeps returning false.
	var rec Record
	if src.Next(&rec) {
		t.Error("Next after exhaustion must report false")
	}
	src.Reset()
	if !src.Next(&rec) || rec != recs[0] {
		t.Error("Reset must restart the stream")
	}
}

func TestCountInstructions(t *testing.T) {
	recs := []Record{
		{PC: 1, Skip: 9},  // 10 instructions
		{PC: 2, Skip: 0},  // 1
		{PC: 3, Skip: 99}, // 100
	}
	instrs, records := CountInstructions(NewSliceSource(recs))
	if instrs != 111 || records != 3 {
		t.Errorf("CountInstructions = (%d, %d), want (111, 3)", instrs, records)
	}
}

func TestLimitTruncates(t *testing.T) {
	recs := make([]Record, 100)
	for i := range recs {
		recs[i] = Record{PC: uint64(i), Skip: 9} // 10 instructions each
	}
	lim := NewLimit(NewSliceSource(recs), 55)
	instrs, records := CountInstructions(lim)
	// 50 instructions after 5 records; the 6th straddles the budget, so
	// its Skip is clamped and the stream yields exactly 55 instructions.
	if records != 6 || instrs != 55 {
		t.Errorf("limited stream = (%d instrs, %d records), want (55, 6)", instrs, records)
	}
	lim.Reset()
	instrs2, records2 := CountInstructions(lim)
	if instrs2 != instrs || records2 != records {
		t.Errorf("after Reset = (%d, %d), want (%d, %d)", instrs2, records2, instrs, records)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed RNGs diverged at step %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	a.Seed(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Errorf("different-seed RNGs collided %d/1000 times", same)
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Errorf("zero-seeded RNG produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(13); v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) must panic")
		}
	}()
	r.Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(99)
	for i := 0; i < 10000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(64)
	seen := make([]bool, 64)
	for _, v := range p {
		if v < 0 || v >= 64 || seen[v] {
			t.Fatalf("Perm produced invalid or duplicate element %d", v)
		}
		seen[v] = true
	}
}

func TestRNGZipfSkew(t *testing.T) {
	r := NewRNG(11)
	const n, draws = 100, 20000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Zipf(n, 0.9)]++
	}
	lowHalf, highHalf := 0, 0
	for i, c := range counts {
		if i < n/2 {
			lowHalf += c
		} else {
			highHalf += c
		}
	}
	if lowHalf <= highHalf*2 {
		t.Errorf("Zipf(0.9) not skewed: low half %d, high half %d", lowHalf, highHalf)
	}
	// s = 0 must be uniform-ish.
	for i := range counts {
		counts[i] = 0
	}
	for i := 0; i < draws; i++ {
		counts[r.Zipf(n, 0)]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Errorf("Zipf(0) never produced %d in %d draws", i, draws)
		}
	}
}

func TestRNGZipfProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed uint64, skewRaw uint8) bool {
		r := NewRNG(seed)
		s := float64(skewRaw) / 255.0 // [0, 1]
		v := r.Zipf(50, s)
		return v >= 0 && v < 50
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestFileRoundTrip(t *testing.T) {
	rng := NewRNG(123)
	recs := make([]Record, 5000)
	pc := uint64(0x400000)
	ea := uint64(0x10000000)
	for i := range recs {
		pc += uint64(4 * (1 + rng.Intn(4)))
		cls := Class(rng.Intn(NumClasses))
		rec := Record{PC: pc, Class: cls, Skip: uint32(rng.Intn(8))}
		switch {
		case cls.IsMemory():
			ea += uint64(rng.Intn(1 << 20))
			rec.EA = ea
		case cls.IsBranch():
			rec.Taken = rng.Bool(0.6) || cls != ClassCondBranch
			rec.Target = pc - uint64(rng.Intn(1<<12)) + 4
		}
		recs[i] = rec
	}

	path := filepath.Join(t.TempDir(), "t.chtr")
	wrecs, winstrs, err := WriteFile(path, NewSliceSource(recs))
	if err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if wrecs != uint64(len(recs)) {
		t.Errorf("WriteFile records = %d, want %d", wrecs, len(recs))
	}

	fs, err := OpenFile(path)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	defer fs.Close()
	hr, hi := fs.Counts()
	if hr != wrecs || hi != winstrs {
		t.Errorf("header counts = (%d, %d), want (%d, %d)", hr, hi, wrecs, winstrs)
	}
	got := Collect(fs)
	if err := fs.Err(); err != nil {
		t.Fatalf("decode error: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}

	// Reset and re-read.
	fs.Reset()
	got2 := Collect(fs)
	if len(got2) != len(recs) {
		t.Errorf("after Reset decoded %d records, want %d", len(got2), len(recs))
	}
}

func TestFileRejectsGarbage(t *testing.T) {
	_, _, _, err := NewReader(bytes.NewReader([]byte("not a trace file at all........")))
	if err == nil {
		t.Fatal("NewReader accepted garbage")
	}
	// Truncated header.
	_, _, _, err = NewReader(bytes.NewReader([]byte("CHTR")))
	if err == nil {
		t.Fatal("NewReader accepted truncated header")
	}
}

func TestWriterToNonSeekable(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	rec := Record{PC: 0x1000, Class: ClassLoad, EA: 0x2000}
	if err := w.Write(&rec); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r, rc, _, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if rc != 0 {
		t.Errorf("non-seekable header count = %d, want 0", rc)
	}
	var got Record
	if !r.Next(&got) || got != rec {
		t.Errorf("decoded %+v, want %+v", got, rec)
	}
}

func TestFileRoundTripProperty(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		rng := NewRNG(seed)
		count := int(n%200) + 1
		recs := make([]Record, count)
		for i := range recs {
			cls := Class(rng.Intn(NumClasses))
			rec := Record{PC: rng.Uint64(), Class: cls, Skip: rng.Uint32() % 1000}
			switch {
			case cls.IsMemory():
				rec.EA = rng.Uint64()
			case cls.IsBranch():
				rec.Taken = rng.Bool(0.5) || cls != ClassCondBranch
				rec.Target = rng.Uint64()
			}
			recs[i] = rec
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		for i := range recs {
			if err := w.Write(&recs[i]); err != nil {
				return false
			}
		}
		if err := w.Close(); err != nil {
			return false
		}
		r, _, _, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		for i := range recs {
			var got Record
			if !r.Next(&got) || got != recs[i] {
				return false
			}
		}
		var extra Record
		return !r.Next(&extra) && r.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
