package trace

import "math"

// RNG is a small, fast, deterministic pseudo-random number generator
// (xorshift64* with a splitmix64-seeded state). Every randomised piece
// of the workload generators and simulators uses RNG so runs are
// exactly reproducible from a seed, independent of Go release or of
// math/rand behaviour.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded from seed. Any seed, including 0,
// yields a usable non-degenerate state.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator to the state derived from seed.
func (r *RNG) Seed(seed uint64) {
	// splitmix64 step so that nearby seeds produce unrelated streams.
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x9e3779b97f4a7c15
	}
	r.state = z
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniformly distributed int in [0, n). It panics if
// n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("trace: RNG.Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniformly distributed uint64 in [0, n). It panics
// if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("trace: RNG.Uint64n called with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Zipf draws from a bounded Zipf-like distribution over [0, n) with
// exponent s (s >= 0; s == 0 is uniform). It uses the inverse-CDF of
// the continuous density p(x) ∝ x^(-s) over [1, n+1), which is
// adequate for workload skew modelling and needs no per-call table.
func (r *RNG) Zipf(n int, s float64) int {
	if n <= 1 {
		return 0
	}
	if s <= 0 {
		return r.Intn(n)
	}
	if s > 0.99 {
		s = 0.99
	}
	u := r.Float64()
	x := math.Pow(float64(n), 1.0-s)*u + (1.0 - u)
	v := math.Pow(x, 1.0/(1.0-s)) - 1.0
	idx := int(v)
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return idx
}
