package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// Binary trace file format ("CHTR"):
//
//	header:  magic "CHTR" | version u8 | flags u8 | reserved u16
//	         record count u64 | instruction count u64
//	records: class u8 | skip uvarint | pc-delta svarint |
//	         [ea svarint-delta]        for loads/stores
//	         [taken u8, target svarint-delta-from-pc] for branches
//
// PC and EA streams are delta-encoded against their own previous
// values, which makes typical traces compress to a few bits per
// record before gzip. The whole payload after the header is gzip'd
// when flagFormatGzip is set (the default for files).

const (
	fileMagic   = "CHTR"
	fileVersion = 1

	flagGzip = 1 << 0
)

// ErrBadTrace is wrapped by all trace-file decoding errors.
var ErrBadTrace = errors.New("trace: malformed trace file")

// Writer serialises records to the binary trace format.
type Writer struct {
	w      *bufio.Writer
	gz     *gzip.Writer
	under  io.Writer
	buf    [2 * binary.MaxVarintLen64]byte
	lastPC uint64
	lastEA uint64

	records      uint64
	instructions uint64
	headerAt     io.WriteSeeker // non-nil when counts can be back-patched
}

// NewWriter returns a Writer emitting to w. When w is an
// io.WriteSeeker (e.g. an *os.File), the header's record and
// instruction counts are back-patched on Close; otherwise they are
// written as zero and readers must not rely on them.
func NewWriter(w io.Writer) (*Writer, error) {
	tw := &Writer{under: w}
	if ws, ok := w.(io.WriteSeeker); ok {
		tw.headerAt = ws
	}
	var hdr [24]byte
	copy(hdr[:4], fileMagic)
	hdr[4] = fileVersion
	hdr[5] = flagGzip
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	tw.gz = gzip.NewWriter(w)
	tw.w = bufio.NewWriterSize(tw.gz, 1<<16)
	return tw, nil
}

// Write appends one record.
func (tw *Writer) Write(rec *Record) error {
	b := tw.buf[:0]
	b = append(b, byte(rec.Class))
	b = binary.AppendUvarint(b, uint64(rec.Skip))
	b = binary.AppendVarint(b, int64(rec.PC-tw.lastPC))
	tw.lastPC = rec.PC
	switch {
	case rec.Class.IsMemory():
		b = binary.AppendVarint(b, int64(rec.EA-tw.lastEA))
		tw.lastEA = rec.EA
	case rec.Class.IsBranch():
		t := byte(0)
		if rec.Taken {
			t = 1
		}
		b = append(b, t)
		b = binary.AppendVarint(b, int64(rec.Target-rec.PC))
	}
	if _, err := tw.w.Write(b); err != nil {
		return fmt.Errorf("trace: writing record: %w", err)
	}
	tw.records++
	tw.instructions += rec.Instructions()
	return nil
}

// Close flushes the stream and back-patches the header counts when the
// underlying writer is seekable. It does not close the underlying
// writer.
func (tw *Writer) Close() error {
	if err := tw.w.Flush(); err != nil {
		return fmt.Errorf("trace: flushing: %w", err)
	}
	if err := tw.gz.Close(); err != nil {
		return fmt.Errorf("trace: closing gzip stream: %w", err)
	}
	if tw.headerAt == nil {
		return nil
	}
	var counts [16]byte
	binary.LittleEndian.PutUint64(counts[0:], tw.records)
	binary.LittleEndian.PutUint64(counts[8:], tw.instructions)
	if _, err := tw.headerAt.Seek(8, io.SeekStart); err != nil {
		return fmt.Errorf("trace: seeking to header: %w", err)
	}
	if _, err := tw.headerAt.Write(counts[:]); err != nil {
		return fmt.Errorf("trace: patching header: %w", err)
	}
	_, err := tw.headerAt.Seek(0, io.SeekEnd)
	return err
}

// Records returns how many records have been written so far.
func (tw *Writer) Records() uint64 { return tw.records }

// Instructions returns how many committed instructions (including
// skipped ALU runs) have been written so far.
func (tw *Writer) Instructions() uint64 { return tw.instructions }

// Reader decodes the binary trace format. It implements Source for a
// single pass; Reset is only supported by FileSource (which can
// reopen), not by a bare Reader over a generic io.Reader.
type Reader struct {
	br      *bufio.Reader
	gz      *gzip.Reader
	lastPC  uint64
	lastEA  uint64
	records uint64
	instrs  uint64
	err     error
}

// NewReader parses the header from r and returns a Reader positioned
// at the first record. The reported counts are zero when the producer
// could not back-patch them.
func NewReader(r io.Reader) (*Reader, uint64, uint64, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, 0, fmt.Errorf("%w: short header: %v", ErrBadTrace, err)
	}
	if string(hdr[:4]) != fileMagic {
		return nil, 0, 0, fmt.Errorf("%w: bad magic %q", ErrBadTrace, hdr[:4])
	}
	if hdr[4] != fileVersion {
		return nil, 0, 0, fmt.Errorf("%w: unsupported version %d", ErrBadTrace, hdr[4])
	}
	records := binary.LittleEndian.Uint64(hdr[8:])
	instrs := binary.LittleEndian.Uint64(hdr[16:])
	tr := &Reader{records: records, instrs: instrs}
	if hdr[5]&flagGzip != 0 {
		gz, err := gzip.NewReader(r)
		if err != nil {
			return nil, 0, 0, fmt.Errorf("%w: gzip: %v", ErrBadTrace, err)
		}
		tr.gz = gz
		tr.br = bufio.NewReaderSize(gz, 1<<16)
	} else {
		tr.br = bufio.NewReaderSize(r, 1<<16)
	}
	return tr, records, instrs, nil
}

// Next implements Source. Decoding errors are recorded and surface via
// Err; Next then reports false.
func (tr *Reader) Next(rec *Record) bool {
	if tr.err != nil {
		return false
	}
	cls, err := tr.br.ReadByte()
	if err != nil {
		if err != io.EOF {
			tr.err = fmt.Errorf("%w: reading class: %v", ErrBadTrace, err)
		}
		return false
	}
	if int(cls) >= NumClasses {
		tr.err = fmt.Errorf("%w: invalid class %d", ErrBadTrace, cls)
		return false
	}
	rec.Class = Class(cls)
	skip, err := binary.ReadUvarint(tr.br)
	if err != nil {
		tr.err = fmt.Errorf("%w: reading skip: %v", ErrBadTrace, err)
		return false
	}
	rec.Skip = uint32(skip)
	dpc, err := binary.ReadVarint(tr.br)
	if err != nil {
		tr.err = fmt.Errorf("%w: reading pc: %v", ErrBadTrace, err)
		return false
	}
	tr.lastPC += uint64(dpc)
	rec.PC = tr.lastPC
	rec.EA, rec.Target, rec.Taken = 0, 0, false
	switch {
	case rec.Class.IsMemory():
		dea, err := binary.ReadVarint(tr.br)
		if err != nil {
			tr.err = fmt.Errorf("%w: reading ea: %v", ErrBadTrace, err)
			return false
		}
		tr.lastEA += uint64(dea)
		rec.EA = tr.lastEA
	case rec.Class.IsBranch():
		t, err := tr.br.ReadByte()
		if err != nil {
			tr.err = fmt.Errorf("%w: reading outcome: %v", ErrBadTrace, err)
			return false
		}
		rec.Taken = t != 0
		dt, err := binary.ReadVarint(tr.br)
		if err != nil {
			tr.err = fmt.Errorf("%w: reading target: %v", ErrBadTrace, err)
			return false
		}
		rec.Target = rec.PC + uint64(dt)
	}
	return true
}

// Reset implements Source but always panics: a bare Reader cannot
// rewind an arbitrary io.Reader. Use FileSource for resettable
// file-backed traces.
func (tr *Reader) Reset() { panic("trace: Reader cannot Reset; use FileSource") }

// Err returns the first decoding error encountered, if any.
func (tr *Reader) Err() error { return tr.err }

// FileSource is a resettable Source backed by a trace file on disk.
type FileSource struct {
	Path string

	f  *os.File
	r  *Reader
	rc uint64
	ic uint64
}

// OpenFile opens a trace file as a resettable Source.
func OpenFile(path string) (*FileSource, error) {
	fs := &FileSource{Path: path}
	if err := fs.open(); err != nil {
		return nil, err
	}
	return fs, nil
}

func (fs *FileSource) open() error {
	f, err := os.Open(fs.Path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	r, rc, ic, err := NewReader(f)
	if err != nil {
		f.Close()
		return err
	}
	fs.f, fs.r, fs.rc, fs.ic = f, r, rc, ic
	return nil
}

// Next implements Source.
func (fs *FileSource) Next(rec *Record) bool { return fs.r.Next(rec) }

// Reset implements Source by reopening the file.
func (fs *FileSource) Reset() {
	fs.f.Close()
	if err := fs.open(); err != nil {
		// A file that opened once and then fails to reopen is an
		// environment failure (deleted/unreadable); surface it loudly.
		panic(fmt.Sprintf("trace: reopening %s: %v", fs.Path, err))
	}
}

// Close releases the underlying file.
func (fs *FileSource) Close() error { return fs.f.Close() }

// Counts returns the header's record and instruction counts.
func (fs *FileSource) Counts() (records, instructions uint64) { return fs.rc, fs.ic }

// Err returns the first decoding error encountered, if any.
func (fs *FileSource) Err() error { return fs.r.Err() }

// WriteFile materialises src into a trace file at path.
func WriteFile(path string, src Source) (records, instructions uint64, err error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, 0, fmt.Errorf("trace: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("trace: %w", cerr)
		}
	}()
	w, err := NewWriter(f)
	if err != nil {
		return 0, 0, err
	}
	var rec Record
	for src.Next(&rec) {
		if err := w.Write(&rec); err != nil {
			return 0, 0, err
		}
	}
	if err := w.Close(); err != nil {
		return 0, 0, err
	}
	return w.Records(), w.Instructions(), nil
}
