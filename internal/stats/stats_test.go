package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3}), 2) {
		t.Error("Mean([1,2,3]) != 2")
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
}

func TestGeoMean(t *testing.T) {
	if !almost(GeoMean([]float64{2, 8}), 4) {
		t.Errorf("GeoMean([2,8]) = %v, want 4", GeoMean([]float64{2, 8}))
	}
	// Non-positive entries are skipped, not fatal.
	if !almost(GeoMean([]float64{0, 4}), 4) {
		t.Error("GeoMean must skip non-positive entries")
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) != 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if !almost(Percentile(xs, 0), 1) || !almost(Percentile(xs, 100), 5) {
		t.Error("extreme percentiles wrong")
	}
	if !almost(Percentile(xs, 50), 3) {
		t.Errorf("P50 = %v, want 3", Percentile(xs, 50))
	}
	if !almost(Percentile(xs, 25), 2) {
		t.Errorf("P25 = %v, want 2", Percentile(xs, 25))
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile(nil) != 0")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestStdDev(t *testing.T) {
	if !almost(StdDev([]float64{2, 2, 2}), 0) {
		t.Error("constant series must have zero stddev")
	}
	if !almost(StdDev([]float64{1, 3}), 1) {
		t.Errorf("StdDev([1,3]) = %v, want 1", StdDev([]float64{1, 3}))
	}
}

func TestReduction(t *testing.T) {
	if !almost(Reduction(1.51, 1.08), (1.51-1.08)/1.51*100) {
		t.Error("Reduction formula wrong")
	}
	if Reduction(0, 5) != 0 {
		t.Error("Reduction with zero baseline must be 0")
	}
}

func TestSCurveSortedAndCSV(t *testing.T) {
	c := &SCurve{
		Labels: []string{"b", "a", "c"},
		Series: map[string][]float64{
			"lru":   {3, 1, 2},
			"chirp": {2.5, 0.5, 1.5},
		},
		Order: "lru",
	}
	order := c.Sorted()
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("Sorted() = %v, want %v", order, want)
		}
	}
	var sb strings.Builder
	if err := c.WriteCSV(&sb, []string{"lru", "chirp"}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV lines = %d, want 4", len(lines))
	}
	if lines[0] != "benchmark,lru,chirp" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "a,1,") {
		t.Errorf("first data row = %q, want to start with a,1", lines[1])
	}
}

func TestSummarize(t *testing.T) {
	d := Summarize("x", []float64{1, 2, 3, 4, 10})
	if d.Name != "x" || !almost(d.Mean, 4) || d.Max != 10 {
		t.Errorf("Summarize = %+v", d)
	}
	if d.P50 != 3 {
		t.Errorf("P50 = %v, want 3", d.P50)
	}
}

func TestHistogram(t *testing.T) {
	bins := Histogram([]float64{0, 0.5, 0.99, 1.5, -2}, 2, 0, 1)
	// Bin 0 covers [0, 0.5): {0, -2 clamped}. Bin 1 covers [0.5, 1]:
	// {0.5, 0.99, 1.5 clamped}.
	if bins[0] != 2 || bins[1] != 3 {
		t.Errorf("bins = %v, want [2 3]", bins)
	}
	if got := Histogram(nil, 0, 0, 1); len(got) != 0 {
		t.Error("zero-bin histogram must be empty")
	}
}

func TestBar(t *testing.T) {
	if got := Bar(5, 10, 10); len([]rune(got)) != 5 {
		t.Errorf("Bar(5,10,10) length = %d, want 5", len([]rune(got)))
	}
	if got := Bar(20, 10, 10); len([]rune(got)) != 10 {
		t.Error("Bar must clamp to width")
	}
	if Bar(1, 0, 10) != "" {
		t.Error("Bar with zero max must be empty")
	}
}

func TestTableAligns(t *testing.T) {
	var sb strings.Builder
	err := Table(&sb, []string{"name", "v"}, [][]string{{"longer-name", "1"}, {"x", "22"}})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3", len(lines))
	}
	if !strings.HasPrefix(lines[1], "longer-name  1") {
		t.Errorf("row = %q", lines[1])
	}
}

func TestHeatRow(t *testing.T) {
	row := HeatRow([]float64{0, 0.4, 0.7, 1, -1, 2})
	runes := []rune(row)
	if len(runes) != 6 {
		t.Fatalf("HeatRow length = %d, want 6", len(runes))
	}
	if runes[3] != '░' {
		t.Errorf("efficiency 1 must render lightest, got %c", runes[3])
	}
	if runes[0] != '█' {
		t.Errorf("efficiency 0 must render darkest, got %c", runes[0])
	}
	if runes[4] != runes[0] || runes[5] != runes[3] {
		t.Error("out-of-range values must clamp")
	}
}

func TestGeoMeanMeanProperties(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r%1000) + 1 // positive
		}
		g, m := GeoMean(xs), Mean(xs)
		// AM-GM inequality, plus both within [min, max].
		return g <= m+1e-9 && g > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLineChartRenders(t *testing.T) {
	c := &LineChart{
		XLabels: []string{"20", "150", "340"},
		Series: map[rune][]float64{
			'c': {0.7, 4.1, 7.0},
			's': {0.2, 1.1, 1.8},
		},
		Height: 5,
	}
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "c") || !strings.Contains(out, "s") {
		t.Errorf("chart missing series marks:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // 5 rows + axis
		t.Errorf("chart rows = %d, want 6:\n%s", len(lines), out)
	}
}

func TestLineChartDegenerate(t *testing.T) {
	c := &LineChart{XLabels: []string{"a"}, Series: map[rune][]float64{'x': {5}}}
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "x") {
		t.Error("single-point chart missing its mark")
	}
}
