// Package stats provides the aggregation and presentation helpers the
// experiment harness uses: means, geometric means, S-curves (Figures 7
// and 8), density summaries (Figure 11), ASCII charts, and CSV/TSV
// table emitters.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs, which must be positive
// (non-positive entries are skipped). The paper reports speedups as
// geometric means.
func GeoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Percentile returns the p-th percentile (0..100) of xs by linear
// interpolation over the sorted values.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// Reduction returns the percent reduction of value versus baseline
// ((baseline−value)/baseline × 100).
func Reduction(baseline, value float64) float64 {
	if baseline == 0 {
		return 0
	}
	return (baseline - value) / baseline * 100
}

// SCurve is the paper's S-curve presentation (Figures 7 and 8): one
// series per policy, benchmarks ordered by the baseline series'
// values.
type SCurve struct {
	// Labels names the benchmarks.
	Labels []string
	// Series maps policy name to per-benchmark values (parallel to
	// Labels).
	Series map[string][]float64
	// Order is the policy whose values sort the x-axis.
	Order string
}

// Sorted returns the benchmark indices in ascending order of the
// ordering series.
func (s *SCurve) Sorted() []int {
	base := s.Series[s.Order]
	idx := make([]int, len(base))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return base[idx[a]] < base[idx[b]] })
	return idx
}

// WriteCSV emits the S-curve with benchmarks sorted by the ordering
// series, one row per benchmark.
func (s *SCurve) WriteCSV(w io.Writer, seriesOrder []string) error {
	if _, err := fmt.Fprintf(w, "benchmark,%s\n", strings.Join(seriesOrder, ",")); err != nil {
		return err
	}
	for _, i := range s.Sorted() {
		row := make([]string, 0, len(seriesOrder)+1)
		row = append(row, s.Labels[i])
		for _, name := range seriesOrder {
			row = append(row, fmt.Sprintf("%.6g", s.Series[name][i]))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Density summarises a distribution the way Figure 11 presents
// prediction-table access rates.
type Density struct {
	Name   string
	Mean   float64
	StdDev float64
	P10    float64
	P50    float64
	P90    float64
	Max    float64
}

// Summarize builds a Density from samples.
func Summarize(name string, xs []float64) Density {
	d := Density{
		Name:   name,
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		P10:    Percentile(xs, 10),
		P50:    Percentile(xs, 50),
		P90:    Percentile(xs, 90),
	}
	for _, x := range xs {
		if x > d.Max {
			d.Max = x
		}
	}
	return d
}

// Histogram bins xs into n equal-width buckets over [min, max].
func Histogram(xs []float64, n int, min, max float64) []int {
	bins := make([]int, n)
	if max <= min || n == 0 {
		return bins
	}
	for _, x := range xs {
		i := int((x - min) / (max - min) * float64(n))
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		bins[i]++
	}
	return bins
}

// Bar renders a proportional ASCII bar of width w for value within
// [0, max].
func Bar(value, max float64, w int) string {
	if max <= 0 || value < 0 {
		return ""
	}
	n := int(value / max * float64(w))
	if n > w {
		n = w
	}
	return strings.Repeat("█", n)
}

// Table renders aligned columns to w: header row then data rows.
func Table(w io.Writer, header []string, rows [][]string) error {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	emit := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := emit(header); err != nil {
		return err
	}
	for _, row := range rows {
		if err := emit(row); err != nil {
			return err
		}
	}
	return nil
}

// HeatRow renders one Figure-1-style heat-map row: each value in
// [0, 1] becomes a shaded block (lighter = higher efficiency, as in
// the paper).
func HeatRow(values []float64) string {
	shades := []rune("░▒▓█")
	var b strings.Builder
	for _, v := range values {
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		// Lighter (lower index) = higher efficiency.
		i := int((1 - v) * float64(len(shades)))
		if i >= len(shades) {
			i = len(shades) - 1
		}
		b.WriteRune(shades[i])
	}
	return b.String()
}

// BootstrapCI estimates a confidence interval for the geometric mean
// of xs by bootstrap resampling (the §VI-G statistical-significance
// check for speedups over the suite): n resamples with replacement,
// returning the (1−conf)/2 and 1−(1−conf)/2 quantiles of the resampled
// geomeans. The generator is seeded for reproducibility.
func BootstrapCI(xs []float64, n int, conf float64, seed uint64) (lo, hi float64) {
	if len(xs) == 0 || n <= 0 {
		return 0, 0
	}
	state := seed*6364136223846793005 + 1442695040888963407
	next := func() uint64 {
		state ^= state >> 12
		state ^= state << 25
		state ^= state >> 27
		return state * 0x2545f4914f6cdd1d
	}
	means := make([]float64, n)
	sample := make([]float64, len(xs))
	for i := 0; i < n; i++ {
		for j := range sample {
			sample[j] = xs[next()%uint64(len(xs))]
		}
		means[i] = GeoMean(sample)
	}
	alpha := (1 - conf) / 2 * 100
	return Percentile(means, alpha), Percentile(means, 100-alpha)
}

// LineChart renders series as a compact ASCII chart: one row per
// y-resolution step, marks placed per series at each x position. It is
// how the sweep figures (2, 9, 10) are displayed in terminals.
type LineChart struct {
	// XLabels name the x positions (same length as every series).
	XLabels []string
	// Series maps a single-rune mark to its y values.
	Series map[rune][]float64
	// Height is the number of chart rows (default 10).
	Height int
}

// Render writes the chart.
func (c *LineChart) Render(w io.Writer) error {
	height := c.Height
	if height <= 0 {
		height = 10
	}
	n := len(c.XLabels)
	min, max := math.Inf(1), math.Inf(-1)
	for _, ys := range c.Series {
		for i := 0; i < n && i < len(ys); i++ {
			if ys[i] < min {
				min = ys[i]
			}
			if ys[i] > max {
				max = ys[i]
			}
		}
	}
	if math.IsInf(min, 1) || max == min {
		max, min = min+1, min-1
	}
	rowOf := func(v float64) int {
		r := int((v - min) / (max - min) * float64(height-1))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return height - 1 - r
	}
	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", n*4))
	}
	marks := make([]rune, 0, len(c.Series))
	for m := range c.Series {
		marks = append(marks, m)
	}
	sort.Slice(marks, func(i, j int) bool { return marks[i] < marks[j] })
	for _, m := range marks {
		ys := c.Series[m]
		for i := 0; i < n && i < len(ys); i++ {
			row, col := rowOf(ys[i]), i*4+1
			if grid[row][col] == ' ' {
				grid[row][col] = m
			} else {
				grid[row][col+1] = m // stack collisions sideways
			}
		}
	}
	for i, row := range grid {
		y := max - (max-min)*float64(i)/float64(height-1)
		if _, err := fmt.Fprintf(w, "%8.2f |%s\n", y, string(row)); err != nil {
			return err
		}
	}
	axis := make([]string, n)
	for i, l := range c.XLabels {
		if len(l) > 3 {
			l = l[:3]
		}
		axis[i] = fmt.Sprintf("%-4s", l)
	}
	_, err := fmt.Fprintf(w, "%8s +%s\n", "", strings.Join(axis, ""))
	return err
}
