package policy

import (
	"github.com/chirplab/chirp/internal/tlb"
	"github.com/chirplab/chirp/internal/trace"
)

// Random evicts a uniformly random way. The paper (§VI-A) observes it
// slightly outperforms LRU on average over the 870 traces, because
// cyclic working sets marginally larger than a set defeat LRU
// completely while random keeps a fraction of them resident.
type Random struct {
	rng  *trace.RNG
	ways int
}

// NewRandom returns a Random policy seeded deterministically.
func NewRandom(seed uint64) *Random { return &Random{rng: trace.NewRNG(seed)} }

// Name implements tlb.Policy.
func (*Random) Name() string { return "random" }

// Attach implements tlb.Policy.
func (p *Random) Attach(_, ways int) { p.ways = ways }

// OnAccess implements tlb.Policy.
func (*Random) OnAccess(*tlb.Access) {}

// PassiveOnAccess declares the empty OnAccess above to the TLB so the
// hot lookup path can skip the call (see tlb.PassiveOnAccess).
func (*Random) PassiveOnAccess() {}

// OnHit implements tlb.Policy.
func (*Random) OnHit(uint32, int, *tlb.Access) {}

// Victim implements tlb.Policy.
func (p *Random) Victim(uint32, *tlb.Access) int { return p.rng.Intn(p.ways) }

// OnInsert implements tlb.Policy.
func (*Random) OnInsert(uint32, int, *tlb.Access) {}
