package policy

import "github.com/chirplab/chirp/internal/tlb"

// SHiP is Signature-based Hit Prediction [Wu et al., MICRO 2011]
// adapted to the TLB exactly as the paper describes (§II-B, §III):
// because set sampling does not generalise for TLBs, every entry keeps
// its inserting PC signature as metadata ("a sampler the same size as
// the structure"), and the Signature History Counter Table (SHCT)
// learns whether insertions by that PC are ever re-referenced. The
// prediction is consumed at insertion on top of an SRRIP-replaced TLB:
// never-reused signatures insert at distant re-reference.
//
// Three configurations reproduce the paper's §III study:
//   - the default (finite SHCT, all sets predicted);
//   - NewSHiPUnlimited: an unaliased (map-backed) SHCT;
//   - NewSHiPSampled: prediction restricted to a subset of sets with
//     plain SRRIP insertion elsewhere.
type SHiP struct {
	srrip *SRRIP
	ways  int

	// Finite SHCT (nil when unlimited).
	shct *CounterTable
	// Unaliased SHCT used when unlimited is set.
	unlimited bool
	shctMap   map[uint64]uint8
	shctMax   uint8

	// sampleShift, when non-zero, restricts prediction to sets whose
	// index is divisible by 1<<sampleShift.
	sampleShift uint

	sig    []uint16 // per-entry inserting-PC signature
	reused []bool   // per-entry "was re-referenced" bit

	reads, writes uint64
}

// shipSignatureBits is the per-entry PC signature width (14 bits in
// the original SHiP paper).
const shipSignatureBits = 14

// NewSHiP returns the paper's TLB-adapted SHiP with an shctSize-entry
// (power of two), 3-bit-counter SHCT.
func NewSHiP(shctSize int) *SHiP {
	return &SHiP{srrip: NewSRRIP(), shct: NewCounterTable(shctSize, 3), shctMax: 7}
}

// NewSHiPUnlimited returns SHiP with an unaliased SHCT: one counter
// per distinct signature, however many occur. The paper uses this to
// show SHiP's failure on TLBs is not a table-capacity artefact.
func NewSHiPUnlimited() *SHiP {
	return &SHiP{srrip: NewSRRIP(), unlimited: true, shctMap: make(map[uint64]uint8), shctMax: 7}
}

// NewSHiPSampled returns SHiP predicting only on 1/(1<<sampleShift) of
// the sets, with plain SRRIP insertion elsewhere — the paper's probe
// for whether cross-set conflicts cause the mispredictions.
func NewSHiPSampled(shctSize int, sampleShift uint) *SHiP {
	p := NewSHiP(shctSize)
	p.sampleShift = sampleShift
	return p
}

// Name implements tlb.Policy.
func (p *SHiP) Name() string {
	switch {
	case p.unlimited:
		return "ship-unlimited"
	case p.sampleShift != 0:
		return "ship-sampled"
	default:
		return "ship"
	}
}

// Attach implements tlb.Policy.
func (p *SHiP) Attach(sets, ways int) {
	p.srrip.Attach(sets, ways)
	p.ways = ways
	p.sig = make([]uint16, sets*ways)
	p.reused = make([]bool, sets*ways)
}

func (p *SHiP) signature(pc uint64) uint64 {
	// Drop the byte-offset bits, then fold to the signature width.
	return Mix64(pc>>2) & (1<<shipSignatureBits - 1)
}

func (p *SHiP) predicted(set uint32) bool {
	if p.sampleShift == 0 {
		return true
	}
	return set&(1<<p.sampleShift-1) == 0
}

func (p *SHiP) shctRead(sig uint64) uint8 {
	p.reads++
	if p.unlimited {
		return p.shctMap[sig]
	}
	return p.shct.Read(p.shct.Index(sig))
}

func (p *SHiP) shctInc(sig uint64) {
	p.writes++
	if p.unlimited {
		if v := p.shctMap[sig]; v < p.shctMax {
			p.shctMap[sig] = v + 1
		}
		return
	}
	p.shct.Inc(p.shct.Index(sig))
}

func (p *SHiP) shctDec(sig uint64) {
	p.writes++
	if p.unlimited {
		if v := p.shctMap[sig]; v > 0 {
			p.shctMap[sig] = v - 1
		}
		return
	}
	p.shct.Dec(p.shct.Index(sig))
}

// OnAccess implements tlb.Policy.
func (*SHiP) OnAccess(*tlb.Access) {}

// PassiveOnAccess declares the empty OnAccess above to the TLB so the
// hot lookup path can skip the call (see tlb.PassiveOnAccess).
func (*SHiP) PassiveOnAccess() {}

// OnHit implements tlb.Policy: promote in SRRIP; on the first
// re-reference train the SHCT toward "reused". Like the paper's SHiP
// adaptation (§IV-E: SHiP and GHRP "must access tables on every access
// to the TLB"), the hit path reads the SHCT to refresh the entry's
// prediction state — the traffic Figure 11 charges SHiP for.
func (p *SHiP) OnHit(set uint32, way int, a *tlb.Access) {
	p.srrip.OnHit(set, way, a)
	if !p.predicted(set) {
		return
	}
	i := int(set)*p.ways + way
	p.shctRead(p.signature(a.PC))
	if !p.reused[i] {
		p.reused[i] = true
		p.shctInc(uint64(p.sig[i]))
	}
}

// Victim implements tlb.Policy: SRRIP victim; if the evictee was never
// re-referenced, train its signature toward "not reused".
func (p *SHiP) Victim(set uint32, a *tlb.Access) int {
	way := p.srrip.Victim(set, a)
	if p.predicted(set) {
		i := int(set)*p.ways + way
		if !p.reused[i] {
			p.shctDec(uint64(p.sig[i]))
		}
	}
	return way
}

// OnInsert implements tlb.Policy: consult the SHCT for the inserting
// PC; a zero counter predicts "never re-referenced" and inserts at
// distant re-reference.
func (p *SHiP) OnInsert(set uint32, way int, a *tlb.Access) {
	p.srrip.OnInsert(set, way, a)
	i := int(set)*p.ways + way
	if !p.predicted(set) {
		p.sig[i], p.reused[i] = 0, false
		return
	}
	sig := p.signature(a.PC)
	p.sig[i] = uint16(sig)
	p.reused[i] = false
	if p.shctRead(sig) == 0 {
		p.srrip.SetInsertion(set, way, p.srrip.MaxRRPV())
	}
}

// TableAccesses implements tlb.TableAccounting.
func (p *SHiP) TableAccesses() (reads, writes uint64) { return p.reads, p.writes }
