package policy

import (
	"testing"

	"github.com/chirplab/chirp/internal/tlb"
)

func TestSDBPSamplerOnlySampledSets(t *testing.T) {
	p := NewSDBP(4096, 5) // sample sets ≡ 0 (mod 32)
	p.Attach(128, 8)
	if _, ok := p.sampled(0); !ok {
		t.Error("set 0 must be sampled")
	}
	if _, ok := p.sampled(32); !ok {
		t.Error("set 32 must be sampled")
	}
	if _, ok := p.sampled(1); ok {
		t.Error("set 1 must not be sampled")
	}
	if _, ok := p.sampled(31); ok {
		t.Error("set 31 must not be sampled")
	}
}

func TestSDBPLearnsFromSampler(t *testing.T) {
	p := NewSDBP(4096, 0) // sample every set for the test
	p.Attach(4, 8)
	const deadPC = 0x4000
	// Stream never-reused VPNs through sampled set 0: the PC must be
	// learned dead.
	for i := uint64(0); i < 200; i++ {
		a := &tlb.Access{PC: deadPC, VPN: i * 4, Set: 0}
		p.OnAccess(a)
	}
	if !p.predictDead(p.pcSig(deadPC)) {
		t.Error("streaming PC not learned dead by the sampler")
	}
	// A PC whose pages are always reused must look live.
	const livePC = 0x8000
	for i := 0; i < 200; i++ {
		a := &tlb.Access{PC: livePC, VPN: 9, Set: 0}
		p.OnAccess(a)
	}
	if p.predictDead(p.pcSig(livePC)) {
		t.Error("reused PC learned dead")
	}
}

func TestSDBPVictimDeadFirst(t *testing.T) {
	p := NewSDBP(4096, 5)
	p.Attach(8, 4)
	a := &tlb.Access{PC: 0x100, VPN: 1, Set: 3}
	for w := 0; w < 4; w++ {
		p.OnInsert(3, w, a)
	}
	p.dead[3*4+2] = true
	if got := p.Victim(3, a); got != 2 {
		t.Errorf("victim = %d, want dead way 2", got)
	}
}

func TestDRRIPSelectorMoves(t *testing.T) {
	p := NewDRRIP()
	p.Attach(64, 4)
	a := &tlb.Access{}
	// Misses in the SRRIP leader (set 0) push the selector down.
	for w := 0; w < 4; w++ {
		p.OnInsert(0, w, a)
	}
	before := p.PSel()
	p.Victim(0, a)
	if p.PSel() >= before {
		t.Errorf("SRRIP-leader miss did not decrement PSEL: %d → %d", before, p.PSel())
	}
	// Misses in the BRRIP leader (set 16) push it up.
	for w := 0; w < 4; w++ {
		p.OnInsert(16, w, a)
	}
	before = p.PSel()
	p.Victim(16, a)
	if p.PSel() <= before {
		t.Errorf("BRRIP-leader miss did not increment PSEL: %d → %d", before, p.PSel())
	}
}

func TestDRRIPBRRIPInsertsDistant(t *testing.T) {
	p := NewDRRIP()
	p.Attach(64, 4)
	a := &tlb.Access{}
	// Set 16 is the BRRIP leader: most insertions land at maxRRPV.
	distant := 0
	for i := 0; i < 64; i++ {
		p.OnInsert(16, i%4, a)
		if p.rrpv[16*4+i%4] == 3 {
			distant++
		}
	}
	if distant < 56 {
		t.Errorf("BRRIP leader distant insertions = %d/64, want most", distant)
	}
	// Set 0 is the SRRIP leader: insertions at maxRRPV-1.
	p.OnInsert(0, 0, a)
	if p.rrpv[0] != 2 {
		t.Errorf("SRRIP leader insertion RRPV = %d, want 2", p.rrpv[0])
	}
}

func TestDRRIPAdaptsToThrash(t *testing.T) {
	// Cyclic thrash defeats SRRIP insertion; DRRIP must switch to
	// BRRIP and retain part of the working set.
	build := func() []uint64 {
		var vpns []uint64
		for rep := 0; rep < 300; rep++ {
			for v := uint64(0); v < 40; v++ { // 40 pages cycling in 32 entries
				vpns = append(vpns, v)
			}
		}
		return vpns
	}
	srripHits, _ := runSequence(t, NewSRRIP(), 32, 4, build())
	drripHits, _ := runSequence(t, NewDRRIP(), 32, 4, build())
	if drripHits <= srripHits {
		t.Errorf("DRRIP hits (%d) must beat SRRIP hits (%d) under cyclic thrash", drripHits, srripHits)
	}
}

func TestPerceptronReuseLearnsStreams(t *testing.T) {
	p := NewPerceptronReuse(1024)
	tl, err := tlb.New(tlb.Config{Name: "t", Entries: 8, Ways: 8, PageShift: 12}, p)
	if err != nil {
		t.Fatal(err)
	}
	hot := []uint64{1, 2, 3, 4}
	next := uint64(100)
	for rep := 0; rep < 500; rep++ {
		for _, h := range hot {
			a := &tlb.Access{PC: 0x4000, VPN: h}
			if _, hit := tl.Lookup(a); !hit {
				tl.Insert(a, h)
			}
		}
		a := &tlb.Access{PC: 0x8000, VPN: next}
		next++
		if _, hit := tl.Lookup(a); !hit {
			tl.Insert(a, a.VPN)
		}
	}
	st := tl.Stats()
	if float64(st.Hits)/float64(st.Accesses) < 0.7 {
		t.Errorf("perceptron hit ratio %.3f too low", float64(st.Hits)/float64(st.Accesses))
	}
	r, w := p.TableAccesses()
	if r == 0 || w == 0 {
		t.Error("perceptron table accounting not recording")
	}
}

func TestPerceptronSizePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-power-of-two size")
		}
	}()
	NewPerceptronReuse(1000)
}
