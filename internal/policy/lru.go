package policy

import "github.com/chirplab/chirp/internal/tlb"

// LRU is exact least-recently-used replacement — the policy recent TLB
// literature assumes (§I) and the baseline every paper number is
// normalised to.
type LRU struct {
	rec *tlb.Recency
}

// NewLRU returns an LRU policy.
func NewLRU() *LRU { return &LRU{} }

// Name implements tlb.Policy.
func (*LRU) Name() string { return "lru" }

// Attach implements tlb.Policy.
func (p *LRU) Attach(sets, ways int) { p.rec = tlb.NewRecency(sets, ways) }

// OnAccess implements tlb.Policy.
func (*LRU) OnAccess(*tlb.Access) {}

// PassiveOnAccess declares the empty OnAccess above to the TLB so the
// hot lookup path can skip the call (see tlb.PassiveOnAccess).
func (*LRU) PassiveOnAccess() {}

// OnHit implements tlb.Policy.
func (p *LRU) OnHit(set uint32, way int, _ *tlb.Access) { p.rec.Touch(set, way) }

// Victim implements tlb.Policy.
func (p *LRU) Victim(set uint32, _ *tlb.Access) int { return p.rec.LRU(set) }

// OnInsert implements tlb.Policy.
func (p *LRU) OnInsert(set uint32, way int, _ *tlb.Access) { p.rec.Touch(set, way) }
