// Package policy implements the baseline TLB replacement policies the
// paper evaluates against CHiRP: true-LRU, Random, SRRIP [Jaleel et
// al., ISCA 2010], SHiP adapted to the TLB as described in §II-B/§III
// [Wu et al., MICRO 2011], GHRP adapted to the TLB [Mirbagher-Ajorpaz
// et al., ISCA 2018], plus an offline Bélády OPT upper bound as an
// extension.
//
// CHiRP itself — the paper's contribution — lives in internal/core.
package policy

// Mix64 is a 64-bit finalizer-style hash (splitmix64 finalizer). All
// predictive policies use it to index their tables so aliasing is
// uniform and reproducible.
//
//chirp:hotpath
func Mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SatCounter is an n-bit saturating counter stored in a uint8.
type SatCounter struct {
	v   uint8
	max uint8
}

// Inc increments toward the maximum.
func (c *SatCounter) Inc() {
	if c.v < c.max {
		c.v++
	}
}

// Dec decrements toward zero.
func (c *SatCounter) Dec() {
	if c.v > 0 {
		c.v--
	}
}

// Value returns the current counter value.
func (c *SatCounter) Value() uint8 { return c.v }

// CounterTable is a table of n-bit saturating counters.
type CounterTable struct {
	counters []uint8
	max      uint8
	mask     uint64
}

// NewCounterTable builds a table with size entries (must be a power of
// two) of bits-wide counters, all initialised to zero.
func NewCounterTable(size int, bits uint) *CounterTable {
	if size <= 0 || size&(size-1) != 0 {
		panic("policy: counter table size must be a positive power of two")
	}
	if bits == 0 || bits > 8 {
		panic("policy: counter width must be 1..8 bits")
	}
	return &CounterTable{
		counters: make([]uint8, size),
		max:      uint8(1<<bits - 1),
		mask:     uint64(size - 1),
	}
}

// Size returns the number of counters.
func (t *CounterTable) Size() int { return len(t.counters) }

// Max returns the saturation value.
func (t *CounterTable) Max() uint8 { return t.max }

// Index maps an arbitrary signature onto a table slot.
//
//chirp:hotpath
func (t *CounterTable) Index(sig uint64) uint64 { return Mix64(sig) & t.mask }

// Read returns the counter at idx.
//
//chirp:hotpath
func (t *CounterTable) Read(idx uint64) uint8 { return t.counters[idx] }

// Inc saturating-increments the counter at idx.
//
//chirp:hotpath
func (t *CounterTable) Inc(idx uint64) {
	if c := t.counters[idx]; c < t.max {
		t.counters[idx] = c + 1
	}
}

// Dec saturating-decrements the counter at idx.
//
//chirp:hotpath
func (t *CounterTable) Dec(idx uint64) {
	if c := t.counters[idx]; c > 0 {
		t.counters[idx] = c - 1
	}
}

// StorageBits returns the table's storage cost in bits, for the
// hardware-budget reports.
func (t *CounterTable) StorageBits() int {
	bits := 0
	for m := t.max; m > 0; m >>= 1 {
		bits++
	}
	return bits * len(t.counters)
}
