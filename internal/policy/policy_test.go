package policy

import (
	"testing"
	"testing/quick"

	"github.com/chirplab/chirp/internal/tlb"
)

func TestMix64Distributes(t *testing.T) {
	// Consecutive inputs must not collide in the low bits.
	seen := map[uint64]bool{}
	for i := uint64(0); i < 4096; i++ {
		seen[Mix64(i)&0xfff] = true
	}
	if len(seen) < 2500 {
		t.Errorf("Mix64 low 12 bits cover only %d/4096 slots for consecutive inputs", len(seen))
	}
	if Mix64(1) == Mix64(2) {
		t.Error("trivial collision")
	}
}

func TestSatCounter(t *testing.T) {
	c := SatCounter{max: 3}
	for i := 0; i < 10; i++ {
		c.Inc()
	}
	if c.Value() != 3 {
		t.Errorf("saturated value = %d, want 3", c.Value())
	}
	for i := 0; i < 10; i++ {
		c.Dec()
	}
	if c.Value() != 0 {
		t.Errorf("floored value = %d, want 0", c.Value())
	}
}

func TestCounterTable(t *testing.T) {
	tb := NewCounterTable(16, 2)
	if tb.Size() != 16 || tb.Max() != 3 {
		t.Fatalf("size/max = %d/%d, want 16/3", tb.Size(), tb.Max())
	}
	idx := tb.Index(0xdeadbeef)
	if idx >= 16 {
		t.Fatalf("Index out of range: %d", idx)
	}
	for i := 0; i < 5; i++ {
		tb.Inc(idx)
	}
	if tb.Read(idx) != 3 {
		t.Errorf("after 5 Incs counter = %d, want 3 (saturated)", tb.Read(idx))
	}
	for i := 0; i < 5; i++ {
		tb.Dec(idx)
	}
	if tb.Read(idx) != 0 {
		t.Errorf("after 5 Decs counter = %d, want 0", tb.Read(idx))
	}
	if got := tb.StorageBits(); got != 32 {
		t.Errorf("StorageBits = %d, want 32", got)
	}
}

func TestCounterTablePanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewCounterTable(0, 2) },
		func() { NewCounterTable(3, 2) },
		func() { NewCounterTable(16, 0) },
		func() { NewCounterTable(16, 9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for invalid counter table config")
				}
			}()
			f()
		}()
	}
}

// runSequence pushes a sequence of VPN accesses (with the given PC)
// through a small TLB under p and returns hits.
func runSequence(t *testing.T, p tlb.Policy, entries, ways int, vpns []uint64) (hits, misses uint64) {
	t.Helper()
	tl, err := tlb.New(tlb.Config{Name: "t", Entries: entries, Ways: ways, PageShift: 12}, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vpns {
		a := &tlb.Access{PC: 0x1000 + (v&7)*4, VPN: v}
		if _, hit := tl.Lookup(a); !hit {
			tl.Insert(a, v)
		}
	}
	st := tl.Stats()
	return st.Hits, st.Misses
}

func TestLRUEvictsLeastRecent(t *testing.T) {
	p := NewLRU()
	tl, err := tlb.New(tlb.Config{Name: "t", Entries: 4, Ways: 4, PageShift: 12}, p)
	if err != nil {
		t.Fatal(err)
	}
	touch := func(v uint64) {
		a := &tlb.Access{VPN: v}
		if _, hit := tl.Lookup(a); !hit {
			tl.Insert(a, v)
		}
	}
	for _, v := range []uint64{1, 2, 3, 4} {
		touch(v)
	}
	touch(1) // 2 is now LRU
	touch(5) // evicts 2
	if tl.Contains(2) {
		t.Error("LRU failed to evict least-recently-used VPN 2")
	}
	for _, v := range []uint64{1, 3, 4, 5} {
		if !tl.Contains(v) {
			t.Errorf("VPN %d should be resident", v)
		}
	}
}

func TestLRUCyclicThrash(t *testing.T) {
	// Classic LRU pathology: cyclic access to ways+1 items yields zero
	// hits after warmup.
	vpns := make([]uint64, 0, 500)
	for i := 0; i < 100; i++ {
		for v := uint64(0); v < 5; v++ {
			vpns = append(vpns, v*4) // same set (4 sets? entries=4, ways=4 → 1 set)
		}
	}
	hits, _ := runSequence(t, NewLRU(), 4, 4, vpns)
	if hits != 0 {
		t.Errorf("LRU on cyclic overload got %d hits, want 0", hits)
	}
	// Random keeps some residency on the same pattern.
	rhits, _ := runSequence(t, NewRandom(1), 4, 4, vpns)
	if rhits == 0 {
		t.Error("Random on cyclic overload got 0 hits; expected some")
	}
}

func TestRandomVictimInRange(t *testing.T) {
	f := func(seed uint64) bool {
		p := NewRandom(seed)
		p.Attach(4, 8)
		for i := 0; i < 100; i++ {
			if w := p.Victim(0, nil); w < 0 || w >= 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSRRIPScanResistance(t *testing.T) {
	// A small hot loop plus a long one-shot scan: SRRIP must keep more
	// of the hot loop resident than LRU.
	build := func() []uint64 {
		var vpns []uint64
		hot := []uint64{0, 8, 16, 24} // 4 hot pages in set 0 of an 8-set TLB
		for rep := 0; rep < 200; rep++ {
			for _, h := range hot {
				vpns = append(vpns, h, h, h) // reuse each hot page
			}
			// Scan through 8 never-reused pages mapping to set 0 — long
			// enough to flush LRU (8-way set), short enough that SRRIP's
			// ageing keeps the hot pages resident.
			for s := uint64(0); s < 8; s++ {
				vpns = append(vpns, 1000*8+(s+uint64(rep)*8)*8)
			}
		}
		return vpns
	}
	lruHits, _ := runSequence(t, NewLRU(), 64, 8, build())
	srripHits, _ := runSequence(t, NewSRRIP(), 64, 8, build())
	if srripHits <= lruHits {
		t.Errorf("SRRIP hits (%d) must beat LRU hits (%d) under scanning", srripHits, lruHits)
	}
}

func TestSRRIPVictimAging(t *testing.T) {
	p := NewSRRIP()
	p.Attach(1, 4)
	a := &tlb.Access{}
	// All inserted at RRPV 2; a victim search must age everyone to 3
	// and return way 0.
	for w := 0; w < 4; w++ {
		p.OnInsert(0, w, a)
	}
	if w := p.Victim(0, a); w != 0 {
		t.Errorf("victim = %d, want 0", w)
	}
	// Promote way 1; next victim must skip it... way 0 is already 3.
	p.OnHit(0, 1, a)
	if w := p.Victim(0, a); w != 0 {
		t.Errorf("victim after promote = %d, want 0", w)
	}
}

func TestSHiPLearnsDeadPCs(t *testing.T) {
	// One PC inserts pages that are never reused; another PC inserts
	// pages that are always reused. After warmup, SHiP must insert the
	// dead PC's pages at distant RRPV (immediately evictable).
	p := NewSHiP(1024)
	tl, err := tlb.New(tlb.Config{Name: "t", Entries: 8, Ways: 8, PageShift: 12}, p)
	if err != nil {
		t.Fatal(err)
	}
	const deadPC, livePC = 0x4000, 0x8000
	next := uint64(100)
	// Interleave: hot pages (reused) from livePC, streaming pages from
	// deadPC.
	hot := []uint64{1, 2, 3, 4}
	for rep := 0; rep < 400; rep++ {
		for _, h := range hot {
			a := &tlb.Access{PC: livePC, VPN: h}
			if _, hit := tl.Lookup(a); !hit {
				tl.Insert(a, h)
			}
		}
		a := &tlb.Access{PC: deadPC, VPN: next}
		next++
		if _, hit := tl.Lookup(a); !hit {
			tl.Insert(a, a.VPN)
		}
	}
	st := tl.Stats()
	// The 4 hot pages must stay resident: at least ~75% hit ratio.
	if float64(st.Hits)/float64(st.Accesses) < 0.7 {
		t.Errorf("SHiP hit ratio %.3f too low; dead-PC insertions are evicting the hot set", float64(st.Hits)/float64(st.Accesses))
	}
	for _, h := range hot {
		if !tl.Contains(h) {
			t.Errorf("hot VPN %d evicted by streaming insertions", h)
		}
	}
	r, w := p.TableAccesses()
	if r == 0 || w == 0 {
		t.Error("SHiP table accounting not recording")
	}
}

func TestSHiPVariantNames(t *testing.T) {
	if NewSHiP(64).Name() != "ship" {
		t.Error("ship name")
	}
	if NewSHiPUnlimited().Name() != "ship-unlimited" {
		t.Error("ship-unlimited name")
	}
	if NewSHiPSampled(64, 2).Name() != "ship-sampled" {
		t.Error("ship-sampled name")
	}
}

func TestSHiPUnlimitedNoAliasing(t *testing.T) {
	p := NewSHiPUnlimited()
	p.Attach(8, 8)
	// Train two different signatures in opposite directions; with the
	// map-backed SHCT they can never alias.
	p.shctInc(1)
	p.shctInc(1)
	p.shctDec(2)
	if p.shctRead(1) != 2 {
		t.Errorf("sig 1 counter = %d, want 2", p.shctRead(1))
	}
	if p.shctRead(2) != 0 {
		t.Errorf("sig 2 counter = %d, want 0", p.shctRead(2))
	}
}

func TestSHiPSampledOnlyPredictsSampledSets(t *testing.T) {
	p := NewSHiPSampled(1024, 2) // predicts sets ≡ 0 (mod 4)
	if !p.predicted(0) || !p.predicted(4) {
		t.Error("sets 0 and 4 must be predicted")
	}
	if p.predicted(1) || p.predicted(3) || p.predicted(7) {
		t.Error("non-multiple-of-4 sets must not be predicted")
	}
}

func TestGHRPDistinguishesBranchContexts(t *testing.T) {
	// The same access PC preceded by different branch histories must
	// produce different signatures.
	g := NewGHRP(4096)
	g.Attach(8, 8)
	g.OnBranch(0x100, true, false, true, 0x200)
	s1 := g.signature(0x5000)
	g.OnBranch(0x300, true, false, false, 0x400)
	s2 := g.signature(0x5000)
	if s1 == s2 {
		t.Error("branch history must change the GHRP signature")
	}
}

func TestGHRPVictimPrefersDead(t *testing.T) {
	g := NewGHRP(4096)
	g.Attach(1, 4)
	a := &tlb.Access{PC: 0x1000}
	for w := 0; w < 4; w++ {
		g.OnInsert(0, w, a)
	}
	// Force way 2 to look dead.
	g.dead[2] = true
	if w := g.Victim(0, a); w != 2 {
		t.Errorf("victim = %d, want dead way 2", w)
	}
	// With no dead entries, fall back to LRU (way 0 was touched first).
	g.dead[2] = false
	if w := g.Victim(0, a); w != 0 {
		t.Errorf("LRU fallback victim = %d, want 0", w)
	}
}

func TestGHRPTableTrafficOnEveryHit(t *testing.T) {
	g := NewGHRP(4096)
	tl, err := tlb.New(tlb.Config{Name: "t", Entries: 64, Ways: 8, PageShift: 12}, g)
	if err != nil {
		t.Fatal(err)
	}
	a := &tlb.Access{PC: 0x1000, VPN: 5}
	tl.Lookup(a)
	tl.Insert(a, 5)
	r0, w0 := g.TableAccesses()
	for i := 0; i < 10; i++ {
		tl.Lookup(a)
	}
	r1, w1 := g.TableAccesses()
	if r1-r0 < 10 || w1-w0 < 10 {
		t.Errorf("GHRP must read+write tables on every hit: Δreads=%d Δwrites=%d", r1-r0, w1-w0)
	}
}

func TestOPTOracleNextUse(t *testing.T) {
	vpns := []uint64{1, 2, 1, 3, 2, 1}
	o := BuildOracle(vpns)
	want := []uint64{2, 4, 5, NeverUsed, NeverUsed, NeverUsed}
	for i, w := range want {
		if o.nextUse[i] != w {
			t.Errorf("nextUse[%d] = %d, want %d", i, o.nextUse[i], w)
		}
	}
}

func TestOPTBeatsLRUOnCycle(t *testing.T) {
	// Cyclic access to 5 pages in a 4-way set: LRU gets 0 hits, OPT
	// must keep 3 of them resident (hit ratio 3/5 asymptotically).
	var vpns []uint64
	for rep := 0; rep < 100; rep++ {
		for v := uint64(0); v < 5; v++ {
			vpns = append(vpns, v*4)
		}
	}
	oracle := BuildOracle(vpns)
	p := NewOPT(oracle)
	optHits, _ := runSequence(t, p, 4, 4, vpns)
	lruHits, _ := runSequence(t, NewLRU(), 4, 4, vpns)
	if lruHits != 0 {
		t.Fatalf("LRU hits = %d, want 0 on cyclic overload", lruHits)
	}
	if optHits < 250 {
		t.Errorf("OPT hits = %d, want ≥ 250 of 500 accesses", optHits)
	}
}

func TestOPTIsUpperBound(t *testing.T) {
	// On a pseudo-random but skewed stream, OPT must beat every online
	// policy we ship.
	rng := newTestRNG(77)
	vpns := make([]uint64, 6000)
	for i := range vpns {
		vpns[i] = uint64(rng.next() % 96)
	}
	oracle := BuildOracle(filterL2Stream(t, vpns))
	_ = oracle
	// Drive policies over the same raw stream with a tiny TLB.
	policies := []tlb.Policy{NewLRU(), NewRandom(3), NewSRRIP(), NewSHiP(1024), NewOPT(BuildOracle(vpns))}
	best := map[string]uint64{}
	for _, p := range policies {
		hits, _ := runSequence(t, p, 32, 8, vpns)
		best[p.Name()] = hits
	}
	for name, hits := range best {
		if name == "opt" {
			continue
		}
		if hits > best["opt"] {
			t.Errorf("policy %s (%d hits) beat OPT (%d hits)", name, hits, best["opt"])
		}
	}
}

// filterL2Stream would model L1 filtering; for the upper-bound test the
// raw stream is the L2 stream, so it is the identity. Kept to document
// the invariant that the oracle must be built from the same stream the
// policy sees.
func filterL2Stream(t *testing.T, vpns []uint64) []uint64 {
	t.Helper()
	return vpns
}

// newTestRNG is a tiny local generator so this test does not depend on
// package trace.
type testRNG struct{ s uint64 }

func newTestRNG(seed uint64) *testRNG { return &testRNG{s: seed*2685821657736338717 + 1} }
func (r *testRNG) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}
