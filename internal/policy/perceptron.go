package policy

import "github.com/chirplab/chirp/internal/tlb"

// PerceptronReuse adapts perceptron-based reuse prediction [Teran,
// Wang & Jiménez, MICRO 2016; Jiménez & Teran's multiperspective
// follow-up, both cited by the paper §II-D] to the L2 TLB: several
// feature tables of small signed weights are indexed by different
// hashes of the access context (PC slices, the VPN's low bits, and a
// short PC history), their weights are summed and thresholded to
// predict death, and training adjusts only when the prediction was
// wrong or the margin was small.
//
// It is an extension baseline: stronger than one-table SHiP-style
// counters, but unlike CHiRP it reads several tables per prediction —
// the latency/energy trade the paper's single-table signature design
// avoids (§II).
type PerceptronReuse struct {
	ways int

	tables  [][]int8
	size    int
	theta   int
	history uint64 // folded recent-PC history feature

	sig  [][4]uint16 // per-entry feature indices at last access
	yout []int16     // per-entry sum at last prediction
	dead []bool
	rec  *tlb.Recency

	reads, writes uint64
}

// perceptronFeatures is the number of feature tables.
const perceptronFeatures = 4

// NewPerceptronReuse builds the predictor with size-entry weight
// tables (power of two).
func NewPerceptronReuse(size int) *PerceptronReuse {
	if size <= 0 || size&(size-1) != 0 {
		panic("policy: perceptron table size must be a power of two")
	}
	p := &PerceptronReuse{size: size, theta: 6}
	p.tables = make([][]int8, perceptronFeatures)
	for i := range p.tables {
		p.tables[i] = make([]int8, size)
	}
	return p
}

// Name implements tlb.Policy.
func (*PerceptronReuse) Name() string { return "perceptron" }

// Attach implements tlb.Policy.
func (p *PerceptronReuse) Attach(sets, ways int) {
	p.ways = ways
	n := sets * ways
	p.sig = make([][4]uint16, n)
	p.yout = make([]int16, n)
	p.dead = make([]bool, n)
	p.rec = tlb.NewRecency(sets, ways)
}

// features derives the four table indices for an access.
func (p *PerceptronReuse) features(a *tlb.Access) [4]uint16 {
	m := uint64(p.size - 1)
	return [4]uint16{
		uint16(Mix64(a.PC>>2) & m),
		uint16(Mix64(a.PC>>6^0xabcd) & m),
		uint16(Mix64(a.VPN&0xff^0x1234) & m),
		uint16(Mix64(p.history) & m),
	}
}

// predict sums the feature weights; above-threshold sums predict dead.
func (p *PerceptronReuse) predict(f [4]uint16) (sum int, dead bool) {
	p.reads++
	for i := range p.tables {
		sum += int(p.tables[i][f[i]])
	}
	return sum, sum > 0
}

// train applies the perceptron rule: update weights toward the
// outcome only on mispredictions or small margins.
func (p *PerceptronReuse) train(f [4]uint16, ysum int, dead bool) {
	mispredict := (ysum > 0) != dead
	if !mispredict && abs(ysum) > p.theta {
		return
	}
	p.writes++
	for i := range p.tables {
		w := &p.tables[i][f[i]]
		if dead {
			if *w < 31 {
				*w++
			}
		} else {
			if *w > -32 {
				*w--
			}
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// OnAccess implements tlb.Policy: fold the PC into the history
// feature.
func (p *PerceptronReuse) OnAccess(a *tlb.Access) {
	p.history = p.history<<3 ^ (a.PC >> 2 & 0x7) ^ p.history>>61
}

// OnHit implements tlb.Policy: the entry proved live — train its last
// features toward live, then re-predict under the current context.
func (p *PerceptronReuse) OnHit(set uint32, way int, a *tlb.Access) {
	p.rec.Touch(set, way)
	i := int(set)*p.ways + way
	p.train(p.sig[i], int(p.yout[i]), false)
	f := p.features(a)
	sum, dead := p.predict(f)
	p.sig[i], p.yout[i], p.dead[i] = f, int16(sum), dead
}

// Victim implements tlb.Policy: predicted-dead first, else LRU (whose
// eviction trains the victim's features toward dead).
func (p *PerceptronReuse) Victim(set uint32, _ *tlb.Access) int {
	base := int(set) * p.ways
	for w := 0; w < p.ways; w++ {
		if p.dead[base+w] {
			return w
		}
	}
	way := p.rec.LRU(set)
	i := base + way
	p.train(p.sig[i], int(p.yout[i]), true)
	return way
}

// OnInsert implements tlb.Policy.
func (p *PerceptronReuse) OnInsert(set uint32, way int, a *tlb.Access) {
	p.rec.Touch(set, way)
	i := int(set)*p.ways + way
	f := p.features(a)
	sum, dead := p.predict(f)
	p.sig[i], p.yout[i], p.dead[i] = f, int16(sum), dead
}

// TableAccesses implements tlb.TableAccounting.
func (p *PerceptronReuse) TableAccesses() (reads, writes uint64) { return p.reads, p.writes }
