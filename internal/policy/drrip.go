package policy

import "github.com/chirplab/chirp/internal/tlb"

// DRRIP is Dynamic RRIP [Jaleel et al., ISCA 2010]: set-duelling
// between SRRIP insertion (long re-reference) and BRRIP insertion
// (distant re-reference with an occasional long), with a policy
// selector counter trained by misses in the dedicated leader sets. It
// extends the paper's SRRIP baseline with the thrash-adaptive variant
// from the same original paper.
type DRRIP struct {
	ways int
	sets int
	rrpv []uint8

	// psel is the policy selector: ≥0 favours SRRIP, <0 favours BRRIP.
	psel    int
	pselMax int

	// brripCtr throttles BRRIP's rare long-re-reference insertions
	// (1 in 32).
	brripCtr uint32

	maxRRPV uint8
}

// NewDRRIP returns a 2-bit DRRIP with a 10-bit selector.
func NewDRRIP() *DRRIP { return &DRRIP{maxRRPV: 3, pselMax: 512} }

// Name implements tlb.Policy.
func (*DRRIP) Name() string { return "drrip" }

// Attach implements tlb.Policy.
func (p *DRRIP) Attach(sets, ways int) {
	p.sets, p.ways = sets, ways
	p.rrpv = make([]uint8, sets*ways)
	for i := range p.rrpv {
		p.rrpv[i] = p.maxRRPV
	}
}

// leader classifies a set: 0 = SRRIP leader, 1 = BRRIP leader,
// 2 = follower. One set in 32 leads each policy, in the constituency
// pattern of the original paper.
func (p *DRRIP) leader(set uint32) int {
	switch set & 31 {
	case 0:
		return 0
	case 16:
		return 1
	default:
		return 2
	}
}

// OnAccess implements tlb.Policy.
func (*DRRIP) OnAccess(*tlb.Access) {}

// PassiveOnAccess declares the empty OnAccess above to the TLB so the
// hot lookup path can skip the call (see tlb.PassiveOnAccess).
func (*DRRIP) PassiveOnAccess() {}

// OnHit implements tlb.Policy: hit promotion.
func (p *DRRIP) OnHit(set uint32, way int, _ *tlb.Access) {
	p.rrpv[int(set)*p.ways+way] = 0
}

// Victim implements tlb.Policy: the SRRIP scan, training the selector
// when the miss falls in a leader set (a miss is a vote against the
// leader's policy).
func (p *DRRIP) Victim(set uint32, _ *tlb.Access) int {
	switch p.leader(set) {
	case 0: // SRRIP leader missed → nudge toward BRRIP
		if p.psel > -p.pselMax {
			p.psel--
		}
	case 1: // BRRIP leader missed → nudge toward SRRIP
		if p.psel < p.pselMax {
			p.psel++
		}
	}
	base := int(set) * p.ways
	for {
		for w := 0; w < p.ways; w++ {
			if p.rrpv[base+w] == p.maxRRPV {
				return w
			}
		}
		for w := 0; w < p.ways; w++ {
			p.rrpv[base+w]++
		}
	}
}

// OnInsert implements tlb.Policy: leader sets always use their own
// insertion policy; followers use the selector's winner.
func (p *DRRIP) OnInsert(set uint32, way int, _ *tlb.Access) {
	useBRRIP := false
	switch p.leader(set) {
	case 0:
		useBRRIP = false
	case 1:
		useBRRIP = true
	default:
		useBRRIP = p.psel < 0
	}
	rrpv := p.maxRRPV - 1 // SRRIP: long re-reference
	if useBRRIP {
		rrpv = p.maxRRPV // BRRIP: distant…
		p.brripCtr++
		if p.brripCtr&31 == 0 {
			rrpv = p.maxRRPV - 1 // …with an occasional long
		}
	}
	p.rrpv[int(set)*p.ways+way] = rrpv
}

// PSel exposes the selector state (for tests).
func (p *DRRIP) PSel() int { return p.psel }
