package policy

import "github.com/chirplab/chirp/internal/tlb"

// SDBP is Sampling-based Dead Block Prediction [Khan, Tian & Jiménez,
// MICRO 2010] adapted to the TLB. The original learns access/eviction
// behaviour from a small *sampler* — a handful of shadow sets with
// their own LRU stacks — and generalises the learned PC behaviour to
// the whole structure.
//
// The paper's §II-B argues exactly why this generalisation fails for
// L2 TLBs: in the LLC one sampled set sees the same PCs that touch
// many other sets, but a TLB entry covers a 4 KB page, so the data one
// PC touches maps to far fewer TLB entries and set sampling no longer
// generalises. This implementation exists to reproduce that negative
// result (the `sdbp` row of the extended baseline comparison).
type SDBP struct {
	ways int
	sets int

	// samplerShift selects every (1<<samplerShift)-th set for sampling.
	samplerShift uint
	// Sampler shadow state, only for sampled sets: partial tags and PCs
	// with true-LRU.
	samplerTags [][]uint16
	samplerPCs  [][]uint16
	samplerLRU  [][]uint8
	samplerWays int

	tables [3]*CounterTable
	// deadThreshold: summed counter value strictly above it ⇒ dead.
	deadThreshold uint8

	dead []bool
	rec  *tlb.Recency

	reads, writes uint64
}

// NewSDBP builds the sampling predictor with three tableSize-entry
// 2-bit tables, sampling one set in 1<<samplerShift.
func NewSDBP(tableSize int, samplerShift uint) *SDBP {
	p := &SDBP{samplerShift: samplerShift, samplerWays: 8, deadThreshold: 7}
	for i := range p.tables {
		p.tables[i] = NewCounterTable(tableSize, 2)
	}
	return p
}

// Name implements tlb.Policy.
func (*SDBP) Name() string { return "sdbp" }

// Attach implements tlb.Policy.
func (p *SDBP) Attach(sets, ways int) {
	p.sets, p.ways = sets, ways
	p.dead = make([]bool, sets*ways)
	p.rec = tlb.NewRecency(sets, ways)
	n := sets >> p.samplerShift
	if n == 0 {
		n = 1
	}
	p.samplerTags = make([][]uint16, n)
	p.samplerPCs = make([][]uint16, n)
	p.samplerLRU = make([][]uint8, n)
	for i := range p.samplerTags {
		p.samplerTags[i] = make([]uint16, p.samplerWays)
		p.samplerPCs[i] = make([]uint16, p.samplerWays)
		p.samplerLRU[i] = make([]uint8, p.samplerWays)
		for w := range p.samplerLRU[i] {
			p.samplerLRU[i][w] = uint8(w)
		}
	}
}

// sampled reports whether set feeds the sampler and returns its
// sampler row.
func (p *SDBP) sampled(set uint32) (int, bool) {
	if set&(1<<p.samplerShift-1) != 0 {
		return 0, false
	}
	row := int(set >> p.samplerShift)
	if row >= len(p.samplerTags) {
		return 0, false
	}
	return row, true
}

func (p *SDBP) pcSig(pc uint64) uint16 { return uint16(Mix64(pc >> 2)) }

func (p *SDBP) indices(sig uint16) [3]uint64 {
	var idx [3]uint64
	for i := range idx {
		idx[i] = p.tables[i].Index(uint64(sig) + uint64(i)*0x9e3779b97f4a7c15)
	}
	return idx
}

func (p *SDBP) predictDead(sig uint16) bool {
	p.reads++
	idx := p.indices(sig)
	sum := uint8(0)
	for i := range p.tables {
		sum += p.tables[i].Read(idx[i])
	}
	return sum > p.deadThreshold
}

func (p *SDBP) train(sig uint16, dead bool) {
	p.writes++
	idx := p.indices(sig)
	for i := range p.tables {
		if dead {
			p.tables[i].Inc(idx[i])
		} else {
			p.tables[i].Dec(idx[i])
		}
	}
}

// samplerAccess simulates the shadow set: hit trains live; a miss
// evicts the shadow LRU and trains its inserting PC dead.
func (p *SDBP) samplerAccess(row int, vpn, pc uint64) {
	tag := uint16(Mix64(vpn) >> 48)
	sig := p.pcSig(pc)
	tags, pcs, lru := p.samplerTags[row], p.samplerPCs[row], p.samplerLRU[row]
	touch := func(way int) {
		pos := lru[way]
		for w := range lru {
			if lru[w] < pos {
				lru[w]++
			}
		}
		lru[way] = 0
	}
	for w := range tags {
		if tags[w] == tag {
			p.train(pcs[w], false) // reused: its inserting PC looks live
			pcs[w] = sig
			touch(w)
			return
		}
	}
	victim := 0
	for w := range lru {
		if lru[w] >= lru[victim] {
			victim = w
		}
	}
	if tags[victim] != 0 {
		p.train(pcs[victim], true) // evicted unused: dead
	}
	tags[victim] = tag
	pcs[victim] = sig
	touch(victim)
}

// OnAccess implements tlb.Policy: feed the sampler when the set is
// sampled.
func (p *SDBP) OnAccess(a *tlb.Access) {
	if row, ok := p.sampled(a.Set); ok {
		p.samplerAccess(row, a.VPN, a.PC)
	}
}

// OnHit implements tlb.Policy: refresh the prediction from the tables
// (SDBP predicts on every access).
func (p *SDBP) OnHit(set uint32, way int, a *tlb.Access) {
	p.rec.Touch(set, way)
	p.dead[int(set)*p.ways+way] = p.predictDead(p.pcSig(a.PC))
}

// Victim implements tlb.Policy: predicted-dead first, else LRU.
func (p *SDBP) Victim(set uint32, _ *tlb.Access) int {
	base := int(set) * p.ways
	for w := 0; w < p.ways; w++ {
		if p.dead[base+w] {
			return w
		}
	}
	return p.rec.LRU(set)
}

// OnInsert implements tlb.Policy.
func (p *SDBP) OnInsert(set uint32, way int, a *tlb.Access) {
	p.rec.Touch(set, way)
	p.dead[int(set)*p.ways+way] = p.predictDead(p.pcSig(a.PC))
}

// TableAccesses implements tlb.TableAccounting.
func (p *SDBP) TableAccesses() (reads, writes uint64) { return p.reads, p.writes }
