package policy

import "github.com/chirplab/chirp/internal/tlb"

// GHRP is Global History Reuse Prediction [Mirbagher-Ajorpaz et al.,
// ISCA 2018] — the state-of-the-art predictive replacement policy for
// instruction caches and BTBs — adapted to the L2 TLB (§II-C). Like a
// branch predictor it folds the global history of conditional branch
// outcomes together with low-order branch address bits into a
// signature; three skewed tables of saturating counters are read and
// summed on *every* access to predict whether the touched entry is
// dead, and trained on evictions (dead) and reuses (live).
//
// The three-table organisation is what CHiRP's single-table signature
// later eliminates (§VI-H: CHiRP reduces hardware by two-thirds).
type GHRP struct {
	ways int

	// hist is the global branch-history state; it is the stream-pure
	// part of GHRP, split out so replay drivers can precompute the
	// signature sequence of a captured stream (see GHRPHistory).
	hist GHRPHistory

	// External-signature mode (tlb.SignatureFed): when extSigs is set,
	// the driver feeds each access's signature and hist stays frozen.
	extSigs bool
	extSig  uint64

	tables [3]*CounterTable
	// deadThreshold: a summed counter value strictly above it predicts
	// dead (counters are 2-bit, so the sum ranges 0..9).
	deadThreshold uint8

	sig  []uint64 // per-entry signature at last access
	dead []bool   // per-entry dead prediction
	rec  *tlb.Recency

	reads, writes uint64
}

// NewGHRP returns GHRP with three tableSize-entry (power of two)
// tables of 2-bit counters.
func NewGHRP(tableSize int) *GHRP {
	g := &GHRP{deadThreshold: 7}
	for i := range g.tables {
		g.tables[i] = NewCounterTable(tableSize, 2)
	}
	return g
}

// Name implements tlb.Policy.
func (*GHRP) Name() string { return "ghrp" }

// Attach implements tlb.Policy.
func (g *GHRP) Attach(sets, ways int) {
	g.ways = ways
	g.sig = make([]uint64, sets*ways)
	g.dead = make([]bool, sets*ways)
	g.rec = tlb.NewRecency(sets, ways)
}

// GHRPHistory is GHRP's global branch-history state, split out of the
// policy because it is a pure function of the committed branch stream:
// a replay driver can run one GHRPHistory over a captured stream once
// and record Signature per access — GHRP's histories change only on
// branches, so a single value per access covers the demand hit/insert
// and any prefetch fills the access triggers. The zero value is the
// reset state.
type GHRPHistory struct {
	// outcomeHist is the global conditional-branch outcome history.
	outcomeHist uint64
	// addrHist folds low-order branch address bits, one nibble per
	// branch.
	addrHist uint64
}

// OnBranch records one committed branch: conditional outcomes enter
// the outcome history, and every branch folds address bits, as the
// ISCA 2018 design does.
//
//chirp:hotpath
func (h *GHRPHistory) OnBranch(pc uint64, conditional, taken bool) {
	if conditional {
		bit := uint64(0)
		if taken {
			bit = 1
		}
		h.outcomeHist = h.outcomeHist<<1 | bit
	}
	h.addrHist = h.addrHist<<4 | (pc>>2)&0xf
}

// Signature combines the accessing PC with both global histories.
//
//chirp:hotpath
func (h *GHRPHistory) Signature(pc uint64) uint64 {
	return (pc >> 2) ^ (h.outcomeHist & 0xffff) ^ (h.addrHist&0xffffffff)<<13
}

// OnBranch implements tlb.BranchObserver.
func (g *GHRP) OnBranch(pc uint64, conditional, _ /*indirect*/, taken bool, _ uint64) {
	g.hist.OnBranch(pc, conditional, taken)
}

// signature returns the current access's signature: the fed value in
// external-signature mode, otherwise computed from the live histories.
//
//chirp:hotpath
func (g *GHRP) signature(pc uint64) uint64 {
	if g.extSigs {
		return g.extSig
	}
	return g.hist.Signature(pc)
}

// BeginExternalSignatures implements tlb.SignatureFed.
func (g *GHRP) BeginExternalSignatures() { g.extSigs = true }

// SetSignatures implements tlb.SignatureFed. GHRP's histories advance
// only on branches, so one signature covers the demand access and its
// prefetch fills alike; the prefetch value is ignored.
//
//chirp:hotpath
func (g *GHRP) SetSignatures(demand, _ uint64) { g.extSig = demand }

// indices derives the three skewed table indices from a signature.
func (g *GHRP) indices(sig uint64) [3]uint64 {
	var idx [3]uint64
	for i := range idx {
		idx[i] = g.tables[i].Index(sig + uint64(i)*0x9e3779b97f4a7c15)
	}
	return idx
}

// predictDead sums the three counters for sig and thresholds.
func (g *GHRP) predictDead(sig uint64) bool {
	idx := g.indices(sig)
	// One prediction = one parallel read of the three banks; Figure 11
	// counts prediction-table access events, not banks.
	g.reads++
	sum := uint8(0)
	for i := range g.tables {
		sum += g.tables[i].Read(idx[i])
	}
	return sum > g.deadThreshold
}

// train moves the counters for sig toward dead (true) or live (false).
func (g *GHRP) train(sig uint64, dead bool) {
	idx := g.indices(sig)
	g.writes++
	for i := range g.tables {
		if dead {
			g.tables[i].Inc(idx[i])
		} else {
			g.tables[i].Dec(idx[i])
		}
	}
}

// OnAccess implements tlb.Policy.
func (*GHRP) OnAccess(*tlb.Access) {}

// PassiveOnAccess declares the empty OnAccess above to the TLB so the
// hot lookup path can skip the call (see tlb.PassiveOnAccess).
func (*GHRP) PassiveOnAccess() {}

// OnHit implements tlb.Policy: the entry proved live under its stored
// signature — train toward live, then re-predict under the current
// signature. This read+write on every hit is exactly the table
// traffic Figure 11 charges GHRP for.
func (g *GHRP) OnHit(set uint32, way int, a *tlb.Access) {
	g.rec.Touch(set, way)
	i := int(set)*g.ways + way
	g.train(g.sig[i], false)
	sig := g.signature(a.PC)
	g.sig[i] = sig
	g.dead[i] = g.predictDead(sig)
}

// Victim implements tlb.Policy: prefer a predicted-dead entry, else
// LRU; train the LRU victim's signature toward dead.
func (g *GHRP) Victim(set uint32, _ *tlb.Access) int {
	base := int(set) * g.ways
	for w := 0; w < g.ways; w++ {
		if g.dead[base+w] {
			return w
		}
	}
	way := g.rec.LRU(set)
	g.train(g.sig[base+way], true)
	return way
}

// OnInsert implements tlb.Policy: predict the incoming entry under the
// current signature.
func (g *GHRP) OnInsert(set uint32, way int, a *tlb.Access) {
	g.rec.Touch(set, way)
	i := int(set)*g.ways + way
	sig := g.signature(a.PC)
	g.sig[i] = sig
	g.dead[i] = g.predictDead(sig)
}

// TableAccesses implements tlb.TableAccounting.
func (g *GHRP) TableAccesses() (reads, writes uint64) { return g.reads, g.writes }
