package policy

import "github.com/chirplab/chirp/internal/tlb"

// OPT implements Bélády's optimal replacement [Bélády 1966] for the
// L2 TLB as an offline upper bound (extension X1 in DESIGN.md): on a
// miss it evicts the resident entry whose next use lies farthest in
// the future. It needs an Oracle built from a first pass over the L2
// access stream; because the L1 TLBs always use LRU, the L2 access
// stream is identical for every L2 policy, so one pre-pass serves all.
type OPT struct {
	oracle *Oracle
	ways   int
	pos    uint64   // index of the current access within the oracle stream
	next   []uint64 // per-entry next-use position (NeverUsed if none)
}

// NeverUsed marks an entry that is never accessed again.
const NeverUsed = ^uint64(0)

// Oracle holds, for every position i of the L2 TLB access stream, the
// position of the next access to the same VPN.
type Oracle struct {
	nextUse []uint64
}

// BuildOracle computes next-use positions for a VPN access sequence.
func BuildOracle(vpns []uint64) *Oracle {
	next := make([]uint64, len(vpns))
	last := make(map[uint64]int, 1024)
	for i := len(vpns) - 1; i >= 0; i-- {
		if j, ok := last[vpns[i]]; ok {
			next[i] = uint64(j)
		} else {
			next[i] = NeverUsed
		}
		last[vpns[i]] = i
	}
	return &Oracle{nextUse: next}
}

// Len returns the length of the recorded access stream.
func (o *Oracle) Len() int { return len(o.nextUse) }

// NewOPT returns the optimal policy driven by oracle.
func NewOPT(oracle *Oracle) *OPT { return &OPT{oracle: oracle} }

// Name implements tlb.Policy.
func (*OPT) Name() string { return "opt" }

// Attach implements tlb.Policy.
func (p *OPT) Attach(sets, ways int) {
	p.ways = ways
	p.next = make([]uint64, sets*ways)
}

// OnAccess implements tlb.Policy: advance the stream cursor.
func (p *OPT) OnAccess(*tlb.Access) { p.pos++ }

func (p *OPT) nextUseOfCurrent() uint64 {
	i := p.pos - 1 // OnAccess already advanced past the current access
	if i >= uint64(p.oracle.Len()) {
		// The simulated stream ran past the oracle (should not happen
		// when the pre-pass used the same trace); treat as never used.
		return NeverUsed
	}
	return p.oracle.nextUse[i]
}

// OnHit implements tlb.Policy.
func (p *OPT) OnHit(set uint32, way int, _ *tlb.Access) {
	p.next[int(set)*p.ways+way] = p.nextUseOfCurrent()
}

// Victim implements tlb.Policy: evict the entry reused farthest in the
// future (or never).
func (p *OPT) Victim(set uint32, _ *tlb.Access) int {
	base := int(set) * p.ways
	best, bestNext := 0, uint64(0)
	for w := 0; w < p.ways; w++ {
		if n := p.next[base+w]; n >= bestNext {
			best, bestNext = w, n
			if n == NeverUsed {
				break
			}
		}
	}
	return best
}

// OnInsert implements tlb.Policy.
func (p *OPT) OnInsert(set uint32, way int, _ *tlb.Access) {
	p.next[int(set)*p.ways+way] = p.nextUseOfCurrent()
}
