package policy

import "github.com/chirplab/chirp/internal/tlb"

// SRRIP is Static Re-Reference Interval Prediction [Jaleel et al.,
// ISCA 2010] adapted from cache blocks to TLB entries (§II-A). Every
// entry carries a 2-bit re-reference prediction value (RRPV); entries
// are inserted with a long re-reference prediction, promoted on hits,
// and the victim is the first entry predicted for distant re-reference
// (RRPV == 3), ageing the whole set until one exists.
type SRRIP struct {
	ways int
	rrpv []uint8 // sets × ways

	// maxRRPV is 3 for the canonical 2-bit policy.
	maxRRPV uint8
	// insertRRPV is the prediction given to new entries (maxRRPV-1 =
	// "long" in the SRRIP-HP configuration the paper uses).
	insertRRPV uint8
}

// NewSRRIP returns a 2-bit SRRIP-HP policy.
func NewSRRIP() *SRRIP { return &SRRIP{maxRRPV: 3, insertRRPV: 2} }

// Name implements tlb.Policy.
func (*SRRIP) Name() string { return "srrip" }

// Attach implements tlb.Policy.
func (p *SRRIP) Attach(sets, ways int) {
	p.ways = ways
	p.rrpv = make([]uint8, sets*ways)
	for i := range p.rrpv {
		p.rrpv[i] = p.maxRRPV
	}
}

// OnAccess implements tlb.Policy.
func (*SRRIP) OnAccess(*tlb.Access) {}

// PassiveOnAccess declares the empty OnAccess above to the TLB so the
// hot lookup path can skip the call (see tlb.PassiveOnAccess).
func (*SRRIP) PassiveOnAccess() {}

// OnHit implements tlb.Policy. Hit promotion: RRPV ← 0.
func (p *SRRIP) OnHit(set uint32, way int, _ *tlb.Access) {
	p.rrpv[int(set)*p.ways+way] = 0
}

// Victim implements tlb.Policy: evict the first way at maxRRPV, ageing
// the set until one appears.
func (p *SRRIP) Victim(set uint32, _ *tlb.Access) int {
	base := int(set) * p.ways
	for {
		for w := 0; w < p.ways; w++ {
			if p.rrpv[base+w] == p.maxRRPV {
				return w
			}
		}
		for w := 0; w < p.ways; w++ {
			p.rrpv[base+w]++
		}
	}
}

// OnInsert implements tlb.Policy.
func (p *SRRIP) OnInsert(set uint32, way int, _ *tlb.Access) {
	p.rrpv[int(set)*p.ways+way] = p.insertRRPV
}

// SetInsertion overrides the RRPV given to a specific newly inserted
// entry; SHiP layers its per-signature placement decision on top of
// SRRIP through this hook.
func (p *SRRIP) SetInsertion(set uint32, way int, rrpv uint8) {
	if rrpv > p.maxRRPV {
		rrpv = p.maxRRPV
	}
	p.rrpv[int(set)*p.ways+way] = rrpv
}

// MaxRRPV returns the distant-re-reference value (3 for 2-bit RRPV).
func (p *SRRIP) MaxRRPV() uint8 { return p.maxRRPV }
