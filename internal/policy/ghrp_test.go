package policy

import (
	"math/rand"
	"testing"
)

// TestGHRPHistoryMatchesLivePolicy: the standalone GHRPHistory (used to
// precompute signature sequences from captured streams) must track a
// live GHRP's registers exactly — same branch gating, same signature
// hash — over an arbitrary branch/access interleaving.
func TestGHRPHistoryMatchesLivePolicy(t *testing.T) {
	g := NewGHRP(4096)
	g.Attach(64, 8)
	var h GHRPHistory

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		pc := rng.Uint64() & 0xffff_ffff
		if rng.Intn(3) == 0 {
			conditional := rng.Intn(2) == 0
			taken := rng.Intn(2) == 0
			g.OnBranch(pc, conditional, rng.Intn(2) == 0, taken, rng.Uint64())
			h.OnBranch(pc, conditional, taken)
			continue
		}
		if got, want := g.signature(pc), h.Signature(pc); got != want {
			t.Fatalf("event %d: live GHRP signature %#x, GHRPHistory computed %#x", i, got, want)
		}
	}
}

// TestGHRPExternalSignatures: a fed GHRP must ignore its own registers
// and answer with exactly the injected signature.
func TestGHRPExternalSignatures(t *testing.T) {
	g := NewGHRP(4096)
	g.Attach(64, 8)
	g.OnBranch(0x1234, true, false, true, 0)
	g.BeginExternalSignatures()
	g.SetSignatures(0xdeadbeef, 0)
	if got := g.signature(0x9999); got != 0xdeadbeef {
		t.Fatalf("fed GHRP signature = %#x, want the injected %#x", got, uint64(0xdeadbeef))
	}
}
