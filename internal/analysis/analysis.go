// Package analysis is chirpvet's engine: a standard-library-only
// (go/ast, go/parser, go/types — no golang.org/x/tools dependency,
// preserving the module's zero-require policy) static analysis
// framework that mechanically enforces the repository's performance
// and reproducibility invariants:
//
//   - hotpath-alloc: functions annotated //chirp:hotpath (the
//     replay/direct inner loops, TLB lookup/insert, the SWAR recency
//     stacks, the folded-history push) must stay allocation-free — the
//     3.3x replay win in BENCH_hotpath.json dies silently if an alloc
//     sneaks into a per-event function.
//   - obs-boundary: nothing reachable from a hotpath function may call
//     into internal/obs; instrumented layers aggregate into plain
//     counters and publish deltas at run boundaries.
//   - determinism: workloads and result paths must be bit-deterministic
//     from their seeds — no wall clock, no global math/rand, no
//     map-iteration-order-dependent output.
//   - ctx-first: exported work-launching functions in internal/sim and
//     internal/engine take a context.Context first.
//   - no-deprecated: the pre-engine suite entry points may not gain new
//     callers (this rule replaced the CI grep gate).
//
// A second tier of rules runs a forward must/may dataflow analysis
// over per-function control-flow graphs (cfg.go, dataflow.go):
//
//   - lock-balance: every sync.Mutex/RWMutex Lock reaches its Unlock
//     on all paths (or via defer), and no lock is held across a
//     channel operation, select, or sync.WaitGroup.Wait.
//   - pair-lifetime: values acquired through a //chirp:acquires
//     function (pooled TLB arrays, spill refcounts) must reach a
//     matching //chirp:releases call on every path, unless they
//     escape the function.
//   - atomic-mix: a struct field accessed through sync/atomic anywhere
//     in the module must never be read or written plainly elsewhere.
//   - goroutine-discipline: wg.Add precedes the go statement it
//     covers on every path, the spawned function calls wg.Done on all
//     paths, and goroutines referencing their loop variable are
//     flagged for explicit rebinding.
//
// Comment directives steer the rules:
//
//	//chirp:hotpath
//	    in a function's doc comment marks it as a hot-path function
//	    checked by hotpath-alloc and used as an obs-boundary root.
//
//	//chirp:allow <rule> <reason>
//	    suppresses <rule>'s diagnostics on the directive's line, on the
//	    following line, or — when it appears in a function's doc
//	    comment — in the whole function. The reason is mandatory;
//	    directives without one are themselves reported.
//
//	//chirp:acquires <token>
//	    in a function's doc comment declares that the function's
//	    non-error results hold a resource named <token> that callers
//	    must release. At most one per function.
//
//	//chirp:releases <token>
//	    in a function's doc comment declares that calling the function
//	    (on, or passing, an acquired value) releases <token>. May be
//	    repeated for functions releasing several resource kinds.
//
// Tokens are lowercase identifiers ([a-z][a-z0-9_-]*). Malformed
// directives — wrong placement, missing or malformed token, duplicate
// acquires — are diagnosed by the same hygiene pass as //chirp:allow.
//
// Only non-test sources are analyzed: _test.go files may freely use
// maps, wall clocks and deprecated compatibility wrappers.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
	"sync"
)

// Diagnostic is one finding, renderable as
// "file:line:col: [rule] message".
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the diagnostic in the canonical one-line form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Rule is one named check over a loaded module.
type Rule interface {
	// Name is the rule's identifier in diagnostics, -rules selections
	// and //chirp:allow directives.
	Name() string
	// Doc is a one-line description for chirpvet -list.
	Doc() string
	// Check analyzes the module and returns raw diagnostics;
	// suppression directives are applied by the framework afterwards.
	Check(m *Module) []Diagnostic
}

// Rules returns the full rule set in reporting order.
func Rules() []Rule {
	return []Rule{
		&HotpathAllocRule{},
		&ObsBoundaryRule{},
		&DeterminismRule{},
		&CtxFirstRule{},
		&DeprecatedRule{},
		&LockBalanceRule{},
		&PairLifetimeRule{},
		&AtomicMixRule{},
		&GoroutineRule{},
	}
}

// RuleNames returns the names of every registered rule.
func RuleNames() []string {
	rules := Rules()
	names := make([]string, len(rules))
	for i, r := range rules {
		names[i] = r.Name()
	}
	return names
}

// SelectRules resolves a comma-separated -rules selection. An empty
// selection means every rule.
func SelectRules(selection string) ([]Rule, error) {
	all := Rules()
	if selection == "" {
		return all, nil
	}
	byName := make(map[string]Rule, len(all))
	for _, r := range all {
		byName[r.Name()] = r
	}
	var out []Rule
	for _, name := range strings.Split(selection, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		r, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown rule %q (have %s)", name, strings.Join(RuleNames(), ", "))
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("analysis: empty rule selection %q", selection)
	}
	return out, nil
}

// Run executes the rules over the module, applies //chirp:allow
// suppressions, folds in directive hygiene findings, and returns the
// surviving diagnostics sorted by position.
func Run(m *Module, rules []Rule) []Diagnostic {
	var out []Diagnostic
	for _, r := range rules {
		for _, d := range r.Check(m) {
			if !m.allowed(r.Name(), d.Pos) {
				out = append(out, d)
			}
		}
	}
	out = append(out, m.directiveProblems...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return out
}

// Directive names.
const (
	directiveHotpath  = "//chirp:hotpath"
	directiveAllow    = "//chirp:allow"
	directiveAcquires = "//chirp:acquires"
	directiveReleases = "//chirp:releases"
)

// allowRange is one //chirp:allow grant: rule suppressed over the
// [fromLine, toLine] range of its file (ranges are indexed per file in
// Module.allows, so the file name lives in the map key).
type allowRange struct {
	rule     string
	from, to int
}

// pairTokenRe is the //chirp:acquires///chirp:releases token grammar.
var pairTokenRe = regexp.MustCompile(`^[a-z][a-z0-9_-]*$`)

// knownRuleNames builds the rule-name set exactly once per process;
// the registered rule set is static, so collectDirectives (called once
// per module over every file) never rebuilds it.
var knownRuleNames = sync.OnceValue(func() map[string]bool {
	known := make(map[string]bool)
	for _, n := range RuleNames() {
		known[n] = true
	}
	return known
})

// collectDirectives scans every parsed file of the module for chirp
// directives, recording hotpath annotations, allow ranges (indexed per
// file), acquire/release pairings, and hygiene problems (missing rule
// or reason, unknown rule name, malformed pairing token). It runs once
// per module: the rule-name set and the comment→FuncDecl doc index are
// built a single time up front instead of per file.
func (m *Module) collectDirectives() {
	known := knownRuleNames()

	// Map every comment to the FuncDecl whose doc group holds it, so
	// doc-comment directives can take function scope. One pass over
	// all declarations of all packages; comments are unique nodes, so
	// a single module-wide map is sound.
	docOf := make(map[*ast.Comment]*ast.FuncDecl)
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					docOf[c] = fd
				}
			}
		}
	}

	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			m.collectFileDirectives(p, f, known, docOf)
		}
	}
}

// collectFileDirectives scans one file's comments against the
// module-wide rule-name set and doc index.
func (m *Module) collectFileDirectives(p *Package, f *ast.File, known map[string]bool, docOf map[*ast.Comment]*ast.FuncDecl) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			switch {
			case text == directiveHotpath || strings.HasPrefix(text, directiveHotpath+" "):
				fd := docOf[c]
				if fd == nil {
					m.directiveProblems = append(m.directiveProblems, Diagnostic{
						Pos:     m.Fset.Position(c.Pos()),
						Rule:    "directive",
						Message: "//chirp:hotpath must appear in a function's doc comment",
					})
					continue
				}
				m.hotpath[fd] = p
			case strings.HasPrefix(text, directiveAllow):
				rest := strings.TrimPrefix(text, directiveAllow)
				if rest != "" && !strings.HasPrefix(rest, " ") {
					continue // some other //chirp:allowXyz token; not ours
				}
				fields := strings.Fields(rest)
				pos := m.Fset.Position(c.Pos())
				if len(fields) == 0 {
					m.directiveProblems = append(m.directiveProblems, Diagnostic{
						Pos: pos, Rule: "directive",
						Message: "//chirp:allow needs a rule name and a reason",
					})
					continue
				}
				rule := fields[0]
				if !known[rule] {
					m.directiveProblems = append(m.directiveProblems, Diagnostic{
						Pos: pos, Rule: "directive",
						Message: fmt.Sprintf("//chirp:allow names unknown rule %q (have %s)", rule, strings.Join(RuleNames(), ", ")),
					})
					continue
				}
				if len(fields) < 2 {
					m.directiveProblems = append(m.directiveProblems, Diagnostic{
						Pos: pos, Rule: "directive",
						Message: fmt.Sprintf("//chirp:allow %s needs a reason", rule),
					})
					continue
				}
				ar := allowRange{rule: rule, from: pos.Line, to: pos.Line + 1}
				if fd := docOf[c]; fd != nil {
					ar.from = m.Fset.Position(fd.Pos()).Line
					ar.to = m.Fset.Position(fd.End()).Line
				}
				m.allows[pos.Filename] = append(m.allows[pos.Filename], ar)
			case strings.HasPrefix(text, directiveAcquires), strings.HasPrefix(text, directiveReleases):
				name := directiveAcquires
				if strings.HasPrefix(text, directiveReleases) {
					name = directiveReleases
				}
				rest := strings.TrimPrefix(text, name)
				if rest != "" && !strings.HasPrefix(rest, " ") {
					continue // some other //chirp:acquiresXyz token; not ours
				}
				pos := m.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) != 1 || !pairTokenRe.MatchString(fields[0]) {
					m.directiveProblems = append(m.directiveProblems, Diagnostic{
						Pos: pos, Rule: "directive",
						Message: fmt.Sprintf("%s takes exactly one token matching %s", name, pairTokenRe),
					})
					continue
				}
				fd := docOf[c]
				if fd == nil {
					m.directiveProblems = append(m.directiveProblems, Diagnostic{
						Pos: pos, Rule: "directive",
						Message: fmt.Sprintf("%s must appear in a function's doc comment", name),
					})
					continue
				}
				token := fields[0]
				if name == directiveAcquires {
					if prev, dup := m.acquires[fd]; dup {
						// Report at the declaration: gofmt pins
						// directives to the end of the doc comment, so
						// the function line is the stable anchor.
						m.directiveProblems = append(m.directiveProblems, Diagnostic{
							Pos: m.Fset.Position(fd.Pos()), Rule: "directive",
							Message: fmt.Sprintf("duplicate //chirp:acquires (function already acquires %q)", prev),
						})
						continue
					}
					m.acquires[fd] = token
				} else {
					m.releases[fd] = append(m.releases[fd], token)
				}
			}
		}
	}
}

// allowed reports whether a diagnostic of rule at pos is suppressed by
// an in-scope //chirp:allow directive. The per-file index keeps this
// O(allows in that file) rather than O(allows in the module).
func (m *Module) allowed(rule string, pos token.Position) bool {
	for _, a := range m.allows[pos.Filename] {
		if a.rule == rule && pos.Line >= a.from && pos.Line <= a.to {
			return true
		}
	}
	return false
}

// HotpathFuncs returns the //chirp:hotpath-annotated declarations and
// their packages.
func (m *Module) HotpathFuncs() map[*ast.FuncDecl]*Package { return m.hotpath }

// AcquireToken returns the //chirp:acquires token on fd, or "".
func (m *Module) AcquireToken(fd *ast.FuncDecl) string { return m.acquires[fd] }

// ReleaseTokens returns the //chirp:releases tokens on fd.
func (m *Module) ReleaseTokens(fd *ast.FuncDecl) []string { return m.releases[fd] }
