// Package analysis is chirpvet's engine: a standard-library-only
// (go/ast, go/parser, go/types — no golang.org/x/tools dependency,
// preserving the module's zero-require policy) static analysis
// framework that mechanically enforces the repository's performance
// and reproducibility invariants:
//
//   - hotpath-alloc: functions annotated //chirp:hotpath (the
//     replay/direct inner loops, TLB lookup/insert, the SWAR recency
//     stacks, the folded-history push) must stay allocation-free — the
//     3.3x replay win in BENCH_hotpath.json dies silently if an alloc
//     sneaks into a per-event function.
//   - obs-boundary: nothing reachable from a hotpath function may call
//     into internal/obs; instrumented layers aggregate into plain
//     counters and publish deltas at run boundaries.
//   - determinism: workloads and result paths must be bit-deterministic
//     from their seeds — no wall clock, no global math/rand, no
//     map-iteration-order-dependent output.
//   - ctx-first: exported work-launching functions in internal/sim and
//     internal/engine take a context.Context first.
//   - no-deprecated: the pre-engine suite entry points may not gain new
//     callers (this rule replaced the CI grep gate).
//
// Two comment directives steer the rules:
//
//	//chirp:hotpath
//	    in a function's doc comment marks it as a hot-path function
//	    checked by hotpath-alloc and used as an obs-boundary root.
//
//	//chirp:allow <rule> <reason>
//	    suppresses <rule>'s diagnostics on the directive's line, on the
//	    following line, or — when it appears in a function's doc
//	    comment — in the whole function. The reason is mandatory;
//	    directives without one are themselves reported.
//
// Only non-test sources are analyzed: _test.go files may freely use
// maps, wall clocks and deprecated compatibility wrappers.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding, renderable as
// "file:line:col: [rule] message".
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the diagnostic in the canonical one-line form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Rule is one named check over a loaded module.
type Rule interface {
	// Name is the rule's identifier in diagnostics, -rules selections
	// and //chirp:allow directives.
	Name() string
	// Doc is a one-line description for chirpvet -list.
	Doc() string
	// Check analyzes the module and returns raw diagnostics;
	// suppression directives are applied by the framework afterwards.
	Check(m *Module) []Diagnostic
}

// Rules returns the full rule set in reporting order.
func Rules() []Rule {
	return []Rule{
		&HotpathAllocRule{},
		&ObsBoundaryRule{},
		&DeterminismRule{},
		&CtxFirstRule{},
		&DeprecatedRule{},
	}
}

// RuleNames returns the names of every registered rule.
func RuleNames() []string {
	rules := Rules()
	names := make([]string, len(rules))
	for i, r := range rules {
		names[i] = r.Name()
	}
	return names
}

// SelectRules resolves a comma-separated -rules selection. An empty
// selection means every rule.
func SelectRules(selection string) ([]Rule, error) {
	all := Rules()
	if selection == "" {
		return all, nil
	}
	byName := make(map[string]Rule, len(all))
	for _, r := range all {
		byName[r.Name()] = r
	}
	var out []Rule
	for _, name := range strings.Split(selection, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		r, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown rule %q (have %s)", name, strings.Join(RuleNames(), ", "))
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("analysis: empty rule selection %q", selection)
	}
	return out, nil
}

// Run executes the rules over the module, applies //chirp:allow
// suppressions, folds in directive hygiene findings, and returns the
// surviving diagnostics sorted by position.
func Run(m *Module, rules []Rule) []Diagnostic {
	var out []Diagnostic
	for _, r := range rules {
		for _, d := range r.Check(m) {
			if !m.allowed(r.Name(), d.Pos) {
				out = append(out, d)
			}
		}
	}
	out = append(out, m.directiveProblems...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out
}

// Directive names.
const (
	directiveHotpath = "//chirp:hotpath"
	directiveAllow   = "//chirp:allow"
)

// allowRange is one //chirp:allow grant: rule suppressed over the
// [fromLine, toLine] range of file.
type allowRange struct {
	file     string
	rule     string
	from, to int
}

// collectDirectives scans a parsed file for //chirp:hotpath and
// //chirp:allow directives, recording hotpath annotations on their
// functions, allow ranges, and hygiene problems (missing rule or
// reason, unknown rule name).
func (m *Module) collectDirectives(p *Package, f *ast.File) {
	known := make(map[string]bool)
	for _, n := range RuleNames() {
		known[n] = true
	}

	// Map every comment to the FuncDecl whose doc group holds it, so
	// doc-comment directives can take function scope.
	docOf := make(map[*ast.Comment]*ast.FuncDecl)
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		for _, c := range fd.Doc.List {
			docOf[c] = fd
		}
	}

	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			switch {
			case text == directiveHotpath || strings.HasPrefix(text, directiveHotpath+" "):
				fd := docOf[c]
				if fd == nil {
					m.directiveProblems = append(m.directiveProblems, Diagnostic{
						Pos:     m.Fset.Position(c.Pos()),
						Rule:    "directive",
						Message: "//chirp:hotpath must appear in a function's doc comment",
					})
					continue
				}
				m.hotpath[fd] = p
			case strings.HasPrefix(text, directiveAllow):
				rest := strings.TrimPrefix(text, directiveAllow)
				if rest != "" && !strings.HasPrefix(rest, " ") {
					continue // some other //chirp:allowXyz token; not ours
				}
				fields := strings.Fields(rest)
				pos := m.Fset.Position(c.Pos())
				if len(fields) == 0 {
					m.directiveProblems = append(m.directiveProblems, Diagnostic{
						Pos: pos, Rule: "directive",
						Message: "//chirp:allow needs a rule name and a reason",
					})
					continue
				}
				rule := fields[0]
				if !known[rule] {
					m.directiveProblems = append(m.directiveProblems, Diagnostic{
						Pos: pos, Rule: "directive",
						Message: fmt.Sprintf("//chirp:allow names unknown rule %q (have %s)", rule, strings.Join(RuleNames(), ", ")),
					})
					continue
				}
				if len(fields) < 2 {
					m.directiveProblems = append(m.directiveProblems, Diagnostic{
						Pos: pos, Rule: "directive",
						Message: fmt.Sprintf("//chirp:allow %s needs a reason", rule),
					})
					continue
				}
				ar := allowRange{file: pos.Filename, rule: rule, from: pos.Line, to: pos.Line + 1}
				if fd := docOf[c]; fd != nil {
					ar.from = m.Fset.Position(fd.Pos()).Line
					ar.to = m.Fset.Position(fd.End()).Line
				}
				m.allows = append(m.allows, ar)
			}
		}
	}
}

// allowed reports whether a diagnostic of rule at pos is suppressed by
// an in-scope //chirp:allow directive.
func (m *Module) allowed(rule string, pos token.Position) bool {
	for _, a := range m.allows {
		if a.rule == rule && a.file == pos.Filename && pos.Line >= a.from && pos.Line <= a.to {
			return true
		}
	}
	return false
}

// HotpathFuncs returns the //chirp:hotpath-annotated declarations and
// their packages.
func (m *Module) HotpathFuncs() map[*ast.FuncDecl]*Package { return m.hotpath }
