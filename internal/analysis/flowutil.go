// Shared helpers for the dataflow rules: enumerating function bodies,
// naming mutex/waitgroup receivers, and AST walks that respect
// function-literal boundaries.
package analysis

import (
	"go/ast"
	"go/types"
)

// funcBody is one analyzable body — a declaration or a function
// literal — with its package.
type funcBody struct {
	pkg  *Package
	name string        // display name for diagnostics
	decl *ast.FuncDecl // nil for literals
	body *ast.BlockStmt
}

// moduleFuncBodies enumerates every function body in the module:
// declarations first, then the function literals nested in them (each
// literal is its own intraprocedural analysis unit).
func moduleFuncBodies(m *Module) []funcBody {
	var out []funcBody
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				out = append(out, funcBody{pkg: p, name: funcDisplayName(fd), decl: fd, body: fd.Body})
				name := funcDisplayName(fd)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						out = append(out, funcBody{pkg: p, name: name + ".func", body: lit.Body})
					}
					return true
				})
			}
		}
	}
	return out
}

// objKey identifies a mutex, waitgroup, or tracked variable by its
// root object plus the selector path used to reach it — `s.spillMu`
// and `s.spillMu` in the same function agree; distinct receivers
// differ by root object identity.
type objKey struct {
	root types.Object
	path string
}

// flattenKey resolves an ident/selector chain to an objKey. The
// second result is false for expressions the rules cannot name
// (index expressions, call results, …).
func flattenKey(info *types.Info, e ast.Expr) (objKey, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if obj == nil {
			return objKey{}, false
		}
		return objKey{root: obj, path: e.Name}, true
	case *ast.SelectorExpr:
		k, ok := flattenKey(info, e.X)
		if !ok {
			return objKey{}, false
		}
		k.path += "." + e.Sel.Name
		return k, true
	case *ast.StarExpr:
		return flattenKey(info, e.X)
	}
	return objKey{}, false
}

// inspectNode walks one CFG node's subtree, skipping nested function
// literals (they are separate analysis units with their own CFGs).
// The callback's return value is honored as in ast.Inspect.
func inspectNode(n ast.Node, fn func(ast.Node) bool) {
	if _, ok := n.(*implicitReturn); ok {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}

// syncMethod reports whether call invokes the named method on the
// given sync type ("Mutex", "RWMutex", "WaitGroup", …) and returns
// the receiver expression.
func syncMethod(info *types.Info, call *ast.CallExpr, typeNames ...string) (recv ast.Expr, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || pkgPathOf(fn) != "sync" {
		return nil, "", false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return nil, "", false
	}
	rt := sig.Recv().Type()
	if p, isPtr := rt.(*types.Pointer); isPtr {
		rt = p.Elem()
	}
	named, isNamed := rt.(*types.Named)
	if !isNamed {
		return nil, "", false
	}
	for _, want := range typeNames {
		if named.Obj().Name() == want {
			return sel.X, fn.Name(), true
		}
	}
	return nil, "", false
}

// usesObject reports whether any identifier in the subtree (function
// literals included) resolves to one of the given objects.
func usesObject(info *types.Info, n ast.Node, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && objs[info.Uses[id]] {
			found = true
		}
		return !found
	})
	return found
}
