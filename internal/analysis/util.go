package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// calleeFunc resolves a call expression to the concrete *types.Func it
// invokes (plain call, method call, or qualified pkg.Func call).
// Interface method calls resolve to the abstract method object; calls
// through function-typed variables and built-ins return nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// calleeBuiltin returns the name of the built-in a call invokes, or "".
func calleeBuiltin(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// pkgPathOf returns the defining package path of an object ("" for
// universe-scope objects).
func pkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// inScope reports whether a package import path falls under one of the
// module-relative scope suffixes (e.g. "internal/sim"). Both the real
// module packages and testdata fixtures that mirror the layout match:
// the path either is modPath/scope, ends with /scope, or contains
// /scope/ as an interior segment.
func inScope(pkgPath string, scopes []string) bool {
	for _, s := range scopes {
		if strings.HasSuffix(pkgPath, "/"+s) || strings.Contains(pkgPath, "/"+s+"/") || pkgPath == s {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Context" && pkgPathOf(obj) == "context"
}

// isInterface reports whether t's underlying type is an interface
// (type parameters excluded — converting to a type parameter does not
// necessarily box).
func isInterface(t types.Type) bool {
	if _, ok := t.(*types.TypeParam); ok {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// isString reports whether t's core type is string.
func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isByteOrRuneSlice reports whether t is []byte or []rune.
func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// funcDisplayName renders a FuncDecl as Recv.Name or Name for
// diagnostics.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	if star, ok := recv.(*ast.StarExpr); ok {
		recv = star.X
	}
	if idx, ok := recv.(*ast.IndexExpr); ok { // generic receiver
		recv = idx.X
	}
	if id, ok := recv.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// moduleFuncIndex maps every concrete function/method declared in the
// module to its declaration and package, for call-graph walks.
func moduleFuncIndex(m *Module) map[*types.Func]funcDeclIn {
	idx := map[*types.Func]funcDeclIn{}
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					idx[fn] = funcDeclIn{decl: fd, pkg: p}
				}
			}
		}
	}
	return idx
}

// funcDeclIn pairs a function declaration with its defining package.
type funcDeclIn struct {
	decl *ast.FuncDecl
	pkg  *Package
}
