package analysis

import (
	"fmt"
	"go/ast"
)

// CtxFirstRule enforces the context-first API shape PR 4 established
// for the simulation entry points: exported functions in internal/sim
// and internal/engine that launch work are cancellable from the
// caller, with the context as the first parameter. Three checks, on
// exported package-level functions (methods are exempt — sink and
// policy callbacks implement fixed interfaces):
//
//   - a context.Context parameter, when present, must be parameter 0;
//   - a function that launches goroutines must take a context.Context;
//   - context.Background()/context.TODO() inside an exported function
//     severs the caller's cancellation chain — thread the caller's
//     context instead. (The deprecated pre-engine wrappers carry
//     //chirp:allow directives; new code has no excuse.)
type CtxFirstRule struct{}

// ctxScopes are the packages whose exported functions launch
// simulation work.
var ctxScopes = []string{
	"internal/sim",
	"internal/engine",
}

// Name implements Rule.
func (*CtxFirstRule) Name() string { return "ctx-first" }

// Doc implements Rule.
func (*CtxFirstRule) Doc() string {
	return "exported work-launching funcs in internal/sim and internal/engine take context.Context first"
}

// Check implements Rule.
func (r *CtxFirstRule) Check(m *Module) []Diagnostic {
	var out []Diagnostic
	for _, p := range m.Pkgs {
		if !inScope(p.Path, ctxScopes) {
			continue
		}
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Recv != nil || !fd.Name.IsExported() {
					continue
				}
				out = append(out, r.checkFunc(m, p, fd)...)
			}
		}
	}
	return out
}

// checkFunc applies the three ctx-first checks to one exported
// function declaration.
func (r *CtxFirstRule) checkFunc(m *Module, p *Package, fd *ast.FuncDecl) []Diagnostic {
	var out []Diagnostic
	name := fd.Name.Name

	ctxAt := -1
	idx := 0
	for _, field := range fd.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if t := p.Info.Types[field.Type].Type; t != nil && isContextType(t) && ctxAt < 0 {
			ctxAt = idx
		}
		idx += n
	}
	if ctxAt > 0 {
		out = append(out, Diagnostic{
			Pos:     m.Fset.Position(fd.Pos()),
			Rule:    r.Name(),
			Message: fmt.Sprintf("%s takes context.Context as parameter %d; it must be first", name, ctxAt),
		})
	}

	if fd.Body == nil {
		return out
	}
	launches := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			launches = true
		case *ast.CallExpr:
			fn := calleeFunc(p.Info, n)
			if fn == nil || pkgPathOf(fn) != "context" {
				return true
			}
			if fnName := fn.Name(); fnName == "Background" || fnName == "TODO" {
				out = append(out, Diagnostic{
					Pos:     m.Fset.Position(n.Pos()),
					Rule:    r.Name(),
					Message: fmt.Sprintf("context.%s inside exported %s severs the caller's cancellation chain; thread a ctx parameter instead", fnName, name),
				})
			}
		}
		return true
	})
	if launches && ctxAt != 0 {
		out = append(out, Diagnostic{
			Pos:     m.Fset.Position(fd.Pos()),
			Rule:    r.Name(),
			Message: fmt.Sprintf("%s launches goroutines but does not take a context.Context first parameter", name),
		})
	}
	return out
}
