package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot(t testing.TB) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}

// expectation is one // want comment from a fixture: a diagnostic whose
// message matches re must be reported at file:line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantArgRe = regexp.MustCompile(`"([^"]*)"`)

// collectWants scans a fixture directory's sources for // want
// comments. A want sharing a line with code expects a diagnostic on
// that line; a want alone on its line expects one on the line above
// (for directive fixtures, where trailing text would change parsing).
func collectWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, "// want ")
			if idx < 0 {
				continue
			}
			args := wantArgRe.FindAllStringSubmatch(line[idx:], -1)
			if len(args) == 0 {
				t.Fatalf("%s:%d: // want comment without a quoted pattern", path, i+1)
			}
			target := i + 1
			if strings.TrimSpace(line[:idx]) == "" {
				target = i // whole-line want applies to the previous line
			}
			for _, a := range args {
				re, err := regexp.Compile(a[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", path, i+1, a[1], err)
				}
				out = append(out, &expectation{file: path, line: target, re: re})
			}
		}
	}
	return out
}

// testFixture loads the given testdata/src directories, runs the
// selected rules, and diffs the diagnostics against the fixtures'
// want comments in both directions.
func testFixture(t *testing.T, ruleSel string, dirs ...string) {
	t.Helper()
	root := moduleRoot(t)
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	rel := make([]string, len(dirs))
	for i, d := range dirs {
		rel[i] = filepath.Join("internal", "analysis", "testdata", "src", filepath.FromSlash(d))
	}
	mod, err := loader.LoadDirs(rel...)
	if err != nil {
		t.Fatal(err)
	}
	rules, err := SelectRules(ruleSel)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(mod, rules)

	var wants []*expectation
	for _, d := range rel {
		wants = append(wants, collectWants(t, filepath.Join(root, d))...)
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

func TestHotpathAllocFixture(t *testing.T) { testFixture(t, "hotpath-alloc", "hotpath") }

func TestObsBoundaryFixture(t *testing.T) { testFixture(t, "obs-boundary", "obsflow") }

func TestDeterminismFixture(t *testing.T) {
	testFixture(t, "determinism", "determinism/internal/workloads")
}

func TestCtxFirstFixture(t *testing.T) { testFixture(t, "ctx-first", "ctxfirst/internal/sim") }

func TestDeprecatedFixture(t *testing.T) {
	testFixture(t, "no-deprecated", "deprecated/app", "deprecated/internal/sim",
		"deprecated/internal/workloads", "deprecated/internal/workloads/spec")
}

func TestDirectiveHygiene(t *testing.T) { testFixture(t, "hotpath-alloc", "directive") }

func TestLockBalanceFixture(t *testing.T) { testFixture(t, "lock-balance", "lockbalance") }

// TestPairLifetimeFixture also covers the //chirp:acquires and
// //chirp:releases directive hygiene (pairlife/hygiene.go).
func TestPairLifetimeFixture(t *testing.T) { testFixture(t, "pair-lifetime", "pairlife") }

func TestAtomicMixFixture(t *testing.T) { testFixture(t, "atomic-mix", "atomicmix") }

func TestGoroutineFixture(t *testing.T) { testFixture(t, "goroutine-discipline", "goroutine") }

// TestSelectRules covers the -rules selection surface.
func TestSelectRules(t *testing.T) {
	all, err := SelectRules("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(Rules()) {
		t.Fatalf("empty selection: got %d rules, want %d", len(all), len(Rules()))
	}
	two, err := SelectRules("determinism, ctx-first")
	if err != nil {
		t.Fatal(err)
	}
	if len(two) != 2 || two[0].Name() != "determinism" || two[1].Name() != "ctx-first" {
		t.Fatalf("subset selection resolved to %v", two)
	}
	if _, err := SelectRules("nope"); err == nil {
		t.Fatal("unknown rule selection did not error")
	}
	if _, err := SelectRules(","); err == nil {
		t.Fatal("empty-after-split selection did not error")
	}
}

// TestLoadModuleClean is the dogfood gate in miniature: the repository
// itself must be clean under every rule, so the CI chirpvet run stays
// green.
func TestLoadModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type check is slow")
	}
	loader, err := NewLoader(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	mod, err := loader.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run(mod, Rules()); len(diags) > 0 {
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
	if len(mod.HotpathFuncs()) == 0 {
		t.Error("module has no //chirp:hotpath functions; annotations were lost")
	}
}

// BenchmarkChirpvet measures one full-module analysis pass — loader,
// parser, type check, and all five rules — the cost every CI chirpvet
// invocation pays. Each iteration builds a fresh loader: the memoized
// package cache would otherwise turn iterations 2..N into no-ops.
func BenchmarkChirpvet(b *testing.B) {
	root := moduleRoot(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		loader, err := NewLoader(root)
		if err != nil {
			b.Fatal(err)
		}
		mod, err := loader.LoadModule()
		if err != nil {
			b.Fatal(err)
		}
		if diags := Run(mod, Rules()); len(diags) != 0 {
			b.Fatalf("module not clean: %v", diags)
		}
	}
}

// TestDiagnosticString pins the canonical rendering.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Rule: "determinism", Message: "no"}
	d.Pos.Filename, d.Pos.Line, d.Pos.Column = "a/b.go", 3, 7
	if got, want := d.String(), "a/b.go:3:7: [determinism] no"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
