package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// PairLifetimeRule tracks values produced by //chirp:acquires
// functions (pooled TLB arrays, spill refcounts) through each
// function's CFG and reports return paths on which no matching
// //chirp:releases call has run. The analysis is intraprocedural and
// may-leak:
//
//   - An acquire site is created when an annotated call's results are
//     bound in an assignment, var declaration, or discarded in a bare
//     expression statement. The non-error results become the site's
//     holder variables; an `error` result enables err-edge
//     refinement, so `if err != nil { return ... }` after the acquire
//     is not a leak.
//   - The site is released when a //chirp:releases function with the
//     same token is called on (or passed) a holder variable, when a
//     func-typed holder is itself called (the RetainSpill release
//     closure), or when either happens under defer.
//   - The site escapes — tracking stops, no diagnostic — when a
//     holder is returned, stored into a struct/slice/map/field,
//     sent on a channel, captured by a function literal, appended,
//     or has its address taken. Passing a holder as an ordinary call
//     argument is a borrow and does not escape.
//
// Paths ending in panic or os.Exit are not reported.
type PairLifetimeRule struct{}

func (r *PairLifetimeRule) Name() string { return "pair-lifetime" }

func (r *PairLifetimeRule) Doc() string {
	return "//chirp:acquires values must reach a //chirp:releases call on every path unless they escape"
}

// pairSite is one live acquisition.
type pairSite struct {
	token  string
	pos    token.Pos
	vars   map[types.Object]bool // holder variables still bound
	errObj types.Object          // error result enabling err-edge refinement
}

func (s *pairSite) clone() *pairSite {
	vars := make(map[types.Object]bool, len(s.vars))
	for k := range s.vars {
		vars[k] = true
	}
	return &pairSite{token: s.token, pos: s.pos, vars: vars, errObj: s.errObj}
}

// pairFact maps acquire call sites to their live state. Copy-on-write.
type pairFact map[*ast.CallExpr]*pairSite

func (f pairFact) clone() pairFact {
	out := make(pairFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// pairFlow is the per-function dataflow problem.
type pairFlow struct {
	m       *Module
	pkg     *Package
	fnIndex map[*types.Func]funcDeclIn
	out     *[]Diagnostic
}

func (pf *pairFlow) Entry() flowFact { return pairFact(nil) }

func (pf *pairFlow) Join(a, b flowFact) flowFact {
	fa, fb := a.(pairFact), b.(pairFact)
	out := make(pairFact, len(fa)+len(fb))
	for k, sa := range fa {
		if sb, ok := fb[k]; ok && sb != sa {
			merged := sa.clone()
			for v := range sb.vars {
				merged.vars[v] = true
			}
			if sb.errObj != sa.errObj {
				merged.errObj = nil
			}
			out[k] = merged
		} else {
			out[k] = sa
		}
	}
	for k, sb := range fb {
		if _, ok := fa[k]; !ok {
			out[k] = sb
		}
	}
	return out
}

func (pf *pairFlow) Equal(a, b flowFact) bool {
	fa, fb := a.(pairFact), b.(pairFact)
	if len(fa) != len(fb) {
		return false
	}
	for k, sa := range fa {
		sb, ok := fb[k]
		if !ok || sa.errObj != sb.errObj || len(sa.vars) != len(sb.vars) {
			return false
		}
		for v := range sa.vars {
			if !sb.vars[v] {
				return false
			}
		}
	}
	return true
}

// Refine drops acquisitions on the edge where their own error result
// is known non-nil: `x, err := Acquire(); if err != nil { ... }` — the
// true edge has no live resource.
func (pf *pairFlow) Refine(b *cfgBlock, branch bool, out flowFact) flowFact {
	bin, ok := ast.Unparen(b.cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return out
	}
	var other ast.Expr
	if isNilIdent(pf.pkg.Info, bin.Y) {
		other = bin.X
	} else if isNilIdent(pf.pkg.Info, bin.X) {
		other = bin.Y
	} else {
		return out
	}
	id, ok := ast.Unparen(other).(*ast.Ident)
	if !ok {
		return out
	}
	obj := pf.pkg.Info.Uses[id]
	if obj == nil {
		obj = pf.pkg.Info.Defs[id]
	}
	if obj == nil {
		return out
	}
	// err != nil: true edge is the failure edge; err == nil: false edge.
	failEdge := branch == (bin.Op == token.NEQ)
	if !failEdge {
		return out
	}
	fact := out.(pairFact)
	var cloned pairFact
	for k, s := range fact {
		if s.errObj == obj {
			if cloned == nil {
				cloned = fact.clone()
			}
			delete(cloned, k)
		}
	}
	if cloned != nil {
		return cloned
	}
	return out
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// acquireToken resolves a call to its //chirp:acquires token, or "".
func (pf *pairFlow) acquireToken(call *ast.CallExpr) string {
	fn := calleeFunc(pf.pkg.Info, call)
	if fn == nil {
		return ""
	}
	in, ok := pf.fnIndex[fn]
	if !ok {
		return ""
	}
	return pf.m.AcquireToken(in.decl)
}

// releaseTokens resolves a call to its //chirp:releases tokens.
func (pf *pairFlow) releaseTokens(call *ast.CallExpr) []string {
	fn := calleeFunc(pf.pkg.Info, call)
	if fn == nil {
		return nil
	}
	in, ok := pf.fnIndex[fn]
	if !ok {
		return nil
	}
	return pf.m.ReleaseTokens(in.decl)
}

// identObj resolves a (possibly parenthesized) identifier expression
// to its object, or nil.
func identObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

func (pf *pairFlow) report(pos token.Pos, format string, args ...interface{}) {
	*pf.out = append(*pf.out, Diagnostic{
		Pos:     pf.m.Fset.Position(pos),
		Rule:    "pair-lifetime",
		Message: fmt.Sprintf(format, args...),
	})
}

func (pf *pairFlow) Transfer(b *cfgBlock, in flowFact, report bool) flowFact {
	fact := in.(pairFact)
	info := pf.pkg.Info

	// tracked reports whether obj holds some live site.
	tracked := func(obj types.Object) bool {
		if obj == nil {
			return false
		}
		for _, s := range fact {
			if s.vars[obj] {
				return true
			}
		}
		return false
	}
	// escapeObj stops tracking every site obj holds.
	escapeObj := func(obj types.Object) {
		if obj == nil {
			return
		}
		var cloned pairFact
		for k, s := range fact {
			if s.vars[obj] {
				if cloned == nil {
					cloned = fact.clone()
				}
				delete(cloned, k)
			}
		}
		if cloned != nil {
			fact = cloned
		}
	}
	// releaseVia removes sites matching any of the tokens whose holder
	// is obj.
	releaseVia := func(obj types.Object, tokens []string) {
		if obj == nil {
			return
		}
		var cloned pairFact
		for k, s := range fact {
			if !s.vars[obj] {
				continue
			}
			for _, t := range tokens {
				if t == s.token {
					if cloned == nil {
						cloned = fact.clone()
					}
					delete(cloned, k)
					break
				}
			}
		}
		if cloned != nil {
			fact = cloned
		}
	}

	for _, n := range b.nodes {
		// 1. Bindings: acquire sites and rebind/invalidate on
		//    assignment.
		switch st := n.(type) {
		case *ast.AssignStmt:
			fact = pf.applyAssign(fact, st.Lhs, st.Rhs)
		case *ast.DeclStmt:
			if gd, ok := st.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
						lhs := make([]ast.Expr, len(vs.Names))
						for i, name := range vs.Names {
							lhs[i] = name
						}
						fact = pf.applyAssign(fact, lhs, vs.Values)
					}
				}
			}
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
				if tok := pf.acquireToken(call); tok != "" {
					// Result discarded: a site nothing can release.
					fact = fact.clone()
					fact[call] = &pairSite{token: tok, pos: call.Pos(), vars: map[types.Object]bool{}}
				}
			}
		}

		// 2. Releases and escapes anywhere in the node.
		inspectNode(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.CallExpr:
				// Calling a func-typed holder releases its site.
				if obj := identObj(info, x.Fun); obj != nil && tracked(obj) {
					var cloned pairFact
					for k, s := range fact {
						if s.vars[obj] {
							if cloned == nil {
								cloned = fact.clone()
							}
							delete(cloned, k)
						}
					}
					if cloned != nil {
						fact = cloned
					}
					return true
				}
				// Annotated releaser: receiver or any argument.
				if tokens := pf.releaseTokens(x); len(tokens) > 0 {
					if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
						releaseVia(identObj(info, sel.X), tokens)
					}
					for _, arg := range x.Args {
						releaseVia(identObj(info, arg), tokens)
					}
					return true
				}
				// append stores its arguments.
				if calleeBuiltin(info, x) == "append" {
					for _, arg := range x.Args {
						escapeObj(identObj(info, arg))
					}
				}
			case *ast.ReturnStmt:
				for _, res := range x.Results {
					escapeObj(identObj(info, res))
				}
			case *ast.SendStmt:
				escapeObj(identObj(info, x.Value))
			case *ast.CompositeLit:
				for _, el := range x.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						el = kv.Value
					}
					escapeObj(identObj(info, el))
				}
			case *ast.UnaryExpr:
				if x.Op == token.AND {
					if k, ok := flattenKey(info, x.X); ok {
						escapeObj(k.root)
					}
				}
			case *ast.GoStmt:
				for _, arg := range x.Call.Args {
					escapeObj(identObj(info, arg))
				}
			}
			return true
		})
		// Closure capture: any function literal in the node that
		// references a holder makes the site escape (the closure may
		// release it later; we cannot see when).
		if _, synthetic := n.(*implicitReturn); !synthetic {
			ast.Inspect(n, func(x ast.Node) bool {
				lit, ok := x.(*ast.FuncLit)
				if !ok {
					return true
				}
				for _, s := range fact {
					for obj := range s.vars {
						if usesObject(info, lit.Body, map[types.Object]bool{obj: true}) {
							escapeObj(obj)
						}
					}
				}
				return false
			})
		}

		// 3. Report leaks on return paths.
		switch rn := n.(type) {
		case *ast.ReturnStmt:
			if report {
				for _, s := range fact {
					pf.report(rn.Pos(), "return may leak %q acquired at line %d; release it on every path or let it escape",
						s.token, pf.m.Fset.Position(s.pos).Line)
				}
			}
		case *implicitReturn:
			if report {
				for _, s := range fact {
					pf.report(rn.Pos(), "function may end leaking %q acquired at line %d; release it on every path or let it escape",
						s.token, pf.m.Fset.Position(s.pos).Line)
				}
			}
		}
	}
	return fact
}

// applyAssign processes one assignment: existing holders assigned over
// are unbound, error refinement variables are invalidated, bare
// holder copies escape, and annotated acquire calls create sites.
func (pf *pairFlow) applyAssign(fact pairFact, lhs, rhs []ast.Expr) pairFact {
	info := pf.pkg.Info

	// Assigned objects (plain identifiers only).
	assigned := map[types.Object]bool{}
	for _, l := range lhs {
		if obj := identObj(info, l); obj != nil {
			assigned[obj] = true
		}
	}

	// Bare holder on the RHS: the value now lives somewhere else too —
	// stop tracking (x := l2, s.f = l2, arr[i] = l2 all escape).
	var escaped []types.Object
	for _, r := range rhs {
		if obj := identObj(info, r); obj != nil {
			escaped = append(escaped, obj)
		}
	}

	mutated := false
	mutate := func() {
		if !mutated {
			fact = fact.clone()
			mutated = true
		}
	}
	for k, s := range fact {
		for _, obj := range escaped {
			if s.vars[obj] {
				mutate()
				delete(fact, k)
			}
		}
	}
	for k, s := range fact {
		needsClone := false
		for obj := range assigned {
			if s.vars[obj] || s.errObj == obj {
				needsClone = true
			}
		}
		if !needsClone {
			continue
		}
		mutate()
		ns := s.clone()
		for obj := range assigned {
			delete(ns.vars, obj)
			if ns.errObj == obj {
				ns.errObj = nil
			}
		}
		fact[k] = ns
	}

	// New acquire sites: x, err := Acquire(...) (tuple) or
	// a, b := f(), g() (element-wise).
	bind := func(call *ast.CallExpr, targets []ast.Expr) {
		tok := pf.acquireToken(call)
		if tok == "" {
			return
		}
		site := &pairSite{token: tok, pos: call.Pos(), vars: map[types.Object]bool{}}
		for _, t := range targets {
			obj := identObj(info, t)
			if obj == nil {
				continue
			}
			if isErrorType(obj.Type()) {
				site.errObj = obj
			} else {
				site.vars[obj] = true
			}
		}
		mutate()
		fact[call] = site
	}
	if len(rhs) == 1 {
		if call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr); ok {
			bind(call, lhs)
		}
	} else if len(rhs) == len(lhs) {
		for i, r := range rhs {
			if call, ok := ast.Unparen(r).(*ast.CallExpr); ok {
				bind(call, lhs[i:i+1])
			}
		}
	}
	return fact
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj() != nil && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// Check runs the pair-lifetime dataflow over every function body.
func (r *PairLifetimeRule) Check(m *Module) []Diagnostic {
	var out []Diagnostic
	fnIndex := moduleFuncIndex(m)
	if len(m.acquires) == 0 {
		return nil
	}
	for _, fb := range moduleFuncBodies(m) {
		pf := &pairFlow{m: m, pkg: fb.pkg, fnIndex: fnIndex, out: &out}
		// Cheap gate: skip bodies that never call an acquiring
		// function.
		found := false
		ast.Inspect(fb.body, func(n ast.Node) bool {
			if found {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok && pf.acquireToken(call) != "" {
				found = true
			}
			return !found
		})
		if !found {
			continue
		}
		g := buildCFG(fb.body, fb.pkg.Info)
		solveFlow(g, pf)
	}
	return out
}
