package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineRule enforces three pieces of goroutine discipline:
//
//  1. wg.Add precedes the go statement on every path: a goroutine
//     whose function literal calls wg.Done must be dominated by a
//     wg.Add on the same WaitGroup (a wg.Wait consumes the Adds, so
//     respawning after Wait needs a fresh Add). Checked by a forward
//     must-analysis; only WaitGroups declared in the same function are
//     checked — captured or package-level WaitGroups may be Added
//     elsewhere.
//  2. wg.Done on all paths of the spawned function: if a go'd function
//     literal calls wg.Done anywhere, every return path must reach a
//     Done (a defer wg.Done() at the top satisfies all of them, panic
//     paths included).
//  3. go statements whose function literal references a loop variable
//     of an enclosing for/range are flagged: Go 1.22 made the capture
//     per-iteration, but the repo pins explicit rebinding so the code
//     reads the same under every toolchain and under copy-paste into
//     older modules.
type GoroutineRule struct{}

func (r *GoroutineRule) Name() string { return "goroutine-discipline" }

func (r *GoroutineRule) Doc() string {
	return "wg.Add must dominate the go it covers; wg.Done on all paths of the goroutine; no loop-variable capture in go literals"
}

// wgCall matches a WaitGroup method call and returns its key.
func wgCall(info *types.Info, call *ast.CallExpr) (objKey, string, bool) {
	recv, method, ok := syncMethod(info, call, "WaitGroup")
	if !ok {
		return objKey{}, "", false
	}
	k, kok := flattenKey(info, recv)
	if !kok {
		return objKey{}, "", false
	}
	return k, method, true
}

// doneKeys collects the WaitGroup keys a goroutine body calls Done on,
// at statement level (nested function literals excluded, except the
// bodies of directly deferred literals, which run on this goroutine).
func doneKeys(info *types.Info, body *ast.BlockStmt) map[objKey]bool {
	keys := map[objKey]bool{}
	var scanCall func(n ast.Node)
	scanCall = func(n ast.Node) {
		ast.Inspect(n, func(x ast.Node) bool {
			if _, isLit := x.(*ast.FuncLit); isLit {
				return false
			}
			if d, ok := x.(*ast.DeferStmt); ok {
				if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
					scanCall(lit.Body)
				}
			}
			if call, ok := x.(*ast.CallExpr); ok {
				if k, method, ok := wgCall(info, call); ok && method == "Done" {
					keys[k] = true
				}
			}
			return true
		})
	}
	scanCall(body)
	return keys
}

// wgSetFact is a must-set of WaitGroup keys (Added, or Done-executed,
// on every path). nil is the empty set.
type wgSetFact map[objKey]bool

func (f wgSetFact) clone() wgSetFact {
	out := make(wgSetFact, len(f))
	for k := range f {
		out[k] = true
	}
	return out
}

// wgFlowMode selects which of the two must-analyses a wgFlow runs.
type wgFlowMode uint8

const (
	modeAddDominates wgFlowMode = iota // fact: Add has run; checked at go statements
	modeDoneAllPaths                   // fact: Done has run; checked at returns
)

type wgFlow struct {
	m    *Module
	pkg  *Package
	mode wgFlowMode
	// local reports whether a key's WaitGroup is declared inside the
	// function under analysis (modeAddDominates only checks those).
	local func(objKey) bool
	// needed are the Done keys under modeDoneAllPaths.
	needed map[objKey]bool
	out    *[]Diagnostic
}

func (wf *wgFlow) Entry() flowFact { return wgSetFact(nil) }

// Join is set intersection: "on every path".
func (wf *wgFlow) Join(a, b flowFact) flowFact {
	fa, fb := a.(wgSetFact), b.(wgSetFact)
	out := make(wgSetFact)
	for k := range fa {
		if fb[k] {
			out[k] = true
		}
	}
	return out
}

func (wf *wgFlow) Equal(a, b flowFact) bool {
	fa, fb := a.(wgSetFact), b.(wgSetFact)
	if len(fa) != len(fb) {
		return false
	}
	for k := range fa {
		if !fb[k] {
			return false
		}
	}
	return true
}

func (wf *wgFlow) Refine(b *cfgBlock, branch bool, out flowFact) flowFact { return out }

func (wf *wgFlow) report(pos token.Pos, format string, args ...interface{}) {
	*wf.out = append(*wf.out, Diagnostic{
		Pos:     wf.m.Fset.Position(pos),
		Rule:    "goroutine-discipline",
		Message: fmt.Sprintf(format, args...),
	})
}

func (wf *wgFlow) Transfer(b *cfgBlock, in flowFact, report bool) flowFact {
	fact := in.(wgSetFact)
	info := wf.pkg.Info

	add := func(k objKey) {
		if !fact[k] {
			fact = fact.clone()
			fact[k] = true
		}
	}
	drop := func(k objKey) {
		if fact[k] {
			fact = fact.clone()
			delete(fact, k)
		}
	}

	for _, n := range b.nodes {
		if d, ok := n.(*ast.DeferStmt); ok {
			// defer wg.Done() (directly or in a deferred literal)
			// counts as Done for everything downstream of the defer.
			if wf.mode == modeDoneAllPaths {
				if k, method, ok := wgCall(info, d.Call); ok && method == "Done" {
					add(k)
				}
				if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
					ast.Inspect(lit.Body, func(x ast.Node) bool {
						if call, ok := x.(*ast.CallExpr); ok {
							if k, method, ok := wgCall(info, call); ok && method == "Done" {
								add(k)
							}
						}
						return true
					})
				}
			}
			continue
		}

		if g, ok := n.(*ast.GoStmt); ok && wf.mode == modeAddDominates && report {
			if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
				for k := range doneKeys(info, lit.Body) {
					if wf.local(k) && !fact[k] {
						wf.report(g.Pos(), "%s.Add does not precede this go statement on every path (the goroutine calls %s.Done)",
							k.path, k.path)
					}
				}
			}
		}

		inspectNode(n, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			k, method, ok := wgCall(info, call)
			if !ok {
				return true
			}
			switch wf.mode {
			case modeAddDominates:
				switch method {
				case "Add":
					add(k)
				case "Wait":
					// Wait consumes the Adds: a go after Wait needs a
					// fresh Add.
					drop(k)
				}
			case modeDoneAllPaths:
				if method == "Done" {
					add(k)
				}
			}
			return true
		})

		if wf.mode == modeDoneAllPaths && report {
			switch rn := n.(type) {
			case *ast.ReturnStmt:
				for k := range wf.needed {
					if !fact[k] {
						wf.report(rn.Pos(), "goroutine may return without %s.Done; call it on every path or defer it", k.path)
					}
				}
			case *implicitReturn:
				for k := range wf.needed {
					if !fact[k] {
						wf.report(rn.Pos(), "goroutine may end without %s.Done; call it on every path or defer it", k.path)
					}
				}
			}
		}
	}
	return fact
}

func (r *GoroutineRule) Check(m *Module) []Diagnostic {
	var out []Diagnostic
	for _, fb := range moduleFuncBodies(m) {
		// Direct statements only: nested literals are their own
		// funcBody entries.
		var goStmts []*ast.GoStmt
		hasWG := false
		inspectNode(fb.body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				goStmts = append(goStmts, n)
			case *ast.CallExpr:
				if _, _, ok := wgCall(fb.pkg.Info, n); ok {
					hasWG = true
				}
			}
			return true
		})

		// (3) loop-variable capture, checked per direct loop.
		r.checkLoopCapture(m, fb, &out)

		if len(goStmts) == 0 {
			continue
		}

		// (2) Done on all paths of each spawned literal.
		for _, g := range goStmts {
			lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
			if !ok {
				continue
			}
			needed := doneKeys(fb.pkg.Info, lit.Body)
			if len(needed) == 0 {
				continue
			}
			wf := &wgFlow{m: m, pkg: fb.pkg, mode: modeDoneAllPaths, needed: needed, out: &out}
			solveFlow(buildCFG(lit.Body, fb.pkg.Info), wf)
		}

		// (1) Add dominates each go statement — but only for
		// WaitGroups declared inside this body. A WaitGroup reaching
		// the function as a parameter, receiver field, or capture may
		// legitimately be Added elsewhere.
		if !hasWG {
			continue
		}
		body := fb.body
		local := func(k objKey) bool {
			return k.root != nil && k.root.Pos() > body.Pos() && k.root.Pos() < body.End()
		}
		wf := &wgFlow{m: m, pkg: fb.pkg, mode: modeAddDominates, local: local, out: &out}
		solveFlow(buildCFG(fb.body, fb.pkg.Info), wf)
	}
	return out
}

// checkLoopCapture flags go statements whose function literal
// references a loop variable of a directly enclosing for/range.
func (r *GoroutineRule) checkLoopCapture(m *Module, fb funcBody, out *[]Diagnostic) {
	info := fb.pkg.Info
	inspectNode(fb.body, func(n ast.Node) bool {
		var loopVars []types.Object
		var body *ast.BlockStmt
		addVar := func(e ast.Expr) {
			if id, ok := e.(*ast.Ident); ok {
				if obj := info.Defs[id]; obj != nil {
					loopVars = append(loopVars, obj)
				}
			}
		}
		switch loop := n.(type) {
		case *ast.ForStmt:
			if init, ok := loop.Init.(*ast.AssignStmt); ok {
				for _, l := range init.Lhs {
					addVar(l)
				}
			}
			body = loop.Body
		case *ast.RangeStmt:
			if loop.Key != nil {
				addVar(loop.Key)
			}
			if loop.Value != nil {
				addVar(loop.Value)
			}
			body = loop.Body
		default:
			return true
		}
		if len(loopVars) == 0 {
			return true
		}
		// Any go statement under this loop — including inside nested
		// literals — whose literal captures one of the loop variables.
		ast.Inspect(body, func(x ast.Node) bool {
			g, ok := x.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
			if !ok {
				return true
			}
			for _, obj := range loopVars {
				if usesObject(info, lit.Body, map[types.Object]bool{obj: true}) {
					*out = append(*out, Diagnostic{
						Pos:  m.Fset.Position(g.Pos()),
						Rule: "goroutine-discipline",
						Message: fmt.Sprintf("goroutine literal captures loop variable %s; rebind it (%s := %s) before the go statement",
							obj.Name(), obj.Name(), obj.Name()),
					})
				}
			}
			return true
		})
		return true
	})
}
