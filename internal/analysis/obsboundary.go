package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// ObsBoundaryRule enforces the observability contract from PR 4: the
// simulation inner loops aggregate into plain struct counters, and
// internal/obs is touched only at run boundaries (PublishMetrics and
// the drivers around it). Concretely: no function reachable from a
// //chirp:hotpath function through statically resolvable calls may
// call into internal/obs — not even reads, since obs counters are
// atomics and vec lookups take locks.
//
// Reachability follows direct function and concrete-method calls
// within the module. Interface method calls are not expanded: the
// policy callbacks a TLB makes are interface calls, and any policy
// implementation that mutates obs per event is caught directly when
// its own methods carry the //chirp:hotpath annotation.
type ObsBoundaryRule struct{}

// Name implements Rule.
func (*ObsBoundaryRule) Name() string { return "obs-boundary" }

// Doc implements Rule.
func (*ObsBoundaryRule) Doc() string {
	return "no internal/obs calls reachable from //chirp:hotpath functions; publish deltas at run boundaries"
}

// Check implements Rule.
func (r *ObsBoundaryRule) Check(m *Module) []Diagnostic {
	idx := moduleFuncIndex(m)
	var out []Diagnostic
	// visited memoizes per root so diagnostics name the hot root they
	// were first reached from; a function shared by two roots reports
	// against each.
	for root, rootPkg := range m.HotpathFuncs() {
		rootName := rootPkg.Types.Name() + "." + funcDisplayName(root)
		visited := map[*ast.FuncDecl]bool{root: true}
		r.walk(m, idx, root, rootPkg, rootName, visited, &out)
	}
	return out
}

// walk scans one function body for obs calls and recurses into
// statically resolved module callees.
func (r *ObsBoundaryRule) walk(m *Module, idx map[*types.Func]funcDeclIn, fd *ast.FuncDecl, p *Package, rootName string, visited map[*ast.FuncDecl]bool, out *[]Diagnostic) {
	if fd.Body == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(p.Info, call)
		if fn == nil {
			return true
		}
		path := pkgPathOf(fn)
		if isObsPackage(path) {
			*out = append(*out, Diagnostic{
				Pos:  m.Fset.Position(call.Pos()),
				Rule: r.Name(),
				Message: fmt.Sprintf("call to %s.%s is reachable from //chirp:hotpath function %s (in %s); aggregate locally and publish deltas at run boundaries",
					pkgBase(path), fn.Name(), rootName, funcDisplayName(fd)),
			})
			return true
		}
		callee, ok := idx[fn]
		if !ok || visited[callee.decl] {
			return true
		}
		visited[callee.decl] = true
		r.walk(m, idx, callee.decl, callee.pkg, rootName, visited, out)
		return true
	})
}

// isObsPackage reports whether an import path is the module's
// internal/obs package (or a fixture standing in for it).
func isObsPackage(path string) bool {
	return path != "" && (strings.HasSuffix(path, "/internal/obs") || path == "internal/obs")
}

// pkgBase returns the last path segment for compact diagnostics.
func pkgBase(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}
