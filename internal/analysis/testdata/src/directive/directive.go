// Package directive exercises the directive hygiene diagnostics the
// framework reports alongside rule findings. The want comments sit on
// their own lines (applying to the line above) because trailing text
// would change how the directives parse.
package directive

var hot = 0

//chirp:hotpath
// want "must appear in a function's doc comment"

//chirp:allow
// want "needs a rule name and a reason"

//chirp:allow no-such-rule because reasons
// want "unknown rule"

//chirp:allow determinism
// want "needs a reason"

func helper() { _ = hot }
