// Package workloads mirrors the real internal/workloads layout so the
// no-deprecated rule's allowPkgs scoping can be exercised: the package
// itself (and its spec subpackage) may construct generators directly;
// everyone else goes through the Workload API.
package workloads

// Generator stands in for the trace generator.
type Generator struct{}

// NewGenerator stands in for the direct constructor the redesigned
// API hides behind (*Workload).Source.
func NewGenerator() *Generator { return &Generator{} }

// Source is the sanctioned wrapper; in-package references to
// NewGenerator are the compat shim and stay legal.
func Source() *Generator { return NewGenerator() }
