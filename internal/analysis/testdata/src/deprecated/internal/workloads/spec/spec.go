// Package spec mirrors internal/workloads/spec: a subpackage of the
// compat shim's allow scope, so its generator construction is legal.
package spec

import workloads "github.com/chirplab/chirp/internal/analysis/testdata/src/deprecated/internal/workloads"

// Compile builds a generator the sanctioned way for a subpackage.
func Compile() *workloads.Generator { return workloads.NewGenerator() }
