// Package sim mirrors the real internal/sim layout so the
// no-deprecated rule's package-suffix matching treats these functions
// as the banned entry points.
package sim

// RunSuiteTLBOnly stands in for the deprecated direct suite runner.
// The recursive call is a self-reference, which the rule exempts.
func RunSuiteTLBOnly(retries int) int {
	if retries > 0 {
		return RunSuiteTLBOnly(retries - 1)
	}
	return 0
}

// RunSuiteTiming stands in for the deprecated timing suite runner.
func RunSuiteTiming() int { return 1 }
