// Package app exercises the no-deprecated rule from the caller's side:
// a direct call, a function-value reference the old grep gate could not
// see, and an allowed legacy call.
package app

import (
	sim "github.com/chirplab/chirp/internal/analysis/testdata/src/deprecated/internal/sim"
	workloads "github.com/chirplab/chirp/internal/analysis/testdata/src/deprecated/internal/workloads"
)

// Sweep calls the banned entry points.
func Sweep() int {
	total := sim.RunSuiteTLBOnly(2) // want "RunSuiteTLBOnly is deprecated; use RunSuiteTLBOnlyCtx"
	f := sim.RunSuiteTiming         // want "RunSuiteTiming is deprecated; use RunSuiteTimingCtx"
	return total + f()
}

// Generate constructs a generator directly, outside the workloads
// packages' allow scope.
func Generate() *workloads.Generator {
	return workloads.NewGenerator() // want "NewGenerator is deprecated"
}

// Pinned documents why one legacy call remains.
func Pinned() int {
	//chirp:allow no-deprecated fixture: golden-output comparison against the legacy runner
	return sim.RunSuiteTiming()
}
