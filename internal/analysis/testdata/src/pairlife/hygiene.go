// Directive-hygiene cases for the pairing grammar. The want comments
// sit on their own lines (applying to the line above) because trailing
// text would change how the directives parse.
package pairlife

//chirp:acquires
// want "takes exactly one token"

//chirp:acquires Two Tokens
// want "takes exactly one token"

//chirp:releases UPPER
// want "takes exactly one token"

//chirp:acquires floating
// want "must appear in a function's doc comment"

var notAFunc = 0

// doubleAcquire declares two acquire tokens; only one is allowed.
//
//chirp:acquires first
//chirp:acquires second
func doubleAcquire() {} // want "duplicate //chirp:acquires"

// multiRelease releases two resource kinds; repetition is legal here.
//
//chirp:releases widget
//chirp:releases handle
func multiRelease(r *res, done func()) {}
