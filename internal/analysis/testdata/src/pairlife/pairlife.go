// Package pairlife exercises the pair-lifetime rule: values produced
// by //chirp:acquires functions must reach a //chirp:releases call on
// every path, fail-fast error paths are refined away, and escaping
// values stop being tracked.
package pairlife

import "errors"

type res struct{ n int }

type holder struct{ r *res }

// acquire hands out a tracked resource.
//
//chirp:acquires widget
func acquire(ok bool) (*res, error) {
	if !ok {
		return nil, errors.New("no")
	}
	return &res{}, nil
}

// release returns a tracked resource.
//
//chirp:releases widget
func release(r *res) {}

// Close releases the resource through a method.
//
//chirp:releases widget
func (r *res) Close() {}

// retain returns a release closure, RetainSpill-style.
//
//chirp:acquires handle
func retain() (string, func(), error) {
	return "h", func() {}, nil
}

func use(r *res) int { return r.n }

// cleanPath acquires, checks the error, uses, releases.
func cleanPath() (int, error) {
	r, err := acquire(true)
	if err != nil {
		return 0, err
	}
	n := use(r)
	release(r)
	return n, nil
}

// cleanDefer releases via defer on every path.
func cleanDefer(flag bool) (int, error) {
	r, err := acquire(true)
	if err != nil {
		return 0, err
	}
	defer release(r)
	if flag {
		return r.n, nil
	}
	return use(r), nil
}

// cleanMethod releases through the annotated method.
func cleanMethod() error {
	r, err := acquire(true)
	if err != nil {
		return err
	}
	r.Close()
	return nil
}

// secondErrorLeaks forgets the release on the second error path —
// the exact bug class this rule exists for.
func secondErrorLeaks(flag bool) (int, error) {
	r, err := acquire(true)
	if err != nil {
		return 0, err
	}
	n, err2 := other(flag)
	if err2 != nil {
		return 0, err2 // want "return may leak"
	}
	release(r)
	return n, nil
}

func other(flag bool) (int, error) {
	if flag {
		return 0, errors.New("other")
	}
	return 1, nil
}

// branchLeaks releases on one branch only.
func branchLeaks(flag bool) {
	r, err := acquire(true)
	if err != nil {
		return
	}
	if flag {
		release(r)
	}
} // want "function may end leaking"

// discarded drops the acquired value on the floor.
func discarded() {
	acquire(true)
} // want "function may end leaking"

// escapesReturn hands the resource to the caller: not a leak here.
func escapesReturn() (*res, error) {
	return acquire(true)
}

// escapesVar hands a bound resource to the caller.
func escapesVar() (*res, error) {
	r, err := acquire(true)
	if err != nil {
		return nil, err
	}
	return r, nil
}

// escapesStruct stores the resource into a longer-lived holder.
func escapesStruct() (*holder, error) {
	r, err := acquire(true)
	if err != nil {
		return nil, err
	}
	return &holder{r: r}, nil
}

// escapesField stores the resource into a field.
func escapesField(h *holder) error {
	r, err := acquire(true)
	if err != nil {
		return err
	}
	h.r = r
	return nil
}

// escapesClosure lets a function literal own the release.
func escapesClosure() (func(), error) {
	r, err := acquire(true)
	if err != nil {
		return nil, err
	}
	return func() { release(r) }, nil
}

// borrow passes the resource to an ordinary callee and still owns it:
// forgetting the release afterwards is a leak.
func borrow() {
	r, err := acquire(true)
	if err != nil {
		return
	}
	use(r)
} // want "function may end leaking"

// closureRelease calls the acquired release closure.
func closureRelease() error {
	_, done, err := retain()
	if err != nil {
		return err
	}
	done()
	return nil
}

// closureDeferRelease defers the acquired release closure.
func closureDeferRelease(flag bool) error {
	_, done, err := retain()
	if err != nil {
		return err
	}
	defer done()
	if flag {
		return errors.New("later")
	}
	return nil
}

// closureLeak forgets to call the release closure on the early return.
func closureLeak(flag bool) error {
	_, done, err := retain()
	if err != nil {
		return err
	}
	if flag {
		return errors.New("early") // want "return may leak"
	}
	done()
	return nil
}

// loopClean acquires and releases every iteration.
func loopClean(n int) {
	for i := 0; i < n; i++ {
		r, err := acquire(true)
		if err != nil {
			continue
		}
		release(r)
	}
}

// sharedCleanup intentionally leaks here; a process-exit hook owns it.
//
//chirp:allow pair-lifetime released by the process-exit hook
func sharedCleanup() {
	acquire(true)
}
