// Package lockbalance exercises the lock-balance dataflow rule:
// Lock/Unlock pairing across branches, defers, and blocking
// operations performed while a lock is held.
package lockbalance

import "sync"

type guarded struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	n   int
	ch  chan int
	wg  sync.WaitGroup
	out chan int
}

// balanced locks and unlocks on the single path.
func (g *guarded) balanced() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

// deferred releases via defer; every return path is covered.
func (g *guarded) deferred(flag bool) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if flag {
		return g.n
	}
	return 0
}

// branchLeak unlocks on one branch only.
func (g *guarded) branchLeak(flag bool) int {
	g.mu.Lock()
	if flag {
		g.mu.Unlock()
		return g.n
	}
	return g.n // want "return while g.mu is still held"
}

// fallOffEnd never unlocks at all.
func (g *guarded) fallOffEnd() {
	g.mu.Lock()
	g.n++
} // want "function ends while g.mu is still held"

// bothBranches unlocks on every branch.
func (g *guarded) bothBranches(flag bool) {
	g.mu.Lock()
	if flag {
		g.mu.Unlock()
		return
	}
	g.mu.Unlock()
}

// sendWhileLocked performs a channel send with the mutex held.
func (g *guarded) sendWhileLocked(v int) {
	g.mu.Lock()
	g.ch <- v // want "g.mu is held across a channel send"
	g.mu.Unlock()
}

// recvWhileLocked performs a channel receive with the mutex held.
func (g *guarded) recvWhileLocked() int {
	g.mu.Lock()
	v := <-g.ch // want "g.mu is held across a channel receive"
	g.mu.Unlock()
	return v
}

// recvAfterUnlock is the fixed version: release first.
func (g *guarded) recvAfterUnlock() int {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
	return <-g.ch
}

// selectWhileLocked blocks in a default-less select with the lock.
func (g *guarded) selectWhileLocked() {
	g.mu.Lock()
	select { // want "g.mu is held across a select with no default"
	case v := <-g.ch:
		g.n = v
	case g.out <- g.n:
	}
	g.mu.Unlock()
}

// selectWithDefault never blocks: allowed while holding the lock.
func (g *guarded) selectWithDefault() {
	g.mu.Lock()
	select {
	case v := <-g.ch:
		g.n = v
	default:
	}
	g.mu.Unlock()
}

// waitWhileLocked blocks on a WaitGroup with the lock held.
func (g *guarded) waitWhileLocked() {
	g.mu.Lock()
	g.wg.Wait() // want "g.mu is held across sync.Wait"
	g.mu.Unlock()
}

// rangeChanWhileLocked iterates a channel with the lock held.
func (g *guarded) rangeChanWhileLocked() {
	g.mu.Lock()
	for v := range g.ch { // want "g.mu is held across a range over a channel"
		g.n += v
	}
	g.mu.Unlock()
}

// readLockLeak forgets RUnlock on the early return.
func (g *guarded) readLockLeak(flag bool) int {
	g.rw.RLock()
	if flag {
		return g.n // want "return while g.rw .read lock. is still held"
	}
	g.rw.RUnlock()
	return 0
}

// separateLocks tracks two mutexes independently.
func (g *guarded) separateLocks(other *sync.Mutex) {
	other.Lock()
	g.mu.Lock()
	g.mu.Unlock()
	other.Unlock()
}

// loopBalanced locks and unlocks inside the loop body.
func (g *guarded) loopBalanced(n int) {
	for i := 0; i < n; i++ {
		g.mu.Lock()
		g.n++
		g.mu.Unlock()
	}
}

// deferredInClosure releases through a deferred function literal.
func (g *guarded) deferredInClosure() {
	g.mu.Lock()
	defer func() {
		g.n++
		g.mu.Unlock()
	}()
	g.n++
}

// handoff intentionally returns with the lock held; the caller
// releases it.
//
//chirp:allow lock-balance the caller owns the unlock by contract
func (g *guarded) handoff() {
	g.mu.Lock()
	g.n++
}
