// Package sim mirrors the real internal/sim layout so the ctx-first
// rule's scope matching picks this fixture up.
package sim

import "context"

// Run is correctly context-first.
func Run(ctx context.Context, n int) error { return ctx.Err() }

// RunLate takes its context second.
func RunLate(n int, ctx context.Context) error { return ctx.Err() } // want "RunLate takes context.Context as parameter 1; it must be first"

// Launch starts a goroutine without taking any context.
func Launch(n int) { // want "Launch launches goroutines but does not take a context.Context first parameter"
	go func() { _ = n }()
}

// Detach severs the caller's cancellation chain.
func Detach(n int) error {
	return work(context.Background(), n) // want "context.Background inside exported Detach"
}

func work(ctx context.Context, n int) error { return ctx.Err() }

// Legacy is a compatibility wrapper whose allow documents why it may
// mint its own context.
//
//chirp:allow ctx-first fixture: deprecated wrapper kept for source compatibility
func Legacy(n int) error {
	return work(context.Background(), n)
}

// helper is unexported: the rule leaves it alone.
func helper(n int) error {
	return work(context.Background(), n)
}
