// Package atomicmix exercises the atomic-mix rule: a field or
// variable accessed through function-style sync/atomic anywhere must
// never be read or written plainly elsewhere.
package atomicmix

import "sync/atomic"

type counters struct {
	hits   int64 // accessed atomically AND plainly: every plain use flagged
	misses int64 // only ever atomic: clean
	local  int64 // only ever plain: clean
	typed  atomic.Int64
}

var total uint64 // package-level, mixed

func (c *counters) bump() {
	atomic.AddInt64(&c.hits, 1)
	atomic.AddInt64(&c.misses, 1)
	atomic.AddUint64(&total, 1)
}

func (c *counters) readAtomic() int64 {
	return atomic.LoadInt64(&c.hits) + atomic.LoadInt64(&c.misses)
}

func (c *counters) plainRead() int64 {
	return c.hits // want "read/written plainly"
}

func (c *counters) plainWrite() {
	c.hits = 0 // want "read/written plainly"
}

func (c *counters) cleanPlain() int64 {
	c.local++
	return c.local
}

func (c *counters) typedAtomic() int64 {
	c.typed.Add(1)
	return c.typed.Load()
}

func readTotal() uint64 {
	return total // want "read/written plainly"
}

// resetForTest is init-time code that runs before any goroutine
// starts, so the plain store is safe.
func (c *counters) resetForTest() {
	//chirp:allow atomic-mix runs before any goroutine starts
	c.hits = 0
}
