// Package goroutine exercises the goroutine-discipline rule: Add
// dominating the go it covers, Done on all paths of the spawned
// literal, and loop-variable capture.
package goroutine

import "sync"

func work(int) {}

// cleanAddGo is the canonical shape.
func cleanAddGo(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work(0)
		}()
	}
	wg.Wait()
}

// missingAdd spawns a Done-calling goroutine with no Add at all.
func missingAdd() {
	var wg sync.WaitGroup
	go func() { // want "wg.Add does not precede this go statement"
		defer wg.Done()
	}()
	wg.Wait()
}

// branchAdd only Adds on one path.
func branchAdd(flag bool) {
	var wg sync.WaitGroup
	if flag {
		wg.Add(1)
	}
	go func() { // want "wg.Add does not precede this go statement"
		defer wg.Done()
	}()
	wg.Wait()
}

// addAfterWait reuses the WaitGroup without a fresh Add.
func addAfterWait() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
	go func() { // want "wg.Add does not precede this go statement"
		defer wg.Done()
	}()
	wg.Wait()
}

// doneEveryPath calls Done explicitly on both branches.
func doneEveryPath(flag bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		if flag {
			work(1)
			wg.Done()
			return
		}
		wg.Done()
	}()
	wg.Wait()
}

// doneMissingOnPath returns early without Done.
func doneMissingOnPath(flag bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		if flag {
			return // want "goroutine may return without wg.Done"
		}
		wg.Done()
	}()
	wg.Wait()
}

// doneInDeferredClosure covers every path through a deferred literal.
func doneInDeferredClosure() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer func() {
			wg.Done()
		}()
		work(2)
	}()
	wg.Wait()
}

// captureLoopVar references the loop variable from the goroutine.
func captureLoopVar(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { // want "captures loop variable i"
			defer wg.Done()
			work(i)
		}()
	}
	wg.Wait()
}

// captureRangeVar references the range value variable.
func captureRangeVar(xs []int) {
	for _, x := range xs {
		go func() { // want "captures loop variable x"
			work(x)
		}()
	}
}

// rebound copies the loop variable first: clean.
func rebound(n int) {
	for i := 0; i < n; i++ {
		i := i
		go func() {
			work(i)
		}()
	}
}

// passedAsArg evaluates the loop variable at spawn time: clean.
func passedAsArg(n int) {
	for i := 0; i < n; i++ {
		go work(i)
	}
}

// externalWaitGroup is coordinated by the caller; Adds happen there,
// so the same-function check does not apply.
func externalWaitGroup(wg *sync.WaitGroup) {
	go func() {
		defer wg.Done()
		work(3)
	}()
}

// allowedHandoff is covered by an allow with a reason.
//
//chirp:allow goroutine-discipline the lifecycle manager Adds before dispatch
func allowedHandoff() {
	var wg sync.WaitGroup
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}
