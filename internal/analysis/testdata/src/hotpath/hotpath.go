// Package hotpathfix exercises the hotpath-alloc rule: one specimen of
// every banned construct, plus the //chirp:allow suppressions the rule
// must honor.
package hotpathfix

import "fmt"

type sink interface{ put(x any) }

type table struct {
	buf []uint64
	s   sink
}

func done() {}

// grow trips every allocation check the rule implements.
//
//chirp:hotpath
func (t *table) grow(n int) string {
	t.buf = append(t.buf, uint64(n)) // want "append in hot-path function table.grow"
	b := make([]byte, n)             // want "make in hot-path function table.grow"
	p := new(int)                    // want "new in hot-path function table.grow"
	_ = p
	s := string(b)     // want "string/slice conversion in hot-path function table.grow"
	s = s + "x"        // want "string concatenation in hot-path function table.grow"
	m := map[int]int{} // want "map literal in hot-path function table.grow"
	_ = m
	sl := []int{1} // want "slice literal in hot-path function table.grow"
	_ = sl
	f := func() {} // want "closure creation in hot-path function table.grow"
	f()
	defer done()  // want "defer in hot-path function table.grow"
	go done()     // want "go statement in hot-path function table.grow"
	fmt.Println() // want "fmt.Println call in hot-path function table.grow"
	t.s.put(n)    // want "argument boxes concrete int into"
	return s
}

// fill is covered whole-function by the doc-comment allow: the scratch
// buffer is preallocated, so this append cannot grow.
//
//chirp:allow hotpath-alloc fixture: append into preallocated scratch cannot grow
//chirp:hotpath
func (t *table) fill(n int) {
	t.buf = append(t.buf, uint64(n))
}

// scratch demonstrates the line-scoped allow form.
//
//chirp:hotpath
func scratch(n int) []byte {
	//chirp:allow hotpath-alloc fixture: one-time setup outside the measured loop
	return make([]byte, n)
}

// cold is unannotated: the same constructs draw no diagnostics.
func cold(n int) []byte {
	defer done()
	return make([]byte, n)
}
