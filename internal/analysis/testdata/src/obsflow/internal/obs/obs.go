// Package obs is a fixture stand-in for the real internal/obs: the
// obs-boundary rule matches any package path ending in internal/obs, so
// the fixture needs no dependency on the real metrics registry.
package obs

// Count stands in for a metric mutation.
func Count(n uint64) {}
