// Package obsflow exercises the obs-boundary rule: a direct obs call
// inside a //chirp:hotpath root, a transitive one through an
// unannotated helper, and an allowed publish site.
package obsflow

import "github.com/chirplab/chirp/internal/analysis/testdata/src/obsflow/internal/obs"

var events uint64

// step is a hot root that touches obs directly and through record.
//
//chirp:hotpath
func step() {
	obs.Count(1) // want "call to obs.Count is reachable from //chirp:hotpath function obsflow.step"
	record()
}

// record is not annotated itself but is reachable from step.
func record() {
	events++
	obs.Count(events) // want "call to obs.Count is reachable from //chirp:hotpath function obsflow.step"
}

// stepAllowed reaches obs only through the pinned publish below.
//
//chirp:hotpath
func stepAllowed() {
	publish()
}

// publish is the run-boundary flush; the allow documents that the
// boundary itself is the one place obs may be touched.
func publish() {
	//chirp:allow obs-boundary fixture: run-boundary publish site
	obs.Count(events)
}
