// Package workloads mirrors the real internal/workloads layout so the
// determinism rule's scope matching picks this fixture up.
package workloads

import (
	"math/rand" // want "import of math/rand in workloads"
	"sort"
	"time"
)

// Stamp leaks the wall clock into a result.
func Stamp() int64 {
	return time.Now().UnixNano() // want "time.Now in workloads"
}

// Age leaks a wall-clock delta.
func Age(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since in workloads"
}

// Shuffle uses the global math/rand stream; the import diagnostic
// covers it.
func Shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// Keys ranges over a map without sorting afterwards.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m { // want "map iteration order is randomized per run"
		out = append(out, k)
	}
	return out
}

// SortedKeys collects then sorts; the allow records why the range
// order cannot escape.
func SortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	//chirp:allow determinism fixture: keys are sorted before return
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
