package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// HotpathAllocRule enforces that //chirp:hotpath functions — the
// per-event inner loops whose speed the BENCH_hotpath.json baselines
// measure — contain no construct that allocates or schedules:
//
//   - make, new, and append (append may grow its backing array; reuse
//     patterns that provably cannot grow take a //chirp:allow);
//   - map and slice composite literals;
//   - closure creation (func literals capture by reference and
//     heap-allocate);
//   - defer (deferred frames are heap-allocated until Go's open-coded
//     cases apply, and add per-call overhead either way);
//   - go statements;
//   - calls into fmt (formatting allocates and reflects);
//   - string concatenation and string<->[]byte/[]rune conversions;
//   - implicit conversions of concrete values to interface parameters
//     (boxing allocates unless escape analysis saves it — on the hot
//     path we do not gamble).
//
// Built-in calls like panic are exempt from the interface-boxing check:
// a reached panic has already left the hot path.
type HotpathAllocRule struct{}

// Name implements Rule.
func (*HotpathAllocRule) Name() string { return "hotpath-alloc" }

// Doc implements Rule.
func (*HotpathAllocRule) Doc() string {
	return "//chirp:hotpath functions must be free of allocation, defer, closures, fmt, and interface boxing"
}

// Check implements Rule.
func (r *HotpathAllocRule) Check(m *Module) []Diagnostic {
	var out []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, Diagnostic{
			Pos:     m.Fset.Position(pos),
			Rule:    r.Name(),
			Message: fmt.Sprintf(format, args...),
		})
	}
	for fd, p := range m.HotpathFuncs() {
		if fd.Body == nil {
			continue
		}
		name := funcDisplayName(fd)
		info := p.Info
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				report(n.Pos(), "defer in hot-path function %s", name)
			case *ast.GoStmt:
				report(n.Pos(), "go statement in hot-path function %s", name)
			case *ast.FuncLit:
				report(n.Pos(), "closure creation in hot-path function %s allocates", name)
			case *ast.CompositeLit:
				switch info.Types[n].Type.Underlying().(type) {
				case *types.Map:
					report(n.Pos(), "map literal in hot-path function %s allocates", name)
				case *types.Slice:
					report(n.Pos(), "slice literal in hot-path function %s allocates", name)
				}
			case *ast.BinaryExpr:
				if n.Op == token.ADD && isString(info.Types[n.X].Type) {
					report(n.Pos(), "string concatenation in hot-path function %s allocates", name)
				}
			case *ast.CallExpr:
				r.checkCall(info, n, name, report)
			}
			return true
		})
	}
	return out
}

// checkCall applies the call-shaped checks: banned built-ins, fmt,
// allocating conversions, and interface boxing of arguments.
func (*HotpathAllocRule) checkCall(info *types.Info, call *ast.CallExpr, name string, report func(token.Pos, string, ...any)) {
	switch calleeBuiltin(info, call) {
	case "make":
		report(call.Pos(), "make in hot-path function %s allocates", name)
		return
	case "new":
		report(call.Pos(), "new in hot-path function %s allocates", name)
		return
	case "append":
		report(call.Pos(), "append in hot-path function %s may grow its backing array", name)
		return
	case "":
	default:
		return // other built-ins (len, cap, panic, ...) never box their args
	}

	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// Type conversion: string <-> []byte/[]rune copies.
		target := tv.Type
		if len(call.Args) == 1 {
			src := info.Types[call.Args[0]].Type
			if src != nil && ((isString(target) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(target) && isString(src))) {
				report(call.Pos(), "string/slice conversion in hot-path function %s allocates", name)
			}
		}
		return
	}

	if fn := calleeFunc(info, call); fn != nil && pkgPathOf(fn) == "fmt" {
		report(call.Pos(), "fmt.%s call in hot-path function %s allocates and reflects", fn.Name(), name)
		return
	}

	sig, ok := info.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type() // arg is already the slice
			} else {
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !isInterface(pt) {
			continue
		}
		at := info.Types[arg].Type
		if at == nil || isInterface(at) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		report(arg.Pos(), "argument boxes concrete %s into %s in hot-path function %s", at, pt, name)
	}
}
