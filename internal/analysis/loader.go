package analysis

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked module package under analysis.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the package's directory on disk.
	Dir string
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the identifier/type resolution the rules consume.
	Info *types.Info
}

// Module is a loaded set of packages sharing one FileSet and one
// directive index; rules run against it.
type Module struct {
	// Path is the module path from go.mod.
	Path string
	// Dir is the module root directory.
	Dir string
	// Fset positions every parsed file.
	Fset *token.FileSet
	// Pkgs are the analyzed packages, sorted by import path.
	Pkgs []*Package

	hotpath           map[*ast.FuncDecl]*Package
	allows            map[string][]allowRange
	acquires          map[*ast.FuncDecl]string
	releases          map[*ast.FuncDecl][]string
	directiveProblems []Diagnostic
}

// Loader parses and type-checks packages without golang.org/x/tools:
// module-internal import paths resolve to directories by stripping the
// module prefix, standard-library paths resolve into GOROOT/src (and
// GOROOT/src/vendor), and everything is type-checked from source. The
// module's zero-require policy makes this complete — there are no
// third-party imports to resolve.
type Loader struct {
	// Dir is the module root (the directory holding go.mod).
	Dir string
	// ModulePath overrides the module path; read from go.mod when
	// empty.
	ModulePath string

	fset *token.FileSet
	ctxt build.Context
	pkgs map[string]*loadEntry
}

type loadEntry struct {
	types    *types.Package
	analysis *Package
	err      error
	loading  bool
}

// NewLoader returns a loader rooted at the module directory.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	l := &Loader{Dir: abs, fset: token.NewFileSet(), pkgs: map[string]*loadEntry{}}
	l.ctxt = build.Default
	// Constraint evaluation only; never compile cgo. Every stdlib
	// package the simulator pulls in has a pure-Go fallback.
	l.ctxt.CgoEnabled = false
	if l.ModulePath == "" {
		mp, err := modulePath(filepath.Join(abs, "go.mod"))
		if err != nil {
			return nil, err
		}
		l.ModulePath = mp
	}
	return l, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// LoadModule walks the module tree, loads every non-test package
// (skipping testdata, hidden and underscore-prefixed directories), and
// returns the Module with its directive index built.
func (l *Loader) LoadModule() (*Module, error) {
	var dirs []string
	err := filepath.WalkDir(l.Dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.Dir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return l.LoadDirs(dirs...)
}

// LoadDirs loads the packages in the given directories (directories
// without buildable Go sources are skipped) and returns them as a
// Module. Paths may be absolute or relative to the module root.
func (l *Loader) LoadDirs(dirs ...string) (*Module, error) {
	m := &Module{
		Path: l.ModulePath, Dir: l.Dir, Fset: l.fset,
		hotpath:  map[*ast.FuncDecl]*Package{},
		allows:   map[string][]allowRange{},
		acquires: map[*ast.FuncDecl]string{},
		releases: map[*ast.FuncDecl][]string{},
	}
	seen := map[string]bool{}
	for _, dir := range dirs {
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(l.Dir, dir)
		}
		imp, err := l.pathFor(dir)
		if err != nil {
			return nil, err
		}
		if seen[imp] {
			continue
		}
		seen[imp] = true
		if _, err := l.ctxt.ImportDir(dir, 0); err != nil {
			var noGo *build.NoGoError
			if errors.As(err, &noGo) {
				continue
			}
			return nil, fmt.Errorf("analysis: %s: %w", dir, err)
		}
		pkg, err := l.load(imp)
		if err != nil {
			return nil, err
		}
		if pkg.analysis == nil {
			return nil, fmt.Errorf("analysis: %s resolved outside the module", dir)
		}
		m.Pkgs = append(m.Pkgs, pkg.analysis)
	}
	sort.Slice(m.Pkgs, func(i, j int) bool { return m.Pkgs[i].Path < m.Pkgs[j].Path })
	m.collectDirectives()
	return m, nil
}

// pathFor maps a directory under the module root to its import path.
func (l *Loader) pathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.Dir, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module root %s", dir, l.Dir)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	e, err := l.load(path)
	if err != nil {
		return nil, err
	}
	return e.types, nil
}

// load type-checks the package at import path, memoized. Module
// packages get full syntax, comments and types.Info; dependencies
// outside the module (the standard library) are checked for their
// exported API only.
func (l *Loader) load(path string) (*loadEntry, error) {
	if path == "unsafe" {
		return &loadEntry{types: types.Unsafe}, nil
	}
	if e, ok := l.pkgs[path]; ok {
		if e.loading {
			return nil, fmt.Errorf("analysis: import cycle through %q", path)
		}
		return e, e.err
	}
	e := &loadEntry{loading: true}
	l.pkgs[path] = e

	inModule := path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/")
	dir, err := l.resolveDir(path, inModule)
	if err == nil {
		err = l.check(e, path, dir, inModule)
	}
	e.loading = false
	if err != nil {
		e.err = fmt.Errorf("analysis: loading %q: %w", path, err)
	}
	return e, e.err
}

// resolveDir maps an import path to its source directory.
func (l *Loader) resolveDir(path string, inModule bool) (string, error) {
	if inModule {
		return filepath.Join(l.Dir, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/"))), nil
	}
	goroot := runtime.GOROOT()
	for _, dir := range []string{
		filepath.Join(goroot, "src", filepath.FromSlash(path)),
		filepath.Join(goroot, "src", "vendor", filepath.FromSlash(path)),
	} {
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, nil
		}
	}
	return "", fmt.Errorf("cannot resolve import (not in module %s, GOROOT/src or GOROOT/src/vendor)", l.ModulePath)
}

// check parses and type-checks one package directory into e.
func (l *Loader) check(e *loadEntry, path, dir string, inModule bool) error {
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return err
	}
	mode := parser.SkipObjectResolution
	if inModule {
		mode |= parser.ParseComments
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, mode)
		if err != nil {
			return err
		}
		files = append(files, f)
	}
	var info *types.Info
	if inModule {
		info = &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
		Error: func(err error) {
			typeErrs = append(typeErrs, err)
		},
	}
	tp, err := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return errors.Join(typeErrs...)
	}
	if err != nil {
		return err
	}
	e.types = tp
	if inModule {
		e.analysis = &Package{Path: path, Dir: dir, Files: files, Types: tp, Info: info}
	}
	return nil
}
