// A small forward worklist dataflow solver over the CFGs built in
// cfg.go. Rules supply a flowRule describing their lattice and
// transfer function; the solver iterates to a fixpoint and then runs
// one reporting pass with converged block-entry facts, so diagnostics
// are emitted exactly once per program point regardless of how many
// times the worklist revisited a block.
package analysis

// flowFact is an opaque lattice element. Facts must be treated as
// immutable by Transfer/Refine: return a new value instead of
// mutating, because a block's entry fact is joined from (and aliased
// by) its predecessors' exit facts.
type flowFact interface{}

// flowRule is one forward dataflow problem over a single function.
type flowRule interface {
	// Entry is the fact at function entry.
	Entry() flowFact
	// Join combines two facts at a control-flow merge.
	Join(a, b flowFact) flowFact
	// Equal reports fact equality; the solver stops when every
	// block's entry fact is stable under Equal.
	Equal(a, b flowFact) bool
	// Transfer flows a fact through one block. report is non-nil only
	// during the final reporting pass; during fixpoint iteration it
	// is nil and implementations must not emit diagnostics.
	Transfer(b *cfgBlock, in flowFact, report bool) flowFact
	// Refine adjusts the fact flowing along one edge of a kindCond
	// block. branch is true for the Succs[0] (condition-true) edge.
	// Most rules return out unchanged; pair-lifetime uses it to drop
	// acquisitions on the `err != nil` edge of their own error check.
	Refine(b *cfgBlock, branch bool, out flowFact) flowFact
}

// solveFlow runs rule to fixpoint over g and then performs the
// reporting pass. It returns the converged fact at the exit block's
// entry (the join over all return paths), which rules use for
// end-of-function checks ("lock still held", "acquisition leaked").
func solveFlow(g *cfg, rule flowRule) flowFact {
	blocks := g.reachable()
	in := make([]flowFact, len(g.blocks))
	have := make([]bool, len(g.blocks))
	in[g.entry.index] = rule.Entry()
	have[g.entry.index] = true

	// Worklist seeded in reverse post-order: loop-free code converges
	// in one sweep, loops in a handful.
	inList := make([]bool, len(g.blocks))
	var list []*cfgBlock
	for _, b := range blocks {
		list = append(list, b)
		inList[b.index] = true
	}
	for len(list) > 0 {
		b := list[0]
		list = list[1:]
		inList[b.index] = false
		if !have[b.index] {
			continue // no predecessor has produced a fact yet
		}
		out := rule.Transfer(b, in[b.index], false)
		for i, s := range b.succs {
			f := out
			if b.kind == kindCond && i < 2 {
				f = rule.Refine(b, i == 0, out)
			}
			if !have[s.index] {
				in[s.index] = f
				have[s.index] = true
			} else {
				joined := rule.Join(in[s.index], f)
				if rule.Equal(joined, in[s.index]) {
					continue
				}
				in[s.index] = joined
			}
			if !inList[s.index] {
				list = append(list, s)
				inList[s.index] = true
			}
		}
	}

	// Reporting pass: converged entry facts, diagnostics enabled.
	for _, b := range blocks {
		if have[b.index] {
			rule.Transfer(b, in[b.index], true)
		}
	}
	if have[g.exit.index] {
		return in[g.exit.index]
	}
	// Function cannot fall off the end (infinite loop, panics on all
	// paths): there is no exit fact.
	return nil
}
