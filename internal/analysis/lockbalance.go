package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockBalanceRule checks, per function, that every sync.Mutex/RWMutex
// Lock reaches its Unlock on all paths (directly or via defer), and
// that no lock is held across an operation that can block on other
// goroutines: channel send/receive, select without default, range
// over a channel, WaitGroup.Wait, or Cond.Wait. Locks are named by
// their receiver chain (s.mu), so distinct mutexes are tracked
// independently; functions that intentionally return holding a lock
// must carry a //chirp:allow lock-balance with the reason.
type LockBalanceRule struct{}

func (r *LockBalanceRule) Name() string { return "lock-balance" }

func (r *LockBalanceRule) Doc() string {
	return "mutex Lock must reach Unlock on all paths; no lock held across blocking channel/Wait operations"
}

// lockState distinguishes "held on every path here" from "held on
// some path only" — the latter is already a balance bug at any merge
// that reaches a return.
type lockState uint8

const (
	lockHeld lockState = iota + 1
	lockMixed
)

type lockEntry struct {
	state lockState
	pos   token.Pos // earliest Lock site, for the diagnostic
	read  bool      // RLock rather than Lock
}

// lockFact maps each named mutex to its hold state. Facts are
// copy-on-write: transfer clones before mutating.
type lockFact map[objKey]lockEntry

func (f lockFact) clone() lockFact {
	out := make(lockFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// lockFlow is the per-function dataflow problem.
type lockFlow struct {
	m    *Module
	pkg  *Package
	fn   funcBody
	comm map[ast.Node]bool // select comm statements (head reports them)
	out  *[]Diagnostic
}

func (lf *lockFlow) Entry() flowFact { return lockFact(nil) }

func (lf *lockFlow) Join(a, b flowFact) flowFact {
	fa, fb := a.(lockFact), b.(lockFact)
	out := make(lockFact, len(fa)+len(fb))
	for k, va := range fa {
		if vb, ok := fb[k]; ok {
			e := va
			if vb.state != va.state {
				e.state = lockMixed
			}
			if vb.pos < e.pos {
				e.pos = vb.pos
			}
			out[k] = e
		} else {
			va.state = lockMixed
			out[k] = va
		}
	}
	for k, vb := range fb {
		if _, ok := fa[k]; !ok {
			vb.state = lockMixed
			out[k] = vb
		}
	}
	return out
}

func (lf *lockFlow) Equal(a, b flowFact) bool {
	fa, fb := a.(lockFact), b.(lockFact)
	if len(fa) != len(fb) {
		return false
	}
	for k, va := range fa {
		if vb, ok := fb[k]; !ok || va != vb {
			return false
		}
	}
	return true
}

func (lf *lockFlow) Refine(b *cfgBlock, branch bool, out flowFact) flowFact { return out }

func (lf *lockFlow) report(pos token.Pos, format string, args ...interface{}) {
	*lf.out = append(*lf.out, Diagnostic{
		Pos:     lf.m.Fset.Position(pos),
		Rule:    "lock-balance",
		Message: fmt.Sprintf(format, args...),
	})
}

// lockName renders a lock key for diagnostics, stripping the internal
// read-mode marker.
func lockName(k objKey, read bool) string {
	path := strings.TrimSuffix(k.path, "#r")
	if read {
		return path + " (read lock)"
	}
	return path
}

func (lf *lockFlow) Transfer(b *cfgBlock, in flowFact, report bool) flowFact {
	fact := in.(lockFact)
	info := lf.pkg.Info

	// blockedOn reports every held lock at a blocking operation.
	blockedOn := func(pos token.Pos, what string) {
		if !report {
			return
		}
		for k, e := range fact {
			lf.report(pos, "%s is held across %s; release the lock first", lockName(k, e.read), what)
		}
	}

	if b.kind == kindRangeHead && len(fact) > 0 {
		if rs, ok := b.stmt.(*ast.RangeStmt); ok {
			if tv, ok := info.Types[rs.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					blockedOn(rs.Pos(), "a range over a channel")
				}
			}
		}
	}

	for _, n := range b.nodes {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// A deferred unlock releases the lock for everything that
			// runs after the defer statement (sound for the code
			// below it; returns *before* the defer still see it held).
			fact = lf.applyUnlocks(fact, n.Call)
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(x ast.Node) bool {
					if call, ok := x.(*ast.CallExpr); ok {
						fact = lf.applyUnlocks(fact, call)
					}
					return true
				})
			}
			continue
		case *ast.ReturnStmt:
			if report {
				for k, e := range fact {
					lf.report(n.Pos(), "return while %s is still held (locked at line %d); unlock on every path or defer the unlock",
						lockName(k, e.read), lf.m.Fset.Position(e.pos).Line)
				}
			}
			continue
		case *implicitReturn:
			if report {
				for k, e := range fact {
					lf.report(n.Pos(), "function ends while %s is still held (locked at line %d); unlock on every path or defer the unlock",
						lockName(k, e.read), lf.m.Fset.Position(e.pos).Line)
				}
			}
			continue
		}

		inspectNode(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.CallExpr:
				if recv, method, ok := syncMethod(info, x, "Mutex", "RWMutex"); ok {
					if k, kok := flattenKey(info, recv); kok {
						switch method {
						case "Lock", "RLock":
							read := method == "RLock"
							kk := k
							if read {
								kk.path += "#r"
							}
							fact = fact.clone()
							fact[kk] = lockEntry{state: lockHeld, pos: x.Pos(), read: read}
						case "Unlock", "RUnlock":
							kk := k
							if method == "RUnlock" {
								kk.path += "#r"
							}
							if _, held := fact[kk]; held {
								fact = fact.clone()
								delete(fact, kk)
							}
						}
					}
					return true
				}
				if _, method, ok := syncMethod(info, x, "WaitGroup", "Cond"); ok && method == "Wait" && len(fact) > 0 {
					blockedOn(x.Pos(), "sync."+method+" (WaitGroup/Cond)")
				}
			case *ast.SendStmt:
				if !lf.comm[x] && len(fact) > 0 {
					blockedOn(x.Pos(), "a channel send")
				}
			case *ast.UnaryExpr:
				if x.Op == token.ARROW && len(fact) > 0 && !lf.insideComm(n) {
					blockedOn(x.Pos(), "a channel receive")
				}
			}
			return true
		})
	}

	// The select dispatch sits at the end of its head block, so the
	// blocking check runs after any Lock earlier in the same block.
	if b.kind == kindSelect {
		if sel, ok := b.stmt.(*ast.SelectStmt); ok && len(fact) > 0 {
			hasDefault := false
			for _, cl := range sel.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				blockedOn(sel.Pos(), "a select with no default")
			}
		}
	}
	return fact
}

// insideComm reports whether the CFG node is a select comm statement
// (the select head already reported the blocking point).
func (lf *lockFlow) insideComm(n ast.Node) bool { return lf.comm[n] }

// applyUnlocks deletes every lock that call releases (direct
// mu.Unlock / mu.RUnlock calls only).
func (lf *lockFlow) applyUnlocks(fact lockFact, call *ast.CallExpr) lockFact {
	recv, method, ok := syncMethod(lf.pkg.Info, call, "Mutex", "RWMutex")
	if !ok || (method != "Unlock" && method != "RUnlock") {
		return fact
	}
	k, kok := flattenKey(lf.pkg.Info, recv)
	if !kok {
		return fact
	}
	if method == "RUnlock" {
		k.path += "#r"
	}
	if _, held := fact[k]; held {
		fact = fact.clone()
		delete(fact, k)
	}
	return fact
}

// Check runs the lock dataflow over every function body in the module.
func (r *LockBalanceRule) Check(m *Module) []Diagnostic {
	var out []Diagnostic
	for _, fb := range moduleFuncBodies(m) {
		// Cheap gate: skip bodies that never call Lock/RLock.
		locks := false
		ast.Inspect(fb.body, func(n ast.Node) bool {
			if locks {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if _, method, ok := syncMethod(fb.pkg.Info, call, "Mutex", "RWMutex"); ok && (method == "Lock" || method == "RLock") {
					locks = true
				}
			}
			return !locks
		})
		if !locks {
			continue
		}
		lf := &lockFlow{m: m, pkg: fb.pkg, fn: fb, comm: map[ast.Node]bool{}, out: &out}
		ast.Inspect(fb.body, func(n ast.Node) bool {
			if cc, ok := n.(*ast.CommClause); ok && cc.Comm != nil {
				lf.comm[cc.Comm] = true
			}
			return true
		})
		g := buildCFG(fb.body, fb.pkg.Info)
		solveFlow(g, lf)
	}
	return out
}
