package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMixRule reports variables and struct fields that are accessed
// through the function-style sync/atomic API (atomic.AddInt64(&s.n,…))
// in one place and read or written plainly in another, anywhere in the
// module. Mixing the two silently drops the atomicity guarantee: the
// plain access races with the atomic ones. Typed atomics
// (atomic.Int64 fields) are immune — every access goes through their
// methods — and are the recommended fix.
type AtomicMixRule struct{}

func (r *AtomicMixRule) Name() string { return "atomic-mix" }

func (r *AtomicMixRule) Doc() string {
	return "a field accessed via sync/atomic must never be read/written plainly elsewhere in the module"
}

// atomicTarget resolves the &operand of a sync/atomic call to the
// variable object it addresses (struct field or package-level var).
func atomicTarget(info *types.Info, arg ast.Expr) *types.Var {
	un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil
	}
	switch e := ast.Unparen(un.X).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if v, ok := sel.Obj().(*types.Var); ok {
				return v
			}
		}
		// Qualified package-level var: pkg.Var has no Selection.
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && !v.IsField() {
			return v
		}
	}
	return nil
}

// isAtomicCall reports whether call is a function-style sync/atomic
// operation (Add*, Load*, Store*, Swap*, CompareAndSwap*).
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	return fn != nil && pkgPathOf(fn) == "sync/atomic" && fn.Type().(*types.Signature).Recv() == nil
}

func (r *AtomicMixRule) Check(m *Module) []Diagnostic {
	// Pass 1: every variable addressed by a sync/atomic call, with one
	// example position; and the operand subtrees themselves, so pass 2
	// does not re-flag the atomic accesses.
	atomicVars := map[*types.Var]token.Pos{}
	atomicOperand := map[ast.Node]bool{}
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAtomicCall(p.Info, call) {
					return true
				}
				for _, arg := range call.Args {
					if v := atomicTarget(p.Info, arg); v != nil {
						if _, seen := atomicVars[v]; !seen {
							atomicVars[v] = arg.Pos()
						}
						atomicOperand[arg] = true
					}
				}
				return true
			})
		}
	}
	if len(atomicVars) == 0 {
		return nil
	}

	// Pass 2: any other use of those variables is a plain access.
	var out []Diagnostic
	report := func(pos token.Pos, v *types.Var) {
		first := m.Fset.Position(atomicVars[v])
		out = append(out, Diagnostic{
			Pos:  m.Fset.Position(pos),
			Rule: "atomic-mix",
			Message: fmt.Sprintf("%s is accessed with sync/atomic (e.g. %s:%d) but read/written plainly here; use atomic ops everywhere or a typed atomic",
				v.Name(), shortPath(first.Filename), first.Line),
		})
	}
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if atomicOperand[n] {
					return false // the atomic access itself
				}
				switch e := n.(type) {
				case *ast.SelectorExpr:
					if sel, ok := p.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
						if v, ok := sel.Obj().(*types.Var); ok {
							if _, hot := atomicVars[v]; hot {
								report(e.Sel.Pos(), v)
								return false
							}
						}
					}
					if v, ok := p.Info.Uses[e.Sel].(*types.Var); ok {
						if _, hot := atomicVars[v]; hot {
							report(e.Sel.Pos(), v)
							return false
						}
					}
				case *ast.Ident:
					if v, ok := p.Info.Uses[e].(*types.Var); ok {
						if _, hot := atomicVars[v]; hot {
							report(e.Pos(), v)
						}
					}
				}
				return true
			})
		}
	}
	return out
}

// shortPath trims a filename to its last two path segments for
// compact cross-file references in messages.
func shortPath(path string) string {
	slash := 0
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' || path[i] == '\\' {
			slash++
			if slash == 2 {
				return path[i+1:]
			}
		}
	}
	return path
}
