package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// DeprecatedRule replaces the CI grep gate that banned the pre-engine
// suite entry points in cmd/ and examples/: any reference to a
// deprecated function from outside its own definition, anywhere in the
// module, is an error. Unlike the grep it is not fooled by aliasing,
// wrapping, or taking the function's value instead of calling it —
// and it covers every package, not just the reference callers.
type DeprecatedRule struct{}

// deprecatedFunc names one banned function and its replacement.
// allowPkgs, when non-empty, lists module-relative package scopes (per
// inScope, subpackages included) that may still reference the function
// — the compat shim that owns it.
type deprecatedFunc struct {
	pkgSuffix string // module-relative defining package ("internal/sim")
	name      string
	instead   string
	allowPkgs []string
}

// deprecatedFuncs is the ban list. These wrappers exist only for
// source compatibility with pre-engine callers and will not grow new
// options; everything routes through the context-first entry points.
// NewGenerator is not going away, but direct construction bypasses the
// redesigned workloads API (Workload.Source carries composite
// multi-tenant workloads that have no single Program), so outside the
// workloads packages it is treated the same way.
var deprecatedFuncs = []deprecatedFunc{
	{"internal/sim", "RunSuiteTLBOnly", "RunSuiteTLBOnlyCtx (or sim.Run for a single cell)", nil},
	{"internal/sim", "RunSuiteTiming", "RunSuiteTimingCtx", nil},
	{"internal/workloads", "NewGenerator", "(*Workload).Source (or spec.Compile for spec-built programs)",
		[]string{"internal/workloads"}},
}

// Name implements Rule.
func (*DeprecatedRule) Name() string { return "no-deprecated" }

// Doc implements Rule.
func (*DeprecatedRule) Doc() string {
	return "no references to the deprecated pre-engine suite entry points outside their own definitions"
}

// Check implements Rule.
func (r *DeprecatedRule) Check(m *Module) []Diagnostic {
	var out []Diagnostic
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				def, _ := p.Info.Defs[fd.Name].(*types.Func)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					id, ok := n.(*ast.Ident)
					if !ok {
						return true
					}
					fn, ok := p.Info.Uses[id].(*types.Func)
					if !ok || fn == def {
						return true
					}
					if d := r.match(fn); d != nil && !inScope(p.Path, d.allowPkgs) {
						out = append(out, Diagnostic{
							Pos:     m.Fset.Position(id.Pos()),
							Rule:    r.Name(),
							Message: fmt.Sprintf("%s is deprecated; use %s", fn.Name(), d.instead),
						})
					}
					return true
				})
			}
		}
	}
	return out
}

// match returns the ban-list entry for fn, or nil.
func (*DeprecatedRule) match(fn *types.Func) *deprecatedFunc {
	path := pkgPathOf(fn)
	for i := range deprecatedFuncs {
		d := &deprecatedFuncs[i]
		if fn.Name() != d.name {
			continue
		}
		if strings.HasSuffix(path, "/"+d.pkgSuffix) || path == d.pkgSuffix {
			return d
		}
	}
	return nil
}
