package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strconv"
)

// DeterminismRule enforces bit-determinism where the reproduction
// depends on it: the synthetic workload suite stands in for the CVP-1
// traces only if every run of a workload is identical from its seed,
// and the replay/direct equivalence tests diff results bit for bit.
// In internal/workloads, internal/core, internal/trace and
// internal/sim (the generator, predictor, trace and result paths) the
// rule bans:
//
//   - time.Now and time.Since — wall-clock values leak into whatever
//     they touch;
//   - importing math/rand or math/rand/v2 — their streams are not
//     stable across Go releases and the global source is process-wide
//     state; trace.RNG is the seeded generator everything must use;
//   - ranging over a map — iteration order is randomized per run;
//     collect-then-sort sites carry a //chirp:allow with the reason.
//
// The engine's telemetry and latency accounting intentionally uses the
// wall clock; internal/engine is outside this rule's scope for exactly
// that reason, as are _test.go files (never loaded by chirpvet).
type DeterminismRule struct{}

// determinismScopes are the module-relative package scopes the rule
// patrols.
var determinismScopes = []string{
	"internal/workloads",
	"internal/core",
	"internal/trace",
	"internal/sim",
}

// Name implements Rule.
func (*DeterminismRule) Name() string { return "determinism" }

// Doc implements Rule.
func (*DeterminismRule) Doc() string {
	return "no wall clock, global math/rand, or map-order-dependent code in workload/predictor/trace/result paths"
}

// Check implements Rule.
func (r *DeterminismRule) Check(m *Module) []Diagnostic {
	var out []Diagnostic
	for _, p := range m.Pkgs {
		if !inScope(p.Path, determinismScopes) {
			continue
		}
		for _, f := range p.Files {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if path == "math/rand" || path == "math/rand/v2" {
					out = append(out, Diagnostic{
						Pos:     m.Fset.Position(imp.Pos()),
						Rule:    r.Name(),
						Message: fmt.Sprintf("import of %s in %s: runs must be bit-deterministic from their seed; use trace.RNG", path, p.Types.Name()),
					})
				}
			}
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SelectorExpr:
					fn, ok := p.Info.Uses[n.Sel].(*types.Func)
					if !ok || pkgPathOf(fn) != "time" {
						return true
					}
					if name := fn.Name(); name == "Now" || name == "Since" {
						out = append(out, Diagnostic{
							Pos:     m.Fset.Position(n.Pos()),
							Rule:    r.Name(),
							Message: fmt.Sprintf("time.%s in %s: wall-clock values break bit-determinism of seeded runs", name, p.Types.Name()),
						})
					}
				case *ast.RangeStmt:
					t := p.Info.Types[n.X].Type
					if t == nil {
						return true
					}
					if _, ok := t.Underlying().(*types.Map); ok {
						out = append(out, Diagnostic{
							Pos:     m.Fset.Position(n.Pos()),
							Rule:    r.Name(),
							Message: "map iteration order is randomized per run; iterate a sorted key slice (or //chirp:allow with the reason order cannot escape)",
						})
					}
				}
				return true
			})
		}
	}
	return out
}
