// Control-flow graphs for the dataflow rules. buildCFG lowers one
// function body into basic blocks of *atomic* nodes — simple
// statements and the condition expressions that pick successors —
// with explicit edges for if/for/range/switch/select, labeled
// break/continue/goto, return, and the no-return calls (panic,
// os.Exit, runtime.Goexit, log.Fatal*). Structured statements never
// appear inside a block, so a rule's transfer function can walk every
// node of a block with plain ast.Inspect and touch each expression
// exactly once; nested *ast.FuncLit bodies are the one subtree
// transfer functions must skip (they get their own CFGs).
//
// The graph is deliberately small: no φ-nodes, no expression
// three-address lowering, no interprocedural edges. The dataflow
// rules built on it (lock-balance, pair-lifetime,
// goroutine-discipline) are intraprocedural must/may analyses over
// statement granularity, which is exactly what the repo's invariants
// need — "Unlock on every path", "release reaches every return".
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// implicitReturn is a synthetic node appended where control falls off
// the end of a function body, so dataflow rules can treat every exit
// path uniformly as "a return happens here".
type implicitReturn struct{ at token.Pos }

func (r *implicitReturn) Pos() token.Pos { return r.at }
func (r *implicitReturn) End() token.Pos { return r.at }

// blockKind marks blocks whose governing construct matters to a rule
// beyond the atomic nodes it holds (a select with no default blocks;
// a range head re-binds its loop variables each iteration).
type blockKind uint8

const (
	kindPlain blockKind = iota
	// kindCond ends in a boolean condition: Succs[0] is the true
	// edge, Succs[1] the false edge, and Cond holds the expression.
	kindCond
	// kindRangeHead is a range loop's per-iteration dispatch:
	// Succs[0] enters the body, Succs[1] leaves the loop. Stmt is the
	// *ast.RangeStmt (its X was evaluated in a predecessor).
	kindRangeHead
	// kindSelect dispatches a select statement: one successor per
	// comm clause (in source order), plus the default clause's block
	// when present. Stmt is the *ast.SelectStmt.
	kindSelect
	// kindExit is the function's single normal exit block (every
	// return and the fall-off-the-end path reach it). It holds no
	// nodes.
	kindExit
)

// cfgBlock is one basic block.
type cfgBlock struct {
	index int
	kind  blockKind
	// nodes are the atomic statements and condition expressions
	// executed in order. Composite control statements never appear;
	// *ast.DeferStmt and *ast.ReturnStmt do (rules give them special
	// treatment).
	nodes []ast.Node
	// cond is the branch condition for kindCond blocks.
	cond ast.Expr
	// stmt is the governing statement for kindRangeHead/kindSelect.
	stmt  ast.Stmt
	succs []*cfgBlock
	preds []*cfgBlock
}

// addNode appends an atomic node to the block.
func (b *cfgBlock) addNode(n ast.Node) { b.nodes = append(b.nodes, n) }

// cfg is the control-flow graph of one function body.
type cfg struct {
	blocks []*cfgBlock
	entry  *cfgBlock
	exit   *cfgBlock // the unique normal exit (kindExit)
}

// cfgBuilder carries the state of one lowering pass.
type cfgBuilder struct {
	g    *cfg
	cur  *cfgBlock
	info *types.Info

	// breakTo/continueTo are the innermost targets; labeled variants
	// live in labels.
	breakTo    *cfgBlock
	continueTo *cfgBlock
	labels     map[string]*labelTargets
	// gotoFixups are forward gotos awaiting their label's block.
	gotoFixups map[string][]*cfgBlock
	// labeledStmt is the label wrapper currently being lowered, so a
	// loop or switch can register its labeled break/continue targets.
	labeledStmt *ast.LabeledStmt
	// fallthroughTo is the next case body while lowering a switch
	// clause.
	fallthroughTo *cfgBlock
}

type labelTargets struct {
	breakTo    *cfgBlock
	continueTo *cfgBlock
	target     *cfgBlock // goto target / labeled statement entry
}

// buildCFG lowers body into a CFG. info resolves no-return callees
// (panic, os.Exit, …); it may be nil, in which case only the builtin
// panic terminates a block.
func buildCFG(body *ast.BlockStmt, info *types.Info) *cfg {
	g := &cfg{}
	b := &cfgBuilder{
		g:          g,
		info:       info,
		labels:     map[string]*labelTargets{},
		gotoFixups: map[string][]*cfgBlock{},
	}
	g.entry = b.newBlock(kindPlain)
	g.exit = &cfgBlock{kind: kindExit}
	b.cur = g.entry
	b.stmtList(body.List)
	// Falling off the end of the body is a return; rules see it as an
	// implicitReturn node so every exit path carries a return marker.
	if b.cur != nil {
		b.cur.addNode(&implicitReturn{at: body.End()})
	}
	b.jump(g.exit)
	g.exit.index = len(g.blocks)
	g.blocks = append(g.blocks, g.exit)
	return g
}

// newBlock appends a fresh block to the graph.
func (b *cfgBuilder) newBlock(kind blockKind) *cfgBlock {
	blk := &cfgBlock{index: len(b.g.blocks), kind: kind}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

// edge links from → to.
func (b *cfgBuilder) edge(from, to *cfgBlock) {
	if from == nil || to == nil {
		return
	}
	from.succs = append(from.succs, to)
	to.preds = append(to.preds, from)
}

// jump terminates the current block with an unconditional edge and
// leaves the builder with no current block (the next statement starts
// an unreachable one unless a label re-anchors it).
func (b *cfgBuilder) jump(to *cfgBlock) {
	if b.cur != nil {
		b.edge(b.cur, to)
	}
	b.cur = nil
}

// startBlock makes blk current, creating a fall-through edge from the
// previous current block when one is live.
func (b *cfgBuilder) startBlock(blk *cfgBlock) {
	if b.cur != nil {
		b.edge(b.cur, blk)
	}
	b.cur = blk
}

// ensure returns the current block, materializing an unreachable one
// after a jump so lowering can continue (dead code draws no edges from
// entry and the solver never visits it).
func (b *cfgBuilder) ensure() *cfgBlock {
	if b.cur == nil {
		b.cur = b.newBlock(kindPlain)
	}
	return b.cur
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// stmt lowers one statement.
func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.ensure().addNode(s.Init)
		}
		head := b.ensure()
		head.kind = kindCond
		head.cond = s.Cond
		head.addNode(s.Cond)
		then := b.newBlock(kindPlain)
		after := b.newBlock(kindPlain)
		b.edge(head, then) // succs[0] = true
		b.cur = then
		b.stmt(s.Body)
		b.jump(after)
		if s.Else != nil {
			els := b.newBlock(kindPlain)
			b.edge(head, els) // succs[1] = false
			b.cur = els
			b.stmt(s.Else)
			b.jump(after)
		} else {
			b.edge(head, after) // succs[1] = false
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.ensure().addNode(s.Init)
		}
		head := b.newBlock(kindPlain)
		b.startBlock(head)
		body := b.newBlock(kindPlain)
		after := b.newBlock(kindPlain)
		post := head
		if s.Post != nil {
			post = b.newBlock(kindPlain)
			post.addNode(s.Post)
			b.edge(post, head)
		}
		if s.Cond != nil {
			head.kind = kindCond
			head.cond = s.Cond
			head.addNode(s.Cond)
			b.edge(head, body)  // true
			b.edge(head, after) // false
		} else {
			b.edge(head, body)
		}
		b.loopBody(s, body, after, post)
		b.jump(post)
		b.cur = after

	case *ast.RangeStmt:
		// X is evaluated once, before iteration begins.
		b.ensure().addNode(s.X)
		head := b.newBlock(kindRangeHead)
		head.stmt = s
		b.startBlock(head)
		body := b.newBlock(kindPlain)
		after := b.newBlock(kindPlain)
		b.edge(head, body)  // another iteration
		b.edge(head, after) // exhausted
		b.loopBody(s, body, after, head)
		b.jump(head)
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.ensure().addNode(s.Init)
		}
		if s.Tag != nil {
			b.ensure().addNode(s.Tag)
		}
		b.caseDispatch(s, s.Body.List, nil)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.ensure().addNode(s.Init)
		}
		b.ensure().addNode(s.Assign)
		b.caseDispatch(s, s.Body.List, nil)

	case *ast.SelectStmt:
		head := b.ensure()
		head.kind = kindSelect
		head.stmt = s
		after := b.newBlock(kindPlain)
		savedBreak := b.breakTo
		b.breakTo = after
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			blk := b.newBlock(kindPlain)
			b.edge(head, blk)
			b.cur = blk
			if cc.Comm != nil {
				blk.addNode(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.jump(after)
		}
		b.breakTo = savedBreak
		// select{} blocks forever: head keeps zero successors and
		// after stays unreachable, which is exactly right.
		b.cur = after

	case *ast.ReturnStmt:
		b.ensure().addNode(s)
		b.jump(b.g.exit)

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.LabeledStmt:
		lt := b.label(s.Label.Name)
		target := b.newBlock(kindPlain)
		lt.target = target
		for _, from := range b.gotoFixups[s.Label.Name] {
			b.edge(from, target)
		}
		delete(b.gotoFixups, s.Label.Name)
		b.startBlock(target)
		// Loop/switch statements consult labels for their own
		// break/continue targets via labeledLoop.
		b.labeledStmt = s
		b.stmt(s.Stmt)
		b.labeledStmt = nil

	case *ast.ExprStmt:
		b.ensure().addNode(s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && b.noReturn(call) {
			b.cur = nil // panic/os.Exit: control does not continue
		}

	case *ast.DeferStmt, *ast.GoStmt, *ast.SendStmt, *ast.IncDecStmt,
		*ast.AssignStmt, *ast.DeclStmt, *ast.EmptyStmt:
		b.ensure().addNode(s)

	default:
		// Anything unanticipated flows through as an atomic node.
		b.ensure().addNode(s)
	}
}

// loopBody lowers a loop's body with break/continue targets installed,
// honoring a wrapping label.
func (b *cfgBuilder) loopBody(loop ast.Stmt, body, after, cont *cfgBlock) {
	savedBreak, savedCont := b.breakTo, b.continueTo
	b.breakTo, b.continueTo = after, cont
	if ls := b.labeledStmt; ls != nil && ls.Stmt == loop {
		lt := b.label(ls.Label.Name)
		lt.breakTo, lt.continueTo = after, cont
	}
	b.labeledStmt = nil
	b.cur = body
	switch s := loop.(type) {
	case *ast.ForStmt:
		b.stmt(s.Body)
	case *ast.RangeStmt:
		b.stmt(s.Body)
	}
	b.breakTo, b.continueTo = savedBreak, savedCont
}

// caseDispatch lowers a (type) switch: the head fans out to each case
// clause; a missing default adds a direct edge to after. Fallthrough
// chains case bodies.
func (b *cfgBuilder) caseDispatch(sw ast.Stmt, clauses []ast.Stmt, _ *cfgBlock) {
	head := b.ensure()
	after := b.newBlock(kindPlain)
	savedBreak := b.breakTo
	b.breakTo = after
	if ls := b.labeledStmt; ls != nil && ls.Stmt == sw {
		b.label(ls.Label.Name).breakTo = after
	}
	b.labeledStmt = nil

	bodies := make([]*cfgBlock, len(clauses))
	hasDefault := false
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		blk := b.newBlock(kindPlain)
		bodies[i] = blk
		if cc.List == nil {
			hasDefault = true
		}
		b.edge(head, blk)
	}
	if !hasDefault {
		b.edge(head, after)
	}
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		b.cur = bodies[i]
		for _, e := range cc.List {
			bodies[i].addNode(e)
		}
		b.fallthroughTo = nil
		if i+1 < len(bodies) {
			b.fallthroughTo = bodies[i+1]
		}
		b.stmtList(cc.Body)
		b.fallthroughTo = nil
		b.jump(after)
	}
	b.breakTo = savedBreak
	b.cur = after
}

// branch lowers break/continue/goto/fallthrough.
func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	switch s.Tok.String() {
	case "break":
		to := b.breakTo
		if s.Label != nil {
			to = b.label(s.Label.Name).breakTo
		}
		b.jump(to)
	case "continue":
		to := b.continueTo
		if s.Label != nil {
			to = b.label(s.Label.Name).continueTo
		}
		b.jump(to)
	case "goto":
		lt := b.label(s.Label.Name)
		if lt.target != nil {
			b.jump(lt.target)
		} else {
			// Forward goto: record for the label's lowering.
			if b.cur != nil {
				b.gotoFixups[s.Label.Name] = append(b.gotoFixups[s.Label.Name], b.cur)
			}
			b.cur = nil
		}
	case "fallthrough":
		b.jump(b.fallthroughTo)
	}
}

func (b *cfgBuilder) label(name string) *labelTargets {
	lt := b.labels[name]
	if lt == nil {
		lt = &labelTargets{}
		b.labels[name] = lt
	}
	return lt
}

// noReturn reports whether a call never returns: the builtin panic,
// os.Exit, runtime.Goexit, and the log.Fatal family.
func (b *cfgBuilder) noReturn(call *ast.CallExpr) bool {
	if b.info == nil {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			return id.Name == "panic"
		}
		return false
	}
	if calleeBuiltin(b.info, call) == "panic" {
		return true
	}
	fn := calleeFunc(b.info, call)
	if fn == nil {
		return false
	}
	switch pkgPathOf(fn) {
	case "os":
		return fn.Name() == "Exit"
	case "runtime":
		return fn.Name() == "Goexit"
	case "log":
		switch fn.Name() {
		case "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln":
			return true
		}
	}
	return false
}

// reachable returns the blocks reachable from entry in reverse
// post-order — the iteration order the worklist solver seeds.
func (g *cfg) reachable() []*cfgBlock {
	seen := make([]bool, len(g.blocks))
	var order []*cfgBlock
	var dfs func(*cfgBlock)
	dfs = func(b *cfgBlock) {
		seen[b.index] = true
		for _, s := range b.succs {
			if !seen[s.index] {
				dfs(s)
			}
		}
		order = append(order, b)
	}
	dfs(g.entry)
	// reverse for RPO
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}
