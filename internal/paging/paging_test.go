package paging

import (
	"testing"
	"testing/quick"
)

func TestTranslateStable(t *testing.T) {
	s := NewSpace(AllocSequential, 1)
	p1, faulted := s.Translate(100)
	if !faulted {
		t.Fatal("first touch must fault")
	}
	p2, faulted2 := s.Translate(100)
	if faulted2 {
		t.Fatal("second touch must not fault")
	}
	if p1 != p2 {
		t.Fatalf("translation unstable: %d vs %d", p1, p2)
	}
	if s.PageFaults() != 1 || s.Mapped() != 1 {
		t.Errorf("faults/mapped = %d/%d, want 1/1", s.PageFaults(), s.Mapped())
	}
}

func TestSequentialAllocContiguous(t *testing.T) {
	s := NewSpace(AllocSequential, 1)
	a, _ := s.Translate(10)
	b, _ := s.Translate(11)
	if b != a+1 {
		t.Errorf("sequential frames not contiguous: %d then %d", a, b)
	}
}

func TestFragmentedAllocUniqueAndScattered(t *testing.T) {
	s := NewSpace(AllocFragmented, 1)
	seen := map[uint64]bool{}
	contiguous := 0
	var prev uint64
	for v := uint64(0); v < 5000; v++ {
		p, _ := s.Translate(v)
		if seen[p] {
			t.Fatalf("duplicate frame %d", p)
		}
		seen[p] = true
		if v > 0 && p == prev+1 {
			contiguous++
		}
		prev = p
	}
	if contiguous > 100 {
		t.Errorf("fragmented allocator produced %d/5000 contiguous pairs", contiguous)
	}
}

func TestFragmentedUniquenessProperty(t *testing.T) {
	f := func(vpnsRaw []uint32) bool {
		s := NewSpace(AllocFragmented, 2)
		frames := map[uint64]uint64{}
		for _, raw := range vpnsRaw {
			vpn := uint64(raw % 10000)
			p, _ := s.Translate(vpn)
			if prior, ok := frames[vpn]; ok && prior != p {
				return false // translation changed
			}
			frames[vpn] = p
		}
		// All distinct VPNs must hold distinct frames.
		rev := map[uint64]uint64{}
		for vpn, p := range frames {
			if other, ok := rev[p]; ok && other != vpn {
				return false
			}
			rev[p] = vpn
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFixedWalker(t *testing.T) {
	s := NewSpace(AllocSequential, 1)
	w := NewFixedWalker(s, 150)
	ppn, cycles := w.Walk(42)
	if cycles != 150 {
		t.Errorf("walk cycles = %d, want 150", cycles)
	}
	want, _ := s.Translate(42)
	if ppn != want {
		t.Errorf("walk ppn = %d, want %d", ppn, want)
	}
	if w.Walks() != 1 {
		t.Errorf("walks = %d, want 1", w.Walks())
	}
}

// flatMem serves every PTE access with a fixed latency and counts
// accesses.
type flatMem struct {
	lat      uint64
	accesses uint64
	addrs    map[uint64]bool
}

func (m *flatMem) Access(pa uint64, _ bool) uint64 {
	m.accesses++
	if m.addrs != nil {
		m.addrs[pa] = true
	}
	return m.lat
}

func TestRadixWalkerFourLevels(t *testing.T) {
	s := NewSpace(AllocSequential, 1)
	m := &flatMem{lat: 10, addrs: map[uint64]bool{}}
	w := NewRadixWalker(s, m, PSCConfig{}) // no PSCs
	ppn, cycles := w.Walk(0x12345)
	if cycles != 4*10 {
		t.Errorf("walk cycles = %d, want 40 (4 PTE loads)", cycles)
	}
	want, _ := s.Translate(0x12345)
	if ppn != want {
		t.Errorf("ppn = %d, want %d", ppn, want)
	}
	if len(m.addrs) != 4 {
		t.Errorf("distinct PTE addresses = %d, want 4", len(m.addrs))
	}
}

func TestRadixWalkerPSCShortensWalks(t *testing.T) {
	s := NewSpace(AllocSequential, 1)
	m := &flatMem{lat: 10}
	w := NewRadixWalker(s, m, PSCConfig{EntriesPerLevel: 16})
	// Walk neighbouring pages: after the first walk the PSC holds the
	// interior nodes, so later walks touch fewer levels.
	w.Walk(0x1000)
	_, c2 := w.Walk(0x1001)
	if c2 >= 40 {
		t.Errorf("PSC-assisted walk cost %d cycles, want < 40", c2)
	}
	walks, pteLoads, pscHits, _ := w.Stats()
	if walks != 2 {
		t.Errorf("walks = %d, want 2", walks)
	}
	if pscHits == 0 {
		t.Error("expected at least one PSC hit")
	}
	if pteLoads >= 8 {
		t.Errorf("pte loads = %d, want < 8 with PSCs", pteLoads)
	}
}

func TestRadixWalkerMatchesTranslation(t *testing.T) {
	f := func(vpnsRaw []uint16) bool {
		s := NewSpace(AllocSequential, 3)
		w := NewRadixWalker(s, &flatMem{lat: 1}, PSCConfig{EntriesPerLevel: 8})
		for _, raw := range vpnsRaw {
			vpn := uint64(raw)
			ppn, _ := w.Walk(vpn)
			want, _ := s.Translate(vpn)
			if ppn != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRadixWalkerAverageLatency(t *testing.T) {
	s := NewSpace(AllocSequential, 1)
	w := NewRadixWalker(s, &flatMem{lat: 25}, PSCConfig{})
	if w.AverageLatency() != 0 {
		t.Error("idle average must be 0")
	}
	w.Walk(1)
	if got := w.AverageLatency(); got != 100 {
		t.Errorf("average latency = %v, want 100", got)
	}
}
