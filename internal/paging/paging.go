// Package paging is the virtual-memory substrate: a physical-frame
// allocator mapping virtual page numbers to physical page numbers, a
// 4-level radix page table laid out in simulated physical memory, and
// a hardware page-table walker with paging-structure caches (PSCs —
// the MMU caches the paper's §I cites on Skylake).
//
// The paper's evaluation charges a flat, configurable page-walk
// penalty (20–360 cycles swept); FixedWalker reproduces that. The
// radix Walker is the substrate extension (DESIGN.md X2): its PTE
// fetches traverse the simulated cache hierarchy, so walk latency
// emerges from locality instead of being a constant.
package paging

// PageShift is the 4 KB page geometry used throughout (§V).
const PageShift = 12

// Levels is the radix page-table depth (x86-64 4-level style: 9 bits
// per level over a 48-bit virtual address space).
const Levels = 4

// bitsPerLevel is the radix width of each level.
const bitsPerLevel = 9

// AllocPolicy controls how physical frames are handed out.
type AllocPolicy uint8

const (
	// AllocSequential hands out consecutive frames (fresh boot, no
	// fragmentation).
	AllocSequential AllocPolicy = iota
	// AllocFragmented hands out pseudo-randomly permuted frames
	// (long-running system; defeats physical-contiguity locality).
	AllocFragmented
)

// Space is one virtual address space: the VPN→PPN mapping plus the
// radix page table that encodes it.
type Space struct {
	policy AllocPolicy

	mapping map[uint64]uint64
	nextPPN uint64

	// Radix page table: tables[level] maps a table-page identifier to
	// its entries. Table pages themselves live in a reserved physical
	// range so PTE fetches have stable addresses for the cache model.
	root       uint64
	nodes      map[uint64][]uint64 // node physical page → 512 entries
	nextNode   uint64
	pageFaults uint64
}

// NewSpace creates an address space. Frames are assigned on first
// touch (demand paging).
func NewSpace(policy AllocPolicy, seed uint64) *Space {
	_ = seed // reserved for future randomized allocators
	s := &Space{
		policy:  policy,
		mapping: make(map[uint64]uint64, 1<<16),
		// Data frames start high so they never collide with page-table
		// node frames.
		nextPPN:  1 << 24,
		nodes:    make(map[uint64][]uint64, 1024),
		nextNode: 1 << 20,
	}
	s.root = s.allocNode()
	return s
}

func (s *Space) allocNode() uint64 {
	n := s.nextNode
	s.nextNode++
	s.nodes[n] = make([]uint64, 1<<bitsPerLevel)
	return n
}

// allocFrame assigns a physical frame per the allocation policy.
func (s *Space) allocFrame() uint64 {
	n := s.nextPPN
	s.nextPPN++
	if s.policy == AllocFragmented {
		// Multiplication by an odd constant is a bijection on 32 bits,
		// so scattered frames stay unique while losing all contiguity.
		return 1<<24 | uint64(uint32(n)*2654435761)
	}
	return n
}

// Translate returns the PPN for vpn, allocating a frame and page-table
// path on first touch. faulted reports a demand-paging fault
// (first-touch allocation).
func (s *Space) Translate(vpn uint64) (ppn uint64, faulted bool) {
	if p, ok := s.mapping[vpn]; ok {
		return p, false
	}
	p := s.allocFrame()
	s.mapping[vpn] = p
	s.insertPTE(vpn, p)
	s.pageFaults++
	return p, true
}

// insertPTE walks the radix tree, allocating nodes, and installs the
// leaf PTE.
func (s *Space) insertPTE(vpn, ppn uint64) {
	node := s.root
	for level := Levels - 1; level > 0; level-- {
		idx := (vpn >> uint(level*bitsPerLevel)) & (1<<bitsPerLevel - 1)
		entries := s.nodes[node]
		if entries[idx] == 0 {
			entries[idx] = s.allocNode()
		}
		node = entries[idx]
	}
	s.nodes[node][vpn&(1<<bitsPerLevel-1)] = ppn
}

// PTEAddress returns the physical address of the PTE consulted at the
// given level (Levels-1 is the root level, 0 the leaf) during a walk
// of vpn, and the next node. ok is false when the path is not mapped.
func (s *Space) pteAddress(node, vpn uint64, level int) (addr, next uint64, ok bool) {
	idx := (vpn >> uint(level*bitsPerLevel)) & (1<<bitsPerLevel - 1)
	entries, exists := s.nodes[node]
	if !exists {
		return 0, 0, false
	}
	addr = node<<PageShift | idx*8
	return addr, entries[idx], entries[idx] != 0
}

// PageFaults returns the demand-allocation count.
func (s *Space) PageFaults() uint64 { return s.pageFaults }

// Mapped returns how many pages have been touched.
func (s *Space) Mapped() int { return len(s.mapping) }

// Walker resolves TLB misses. Implementations return the walk latency
// in cycles.
type Walker interface {
	// Walk translates vpn, returning its PPN and the cycles spent.
	Walk(vpn uint64) (ppn uint64, cycles uint64)
}

// FixedWalker charges a flat penalty per walk — the paper's
// evaluation model (20–360 cycles swept; 150 in the headline speedup).
type FixedWalker struct {
	Space   *Space
	Penalty uint64
	walks   uint64
}

// NewFixedWalker builds the paper's fixed-penalty walker.
func NewFixedWalker(space *Space, penalty uint64) *FixedWalker {
	return &FixedWalker{Space: space, Penalty: penalty}
}

// Walk implements Walker.
func (w *FixedWalker) Walk(vpn uint64) (uint64, uint64) {
	w.walks++
	ppn, _ := w.Space.Translate(vpn)
	return ppn, w.Penalty
}

// Walks returns the walk count.
func (w *FixedWalker) Walks() uint64 { return w.walks }

// MemAccessor abstracts the cache hierarchy for PTE fetches so the
// radix walker can be tested without a full memory model.
type MemAccessor interface {
	// Access reads the line containing pa and returns its latency.
	Access(pa uint64, write bool) uint64
}

// PSCConfig sizes the paging-structure caches: one small
// fully-associative cache of intermediate table entries per non-leaf
// level, as in Intel's MMU caches.
type PSCConfig struct {
	// EntriesPerLevel is the capacity of each level's PSC (0 disables
	// PSCs entirely).
	EntriesPerLevel int
}

// pscCache is one paging-structure cache level: it remembers which
// interior node serves lookups at its level, keyed by the VPN bits
// above that level, with FIFO eviction.
type pscCache struct {
	cap   int
	nodes map[uint64]uint64
	fifo  []uint64
}

func newPSCCache(capacity int) *pscCache {
	return &pscCache{cap: capacity, nodes: make(map[uint64]uint64, capacity)}
}

func (c *pscCache) lookup(tag uint64) (uint64, bool) {
	n, ok := c.nodes[tag]
	return n, ok
}

func (c *pscCache) insert(tag, node uint64) {
	if _, ok := c.nodes[tag]; ok {
		c.nodes[tag] = node
		return
	}
	if len(c.nodes) >= c.cap {
		old := c.fifo[0]
		c.fifo = c.fifo[1:]
		delete(c.nodes, old)
	}
	c.nodes[tag] = node
	c.fifo = append(c.fifo, tag)
}

// RadixWalker performs real 4-level walks: each level's PTE fetch goes
// through the cache hierarchy unless a PSC short-circuits the upper
// levels.
type RadixWalker struct {
	space *Space
	mem   MemAccessor
	// psc[level] caches the node consulted at that level (levels 1 and
	// 2; level 3 is the root, level 0 the leaf — leaves belong in the
	// TLB, not the PSCs).
	psc map[int]*pscCache

	walks     uint64
	pteLoads  uint64
	pscHits   uint64
	cyclesSum uint64
}

// pscTag is the VPN prefix identifying the node consulted at level.
func pscTag(vpn uint64, level int) uint64 {
	return vpn >> uint((level+1)*bitsPerLevel)
}

// NewRadixWalker builds a walker over space whose PTE fetches go
// through mem.
func NewRadixWalker(space *Space, mem MemAccessor, cfg PSCConfig) *RadixWalker {
	w := &RadixWalker{space: space, mem: mem, psc: make(map[int]*pscCache)}
	if cfg.EntriesPerLevel > 0 {
		for level := 1; level < Levels-1; level++ {
			w.psc[level] = newPSCCache(cfg.EntriesPerLevel)
		}
	}
	return w
}

// Walk implements Walker: start from the deepest PSC hit, then fetch
// the remaining PTEs through the cache hierarchy.
func (w *RadixWalker) Walk(vpn uint64) (uint64, uint64) {
	w.walks++
	ppn, _ := w.space.Translate(vpn) // ensures the path exists

	node := w.space.root
	start := Levels - 1
	for level := 1; level < Levels-1; level++ { // deepest PSC first
		if c := w.psc[level]; c != nil {
			if n, ok := c.lookup(pscTag(vpn, level)); ok {
				node, start = n, level
				w.pscHits++
				break
			}
		}
	}

	var cycles uint64
	for level := start; level >= 0; level-- {
		if c := w.psc[level]; c != nil {
			c.insert(pscTag(vpn, level), node)
		}
		addr, next, ok := w.space.pteAddress(node, vpn, level)
		cycles += w.mem.Access(addr, false)
		w.pteLoads++
		if !ok {
			break
		}
		node = next
	}
	w.cyclesSum += cycles
	return ppn, cycles
}

// Stats returns (walks, PTE loads, PSC hits, total cycles).
func (w *RadixWalker) Stats() (walks, pteLoads, pscHits, cycles uint64) {
	return w.walks, w.pteLoads, w.pscHits, w.cyclesSum
}

// AverageLatency returns mean walk cycles.
func (w *RadixWalker) AverageLatency() float64 {
	if w.walks == 0 {
		return 0
	}
	return float64(w.cyclesSum) / float64(w.walks)
}
