package workloads

import (
	"encoding/json"
	"testing"
)

func TestDescribe(t *testing.T) {
	w := ByName("db-003")
	d := Describe(w.Program())
	if d.Name != "db-003" || d.Category != "db" {
		t.Fatalf("identity wrong: %+v", d)
	}
	if d.Kernels == 0 || len(d.Regions) == 0 || len(d.Sites) == 0 {
		t.Fatalf("empty description: %+v", d)
	}
	if d.DataPages == 0 || d.DataFootprint == "" {
		t.Errorf("footprint missing: %+v", d)
	}
	for i, s := range d.Sites {
		if len(s.Weights) != d.Phases {
			t.Errorf("site %d has %d weights for %d phases", i, len(s.Weights), d.Phases)
		}
		if s.Region < 0 || s.Region >= len(d.Regions) {
			t.Errorf("site %d region index %d out of range", i, s.Region)
		}
	}
	// Must serialise cleanly.
	if _, err := json.Marshal(d); err != nil {
		t.Fatalf("marshal: %v", err)
	}
}

func TestFormatPages(t *testing.T) {
	if got := formatPages(1); got != "4.0 KiB" {
		t.Errorf("formatPages(1) = %q", got)
	}
	if got := formatPages(256); got != "1.0 MiB" {
		t.Errorf("formatPages(256) = %q", got)
	}
	if got := formatPages(1 << 18); got != "1.0 GiB" {
		t.Errorf("formatPages(1<<18) = %q", got)
	}
}
