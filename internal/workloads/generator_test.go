package workloads

import (
	"testing"
	"testing/quick"

	"github.com/chirplab/chirp/internal/trace"
)

func TestCallStructure(t *testing.T) {
	// Every kernel invocation must follow the shape: dispatch branch →
	// call → (loads [stores] [noise] loop-branch)+ → indirect return.
	w := ByName("spec-000")
	src := trace.NewLimit(w.Source(), 30000)
	var rec trace.Record
	var prev trace.Record
	calls, returns := 0, 0
	for src.Next(&rec) {
		switch rec.Class {
		case trace.ClassUncondDirect:
			calls++
			// A call must be preceded by its dispatch branch.
			if prev.Class != trace.ClassCondBranch {
				t.Fatalf("direct call at %#x not preceded by a dispatch branch (prev %v)", rec.PC, prev.Class)
			}
			if !prev.Taken || prev.Target != rec.PC {
				t.Fatalf("dispatch branch does not target the call: %+v → %+v", prev, rec)
			}
		case trace.ClassUncondIndirect:
			returns++
		}
		prev = rec
	}
	if calls == 0 {
		t.Fatal("no direct calls observed")
	}
	if returns == 0 {
		t.Fatal("no returns observed")
	}
}

func TestWindowBehaviorSlides(t *testing.T) {
	r := &Region{BasePage: 1000, Pages: 100, Hot: 10}
	s := &Site{Region: r, Behavior: Window, WindowDrift: 3}
	g := &Generator{prog: &Program{Seed: 1, Regions: []*Region{r},
		Sites:  []*Site{s},
		Phases: []Phase{{Weights: []uint32{1}}}}}
	g.Reset()
	// First pass covers pages 1000..1009.
	for i := 0; i < 10; i++ {
		if got, want := g.selectPage(s), uint64(1000+i); got != want {
			t.Fatalf("pass 1 page %d = %d, want %d", i, got, want)
		}
	}
	// Second pass starts at 1003 (drift 3).
	for i := 0; i < 10; i++ {
		if got, want := g.selectPage(s), uint64(1003+i); got != want {
			t.Fatalf("pass 2 page %d = %d, want %d", i, got, want)
		}
	}
}

func TestWindowZeroDriftIsLoop(t *testing.T) {
	r := &Region{BasePage: 500, Pages: 40, Hot: 4}
	s := &Site{Region: r, Behavior: Window, WindowDrift: 0}
	g := &Generator{prog: &Program{Seed: 1, Regions: []*Region{r},
		Sites:  []*Site{s},
		Phases: []Phase{{Weights: []uint32{1}}}}}
	g.Reset()
	for i := 0; i < 12; i++ {
		if got, want := g.selectPage(s), uint64(500+i%4); got != want {
			t.Fatalf("page %d = %d, want %d", i, got, want)
		}
	}
}

func TestWindowWrapsRegion(t *testing.T) {
	r := &Region{BasePage: 100, Pages: 12, Hot: 8}
	s := &Site{Region: r, Behavior: Window, WindowDrift: 8}
	g := &Generator{prog: &Program{Seed: 1, Regions: []*Region{r},
		Sites:  []*Site{s},
		Phases: []Phase{{Weights: []uint32{1}}}}}
	g.Reset()
	seen := map[uint64]bool{}
	for i := 0; i < 200; i++ {
		p := g.selectPage(s)
		if p < 100 || p >= 112 {
			t.Fatalf("window escaped its region: page %d", p)
		}
		seen[p] = true
	}
	if len(seen) != 12 {
		t.Errorf("sliding window covered %d/12 pages", len(seen))
	}
}

func TestStreamWrapsWithoutEscape(t *testing.T) {
	f := func(pagesRaw uint8, steps uint16) bool {
		pages := uint64(pagesRaw%50) + 1
		r := &Region{BasePage: 7, Pages: pages}
		s := &Site{Region: r, Behavior: Stream}
		g := &Generator{prog: &Program{Seed: 1, Regions: []*Region{r},
			Sites:  []*Site{s},
			Phases: []Phase{{Weights: []uint32{1}}}}}
		g.Reset()
		for i := 0; i < int(steps%500); i++ {
			p := g.selectPage(s)
			if p < 7 || p >= 7+pages {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestZipfHeadHotterThanTail(t *testing.T) {
	r := &Region{BasePage: 0, Pages: 1000}
	s := &Site{Region: r, Behavior: Zipf, ZipfSkew: 0.9}
	g := &Generator{prog: &Program{Seed: 9, Regions: []*Region{r},
		Sites:  []*Site{s},
		Phases: []Phase{{Weights: []uint32{1}}}}}
	g.Reset()
	head, tail := 0, 0
	for i := 0; i < 20000; i++ {
		if p := g.selectPage(s); p < 100 {
			head++
		} else if p >= 900 {
			tail++
		}
	}
	if head < tail*5 {
		t.Errorf("zipf head (%d) not much hotter than tail (%d)", head, tail)
	}
}

func TestSuiteFullBuildsEveryProgram(t *testing.T) {
	if testing.Short() {
		t.Skip("building all 870 programs is slow-ish")
	}
	for _, w := range Suite() {
		prog := w.Program()
		if len(prog.Sites) == 0 || len(prog.Phases) == 0 || len(prog.Regions) == 0 {
			t.Fatalf("%s: degenerate program %+v", w.Name, prog)
		}
		// Drain a few records to prove the generator starts.
		src := trace.NewLimit(NewGenerator(prog), 500)
		var rec trace.Record
		if !src.Next(&rec) {
			t.Fatalf("%s: generator produced nothing", w.Name)
		}
	}
}

func TestProfileMixtureAcrossSuite(t *testing.T) {
	counts := map[string]int{}
	for _, w := range Suite() {
		counts[w.Program().Profile]++
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != SuiteSize {
		t.Fatalf("profiles counted %d, want %d", total, SuiteSize)
	}
	// The quiet head must be the plurality; pressure and migrate both
	// well represented.
	if counts["quiet"] < 300 {
		t.Errorf("quiet = %d, want ≥ 300", counts["quiet"])
	}
	if counts["pressure"] < 180 || counts["migrate"] < 90 {
		t.Errorf("pressure/migrate = %d/%d, want ≥ 180/90", counts["pressure"], counts["migrate"])
	}
}
