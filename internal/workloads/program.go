// Package workloads synthesises the 870-benchmark suite that stands in
// for the Qualcomm CVP-1 traces the paper simulates (§V). Each
// workload is a deterministic program model — code regions, data
// regions, call sites, and per-site access behaviours — that streams
// trace.Records.
//
// The generators are built around the mechanisms the paper identifies
// as what makes TLB reuse predictable from control-flow history and
// *not* from the accessing PC alone (§III):
//
//   - Coarse granularity: many PCs touch the same page; the same load
//     PC touches many pages (kernels are shared across call sites).
//   - Context-dependent reuse: the same kernel (same load PCs) is
//     invoked from different call sites, some of which drive one-shot
//     streams over large regions (dead pages) and some of which drive
//     loops over working sets (live pages). Only the control-flow
//     history — the caller's branches — distinguishes them.
//   - Scans, cyclic working sets slightly above TLB reach, skewed
//     (Zipf) page popularity, pointer chases, and large code footprints
//     that pressure the instruction side.
package workloads

import (
	"fmt"

	"github.com/chirplab/chirp/internal/trace"
)

// Behavior is the page-reuse pattern a call site drives through its
// kernel.
type Behavior uint8

const (
	// Stream touches fresh pages sequentially and never revisits them
	// before a full wrap of a large region: dead-on-arrival entries.
	Stream Behavior = iota
	// Loop cycles through a bounded working set in order: reuse
	// distance equals the working-set size.
	Loop
	// Chase walks a fixed pseudo-random permutation of a bounded
	// working set: same reuse distance as Loop, unordered.
	Chase
	// Zipf draws pages with skewed popularity: a hot head that is
	// strongly live and a long cold tail.
	Zipf
	// Gups draws uniformly from a large region: essentially
	// unpredictable, low reuse.
	Gups
	// Batch processes a chunk of fresh pages in several passes before
	// advancing to the next chunk: insert → a few near-term reuses →
	// dead. This is the blocked/sort-run/packet-batch pattern; it keeps
	// PC-indexed reuse counters oscillating (paper §III Observation 2)
	// because the same load PCs that stream dead pages also produce
	// steady "reused" training events.
	Batch
	// Window cycles over a hot window that slides across its region:
	// every full pass, the window start advances by the site's
	// WindowDrift pages, retiring the oldest pages and admitting fresh
	// ones. Drifting working sets are what separate genuine reuse
	// *prediction* from indiscriminate "freeze whatever is resident"
	// strategies: frozen stale pages become dead weight, while a
	// policy that recognises the hot context protects the incoming
	// pages immediately.
	Window
)

// String returns the behaviour's name.
func (b Behavior) String() string {
	switch b {
	case Stream:
		return "stream"
	case Loop:
		return "loop"
	case Chase:
		return "chase"
	case Zipf:
		return "zipf"
	case Gups:
		return "gups"
	case Batch:
		return "batch"
	case Window:
		return "window"
	}
	return fmt.Sprintf("behavior(%d)", uint8(b))
}

// ParseBehavior maps a behaviour name (as produced by
// Behavior.String) back to its value; ok is false for unknown names.
func ParseBehavior(s string) (b Behavior, ok bool) {
	switch s {
	case "stream":
		return Stream, true
	case "loop":
		return Loop, true
	case "chase":
		return Chase, true
	case "zipf":
		return Zipf, true
	case "gups":
		return Gups, true
	case "batch":
		return Batch, true
	case "window":
		return Window, true
	}
	return 0, false
}

// pageShift is the 4 KB page geometry every workload uses (§V: the
// paper's study is for the standard 4 KB page size).
const pageShift = 12

// Region is a contiguous range of virtual data pages with the cursor
// state its behaviours need.
type Region struct {
	BasePage uint64
	Pages    uint64
	// Hot bounds the working subset used by Loop and Chase.
	Hot uint64

	cursor uint64
	perm   []uint32
	pos    uint64
	// Batch state: current chunk origin and completed passes over it.
	chunkStart uint64
	chunkPass  uint64
	// Window state: the sliding window's origin.
	windowStart uint64
}

// Kernel is a shared code body: a handful of load/store PCs, a loop
// branch, optional data-dependent noise branches, and a return. The
// same kernel may be bound to many call sites — that PC-sharing is
// exactly what defeats PC-only signatures (§III Observation 1/2).
type Kernel struct {
	EntryPC      uint64
	LoadPCs      []uint64
	StorePC      uint64 // 0 when the kernel never stores
	LoopBranchPC uint64
	NoisePCs     []uint64 // data-dependent conditional branches
	RetPC        uint64
}

// Site is one call site: the dispatch branch and call instruction that
// invoke a kernel on a region with a behaviour. Its PCs are the
// control-flow context CHiRP's histories capture.
type Site struct {
	BranchPC     uint64
	CallPC       uint64
	Kernel       *Kernel
	Region       *Region
	Behavior     Behavior
	ZipfSkew     float64
	PagesPerCall int
	// LoadsPerPage is how many of the kernel's load PCs touch each
	// page (the coarse-granularity many-PCs-per-page effect).
	LoadsPerPage int
	// Stores adds a store to each touched page.
	Stores bool
	// IndirectCall dispatches through a pointer (vtable-style).
	IndirectCall bool
	// SkipALU is the ALU run length between emitted records.
	SkipALU uint32
	// ChunkPages and Passes parameterise the Batch behaviour: Passes
	// sweeps over each ChunkPages-page chunk before it advances.
	ChunkPages uint64
	Passes     uint64
	// WindowDrift is how many pages the Window behaviour's hot window
	// advances per full pass (0 degenerates to Loop).
	WindowDrift uint64
}

// Phase is a weighting over sites; the program switches phases every
// CallsPerPhase kernel invocations, modelling program phase behaviour.
type Phase struct {
	Weights []uint32 // parallel to Program.Sites; 0 disables a site
}

// Program is a complete synthetic program.
type Program struct {
	Name     string
	Category string
	Seed     uint64
	// Profile labels the population profile the workload was drawn
	// with ("quiet", "pressure", "migrate"); informational.
	Profile string

	Kernels []*Kernel
	Regions []*Region
	Sites   []*Site
	Phases  []Phase
	// CallsPerPhase is the invocation count before the next phase.
	CallsPerPhase int
	// RunMin/RunMax bound how many consecutive invocations stay on the
	// same site before the next weighted pick. Real programs execute
	// call sites in loops, not i.i.d. interleavings; runs give the
	// control-flow histories temporal purity. Zero values mean 1
	// (re-pick every call).
	RunMin, RunMax int
	// SkipScale multiplies every site's SkipALU at emission: a pure
	// instruction-dilution knob that sets absolute MPKI without
	// changing the TLB access stream (policy comparisons are
	// unaffected). Zero means 1.
	SkipScale uint32
}

// eachPC calls fn on every instruction PC the program can emit.
func (p *Program) eachPC(fn func(pc uint64)) {
	for _, k := range p.Kernels {
		fn(k.EntryPC)
		for _, pc := range k.LoadPCs {
			fn(pc)
		}
		if k.StorePC != 0 {
			fn(k.StorePC)
		}
		fn(k.LoopBranchPC)
		for _, pc := range k.NoisePCs {
			fn(pc)
		}
		fn(k.RetPC)
	}
	for _, s := range p.Sites {
		fn(s.BranchPC)
		fn(s.CallPC)
	}
}

// Extents reports the code and data page windows the program actually
// occupies: the smallest page-aligned spans covering every instruction
// PC and every data region. The spans are measured from the program
// itself — not assumed from the builder's default layout — so they
// stay truthful for hand-assembled, spec-compiled, and rebased
// programs alike.
func (p *Program) Extents() (codeBase, codePages, dataBase, dataPages uint64) {
	first := true
	var lo, hi uint64
	p.eachPC(func(pc uint64) {
		page := pc >> pageShift
		if first {
			lo, hi = page, page
			first = false
			return
		}
		if page < lo {
			lo = page
		}
		if page > hi {
			hi = page
		}
	})
	if !first {
		codeBase, codePages = lo, hi-lo+1
	}
	first = true
	for _, r := range p.Regions {
		end := r.BasePage + r.Pages
		if first {
			lo, hi = r.BasePage, end
			first = false
			continue
		}
		if r.BasePage < lo {
			lo = r.BasePage
		}
		if end > hi {
			hi = end
		}
	}
	if !first {
		dataBase, dataPages = lo, hi-lo
	}
	return codeBase, codePages, dataBase, dataPages
}

// Rebase shifts the program's code PCs by codeDelta pages and its data
// regions by dataDelta pages. The spec compiler rebases each client's
// program into a disjoint slice of the shared address space so tenants
// never alias pages. Rebase must run before the first Reset of a
// Generator over the program (region permutations are seeded from the
// rebased addresses).
func (p *Program) Rebase(codeDelta, dataDelta uint64) {
	cb := codeDelta << pageShift
	for _, k := range p.Kernels {
		k.EntryPC += cb
		for i := range k.LoadPCs {
			k.LoadPCs[i] += cb
		}
		if k.StorePC != 0 {
			k.StorePC += cb
		}
		k.LoopBranchPC += cb
		for i := range k.NoisePCs {
			k.NoisePCs[i] += cb
		}
		k.RetPC += cb
	}
	for _, s := range p.Sites {
		s.BranchPC += cb
		s.CallPC += cb
	}
	for _, r := range p.Regions {
		r.BasePage += dataDelta
	}
}

// Generator streams a Program as trace records. It implements
// trace.Source deterministically.
type Generator struct {
	prog *Program
	rng  *trace.RNG

	queue []trace.Record
	qpos  int

	phase     int
	callCount int
	cum       []uint64 // cumulative site weights for the current phase
	cumTotal  uint64
	curSite   *Site
	runLeft   int
}

// NewGenerator returns a Source over prog. The stream is infinite
// (wrap trace.Limit around it); it is restarted exactly by Reset.
func NewGenerator(prog *Program) *Generator {
	g := &Generator{prog: prog}
	g.Reset()
	return g
}

// Reset implements trace.Source.
func (g *Generator) Reset() {
	g.rng = trace.NewRNG(g.prog.Seed)
	g.queue = g.queue[:0]
	g.qpos = 0
	g.phase = 0
	g.callCount = 0
	g.curSite = nil
	g.runLeft = 0
	for _, r := range g.prog.Regions {
		r.cursor = 0
		r.pos = 0
		r.chunkStart = 0
		r.chunkPass = 0
		r.windowStart = 0
		if r.perm == nil && r.Hot > 0 {
			r.perm = buildPerm(int(r.Hot), g.prog.Seed^r.BasePage)
		}
	}
	g.loadPhase()
}

func buildPerm(n int, seed uint64) []uint32 {
	rng := trace.NewRNG(seed)
	p := make([]uint32, n)
	for i := range p {
		p[i] = uint32(i)
	}
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

func (g *Generator) loadPhase() {
	ph := g.prog.Phases[g.phase]
	if len(ph.Weights) != len(g.prog.Sites) {
		panic(fmt.Sprintf("workloads: phase weight count %d != site count %d in %s",
			len(ph.Weights), len(g.prog.Sites), g.prog.Name))
	}
	if cap(g.cum) < len(ph.Weights) {
		g.cum = make([]uint64, len(ph.Weights))
	}
	g.cum = g.cum[:len(ph.Weights)]
	var total uint64
	for i, w := range ph.Weights {
		total += uint64(w)
		g.cum[i] = total
	}
	if total == 0 {
		panic(fmt.Sprintf("workloads: phase %d of %s has zero total weight", g.phase, g.prog.Name))
	}
	g.cumTotal = total
}

// Next implements trace.Source.
func (g *Generator) Next(rec *trace.Record) bool {
	for g.qpos >= len(g.queue) {
		g.queue = g.queue[:0]
		g.qpos = 0
		g.emitCall()
	}
	*rec = g.queue[g.qpos]
	g.qpos++
	return true
}

// NextBlock implements trace.BlockSource natively: whole kernel
// invocations are copied out of the internal queue without the
// per-record interface call Next pays. The stream is infinite, so the
// buffer is always filled completely.
func (g *Generator) NextBlock(buf []trace.Record) int {
	n := 0
	for n < len(buf) {
		if g.qpos >= len(g.queue) {
			g.queue = g.queue[:0]
			g.qpos = 0
			g.emitCall()
		}
		c := copy(buf[n:], g.queue[g.qpos:])
		g.qpos += c
		n += c
	}
	return n
}

// EmitCall discards any queued records and appends exactly one
// complete kernel invocation to dst, returning the extended slice. It
// is the call-granular interface the multi-tenant scheduler drives —
// one invocation per scheduling turn — and must not be interleaved
// with Next/NextBlock on the same Generator.
func (g *Generator) EmitCall(dst []trace.Record) []trace.Record {
	g.queue = g.queue[:0]
	g.qpos = 0
	g.emitCall()
	g.qpos = len(g.queue)
	return append(dst, g.queue...)
}

// pickSite draws a site from the current phase's weights.
func (g *Generator) pickSite() *Site {
	x := g.rng.Uint64n(g.cumTotal)
	for i, c := range g.cum {
		if x < c {
			return g.prog.Sites[i]
		}
	}
	return g.prog.Sites[len(g.prog.Sites)-1]
}

// selectPage advances a site's region cursor per its behaviour and
// returns the touched page number.
func (g *Generator) selectPage(s *Site) uint64 {
	r := s.Region
	switch s.Behavior {
	case Stream:
		p := r.BasePage + r.cursor
		r.cursor++
		if r.cursor >= r.Pages {
			r.cursor = 0
		}
		return p
	case Loop:
		hot := r.Hot
		if hot == 0 || hot > r.Pages {
			hot = r.Pages
		}
		p := r.BasePage + r.cursor
		r.cursor++
		if r.cursor >= hot {
			r.cursor = 0
		}
		return p
	case Chase:
		hot := uint64(len(r.perm))
		if hot == 0 {
			return r.BasePage
		}
		p := r.BasePage + uint64(r.perm[r.pos])
		r.pos++
		if r.pos >= hot {
			r.pos = 0
		}
		return p
	case Zipf:
		return r.BasePage + uint64(g.rng.Zipf(int(r.Pages), s.ZipfSkew))
	case Gups:
		return r.BasePage + g.rng.Uint64n(r.Pages)
	case Window:
		hot := r.Hot
		if hot == 0 || hot > r.Pages {
			hot = r.Pages
		}
		p := r.BasePage + (r.windowStart+r.cursor)%r.Pages
		r.cursor++
		if r.cursor >= hot {
			r.cursor = 0
			r.windowStart = (r.windowStart + s.WindowDrift) % r.Pages
		}
		return p
	case Batch:
		chunk := s.ChunkPages
		if chunk == 0 {
			chunk = 16
		}
		if chunk > r.Pages {
			chunk = r.Pages
		}
		passes := s.Passes
		if passes == 0 {
			passes = 2
		}
		p := r.BasePage + (r.chunkStart+r.cursor)%r.Pages
		r.cursor++
		if r.cursor >= chunk {
			r.cursor = 0
			r.chunkPass++
			if r.chunkPass >= passes {
				r.chunkPass = 0
				r.chunkStart = (r.chunkStart + chunk) % r.Pages
			}
		}
		return p
	}
	return r.BasePage
}

// emitCall appends one complete kernel invocation to the queue.
func (g *Generator) emitCall() {
	g.callCount++
	if g.prog.CallsPerPhase > 0 && g.callCount%g.prog.CallsPerPhase == 0 && len(g.prog.Phases) > 1 {
		g.phase = (g.phase + 1) % len(g.prog.Phases)
		g.loadPhase()
		g.runLeft = 0 // phase changes break the current run
	}
	if g.runLeft <= 0 || g.curSite == nil {
		g.curSite = g.pickSite()
		lo, hi := g.prog.RunMin, g.prog.RunMax
		if lo < 1 {
			lo = 1
		}
		if hi < lo {
			hi = lo
		}
		g.runLeft = lo + g.rng.Intn(hi-lo+1)
	}
	g.runLeft--
	s := g.curSite
	k := s.Kernel
	mul := g.prog.SkipScale
	if mul == 0 {
		mul = 1
	}
	skip := s.SkipALU * mul

	// Dispatch branch at the call site: the context marker CHiRP's
	// conditional history records.
	g.queue = append(g.queue, trace.Record{
		PC: s.BranchPC, Class: trace.ClassCondBranch,
		Taken: true, Target: s.CallPC, Skip: skip,
	})
	// The call itself.
	callClass := trace.ClassUncondDirect
	if s.IndirectCall {
		callClass = trace.ClassUncondIndirect
	}
	g.queue = append(g.queue, trace.Record{
		PC: s.CallPC, Class: callClass, Taken: true, Target: k.EntryPC, Skip: 1,
	})

	loads := s.LoadsPerPage
	if loads <= 0 {
		loads = 1
	}
	if loads > len(k.LoadPCs) {
		loads = len(k.LoadPCs)
	}
	for i := 0; i < s.PagesPerCall; i++ {
		page := g.selectPage(s)
		// The line within the page is a fixed function of the page, so
		// repeated touches of a hot page hit the same cache lines: data
		// stalls then come from genuinely cold data, keeping the TLB's
		// share of stall cycles in the paper's regime.
		line := (page * 2654435761 % 64) * 64
		for j := 0; j < loads; j++ {
			g.queue = append(g.queue, trace.Record{
				PC: k.LoadPCs[j], Class: trace.ClassLoad,
				EA:   page<<pageShift | (line+uint64(j)*64)&0xfff,
				Skip: skip,
			})
		}
		if s.Stores && k.StorePC != 0 {
			g.queue = append(g.queue, trace.Record{
				PC: k.StorePC, Class: trace.ClassStore,
				EA:   page<<pageShift | line,
				Skip: 1,
			})
		}
		// Data-dependent noise branches inside the kernel body.
		for _, npc := range k.NoisePCs {
			g.queue = append(g.queue, trace.Record{
				PC: npc, Class: trace.ClassCondBranch,
				Taken: g.rng.Bool(0.5), Target: npc + 8, Skip: 0,
			})
		}
		// The kernel's loop branch: taken while pages remain.
		g.queue = append(g.queue, trace.Record{
			PC: k.LoopBranchPC, Class: trace.ClassCondBranch,
			Taken: i < s.PagesPerCall-1, Target: k.EntryPC + 16, Skip: 1,
		})
	}
	// Return (indirect, as hardware sees it).
	g.queue = append(g.queue, trace.Record{
		PC: k.RetPC, Class: trace.ClassUncondIndirect,
		Taken: true, Target: s.CallPC + 4, Skip: 0,
	})
}
