package workloads

import (
	"fmt"

	"github.com/chirplab/chirp/internal/trace"
)

// Workload names one member of a compiled suite or spec and builds its
// trace source on demand. Building is cheap; the heavy state is in the
// Generator (or, for composite multi-tenant workloads, the scheduler
// behind the source hook).
type Workload struct {
	Name     string
	Category string
	// Seed is the effective seed the workload's trace derives from
	// (after master-seed mixing, for spec-compiled workloads).
	Seed uint64
	// SpecHash is the content hash of the workload spec this workload
	// was compiled from. Legacy Suite/SuiteN workloads predate specs
	// and carry ""; the hash keeps persistent capture streams from
	// colliding across specs (see internal/l2stream).
	SpecHash string

	build    func(name string, seed uint64) *Program
	source   func() trace.Source
	describe func() Description
	profile  string
}

// Program constructs the workload's program model. Composite workloads
// (multi-tenant schedules) have no single program and return nil; use
// Source for the trace and Describe for the report.
func (w *Workload) Program() *Program {
	if w.build == nil {
		return nil
	}
	return w.build(w.Name, w.Seed)
}

// Source returns a fresh deterministic trace stream for the workload.
func (w *Workload) Source() trace.Source {
	if w.source != nil {
		return w.source()
	}
	return NewGenerator(w.Program())
}

// Profile reports the workload's population profile ("quiet",
// "pressure", "migrate", or a composite label) without requiring a
// Program.
func (w *Workload) Profile() string {
	if w.profile != "" {
		return w.profile
	}
	if p := w.Program(); p != nil {
		return p.Profile
	}
	return ""
}

// Describe summarises the workload. Spec-compiled composites report
// their tenant/client structure; program workloads report their
// program model.
func (w *Workload) Describe() Description {
	if w.describe != nil {
		return w.describe()
	}
	d := Describe(w.Program())
	d.SpecHash = w.SpecHash
	return d
}

// NewProgramWorkload wraps a program builder as a workload. The spec
// compiler uses it for single-client programs; seed is the effective
// (master-mixed) seed and specHash labels the originating spec.
func NewProgramWorkload(name, category, specHash string, seed uint64, build func(name string, seed uint64) *Program) *Workload {
	return &Workload{Name: name, Category: category, Seed: seed, SpecHash: specHash, build: build}
}

// NewSourceWorkload wraps an arbitrary deterministic source factory
// (e.g. a multi-tenant scheduler) as a composite workload. profile
// labels the population profile for suite reports; describe supplies
// the -describe report.
func NewSourceWorkload(name, category, specHash string, seed uint64, profile string, source func() trace.Source, describe func() Description) *Workload {
	return &Workload{
		Name: name, Category: category, Seed: seed, SpecHash: specHash,
		profile: profile, source: source, describe: describe,
	}
}

// Categories lists the suite's workload families, mirroring the
// paper's description of the CVP-1 mix: "SPEC, database, crypto,
// scientific, web, 'big data' and other applications". Each category
// is a program template the spec compiler can also instantiate
// directly (spec clients with "template": "db" etc.).
var Categories = []string{"spec", "db", "crypto", "sci", "web", "bigdata", "ml", "osmix"}

var builders = map[string]func(name string, seed uint64) *Program{
	"spec":    buildSpec,
	"db":      buildDB,
	"crypto":  buildCrypto,
	"sci":     buildSci,
	"web":     buildWeb,
	"bigdata": buildBigData,
	"ml":      buildML,
	"osmix":   buildOSMix,
}

// Template returns the named category template's program builder, for
// the spec compiler; ok is false for unknown templates.
func Template(category string) (build func(name string, seed uint64) *Program, ok bool) {
	build, ok = builders[category]
	return build, ok
}

// SuiteSize is the number of workloads the paper simulates.
const SuiteSize = 870

// SuiteSpec declares an interleaved suite of template-built workloads —
// the registry form behind Suite/SuiteN and the `suite` section of a
// workload spec (internal/workloads/spec).
type SuiteSpec struct {
	// Size is the number of workloads to materialise.
	Size int
	// Categories are the templates to interleave; nil means Categories.
	Categories []string
}

// DefaultSuite is the declaration of the paper's 870-workload suite.
func DefaultSuite() SuiteSpec { return SuiteSpec{Size: SuiteSize} }

// CompileSuite materialises spec into workloads, categories
// interleaved so any prefix is diverse. Per-workload seeds follow the
// historical formula mixed with masterSeed; masterSeed 0 preserves the
// formula exactly, which is what keeps the checked-in default spec
// byte-identical to the legacy suite. specHash labels every workload
// with the spec it came from ("" for the legacy constructors).
func CompileSuite(spec SuiteSpec, masterSeed uint64, specHash string) ([]*Workload, error) {
	cats := spec.Categories
	if len(cats) == 0 {
		cats = Categories
	}
	for _, cat := range cats {
		if _, ok := builders[cat]; !ok {
			return nil, fmt.Errorf("workloads: unknown category %q", cat)
		}
	}
	if spec.Size < 0 {
		return nil, fmt.Errorf("workloads: negative suite size %d", spec.Size)
	}
	out := make([]*Workload, 0, spec.Size)
	idx := make(map[string]int, len(cats))
	for i := 0; i < spec.Size; i++ {
		cat := cats[i%len(cats)]
		k := idx[cat]
		idx[cat]++
		out = append(out, &Workload{
			Name:     fmt.Sprintf("%s-%03d", cat, k),
			Category: cat,
			// Seeds separate categories widely so parameter draws never
			// correlate across families.
			Seed:     MixSeeds(masterSeed, uint64(k)*2654435761+HashString(cat)),
			SpecHash: specHash,
			build:    builders[cat],
		})
	}
	return out, nil
}

// Suite returns the full 870-workload default suite.
func Suite() []*Workload { return SuiteN(SuiteSize) }

// SuiteN returns the first n workloads of the interleaved default
// suite (n ≤ SuiteSize recommended but not required; the naming scheme
// extends indefinitely). It is a thin wrapper over CompileSuite of the
// default declaration.
func SuiteN(n int) []*Workload {
	ws, err := CompileSuite(SuiteSpec{Size: n}, 0, "")
	if err != nil {
		// Unreachable: the default categories always compile.
		panic(err)
	}
	return ws
}

// ByName returns the named workload from the default suite, or nil.
func ByName(name string) *Workload {
	for _, w := range Suite() {
		if w.Name == name {
			return w
		}
	}
	return nil
}

// HashString hashes a name (FNV-1a, 64-bit) for seed derivation; the
// suite's category seeds and the spec compiler's client seeds both use
// it so seeds separate widely by name.
func HashString(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// MixSeeds folds a master seed into a derived seed (splitmix64-style
// finaliser). MixSeeds(0, s) == s, so an unset master seed preserves
// legacy per-workload seeds — the master-seed-supremacy identity the
// golden tests pin.
func MixSeeds(master, derived uint64) uint64 {
	if master == 0 {
		return derived
	}
	z := master ^ (derived * 0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = derived
	}
	return z
}
