package workloads

import (
	"fmt"

	"github.com/chirplab/chirp/internal/trace"
)

// Workload names one member of the suite and builds its program on
// demand. Building is cheap; the heavy state is in the Generator.
type Workload struct {
	Name     string
	Category string
	Seed     uint64
	build    func(name string, seed uint64) *Program
}

// Program constructs the workload's program model.
func (w *Workload) Program() *Program { return w.build(w.Name, w.Seed) }

// Source returns a fresh deterministic trace stream for the workload.
func (w *Workload) Source() trace.Source { return NewGenerator(w.Program()) }

// Categories lists the suite's workload families, mirroring the
// paper's description of the CVP-1 mix: "SPEC, database, crypto,
// scientific, web, 'big data' and other applications".
var Categories = []string{"spec", "db", "crypto", "sci", "web", "bigdata", "ml", "osmix"}

var builders = map[string]func(name string, seed uint64) *Program{
	"spec":    buildSpec,
	"db":      buildDB,
	"crypto":  buildCrypto,
	"sci":     buildSci,
	"web":     buildWeb,
	"bigdata": buildBigData,
	"ml":      buildML,
	"osmix":   buildOSMix,
}

// SuiteSize is the number of workloads the paper simulates.
const SuiteSize = 870

// Suite returns the full 870-workload suite, categories interleaved so
// any prefix is diverse.
func Suite() []*Workload { return SuiteN(SuiteSize) }

// SuiteN returns the first n workloads of the interleaved suite
// (n ≤ SuiteSize recommended but not required; the naming scheme
// extends indefinitely).
func SuiteN(n int) []*Workload {
	out := make([]*Workload, 0, n)
	idx := make(map[string]int, len(Categories))
	for i := 0; i < n; i++ {
		cat := Categories[i%len(Categories)]
		k := idx[cat]
		idx[cat]++
		out = append(out, &Workload{
			Name:     fmt.Sprintf("%s-%03d", cat, k),
			Category: cat,
			// Seeds separate categories widely so parameter draws never
			// correlate across families.
			Seed:  uint64(k)*2654435761 + hashCategory(cat),
			build: builders[cat],
		})
	}
	return out
}

// ByName returns the named workload from the suite, or nil.
func ByName(name string) *Workload {
	for _, w := range Suite() {
		if w.Name == name {
			return w
		}
	}
	return nil
}

func hashCategory(cat string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(cat); i++ {
		h = (h ^ uint64(cat[i])) * 1099511628211
	}
	return h
}

// builder assembles a Program, laying out code and data address space.
type builder struct {
	prog         *Program
	rng          *trace.RNG
	nextCodePage uint64
	nextDataPage uint64
	kernelCount  uint64
}

func newBuilder(name, category string, seed uint64) *builder {
	rng := trace.NewRNG(seed ^ 0xabcd1234)
	return &builder{
		prog: &Program{
			Name: name, Category: category, Seed: seed,
			RunMin: 2 + rng.Intn(2), RunMax: 4 + rng.Intn(5),
			// Dilute to the paper's absolute MPKI range (average LRU MPKI
			// of order 1.5); drawn per workload so the S-curve spreads.
			SkipScale: uint32(3 + rng.Intn(4)),
		},
		rng: trace.NewRNG(seed),
		// Code from 4 MB, data from 4 GB: disjoint page spaces.
		nextCodePage: 0x400,
		nextDataPage: 0x100000,
	}
}

// kernel lays out a kernel body across codePages pages with nLoads
// load PCs, nNoise data-dependent branches and an optional store.
func (b *builder) kernel(codePages, nLoads, nNoise int, hasStore bool) *Kernel {
	if codePages < 1 {
		codePages = 1
	}
	if nLoads < 1 {
		nLoads = 1
	}
	base := b.nextCodePage << pageShift
	b.nextCodePage += uint64(codePages)
	pageOf := func(i int) uint64 { return base + uint64(i%codePages)<<pageShift }
	// Each kernel's load PCs carry a kernel-specific pattern in PC bits
	// [3:2] — the instruction-slot bits that distinguish inlined or
	// unrolled copies in real code. Reuse behaviour therefore correlates
	// with exactly the bits the paper's ADALINE study singles out
	// (Figure 3) and that CHiRP's path history records.
	lowTag := (b.kernelCount % 2) << 2
	b.kernelCount++
	// The body's PCs are spread over its pages, so executing the kernel
	// actually fetches its whole code footprint — multi-page bodies
	// create real instruction-side TLB pressure (the web category's
	// front-end story).
	k := &Kernel{
		EntryPC:      base,
		LoopBranchPC: pageOf(codePages-1) + 0x40,
		RetPC:        pageOf(codePages-1) + 0x80,
	}
	for i := 0; i < nLoads; i++ {
		k.LoadPCs = append(k.LoadPCs, pageOf(i)+0x100+lowTag+uint64(i)*0x48)
	}
	if hasStore {
		k.StorePC = pageOf(codePages/2) + 0x200
	}
	for i := 0; i < nNoise; i++ {
		k.NoisePCs = append(k.NoisePCs, pageOf(i+1)+0x300+uint64(i)*0x1c)
	}
	return k
}

// region allocates pages data pages with a hot working subset.
func (b *builder) region(pages, hot uint64) *Region {
	if pages == 0 {
		pages = 1
	}
	if hot > pages {
		hot = pages
	}
	r := &Region{BasePage: b.nextDataPage, Pages: pages, Hot: hot}
	// Leave a guard gap so regions never blend.
	b.nextDataPage += pages + 16
	b.prog.Regions = append(b.prog.Regions, r)
	return r
}

// site binds kernel k to region r under behaviour bv. Each site gets
// its own driver code page so its branch PC is a distinct context
// marker.
func (b *builder) site(k *Kernel, r *Region, bv Behavior, pagesPerCall int) *Site {
	base := b.nextCodePage << pageShift
	b.nextCodePage++
	s := &Site{
		BranchPC:     base + 0x10,
		CallPC:       base + 0x20,
		Kernel:       k,
		Region:       r,
		Behavior:     bv,
		PagesPerCall: pagesPerCall,
		LoadsPerPage: 1,
		SkipALU:      uint32(2 + b.rng.Intn(6)),
	}
	b.prog.Sites = append(b.prog.Sites, s)
	b.prog.Kernels = appendKernelOnce(b.prog.Kernels, k)
	return s
}

func appendKernelOnce(ks []*Kernel, k *Kernel) []*Kernel {
	for _, e := range ks {
		if e == k {
			return ks
		}
	}
	return append(ks, k)
}

// phases installs weight vectors; each vector must cover every site.
func (b *builder) phases(callsPerPhase int, weights ...[]uint32) {
	b.prog.CallsPerPhase = callsPerPhase
	for _, w := range weights {
		b.prog.Phases = append(b.prog.Phases, Phase{Weights: w})
	}
}

// uniformPhase returns a weight vector of 1s for every current site.
func (b *builder) uniformPhase() []uint32 {
	w := make([]uint32, len(b.prog.Sites))
	for i := range w {
		w[i] = 1
	}
	return w
}

// rint draws a uniform int in [lo, hi].
func (b *builder) rint(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + b.rng.Intn(hi-lo+1)
}

// rpages draws a page count in [lo, hi].
func (b *builder) rpages(lo, hi int) uint64 { return uint64(b.rint(lo, hi)) }

// drift draws a sliding-window advance for a hot window of w pages:
// half of the draws are stationary (0), the rest slide by roughly
// 0.5–2%% of the window per pass. Drifting working sets are what
// penalise indiscriminate freeze strategies (see Behavior Window).
func (b *builder) drift(w uint64) uint64 {
	if b.rng.Bool(0.5) {
		return 0
	}
	lo := int(w/200) + 2
	hi := int(w / 50)
	if hi <= lo {
		hi = lo + 1
	}
	return uint64(b.rint(lo, hi))
}
