package workloads

import (
	"testing"

	"github.com/chirplab/chirp/internal/trace"
)

func TestSuiteSizeAndNames(t *testing.T) {
	suite := Suite()
	if len(suite) != SuiteSize {
		t.Fatalf("suite size = %d, want %d", len(suite), SuiteSize)
	}
	seen := map[string]bool{}
	perCat := map[string]int{}
	for _, w := range suite {
		if seen[w.Name] {
			t.Fatalf("duplicate workload name %s", w.Name)
		}
		seen[w.Name] = true
		perCat[w.Category]++
	}
	for _, cat := range Categories {
		if perCat[cat] < SuiteSize/len(Categories)-1 {
			t.Errorf("category %s underrepresented: %d workloads", cat, perCat[cat])
		}
	}
}

func TestByName(t *testing.T) {
	w := ByName("spec-000")
	if w == nil || w.Category != "spec" {
		t.Fatalf("ByName(spec-000) = %+v", w)
	}
	if ByName("nope-999") != nil {
		t.Error("ByName must return nil for unknown workloads")
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	for _, name := range []string{"spec-000", "db-001", "crypto-000", "web-002", "ml-003"} {
		w := ByName(name)
		if w == nil {
			t.Fatalf("workload %s missing", name)
		}
		a := trace.Collect(trace.NewLimit(w.Source(), 20000))
		b := trace.Collect(trace.NewLimit(w.Source(), 20000))
		if len(a) != len(b) {
			t.Fatalf("%s: lengths differ %d vs %d", name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: record %d differs: %+v vs %+v", name, i, a[i], b[i])
			}
		}
	}
}

func TestGeneratorNextBlockMatchesNext(t *testing.T) {
	w := ByName("db-002")
	if w == nil {
		t.Fatal("workload db-002 missing")
	}
	// Reference via Next directly — not through trace.Limit, whose
	// final-record Skip clamp would diverge from the raw stream.
	ref := NewGenerator(w.Program())
	want := make([]trace.Record, 2000)
	for i := range want {
		if !ref.Next(&want[i]) {
			t.Fatal("infinite generator ended")
		}
	}
	g := NewGenerator(w.Program())
	buf := make([]trace.Record, 37) // misaligned with kernel-call sizes
	var got []trace.Record
	for len(got) < len(want) {
		n := g.NextBlock(buf)
		if n != len(buf) {
			t.Fatalf("infinite generator returned short block %d", n)
		}
		got = append(got, buf[:n]...)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d differs: block %+v vs next %+v", i, got[i], want[i])
		}
	}
}

func TestGeneratorResetRestarts(t *testing.T) {
	w := ByName("osmix-000")
	src := w.Source()
	var first trace.Record
	if !src.Next(&first) {
		t.Fatal("empty stream")
	}
	for i := 0; i < 5000; i++ {
		var r trace.Record
		src.Next(&r)
	}
	src.Reset()
	var again trace.Record
	if !src.Next(&again) || again != first {
		t.Fatalf("Reset did not restart: %+v vs %+v", again, first)
	}
}

func TestRecordsWellFormed(t *testing.T) {
	for _, name := range []string{"spec-001", "bigdata-000", "sci-001", "web-000"} {
		w := ByName(name)
		src := trace.NewLimit(w.Source(), 50000)
		var rec trace.Record
		classes := map[trace.Class]int{}
		for src.Next(&rec) {
			classes[rec.Class]++
			switch {
			case rec.Class.IsMemory():
				if rec.EA == 0 {
					t.Fatalf("%s: memory record with zero EA", name)
				}
			case rec.Class.IsBranch():
				if rec.Target == 0 {
					t.Fatalf("%s: branch record with zero target", name)
				}
			}
			if rec.PC == 0 {
				t.Fatalf("%s: record with zero PC", name)
			}
		}
		// Every workload must exercise loads, conditional branches and
		// calls (class diversity drives the predictors).
		for _, c := range []trace.Class{trace.ClassLoad, trace.ClassCondBranch, trace.ClassUncondIndirect} {
			if classes[c] == 0 {
				t.Errorf("%s: no %v records", name, c)
			}
		}
	}
}

func TestRegionsDoNotOverlap(t *testing.T) {
	for _, w := range SuiteN(32) {
		prog := w.Program()
		type span struct{ lo, hi uint64 }
		var spans []span
		for _, r := range prog.Regions {
			spans = append(spans, span{r.BasePage, r.BasePage + r.Pages})
		}
		for i := range spans {
			for j := i + 1; j < len(spans); j++ {
				if spans[i].lo < spans[j].hi && spans[j].lo < spans[i].hi {
					t.Fatalf("%s: regions %d and %d overlap", w.Name, i, j)
				}
			}
		}
	}
}

func TestPhaseWeightsCoverSites(t *testing.T) {
	for _, w := range SuiteN(64) {
		prog := w.Program()
		if len(prog.Phases) == 0 {
			t.Fatalf("%s: no phases", w.Name)
		}
		for pi, ph := range prog.Phases {
			if len(ph.Weights) != len(prog.Sites) {
				t.Fatalf("%s: phase %d has %d weights for %d sites", w.Name, pi, len(ph.Weights), len(prog.Sites))
			}
			total := uint32(0)
			for _, wt := range ph.Weights {
				total += wt
			}
			if total == 0 {
				t.Fatalf("%s: phase %d all-zero weights", w.Name, pi)
			}
		}
	}
}

func TestProfilesPresent(t *testing.T) {
	counts := map[string]int{}
	for _, w := range SuiteN(200) {
		counts[w.Program().Profile]++
	}
	for _, p := range []string{"quiet", "pressure", "migrate"} {
		if counts[p] == 0 {
			t.Errorf("no %s-profile workloads in the first 200", p)
		}
	}
}

func TestBehaviorString(t *testing.T) {
	for b, want := range map[Behavior]string{
		Stream: "stream", Loop: "loop", Chase: "chase",
		Zipf: "zipf", Gups: "gups", Batch: "batch",
	} {
		if got := b.String(); got != want {
			t.Errorf("Behavior(%d).String() = %q, want %q", b, got, want)
		}
	}
	if got := Behavior(99).String(); got != "behavior(99)" {
		t.Errorf("unknown behaviour string = %q", got)
	}
}

func TestBatchBehaviorRevisitsChunks(t *testing.T) {
	r := &Region{BasePage: 1000, Pages: 100}
	s := &Site{Region: r, Behavior: Batch, ChunkPages: 4, Passes: 2}
	g := &Generator{prog: &Program{Seed: 1, Regions: []*Region{r},
		Sites:  []*Site{s},
		Phases: []Phase{{Weights: []uint32{1}}}}}
	g.Reset()
	var pages []uint64
	for i := 0; i < 16; i++ {
		pages = append(pages, g.selectPage(s))
	}
	// Two passes over chunk [1000..1003], then the next chunk.
	want := []uint64{1000, 1001, 1002, 1003, 1000, 1001, 1002, 1003,
		1004, 1005, 1006, 1007, 1004, 1005, 1006, 1007}
	for i := range want {
		if pages[i] != want[i] {
			t.Fatalf("batch page %d = %d, want %d (%v)", i, pages[i], want[i], pages)
		}
	}
}

func TestLoopBehaviorCycles(t *testing.T) {
	r := &Region{BasePage: 500, Pages: 10, Hot: 3}
	s := &Site{Region: r, Behavior: Loop}
	g := &Generator{prog: &Program{Seed: 1, Regions: []*Region{r},
		Sites:  []*Site{s},
		Phases: []Phase{{Weights: []uint32{1}}}}}
	g.Reset()
	for i := 0; i < 9; i++ {
		if got, want := g.selectPage(s), uint64(500+i%3); got != want {
			t.Fatalf("loop page %d = %d, want %d", i, got, want)
		}
	}
}

func TestInstructionDilutionScale(t *testing.T) {
	// SkipScale must not change the access stream, only Skip counts.
	w := ByName("spec-000")
	p1 := w.Program()
	p2 := w.Program()
	p2.SkipScale = p1.SkipScale * 2
	a := trace.Collect(trace.NewLimit(NewGenerator(p1), 50000))
	b := trace.Collect(trace.NewLimit(NewGenerator(p2), 50000))
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		t.Fatal("empty traces")
	}
	for i := 0; i < n; i++ {
		if a[i].PC != b[i].PC || a[i].EA != b[i].EA || a[i].Class != b[i].Class {
			t.Fatalf("dilution changed the access stream at record %d", i)
		}
	}
}
