package workloads

// The category builders draw each workload's parameters
// deterministically from its seed. The magnitudes are set against the
// simulated hierarchy (Table II): L1 TLBs reach 64 pages (256 KB), the
// L2 TLB reaches 1024 pages (4 MB).
//
// Every workload follows one of three population profiles; their
// mixture reproduces the population structure behind the paper's
// averages (Figure 7's S-curve):
//
//   - quiet: working sets fit comfortably; the L2 TLB runs at high hit
//     rates and replacement policy barely matters (the flat head of
//     the S-curve, most benchmarks).
//   - pressure: live working sets near the L2's 1024-page capacity
//     under continuous one-shot stream pollution from the same shared
//     kernels. This is where dead-entry prediction pays: the stream
//     entries are dead-on-arrival but only control-flow context — not
//     the accessing PC — identifies them (§III).
//   - migrate: the hot working set moves between regions across
//     phases. Learned "dead" signatures go stale and PC-indexed
//     predictors bleed misses re-learning; recency adapts instantly.
//     (Working-set migration is why predictive policies do not win
//     everywhere, and a large part of why SHiP nets out near LRU.)
type profile uint8

const (
	profQuiet profile = iota
	profPressure
	profMigrate
)

// drawProfile picks the workload's profile with category-specific
// percentages (quiet%, pressure%, rest migrate).
func (b *builder) drawProfile(quietPct, pressurePct int) profile {
	x := b.rng.Intn(100)
	var p profile
	switch {
	case x < quietPct:
		p = profQuiet
	case x < quietPct+pressurePct:
		p = profPressure
	default:
		p = profMigrate
	}
	b.prog.Profile = [...]string{"quiet", "pressure", "migrate"}[p]
	return p
}

// hotSplit splits a total hot-page budget across n loop regions.
func (b *builder) hotSplit(total uint64, n int) []uint64 {
	out := make([]uint64, n)
	rem := total
	for i := 0; i < n-1; i++ {
		share := rem / uint64(n-i)
		jitter := share / 4
		v := share - jitter + b.rpages(0, int(2*jitter))
		if v >= rem {
			v = rem / 2
		}
		out[i] = v
		rem -= v
	}
	out[n-1] = rem
	return out
}

// buildSpec models SPEC-like compute programs: hot loop nests, a
// streaming pass and a blocked pass through a shared library kernel,
// and a skewed lookup table.
func buildSpec(name string, seed uint64) *Program {
	b := newBuilder(name, "spec", seed)
	prof := b.drawProfile(38, 38)

	shared := b.kernel(1, b.rint(2, 3), b.rint(0, 1), true)
	private := b.kernel(1, 2, 0, false)

	stream := b.region(b.rpages(2000, 8000), 0)
	blockedR := b.region(b.rpages(1000, 4000), 0)
	zipfR := b.region(b.rpages(600, 2400), 0)

	ss := b.site(shared, stream, Stream, b.rint(2, 3))
	ss.SkipALU = uint32(b.rint(10, 22))
	sbk := b.site(shared, blockedR, Batch, b.rint(2, 3))
	sbk.ChunkPages = uint64(b.rint(16, 48))
	sbk.Passes = uint64(b.rint(2, 3))
	sbk.SkipALU = uint32(b.rint(10, 22))
	sz := b.site(private, zipfR, Zipf, 1)
	sz.ZipfSkew = 0.7 + b.rng.Float64()*0.25
	sz.SkipALU = uint32(b.rint(16, 30))

	switch prof {
	case profQuiet:
		hs := b.hotSplit(b.rpages(180, 480), 2)
		hotA := b.region(hs[0]*2, hs[0])
		hotB := b.region(hs[1]*2, hs[1])
		sl := b.site(shared, hotA, Loop, b.rint(1, 3))
		sl.SkipALU = uint32(b.rint(18, 36))
		sc := b.site(private, hotB, Chase, b.rint(1, 2))
		sc.SkipALU = uint32(b.rint(18, 36))
		b.phases(b.rint(4000, 9000),
			[]uint32{1, 1, 2, 8, 6},
			[]uint32{2, 2, 2, 6, 5})
	case profPressure:
		hs := b.hotSplit(b.rpages(780, 980), 2)
		hotA := b.region(hs[0]*4, hs[0])
		hotB := b.region(hs[1]+hs[1]/8, hs[1])
		sl := b.site(shared, hotA, Window, b.rint(1, 3))
		sl.WindowDrift = b.drift(hs[0])
		sl.SkipALU = uint32(b.rint(18, 36))
		sc := b.site(private, hotB, Chase, b.rint(1, 2))
		sc.SkipALU = uint32(b.rint(18, 36))
		sw := uint32(b.rint(3, 6))
		b.phases(b.rint(4000, 9000),
			[]uint32{sw, 0, 1, 9, 7},
			[]uint32{sw + 1, 0, 1, 8, 6})
	case profMigrate:
		h := b.rpages(440, 660)
		hotA := b.region(h+h/8, h)
		hotB := b.region(h+h/8, h)
		sl := b.site(shared, hotA, Loop, b.rint(1, 3))
		sl.SkipALU = uint32(b.rint(18, 36))
		sc := b.site(shared, hotB, Loop, b.rint(1, 3))
		sc.SkipALU = uint32(b.rint(18, 36))
		// Maintenance contexts sweep whichever region is cold (GC,
		// checkpointing): dead traffic through the hot kernel's PCs.
		ta := b.site(shared, hotA, Stream, 1)
		ta.SkipALU = uint32(b.rint(14, 26))
		tb := b.site(shared, hotB, Stream, 1)
		tb.SkipALU = uint32(b.rint(14, 26))
		b.phases(b.rint(3000, 9000),
			[]uint32{2, 0, 2, 9, 0, 0, 2},
			[]uint32{2, 0, 2, 0, 9, 2, 0})
	}
	return b.prog
}

// buildDB models database engines: OLTP index probes with Zipf-skewed
// page popularity, OLAP table scans and hash-join batches through the
// same probe/scan kernels — the paper's motivating case where a
// probe's reuse depends entirely on which query plan issued it.
func buildDB(name string, seed uint64) *Program {
	b := newBuilder(name, "db", seed)
	prof := b.drawProfile(30, 45)

	probe := b.kernel(1, b.rint(2, 4), b.rint(0, 1), false)
	scank := b.kernel(1, 2, 0, true)

	index := b.region(b.rpages(1000, 4000), 0)
	table := b.region(b.rpages(3000, 12000), 0)
	spill := b.region(b.rpages(1000, 4000), 0)

	oltp := b.site(probe, index, Zipf, b.rint(1, 2))
	oltp.ZipfSkew = 0.78 + b.rng.Float64()*0.17
	oltp.SkipALU = uint32(b.rint(16, 30))
	olap := b.site(probe, table, Stream, b.rint(2, 3))
	olap.SkipALU = uint32(b.rint(10, 20))
	join := b.site(probe, spill, Batch, b.rint(2, 3))
	join.ChunkPages = uint64(b.rint(16, 48))
	join.Passes = 2
	join.SkipALU = uint32(b.rint(10, 20))

	switch prof {
	case profQuiet:
		h := b.rpages(200, 500)
		buffer := b.region(h+h/4, h)
		sbuf := b.site(scank, buffer, Loop, b.rint(1, 2))
		sbuf.SkipALU = uint32(b.rint(18, 34))
		b.phases(b.rint(3000, 8000),
			[]uint32{6, 1, 1, 8},
			[]uint32{4, 2, 2, 7})
	case profPressure:
		h := b.rpages(780, 960)
		buffer := b.region(h*4, h)
		sbuf := b.site(probe, buffer, Window, b.rint(1, 3))
		sbuf.WindowDrift = b.drift(h)
		sbuf.SkipALU = uint32(b.rint(18, 34))
		sw := uint32(b.rint(3, 6))
		b.phases(b.rint(3000, 8000),
			[]uint32{2, sw, 0, 10},
			[]uint32{2, sw + 1, 0, 9})
	case profMigrate:
		// Buffer-pool turnover: the hot tables change; the checkpointer
		// sweeps the cold one through the same probe kernel.
		h := b.rpages(440, 640)
		bufA := b.region(h+h/8, h)
		bufB := b.region(h+h/8, h)
		sa := b.site(probe, bufA, Loop, b.rint(1, 2))
		sa.SkipALU = uint32(b.rint(18, 34))
		sbv := b.site(probe, bufB, Loop, b.rint(1, 2))
		sbv.SkipALU = uint32(b.rint(18, 34))
		ta := b.site(probe, bufA, Stream, 1)
		ta.SkipALU = uint32(b.rint(14, 26))
		tb := b.site(probe, bufB, Stream, 1)
		tb.SkipALU = uint32(b.rint(14, 26))
		b.phases(b.rint(3000, 9000),
			[]uint32{4, 2, 0, 9, 0, 0, 2},
			[]uint32{4, 2, 0, 0, 9, 2, 0})
	}
	return b.prog
}

// buildCrypto models crypto/compression codes: tiny hot data that the
// L1 TLBs mostly cover, long ALU runs, near-zero L2 TLB pressure —
// the flat low-MPKI head of the Figure 7 S-curve.
func buildCrypto(name string, seed uint64) *Program {
	b := newBuilder(name, "crypto", seed)
	b.prog.Profile = "quiet"

	k := b.kernel(1, 2, 0, true)
	kexp := b.kernel(1, 1, 0, false)

	state := b.region(b.rpages(24, 120), b.rpages(16, 96))
	sched := b.region(b.rpages(200, 800), 0)

	s1 := b.site(k, state, Loop, b.rint(1, 2))
	s1.SkipALU = uint32(b.rint(24, 64)) // heavy ALU between touches
	s1.Stores = true
	s2 := b.site(kexp, sched, Batch, 1) // compressed blocks: write then verify
	s2.ChunkPages = uint64(b.rint(4, 16))
	s2.Passes = 2
	s2.SkipALU = uint32(b.rint(16, 40))

	b.phases(0, []uint32{14, 1})
	return b.prog
}

// buildSci models scientific/stencil codes: grids swept by a shared
// kernel. Pressure workloads run grids near L2 reach under halo
// streams; migratory ones alternate between grids (multi-grid,
// red-black phases); quiet ones are comfortably tiled.
func buildSci(name string, seed uint64) *Program {
	b := newBuilder(name, "sci", seed)
	prof := b.drawProfile(32, 38)

	sweep := b.kernel(1, b.rint(2, 3), 0, true)
	blocked := b.kernel(1, 2, 0, false)

	halo := b.region(b.rpages(1500, 6000), 0)
	tile := b.region(b.rpages(600, 2400), 0)
	acc := b.region(b.rpages(80, 320), b.rpages(56, 200))

	sh := b.site(sweep, halo, Stream, b.rint(1, 3)) // boundary exchange
	sh.SkipALU = uint32(b.rint(12, 24))
	st := b.site(sweep, tile, Batch, b.rint(2, 3))
	st.ChunkPages = uint64(b.rint(16, 48))
	st.Passes = uint64(b.rint(2, 4))
	st.SkipALU = uint32(b.rint(16, 34))
	sb := b.site(blocked, acc, Loop, 1)
	sb.SkipALU = uint32(b.rint(16, 34))

	switch prof {
	case profQuiet:
		h := b.rpages(200, 520)
		grid := b.region(h, h)
		sg := b.site(sweep, grid, Loop, b.rint(2, 4))
		sg.Stores = true
		sg.SkipALU = uint32(b.rint(16, 32))
		b.phases(b.rint(4000, 9000),
			[]uint32{1, 2, 2, 8},
			[]uint32{1, 3, 2, 7})
	case profPressure:
		// The classic case: a grid around or above L2 reach, cyclic.
		h := b.rpages(820, 1080)
		if b.rng.Bool(0.5) {
			h = b.rpages(1100, 1600) // beyond reach: LRU gets zero reuse
		}
		grid := b.region(h, h)
		sg := b.site(sweep, grid, Loop, b.rint(2, 5))
		sg.Stores = true
		sg.SkipALU = uint32(b.rint(16, 32))
		sw := uint32(b.rint(3, 6))
		b.phases(b.rint(4000, 9000),
			[]uint32{sw, 0, 2, 9},
			[]uint32{sw, 0, 2, 8})
	case profMigrate:
		// Multi-grid: levels alternate.
		h := b.rpages(420, 640)
		gridA := b.region(h, h)
		gridB := b.region(h, h)
		sga := b.site(sweep, gridA, Loop, b.rint(2, 4))
		sga.Stores = true
		sga.SkipALU = uint32(b.rint(16, 32))
		sgb := b.site(sweep, gridB, Loop, b.rint(2, 4))
		sgb.SkipALU = uint32(b.rint(16, 32))
		ta := b.site(sweep, gridA, Stream, 1)
		ta.SkipALU = uint32(b.rint(14, 26))
		tb := b.site(sweep, gridB, Stream, 1)
		tb.SkipALU = uint32(b.rint(14, 26))
		b.phases(b.rint(3000, 9000),
			[]uint32{2, 0, 2, 9, 0, 0, 2},
			[]uint32{2, 0, 2, 0, 9, 2, 0})
	}
	return b.prog
}

// buildWeb models servers: a large code footprint (handler bodies over
// many code pages, dispatched indirectly) pressuring the unified L2
// TLB from the instruction side, with session/cache/log data flowing
// through a few shared library kernels.
func buildWeb(name string, seed uint64) *Program {
	b := newBuilder(name, "web", seed)
	prof := b.drawProfile(35, 40)

	// Enough multi-page handler bodies that the touched code footprint
	// exceeds the 64-entry L1 iTLB: the instruction side then
	// contributes real traffic to the unified L2 TLB.
	nLib := b.rint(9, 16)
	libs := make([]*Kernel, nLib)
	for i := range libs {
		libs[i] = b.kernel(b.rint(3, 8), b.rint(1, 2), b.rint(0, 1), i%2 == 0)
	}
	sessions := b.region(b.rpages(1000, 4000), 0)
	logs := b.region(b.rpages(800, 3000), 0)
	reqbuf := b.region(b.rpages(600, 2400), 0)

	var cacheHot uint64
	switch prof {
	case profQuiet:
		cacheHot = b.rpages(180, 480)
	case profPressure:
		cacheHot = b.rpages(700, 900)
	case profMigrate:
		cacheHot = b.rpages(420, 620)
	}
	cacheDrift := uint64(0)
	cachePages := cacheHot + cacheHot/8
	if prof == profPressure {
		cacheDrift = b.drift(cacheHot)
		if cacheDrift > 0 {
			cachePages = cacheHot * 4
		}
	}
	cache := b.region(cachePages, cacheHot)
	var cache2 *Region
	if prof == profMigrate {
		cache2 = b.region(cacheHot+cacheHot/8, cacheHot)
	}

	nHandlers := b.rint(10, 24)
	w1 := make([]uint32, 0, nHandlers)
	w2 := make([]uint32, 0, nHandlers)
	for i := 0; i < nHandlers; i++ {
		k := libs[b.rng.Intn(nLib)]
		var s *Site
		switch i % 4 {
		case 0:
			s = b.site(k, sessions, Zipf, 1)
			s.ZipfSkew = 0.7 + b.rng.Float64()*0.25
			w1 = append(w1, uint32(3+b.rng.Intn(3)))
			w2 = append(w2, uint32(3+b.rng.Intn(3)))
		case 1:
			region := cache
			alt := uint32(6 + b.rng.Intn(4))
			if cache2 != nil && i%8 == 1 {
				region = cache2
				w1 = append(w1, 1)
				w2 = append(w2, alt)
			} else {
				w1 = append(w1, alt)
				if cache2 != nil {
					w2 = append(w2, 1)
				} else {
					w2 = append(w2, alt)
				}
			}
			if prof == profPressure && cacheDrift > 0 {
				s = b.site(k, region, Window, 1)
				s.WindowDrift = cacheDrift
			} else {
				s = b.site(k, region, Loop, 1)
			}
		case 2:
			s = b.site(k, reqbuf, Batch, 1)
			s.ChunkPages = uint64(b.rint(8, 32))
			s.Passes = uint64(b.rint(2, 3))
			w1 = append(w1, uint32(2+b.rng.Intn(2)))
			w2 = append(w2, uint32(2+b.rng.Intn(2)))
		default:
			s = b.site(k, logs, Stream, b.rint(1, 2))
			sw := uint32(1)
			if prof == profPressure {
				sw = uint32(1 + b.rng.Intn(2))
			}
			w1 = append(w1, sw)
			w2 = append(w2, sw)
		}
		s.IndirectCall = true
		s.SkipALU = uint32(b.rint(14, 30))
	}
	b.phases(b.rint(4000, 10000), w1, w2)
	return b.prog
}

// buildBigData models graph/analytics codes: pointer chases over
// frontier working sets, uniform random property updates and edge-list
// batches through the shared traversal kernel.
func buildBigData(name string, seed uint64) *Program {
	b := newBuilder(name, "bigdata", seed)
	prof := b.drawProfile(30, 42)

	traverse := b.kernel(1, b.rint(2, 3), b.rint(0, 1), false)
	update := b.kernel(1, 2, 0, true)

	graph := b.region(b.rpages(3000, 10000), 0)
	edges := b.region(b.rpages(1500, 6000), 0)
	props := b.region(b.rpages(1000, 4000), 0)

	sg := b.site(traverse, graph, Gups, 1)
	sg.SkipALU = uint32(b.rint(14, 28))
	se := b.site(traverse, edges, Batch, b.rint(2, 3))
	se.ChunkPages = uint64(b.rint(16, 64))
	se.Passes = 2
	se.SkipALU = uint32(b.rint(10, 22))
	sp := b.site(update, props, Zipf, 1)
	sp.ZipfSkew = 0.6 + b.rng.Float64()*0.25
	sp.Stores = true
	sp.SkipALU = uint32(b.rint(14, 28))

	switch prof {
	case profQuiet:
		h := b.rpages(220, 500)
		frontier := b.region(h+h/4, h)
		sf := b.site(traverse, frontier, Chase, b.rint(1, 2))
		sf.SkipALU = uint32(b.rint(14, 28))
		b.phases(b.rint(3000, 8000),
			[]uint32{1, 2, 2, 8},
			[]uint32{1, 3, 2, 6})
	case profPressure:
		h := b.rpages(780, 940)
		frontier := b.region(h*4, h)
		sf := b.site(traverse, frontier, Window, b.rint(1, 2))
		sf.WindowDrift = b.drift(h)
		sf.SkipALU = uint32(b.rint(14, 28))
		sw := uint32(b.rint(3, 5))
		b.phases(b.rint(3000, 8000),
			[]uint32{sw, 1, 1, 10},
			[]uint32{sw + 1, 1, 1, 9})
	case profMigrate:
		// BFS-like: the frontier moves level by level.
		h := b.rpages(420, 620)
		frA := b.region(h+h/8, h)
		frB := b.region(h+h/8, h)
		sa := b.site(traverse, frA, Chase, b.rint(1, 2))
		sa.SkipALU = uint32(b.rint(14, 28))
		sbv := b.site(traverse, frB, Chase, b.rint(1, 2))
		sbv.SkipALU = uint32(b.rint(14, 28))
		ta := b.site(traverse, frA, Stream, 1)
		ta.SkipALU = uint32(b.rint(14, 26))
		tb := b.site(traverse, frB, Stream, 1)
		tb.SkipALU = uint32(b.rint(14, 26))
		b.phases(b.rint(3000, 9000),
			[]uint32{1, 0, 1, 9, 0, 0, 2},
			[]uint32{1, 0, 1, 0, 9, 2, 0})
	}
	return b.prog
}

// buildML models training/inference loops: layer weights and
// activations through a shared GEMM kernel, streamed minibatches, and
// layer-by-layer phase migration.
func buildML(name string, seed uint64) *Program {
	b := newBuilder(name, "ml", seed)
	prof := b.drawProfile(32, 38)

	gemm := b.kernel(1, b.rint(2, 3), 0, true)
	act := b.kernel(1, 2, 0, false)

	inputs := b.region(b.rpages(1500, 6000), 0)
	s4 := b.site(act, inputs, Batch, b.rint(1, 2))
	s4.ChunkPages = uint64(b.rint(16, 64))
	s4.Passes = 2
	s4.SkipALU = uint32(b.rint(10, 22))

	switch prof {
	case profQuiet:
		hs := b.hotSplit(b.rpages(220, 520), 2)
		w1r := b.region(hs[0], hs[0])
		activ := b.region(hs[1]+hs[1]/4, hs[1])
		s1 := b.site(gemm, w1r, Loop, b.rint(2, 4))
		s1.LoadsPerPage = 2
		s1.SkipALU = uint32(b.rint(20, 40))
		s3 := b.site(act, activ, Loop, 1)
		s3.SkipALU = uint32(b.rint(18, 34))
		b.phases(b.rint(3000, 8000),
			[]uint32{2, 8, 3},
			[]uint32{3, 6, 4})
	case profPressure:
		hs := b.hotSplit(b.rpages(760, 930), 2)
		if b.rng.Bool(0.3) {
			// Large-model case: the weight matrix alone exceeds L2 reach
			// and is swept cyclically (LRU's pathology; Random retains a
			// useful fraction).
			hs[0] = b.rpages(1100, 1500)
		}
		w1r := b.region(hs[0]*4, hs[0])
		activ := b.region(hs[1]+hs[1]/8, hs[1])
		s1 := b.site(gemm, w1r, Window, b.rint(2, 4))
		s1.WindowDrift = b.drift(hs[0])
		s1.LoadsPerPage = 2
		s1.SkipALU = uint32(b.rint(20, 40))
		s3 := b.site(act, activ, Loop, 1)
		s3.SkipALU = uint32(b.rint(18, 34))
		sw := uint32(b.rint(3, 6))
		b.phases(b.rint(3000, 8000),
			[]uint32{sw + 1, 9, 4},
			[]uint32{sw - 1, 10, 4})
	case profMigrate:
		// Layers: weight matrices alternate with the schedule.
		h := b.rpages(430, 630)
		wA := b.region(h, h)
		wB := b.region(h, h)
		s1 := b.site(gemm, wA, Loop, b.rint(2, 4))
		s1.SkipALU = uint32(b.rint(20, 40))
		s2 := b.site(gemm, wB, Loop, b.rint(2, 4))
		s2.SkipALU = uint32(b.rint(20, 40))
		ta := b.site(gemm, wA, Stream, 1) // optimizer sweep over cold layer
		ta.SkipALU = uint32(b.rint(14, 26))
		tb := b.site(gemm, wB, Stream, 1)
		tb.SkipALU = uint32(b.rint(14, 26))
		b.phases(b.rint(3000, 9000),
			[]uint32{1, 9, 0, 0, 2},
			[]uint32{1, 0, 9, 2, 0})
	}
	return b.prog
}

// buildOSMix models consolidated/OS-heavy workloads: syscall-driven
// heap chases, page-cache streams with readahead, hot metadata
// buffers, and random network-buffer updates, time-sliced across
// phases.
func buildOSMix(name string, seed uint64) *Program {
	b := newBuilder(name, "osmix", seed)
	prof := b.drawProfile(38, 35)

	sys := b.kernel(2, 2, b.rint(0, 1), true)
	fsk := b.kernel(1, 2, 1, false)
	netk := b.kernel(1, b.rint(1, 2), 1, true)

	pagecache := b.region(b.rpages(1500, 6000), 0)
	anon := b.region(b.rpages(1000, 4000), 0)

	sf := b.site(fsk, pagecache, Stream, b.rint(2, 3)) // direct I/O reads
	sf.SkipALU = uint32(b.rint(10, 20))
	sr := b.site(fsk, pagecache, Batch, b.rint(1, 3)) // readahead
	sr.ChunkPages = uint64(b.rint(16, 48))
	sr.Passes = 2
	sr.SkipALU = uint32(b.rint(10, 20))
	sg := b.site(netk, anon, Gups, 1)
	sg.Stores = true
	sg.SkipALU = uint32(b.rint(14, 30))

	switch prof {
	case profQuiet:
		hs := b.hotSplit(b.rpages(220, 520), 2)
		heap := b.region(hs[0]+hs[0]/4, hs[0])
		buffers := b.region(hs[1]+hs[1]/4, hs[1])
		shp := b.site(sys, heap, Chase, b.rint(1, 2))
		shp.SkipALU = uint32(b.rint(14, 30))
		sb := b.site(fsk, buffers, Loop, 1)
		sb.SkipALU = uint32(b.rint(14, 30))
		b.phases(b.rint(2000, 6000),
			[]uint32{1, 2, 1, 8, 5},
			[]uint32{2, 2, 1, 6, 6})
	case profPressure:
		hs := b.hotSplit(b.rpages(780, 980), 2)
		heap := b.region(hs[0]*4, hs[0])
		buffers := b.region(hs[1]+hs[1]/8, hs[1])
		shp := b.site(sys, heap, Window, b.rint(1, 2))
		shp.WindowDrift = b.drift(hs[0])
		shp.SkipALU = uint32(b.rint(14, 30))
		sb := b.site(fsk, buffers, Loop, 1)
		sb.SkipALU = uint32(b.rint(14, 30))
		sw := uint32(b.rint(3, 6))
		b.phases(b.rint(2000, 6000),
			[]uint32{sw, 0, 1, 9, 7},
			[]uint32{sw + 1, 0, 1, 8, 7})
	case profMigrate:
		// Process switch: one heap's pages go cold, another's go hot.
		h := b.rpages(430, 630)
		heapA := b.region(h+h/8, h)
		heapB := b.region(h+h/8, h)
		sa := b.site(sys, heapA, Chase, b.rint(1, 2))
		sa.SkipALU = uint32(b.rint(14, 30))
		sbv := b.site(sys, heapB, Chase, b.rint(1, 2))
		sbv.SkipALU = uint32(b.rint(14, 30))
		ta := b.site(sys, heapA, Stream, 1) // kswapd-style cold scan
		ta.SkipALU = uint32(b.rint(14, 26))
		tb := b.site(sys, heapB, Stream, 1)
		tb.SkipALU = uint32(b.rint(14, 26))
		b.phases(b.rint(3000, 9000),
			[]uint32{2, 0, 1, 9, 0, 0, 2},
			[]uint32{2, 0, 1, 0, 9, 2, 0})
	}
	return b.prog
}
