package workloads

// The category builders draw each workload's parameters
// deterministically from its seed. The magnitudes are set against the
// simulated hierarchy (Table II): L1 TLBs reach 64 pages (256 KB), the
// L2 TLB reaches 1024 pages (4 MB).
//
// Every workload follows one of three population profiles; their
// mixture reproduces the population structure behind the paper's
// averages (Figure 7's S-curve):
//
//   - quiet: working sets fit comfortably; the L2 TLB runs at high hit
//     rates and replacement policy barely matters (the flat head of
//     the S-curve, most benchmarks).
//   - pressure: live working sets near the L2's 1024-page capacity
//     under continuous one-shot stream pollution from the same shared
//     kernels. This is where dead-entry prediction pays: the stream
//     entries are dead-on-arrival but only control-flow context — not
//     the accessing PC — identifies them (§III).
//   - migrate: the hot working set moves between regions across
//     phases. Learned "dead" signatures go stale and PC-indexed
//     predictors bleed misses re-learning; recency adapts instantly.
//     (Working-set migration is why predictive policies do not win
//     everywhere, and a large part of why SHiP nets out near LRU.)
type profile uint8

const (
	profQuiet profile = iota
	profPressure
	profMigrate
)

// drawProfile picks the workload's profile with category-specific
// percentages (quiet%, pressure%, rest migrate).
func (b *Builder) drawProfile(quietPct, pressurePct int) profile {
	x := b.rng.Intn(100)
	var p profile
	switch {
	case x < quietPct:
		p = profQuiet
	case x < quietPct+pressurePct:
		p = profPressure
	default:
		p = profMigrate
	}
	b.prog.Profile = [...]string{"quiet", "pressure", "migrate"}[p]
	return p
}

// hotSplit splits a total hot-page budget across n loop regions.
func (b *Builder) hotSplit(total uint64, n int) []uint64 {
	out := make([]uint64, n)
	rem := total
	for i := 0; i < n-1; i++ {
		share := rem / uint64(n-i)
		jitter := share / 4
		v := share - jitter + b.PageCount(0, int(2*jitter))
		if v >= rem {
			v = rem / 2
		}
		out[i] = v
		rem -= v
	}
	out[n-1] = rem
	return out
}

// buildSpec models SPEC-like compute programs: hot loop nests, a
// streaming pass and a blocked pass through a shared library kernel,
// and a skewed lookup table.
func buildSpec(name string, seed uint64) *Program {
	b := NewBuilder(name, "spec", seed)
	prof := b.drawProfile(38, 38)

	shared := b.Kernel(1, b.Int(2, 3), b.Int(0, 1), true)
	private := b.Kernel(1, 2, 0, false)

	stream := b.Region(b.PageCount(2000, 8000), 0)
	blockedR := b.Region(b.PageCount(1000, 4000), 0)
	zipfR := b.Region(b.PageCount(600, 2400), 0)

	ss := b.Site(shared, stream, Stream, b.Int(2, 3))
	ss.SkipALU = uint32(b.Int(10, 22))
	sbk := b.Site(shared, blockedR, Batch, b.Int(2, 3))
	sbk.ChunkPages = uint64(b.Int(16, 48))
	sbk.Passes = uint64(b.Int(2, 3))
	sbk.SkipALU = uint32(b.Int(10, 22))
	sz := b.Site(private, zipfR, Zipf, 1)
	sz.ZipfSkew = 0.7 + b.rng.Float64()*0.25
	sz.SkipALU = uint32(b.Int(16, 30))

	switch prof {
	case profQuiet:
		hs := b.hotSplit(b.PageCount(180, 480), 2)
		hotA := b.Region(hs[0]*2, hs[0])
		hotB := b.Region(hs[1]*2, hs[1])
		sl := b.Site(shared, hotA, Loop, b.Int(1, 3))
		sl.SkipALU = uint32(b.Int(18, 36))
		sc := b.Site(private, hotB, Chase, b.Int(1, 2))
		sc.SkipALU = uint32(b.Int(18, 36))
		b.Phases(b.Int(4000, 9000),
			[]uint32{1, 1, 2, 8, 6},
			[]uint32{2, 2, 2, 6, 5})
	case profPressure:
		hs := b.hotSplit(b.PageCount(780, 980), 2)
		hotA := b.Region(hs[0]*4, hs[0])
		hotB := b.Region(hs[1]+hs[1]/8, hs[1])
		sl := b.Site(shared, hotA, Window, b.Int(1, 3))
		sl.WindowDrift = b.Drift(hs[0])
		sl.SkipALU = uint32(b.Int(18, 36))
		sc := b.Site(private, hotB, Chase, b.Int(1, 2))
		sc.SkipALU = uint32(b.Int(18, 36))
		sw := uint32(b.Int(3, 6))
		b.Phases(b.Int(4000, 9000),
			[]uint32{sw, 0, 1, 9, 7},
			[]uint32{sw + 1, 0, 1, 8, 6})
	case profMigrate:
		h := b.PageCount(440, 660)
		hotA := b.Region(h+h/8, h)
		hotB := b.Region(h+h/8, h)
		sl := b.Site(shared, hotA, Loop, b.Int(1, 3))
		sl.SkipALU = uint32(b.Int(18, 36))
		sc := b.Site(shared, hotB, Loop, b.Int(1, 3))
		sc.SkipALU = uint32(b.Int(18, 36))
		// Maintenance contexts sweep whichever region is cold (GC,
		// checkpointing): dead traffic through the hot kernel's PCs.
		ta := b.Site(shared, hotA, Stream, 1)
		ta.SkipALU = uint32(b.Int(14, 26))
		tb := b.Site(shared, hotB, Stream, 1)
		tb.SkipALU = uint32(b.Int(14, 26))
		b.Phases(b.Int(3000, 9000),
			[]uint32{2, 0, 2, 9, 0, 0, 2},
			[]uint32{2, 0, 2, 0, 9, 2, 0})
	}
	return b.Build()
}

// buildDB models database engines: OLTP index probes with Zipf-skewed
// page popularity, OLAP table scans and hash-join batches through the
// same probe/scan kernels — the paper's motivating case where a
// probe's reuse depends entirely on which query plan issued it.
func buildDB(name string, seed uint64) *Program {
	b := NewBuilder(name, "db", seed)
	prof := b.drawProfile(30, 45)

	probe := b.Kernel(1, b.Int(2, 4), b.Int(0, 1), false)
	scank := b.Kernel(1, 2, 0, true)

	index := b.Region(b.PageCount(1000, 4000), 0)
	table := b.Region(b.PageCount(3000, 12000), 0)
	spill := b.Region(b.PageCount(1000, 4000), 0)

	oltp := b.Site(probe, index, Zipf, b.Int(1, 2))
	oltp.ZipfSkew = 0.78 + b.rng.Float64()*0.17
	oltp.SkipALU = uint32(b.Int(16, 30))
	olap := b.Site(probe, table, Stream, b.Int(2, 3))
	olap.SkipALU = uint32(b.Int(10, 20))
	join := b.Site(probe, spill, Batch, b.Int(2, 3))
	join.ChunkPages = uint64(b.Int(16, 48))
	join.Passes = 2
	join.SkipALU = uint32(b.Int(10, 20))

	switch prof {
	case profQuiet:
		h := b.PageCount(200, 500)
		buffer := b.Region(h+h/4, h)
		sbuf := b.Site(scank, buffer, Loop, b.Int(1, 2))
		sbuf.SkipALU = uint32(b.Int(18, 34))
		b.Phases(b.Int(3000, 8000),
			[]uint32{6, 1, 1, 8},
			[]uint32{4, 2, 2, 7})
	case profPressure:
		h := b.PageCount(780, 960)
		buffer := b.Region(h*4, h)
		sbuf := b.Site(probe, buffer, Window, b.Int(1, 3))
		sbuf.WindowDrift = b.Drift(h)
		sbuf.SkipALU = uint32(b.Int(18, 34))
		sw := uint32(b.Int(3, 6))
		b.Phases(b.Int(3000, 8000),
			[]uint32{2, sw, 0, 10},
			[]uint32{2, sw + 1, 0, 9})
	case profMigrate:
		// Buffer-pool turnover: the hot tables change; the checkpointer
		// sweeps the cold one through the same probe kernel.
		h := b.PageCount(440, 640)
		bufA := b.Region(h+h/8, h)
		bufB := b.Region(h+h/8, h)
		sa := b.Site(probe, bufA, Loop, b.Int(1, 2))
		sa.SkipALU = uint32(b.Int(18, 34))
		sbv := b.Site(probe, bufB, Loop, b.Int(1, 2))
		sbv.SkipALU = uint32(b.Int(18, 34))
		ta := b.Site(probe, bufA, Stream, 1)
		ta.SkipALU = uint32(b.Int(14, 26))
		tb := b.Site(probe, bufB, Stream, 1)
		tb.SkipALU = uint32(b.Int(14, 26))
		b.Phases(b.Int(3000, 9000),
			[]uint32{4, 2, 0, 9, 0, 0, 2},
			[]uint32{4, 2, 0, 0, 9, 2, 0})
	}
	return b.Build()
}

// buildCrypto models crypto/compression codes: tiny hot data that the
// L1 TLBs mostly cover, long ALU runs, near-zero L2 TLB pressure —
// the flat low-MPKI head of the Figure 7 S-curve.
func buildCrypto(name string, seed uint64) *Program {
	b := NewBuilder(name, "crypto", seed)
	b.prog.Profile = "quiet"

	k := b.Kernel(1, 2, 0, true)
	kexp := b.Kernel(1, 1, 0, false)

	state := b.Region(b.PageCount(24, 120), b.PageCount(16, 96))
	sched := b.Region(b.PageCount(200, 800), 0)

	s1 := b.Site(k, state, Loop, b.Int(1, 2))
	s1.SkipALU = uint32(b.Int(24, 64)) // heavy ALU between touches
	s1.Stores = true
	s2 := b.Site(kexp, sched, Batch, 1) // compressed blocks: write then verify
	s2.ChunkPages = uint64(b.Int(4, 16))
	s2.Passes = 2
	s2.SkipALU = uint32(b.Int(16, 40))

	b.Phases(0, []uint32{14, 1})
	return b.Build()
}

// buildSci models scientific/stencil codes: grids swept by a shared
// kernel. Pressure workloads run grids near L2 reach under halo
// streams; migratory ones alternate between grids (multi-grid,
// red-black phases); quiet ones are comfortably tiled.
func buildSci(name string, seed uint64) *Program {
	b := NewBuilder(name, "sci", seed)
	prof := b.drawProfile(32, 38)

	sweep := b.Kernel(1, b.Int(2, 3), 0, true)
	blocked := b.Kernel(1, 2, 0, false)

	halo := b.Region(b.PageCount(1500, 6000), 0)
	tile := b.Region(b.PageCount(600, 2400), 0)
	acc := b.Region(b.PageCount(80, 320), b.PageCount(56, 200))

	sh := b.Site(sweep, halo, Stream, b.Int(1, 3)) // boundary exchange
	sh.SkipALU = uint32(b.Int(12, 24))
	st := b.Site(sweep, tile, Batch, b.Int(2, 3))
	st.ChunkPages = uint64(b.Int(16, 48))
	st.Passes = uint64(b.Int(2, 4))
	st.SkipALU = uint32(b.Int(16, 34))
	sb := b.Site(blocked, acc, Loop, 1)
	sb.SkipALU = uint32(b.Int(16, 34))

	switch prof {
	case profQuiet:
		h := b.PageCount(200, 520)
		grid := b.Region(h, h)
		sg := b.Site(sweep, grid, Loop, b.Int(2, 4))
		sg.Stores = true
		sg.SkipALU = uint32(b.Int(16, 32))
		b.Phases(b.Int(4000, 9000),
			[]uint32{1, 2, 2, 8},
			[]uint32{1, 3, 2, 7})
	case profPressure:
		// The classic case: a grid around or above L2 reach, cyclic.
		h := b.PageCount(820, 1080)
		if b.rng.Bool(0.5) {
			h = b.PageCount(1100, 1600) // beyond reach: LRU gets zero reuse
		}
		grid := b.Region(h, h)
		sg := b.Site(sweep, grid, Loop, b.Int(2, 5))
		sg.Stores = true
		sg.SkipALU = uint32(b.Int(16, 32))
		sw := uint32(b.Int(3, 6))
		b.Phases(b.Int(4000, 9000),
			[]uint32{sw, 0, 2, 9},
			[]uint32{sw, 0, 2, 8})
	case profMigrate:
		// Multi-grid: levels alternate.
		h := b.PageCount(420, 640)
		gridA := b.Region(h, h)
		gridB := b.Region(h, h)
		sga := b.Site(sweep, gridA, Loop, b.Int(2, 4))
		sga.Stores = true
		sga.SkipALU = uint32(b.Int(16, 32))
		sgb := b.Site(sweep, gridB, Loop, b.Int(2, 4))
		sgb.SkipALU = uint32(b.Int(16, 32))
		ta := b.Site(sweep, gridA, Stream, 1)
		ta.SkipALU = uint32(b.Int(14, 26))
		tb := b.Site(sweep, gridB, Stream, 1)
		tb.SkipALU = uint32(b.Int(14, 26))
		b.Phases(b.Int(3000, 9000),
			[]uint32{2, 0, 2, 9, 0, 0, 2},
			[]uint32{2, 0, 2, 0, 9, 2, 0})
	}
	return b.Build()
}

// buildWeb models servers: a large code footprint (handler bodies over
// many code pages, dispatched indirectly) pressuring the unified L2
// TLB from the instruction side, with session/cache/log data flowing
// through a few shared library kernels.
func buildWeb(name string, seed uint64) *Program {
	b := NewBuilder(name, "web", seed)
	prof := b.drawProfile(35, 40)

	// Enough multi-page handler bodies that the touched code footprint
	// exceeds the 64-entry L1 iTLB: the instruction side then
	// contributes real traffic to the unified L2 TLB.
	nLib := b.Int(9, 16)
	libs := make([]*Kernel, nLib)
	for i := range libs {
		libs[i] = b.Kernel(b.Int(3, 8), b.Int(1, 2), b.Int(0, 1), i%2 == 0)
	}
	sessions := b.Region(b.PageCount(1000, 4000), 0)
	logs := b.Region(b.PageCount(800, 3000), 0)
	reqbuf := b.Region(b.PageCount(600, 2400), 0)

	var cacheHot uint64
	switch prof {
	case profQuiet:
		cacheHot = b.PageCount(180, 480)
	case profPressure:
		cacheHot = b.PageCount(700, 900)
	case profMigrate:
		cacheHot = b.PageCount(420, 620)
	}
	cacheDrift := uint64(0)
	cachePages := cacheHot + cacheHot/8
	if prof == profPressure {
		cacheDrift = b.Drift(cacheHot)
		if cacheDrift > 0 {
			cachePages = cacheHot * 4
		}
	}
	cache := b.Region(cachePages, cacheHot)
	var cache2 *Region
	if prof == profMigrate {
		cache2 = b.Region(cacheHot+cacheHot/8, cacheHot)
	}

	nHandlers := b.Int(10, 24)
	w1 := make([]uint32, 0, nHandlers)
	w2 := make([]uint32, 0, nHandlers)
	for i := 0; i < nHandlers; i++ {
		k := libs[b.rng.Intn(nLib)]
		var s *Site
		switch i % 4 {
		case 0:
			s = b.Site(k, sessions, Zipf, 1)
			s.ZipfSkew = 0.7 + b.rng.Float64()*0.25
			w1 = append(w1, uint32(3+b.rng.Intn(3)))
			w2 = append(w2, uint32(3+b.rng.Intn(3)))
		case 1:
			region := cache
			alt := uint32(6 + b.rng.Intn(4))
			if cache2 != nil && i%8 == 1 {
				region = cache2
				w1 = append(w1, 1)
				w2 = append(w2, alt)
			} else {
				w1 = append(w1, alt)
				if cache2 != nil {
					w2 = append(w2, 1)
				} else {
					w2 = append(w2, alt)
				}
			}
			if prof == profPressure && cacheDrift > 0 {
				s = b.Site(k, region, Window, 1)
				s.WindowDrift = cacheDrift
			} else {
				s = b.Site(k, region, Loop, 1)
			}
		case 2:
			s = b.Site(k, reqbuf, Batch, 1)
			s.ChunkPages = uint64(b.Int(8, 32))
			s.Passes = uint64(b.Int(2, 3))
			w1 = append(w1, uint32(2+b.rng.Intn(2)))
			w2 = append(w2, uint32(2+b.rng.Intn(2)))
		default:
			s = b.Site(k, logs, Stream, b.Int(1, 2))
			sw := uint32(1)
			if prof == profPressure {
				sw = uint32(1 + b.rng.Intn(2))
			}
			w1 = append(w1, sw)
			w2 = append(w2, sw)
		}
		s.IndirectCall = true
		s.SkipALU = uint32(b.Int(14, 30))
	}
	b.Phases(b.Int(4000, 10000), w1, w2)
	return b.Build()
}

// buildBigData models graph/analytics codes: pointer chases over
// frontier working sets, uniform random property updates and edge-list
// batches through the shared traversal kernel.
func buildBigData(name string, seed uint64) *Program {
	b := NewBuilder(name, "bigdata", seed)
	prof := b.drawProfile(30, 42)

	traverse := b.Kernel(1, b.Int(2, 3), b.Int(0, 1), false)
	update := b.Kernel(1, 2, 0, true)

	graph := b.Region(b.PageCount(3000, 10000), 0)
	edges := b.Region(b.PageCount(1500, 6000), 0)
	props := b.Region(b.PageCount(1000, 4000), 0)

	sg := b.Site(traverse, graph, Gups, 1)
	sg.SkipALU = uint32(b.Int(14, 28))
	se := b.Site(traverse, edges, Batch, b.Int(2, 3))
	se.ChunkPages = uint64(b.Int(16, 64))
	se.Passes = 2
	se.SkipALU = uint32(b.Int(10, 22))
	sp := b.Site(update, props, Zipf, 1)
	sp.ZipfSkew = 0.6 + b.rng.Float64()*0.25
	sp.Stores = true
	sp.SkipALU = uint32(b.Int(14, 28))

	switch prof {
	case profQuiet:
		h := b.PageCount(220, 500)
		frontier := b.Region(h+h/4, h)
		sf := b.Site(traverse, frontier, Chase, b.Int(1, 2))
		sf.SkipALU = uint32(b.Int(14, 28))
		b.Phases(b.Int(3000, 8000),
			[]uint32{1, 2, 2, 8},
			[]uint32{1, 3, 2, 6})
	case profPressure:
		h := b.PageCount(780, 940)
		frontier := b.Region(h*4, h)
		sf := b.Site(traverse, frontier, Window, b.Int(1, 2))
		sf.WindowDrift = b.Drift(h)
		sf.SkipALU = uint32(b.Int(14, 28))
		sw := uint32(b.Int(3, 5))
		b.Phases(b.Int(3000, 8000),
			[]uint32{sw, 1, 1, 10},
			[]uint32{sw + 1, 1, 1, 9})
	case profMigrate:
		// BFS-like: the frontier moves level by level.
		h := b.PageCount(420, 620)
		frA := b.Region(h+h/8, h)
		frB := b.Region(h+h/8, h)
		sa := b.Site(traverse, frA, Chase, b.Int(1, 2))
		sa.SkipALU = uint32(b.Int(14, 28))
		sbv := b.Site(traverse, frB, Chase, b.Int(1, 2))
		sbv.SkipALU = uint32(b.Int(14, 28))
		ta := b.Site(traverse, frA, Stream, 1)
		ta.SkipALU = uint32(b.Int(14, 26))
		tb := b.Site(traverse, frB, Stream, 1)
		tb.SkipALU = uint32(b.Int(14, 26))
		b.Phases(b.Int(3000, 9000),
			[]uint32{1, 0, 1, 9, 0, 0, 2},
			[]uint32{1, 0, 1, 0, 9, 2, 0})
	}
	return b.Build()
}

// buildML models training/inference loops: layer weights and
// activations through a shared GEMM kernel, streamed minibatches, and
// layer-by-layer phase migration.
func buildML(name string, seed uint64) *Program {
	b := NewBuilder(name, "ml", seed)
	prof := b.drawProfile(32, 38)

	gemm := b.Kernel(1, b.Int(2, 3), 0, true)
	act := b.Kernel(1, 2, 0, false)

	inputs := b.Region(b.PageCount(1500, 6000), 0)
	s4 := b.Site(act, inputs, Batch, b.Int(1, 2))
	s4.ChunkPages = uint64(b.Int(16, 64))
	s4.Passes = 2
	s4.SkipALU = uint32(b.Int(10, 22))

	switch prof {
	case profQuiet:
		hs := b.hotSplit(b.PageCount(220, 520), 2)
		w1r := b.Region(hs[0], hs[0])
		activ := b.Region(hs[1]+hs[1]/4, hs[1])
		s1 := b.Site(gemm, w1r, Loop, b.Int(2, 4))
		s1.LoadsPerPage = 2
		s1.SkipALU = uint32(b.Int(20, 40))
		s3 := b.Site(act, activ, Loop, 1)
		s3.SkipALU = uint32(b.Int(18, 34))
		b.Phases(b.Int(3000, 8000),
			[]uint32{2, 8, 3},
			[]uint32{3, 6, 4})
	case profPressure:
		hs := b.hotSplit(b.PageCount(760, 930), 2)
		if b.rng.Bool(0.3) {
			// Large-model case: the weight matrix alone exceeds L2 reach
			// and is swept cyclically (LRU's pathology; Random retains a
			// useful fraction).
			hs[0] = b.PageCount(1100, 1500)
		}
		w1r := b.Region(hs[0]*4, hs[0])
		activ := b.Region(hs[1]+hs[1]/8, hs[1])
		s1 := b.Site(gemm, w1r, Window, b.Int(2, 4))
		s1.WindowDrift = b.Drift(hs[0])
		s1.LoadsPerPage = 2
		s1.SkipALU = uint32(b.Int(20, 40))
		s3 := b.Site(act, activ, Loop, 1)
		s3.SkipALU = uint32(b.Int(18, 34))
		sw := uint32(b.Int(3, 6))
		b.Phases(b.Int(3000, 8000),
			[]uint32{sw + 1, 9, 4},
			[]uint32{sw - 1, 10, 4})
	case profMigrate:
		// Layers: weight matrices alternate with the schedule.
		h := b.PageCount(430, 630)
		wA := b.Region(h, h)
		wB := b.Region(h, h)
		s1 := b.Site(gemm, wA, Loop, b.Int(2, 4))
		s1.SkipALU = uint32(b.Int(20, 40))
		s2 := b.Site(gemm, wB, Loop, b.Int(2, 4))
		s2.SkipALU = uint32(b.Int(20, 40))
		ta := b.Site(gemm, wA, Stream, 1) // optimizer sweep over cold layer
		ta.SkipALU = uint32(b.Int(14, 26))
		tb := b.Site(gemm, wB, Stream, 1)
		tb.SkipALU = uint32(b.Int(14, 26))
		b.Phases(b.Int(3000, 9000),
			[]uint32{1, 9, 0, 0, 2},
			[]uint32{1, 0, 9, 2, 0})
	}
	return b.Build()
}

// buildOSMix models consolidated/OS-heavy workloads: syscall-driven
// heap chases, page-cache streams with readahead, hot metadata
// buffers, and random network-buffer updates, time-sliced across
// phases.
func buildOSMix(name string, seed uint64) *Program {
	b := NewBuilder(name, "osmix", seed)
	prof := b.drawProfile(38, 35)

	sys := b.Kernel(2, 2, b.Int(0, 1), true)
	fsk := b.Kernel(1, 2, 1, false)
	netk := b.Kernel(1, b.Int(1, 2), 1, true)

	pagecache := b.Region(b.PageCount(1500, 6000), 0)
	anon := b.Region(b.PageCount(1000, 4000), 0)

	sf := b.Site(fsk, pagecache, Stream, b.Int(2, 3)) // direct I/O reads
	sf.SkipALU = uint32(b.Int(10, 20))
	sr := b.Site(fsk, pagecache, Batch, b.Int(1, 3)) // readahead
	sr.ChunkPages = uint64(b.Int(16, 48))
	sr.Passes = 2
	sr.SkipALU = uint32(b.Int(10, 20))
	sg := b.Site(netk, anon, Gups, 1)
	sg.Stores = true
	sg.SkipALU = uint32(b.Int(14, 30))

	switch prof {
	case profQuiet:
		hs := b.hotSplit(b.PageCount(220, 520), 2)
		heap := b.Region(hs[0]+hs[0]/4, hs[0])
		buffers := b.Region(hs[1]+hs[1]/4, hs[1])
		shp := b.Site(sys, heap, Chase, b.Int(1, 2))
		shp.SkipALU = uint32(b.Int(14, 30))
		sb := b.Site(fsk, buffers, Loop, 1)
		sb.SkipALU = uint32(b.Int(14, 30))
		b.Phases(b.Int(2000, 6000),
			[]uint32{1, 2, 1, 8, 5},
			[]uint32{2, 2, 1, 6, 6})
	case profPressure:
		hs := b.hotSplit(b.PageCount(780, 980), 2)
		heap := b.Region(hs[0]*4, hs[0])
		buffers := b.Region(hs[1]+hs[1]/8, hs[1])
		shp := b.Site(sys, heap, Window, b.Int(1, 2))
		shp.WindowDrift = b.Drift(hs[0])
		shp.SkipALU = uint32(b.Int(14, 30))
		sb := b.Site(fsk, buffers, Loop, 1)
		sb.SkipALU = uint32(b.Int(14, 30))
		sw := uint32(b.Int(3, 6))
		b.Phases(b.Int(2000, 6000),
			[]uint32{sw, 0, 1, 9, 7},
			[]uint32{sw + 1, 0, 1, 8, 7})
	case profMigrate:
		// Process switch: one heap's pages go cold, another's go hot.
		h := b.PageCount(430, 630)
		heapA := b.Region(h+h/8, h)
		heapB := b.Region(h+h/8, h)
		sa := b.Site(sys, heapA, Chase, b.Int(1, 2))
		sa.SkipALU = uint32(b.Int(14, 30))
		sbv := b.Site(sys, heapB, Chase, b.Int(1, 2))
		sbv.SkipALU = uint32(b.Int(14, 30))
		ta := b.Site(sys, heapA, Stream, 1) // kswapd-style cold scan
		ta.SkipALU = uint32(b.Int(14, 26))
		tb := b.Site(sys, heapB, Stream, 1)
		tb.SkipALU = uint32(b.Int(14, 26))
		b.Phases(b.Int(3000, 9000),
			[]uint32{2, 0, 1, 9, 0, 0, 2},
			[]uint32{2, 0, 1, 0, 9, 2, 0})
	}
	return b.Build()
}
