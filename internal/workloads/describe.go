package workloads

import "strconv"

// Description is a JSON-friendly summary of a workload's program
// model, for inspection and documentation tooling (chirpsim
// -describe).
type Description struct {
	Name          string       `json:"name"`
	Category      string       `json:"category"`
	Profile       string       `json:"profile"`
	Seed          uint64       `json:"seed"`
	Kernels       int          `json:"kernels"`
	CodePages     uint64       `json:"codePages"`
	DataPages     uint64       `json:"dataPages"`
	DataFootprint string       `json:"dataFootprint"`
	Regions       []RegionDesc `json:"regions"`
	Sites         []SiteDesc   `json:"sites"`
	Phases        int          `json:"phases"`
	CallsPerPhase int          `json:"callsPerPhase"`
	RunLength     [2]int       `json:"runLength"`
	SkipScale     uint32       `json:"skipScale"`
}

// RegionDesc summarises one data region.
type RegionDesc struct {
	BasePage uint64 `json:"basePage"`
	Pages    uint64 `json:"pages"`
	HotPages uint64 `json:"hotPages,omitempty"`
}

// SiteDesc summarises one call site.
type SiteDesc struct {
	Behavior     string   `json:"behavior"`
	Region       int      `json:"region"`
	PagesPerCall int      `json:"pagesPerCall"`
	ZipfSkew     float64  `json:"zipfSkew,omitempty"`
	ChunkPages   uint64   `json:"chunkPages,omitempty"`
	Passes       uint64   `json:"passes,omitempty"`
	WindowDrift  uint64   `json:"windowDrift,omitempty"`
	Indirect     bool     `json:"indirect,omitempty"`
	Weights      []uint32 `json:"phaseWeights"`
}

// Describe summarises prog.
func Describe(prog *Program) Description {
	d := Description{
		Name:          prog.Name,
		Category:      prog.Category,
		Profile:       prog.Profile,
		Seed:          prog.Seed,
		Kernels:       len(prog.Kernels),
		Phases:        len(prog.Phases),
		CallsPerPhase: prog.CallsPerPhase,
		RunLength:     [2]int{prog.RunMin, prog.RunMax},
		SkipScale:     prog.SkipScale,
	}
	regionIdx := map[*Region]int{}
	var dataPages uint64
	for i, r := range prog.Regions {
		regionIdx[r] = i
		dataPages += r.Pages
		d.Regions = append(d.Regions, RegionDesc{BasePage: r.BasePage, Pages: r.Pages, HotPages: r.Hot})
	}
	d.DataPages = dataPages
	d.DataFootprint = formatPages(dataPages)
	var maxCode uint64
	for _, k := range prog.Kernels {
		for _, pc := range k.LoadPCs {
			if page := pc >> pageShift; page > maxCode {
				maxCode = page
			}
		}
	}
	for i, s := range prog.Sites {
		sd := SiteDesc{
			Behavior:     s.Behavior.String(),
			Region:       regionIdx[s.Region],
			PagesPerCall: s.PagesPerCall,
			ZipfSkew:     s.ZipfSkew,
			ChunkPages:   s.ChunkPages,
			Passes:       s.Passes,
			WindowDrift:  s.WindowDrift,
			Indirect:     s.IndirectCall,
		}
		for _, ph := range prog.Phases {
			sd.Weights = append(sd.Weights, ph.Weights[i])
		}
		d.Sites = append(d.Sites, sd)
		if page := s.CallPC >> pageShift; page > maxCode {
			maxCode = page
		}
	}
	if maxCode >= 0x400 {
		d.CodePages = maxCode - 0x400 + 1
	}
	return d
}

// formatPages renders a page count as a human size (4 KB pages).
func formatPages(pages uint64) string {
	bytes := pages << pageShift
	switch {
	case bytes >= 1<<30:
		return itoaF(float64(bytes)/(1<<30)) + " GiB"
	case bytes >= 1<<20:
		return itoaF(float64(bytes)/(1<<20)) + " MiB"
	default:
		return itoaF(float64(bytes)/(1<<10)) + " KiB"
	}
}

func itoaF(f float64) string {
	return strconv.FormatFloat(f, 'f', 1, 64)
}
