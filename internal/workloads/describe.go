package workloads

import "strconv"

// Description is a JSON-friendly summary of a workload, for inspection
// and documentation tooling (chirpsim -describe). Program workloads
// fill the program-model fields; spec-compiled multi-tenant workloads
// additionally report their tenant/client structure, derived from the
// compiled spec rather than from Program internals.
type Description struct {
	Name          string       `json:"name"`
	Category      string       `json:"category"`
	Profile       string       `json:"profile"`
	Seed          uint64       `json:"seed"`
	SpecHash      string       `json:"specHash,omitempty"`
	Kernels       int          `json:"kernels,omitempty"`
	CodePages     uint64       `json:"codePages,omitempty"`
	DataPages     uint64       `json:"dataPages,omitempty"`
	DataFootprint string       `json:"dataFootprint,omitempty"`
	Regions       []RegionDesc `json:"regions,omitempty"`
	Sites         []SiteDesc   `json:"sites,omitempty"`
	Phases        int          `json:"phases,omitempty"`
	CallsPerPhase int          `json:"callsPerPhase,omitempty"`
	RunLength     [2]int       `json:"runLength,omitempty"`
	SkipScale     uint32       `json:"skipScale,omitempty"`
	// Tenants describes a multi-tenant composite's population; empty
	// for single-program workloads.
	Tenants []TenantDesc `json:"tenants,omitempty"`
}

// TenantDesc groups the clients of one tenant in a multi-tenant
// workload description.
type TenantDesc struct {
	Tenant  string       `json:"tenant"`
	Clients []ClientDesc `json:"clients"`
}

// ClientDesc summarises one spec client: its traffic share, lifecycle
// window, and the footprint of its compiled program.
type ClientDesc struct {
	ID            string  `json:"id"`
	RateFraction  float64 `json:"rateFraction"`
	Template      string  `json:"template,omitempty"`
	Lifecycle     string  `json:"lifecycle,omitempty"`
	Seed          uint64  `json:"seed"`
	Sites         int     `json:"sites"`
	Phases        int     `json:"phases"`
	CodePages     uint64  `json:"codePages"`
	DataPages     uint64  `json:"dataPages"`
	DataFootprint string  `json:"dataFootprint"`
}

// RegionDesc summarises one data region.
type RegionDesc struct {
	BasePage uint64 `json:"basePage"`
	Pages    uint64 `json:"pages"`
	HotPages uint64 `json:"hotPages,omitempty"`
}

// SiteDesc summarises one call site.
type SiteDesc struct {
	Behavior     string   `json:"behavior"`
	Region       int      `json:"region"`
	PagesPerCall int      `json:"pagesPerCall"`
	ZipfSkew     float64  `json:"zipfSkew,omitempty"`
	ChunkPages   uint64   `json:"chunkPages,omitempty"`
	Passes       uint64   `json:"passes,omitempty"`
	WindowDrift  uint64   `json:"windowDrift,omitempty"`
	Indirect     bool     `json:"indirect,omitempty"`
	Weights      []uint32 `json:"phaseWeights"`
}

// Describe summarises prog. Footprints come from Program.Extents, so
// the report stays truthful for spec-built and rebased programs whose
// layout differs from the builder's default bases.
func Describe(prog *Program) Description {
	if prog == nil {
		return Description{}
	}
	d := Description{
		Name:          prog.Name,
		Category:      prog.Category,
		Profile:       prog.Profile,
		Seed:          prog.Seed,
		Kernels:       len(prog.Kernels),
		Phases:        len(prog.Phases),
		CallsPerPhase: prog.CallsPerPhase,
		RunLength:     [2]int{prog.RunMin, prog.RunMax},
		SkipScale:     prog.SkipScale,
	}
	regionIdx := map[*Region]int{}
	var dataPages uint64
	for i, r := range prog.Regions {
		regionIdx[r] = i
		dataPages += r.Pages
		d.Regions = append(d.Regions, RegionDesc{BasePage: r.BasePage, Pages: r.Pages, HotPages: r.Hot})
	}
	d.DataPages = dataPages
	d.DataFootprint = formatPages(dataPages)
	_, d.CodePages, _, _ = prog.Extents()
	for i, s := range prog.Sites {
		sd := SiteDesc{
			Behavior:     s.Behavior.String(),
			Region:       regionIdx[s.Region],
			PagesPerCall: s.PagesPerCall,
			ZipfSkew:     s.ZipfSkew,
			ChunkPages:   s.ChunkPages,
			Passes:       s.Passes,
			WindowDrift:  s.WindowDrift,
			Indirect:     s.IndirectCall,
		}
		for _, ph := range prog.Phases {
			sd.Weights = append(sd.Weights, ph.Weights[i])
		}
		d.Sites = append(d.Sites, sd)
	}
	return d
}

// formatPages renders a page count as a human size (4 KB pages).
func formatPages(pages uint64) string {
	bytes := pages << pageShift
	switch {
	case bytes >= 1<<30:
		return itoaF(float64(bytes)/(1<<30)) + " GiB"
	case bytes >= 1<<20:
		return itoaF(float64(bytes)/(1<<20)) + " MiB"
	default:
		return itoaF(float64(bytes)/(1<<10)) + " KiB"
	}
}

func itoaF(f float64) string {
	return strconv.FormatFloat(f, 'f', 1, 64)
}

// FormatPages renders a page count as a human size (4 KB pages) — the
// exported form the spec compiler's descriptions use.
func FormatPages(pages uint64) string { return formatPages(pages) }
