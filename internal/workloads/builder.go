package workloads

import "github.com/chirplab/chirp/internal/trace"

// Builder assembles a Program from composable primitives — kernels,
// regions, call sites, and phase mixtures — laying out disjoint code
// and data address spaces as it goes. The category templates
// (categories.go) and the spec compiler (internal/workloads/spec) are
// both expressed in terms of these primitives; nothing constructs a
// Program by hand.
//
// Every randomised choice a Builder makes is drawn from the seed it
// was constructed with, in program order, so identical construction
// sequences produce byte-identical programs.
type Builder struct {
	prog         *Program
	rng          *trace.RNG
	nextCodePage uint64
	nextDataPage uint64
	kernelCount  uint64
}

// NewBuilder starts a program named name in category, with every
// subsequent parameter draw derived from seed.
func NewBuilder(name, category string, seed uint64) *Builder {
	rng := trace.NewRNG(seed ^ 0xabcd1234)
	return &Builder{
		prog: &Program{
			Name: name, Category: category, Seed: seed,
			RunMin: 2 + rng.Intn(2), RunMax: 4 + rng.Intn(5),
			// Dilute to the paper's absolute MPKI range (average LRU MPKI
			// of order 1.5); drawn per workload so the S-curve spreads.
			SkipScale: uint32(3 + rng.Intn(4)),
		},
		rng: trace.NewRNG(seed),
		// Code from 4 MB, data from 4 GB: disjoint page spaces.
		nextCodePage: 0x400,
		nextDataPage: 0x100000,
	}
}

// Build returns the assembled program. Exported fields (RunMin,
// SkipScale, per-site knobs) may still be overridden afterwards; the
// builder's random defaults have already been drawn, so overrides do
// not perturb any other draw.
func (b *Builder) Build() *Program { return b.prog }

// RNG exposes the builder's parameter stream for template code that
// draws its own choices (mixture weights, skew factors).
func (b *Builder) RNG() *trace.RNG { return b.rng }

// Kernel lays out a kernel body across codePages pages with nLoads
// load PCs, nNoise data-dependent branches and an optional store.
func (b *Builder) Kernel(codePages, nLoads, nNoise int, hasStore bool) *Kernel {
	if codePages < 1 {
		codePages = 1
	}
	if nLoads < 1 {
		nLoads = 1
	}
	base := b.nextCodePage << pageShift
	b.nextCodePage += uint64(codePages)
	pageOf := func(i int) uint64 { return base + uint64(i%codePages)<<pageShift }
	// Each kernel's load PCs carry a kernel-specific pattern in PC bits
	// [3:2] — the instruction-slot bits that distinguish inlined or
	// unrolled copies in real code. Reuse behaviour therefore correlates
	// with exactly the bits the paper's ADALINE study singles out
	// (Figure 3) and that CHiRP's path history records.
	lowTag := (b.kernelCount % 2) << 2
	b.kernelCount++
	// The body's PCs are spread over its pages, so executing the kernel
	// actually fetches its whole code footprint — multi-page bodies
	// create real instruction-side TLB pressure (the web category's
	// front-end story).
	k := &Kernel{
		EntryPC:      base,
		LoopBranchPC: pageOf(codePages-1) + 0x40,
		RetPC:        pageOf(codePages-1) + 0x80,
	}
	for i := 0; i < nLoads; i++ {
		k.LoadPCs = append(k.LoadPCs, pageOf(i)+0x100+lowTag+uint64(i)*0x48)
	}
	if hasStore {
		k.StorePC = pageOf(codePages/2) + 0x200
	}
	for i := 0; i < nNoise; i++ {
		k.NoisePCs = append(k.NoisePCs, pageOf(i+1)+0x300+uint64(i)*0x1c)
	}
	return k
}

// Region allocates pages data pages with a hot working subset.
func (b *Builder) Region(pages, hot uint64) *Region {
	if pages == 0 {
		pages = 1
	}
	if hot > pages {
		hot = pages
	}
	r := &Region{BasePage: b.nextDataPage, Pages: pages, Hot: hot}
	// Leave a guard gap so regions never blend.
	b.nextDataPage += pages + 16
	b.prog.Regions = append(b.prog.Regions, r)
	return r
}

// Site binds kernel k to region r under behaviour bv. Each site gets
// its own driver code page so its branch PC is a distinct context
// marker.
func (b *Builder) Site(k *Kernel, r *Region, bv Behavior, pagesPerCall int) *Site {
	base := b.nextCodePage << pageShift
	b.nextCodePage++
	s := &Site{
		BranchPC:     base + 0x10,
		CallPC:       base + 0x20,
		Kernel:       k,
		Region:       r,
		Behavior:     bv,
		PagesPerCall: pagesPerCall,
		LoadsPerPage: 1,
		SkipALU:      uint32(2 + b.rng.Intn(6)),
	}
	b.prog.Sites = append(b.prog.Sites, s)
	b.prog.Kernels = appendKernelOnce(b.prog.Kernels, k)
	return s
}

func appendKernelOnce(ks []*Kernel, k *Kernel) []*Kernel {
	for _, e := range ks {
		if e == k {
			return ks
		}
	}
	return append(ks, k)
}

// Phases installs weight vectors; each vector must cover every site.
func (b *Builder) Phases(callsPerPhase int, weights ...[]uint32) {
	b.prog.CallsPerPhase = callsPerPhase
	for _, w := range weights {
		b.prog.Phases = append(b.prog.Phases, Phase{Weights: w})
	}
}

// UniformPhase returns a weight vector of 1s for every current site.
func (b *Builder) UniformPhase() []uint32 {
	w := make([]uint32, len(b.prog.Sites))
	for i := range w {
		w[i] = 1
	}
	return w
}

// Int draws a uniform int in [lo, hi].
func (b *Builder) Int(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + b.rng.Intn(hi-lo+1)
}

// PageCount draws a page count in [lo, hi].
func (b *Builder) PageCount(lo, hi int) uint64 { return uint64(b.Int(lo, hi)) }

// Drift draws a sliding-window advance for a hot window of w pages:
// half of the draws are stationary (0), the rest slide by roughly
// 0.5–2%% of the window per pass. Drifting working sets are what
// penalise indiscriminate freeze strategies (see Behavior Window).
func (b *Builder) Drift(w uint64) uint64 {
	if b.rng.Bool(0.5) {
		return 0
	}
	lo := int(w/200) + 2
	hi := int(w / 50)
	if hi <= lo {
		hi = lo + 1
	}
	return uint64(b.Int(lo, hi))
}
