package spec

import "testing"

// TestLifecycleActivity pins the fixed-point activity curves at their
// characteristic points; the scheduler's weighted pick (and therefore
// trace byte-identity) depends on these exact values.
func TestLifecycleActivity(t *testing.T) {
	cases := []struct {
		name string
		l    *Lifecycle
		at   []uint64
		want []uint64
	}{
		{"nil steady", nil,
			[]uint64{0, 7, 1e6}, []uint64{activityScale, activityScale, activityScale}},
		{"diurnal full swing", &Lifecycle{Pattern: PatternDiurnal, Period: 100},
			[]uint64{0, 25, 50, 75, 100},
			[]uint64{0, activityScale / 2, activityScale, activityScale / 2, 0}},
		{"diurnal floored", &Lifecycle{Pattern: PatternDiurnal, Period: 100, Floor: 0.5},
			[]uint64{0, 50}, []uint64{activityScale / 2, activityScale}},
		{"spike", &Lifecycle{Pattern: PatternSpike, Period: 100, Width: 10, Gain: 4, Start: 20},
			[]uint64{0, 19, 20, 29, 30, 120, 130},
			[]uint64{activityScale, activityScale, 4 * activityScale, 4 * activityScale,
				activityScale, 4 * activityScale, activityScale}},
		{"drain", &Lifecycle{Pattern: PatternDrain, End: 100, Ramp: 10},
			[]uint64{0, 89, 95, 99, 100, 200},
			[]uint64{activityScale, activityScale, activityScale / 2,
				activityScale / 10, 0, 0}},
		{"window", &Lifecycle{Pattern: PatternWindow, Start: 10, End: 20},
			[]uint64{0, 9, 10, 19, 20, 100},
			[]uint64{0, 0, activityScale, activityScale, 0, 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := compileLifecycle(tc.l)
			for i, call := range tc.at {
				if got := l.activity(call); got != tc.want[i] {
					t.Errorf("activity(%d) = %d, want %d", call, got, tc.want[i])
				}
			}
		})
	}
}

func TestDescribeLifecycle(t *testing.T) {
	if got := describeLifecycle(nil); got != "steady" {
		t.Errorf("nil lifecycle described as %q", got)
	}
	l := &Lifecycle{Pattern: PatternDrain, End: 100, Ramp: 10}
	if got, want := describeLifecycle(l), "drain(end=100, ramp=10)"; got != want {
		t.Errorf("describeLifecycle = %q, want %q", got, want)
	}
}
