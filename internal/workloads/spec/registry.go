package spec

import (
	_ "embed"
	"fmt"
)

// default.json is the checked-in spec registry entry behind the legacy
// workloads API: the paper's 870-workload suite expressed as a spec.
// Compiling it with an unset master seed reproduces Suite()
// byte-identically (pinned by TestDefaultSpecMatchesLegacySuite).
//
//go:embed default.json
var defaultJSON []byte

// DefaultName is the registry name of the default suite spec.
const DefaultName = "default"

// Names lists the built-in registry specs.
func Names() []string { return []string{DefaultName} }

// ByName returns a fresh parse of the named built-in spec; ok is false
// for unknown names.
func ByName(name string) (*Spec, bool) {
	if name != DefaultName {
		return nil, false
	}
	return Default(), true
}

// Resolve returns the built-in registry spec named nameOrPath, or —
// when no registry entry matches — loads and parses it as a file path.
// It is the resolution rule behind every -workload-spec flag.
func Resolve(nameOrPath string) (*Spec, error) {
	if s, ok := ByName(nameOrPath); ok {
		return s, nil
	}
	return Load(nameOrPath)
}

// Default returns a fresh parse of the checked-in default suite spec.
func Default() *Spec {
	s, err := Parse(defaultJSON)
	if err != nil {
		// Unreachable: the embedded document is validated in CI.
		panic(fmt.Sprintf("spec: embedded default.json invalid: %v", err))
	}
	return s
}
