package spec

import (
	"fmt"

	"github.com/chirplab/chirp/internal/trace"
	"github.com/chirplab/chirp/internal/workloads"
)

// Options configures Compile.
type Options struct {
	// Seed, when SeedSet, overrides the spec's own seed — master-seed
	// supremacy: the CLI -seed always wins over the document, and the
	// effective seed becomes part of the compiled spec's capture hash.
	Seed    uint64
	SeedSet bool
}

// Compiled is the result of compiling a spec: the materialised
// workloads plus the effective seed and content hash that identify
// them.
type Compiled struct {
	// Spec is the normalized copy the compilation used.
	Spec *Spec
	// Seed is the effective master seed after supremacy resolution.
	Seed uint64
	// Hash is the content hash of (spec, effective seed); every
	// compiled workload carries it into capture fingerprints.
	Hash string

	suite    []*workloads.Workload
	combined *workloads.Workload
	tenants  []*workloads.Workload
	all      []*workloads.Workload
}

// Compile materialises spec into runnable workloads. The input is not
// mutated; defaulting and validation run on a private copy, so Compile
// accepts both raw and already-normalized specs. Compilation is pure:
// the same (spec, options) pair always yields workloads whose traces
// are byte-identical.
func Compile(s *Spec, opts Options) (*Compiled, error) {
	cs, err := s.clone()
	if err != nil {
		return nil, err
	}
	if err := cs.Normalize(); err != nil {
		return nil, err
	}
	seed := cs.Seed
	if opts.SeedSet {
		seed = opts.Seed
	}
	hash, err := cs.hashWithSeed(seed)
	if err != nil {
		return nil, err
	}
	c := &Compiled{Spec: cs, Seed: seed, Hash: hash}
	if cs.Suite != nil {
		suite, err := workloads.CompileSuite(
			workloads.SuiteSpec{Size: cs.Suite.Size, Categories: cs.Suite.Categories}, seed, hash)
		if err != nil {
			return nil, fmt.Errorf("spec %s: %w", cs.Name, err)
		}
		c.suite = suite
	}
	if len(cs.Clients) > 0 {
		plans := planClients(cs, seed)
		groups := groupByTenant(cs, plans)
		profile := "single-tenant"
		if len(groups) > 1 {
			profile = "multi-tenant"
		}
		var allTenants []workloads.TenantDesc
		for _, g := range groups {
			allTenants = append(allTenants, g.desc)
		}
		c.combined = compositeWorkload(cs.Name, cs, plans, seed, hash, profile, allTenants)
		if len(groups) > 1 {
			for _, g := range groups {
				name := cs.Name + "/" + g.desc.Tenant
				c.tenants = append(c.tenants,
					compositeWorkload(name, cs, g.plans, seed, hash, "tenant-view",
						[]workloads.TenantDesc{g.desc}))
			}
		}
	}
	c.all = append(c.all, c.suite...)
	if c.combined != nil {
		c.all = append(c.all, c.combined)
	}
	c.all = append(c.all, c.tenants...)
	return c, nil
}

// Suite returns the workloads of the spec's suite section (nil when
// the spec has none).
func (c *Compiled) Suite() []*workloads.Workload { return c.suite }

// SuiteN returns the first n suite workloads.
func (c *Compiled) SuiteN(n int) []*workloads.Workload {
	if n > len(c.suite) {
		n = len(c.suite)
	}
	return c.suite[:n]
}

// Combined returns the interleaved whole-population workload (nil when
// the spec has no clients).
func (c *Compiled) Combined() *workloads.Workload { return c.combined }

// Tenants returns the per-tenant views of the population — each the
// same clients, seeds, and programs as in the combined schedule, but
// scheduled in isolation, so tenant MPKI can be compared against the
// interleaved run. Empty unless the spec has more than one tenant.
func (c *Compiled) Tenants() []*workloads.Workload { return c.tenants }

// Workloads returns every runnable workload the spec compiles to:
// suite entries, then the combined population, then tenant views.
func (c *Compiled) Workloads() []*workloads.Workload { return c.all }

// ByName returns the named compiled workload, or nil.
func (c *Compiled) ByName(name string) *workloads.Workload {
	for _, w := range c.all {
		if w.Name == name {
			return w
		}
	}
	return nil
}

// LoadCompile loads the spec file at path and compiles it — the shared
// cmd helper behind every -workload-spec flag. seedSet reports whether
// the CLI -seed flag was explicitly set (flag.Visit), which is what
// gives it supremacy over the document's seed.
func LoadCompile(path string, seed uint64, seedSet bool) (*Compiled, error) {
	s, err := Load(path)
	if err != nil {
		return nil, err
	}
	return Compile(s, Options{Seed: seed, SeedSet: seedSet})
}

// clientPlan is one client, compiled: its derived seed, lifecycle, a
// pure builder for its (rebased) program, and its description.
type clientPlan struct {
	client *Client
	seed   uint64
	life   lifecycle
	build  func() *workloads.Program
	desc   workloads.ClientDesc
}

// Rebase margins between consecutive clients' address spaces, in
// pages: generous enough that guard gaps never touch, small enough to
// keep the address space compact.
const (
	codeMargin = 64
	dataMargin = 1024
)

// planClients compiles every client of a normalized spec, laying each
// program into a disjoint slice of the shared address space so tenants
// never alias pages.
func planClients(s *Spec, master uint64) []clientPlan {
	plans := make([]clientPlan, len(s.Clients))
	var codeOff, dataOff uint64
	for i := range s.Clients {
		cl := &s.Clients[i]
		cseed := workloads.MixSeeds(master, workloads.HashString("client|"+cl.ID)+cl.SeedOffset)
		name := s.Name + "/" + cl.ID
		var raw func() *workloads.Program
		if cl.Template != "" {
			tmpl, _ := workloads.Template(cl.Template)
			raw = func() *workloads.Program { return tmpl(name, cseed) }
		} else {
			ps := cl.Program
			raw = func() *workloads.Program { return buildProgram(ps, name, cseed) }
		}
		co, do := codeOff, dataOff
		build := func() *workloads.Program {
			p := raw()
			p.Rebase(co, do)
			return p
		}
		proto := build()
		_, codeSpan, _, dataSpan := proto.Extents()
		codeOff += codeSpan + codeMargin
		dataOff += dataSpan + dataMargin
		var dataPages uint64
		for _, r := range proto.Regions {
			dataPages += r.Pages
		}
		plans[i] = clientPlan{
			client: cl,
			seed:   cseed,
			life:   compileLifecycle(cl.Lifecycle),
			build:  build,
			desc: workloads.ClientDesc{
				ID:            cl.ID,
				RateFraction:  cl.RateFraction,
				Template:      cl.Template,
				Lifecycle:     describeLifecycle(cl.Lifecycle),
				Seed:          cseed,
				Sites:         len(proto.Sites),
				Phases:        len(proto.Phases),
				CodePages:     codeSpan,
				DataPages:     dataPages,
				DataFootprint: workloads.FormatPages(dataPages),
			},
		}
	}
	return plans
}

// buildProgram lowers an explicit program spec through the Builder
// primitives. The spec references regions and kernels by name; lookup
// failures are impossible after validation.
func buildProgram(ps *Program, name string, seed uint64) *workloads.Program {
	b := workloads.NewBuilder(name, "custom", seed)
	regions := make([]*workloads.Region, len(ps.Regions))
	for i, rs := range ps.Regions {
		regions[i] = b.Region(rs.Pages, rs.HotPages)
	}
	kernels := make([]*workloads.Kernel, len(ps.Kernels))
	for i, ks := range ps.Kernels {
		kernels[i] = b.Kernel(ks.CodePages, ks.Loads, ks.Noise, ks.Store)
	}
	for _, ss := range ps.Sites {
		bv, _ := workloads.ParseBehavior(ss.Behavior)
		site := b.Site(kernels[kernelIndex(ps, ss.Kernel)], regions[regionIndex(ps, ss.Region)],
			bv, ss.PagesPerCall)
		if ss.LoadsPerPage > 0 {
			site.LoadsPerPage = ss.LoadsPerPage
		}
		if ss.SkipALU > 0 {
			site.SkipALU = ss.SkipALU
		}
		site.ZipfSkew = ss.ZipfSkew
		site.ChunkPages = ss.ChunkPages
		site.Passes = ss.Passes
		site.WindowDrift = ss.WindowDrift
		site.Stores = ss.Stores
		site.IndirectCall = ss.IndirectCall
	}
	if len(ps.Phases) == 0 {
		b.Phases(ps.CallsPerPhase, b.UniformPhase())
	} else {
		weights := make([][]uint32, len(ps.Phases))
		for i := range ps.Phases {
			weights[i] = ps.Phases[i].Weights
		}
		b.Phases(ps.CallsPerPhase, weights...)
	}
	p := b.Build()
	if ps.RunMin > 0 {
		p.RunMin = ps.RunMin
	}
	if ps.RunMax > 0 {
		p.RunMax = ps.RunMax
	}
	if ps.SkipScale > 0 {
		p.SkipScale = ps.SkipScale
	}
	p.Profile = "custom"
	return p
}

func kernelIndex(ps *Program, name string) int {
	for i := range ps.Kernels {
		if ps.Kernels[i].Name == name {
			return i
		}
	}
	return -1
}

func regionIndex(ps *Program, name string) int {
	for i := range ps.Regions {
		if ps.Regions[i].Name == name {
			return i
		}
	}
	return -1
}

// rateBase converts a rate fraction to the scheduler's parts-per-
// million base weight (never zero: validation admits tiny fractions).
func rateBase(rate float64) uint64 {
	base := uint64(rate*1e6 + 0.5)
	if base == 0 {
		base = 1
	}
	return base
}

// tenantGroup is the clients of one tenant, in spec order.
type tenantGroup struct {
	plans []clientPlan
	desc  workloads.TenantDesc
}

// groupByTenant splits plans by tenant, preserving first-appearance
// order.
func groupByTenant(s *Spec, plans []clientPlan) []tenantGroup {
	var groups []tenantGroup
	index := make(map[string]int, len(plans))
	for i := range plans {
		tn := plans[i].client.Tenant
		gi, ok := index[tn]
		if !ok {
			gi = len(groups)
			index[tn] = gi
			groups = append(groups, tenantGroup{desc: workloads.TenantDesc{Tenant: tn}})
		}
		groups[gi].plans = append(groups[gi].plans, plans[i])
		groups[gi].desc.Clients = append(groups[gi].desc.Clients, plans[i].desc)
	}
	return groups
}

// compositeWorkload wraps a set of client plans as one schedulable
// workload: a fresh tenantScheduler per Source call, seeded from the
// workload's name so the combined population and each tenant view get
// independent (but reproducible) arrival processes.
func compositeWorkload(name string, s *Spec, plans []clientPlan, effSeed uint64, hash, profile string, tenants []workloads.TenantDesc) *workloads.Workload {
	runMin, runMax := s.Interleave.RunMin, s.Interleave.RunMax
	schedSeed := workloads.MixSeeds(effSeed, workloads.HashString("scheduler|"+name))
	open := func() trace.Source {
		clients := make([]schedClient, len(plans))
		for i := range plans {
			clients[i] = schedClient{
				gen:  workloads.NewGenerator(plans[i].build()),
				base: rateBase(plans[i].client.RateFraction),
				life: plans[i].life,
			}
		}
		return newScheduler(clients, runMin, runMax, schedSeed)
	}
	desc := workloads.Description{
		Name:     name,
		Category: "mix",
		Profile:  profile,
		Seed:     effSeed,
		SpecHash: hash,
		Tenants:  tenants,
	}
	describe := func() workloads.Description { return desc }
	return workloads.NewSourceWorkload(name, "mix", hash, effSeed, profile, open, describe)
}
