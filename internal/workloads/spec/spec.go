// Package spec defines the versioned, declarative workload
// specification behind the workloads API: a JSON document describing a
// population of tenants/clients — rate fractions, interleaving,
// lifecycle windows (diurnal ramps, spikes, drains), footprints, and
// access-pattern mixes — plus an optional template suite section. A
// spec compiles (Compile) into the existing Program/Generator
// machinery: single-client specs become ordinary program workloads,
// multi-client specs become one composite workload whose
// tenantScheduler interleaves per-client generators into a single
// deterministic trace.Source.
//
// The format is strict and deterministic end to end: parsing rejects
// unknown fields, defaulting is pure, Encode produces one canonical
// form, and the content hash (which keys persistent L2-stream captures
// apart across specs) is the hash of that canonical form with the
// effective master seed applied. Master-seed supremacy holds
// everywhere: a CLI -seed overrides the document's seed, and the same
// (seed, spec) pair yields byte-identical traces.
package spec

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"

	"github.com/chirplab/chirp/internal/workloads"
)

// Version is the spec schema version this package reads and writes.
const Version = 1

// Default interleave run bounds: how many consecutive kernel
// invocations the scheduler leaves with one client before re-drawing.
const (
	defaultRunMin = 4
	defaultRunMax = 16
)

// Spec is the top-level workload specification document.
type Spec struct {
	// Version is the schema version; must be 1.
	Version int `json:"version"`
	// Name names the compiled workload (and prefixes tenant views).
	Name string `json:"name"`
	// Seed is the master seed. A CLI -seed overrides it (master-seed
	// supremacy); 0 or absent leaves derived seeds at their unmixed
	// defaults, which is what keeps the default suite spec
	// byte-identical to the legacy constructors.
	Seed uint64 `json:"seed,omitempty"`
	// Suite, when present, materialises a template-interleaved suite
	// (the registry form of the legacy Suite/SuiteN constructors).
	Suite *Suite `json:"suite,omitempty"`
	// Clients, when present, describe a traffic population compiled
	// into one composite interleaved workload plus per-tenant views.
	Clients []Client `json:"clients,omitempty"`
	// Interleave bounds the scheduler's per-client run lengths.
	Interleave *Interleave `json:"interleave,omitempty"`
}

// Suite declares a template-interleaved workload suite.
type Suite struct {
	// Size is the number of workloads to materialise.
	Size int `json:"size"`
	// Categories are the templates to interleave; defaulted to the
	// full category list.
	Categories []string `json:"categories,omitempty"`
}

// Interleave bounds how many consecutive kernel invocations the
// tenant scheduler leaves with one client before re-drawing — the
// arrival process's temporal granularity.
type Interleave struct {
	RunMin int `json:"runMin,omitempty"`
	RunMax int `json:"runMax,omitempty"`
}

// Client is one member of the traffic population: a tenant's workload
// with a rate fraction, an optional lifecycle window, and either a
// category template or an explicit program.
type Client struct {
	// ID names the client; unique within the spec.
	ID string `json:"id"`
	// Tenant groups clients into tenant views; defaults to ID.
	Tenant string `json:"tenant,omitempty"`
	// RateFraction is the client's relative share of scheduled kernel
	// invocations, in (0, 1].
	RateFraction float64 `json:"rateFraction"`
	// Template instantiates a category template ("spec", "db", ...).
	// Exactly one of Template and Program must be set.
	Template string `json:"template,omitempty"`
	// Program gives the client an explicit program model.
	Program *Program `json:"program,omitempty"`
	// SeedOffset perturbs the client's derived seed, so two clients of
	// the same template can differ (or agree) deliberately.
	SeedOffset uint64 `json:"seedOffset,omitempty"`
	// Lifecycle modulates the client's rate over scheduler time;
	// absent means steady.
	Lifecycle *Lifecycle `json:"lifecycle,omitempty"`
}

// Lifecycle patterns.
const (
	PatternSteady  = "steady"
	PatternDiurnal = "diurnal"
	PatternSpike   = "spike"
	PatternDrain   = "drain"
	PatternWindow  = "window"
)

// Lifecycle is a client's activity window over scheduler time,
// measured in scheduled kernel invocations (calls):
//
//   - steady:  constant activity (the default).
//   - diurnal: a triangle wave between Floor×rate and rate with
//     period Period — the day/night ramp.
//   - spike:   steady, except bursts of Gain×rate lasting Width calls
//     every Period calls, starting at Start.
//   - drain:   steady until End−Ramp, ramping linearly to zero at End
//     and staying gone — a departing tenant.
//   - window:  active only in [Start, End) — an arriving (and
//     optionally departing) tenant.
type Lifecycle struct {
	Pattern string  `json:"pattern"`
	Period  uint64  `json:"period,omitempty"`
	Floor   float64 `json:"floor,omitempty"`
	Start   uint64  `json:"start,omitempty"`
	End     uint64  `json:"end,omitempty"`
	Width   uint64  `json:"width,omitempty"`
	Gain    float64 `json:"gain,omitempty"`
	Ramp    uint64  `json:"ramp,omitempty"`
}

// Program is an explicit program model: named regions, kernels, and
// the sites binding them, mirroring the Builder primitives.
type Program struct {
	Regions []Region `json:"regions"`
	Kernels []Kernel `json:"kernels"`
	Sites   []Site   `json:"sites"`
	// Phases are weight vectors over Sites; absent means one uniform
	// phase.
	Phases []Phase `json:"phases,omitempty"`
	// CallsPerPhase is the invocation count before the next phase;
	// required when more than one phase is declared.
	CallsPerPhase int `json:"callsPerPhase,omitempty"`
	// RunMin/RunMax/SkipScale override the builder's seeded defaults
	// when non-zero.
	RunMin    int    `json:"runMin,omitempty"`
	RunMax    int    `json:"runMax,omitempty"`
	SkipScale uint32 `json:"skipScale,omitempty"`
}

// Region is a named contiguous data region.
type Region struct {
	Name     string `json:"name"`
	Pages    uint64 `json:"pages"`
	HotPages uint64 `json:"hotPages,omitempty"`
}

// Kernel is a named shared code body.
type Kernel struct {
	Name      string `json:"name"`
	CodePages int    `json:"codePages,omitempty"`
	Loads     int    `json:"loads,omitempty"`
	Noise     int    `json:"noise,omitempty"`
	Store     bool   `json:"store,omitempty"`
}

// Site binds a kernel to a region under an access behaviour
// ("stream", "loop", "chase", "zipf", "gups", "batch", "window").
type Site struct {
	Kernel       string  `json:"kernel"`
	Region       string  `json:"region"`
	Behavior     string  `json:"behavior"`
	PagesPerCall int     `json:"pagesPerCall,omitempty"`
	LoadsPerPage int     `json:"loadsPerPage,omitempty"`
	SkipALU      uint32  `json:"skipALU,omitempty"`
	ZipfSkew     float64 `json:"zipfSkew,omitempty"`
	ChunkPages   uint64  `json:"chunkPages,omitempty"`
	Passes       uint64  `json:"passes,omitempty"`
	WindowDrift  uint64  `json:"windowDrift,omitempty"`
	Stores       bool    `json:"stores,omitempty"`
	IndirectCall bool    `json:"indirectCall,omitempty"`
}

// Phase is a weight vector over the program's sites, in declaration
// order; 0 disables a site for the phase.
type Phase struct {
	Weights []uint32 `json:"weights"`
}

// Parse decodes, defaults, and validates a spec document. Unknown
// fields are rejected, so typos fail loudly instead of silently
// changing the modelled population.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("spec: parse: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("spec: parse: trailing data after document")
	}
	if err := s.Normalize(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and parses the spec file at path.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return s, nil
}

// Normalize applies the deterministic defaulting rules in place and
// then validates. It is idempotent; Parse calls it, and Encode/Hash
// assume it has run.
func (s *Spec) Normalize() error {
	if s.Suite != nil && len(s.Suite.Categories) == 0 {
		s.Suite.Categories = append([]string(nil), workloads.Categories...)
	}
	if len(s.Clients) > 0 {
		if s.Interleave == nil {
			s.Interleave = &Interleave{}
		}
		if s.Interleave.RunMin == 0 {
			s.Interleave.RunMin = defaultRunMin
		}
		if s.Interleave.RunMax == 0 {
			s.Interleave.RunMax = defaultRunMax
		}
	}
	for i := range s.Clients {
		cl := &s.Clients[i]
		if cl.Tenant == "" {
			cl.Tenant = cl.ID
		}
		if l := cl.Lifecycle; l != nil {
			if l.Pattern == "" {
				l.Pattern = PatternSteady
			}
			if l.Pattern == PatternSpike && l.Gain == 0 {
				l.Gain = 4
			}
			if l.Pattern == PatternDrain && l.Ramp == 0 {
				l.Ramp = 1
			}
		}
		if p := cl.Program; p != nil {
			for k := range p.Kernels {
				if p.Kernels[k].CodePages == 0 {
					p.Kernels[k].CodePages = 1
				}
				if p.Kernels[k].Loads == 0 {
					p.Kernels[k].Loads = 1
				}
			}
			for si := range p.Sites {
				if p.Sites[si].PagesPerCall == 0 {
					p.Sites[si].PagesPerCall = 1
				}
			}
		}
	}
	return s.validate()
}

// validate rejects malformed specs with field-precise errors.
func (s *Spec) validate() error {
	if s.Version != Version {
		return fmt.Errorf("spec: unsupported version %d (want %d)", s.Version, Version)
	}
	if s.Name == "" {
		return fmt.Errorf("spec: name is required")
	}
	if s.Suite == nil && len(s.Clients) == 0 {
		return fmt.Errorf("spec %s: needs a suite section or at least one client", s.Name)
	}
	if s.Suite != nil {
		if s.Suite.Size <= 0 {
			return fmt.Errorf("spec %s: suite.size must be > 0", s.Name)
		}
		for _, cat := range s.Suite.Categories {
			if _, ok := workloads.Template(cat); !ok {
				return fmt.Errorf("spec %s: suite references unknown template %q", s.Name, cat)
			}
		}
	}
	if s.Interleave != nil {
		if s.Interleave.RunMin < 1 || s.Interleave.RunMax < s.Interleave.RunMin {
			return fmt.Errorf("spec %s: interleave needs 1 <= runMin <= runMax, got [%d, %d]",
				s.Name, s.Interleave.RunMin, s.Interleave.RunMax)
		}
	}
	seen := make(map[string]bool, len(s.Clients))
	for i := range s.Clients {
		cl := &s.Clients[i]
		at := fmt.Sprintf("spec %s: client[%d]", s.Name, i)
		if cl.ID == "" {
			return fmt.Errorf("%s: id is required", at)
		}
		at = fmt.Sprintf("spec %s: client %q", s.Name, cl.ID)
		if seen[cl.ID] {
			return fmt.Errorf("%s: duplicate id", at)
		}
		seen[cl.ID] = true
		if !(cl.RateFraction > 0 && cl.RateFraction <= 1) {
			return fmt.Errorf("%s: rateFraction must be in (0, 1], got %g", at, cl.RateFraction)
		}
		if (cl.Template == "") == (cl.Program == nil) {
			return fmt.Errorf("%s: exactly one of template and program must be set", at)
		}
		if cl.Template != "" {
			if _, ok := workloads.Template(cl.Template); !ok {
				return fmt.Errorf("%s: unknown template %q", at, cl.Template)
			}
		}
		if err := validateLifecycle(cl.Lifecycle, at); err != nil {
			return err
		}
		if cl.Program != nil {
			if err := validateProgram(cl.Program, at); err != nil {
				return err
			}
		}
	}
	return nil
}

func validateLifecycle(l *Lifecycle, at string) error {
	if l == nil {
		return nil
	}
	switch l.Pattern {
	case PatternSteady:
	case PatternDiurnal:
		if l.Period == 0 {
			return fmt.Errorf("%s: diurnal lifecycle needs period > 0", at)
		}
		if l.Floor < 0 || l.Floor > 1 {
			return fmt.Errorf("%s: diurnal floor must be in [0, 1], got %g", at, l.Floor)
		}
	case PatternSpike:
		if l.Period == 0 || l.Width == 0 {
			return fmt.Errorf("%s: spike lifecycle needs period > 0 and width > 0", at)
		}
		if l.Width > l.Period {
			return fmt.Errorf("%s: spike width %d exceeds period %d", at, l.Width, l.Period)
		}
		if l.Gain <= 0 {
			return fmt.Errorf("%s: spike gain must be > 0, got %g", at, l.Gain)
		}
	case PatternDrain:
		if l.End == 0 {
			return fmt.Errorf("%s: drain lifecycle needs end > 0", at)
		}
		if l.Ramp > l.End {
			return fmt.Errorf("%s: drain ramp %d exceeds end %d", at, l.Ramp, l.End)
		}
	case PatternWindow:
		if l.End <= l.Start {
			return fmt.Errorf("%s: window lifecycle needs end > start, got [%d, %d)", at, l.Start, l.End)
		}
	default:
		return fmt.Errorf("%s: unknown lifecycle pattern %q", at, l.Pattern)
	}
	return nil
}

func validateProgram(p *Program, at string) error {
	if len(p.Regions) == 0 || len(p.Kernels) == 0 || len(p.Sites) == 0 {
		return fmt.Errorf("%s: program needs at least one region, kernel, and site", at)
	}
	names := make(map[string]bool, len(p.Regions)+len(p.Kernels))
	for i, r := range p.Regions {
		if r.Name == "" {
			return fmt.Errorf("%s: region[%d] needs a name", at, i)
		}
		if names["r:"+r.Name] {
			return fmt.Errorf("%s: duplicate region %q", at, r.Name)
		}
		names["r:"+r.Name] = true
		if r.Pages == 0 {
			return fmt.Errorf("%s: region %q needs pages > 0", at, r.Name)
		}
		if r.HotPages > r.Pages {
			return fmt.Errorf("%s: region %q hotPages %d exceeds pages %d", at, r.Name, r.HotPages, r.Pages)
		}
	}
	for i, k := range p.Kernels {
		if k.Name == "" {
			return fmt.Errorf("%s: kernel[%d] needs a name", at, i)
		}
		if names["k:"+k.Name] {
			return fmt.Errorf("%s: duplicate kernel %q", at, k.Name)
		}
		names["k:"+k.Name] = true
	}
	for i, site := range p.Sites {
		if !names["k:"+site.Kernel] {
			return fmt.Errorf("%s: site[%d] references unknown kernel %q", at, i, site.Kernel)
		}
		if !names["r:"+site.Region] {
			return fmt.Errorf("%s: site[%d] references unknown region %q", at, i, site.Region)
		}
		if _, ok := workloads.ParseBehavior(site.Behavior); !ok {
			return fmt.Errorf("%s: site[%d] has unknown behavior %q", at, i, site.Behavior)
		}
	}
	for i, ph := range p.Phases {
		if len(ph.Weights) != len(p.Sites) {
			return fmt.Errorf("%s: phase[%d] has %d weights for %d sites", at, i, len(ph.Weights), len(p.Sites))
		}
		var total uint64
		for _, w := range ph.Weights {
			total += uint64(w)
		}
		if total == 0 {
			return fmt.Errorf("%s: phase[%d] has zero total weight", at, i)
		}
	}
	if len(p.Phases) > 1 && p.CallsPerPhase <= 0 {
		return fmt.Errorf("%s: callsPerPhase must be > 0 with %d phases", at, len(p.Phases))
	}
	return nil
}

// Encode renders the spec in its canonical form: two-space-indented
// JSON of the normalized document, newline-terminated. Encoding a
// parsed spec and re-parsing it round-trips exactly; checked-in specs
// are kept in this form.
func (s *Spec) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("spec: encode: %w", err)
	}
	return append(data, '\n'), nil
}

// Hash is the spec's content hash: sha256 over the canonical encoding,
// truncated to 128 bits of hex. Any semantic change to the spec — a
// client's rate fraction included — changes the hash, which is what
// keeps persistent L2-stream captures from colliding across specs.
func (s *Spec) Hash() (string, error) {
	return s.hashWithSeed(s.Seed)
}

// hashWithSeed hashes the spec as if its seed were seed — the form
// Compile uses so the effective (possibly CLI-overridden) master seed
// is part of the capture identity.
func (s *Spec) hashWithSeed(seed uint64) (string, error) {
	c, err := s.clone()
	if err != nil {
		return "", err
	}
	c.Seed = seed
	data, err := c.Encode()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write([]byte("chirp-workload-spec-v1|"))
	h.Write(data)
	return hex.EncodeToString(h.Sum(nil)[:16]), nil
}

// clone deep-copies the spec via its JSON form (exact for every field
// type the schema uses).
func (s *Spec) clone() (*Spec, error) {
	data, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("spec: clone: %w", err)
	}
	var c Spec
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("spec: clone: %w", err)
	}
	return &c, nil
}
