package spec

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/chirplab/chirp/internal/workloads"
)

// minimalClients is a small two-client population used across the
// schema tests.
const minimalClients = `{
  "version": 1,
  "name": "pair",
  "clients": [
    {"id": "a", "rateFraction": 0.75, "template": "db"},
    {"id": "b", "rateFraction": 0.25, "template": "web"}
  ]
}`

func TestParseDefaults(t *testing.T) {
	s, err := Parse([]byte(minimalClients))
	if err != nil {
		t.Fatal(err)
	}
	if s.Interleave == nil || s.Interleave.RunMin != defaultRunMin || s.Interleave.RunMax != defaultRunMax {
		t.Errorf("interleave not defaulted: %+v", s.Interleave)
	}
	for _, cl := range s.Clients {
		if cl.Tenant != cl.ID {
			t.Errorf("client %s: tenant not defaulted to id, got %q", cl.ID, cl.Tenant)
		}
	}

	suite, err := Parse([]byte(`{"version": 1, "name": "s", "suite": {"size": 8}}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(suite.Suite.Categories) != len(workloads.Categories) {
		t.Errorf("suite categories not defaulted: %v", suite.Suite.Categories)
	}

	prog, err := Parse([]byte(`{
	  "version": 1, "name": "p",
	  "clients": [{"id": "a", "rateFraction": 1, "program": {
	    "regions": [{"name": "r", "pages": 16}],
	    "kernels": [{"name": "k"}],
	    "sites": [{"kernel": "k", "region": "r", "behavior": "stream"}]
	  }}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	p := prog.Clients[0].Program
	if p.Kernels[0].CodePages != 1 || p.Kernels[0].Loads != 1 {
		t.Errorf("kernel defaults not applied: %+v", p.Kernels[0])
	}
	if p.Sites[0].PagesPerCall != 1 {
		t.Errorf("site pagesPerCall not defaulted: %+v", p.Sites[0])
	}

	spike, err := Parse([]byte(`{
	  "version": 1, "name": "sp",
	  "clients": [{"id": "a", "rateFraction": 1, "template": "db",
	    "lifecycle": {"pattern": "spike", "period": 100, "width": 10}}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if g := spike.Clients[0].Lifecycle.Gain; g != 4 {
		t.Errorf("spike gain not defaulted: got %g, want 4", g)
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	s, err := Parse([]byte(minimalClients))
	if err != nil {
		t.Fatal(err)
	}
	before, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	after, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("Normalize is not idempotent: re-normalizing changed the canonical encoding")
	}
}

func TestEncodeRoundTrip(t *testing.T) {
	docs := []string{minimalClients, `{"version": 1, "name": "s", "suite": {"size": 870}}`}
	for _, doc := range docs {
		s, err := Parse([]byte(doc))
		if err != nil {
			t.Fatal(err)
		}
		enc, err := s.Encode()
		if err != nil {
			t.Fatal(err)
		}
		s2, err := Parse(enc)
		if err != nil {
			t.Fatalf("re-parsing canonical encoding: %v\n%s", err, enc)
		}
		enc2, err := s2.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Errorf("encode/parse/encode does not round-trip:\n--- first\n%s--- second\n%s", enc, enc2)
		}
	}
}

// TestParseErrors pins the validation surface: every malformed document
// is rejected with a message naming the offending field.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"unknown field", `{"version": 1, "name": "x", "sweet": {}}`, "unknown field"},
		{"bad version", `{"version": 2, "name": "x", "suite": {"size": 1}}`, "unsupported version"},
		{"missing name", `{"version": 1, "suite": {"size": 1}}`, "name is required"},
		{"empty spec", `{"version": 1, "name": "x"}`, "suite section or at least one client"},
		{"zero suite", `{"version": 1, "name": "x", "suite": {"size": 0}}`, "suite.size"},
		{"bad category", `{"version": 1, "name": "x", "suite": {"size": 1, "categories": ["nope"]}}`,
			`unknown template "nope"`},
		{"trailing data", `{"version": 1, "name": "x", "suite": {"size": 1}} {}`, "trailing data"},
		{"missing id", `{"version": 1, "name": "x", "clients": [{"rateFraction": 1, "template": "db"}]}`,
			"id is required"},
		{"dup id", `{"version": 1, "name": "x", "clients": [
			{"id": "a", "rateFraction": 0.5, "template": "db"},
			{"id": "a", "rateFraction": 0.5, "template": "db"}]}`, "duplicate id"},
		{"zero rate", `{"version": 1, "name": "x", "clients": [{"id": "a", "rateFraction": 0, "template": "db"}]}`,
			"rateFraction"},
		{"rate above one", `{"version": 1, "name": "x", "clients": [{"id": "a", "rateFraction": 1.5, "template": "db"}]}`,
			"rateFraction"},
		{"no model", `{"version": 1, "name": "x", "clients": [{"id": "a", "rateFraction": 1}]}`,
			"exactly one of template and program"},
		{"both models", `{"version": 1, "name": "x", "clients": [{"id": "a", "rateFraction": 1,
			"template": "db", "program": {"regions": [{"name": "r", "pages": 1}],
			"kernels": [{"name": "k"}], "sites": [{"kernel": "k", "region": "r", "behavior": "stream"}]}}]}`,
			"exactly one of template and program"},
		{"bad template", `{"version": 1, "name": "x", "clients": [{"id": "a", "rateFraction": 1, "template": "zzz"}]}`,
			`unknown template "zzz"`},
		{"bad interleave", `{"version": 1, "name": "x", "interleave": {"runMin": 9, "runMax": 2},
			"clients": [{"id": "a", "rateFraction": 1, "template": "db"}]}`, "interleave"},
		{"bad lifecycle pattern", `{"version": 1, "name": "x", "clients": [{"id": "a", "rateFraction": 1,
			"template": "db", "lifecycle": {"pattern": "lunar"}}]}`, "unknown lifecycle pattern"},
		{"diurnal no period", `{"version": 1, "name": "x", "clients": [{"id": "a", "rateFraction": 1,
			"template": "db", "lifecycle": {"pattern": "diurnal"}}]}`, "period"},
		{"spike width over period", `{"version": 1, "name": "x", "clients": [{"id": "a", "rateFraction": 1,
			"template": "db", "lifecycle": {"pattern": "spike", "period": 5, "width": 9}}]}`, "width"},
		{"window empty", `{"version": 1, "name": "x", "clients": [{"id": "a", "rateFraction": 1,
			"template": "db", "lifecycle": {"pattern": "window", "start": 5, "end": 5}}]}`, "end > start"},
		{"program no sites", `{"version": 1, "name": "x", "clients": [{"id": "a", "rateFraction": 1,
			"program": {"regions": [{"name": "r", "pages": 1}], "kernels": [{"name": "k"}], "sites": []}}]}`,
			"at least one region, kernel, and site"},
		{"site bad kernel", `{"version": 1, "name": "x", "clients": [{"id": "a", "rateFraction": 1,
			"program": {"regions": [{"name": "r", "pages": 1}], "kernels": [{"name": "k"}],
			"sites": [{"kernel": "zz", "region": "r", "behavior": "stream"}]}}]}`, `unknown kernel "zz"`},
		{"site bad behavior", `{"version": 1, "name": "x", "clients": [{"id": "a", "rateFraction": 1,
			"program": {"regions": [{"name": "r", "pages": 1}], "kernels": [{"name": "k"}],
			"sites": [{"kernel": "k", "region": "r", "behavior": "warp"}]}}]}`, `unknown behavior "warp"`},
		{"phase arity", `{"version": 1, "name": "x", "clients": [{"id": "a", "rateFraction": 1,
			"program": {"regions": [{"name": "r", "pages": 1}], "kernels": [{"name": "k"}],
			"sites": [{"kernel": "k", "region": "r", "behavior": "stream"}],
			"phases": [{"weights": [1, 2]}]}}]}`, "weights"},
		{"phases need cadence", `{"version": 1, "name": "x", "clients": [{"id": "a", "rateFraction": 1,
			"program": {"regions": [{"name": "r", "pages": 1}], "kernels": [{"name": "k"}],
			"sites": [{"kernel": "k", "region": "r", "behavior": "stream"}],
			"phases": [{"weights": [1]}, {"weights": [1]}]}}]}`, "callsPerPhase"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.doc))
			if err == nil {
				t.Fatalf("accepted invalid document; want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestHashRateSensitivity: two specs differing only in one client's
// rate fraction must hash apart, so their persistent L2-stream
// captures can never collide.
func TestHashRateSensitivity(t *testing.T) {
	a, err := Parse([]byte(minimalClients))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse([]byte(strings.Replace(minimalClients, "0.75", "0.7", 1)))
	if err != nil {
		t.Fatal(err)
	}
	ha, err := a.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ha == hb {
		t.Errorf("specs differing only in a rate fraction share hash %s", ha)
	}
	ha2, err := a.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ha != ha2 {
		t.Errorf("hash is not stable: %s then %s", ha, ha2)
	}
}

// TestHashSeedSubstitution: the capture hash covers the effective seed,
// not the document seed, so a CLI override re-keys captures.
func TestHashSeedSubstitution(t *testing.T) {
	s, err := Parse([]byte(minimalClients))
	if err != nil {
		t.Fatal(err)
	}
	h0, err := s.hashWithSeed(0)
	if err != nil {
		t.Fatal(err)
	}
	h1, err := s.hashWithSeed(1)
	if err != nil {
		t.Fatal(err)
	}
	if h0 == h1 {
		t.Error("hash ignores the effective seed")
	}
	plain, err := s.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if plain != h0 {
		t.Errorf("Hash() = %s, want hashWithSeed(doc seed) = %s", plain, h0)
	}
}

// TestRegistry validates every checked-in registry spec and pins the
// default's canonical form: the embedded bytes must equal their own
// re-encoding, so `gofmt for specs` holds for the files in the tree.
func TestRegistry(t *testing.T) {
	for _, name := range Names() {
		s, ok := ByName(name)
		if !ok {
			t.Fatalf("Names() lists %q but ByName rejects it", name)
		}
		if s.Name == "" {
			t.Errorf("registry spec %q has no name", name)
		}
	}
	if _, ok := ByName("no-such-spec"); ok {
		t.Error("ByName accepted an unknown name")
	}

	enc, err := Default().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, defaultJSON) {
		t.Errorf("default.json is not in canonical form:\n--- checked in\n%s--- canonical\n%s", defaultJSON, enc)
	}
	if Default().Suite == nil || Default().Suite.Size != workloads.SuiteSize {
		t.Errorf("default spec does not declare the %d-workload suite", workloads.SuiteSize)
	}
}

// TestCheckedInSpecs is the CI spec-validation gate: every spec file in
// the repository must parse, validate, compile, and already be in
// canonical form (its bytes equal their own re-encoding).
func TestCheckedInSpecs(t *testing.T) {
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
	paths := []string{filepath.Join(dir, "internal", "workloads", "spec", "default.json")}
	examples, err := filepath.Glob(filepath.Join(dir, "examples", "specs", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(examples) == 0 {
		t.Error("no example specs under examples/specs/")
	}
	paths = append(paths, examples...)
	for _, path := range paths {
		rel, _ := filepath.Rel(dir, path)
		t.Run(filepath.ToSlash(rel), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			s, err := Parse(data)
			if err != nil {
				t.Fatalf("does not validate: %v", err)
			}
			enc, err := s.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(enc, data) {
				t.Error("not in canonical form; re-encode the file with (*Spec).Encode")
			}
			if _, err := Compile(s, Options{}); err != nil {
				t.Fatalf("does not compile: %v", err)
			}
		})
	}
}
