package spec

import "fmt"

// activityScale is the fixed-point unit for lifecycle activity: an
// activity of activityScale means the client runs at its full rate
// fraction. Integer fixed-point keeps the scheduler's weight
// arithmetic exactly reproducible (the determinism rule bans nothing
// here, but floating-point accumulation would make the byte-identity
// guarantee depend on evaluation order).
const activityScale = 1024

// lifecycle is the compiled, integer form of a Lifecycle.
type lifecycle struct {
	pattern                         string
	period, start, end, width, ramp uint64
	floor, gain                     uint64 // activityScale fixed-point
}

// compileLifecycle lowers a validated Lifecycle (nil means steady).
func compileLifecycle(l *Lifecycle) lifecycle {
	if l == nil {
		return lifecycle{pattern: PatternSteady}
	}
	return lifecycle{
		pattern: l.Pattern,
		period:  l.Period,
		start:   l.Start,
		end:     l.End,
		width:   l.Width,
		ramp:    l.Ramp,
		floor:   uint64(l.Floor*activityScale + 0.5),
		gain:    uint64(l.Gain*activityScale + 0.5),
	}
}

// activity returns the client's traffic multiplier at the given
// scheduler call count, in activityScale fixed-point units.
func (l lifecycle) activity(call uint64) uint64 {
	switch l.pattern {
	case PatternDiurnal:
		// Triangle wave between floor and full rate.
		ph := call % l.period
		half := l.period / 2
		if half == 0 {
			return activityScale
		}
		var tri uint64 // 0..activityScale over the cycle
		if ph < half {
			tri = ph * activityScale / half
		} else {
			tri = (l.period - ph) * activityScale / (l.period - half)
		}
		return l.floor + (activityScale-l.floor)*tri/activityScale
	case PatternSpike:
		if call >= l.start && (call-l.start)%l.period < l.width {
			return l.gain
		}
		return activityScale
	case PatternDrain:
		if call >= l.end {
			return 0
		}
		if call+l.ramp >= l.end {
			return (l.end - call) * activityScale / l.ramp
		}
		return activityScale
	case PatternWindow:
		if call >= l.start && call < l.end {
			return activityScale
		}
		return 0
	}
	return activityScale
}

// describe renders the lifecycle for workload descriptions.
func describeLifecycle(l *Lifecycle) string {
	if l == nil {
		return PatternSteady
	}
	switch l.Pattern {
	case PatternDiurnal:
		return fmt.Sprintf("diurnal(period=%d, floor=%g)", l.Period, l.Floor)
	case PatternSpike:
		return fmt.Sprintf("spike(period=%d, width=%d, gain=%g, start=%d)", l.Period, l.Width, l.Gain, l.Start)
	case PatternDrain:
		return fmt.Sprintf("drain(end=%d, ramp=%d)", l.End, l.Ramp)
	case PatternWindow:
		return fmt.Sprintf("window(start=%d, end=%d)", l.Start, l.End)
	}
	return l.Pattern
}
