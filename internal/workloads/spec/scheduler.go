package spec

import (
	"github.com/chirplab/chirp/internal/trace"
	"github.com/chirplab/chirp/internal/workloads"
)

// schedClient is one client inside a tenantScheduler: its generator,
// its base rate in parts-per-million, and its lifecycle modulation.
type schedClient struct {
	gen  *workloads.Generator
	base uint64
	life lifecycle
}

// tenantScheduler interleaves per-client generators into one
// deterministic trace.Source: each scheduling turn it draws a client —
// weighted by rate fraction times the client's current lifecycle
// activity — and lets it emit a short run of kernel invocations, the
// context-switch granularity real multi-tenant machines show the TLB.
// It implements trace.Source and trace.BlockSource; the stream is
// infinite (wrap trace.Limit) and restarts exactly via Reset.
type tenantScheduler struct {
	clients []schedClient
	weights []uint64 // scratch for the weighted pick
	runMin  int
	runMax  int
	seed    uint64
	rng     *trace.RNG

	buf     []trace.Record
	pos     int
	calls   uint64 // scheduled invocations so far: the lifecycle clock
	cur     int
	runLeft int
}

// newScheduler builds a scheduler over clients with the given
// interleave bounds, seeded independently of every client generator.
func newScheduler(clients []schedClient, runMin, runMax int, seed uint64) *tenantScheduler {
	return &tenantScheduler{
		clients: clients,
		weights: make([]uint64, len(clients)),
		runMin:  runMin,
		runMax:  runMax,
		seed:    seed,
		rng:     trace.NewRNG(seed),
	}
}

// Reset implements trace.Source.
func (s *tenantScheduler) Reset() {
	s.rng.Seed(s.seed)
	s.buf = s.buf[:0]
	s.pos = 0
	s.calls = 0
	s.cur = 0
	s.runLeft = 0
	for i := range s.clients {
		s.clients[i].gen.Reset()
	}
}

// Next implements trace.Source.
func (s *tenantScheduler) Next(rec *trace.Record) bool {
	for s.pos >= len(s.buf) {
		s.fill()
	}
	*rec = s.buf[s.pos]
	s.pos++
	return true
}

// NextBlock implements trace.BlockSource natively, copying whole
// kernel invocations out of the internal buffer.
func (s *tenantScheduler) NextBlock(buf []trace.Record) int {
	n := 0
	for n < len(buf) {
		if s.pos >= len(s.buf) {
			s.fill()
		}
		c := copy(buf[n:], s.buf[s.pos:])
		s.pos += c
		n += c
	}
	return n
}

// fill buffers the next scheduled kernel invocation.
func (s *tenantScheduler) fill() {
	if s.runLeft <= 0 {
		s.pick()
	}
	s.runLeft--
	s.buf = s.clients[s.cur].gen.EmitCall(s.buf[:0])
	s.pos = 0
	s.calls++
}

// pick draws the next client and its run length. Weights are base
// rate × lifecycle activity at the current call count; when every
// client is outside its window (all drained), the base fractions are
// used so the stream never stalls.
func (s *tenantScheduler) pick() {
	var total uint64
	for i := range s.clients {
		w := s.clients[i].base * s.clients[i].life.activity(s.calls)
		s.weights[i] = w
		total += w
	}
	if total == 0 {
		for i := range s.clients {
			s.weights[i] = s.clients[i].base
			total += s.clients[i].base
		}
	}
	x := s.rng.Uint64n(total)
	s.cur = len(s.weights) - 1
	for i, w := range s.weights {
		if x < w {
			s.cur = i
			break
		}
		x -= w
	}
	s.runLeft = s.runMin + s.rng.Intn(s.runMax-s.runMin+1)
}
