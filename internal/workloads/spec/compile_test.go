package spec

import (
	"testing"

	"github.com/chirplab/chirp/internal/trace"
	"github.com/chirplab/chirp/internal/workloads"
)

// collect reads exactly n records from src.
func collect(t *testing.T, src trace.Source, n int) []trace.Record {
	t.Helper()
	out := make([]trace.Record, n)
	for i := range out {
		if !src.Next(&out[i]) {
			t.Fatalf("source ended after %d of %d records", i, n)
		}
	}
	return out
}

// sameRecords compares two record slices and reports the first
// divergence.
func sameRecords(t *testing.T, label string, a, b []trace.Record) bool {
	t.Helper()
	if len(a) != len(b) {
		t.Errorf("%s: %d vs %d records", label, len(a), len(b))
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("%s: record %d diverges: %+v vs %+v", label, i, a[i], b[i])
			return false
		}
	}
	return true
}

// TestDefaultSpecMatchesLegacySuite is the golden gate of the API
// redesign: compiling the checked-in default spec with no master seed
// must reproduce the legacy Suite() constructors exactly — same names,
// categories, and seeds for all 870 workloads, and byte-identical
// traces.
func TestDefaultSpecMatchesLegacySuite(t *testing.T) {
	c, err := Compile(Default(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	legacy := workloads.Suite()
	got := c.Suite()
	if len(got) != len(legacy) {
		t.Fatalf("default spec compiles to %d workloads, legacy suite has %d", len(got), len(legacy))
	}
	if len(c.Workloads()) != len(got) {
		t.Errorf("suite-only spec has %d extra workloads", len(c.Workloads())-len(got))
	}
	for i := range legacy {
		if got[i].Name != legacy[i].Name || got[i].Category != legacy[i].Category {
			t.Fatalf("workload %d: got %s/%s, legacy %s/%s",
				i, got[i].Name, got[i].Category, legacy[i].Name, legacy[i].Category)
		}
		if got[i].Seed != legacy[i].Seed {
			t.Fatalf("workload %s: seed %#x, legacy %#x", got[i].Name, got[i].Seed, legacy[i].Seed)
		}
		if got[i].SpecHash != c.Hash {
			t.Errorf("workload %s: SpecHash %q, want compiled hash %q", got[i].Name, got[i].SpecHash, c.Hash)
		}
	}
	// Byte-identity spot checks across the category interleave.
	for _, i := range []int{0, 1, 433, 869} {
		a := collect(t, got[i].Source(), 512)
		b := collect(t, legacy[i].Source(), 512)
		if !sameRecords(t, got[i].Name, a, b) {
			break
		}
	}
}

// TestSeedSupremacy pins the master-seed rules: an unset CLI seed
// defers to the document, a CLI seed equal to the document's changes
// nothing, and a different CLI seed overrides the document — re-keying
// the capture hash and the trace.
func TestSeedSupremacy(t *testing.T) {
	doc := `{
	  "version": 1, "name": "sup", "seed": 123,
	  "clients": [
	    {"id": "a", "rateFraction": 0.6, "template": "db"},
	    {"id": "b", "rateFraction": 0.4, "template": "sci"}
	  ]
	}`
	s, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	unset, err := Compile(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	same, err := Compile(s, Options{Seed: 123, SeedSet: true})
	if err != nil {
		t.Fatal(err)
	}
	over, err := Compile(s, Options{Seed: 999, SeedSet: true})
	if err != nil {
		t.Fatal(err)
	}
	if unset.Seed != 123 {
		t.Errorf("unset CLI seed: effective seed %d, want the document's 123", unset.Seed)
	}
	if same.Hash != unset.Hash {
		t.Errorf("CLI seed equal to document seed changed the hash: %s vs %s", same.Hash, unset.Hash)
	}
	if over.Seed != 999 {
		t.Errorf("CLI seed did not win over the document: effective seed %d", over.Seed)
	}
	if over.Hash == unset.Hash {
		t.Error("overriding the seed left the capture hash unchanged")
	}
	a := collect(t, unset.Combined().Source(), 4096)
	b := collect(t, same.Combined().Source(), 4096)
	sameRecords(t, "document seed vs equal CLI seed", a, b)
	c := collect(t, over.Combined().Source(), 4096)
	diverged := false
	for i := range a {
		if a[i] != c[i] {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Error("seed override produced a byte-identical trace")
	}
}

// TestCompileDeterminism: the same (spec, seed) pair yields
// byte-identical record streams across independent compilations,
// across fresh Source calls, after Reset, and through the block read
// path.
func TestCompileDeterminism(t *testing.T) {
	s, err := Parse([]byte(minimalClients))
	if err != nil {
		t.Fatal(err)
	}
	c1, err := Compile(s, Options{Seed: 7, SeedSet: true})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Compile(s, Options{Seed: 7, SeedSet: true})
	if err != nil {
		t.Fatal(err)
	}
	const n = 8192
	src := c1.Combined().Source()
	a := collect(t, src, n)
	sameRecords(t, "independent compile", a, collect(t, c2.Combined().Source(), n))
	sameRecords(t, "fresh source", a, collect(t, c1.Combined().Source(), n))
	src.Reset()
	sameRecords(t, "after Reset", a, collect(t, src, n))

	bs, ok := c1.Combined().Source().(trace.BlockSource)
	if !ok {
		t.Fatal("composite source does not implement trace.BlockSource")
	}
	blk := make([]trace.Record, n)
	for got := 0; got < n; {
		got += bs.NextBlock(blk[got:])
	}
	sameRecords(t, "block read path", a, blk)
}

// TestTenantViews: a multi-tenant spec compiles to one combined
// workload plus per-tenant views, with truthful descriptions.
func TestTenantViews(t *testing.T) {
	doc := `{
	  "version": 1, "name": "mt",
	  "clients": [
	    {"id": "web-a", "tenant": "acme", "rateFraction": 0.5, "template": "web"},
	    {"id": "db-a", "tenant": "acme", "rateFraction": 0.2, "template": "db"},
	    {"id": "ml-b", "tenant": "bravo", "rateFraction": 0.3, "template": "ml"}
	  ]
	}`
	s, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	comb := c.Combined()
	if comb == nil || comb.Name != "mt" {
		t.Fatalf("combined workload missing or misnamed: %+v", comb)
	}
	if comb.Profile() != "multi-tenant" {
		t.Errorf("combined profile %q, want multi-tenant", comb.Profile())
	}
	if comb.Program() != nil {
		t.Error("composite workload leaked a Program")
	}
	views := c.Tenants()
	if len(views) != 2 || views[0].Name != "mt/acme" || views[1].Name != "mt/bravo" {
		t.Fatalf("tenant views: %v", names(views))
	}
	if got := c.ByName("mt/bravo"); got != views[1] {
		t.Error("ByName did not find the tenant view")
	}
	if got := len(c.Workloads()); got != 3 {
		t.Errorf("Workloads() has %d entries, want combined + 2 views", got)
	}

	d := comb.Describe()
	if d.SpecHash != c.Hash {
		t.Errorf("description SpecHash %q, want %q", d.SpecHash, c.Hash)
	}
	if len(d.Tenants) != 2 {
		t.Fatalf("description has %d tenants, want 2", len(d.Tenants))
	}
	acme := d.Tenants[0]
	if acme.Tenant != "acme" || len(acme.Clients) != 2 {
		t.Fatalf("first tenant desc: %+v", acme)
	}
	if acme.Clients[0].ID != "web-a" || acme.Clients[0].RateFraction != 0.5 {
		t.Errorf("client desc: %+v", acme.Clients[0])
	}
	if acme.Clients[0].Sites == 0 || acme.Clients[0].DataPages == 0 {
		t.Errorf("client desc footprint is empty: %+v", acme.Clients[0])
	}
	vd := views[0].Describe()
	if len(vd.Tenants) != 1 || vd.Tenants[0].Tenant != "acme" {
		t.Errorf("tenant view describes %+v", vd.Tenants)
	}

	// A single-tenant population gets no redundant views.
	solo, err := Parse([]byte(`{
	  "version": 1, "name": "solo",
	  "clients": [
	    {"id": "a", "tenant": "only", "rateFraction": 0.5, "template": "db"},
	    {"id": "b", "tenant": "only", "rateFraction": 0.5, "template": "web"}
	  ]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	cs, err := Compile(solo, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Tenants()) != 0 {
		t.Errorf("single-tenant population produced %d tenant views, want none", len(cs.Tenants()))
	}
	if cs.Combined().Profile() != "single-tenant" {
		t.Errorf("single-tenant profile %q", cs.Combined().Profile())
	}
}

func names(ws []*workloads.Workload) []string {
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.Name
	}
	return out
}

// TestClientAddressDisjoint: every client's rebased program must
// occupy code and data pages disjoint from every other client's, so
// tenants never alias TLB entries.
func TestClientAddressDisjoint(t *testing.T) {
	doc := `{
	  "version": 1, "name": "iso",
	  "clients": [
	    {"id": "a", "rateFraction": 0.4, "template": "bigdata"},
	    {"id": "b", "rateFraction": 0.3, "template": "bigdata"},
	    {"id": "c", "rateFraction": 0.3, "template": "crypto"}
	  ]
	}`
	s, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	plans := planClients(c.Spec, c.Seed)
	type span struct{ base, pages uint64 }
	var code, data []span
	for _, p := range plans {
		cb, cp, db, dp := p.build().Extents()
		code = append(code, span{cb, cp})
		data = append(data, span{db, dp})
	}
	overlap := func(a, b span) bool { return a.base < b.base+b.pages && b.base < a.base+a.pages }
	for i := range plans {
		for j := i + 1; j < len(plans); j++ {
			if overlap(code[i], code[j]) {
				t.Errorf("clients %s and %s share code pages: %+v vs %+v",
					plans[i].client.ID, plans[j].client.ID, code[i], code[j])
			}
			if overlap(data[i], data[j]) {
				t.Errorf("clients %s and %s share data pages: %+v vs %+v",
					plans[i].client.ID, plans[j].client.ID, data[i], data[j])
			}
		}
	}
	// Same template twice with distinct derived seeds: the two bigdata
	// clients must not be clones.
	if plans[0].seed == plans[1].seed {
		t.Error("two clients of the same template derived the same seed")
	}
}

// TestWindowLifecycleSchedule: a windowed client contributes records
// inside its window and none after the window (plus the residual run)
// has passed.
func TestWindowLifecycleSchedule(t *testing.T) {
	doc := `{
	  "version": 1, "name": "win",
	  "clients": [
	    {"id": "steady", "rateFraction": 0.5, "template": "db"},
	    {"id": "guest", "rateFraction": 0.5, "template": "crypto",
	     "lifecycle": {"pattern": "window", "start": 0, "end": 64}}
	  ]
	}`
	s, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	plans := planClients(c.Spec, c.Seed)
	gb, gp, _, _ := plans[1].build().Extents()
	inGuest := func(r trace.Record) bool { page := r.PC >> 12; return page >= gb && page < gb+gp }

	clients := make([]schedClient, len(plans))
	for i := range plans {
		clients[i] = schedClient{
			gen:  workloads.NewGenerator(plans[i].build()),
			base: rateBase(plans[i].client.RateFraction),
			life: plans[i].life,
		}
	}
	sched := newScheduler(clients, c.Spec.Interleave.RunMin, c.Spec.Interleave.RunMax,
		workloads.MixSeeds(c.Seed, workloads.HashString("scheduler|win")))

	guestSeen := false
	for sched.calls < 64 {
		sched.fill()
		for _, r := range sched.buf {
			if inGuest(r) {
				guestSeen = true
			}
		}
	}
	if !guestSeen {
		t.Error("windowed client emitted nothing inside its window")
	}
	// A run drawn just before the window closed may still be draining;
	// once it cannot be (runMax calls later), the guest must be gone.
	for sched.calls < 64+uint64(sched.runMax) {
		sched.fill()
	}
	for i := 0; i < 2048; i++ {
		sched.fill()
		for _, r := range sched.buf {
			if inGuest(r) {
				t.Fatalf("windowed client still scheduled at call %d, %d past its window end",
					sched.calls, sched.calls-64)
			}
		}
	}
}
