package mixed

import (
	"testing"

	"github.com/chirplab/chirp/internal/core"
	"github.com/chirplab/chirp/internal/workloads"
)

func TestSizeString(t *testing.T) {
	if Size4K.String() != "4K" || Size2M.String() != "2M" {
		t.Error("size strings wrong")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 8, NewLRU()); err == nil {
		t.Error("zero entries accepted")
	}
	if _, err := New(100, 8, NewLRU()); err == nil {
		t.Error("non-multiple accepted")
	}
	if _, err := New(24, 8, NewLRU()); err == nil {
		t.Error("non-power-of-two sets accepted")
	}
	if _, err := New(64, 8, nil); err == nil {
		t.Error("nil policy accepted")
	}
}

func TestDualProbeHitBothSizes(t *testing.T) {
	tl, err := New(64, 8, NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	// Install a 2 MB entry covering VPNs [0x200*512, 0x201*512).
	a2m := &Access{PC: 0x100, VPN4K: 0x200 << 9, Size: Size2M}
	if tl.Lookup(a2m) {
		t.Fatal("cold lookup hit")
	}
	tl.Insert(a2m)
	// Any 4 KB VPN under that superpage must hit when the mapping is
	// 2 MB-backed.
	probe := &Access{PC: 0x104, VPN4K: 0x200<<9 | 0x1ff, Size: Size2M}
	if !tl.Lookup(probe) {
		t.Fatal("covered VPN missed the 2 MB entry")
	}
	// A 4 KB entry elsewhere coexists.
	a4k := &Access{PC: 0x108, VPN4K: 42, Size: Size4K}
	tl.Lookup(a4k)
	tl.Insert(a4k)
	if !tl.Lookup(a4k) {
		t.Fatal("4 KB entry missed after insert")
	}
	st := tl.Stats()
	if st.Misses4K != 1 || st.Misses2M != 1 {
		t.Errorf("per-size misses = %d/%d, want 1/1", st.Misses4K, st.Misses2M)
	}
}

func TestReachLossAccounting(t *testing.T) {
	// Single-set TLB: fill with used 2 MB entries, then evict one.
	tl, err := New(4, 4, NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 4; i++ {
		a := &Access{PC: 0x100, VPN4K: i << 9, Size: Size2M}
		tl.Lookup(a)
		tl.Insert(a)
		tl.Lookup(a) // mark used
	}
	a := &Access{PC: 0x100, VPN4K: 99 << 9, Size: Size2M}
	tl.Lookup(a)
	tl.Insert(a) // evicts a used 2 MB entry
	st := tl.Stats()
	if st.Evicted2M != 1 {
		t.Fatalf("evicted2M = %d, want 1", st.Evicted2M)
	}
	if st.ReachLostPages != 512 {
		t.Errorf("reach lost = %d pages, want 512", st.ReachLostPages)
	}
}

func TestCostAwarePrefersDead4K(t *testing.T) {
	ca, err := NewCostAware(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tl, err := New(4, 4, ca)
	if err != nil {
		t.Fatal(err)
	}
	AttachTLB(tl)
	// Fill the set: ways 0-1 are 2 MB, ways 2-3 are 4 KB.
	fills := []*Access{
		{PC: 0x100, VPN4K: 1 << 9, Size: Size2M},
		{PC: 0x100, VPN4K: 2 << 9, Size: Size2M},
		{PC: 0x100, VPN4K: 7, Size: Size4K},
		{PC: 0x100, VPN4K: 11, Size: Size4K},
	}
	for _, a := range fills {
		tl.Lookup(a)
		tl.Insert(a)
	}
	// Force the CHiRP metadata to mark everything dead; the cost-aware
	// victim must still pick a 4 KB way (2 or 3).
	for w := 0; w < 4; w++ {
		ca.inner.ForceDead(0, w, true)
	}
	a := &Access{PC: 0x200, VPN4K: 99, Size: Size4K}
	way := ca.Victim(0, a)
	if tl.EntrySize(0, way) != Size4K {
		t.Errorf("cost-aware victim way %d is 2MB; wanted a 4K victim", way)
	}
	// With only 2 MB entries dead, it falls back to the dead 2 MB one.
	for w := 0; w < 4; w++ {
		ca.inner.ForceDead(0, w, false)
	}
	ca.inner.ForceDead(0, 0, true)
	if way := ca.Victim(0, a); way != 0 {
		t.Errorf("victim = %d, want dead 2MB way 0 when no dead 4K exists", way)
	}
}

func TestRunMixedWorkload(t *testing.T) {
	// Find a workload with huge regions.
	var w *workloads.Workload
	for _, c := range workloads.SuiteN(16) {
		if len(newClassifier(c.Program()).ranges) > 0 {
			w = c
			break
		}
	}
	if w == nil {
		t.Fatal("no workload with 2MB-backed regions in the first 16")
	}
	res, err := Run(w, NewLRU(), 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions == 0 || res.Stats.Accesses == 0 {
		t.Fatalf("empty run: %+v", res)
	}
	if res.HugeShare <= 0 {
		t.Errorf("huge share = %v, want positive", res.HugeShare)
	}
	// Huge-backed translation reduces the L2 footprint: MPKI must be
	// finite and sane.
	if res.MPKI < 0 || res.MPKI > 500 {
		t.Errorf("MPKI = %v implausible", res.MPKI)
	}
}

func TestCompareOnSuite(t *testing.T) {
	rows, err := CompareOnSuite(2, 150_000, func() []Policy {
		ca, err := NewCostAware(core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return []Policy{NewLRU(), ca}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, row := range rows {
		if len(row) != 2 || row[0].Policy != "mixed-lru" {
			t.Fatalf("row malformed: %+v", row)
		}
	}
}
