// Package mixed implements the paper's stated future work (§VIII):
// TLB replacement with mixed page sizes. Modern L2 TLBs hold 4 KB and
// 2 MB entries in the same structure; replacement is then no longer a
// pure Bélády problem because entries have different *costs* — a 2 MB
// entry covers 512× the reach of a 4 KB entry (§V: "imagine, when one
// entry covers 4KB and another covers 2MB, which one is more important
// to keep?").
//
// The model: one unified set-associative array in which each entry
// records its page size. A lookup probes two sets — the set indexed by
// the 4 KB VPN and the set indexed by the 2 MB VPN — as
// dual-probe hardware designs do. Policies receive the page size with
// every access; CostAware wraps CHiRP's dead-entry machinery with a
// size-aware victim order (dead 4 KB → dead 2 MB → LRU 4 KB-first).
package mixed

import (
	"fmt"

	"github.com/chirplab/chirp/internal/core"
	"github.com/chirplab/chirp/internal/tlb"
)

// PageShift4K and PageShift2M are the two supported page sizes.
const (
	PageShift4K = 12
	PageShift2M = 21
	// span2M is how many 4 KB pages a 2 MB entry covers.
	span2M = 1 << (PageShift2M - PageShift4K)
)

// Size identifies an entry's page size.
type Size uint8

const (
	// Size4K is a base 4 KB page.
	Size4K Size = iota
	// Size2M is a 2 MB superpage.
	Size2M
)

// String returns "4K" or "2M".
func (s Size) String() string {
	if s == Size2M {
		return "2M"
	}
	return "4K"
}

// Access is one mixed-size lookup. VPN4K is always the 4 KB-granular
// virtual page number; Size is the size of the mapping that backs it.
type Access struct {
	PC    uint64
	VPN4K uint64
	Size  Size
	Instr bool
}

// Policy makes replacement decisions for the mixed TLB. The contract
// mirrors tlb.Policy with the page size added.
type Policy interface {
	// Name identifies the policy.
	Name() string
	// Attach sizes metadata.
	Attach(sets, ways int)
	// OnAccess observes every lookup.
	OnAccess(a *Access)
	// OnHit is called when (set, way) hit.
	OnHit(set uint32, way int, a *Access)
	// Victim picks the way to evict in set for an insertion of size
	// a.Size.
	Victim(set uint32, a *Access) int
	// OnInsert is called after the fill of (set, way).
	OnInsert(set uint32, way int, a *Access)
}

// Stats counts mixed-TLB activity, split by page size.
type Stats struct {
	Accesses  uint64
	Hits      uint64
	Misses    uint64
	Misses4K  uint64
	Misses2M  uint64
	Evicted4K uint64
	Evicted2M uint64
	// ReachLostPages accumulates the 4 KB-page reach of evicted live
	// entries — the cost-aware metric (evicting a 2 MB entry loses
	// 512 pages of reach).
	ReachLostPages uint64
}

type entry struct {
	key   uint64 // VPN at the entry's own granularity
	size  Size
	valid bool
	used  bool // hit at least once since fill (for reach-loss accounting)
}

// TLB is the unified mixed-page-size L2 TLB.
type TLB struct {
	sets    int
	ways    int
	setMask uint64
	entries []entry
	policy  Policy
	stats   Stats
}

// New builds a mixed TLB with entries total entries.
func New(entries, ways int, p Policy) (*TLB, error) {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		return nil, fmt.Errorf("mixed: entries (%d) must be a positive multiple of ways (%d)", entries, ways)
	}
	sets := entries / ways
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("mixed: set count %d not a power of two", sets)
	}
	if p == nil {
		return nil, fmt.Errorf("mixed: nil policy")
	}
	t := &TLB{sets: sets, ways: ways, setMask: uint64(sets - 1), entries: make([]entry, entries), policy: p}
	p.Attach(sets, ways)
	return t, nil
}

// setFor returns the set an entry of the given size and 4 KB VPN
// lives in, and the tag key stored there.
func (t *TLB) setFor(vpn4k uint64, size Size) (set uint32, key uint64) {
	if size == Size2M {
		key = vpn4k >> (PageShift2M - PageShift4K)
		return uint32(key & t.setMask), key
	}
	return uint32(vpn4k & t.setMask), vpn4k
}

// Lookup probes both the 4 KB-indexed and 2 MB-indexed sets.
func (t *TLB) Lookup(a *Access) bool {
	t.stats.Accesses++
	t.policy.OnAccess(a)
	// Probe the mapping's own size first, then the other (hardware
	// probes both in parallel; order is unobservable).
	for _, size := range [2]Size{a.Size, 1 - a.Size} {
		set, key := t.setFor(a.VPN4K, size)
		base := int(set) * t.ways
		for w := 0; w < t.ways; w++ {
			e := &t.entries[base+w]
			if e.valid && e.size == size && e.key == key {
				t.stats.Hits++
				e.used = true
				t.policy.OnHit(set, w, a)
				return true
			}
		}
	}
	t.stats.Misses++
	if a.Size == Size2M {
		t.stats.Misses2M++
	} else {
		t.stats.Misses4K++
	}
	return false
}

// Insert fills the translation for a missing Lookup.
func (t *TLB) Insert(a *Access) {
	set, key := t.setFor(a.VPN4K, a.Size)
	base := int(set) * t.ways
	way := -1
	for w := 0; w < t.ways; w++ {
		if !t.entries[base+w].valid {
			way = w
			break
		}
	}
	if way < 0 {
		way = t.policy.Victim(set, a)
		if way < 0 || way >= t.ways {
			panic(fmt.Sprintf("mixed: policy %s returned invalid way %d", t.policy.Name(), way))
		}
		e := &t.entries[base+way]
		if e.size == Size2M {
			t.stats.Evicted2M++
			if e.used {
				t.stats.ReachLostPages += span2M
			}
		} else {
			t.stats.Evicted4K++
			if e.used {
				t.stats.ReachLostPages++
			}
		}
	}
	e := &t.entries[base+way]
	e.key, e.size, e.valid, e.used = key, a.Size, true, false
	t.policy.OnInsert(set, way, a)
}

// EntrySize reports the size of the entry at (set, way); policies use
// it for cost-aware decisions.
func (t *TLB) EntrySize(set uint32, way int) Size {
	return t.entries[int(set)*t.ways+way].size
}

// Stats returns a snapshot.
func (t *TLB) Stats() Stats { return t.stats }

// Sets returns the set count.
func (t *TLB) Sets() int { return t.sets }

// sizeProbe lets policies learn entry sizes without a back-pointer;
// the TLB installs itself into policies implementing it.
type sizeProbe interface {
	setTLB(t *TLB)
}

// AttachTLB wires the TLB into policies that need to inspect entry
// sizes (CostAware). Call after New.
func AttachTLB(t *TLB) {
	if sp, ok := t.policy.(sizeProbe); ok {
		sp.setTLB(t)
	}
}

// LRUPolicy is plain recency replacement for the mixed TLB.
type LRUPolicy struct {
	rec *tlb.Recency
}

// NewLRU returns mixed-size LRU.
func NewLRU() *LRUPolicy { return &LRUPolicy{} }

// Name implements Policy.
func (*LRUPolicy) Name() string { return "mixed-lru" }

// Attach implements Policy.
func (p *LRUPolicy) Attach(sets, ways int) { p.rec = tlb.NewRecency(sets, ways) }

// OnAccess implements Policy.
func (*LRUPolicy) OnAccess(*Access) {}

// OnHit implements Policy.
func (p *LRUPolicy) OnHit(set uint32, way int, _ *Access) { p.rec.Touch(set, way) }

// Victim implements Policy.
func (p *LRUPolicy) Victim(set uint32, _ *Access) int { return p.rec.LRU(set) }

// OnInsert implements Policy.
func (p *LRUPolicy) OnInsert(set uint32, way int, _ *Access) { p.rec.Touch(set, way) }

// CostAware is CHiRP's machinery with a size-aware victim order: dead
// 4 KB entries are evicted before dead 2 MB entries, because a wrong
// eviction costs 512× more reach for a superpage; LRU breaks the tie
// when nothing is predicted dead, again preferring 4 KB entries unless
// the 2 MB entry is clearly colder.
type CostAware struct {
	inner *core.CHiRP
	t     *TLB
	ways  int
	rec   *tlb.Recency
}

// NewCostAware wraps a CHiRP configuration with size-aware victim
// selection.
func NewCostAware(cfg core.Config) (*CostAware, error) {
	inner, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return &CostAware{inner: inner}, nil
}

// Name implements Policy.
func (*CostAware) Name() string { return "mixed-chirp-costaware" }

func (p *CostAware) setTLB(t *TLB) { p.t = t }

// Attach implements Policy.
func (p *CostAware) Attach(sets, ways int) {
	p.inner.Attach(sets, ways)
	p.ways = ways
	p.rec = tlb.NewRecency(sets, ways)
}

// OnBranch forwards the branch stream to CHiRP's histories.
func (p *CostAware) OnBranch(pc uint64, conditional, indirect, taken bool, target uint64) {
	p.inner.OnBranch(pc, conditional, indirect, taken, target)
}

func toTLBAccess(a *Access) *tlb.Access {
	return &tlb.Access{PC: a.PC, VPN: a.VPN4K, Instr: a.Instr}
}

// OnAccess implements Policy.
func (p *CostAware) OnAccess(a *Access) {
	ta := toTLBAccess(a)
	ta.Set = 0 // same-set suppression is not meaningful across dual probes
	p.inner.OnAccess(ta)
}

// OnHit implements Policy.
func (p *CostAware) OnHit(set uint32, way int, a *Access) {
	p.rec.Touch(set, way)
	p.inner.OnHit(set, way, toTLBAccess(a))
}

// Victim implements Policy: dead 4 KB first, then dead 2 MB, then LRU
// with a 4 KB preference among the two least-recent entries.
func (p *CostAware) Victim(set uint32, a *Access) int {
	dead4, dead2 := -1, -1
	for w := 0; w < p.ways; w++ {
		if !p.inner.DeadMarked(set, w) {
			continue
		}
		if p.t != nil && p.t.EntrySize(set, w) == Size2M {
			if dead2 < 0 {
				dead2 = w
			}
		} else if dead4 < 0 {
			dead4 = w
		}
	}
	switch {
	case dead4 >= 0:
		return dead4
	case dead2 >= 0:
		return dead2
	}
	// LRU fallback, preferring a 4 KB entry among the two deepest.
	way := p.rec.LRU(set)
	if p.t != nil && p.t.EntrySize(set, way) == Size2M {
		second, pos := -1, -1
		for w := 0; w < p.ways; w++ {
			if w == way || (p.t != nil && p.t.EntrySize(set, w) == Size2M) {
				continue
			}
			if pp := p.rec.Position(set, w); pp > pos {
				second, pos = w, pp
			}
		}
		if second >= 0 && pos >= p.ways-2 {
			way = second
		}
	}
	p.inner.TrainVictimDead(set, way)
	return way
}

// OnInsert implements Policy.
func (p *CostAware) OnInsert(set uint32, way int, a *Access) {
	p.rec.Touch(set, way)
	p.inner.OnInsert(set, way, toTLBAccess(a))
}
