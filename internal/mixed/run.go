package mixed

import (
	"fmt"

	"github.com/chirplab/chirp/internal/policy"
	"github.com/chirplab/chirp/internal/tlb"
	"github.com/chirplab/chirp/internal/trace"
	"github.com/chirplab/chirp/internal/workloads"
)

// HugeThresholdPages classifies workload regions: data regions at
// least this many 4 KB pages are considered 2 MB-backed in the
// mixed-size experiment (an OS that promotes large allocations, as THP
// does).
const HugeThresholdPages = 2048

// classifier marks which 4 KB VPNs are backed by 2 MB pages.
type classifier struct {
	ranges [][2]uint64 // [base4k, end4k)
}

func newClassifier(prog *workloads.Program) *classifier {
	c := &classifier{}
	if prog == nil {
		// Composite (multi-tenant) workloads have no single program;
		// without region bounds everything stays 4 KB-backed.
		return c
	}
	for _, r := range prog.Regions {
		if r.Pages >= HugeThresholdPages {
			c.ranges = append(c.ranges, [2]uint64{r.BasePage, r.BasePage + r.Pages})
		}
	}
	return c
}

func (c *classifier) sizeOf(vpn4k uint64) Size {
	for _, rg := range c.ranges {
		if vpn4k >= rg[0] && vpn4k < rg[1] {
			return Size2M
		}
	}
	return Size4K
}

// Result reports one mixed-size run.
type Result struct {
	Policy       string
	Instructions uint64
	MPKI         float64
	Stats        Stats
	// ReachLostPerKI is the reach-weighted cost metric: 4 KB-page
	// equivalents of live reach evicted per kilo-instruction.
	ReachLostPerKI float64
	HugeShare      float64 // fraction of L2 accesses that were 2 MB-backed
}

// branchObserver mirrors tlb.BranchObserver for mixed policies.
type branchObserver interface {
	OnBranch(pc uint64, conditional, indirect, taken bool, target uint64)
}

// Run drives a workload through L1 TLBs (LRU) and the mixed-size L2
// under p. Regions of HugeThresholdPages or more are 2 MB-backed.
func Run(w *workloads.Workload, p Policy, instructions uint64) (Result, error) {
	cls := newClassifier(w.Program())
	src := trace.NewLimit(w.Source(), instructions)

	l1i, err := tlb.New(tlb.Config{Name: "L1I", Entries: 64, Ways: 8, PageShift: 12}, policy.NewLRU())
	if err != nil {
		return Result{}, err
	}
	defer l1i.Release()
	l1d, err := tlb.New(tlb.Config{Name: "L1D", Entries: 64, Ways: 8, PageShift: 12}, policy.NewLRU())
	if err != nil {
		return Result{}, err
	}
	defer l1d.Release()
	l2, err := New(1024, 8, p)
	if err != nil {
		return Result{}, err
	}
	AttachTLB(l2)
	bo, hasBO := p.(branchObserver)

	var (
		instr   uint64
		hugeAcc uint64
		rec     trace.Record
	)
	access := func(l1 *tlb.TLB, pc, va uint64, instrSide bool) {
		vpn4k := va >> PageShift4K
		size := cls.sizeOf(vpn4k)
		// L1 entries cover the mapping's full span: key them at the
		// mapping granularity, tagged by size so the two spaces never
		// collide.
		l1key := vpn4k
		if size == Size2M {
			l1key = vpn4k>>9 | 1<<62
		}
		a1 := tlb.Access{PC: pc, VPN: l1key, Instr: instrSide}
		if _, hit := l1.Lookup(&a1); hit {
			return
		}
		a2 := Access{PC: pc, VPN4K: vpn4k, Size: size, Instr: instrSide}
		if size == Size2M {
			hugeAcc++
		}
		if !l2.Lookup(&a2) {
			l2.Insert(&a2)
		}
		l1.Insert(&a1, 1)
	}
	for src.Next(&rec) {
		instr += rec.Instructions()
		access(l1i, rec.PC, rec.PC, true)
		switch {
		case rec.Class.IsMemory():
			access(l1d, rec.PC, rec.EA, false)
		case rec.Class.IsBranch():
			if hasBO {
				bo.OnBranch(rec.PC,
					rec.Class == trace.ClassCondBranch,
					rec.Class == trace.ClassUncondIndirect,
					rec.Taken, rec.Target)
			}
		}
	}
	st := l2.Stats()
	res := Result{
		Policy:       p.Name(),
		Instructions: instr,
		Stats:        st,
	}
	if instr > 0 {
		res.MPKI = float64(st.Misses) / (float64(instr) / 1000)
		res.ReachLostPerKI = float64(st.ReachLostPages) / (float64(instr) / 1000)
	}
	if st.Accesses > 0 {
		res.HugeShare = float64(hugeAcc) / float64(st.Accesses)
	}
	return res, nil
}

// CompareOnSuite runs the mixed-size comparison (LRU vs cost-aware
// CHiRP) over the first n workloads that actually have 2 MB-backed
// regions, and returns rows of results.
func CompareOnSuite(n int, instructions uint64, mkPolicies func() []Policy) ([][]Result, error) {
	var rows [][]Result
	for _, w := range workloads.SuiteN(4 * n) {
		if len(rows) >= n {
			break
		}
		if len(newClassifier(w.Program()).ranges) == 0 {
			continue
		}
		var row []Result
		for _, p := range mkPolicies() {
			r, err := Run(w, p, instructions)
			if err != nil {
				return nil, fmt.Errorf("mixed: %s/%s: %w", w.Name, p.Name(), err)
			}
			row = append(row, r)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
