// Package mem models the cache hierarchy of Table II: L1 instruction
// and data caches, a unified L2, a unified L3, and DRAM, all as
// set-associative write-allocate caches with LRU replacement and
// fixed per-level latencies. The model is timing-approximate in the
// paper's sense: each access returns the latency of the level that
// served it; misses recurse into the next level.
package mem

import "fmt"

// Config describes one cache level.
type Config struct {
	// Name labels the cache in reports.
	Name string
	// SizeBytes is the total capacity.
	SizeBytes int
	// LineBytes is the block size (64 in Table II's machine).
	LineBytes int
	// Ways is the associativity.
	Ways int
	// LatencyCycles is the access (hit) latency.
	LatencyCycles uint64
}

// Validate checks the geometry.
func (c *Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("mem %q: size, line and ways must be positive", c.Name)
	}
	if c.SizeBytes%(c.LineBytes*c.Ways) != 0 {
		return fmt.Errorf("mem %q: size %d not divisible by line×ways", c.Name, c.SizeBytes)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Ways)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("mem %q: set count %d not a power of two", c.Name, sets)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("mem %q: line size %d not a power of two", c.Name, c.LineBytes)
	}
	return nil
}

// Stats counts per-level activity.
type Stats struct {
	Accesses uint64
	Hits     uint64
	Misses   uint64
}

// Cache is one set-associative, LRU-replaced cache level.
type Cache struct {
	cfg       Config
	sets      int
	setMask   uint64
	lineShift uint
	tags      []uint64
	valid     []bool
	lru       []uint8
	stats     Stats
	next      Level
}

// Level is anything that can serve an access and report its latency:
// another cache, or Memory.
type Level interface {
	// Access reads or writes the line containing addr, returning the
	// total latency in cycles including lower levels.
	Access(addr uint64, write bool) uint64
	// Name labels the level.
	Name() string
}

// NewCache builds a cache over the given next level.
func NewCache(cfg Config, next Level) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if next == nil {
		return nil, fmt.Errorf("mem %q: nil next level", cfg.Name)
	}
	sets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	lineShift := uint(0)
	for 1<<lineShift < cfg.LineBytes {
		lineShift++
	}
	c := &Cache{
		cfg:       cfg,
		sets:      sets,
		setMask:   uint64(sets - 1),
		lineShift: lineShift,
		tags:      make([]uint64, sets*cfg.Ways),
		valid:     make([]bool, sets*cfg.Ways),
		lru:       make([]uint8, sets*cfg.Ways),
		next:      next,
	}
	for s := 0; s < sets; s++ {
		for w := 0; w < cfg.Ways; w++ {
			c.lru[s*cfg.Ways+w] = uint8(w)
		}
	}
	return c, nil
}

// Name implements Level.
func (c *Cache) Name() string { return c.cfg.Name }

// Config returns the level's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

func (c *Cache) touch(base, way int) {
	p := c.lru[base+way]
	for w := 0; w < c.cfg.Ways; w++ {
		if c.lru[base+w] < p {
			c.lru[base+w]++
		}
	}
	c.lru[base+way] = 0
}

// Access implements Level: LRU write-allocate lookup; a miss recurses
// into the next level and fills.
func (c *Cache) Access(addr uint64, write bool) uint64 {
	c.stats.Accesses++
	line := addr >> c.lineShift
	set := int(line & c.setMask)
	tag := line >> uint(log2(c.sets))
	base := set * c.cfg.Ways

	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			c.stats.Hits++
			c.touch(base, w)
			return c.cfg.LatencyCycles
		}
	}
	c.stats.Misses++
	lower := c.next.Access(addr, write)

	// Fill: invalid way first, else LRU.
	victim := -1
	for w := 0; w < c.cfg.Ways; w++ {
		if !c.valid[base+w] {
			victim = w
			break
		}
	}
	if victim < 0 {
		worst := uint8(0)
		for w := 0; w < c.cfg.Ways; w++ {
			if c.lru[base+w] >= worst {
				worst, victim = c.lru[base+w], w
			}
		}
	}
	c.tags[base+victim] = tag
	c.valid[base+victim] = true
	c.touch(base, victim)
	return c.cfg.LatencyCycles + lower
}

func log2(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}

// Memory is the DRAM terminal level with a flat latency.
type Memory struct {
	Latency  uint64
	accesses uint64
}

// NewMemory returns DRAM with the given flat latency (240 cycles in
// Table II).
func NewMemory(latency uint64) *Memory { return &Memory{Latency: latency} }

// Name implements Level.
func (*Memory) Name() string { return "DRAM" }

// Access implements Level.
func (m *Memory) Access(uint64, bool) uint64 {
	m.accesses++
	return m.Latency
}

// Accesses returns how many requests reached DRAM.
func (m *Memory) Accesses() uint64 { return m.accesses }

// Hierarchy bundles the Table II cache stack.
type Hierarchy struct {
	L1I  *Cache
	L1D  *Cache
	L2   *Cache
	L3   *Cache
	DRAM *Memory
}

// HierarchyConfig parameterises NewHierarchy; DefaultHierarchyConfig
// is Table II.
type HierarchyConfig struct {
	L1I, L1D, L2, L3 Config
	DRAMLatency      uint64
}

// DefaultHierarchyConfig returns Table II: 64 KB 8-way L1s (4 cycles),
// 256 KB 16-way L2 (12 cycles), 8 MB 16-way L3 (42 cycles), 240-cycle
// DRAM, 64-byte lines.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1I:         Config{Name: "L1I", SizeBytes: 64 << 10, LineBytes: 64, Ways: 8, LatencyCycles: 4},
		L1D:         Config{Name: "L1D", SizeBytes: 64 << 10, LineBytes: 64, Ways: 8, LatencyCycles: 4},
		L2:          Config{Name: "L2", SizeBytes: 256 << 10, LineBytes: 64, Ways: 16, LatencyCycles: 12},
		L3:          Config{Name: "L3", SizeBytes: 8 << 20, LineBytes: 64, Ways: 16, LatencyCycles: 42},
		DRAMLatency: 240,
	}
}

// NewHierarchy assembles the cache stack.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	dram := NewMemory(cfg.DRAMLatency)
	l3, err := NewCache(cfg.L3, dram)
	if err != nil {
		return nil, err
	}
	l2, err := NewCache(cfg.L2, l3)
	if err != nil {
		return nil, err
	}
	l1i, err := NewCache(cfg.L1I, l2)
	if err != nil {
		return nil, err
	}
	l1d, err := NewCache(cfg.L1D, l2)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{L1I: l1i, L1D: l1d, L2: l2, L3: l3, DRAM: dram}, nil
}

// FetchLatency serves an instruction fetch from physical address pa.
func (h *Hierarchy) FetchLatency(pa uint64) uint64 { return h.L1I.Access(pa, false) }

// DataLatency serves a load or store from physical address pa.
func (h *Hierarchy) DataLatency(pa uint64, write bool) uint64 { return h.L1D.Access(pa, write) }
