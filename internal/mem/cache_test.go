package mem

import "testing"

func testHierarchy(t *testing.T) *Hierarchy {
	t.Helper()
	h, err := NewHierarchy(DefaultHierarchyConfig())
	if err != nil {
		t.Fatalf("NewHierarchy: %v", err)
	}
	return h
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Name: "zero", SizeBytes: 0, LineBytes: 64, Ways: 8},
		{Name: "odd-size", SizeBytes: 1000, LineBytes: 64, Ways: 8},
		{Name: "sets-not-pow2", SizeBytes: 3 * 64 * 8, LineBytes: 64, Ways: 8},
		{Name: "line-not-pow2", SizeBytes: 48 * 8 * 2, LineBytes: 48, Ways: 8},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %q accepted", cfg.Name)
		}
	}
	good := DefaultHierarchyConfig().L1I
	if err := good.Validate(); err != nil {
		t.Errorf("default L1I rejected: %v", err)
	}
}

func TestCacheHitAfterFill(t *testing.T) {
	h := testHierarchy(t)
	const addr = 0x12345678
	lat1 := h.L1D.Access(addr, false)
	lat2 := h.L1D.Access(addr, false)
	// First access: 4 (L1) + 12 (L2) + 42 (L3) + 240 (DRAM) = 298.
	if lat1 != 298 {
		t.Errorf("cold access latency = %d, want 298", lat1)
	}
	if lat2 != 4 {
		t.Errorf("warm access latency = %d, want 4 (L1 hit)", lat2)
	}
	st := h.L1D.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("L1D stats = %+v, want 1 hit / 1 miss", st)
	}
	if h.DRAM.Accesses() != 1 {
		t.Errorf("DRAM accesses = %d, want 1", h.DRAM.Accesses())
	}
}

func TestSameLineSharesEntry(t *testing.T) {
	h := testHierarchy(t)
	h.L1D.Access(0x1000, false)
	if lat := h.L1D.Access(0x103f, false); lat != 4 {
		t.Errorf("same-line access latency = %d, want 4", lat)
	}
	if lat := h.L1D.Access(0x1040, false); lat == 4 {
		t.Error("next line must miss")
	}
}

func TestCacheLRUWithinSet(t *testing.T) {
	cfg := Config{Name: "tiny", SizeBytes: 2 * 64 * 2, LineBytes: 64, Ways: 2, LatencyCycles: 1}
	c, err := NewCache(cfg, NewMemory(100))
	if err != nil {
		t.Fatal(err)
	}
	// Set stride: 2 sets → lines with equal low bit share a set.
	a, b, d := uint64(0x0000), uint64(0x0080), uint64(0x0100) // lines 0, 2, 4 → all set 0
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // refresh a; b becomes LRU
	c.Access(d, false) // evicts b
	if lat := c.Access(a, false); lat != 1 {
		t.Errorf("a evicted unexpectedly (lat %d)", lat)
	}
	if lat := c.Access(b, false); lat == 1 {
		t.Error("b should have been evicted")
	}
}

func TestL2SharedBetweenL1s(t *testing.T) {
	h := testHierarchy(t)
	h.L1I.Access(0x4000, false) // fills L2 too
	lat := h.L1D.Access(0x4000, false)
	// L1D miss, L2 hit: 4 + 12 = 16.
	if lat != 16 {
		t.Errorf("cross-L1 access latency = %d, want 16 (L2 hit)", lat)
	}
}

func TestFetchAndDataHelpers(t *testing.T) {
	h := testHierarchy(t)
	if lat := h.FetchLatency(0x8000); lat != 298 {
		t.Errorf("FetchLatency cold = %d, want 298", lat)
	}
	if lat := h.DataLatency(0x8000, true); lat != 16 {
		t.Errorf("DataLatency after fetch = %d, want 16 (shared L2)", lat)
	}
}

func TestNewCacheRejectsNilNext(t *testing.T) {
	if _, err := NewCache(DefaultHierarchyConfig().L1I, nil); err == nil {
		t.Fatal("NewCache accepted nil next level")
	}
}
