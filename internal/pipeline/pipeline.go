// Package pipeline is the timing-approximate performance model of §V:
// an in-order pipeline charging first-order latency sources — the
// two-level TLB hierarchy with page walks, the L1/L2/L3/DRAM cache
// stack, and a hashed-perceptron branch unit with BTB and indirect
// predictor (20-cycle misprediction penalty). IPC from this model
// drives the paper's speedup figures (Figures 8 and 10).
package pipeline

import (
	"fmt"

	"github.com/chirplab/chirp/internal/branch"
	"github.com/chirplab/chirp/internal/mem"
	"github.com/chirplab/chirp/internal/paging"
	"github.com/chirplab/chirp/internal/tlb"
	"github.com/chirplab/chirp/internal/trace"
)

// Config parameterises one timing run.
type Config struct {
	// Mem is the cache stack (Table II defaults).
	Mem mem.HierarchyConfig
	// L1ITLB, L1DTLB, L2TLB are the TLB geometries (Table II defaults).
	L1ITLB, L1DTLB, L2TLB tlb.Config
	// L2TLBHitLatency is charged when an L1 TLB miss hits the L2 TLB
	// (8 cycles in Table II).
	L2TLBHitLatency uint64
	// WalkPenalty is the flat L2-TLB-miss penalty (Table II: 20–360
	// swept; 150 for the headline speedup). Ignored when UseRadixWalker
	// is set.
	WalkPenalty uint64
	// UseRadixWalker replaces the flat penalty with real 4-level walks
	// through the cache hierarchy (extension X2).
	UseRadixWalker bool
	// PSC sizes the radix walker's paging-structure caches.
	PSC paging.PSCConfig
	// MispredictPenalty is the front-end redirect cost (Table II: 20).
	MispredictPenalty uint64
	// ModelWrongPath, when set, charges mispredictions with wrong-path
	// instruction fetches that pollute the L1 i-cache (page walks for
	// wrong-path fetches are assumed squashed before they complete, so
	// the TLBs and prediction tables stay clean — §VI-E: CHiRP "only
	// updates the tables of counters at commit with right-path
	// branches").
	ModelWrongPath bool
	// Alloc selects the physical allocator.
	Alloc paging.AllocPolicy
	// Instructions bounds the run (0 = drain the source).
	Instructions uint64
	// WarmupFraction of instructions warms all structures before IPC
	// and MPKI measurement begin (the paper warms on the first half).
	WarmupFraction float64
}

// DefaultConfig returns the Table II machine with the given
// instruction budget and page-walk penalty.
func DefaultConfig(instructions, walkPenalty uint64) Config {
	return Config{
		Mem:               mem.DefaultHierarchyConfig(),
		L1ITLB:            tlb.Config{Name: "L1 iTLB", Entries: 64, Ways: 8, PageShift: 12},
		L1DTLB:            tlb.Config{Name: "L1 dTLB", Entries: 64, Ways: 8, PageShift: 12},
		L2TLB:             tlb.Config{Name: "L2 TLB", Entries: 1024, Ways: 8, PageShift: 12},
		L2TLBHitLatency:   8,
		WalkPenalty:       walkPenalty,
		MispredictPenalty: 20,
		Instructions:      instructions,
		WarmupFraction:    0.5,
	}
}

// Result reports one timing run.
type Result struct {
	Policy       string
	Instructions uint64 // measured (post-warmup)
	Cycles       uint64 // measured (post-warmup)
	IPC          float64
	L2TLBMisses  uint64 // post-warmup
	MPKI         float64
	L2TLBStats   tlb.Stats // whole run
	Efficiency   float64

	BranchAccuracy float64
	BTBHitRatio    float64
	IndirectHit    float64
	PageWalks      uint64
	AvgWalkCycles  float64
	PageFaults     uint64
	DRAMAccesses   uint64
}

// Machine is one assembled simulated core; build with New, drive with
// Run.
type Machine struct {
	cfg    Config
	mem    *mem.Hierarchy
	l1i    *tlb.TLB
	l1d    *tlb.TLB
	l2     *tlb.TLB
	l2pol  tlb.Policy
	bo     tlb.BranchObserver
	hasBO  bool
	space  *paging.Space
	walker paging.Walker
	pred   *branch.Perceptron
	btb    *branch.BTB
	ind    *branch.Indirect
}

// New assembles a machine around the injected L2 TLB policy. The L1
// TLBs always run LRU, matching the paper's setup.
func New(cfg Config, l2Policy tlb.Policy, l1Factory func() tlb.Policy) (*Machine, error) {
	if l1Factory == nil {
		return nil, fmt.Errorf("pipeline: nil L1 policy factory")
	}
	h, err := mem.NewHierarchy(cfg.Mem)
	if err != nil {
		return nil, err
	}
	l1i, err := tlb.New(cfg.L1ITLB, l1Factory())
	if err != nil {
		return nil, err
	}
	l1d, err := tlb.New(cfg.L1DTLB, l1Factory())
	if err != nil {
		l1i.Release()
		return nil, err
	}
	l2, err := tlb.New(cfg.L2TLB, l2Policy)
	if err != nil {
		l1i.Release()
		l1d.Release()
		return nil, err
	}
	space := paging.NewSpace(cfg.Alloc, 1)
	var walker paging.Walker
	if cfg.UseRadixWalker {
		// PTE fetches enter the hierarchy at the unified L2 cache, as
		// hardware walkers do.
		walker = paging.NewRadixWalker(space, h.L2, cfg.PSC)
	} else {
		walker = paging.NewFixedWalker(space, cfg.WalkPenalty)
	}
	m := &Machine{
		cfg: cfg, mem: h, l1i: l1i, l1d: l1d, l2: l2, l2pol: l2Policy,
		space: space, walker: walker,
		pred: branch.NewPerceptron(branch.DefaultPerceptronConfig()),
		btb:  branch.NewBTB(4096, 4),
		ind:  branch.NewIndirect(4096),
	}
	m.bo, m.hasBO = l2Policy.(tlb.BranchObserver)
	return m, nil
}

// translate resolves va through the two-level TLB hierarchy, returning
// the physical address and the translation cycles beyond an L1 TLB
// hit.
func (m *Machine) translate(l1 *tlb.TLB, pc, va uint64, instr bool) (pa uint64, cycles uint64) {
	vpn := va >> m.cfg.L2TLB.PageShift
	a := tlb.Access{PC: pc, VPN: vpn, Instr: instr}
	if ppn, hit := l1.Lookup(&a); hit {
		return ppn<<m.cfg.L2TLB.PageShift | va&0xfff, 0
	}
	a2 := tlb.Access{PC: pc, VPN: vpn, Instr: instr}
	if ppn, hit := m.l2.Lookup(&a2); hit {
		l1.Insert(&a, ppn)
		return ppn<<m.cfg.L2TLB.PageShift | va&0xfff, m.cfg.L2TLBHitLatency
	}
	ppn, walkCycles := m.walker.Walk(vpn)
	m.l2.Insert(&a2, ppn)
	l1.Insert(&a, ppn)
	return ppn<<m.cfg.L2TLB.PageShift | va&0xfff, m.cfg.L2TLBHitLatency + walkCycles
}

// Run drives src to completion (or the configured budget) and returns
// the post-warmup result.
func (m *Machine) Run(src trace.Source) (Result, error) {
	var (
		instructions uint64
		cycles       uint64
		rec          trace.Record

		warmupAt  = uint64(float64(m.cfg.Instructions) * m.cfg.WarmupFraction)
		warmed    = warmupAt == 0
		warmInstr uint64
		warmCyc   uint64
		warmMiss  uint64
	)
	l1iLat := m.cfg.Mem.L1I.LatencyCycles
	l1dLat := m.cfg.Mem.L1D.LatencyCycles

	for src.Next(&rec) {
		instructions += rec.Instructions()
		cycles += uint64(rec.Skip) + 1 // base CPI of 1

		if !warmed && instructions >= warmupAt {
			warmed = true
			warmInstr, warmCyc = instructions, cycles
			warmMiss = m.l2.Stats().Misses
		}

		// Fetch: translation plus i-cache beyond the pipelined L1 hit.
		pa, tcyc := m.translate(m.l1i, rec.PC, rec.PC, true)
		cycles += tcyc
		if fl := m.mem.FetchLatency(pa); fl > l1iLat {
			cycles += fl - l1iLat
		}

		switch {
		case rec.Class.IsMemory():
			pa, tcyc := m.translate(m.l1d, rec.PC, rec.EA, false)
			cycles += tcyc
			if dl := m.mem.DataLatency(pa, rec.Class == trace.ClassStore); dl > l1dLat {
				cycles += dl - l1dLat
			}
		case rec.Class == trace.ClassCondBranch:
			m.pred.Predict(rec.PC) // latches state consumed by Train
			target, btbHit := m.btb.Lookup(rec.PC)
			correct := m.pred.Train(rec.Taken)
			// A taken branch also needs the right target from the BTB.
			if !correct || (rec.Taken && (!btbHit || target != rec.Target)) {
				cycles += m.cfg.MispredictPenalty
				if m.cfg.ModelWrongPath {
					m.fetchWrongPath(rec.PC, rec.Target, rec.Taken)
				}
			}
			if rec.Taken {
				m.btb.Update(rec.PC, rec.Target)
			}
			if m.hasBO {
				m.bo.OnBranch(rec.PC, true, false, rec.Taken, rec.Target)
			}
		case rec.Class == trace.ClassUncondDirect:
			target, btbHit := m.btb.Lookup(rec.PC)
			if !btbHit || target != rec.Target {
				cycles += m.cfg.MispredictPenalty
			}
			m.btb.Update(rec.PC, rec.Target)
			if m.hasBO {
				m.bo.OnBranch(rec.PC, false, false, true, rec.Target)
			}
		case rec.Class == trace.ClassUncondIndirect:
			target, hit := m.ind.Predict(rec.PC)
			if !hit || target != rec.Target {
				cycles += m.cfg.MispredictPenalty
			}
			m.ind.Update(rec.PC, rec.Target)
			if m.hasBO {
				m.bo.OnBranch(rec.PC, false, true, true, rec.Target)
			}
		}

		if m.cfg.Instructions > 0 && instructions >= m.cfg.Instructions {
			break
		}
	}
	if !warmed {
		return Result{}, fmt.Errorf("pipeline: trace ended before warmup (%d < %d instructions)", instructions, warmupAt)
	}

	m.l2.FlushAccounting()
	st := m.l2.Stats()
	res := Result{
		Policy:         m.l2pol.Name(),
		Instructions:   instructions - warmInstr,
		Cycles:         cycles - warmCyc,
		L2TLBMisses:    st.Misses - warmMiss,
		L2TLBStats:     st,
		Efficiency:     st.Efficiency(),
		BranchAccuracy: m.pred.Accuracy(),
		BTBHitRatio:    m.btb.HitRatio(),
		IndirectHit:    m.ind.HitRatio(),
		PageFaults:     m.space.PageFaults(),
		DRAMAccesses:   m.mem.DRAM.Accesses(),
	}
	if res.Cycles > 0 {
		res.IPC = float64(res.Instructions) / float64(res.Cycles)
	}
	if res.Instructions > 0 {
		res.MPKI = float64(res.L2TLBMisses) / (float64(res.Instructions) / 1000)
	}
	switch w := m.walker.(type) {
	case *paging.FixedWalker:
		res.PageWalks = w.Walks()
		res.AvgWalkCycles = float64(m.cfg.WalkPenalty)
	case *paging.RadixWalker:
		walks, _, _, _ := w.Stats()
		res.PageWalks = walks
		res.AvgWalkCycles = w.AverageLatency()
	}
	return res, nil
}

// fetchWrongPath models the fetches issued down the wrong path before
// a misprediction resolves: a handful of straight-line lines from the
// not-taken (or wrongly predicted) target enter the L1 i-cache. The
// lines come from code the program does execute elsewhere, so the
// pollution is displacement, not garbage.
func (m *Machine) fetchWrongPath(pc, target uint64, taken bool) {
	wrong := target
	if taken {
		// The branch was taken but we went (or stayed) the wrong way:
		// fall-through fetches.
		wrong = pc + 4
	}
	const wrongPathLines = 5
	for i := uint64(0); i < wrongPathLines; i++ {
		// Virtual-address fetch without translation: wrong-path walks
		// squash, so charge only the i-cache pollution at the identity
		// frame (the cache is physically indexed on the same geometry).
		m.mem.L1I.Access(wrong+i*64, false)
	}
}

// Mem exposes the cache hierarchy (for reports and tests).
func (m *Machine) Mem() *mem.Hierarchy { return m.mem }

// L2TLB exposes the second-level TLB (for reports and tests).
func (m *Machine) L2TLB() *tlb.TLB { return m.l2 }
