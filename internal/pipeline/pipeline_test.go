package pipeline

import (
	"testing"

	"github.com/chirplab/chirp/internal/core"
	"github.com/chirplab/chirp/internal/policy"
	"github.com/chirplab/chirp/internal/tlb"
	"github.com/chirplab/chirp/internal/trace"
	"github.com/chirplab/chirp/internal/workloads"
)

func lruFactory() tlb.Policy { return policy.NewLRU() }

func runOn(t *testing.T, name string, cfg Config, p tlb.Policy) Result {
	t.Helper()
	w := workloads.ByName(name)
	if w == nil {
		t.Fatalf("workload %s missing", name)
	}
	m, err := New(cfg, p, lruFactory)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(trace.NewLimit(w.Source(), cfg.Instructions))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestIPCPlausible(t *testing.T) {
	cfg := DefaultConfig(150_000, 150)
	res := runOn(t, "spec-000", cfg, policy.NewLRU())
	if res.IPC <= 0 || res.IPC > 1 {
		t.Fatalf("IPC = %v, want (0, 1] for an in-order model", res.IPC)
	}
	if res.Instructions == 0 || res.Cycles < res.Instructions {
		t.Fatalf("cycles (%d) must be at least instructions (%d)", res.Cycles, res.Instructions)
	}
	if res.BranchAccuracy <= 0.5 || res.BranchAccuracy > 1 {
		t.Errorf("branch accuracy = %v implausible", res.BranchAccuracy)
	}
	if res.PageWalks == 0 || res.PageFaults == 0 {
		t.Errorf("no page activity: %+v", res)
	}
}

func TestDeterministic(t *testing.T) {
	cfg := DefaultConfig(120_000, 150)
	a := runOn(t, "db-000", cfg, policy.NewSRRIP())
	b := runOn(t, "db-000", cfg, policy.NewSRRIP())
	if a.Cycles != b.Cycles || a.L2TLBMisses != b.L2TLBMisses {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestHigherWalkPenaltySlower(t *testing.T) {
	low := runOn(t, "db-000", DefaultConfig(150_000, 20), policy.NewLRU())
	high := runOn(t, "db-000", DefaultConfig(150_000, 340), policy.NewLRU())
	if high.IPC >= low.IPC {
		t.Errorf("340-cycle walks (IPC %v) must be slower than 20-cycle walks (IPC %v)", high.IPC, low.IPC)
	}
	// Miss counts are penalty-independent.
	if high.L2TLBMisses != low.L2TLBMisses {
		t.Errorf("misses changed with penalty: %d vs %d", high.L2TLBMisses, low.L2TLBMisses)
	}
}

func TestCHiRPSpeedsUpPressureWorkload(t *testing.T) {
	// db-000 is a pressure-profile workload where CHiRP cuts misses
	// substantially; with a 150-cycle walk that must surface as IPC.
	cfg := DefaultConfig(400_000, 150)
	lru := runOn(t, "db-000", cfg, policy.NewLRU())
	chirp := runOn(t, "db-000", cfg, core.MustNew(core.DefaultConfig()))
	if chirp.MPKI >= lru.MPKI {
		t.Fatalf("CHiRP MPKI %v not below LRU %v on db-000", chirp.MPKI, lru.MPKI)
	}
	if chirp.IPC <= lru.IPC {
		t.Errorf("CHiRP IPC %v not above LRU %v despite fewer misses", chirp.IPC, lru.IPC)
	}
}

func TestRadixWalkerRuns(t *testing.T) {
	cfg := DefaultConfig(150_000, 150)
	cfg.UseRadixWalker = true
	cfg.PSC.EntriesPerLevel = 32
	res := runOn(t, "spec-000", cfg, policy.NewLRU())
	if res.PageWalks == 0 {
		t.Fatal("radix walker recorded no walks")
	}
	if res.AvgWalkCycles <= 0 {
		t.Errorf("avg walk cycles = %v, want positive", res.AvgWalkCycles)
	}
	// Warm PSCs + caches should make average walks far cheaper than 4
	// DRAM accesses.
	if res.AvgWalkCycles > 500 {
		t.Errorf("avg walk cycles = %v implausibly high", res.AvgWalkCycles)
	}
}

func TestWarmupRequired(t *testing.T) {
	cfg := DefaultConfig(1_000_000, 150)
	w := workloads.ByName("spec-000")
	m, err := New(cfg, policy.NewLRU(), lruFactory)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(trace.NewLimit(w.Source(), 1000)); err == nil {
		t.Fatal("short trace must fail warmup")
	}
}

func TestNilL1Factory(t *testing.T) {
	if _, err := New(DefaultConfig(1000, 150), policy.NewLRU(), nil); err == nil {
		t.Fatal("nil L1 factory accepted")
	}
}

func TestFragmentedAllocStillCorrect(t *testing.T) {
	cfg := DefaultConfig(120_000, 150)
	cfg.Alloc = 1 // paging.AllocFragmented
	res := runOn(t, "web-000", cfg, policy.NewLRU())
	if res.IPC <= 0 {
		t.Fatalf("fragmented allocation broke the run: %+v", res)
	}
}
