package pipeline

import (
	"testing"

	"github.com/chirplab/chirp/internal/core"
	"github.com/chirplab/chirp/internal/policy"
	"github.com/chirplab/chirp/internal/trace"
)

// scripted builds a source from an explicit record list repeated n
// times.
func scripted(recs []trace.Record, n int) trace.Source {
	all := make([]trace.Record, 0, len(recs)*n)
	for i := 0; i < n; i++ {
		all = append(all, recs...)
	}
	return trace.NewSliceSource(all)
}

func TestPredictableBranchesConvergeToNoPenalty(t *testing.T) {
	// A tight always-taken loop: after warmup the branch unit must
	// predict direction and target, so cycles/instruction approaches
	// the base CPI.
	loop := []trace.Record{
		{PC: 0x400000, Class: trace.ClassALU, Skip: 7},
		{PC: 0x400020, Class: trace.ClassCondBranch, Taken: true, Target: 0x400000, Skip: 0},
	}
	cfg := DefaultConfig(100_000, 150)
	m, err := New(cfg, policy.NewLRU(), lruFactory)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(trace.NewLimit(scripted(loop, 100_000), 100_000))
	if err != nil {
		t.Fatal(err)
	}
	cpi := float64(res.Cycles) / float64(res.Instructions)
	if cpi > 1.1 {
		t.Errorf("predictable loop CPI = %.3f, want ≈ 1 (branch unit not converging)", cpi)
	}
	if res.BranchAccuracy < 0.99 {
		t.Errorf("branch accuracy = %.4f, want ≈ 1", res.BranchAccuracy)
	}
}

func TestRandomBranchesPayThePenalty(t *testing.T) {
	// Alternating-direction branch with data-random pattern cannot be
	// fully predicted when the outcome is truly random; CPI must carry
	// misprediction penalties.
	rng := trace.NewRNG(3)
	var recs []trace.Record
	for i := 0; i < 50_000; i++ {
		taken := rng.Bool(0.5)
		target := uint64(0x400100)
		recs = append(recs, trace.Record{PC: 0x400000, Class: trace.ClassALU, Skip: 3})
		recs = append(recs, trace.Record{PC: 0x400010, Class: trace.ClassCondBranch, Taken: taken, Target: target})
	}
	cfg := DefaultConfig(uint64(len(recs)*5), 150)
	m, err := New(cfg, policy.NewLRU(), lruFactory)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(trace.NewSliceSource(recs))
	if err != nil {
		t.Fatal(err)
	}
	if res.BranchAccuracy > 0.75 {
		t.Errorf("random branch accuracy = %.3f, implausibly high", res.BranchAccuracy)
	}
	cpi := float64(res.Cycles) / float64(res.Instructions)
	if cpi < 1.5 {
		t.Errorf("random-branch CPI = %.3f, want ≥ 1.5 (20-cycle penalties missing)", cpi)
	}
}

func TestCHiRPHistoriesFedByPipeline(t *testing.T) {
	// Branch records must reach the CHiRP policy through the pipeline's
	// commit path.
	ch := core.MustNew(core.DefaultConfig())
	cfg := DefaultConfig(50_000, 150)
	m, err := New(cfg, ch, lruFactory)
	if err != nil {
		t.Fatal(err)
	}
	// PCs carry non-zero bits in the ranges the histories record
	// ([11:4] for branches, [3:2] for the path).
	recs := []trace.Record{
		{PC: 0x4002b4, Class: trace.ClassCondBranch, Taken: true, Target: 0x400310, Skip: 4},
		{PC: 0x40031c, Class: trace.ClassLoad, EA: 0x10000000, Skip: 4},
		{PC: 0x4003d8, Class: trace.ClassUncondIndirect, Taken: true, Target: 0x4002b4, Skip: 4},
	}
	if _, err := m.Run(trace.NewLimit(scripted(recs, 10_000), 50_000)); err != nil {
		t.Fatal(err)
	}
	h := ch.Histories()
	if h.Cond() == 0 {
		t.Error("conditional history never fed by the pipeline")
	}
	if h.Indirect() == 0 {
		t.Error("indirect history never fed by the pipeline")
	}
	if h.Path() == 0 {
		t.Error("path history never fed (no L2 TLB accesses observed)")
	}
}

func TestColdCachesCostMoreThanWarm(t *testing.T) {
	// Two identical halves: the second half (warm caches/TLBs) must run
	// at higher IPC than the cold first half. The warmup split gives us
	// exactly the second-half measurement; compare against a run with
	// no warmup exclusion.
	w := scripted([]trace.Record{
		{PC: 0x400000, Class: trace.ClassLoad, EA: 0x20000000, Skip: 9},
		{PC: 0x400010, Class: trace.ClassLoad, EA: 0x20001000, Skip: 9},
	}, 5000)
	cfgWarm := DefaultConfig(100_000, 150)
	m1, err := New(cfgWarm, policy.NewLRU(), lruFactory)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := m1.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	cfgCold := DefaultConfig(100_000, 150)
	cfgCold.WarmupFraction = 0
	m2, err := New(cfgCold, policy.NewLRU(), lruFactory)
	if err != nil {
		t.Fatal(err)
	}
	w.Reset()
	cold, err := m2.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if warm.IPC <= cold.IPC {
		t.Errorf("post-warmup IPC (%.4f) not above whole-run IPC (%.4f)", warm.IPC, cold.IPC)
	}
}

func TestWrongPathPollutionSlowsDown(t *testing.T) {
	// With wrong-path modelling on, hard-to-predict branches pollute
	// the i-cache, so IPC must not improve and i-cache accesses grow.
	rng := trace.NewRNG(5)
	var recs []trace.Record
	for i := 0; i < 40_000; i++ {
		recs = append(recs,
			trace.Record{PC: 0x4002b4, Class: trace.ClassALU, Skip: 3},
			trace.Record{PC: 0x4003c8, Class: trace.ClassCondBranch, Taken: rng.Bool(0.5), Target: 0x400310})
	}
	run := func(wrongPath bool) (Result, uint64) {
		cfg := DefaultConfig(uint64(len(recs)*5), 150)
		cfg.ModelWrongPath = wrongPath
		m, err := New(cfg, policy.NewLRU(), lruFactory)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run(trace.NewSliceSource(recs))
		if err != nil {
			t.Fatal(err)
		}
		return res, m.Mem().L1I.Stats().Accesses
	}
	off, accOff := run(false)
	on, accOn := run(true)
	if accOn <= accOff {
		t.Errorf("wrong-path modelling did not add i-cache accesses: %d vs %d", accOn, accOff)
	}
	if on.IPC > off.IPC {
		t.Errorf("wrong-path pollution raised IPC: %v vs %v", on.IPC, off.IPC)
	}
}
