// Package sim provides the simulation drivers: a fast TLB-only driver
// for MPKI experiments (the paper's Figure 6/7/9/11 numbers need no
// timing model), the full timing driver built on internal/pipeline,
// and suite runners that fan workloads across policies.
package sim

import (
	"fmt"

	"github.com/chirplab/chirp/internal/obs"
	"github.com/chirplab/chirp/internal/policy"
	"github.com/chirplab/chirp/internal/tlb"
	"github.com/chirplab/chirp/internal/trace"
)

// Hierarchy is the TLB geometry of Table II.
type Hierarchy struct {
	L1I tlb.Config
	L1D tlb.Config
	L2  tlb.Config
}

// DefaultHierarchy returns the paper's Table II TLB parameters:
// 64-entry 8-way L1 instruction and data TLBs and a 1024-entry 8-way
// unified L2 TLB, 4 KB pages.
func DefaultHierarchy() Hierarchy {
	return Hierarchy{
		L1I: tlb.Config{Name: "L1 iTLB", Entries: 64, Ways: 8, PageShift: 12},
		L1D: tlb.Config{Name: "L1 dTLB", Entries: 64, Ways: 8, PageShift: 12},
		L2:  tlb.Config{Name: "L2 TLB", Entries: 1024, Ways: 8, PageShift: 12},
	}
}

// TLBOnlyConfig parameterises a TLB-only run.
type TLBOnlyConfig struct {
	Hierarchy Hierarchy
	// Instructions bounds the committed instruction count (0 = drain
	// the source).
	Instructions uint64
	// WarmupFraction of instructions warms the structures before MPKI
	// measurement begins (the paper warms on the first half).
	WarmupFraction float64
	// PrefetchDistance, when positive, enables a confidence-gated
	// stride prefetcher into the L2 TLB — the distance prefetching of
	// the related work the paper positions replacement against ([44],
	// [45]): per accessing PC, a small table learns the page stride of
	// successive misses and, once confident, prefetches the next
	// PrefetchDistance pages along it. Prefetches do not count as
	// accesses or misses; they compose with any replacement policy.
	PrefetchDistance int
}

// DefaultTLBOnlyConfig returns the paper's setup at a given
// instruction budget.
func DefaultTLBOnlyConfig(instructions uint64) TLBOnlyConfig {
	return TLBOnlyConfig{
		Hierarchy:      DefaultHierarchy(),
		Instructions:   instructions,
		WarmupFraction: 0.5,
	}
}

// TLBOnlyResult reports one TLB-only run.
type TLBOnlyResult struct {
	Policy       string
	Instructions uint64 // measured (post-warmup) instructions
	L2Accesses   uint64 // total, including warmup
	L2Misses     uint64 // post-warmup misses
	MPKI         float64
	Efficiency   float64
	// TableReads/Writes and TableAccessRate cover the whole run for
	// policies with prediction tables (Figure 11's metric).
	TableReads      uint64
	TableWrites     uint64
	TableAccessRate float64
	// L1IMisses/L1DMisses are post-warmup, for i/d-side breakdowns.
	L1IMisses uint64
	L1DMisses uint64
}

// RunTLBOnly drives src through the two L1 TLBs (always LRU, as the
// paper holds L1 policy fixed) and the L2 TLB under l2p. It returns
// post-warmup MPKI against committed instructions.
func RunTLBOnly(src trace.Source, l2p tlb.Policy, cfg TLBOnlyConfig) (TLBOnlyResult, error) {
	l1i, err := tlb.New(cfg.Hierarchy.L1I, policy.NewLRU())
	if err != nil {
		return TLBOnlyResult{}, err
	}
	defer l1i.Release()
	l1d, err := tlb.New(cfg.Hierarchy.L1D, policy.NewLRU())
	if err != nil {
		return TLBOnlyResult{}, err
	}
	defer l1d.Release()
	l2, err := tlb.New(cfg.Hierarchy.L2, l2p)
	if err != nil {
		return TLBOnlyResult{}, err
	}
	defer l2.Release()
	bo, observesBranches := l2p.(tlb.BranchObserver)

	pageShift := cfg.Hierarchy.L2.PageShift
	warmupAt := uint64(float64(cfg.Instructions) * cfg.WarmupFraction)
	if cfg.Instructions == 0 {
		warmupAt = 0 // unbounded runs measure everything
	}

	var (
		instructions uint64
		warmStats    tlb.Stats
		warmI, warmD tlb.Stats
		warmed       = warmupAt == 0
		warmInstrAt  uint64
		rec          trace.Record
	)

	d := &directState{l2: l2}
	if cfg.PrefetchDistance > 0 {
		d.pf = newStridePrefetcher(cfg.PrefetchDistance)
	}

	for src.Next(&rec) {
		instructions += rec.Instructions()
		if !warmed && instructions >= warmupAt {
			warmed = true
			warmStats = l2.Stats()
			warmI, warmD = l1i.Stats(), l1d.Stats()
			warmInstrAt = instructions
		}

		d.access(l1i, rec.PC, rec.PC>>pageShift, true)
		switch {
		case rec.Class.IsMemory():
			d.access(l1d, rec.PC, rec.EA>>pageShift, false)
		case rec.Class.IsBranch():
			if observesBranches {
				bo.OnBranch(rec.PC,
					rec.Class == trace.ClassCondBranch,
					rec.Class == trace.ClassUncondIndirect,
					rec.Taken, rec.Target)
			}
		}
		if cfg.Instructions > 0 && instructions >= cfg.Instructions {
			break
		}
	}
	if !warmed {
		return TLBOnlyResult{}, fmt.Errorf("sim: trace ended before warmup boundary (%d < %d instructions)", instructions, warmupAt)
	}

	l2.FlushAccounting()
	publishRun(l2p, l1i, l1d, l2)
	st := l2.Stats()
	res := TLBOnlyResult{
		Policy:       l2p.Name(),
		Instructions: instructions - warmInstrAt,
		L2Accesses:   st.Accesses,
		L2Misses:     st.Misses - warmStats.Misses,
		Efficiency:   st.Efficiency(),
		L1IMisses:    l1i.Stats().Misses - warmI.Misses,
		L1DMisses:    l1d.Stats().Misses - warmD.Misses,
	}
	if res.Instructions > 0 {
		res.MPKI = float64(res.L2Misses) / (float64(res.Instructions) / 1000)
	}
	if ta, ok := l2p.(tlb.TableAccounting); ok {
		res.TableReads, res.TableWrites = ta.TableAccesses()
		if st.Accesses > 0 {
			res.TableAccessRate = float64(res.TableReads+res.TableWrites) / float64(st.Accesses)
		}
	}
	return res, nil
}

// directState is the direct driver's per-run inner-loop state. The
// access path is a method rather than a closure because it is
// //chirp:hotpath (closures are banned there), and the hoisted Access
// structs live in the struct: they escape into the policy interface
// calls, so declaring them per call would heap-allocate once per
// record. The L1 access keeps its own struct because l1.Insert needs
// the L1 set index after the L2 path overwrote a2's.
type directState struct {
	l2        *tlb.TLB
	pf        *stridePrefetcher
	a, a2, pa tlb.Access
}

// access sends one reference through an L1 TLB and, on miss, the L2.
//
//chirp:hotpath
func (d *directState) access(l1 *tlb.TLB, pc, vpn uint64, instr bool) {
	d.a = tlb.Access{PC: pc, VPN: vpn, Instr: instr}
	if _, hit := l1.Lookup(&d.a); hit {
		return
	}
	d.a2 = tlb.Access{PC: pc, VPN: vpn, Instr: instr}
	if _, hit := d.l2.Lookup(&d.a2); !hit {
		// Page walk; identity translation suffices for MPKI runs.
		d.l2.Insert(&d.a2, vpn)
	}
	if d.pf != nil {
		// The prefetcher observes the full L2 access stream (training
		// on misses alone leaves stride gaps behind its own
		// prefetches). Fills go through InsertPrefetch: it bypasses
		// the demand hit/miss accounting but drives the policy's
		// OnAccess for the prefetch access, so signature policies tag
		// the prefetched page with its own fresh state (see the
		// tlb.Policy prefetch contract).
		for _, pv := range d.pf.observe(pc, vpn) {
			if d.l2.Contains(pv) {
				continue
			}
			d.pa = tlb.Access{PC: pc, VPN: pv, Instr: instr}
			d.l2.InsertPrefetch(&d.pa, pv)
		}
	}
	l1.Insert(&d.a, vpn)
}

// publishRun flushes a finished run's aggregated counters into the
// default obs registry: per-level TLB stats plus whatever the policy
// itself publishes (CHiRP's predictor counters). Called once per run —
// never on the hot path — so the simulation loops pay nothing for
// observability.
func publishRun(l2p tlb.Policy, tlbs ...*tlb.TLB) {
	for _, t := range tlbs {
		t.PublishMetrics()
	}
	if pub, ok := l2p.(obs.Publisher); ok {
		pub.PublishMetrics()
	}
}

// CollectL2Stream replays src through LRU L1 TLBs and records the VPN
// sequence presented to the L2 TLB. Because the L1s' behaviour does
// not depend on the L2 policy, this stream is identical for every L2
// policy, so it can seed the Bélády OPT oracle.
func CollectL2Stream(src trace.Source, cfg TLBOnlyConfig) ([]uint64, error) {
	l1i, err := tlb.New(cfg.Hierarchy.L1I, policy.NewLRU())
	if err != nil {
		return nil, err
	}
	defer l1i.Release()
	l1d, err := tlb.New(cfg.Hierarchy.L1D, policy.NewLRU())
	if err != nil {
		return nil, err
	}
	defer l1d.Release()
	pageShift := cfg.Hierarchy.L2.PageShift
	var (
		stream       []uint64
		instructions uint64
	)
	var a tlb.Access
	access := func(l1 *tlb.TLB, pc, vpn uint64, instr bool) {
		a = tlb.Access{PC: pc, VPN: vpn, Instr: instr}
		if _, hit := l1.Lookup(&a); hit {
			return
		}
		stream = append(stream, vpn)
		l1.Insert(&a, vpn)
	}
	// Pull records in blocks, like l2stream.Capture: batched sources
	// (the workload generator) fill the whole block in one virtual call
	// instead of paying an interface dispatch per record.
	bs := trace.Blocks(src)
	var buf [trace.DefaultBlockSize]trace.Record
	for {
		n := bs.NextBlock(buf[:])
		if n == 0 {
			return stream, nil
		}
		for i := 0; i < n; i++ {
			rec := &buf[i]
			instructions += rec.Instructions()
			access(l1i, rec.PC, rec.PC>>pageShift, true)
			if rec.Class.IsMemory() {
				access(l1d, rec.PC, rec.EA>>pageShift, false)
			}
			if cfg.Instructions > 0 && instructions >= cfg.Instructions {
				return stream, nil
			}
		}
	}
}

// stridePrefetcher learns, per accessing PC, the page stride between
// successive L2 misses and issues prefetches only once the stride has
// repeated (2-bit confidence) — the recency/distance prefetching
// lineage of Saulsbury et al. and Kandiraju & Sivasubramaniam.
type stridePrefetcher struct {
	distance int
	lastVPN  [256]uint64
	stride   [256]int64
	conf     [256]uint8
	valid    [256]bool
	// scratch is sized to distance at construction and reused across
	// observe calls; callers must consume the returned slice before the
	// next call.
	scratch []uint64
}

func newStridePrefetcher(distance int) *stridePrefetcher {
	return &stridePrefetcher{distance: distance, scratch: make([]uint64, distance)}
}

// observe records an L2 access and returns the VPNs to prefetch. The
// returned slice aliases the prefetcher's scratch buffer and is only
// valid until the next observe call.
//
//chirp:hotpath
func (p *stridePrefetcher) observe(pc, vpn uint64) []uint64 {
	idx := policy.Mix64(pc>>2) & 0xff
	last, valid := p.lastVPN[idx], p.valid[idx]
	p.lastVPN[idx], p.valid[idx] = vpn, true
	if !valid {
		return nil
	}
	delta := int64(vpn - last)
	if delta == 0 {
		return nil
	}
	if delta == p.stride[idx] {
		if p.conf[idx] < 3 {
			p.conf[idx]++
		}
	} else {
		p.stride[idx] = delta
		if p.conf[idx] > 0 {
			p.conf[idx]--
		}
		return nil
	}
	if p.conf[idx] < 2 {
		return nil
	}
	out := p.scratch
	next := vpn
	for d := 0; d < p.distance; d++ {
		next += uint64(p.stride[idx])
		out[d] = next
	}
	return out
}
