package sim

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/chirplab/chirp/internal/l2stream"
	"github.com/chirplab/chirp/internal/tlb"
	"github.com/chirplab/chirp/internal/trace"
	"github.com/chirplab/chirp/internal/workloads"
)

// persistentStreamFor loads (or captures) a workload's stream through a
// fresh persistent cache over dir, so repeated calls against the same
// dir exercise the warm disk path.
func persistentStreamFor(t *testing.T, dir, name string, cfg TLBOnlyConfig) (*l2stream.Cache, *l2stream.Stream) {
	t.Helper()
	cache, err := l2stream.NewPersistent(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cache.Close() })
	stream, err := StreamFor(cache, name, "", cfg, func() (trace.Source, error) {
		w := workloads.ByName(name)
		if w == nil {
			t.Fatalf("workload %s missing", name)
		}
		return trace.NewLimit(w.Source(), cfg.Instructions), nil
	})
	if err != nil {
		t.Fatalf("stream for %s: %v", name, err)
	}
	return cache, stream
}

func allPolicies(t *testing.T) []tlb.Policy {
	t.Helper()
	names := PolicyNames()
	pols := make([]tlb.Policy, len(names))
	for i, n := range names {
		pol, err := NewPolicy(n)
		if err != nil {
			t.Fatal(err)
		}
		pols[i] = pol
	}
	return pols
}

func soloResults(t *testing.T, stream *l2stream.Stream, cfg TLBOnlyConfig) []TLBOnlyResult {
	t.Helper()
	names := PolicyNames()
	out := make([]TLBOnlyResult, len(names))
	for i, n := range names {
		pol, err := NewPolicy(n)
		if err != nil {
			t.Fatal(err)
		}
		out[i], err = ReplayTLBOnly(stream, pol, cfg)
		if err != nil {
			t.Fatalf("%s solo replay: %v", n, err)
		}
	}
	return out
}

// TestReplayMultiPersistentWarmEquivalence gates the warm-persistent
// path: a first fused replay persists derived sidecars next to the
// capture; a second process (modelled by a fresh cache over the same
// directory) loads the stream and its views from disk and must still
// match every policy's solo replay bit for bit.
func TestReplayMultiPersistentWarmEquivalence(t *testing.T) {
	const instructions = 200000
	for _, pd := range []int{0, 4} {
		cfg := DefaultTLBOnlyConfig(instructions)
		cfg.PrefetchDistance = pd
		for _, wname := range []string{"db-003", "spec-000"} {
			dir := t.TempDir()

			_, cold := persistentStreamFor(t, dir, wname, cfg)
			if _, err := ReplayMulti(cold, allPolicies(t), cfg); err != nil {
				t.Fatalf("%s pd=%d cold fused: %v", wname, pd, err)
			}
			if n := len(sidecarFiles(t, dir)); n == 0 {
				t.Fatalf("%s pd=%d: cold fused replay left no derived sidecars", wname, pd)
			}

			_, warm := persistentStreamFor(t, dir, wname, cfg)
			fused, err := ReplayMulti(warm, allPolicies(t), cfg)
			if err != nil {
				t.Fatalf("%s pd=%d warm fused: %v", wname, pd, err)
			}
			want := soloResults(t, warm, cfg)
			for i, pname := range PolicyNames() {
				if fused[i] != want[i] {
					t.Errorf("%s/%s pd=%d: warm-persistent fused replay diverged\n solo:  %+v\n fused: %+v",
						wname, pname, pd, want[i], fused[i])
				}
			}
		}
	}
}

// TestReplayMultiParallelEquivalence forces the worker pool wider than
// this machine may be (the public entry point sizes it to GOMAXPROCS),
// so the concurrent scheduling path is exercised even on one CPU.
func TestReplayMultiParallelEquivalence(t *testing.T) {
	cfg := DefaultTLBOnlyConfig(200000)
	cfg.PrefetchDistance = 4
	stream := captureFor(t, "web-001", cfg)
	defer stream.Close()
	fused, err := replayMulti(stream, allPolicies(t), cfg, 4)
	if err != nil {
		t.Fatalf("parallel fused replay: %v", err)
	}
	want := soloResults(t, stream, cfg)
	for i, pname := range PolicyNames() {
		if fused[i] != want[i] {
			t.Errorf("%s: parallel fused replay diverged\n solo:  %+v\n fused: %+v", pname, want[i], fused[i])
		}
	}
}

// TestReplayMultiDerivedCorruptionRecovers: damaged or truncated
// sidecars must be treated as absent — the views rebuild from the
// stream and the results do not change.
func TestReplayMultiDerivedCorruptionRecovers(t *testing.T) {
	cfg := DefaultTLBOnlyConfig(150000)
	cfg.PrefetchDistance = 4
	dir := t.TempDir()

	_, cold := persistentStreamFor(t, dir, "sci-002", cfg)
	want, err := ReplayMulti(cold, allPolicies(t), cfg)
	if err != nil {
		t.Fatal(err)
	}

	sidecars := sidecarFiles(t, dir)
	if len(sidecars) == 0 {
		t.Fatal("fused replay left no derived sidecars")
	}
	for i, p := range sidecars {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			data[len(data)/2] ^= 0x40 // bit damage
		} else {
			data = data[:len(data)/3] // truncation
		}
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	_, warm := persistentStreamFor(t, dir, "sci-002", cfg)
	fused, err := ReplayMulti(warm, allPolicies(t), cfg)
	if err != nil {
		t.Fatalf("fused replay over corrupt sidecars: %v", err)
	}
	for i, pname := range PolicyNames() {
		if fused[i] != want[i] {
			t.Errorf("%s: replay after sidecar corruption diverged\n before: %+v\n after:  %+v", pname, want[i], fused[i])
		}
	}
}

func sidecarFiles(t *testing.T, dir string) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.l2d"))
	if err != nil {
		t.Fatal(err)
	}
	return files
}
