package sim

import (
	"context"
	"strings"
	"sync"
	"testing"

	"github.com/chirplab/chirp/internal/l2stream"
	"github.com/chirplab/chirp/internal/trace"
	"github.com/chirplab/chirp/internal/workloads"
)

// equivalenceWorkloads spans 3+ categories with distinct behaviours:
// database (batch/zipf mixes), web (pointer chases), and scientific
// (streams/loops) pressure the L1 filters and branch stream
// differently.
var equivalenceWorkloads = []string{"db-003", "web-001", "sci-002", "spec-000"}

func captureFor(t *testing.T, name string, cfg TLBOnlyConfig) *l2stream.Stream {
	t.Helper()
	w := workloads.ByName(name)
	if w == nil {
		t.Fatalf("workload %s missing", name)
	}
	src := trace.NewLimit(w.Source(), cfg.Instructions)
	stream, err := l2stream.Capture(src, CaptureConfig(cfg), l2stream.CaptureOptions{})
	if err != nil {
		t.Fatalf("capture %s: %v", name, err)
	}
	return stream
}

// TestReplayEquivalence is the tentpole's correctness gate: for every
// registered policy, on workloads from several categories, with and
// without prefetching, ReplayTLBOnly must reproduce RunTLBOnly's
// TLBOnlyResult bit for bit — including the table-accounting fields.
func TestReplayEquivalence(t *testing.T) {
	const instructions = 400000
	for _, pd := range []int{0, 4} {
		cfg := DefaultTLBOnlyConfig(instructions)
		cfg.PrefetchDistance = pd
		for _, wname := range equivalenceWorkloads {
			stream := captureFor(t, wname, cfg)
			for _, pname := range PolicyNames() {
				w := workloads.ByName(wname)
				pol, err := NewPolicy(pname)
				if err != nil {
					t.Fatal(err)
				}
				direct, err := RunTLBOnly(trace.NewLimit(w.Source(), cfg.Instructions), pol, cfg)
				if err != nil {
					t.Fatalf("%s/%s direct: %v", wname, pname, err)
				}
				pol2, _ := NewPolicy(pname)
				replayed, err := ReplayTLBOnly(stream, pol2, cfg)
				if err != nil {
					t.Fatalf("%s/%s replay: %v", wname, pname, err)
				}
				// TLBOnlyResult is all scalars, so == is field-by-field.
				if replayed != direct {
					t.Errorf("%s/%s pd=%d: replay diverged\n direct: %+v\n replay: %+v",
						wname, pname, pd, direct, replayed)
				}
			}
		}
	}
}

// TestPolicyParallelReplay replays one shared stream under every
// registered policy from concurrent goroutines — the exact shape a
// Workers>1 engine sweep produces — and checks each result against a
// serial replay of the same pair. Under -race this also proves the
// two decode memoizations (full and branch-free view) are safe to
// materialize concurrently from both observer and non-observer
// policies.
func TestPolicyParallelReplay(t *testing.T) {
	cfg := DefaultTLBOnlyConfig(300000)
	stream := captureFor(t, "db-003", cfg)
	defer stream.Close()

	names := PolicyNames()
	const rounds = 3 // several replays per policy race against each other too
	type cell struct {
		name string
		res  TLBOnlyResult
		err  error
	}
	results := make([]cell, len(names)*rounds)
	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		for i, name := range names {
			idx := r*len(names) + i
			name := name
			wg.Add(1)
			go func() {
				defer wg.Done()
				pol, err := NewPolicy(name)
				if err == nil {
					results[idx].res, err = ReplayTLBOnly(stream, pol, cfg)
				}
				results[idx].name, results[idx].err = name, err
			}()
		}
	}
	wg.Wait()
	serial := map[string]TLBOnlyResult{}
	for _, name := range names {
		pol, err := NewPolicy(name)
		if err != nil {
			t.Fatal(err)
		}
		serial[name], err = ReplayTLBOnly(stream, pol, cfg)
		if err != nil {
			t.Fatalf("%s serial replay: %v", name, err)
		}
	}
	for _, c := range results {
		if c.err != nil {
			t.Errorf("%s parallel replay: %v", c.name, c.err)
			continue
		}
		if c.res != serial[c.name] {
			t.Errorf("%s: parallel replay diverged from serial\n parallel: %+v\n serial:   %+v",
				c.name, c.res, serial[c.name])
		}
	}
}

func TestReplaySpilledEquivalence(t *testing.T) {
	cfg := DefaultTLBOnlyConfig(200000)
	cfg.PrefetchDistance = 2
	w := workloads.ByName("db-003")
	src := trace.NewLimit(w.Source(), cfg.Instructions)
	stream, err := l2stream.Capture(src, CaptureConfig(cfg),
		l2stream.CaptureOptions{MaxBytes: 1024, SpillDir: t.TempDir()})
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	defer stream.Close()
	if !stream.Spilled() {
		t.Fatal("1 KiB budget must force a spill")
	}
	for _, pname := range []string{"lru", "chirp", "ghrp"} {
		pol, _ := NewPolicy(pname)
		direct, err := RunTLBOnly(trace.NewLimit(w.Source(), cfg.Instructions), pol, cfg)
		if err != nil {
			t.Fatal(err)
		}
		pol2, _ := NewPolicy(pname)
		replayed, err := ReplayTLBOnly(stream, pol2, cfg)
		if err != nil {
			t.Fatalf("%s spilled replay: %v", pname, err)
		}
		if replayed != direct {
			t.Errorf("%s: spilled replay diverged\n direct: %+v\n replay: %+v", pname, direct, replayed)
		}
	}
}

func TestReplayRejectsConfigMismatch(t *testing.T) {
	cfg := DefaultTLBOnlyConfig(50000)
	stream := captureFor(t, "spec-000", cfg)
	other := cfg
	other.Instructions = 60000
	pol, _ := NewPolicy("lru")
	if _, err := ReplayTLBOnly(stream, pol, other); err == nil {
		t.Error("replay must reject a mismatched instruction budget")
	}
	// L2 geometry (beyond the page size) is policy-local: changing it
	// must NOT invalidate the stream.
	geom := cfg
	geom.Hierarchy.L2.Entries = 512
	pol2, _ := NewPolicy("lru")
	if _, err := ReplayTLBOnly(stream, pol2, geom); err != nil {
		t.Errorf("replay must accept a different L2 geometry: %v", err)
	}
}

func TestReplayUnwarmedMatchesRunError(t *testing.T) {
	cfg := DefaultTLBOnlyConfig(100000)
	w := workloads.ByName("spec-000")
	// A source far shorter than the warmup boundary.
	short := func() trace.Source { return trace.NewLimit(w.Source(), 1000) }
	pol, _ := NewPolicy("lru")
	_, directErr := RunTLBOnly(short(), pol, cfg)
	if directErr == nil {
		t.Fatal("direct run must fail before warmup")
	}
	stream, err := l2stream.Capture(short(), CaptureConfig(cfg), l2stream.CaptureOptions{})
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	pol2, _ := NewPolicy("lru")
	_, replayErr := ReplayTLBOnly(stream, pol2, cfg)
	if replayErr == nil {
		t.Fatal("replay must fail before warmup")
	}
	if replayErr.Error() != directErr.Error() {
		t.Errorf("error text diverged:\n direct: %v\n replay: %v", directErr, replayErr)
	}
}

func TestStreamVPNsMatchesCollect(t *testing.T) {
	cfg := DefaultTLBOnlyConfig(100000)
	w := workloads.ByName("web-001")
	want, err := CollectL2Stream(trace.NewLimit(w.Source(), cfg.Instructions), cfg)
	if err != nil {
		t.Fatal(err)
	}
	stream := captureFor(t, "web-001", cfg)
	got, err := StreamVPNs(stream, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("StreamVPNs returned %d VPNs, CollectL2Stream %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("VPN %d diverged: %#x vs %#x", i, got[i], want[i])
		}
	}
	if stream.Accesses() != uint64(len(want)) {
		t.Errorf("Accesses() = %d, want %d", stream.Accesses(), len(want))
	}
}

func TestSuiteUsesSharedStreamCache(t *testing.T) {
	cache := l2stream.NewCache(0, t.TempDir())
	defer cache.Close()
	ws := []*workloads.Workload{workloads.ByName("spec-000"), workloads.ByName("db-001")}
	pols, err := Factories([]string{"lru", "srrip"})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTLBOnlyConfig(100000)
	withCache, err := RunSuiteTLBOnlyCtx(context.Background(), ws, pols, cfg, SuiteOptions{StreamCache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if cache.Len() != len(ws) {
		t.Errorf("cache holds %d streams, want one per workload (%d)", cache.Len(), len(ws))
	}
	// Direct path (replay disabled) must agree cell by cell.
	direct, err := RunSuiteTLBOnlyCtx(context.Background(), ws, pols, cfg, SuiteOptions{StreamBudget: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(withCache) != len(direct) {
		t.Fatalf("result counts differ: %d vs %d", len(withCache), len(direct))
	}
	for i := range direct {
		if withCache[i] != direct[i] {
			t.Errorf("cell %d diverged:\n cached: %+v\n direct: %+v", i, withCache[i], direct[i])
		}
	}
	// A second suite call against the same cache reuses the captures.
	again, err := RunSuiteTLBOnlyCtx(context.Background(), ws, pols, cfg, SuiteOptions{StreamCache: cache})
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct {
		if again[i] != direct[i] {
			t.Errorf("rerun cell %d diverged", i)
		}
	}
	if cache.Len() != len(ws) {
		t.Errorf("rerun grew the cache to %d streams", cache.Len())
	}
}

func TestReplayErrorNamesPair(t *testing.T) {
	// A suite cell that fails during replay must still name its
	// (workload, policy) pair, like the direct path does. A warmup
	// fraction > 1 pushes the boundary past the instruction budget, so
	// every capture ends unwarmed and the replay fails.
	ws := []*workloads.Workload{workloads.ByName("spec-000")}
	cfg := DefaultTLBOnlyConfig(10000)
	cfg.WarmupFraction = 2.0
	pol, err := Factories([]string{"lru"})
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunSuiteTLBOnlyCtx(context.Background(), ws, pol, cfg, SuiteOptions{})
	if err == nil {
		t.Fatal("expected warmup failure")
	}
	if !strings.Contains(err.Error(), "spec-000/lru") {
		t.Errorf("error does not name the failing pair: %v", err)
	}
}
