package sim

import (
	"github.com/chirplab/chirp/internal/policy"
	"github.com/chirplab/chirp/internal/tlb"
	"github.com/chirplab/chirp/internal/trace"
)

// ReuseSample is one completed L2 TLB entry lifetime: the PC that
// inserted the entry and whether the entry was ever reused before
// eviction. These are the labelled examples the offline ADALINE study
// (Figure 3) trains on.
type ReuseSample struct {
	PC     uint64
	Reused bool
}

// reuseRecorder wraps LRU and harvests lifetime samples.
type reuseRecorder struct {
	*policy.LRU
	ways    int
	pc      []uint64
	reused  []bool
	valid   []bool
	samples []ReuseSample
	max     int
}

func newReuseRecorder(max int) *reuseRecorder {
	return &reuseRecorder{LRU: policy.NewLRU(), max: max}
}

// Attach implements tlb.Policy.
func (r *reuseRecorder) Attach(sets, ways int) {
	r.LRU.Attach(sets, ways)
	r.ways = ways
	n := sets * ways
	r.pc = make([]uint64, n)
	r.reused = make([]bool, n)
	r.valid = make([]bool, n)
}

// OnHit implements tlb.Policy.
func (r *reuseRecorder) OnHit(set uint32, way int, a *tlb.Access) {
	r.LRU.OnHit(set, way, a)
	r.reused[int(set)*r.ways+way] = true
}

// Victim implements tlb.Policy: sample the evicted lifetime.
func (r *reuseRecorder) Victim(set uint32, a *tlb.Access) int {
	way := r.LRU.Victim(set, a)
	i := int(set)*r.ways + way
	if r.valid[i] && (r.max <= 0 || len(r.samples) < r.max) {
		r.samples = append(r.samples, ReuseSample{PC: r.pc[i], Reused: r.reused[i]})
	}
	return way
}

// OnInsert implements tlb.Policy.
func (r *reuseRecorder) OnInsert(set uint32, way int, a *tlb.Access) {
	r.LRU.OnInsert(set, way, a)
	i := int(set)*r.ways + way
	r.pc[i] = a.PC
	r.reused[i] = false
	r.valid[i] = true
}

// full reports whether the sample budget is exhausted.
func (r *reuseRecorder) full() bool { return r.max > 0 && len(r.samples) >= r.max }

// cutoffSource stops yielding records once done reports true — the
// trace.Limit idiom applied to a predicate instead of an instruction
// count.
type cutoffSource struct {
	trace.Source
	done func() bool
}

func (c *cutoffSource) Next(rec *trace.Record) bool {
	return !c.done() && c.Source.Next(rec)
}

// CollectReuseSamples replays src through the TLB hierarchy under LRU
// and returns up to max completed L2-entry lifetimes (0 = unbounded).
// With a positive max the replay stops as soon as the budget fills,
// instead of simulating the rest of the trace for samples it would
// discard.
func CollectReuseSamples(src trace.Source, cfg TLBOnlyConfig, max int) ([]ReuseSample, error) {
	rec := newReuseRecorder(max)
	run := src
	if max > 0 {
		run = &cutoffSource{Source: src, done: rec.full}
	}
	if _, err := RunTLBOnly(run, rec, cfg); err != nil && !rec.full() {
		// A full recorder legitimately cuts the trace before the warmup
		// boundary; any error on a non-full recorder is real.
		return nil, err
	}
	return rec.samples, nil
}
