package sim

import (
	"context"
	"errors"
	"fmt"

	"github.com/chirplab/chirp/internal/l2stream"
	"github.com/chirplab/chirp/internal/trace"
	"github.com/chirplab/chirp/internal/workloads"
)

// RunSpec bundles everything one TLB-only measurement needs. It is the
// single argument of Run, so the call sites read as configuration
// rather than positional plumbing, and new knobs never change the
// signature.
//
// Exactly one of Workload and Open must be set:
//
//   - Workload names a synthetic workload; Run derives the bounded
//     trace source (and the stream-cache key) from it.
//   - Open returns a fresh bounded source per call — for trace files or
//     custom generators. It may be called zero times (stream already
//     cached) or once.
type RunSpec struct {
	// Workload, when non-nil, supplies both the trace source and the
	// run's name.
	Workload *workloads.Workload
	// Open supplies the trace source when Workload is nil.
	Open func() (trace.Source, error)
	// Name identifies the run in the stream cache. Required with Open
	// when Cache is set; defaults to Workload.Name otherwise.
	Name string
	// SpecHash qualifies the stream-cache key with the content hash of
	// the workload spec the run came from; defaults to
	// Workload.SpecHash ("" for legacy workloads and trace files).
	SpecHash string
	// Policy builds the L2 replacement policy under test.
	Policy PolicyFactory
	// Config is the TLB-only configuration (hierarchy, instruction
	// budget, warmup, prefetch distance).
	Config TLBOnlyConfig
	// Cache, when non-nil, selects the capture/replay path: the
	// workload's policy-invariant L2 event stream is captured once into
	// the cache and replayed under Policy — bit-identical to the direct
	// path, and much cheaper from the second policy on. When nil, Run
	// drives the full trace directly.
	Cache *l2stream.Cache
}

// name returns the run's stream-cache identity.
func (s *RunSpec) name() string {
	if s.Name != "" {
		return s.Name
	}
	if s.Workload != nil {
		return s.Workload.Name
	}
	return ""
}

// specHash returns the run's spec identity for the stream-cache key.
func (s *RunSpec) specHash() string {
	if s.SpecHash != "" {
		return s.SpecHash
	}
	if s.Workload != nil {
		return s.Workload.SpecHash
	}
	return ""
}

// open returns a fresh bounded source for the spec.
func (s *RunSpec) open() (trace.Source, error) {
	if s.Workload != nil {
		return trace.NewLimit(s.Workload.Source(), s.Config.Instructions), nil
	}
	return s.Open()
}

// validate rejects specs that cannot run before any work starts.
func (s *RunSpec) validate() error {
	if s.Policy == nil {
		return errors.New("sim: RunSpec.Policy is required")
	}
	return s.validateTrace()
}

// validateTrace is validate minus the Policy requirement — the shared
// part for RunMulti, whose policies arrive as a separate slice.
func (s *RunSpec) validateTrace() error {
	switch {
	case s.Workload == nil && s.Open == nil:
		return errors.New("sim: RunSpec needs Workload or Open")
	case s.Workload != nil && s.Open != nil:
		return errors.New("sim: RunSpec.Workload and RunSpec.Open are mutually exclusive")
	case s.Cache != nil && s.name() == "":
		return errors.New("sim: RunSpec.Name is required to key the stream cache when Open is used")
	}
	return nil
}

// Run is the one TLB-only entry point: it measures spec.Policy over
// spec's trace under spec.Config, choosing the capture/replay path when
// spec.Cache is set and the direct path otherwise — the two are
// bit-identical, so callers pick purely on cost. The context gates the
// start of the run (simulations are CPU-bound and finish in bounded
// time once started); suite drivers check it between jobs via the
// engine.
//
// On success the run's TLB and predictor counters are published to the
// default obs registry (see PublishMetrics on tlb.TLB and the policy
// implementations).
func Run(ctx context.Context, spec RunSpec) (TLBOnlyResult, error) {
	if err := spec.validate(); err != nil {
		return TLBOnlyResult{}, err
	}
	if err := ctx.Err(); err != nil {
		return TLBOnlyResult{}, err
	}
	if spec.Cache != nil {
		stream, err := StreamFor(spec.Cache, spec.name(), spec.specHash(), spec.Config, spec.open)
		if err != nil {
			return TLBOnlyResult{}, fmt.Errorf("sim: capturing %s: %w", spec.name(), err)
		}
		return ReplayTLBOnly(stream, spec.Policy(), spec.Config)
	}
	src, err := spec.open()
	if err != nil {
		return TLBOnlyResult{}, err
	}
	return RunTLBOnly(src, spec.Policy(), spec.Config)
}
