package sim

import (
	"context"
	"testing"

	"github.com/chirplab/chirp/internal/l2stream"
	"github.com/chirplab/chirp/internal/trace"
	"github.com/chirplab/chirp/internal/workloads"
)

// TestRunEquivalence is the API-collapse contract: Run with a stream
// cache (capture/replay) and Run without one (direct) must agree bit
// for bit, for recency, signature and CHiRP policies alike — and both
// must match the legacy RunTLBOnly entry point they replace.
func TestRunEquivalence(t *testing.T) {
	const name = "db-000"
	w := workloads.ByName(name)
	if w == nil {
		t.Fatalf("workload %s missing", name)
	}
	cfg := DefaultTLBOnlyConfig(testInstr)
	factories, err := Factories([]string{"lru", "srrip", "ghrp", "chirp"})
	if err != nil {
		t.Fatal(err)
	}

	cache := l2stream.NewCache(0, t.TempDir())
	defer cache.Close()
	ctx := context.Background()

	for _, f := range factories {
		direct, err := Run(ctx, RunSpec{Workload: w, Policy: f.New, Config: cfg})
		if err != nil {
			t.Fatalf("%s direct: %v", f.Name, err)
		}
		replayed, err := Run(ctx, RunSpec{Workload: w, Policy: f.New, Config: cfg, Cache: cache})
		if err != nil {
			t.Fatalf("%s replay: %v", f.Name, err)
		}
		if direct != replayed {
			t.Errorf("%s: direct %+v != replay %+v", f.Name, direct, replayed)
		}
		legacy, err := RunTLBOnly(testSource(t, name), f.New(), cfg)
		if err != nil {
			t.Fatalf("%s legacy: %v", f.Name, err)
		}
		if direct != legacy {
			t.Errorf("%s: Run %+v != RunTLBOnly %+v", f.Name, direct, legacy)
		}
	}
	if cache.Len() != 1 {
		t.Errorf("cache holds %d streams, want 1 (one capture shared across policies)", cache.Len())
	}
}

// TestRunOpenSpec exercises the Open-based spec shape (trace files,
// custom generators) with and without a cache.
func TestRunOpenSpec(t *testing.T) {
	open := func() (trace.Source, error) { return testSource(t, "sci-000"), nil }
	cfg := DefaultTLBOnlyConfig(testInstr)
	ctx := context.Background()

	direct, err := Run(ctx, RunSpec{Open: open, Policy: NewLRUFactory(t), Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	cache := l2stream.NewCache(0, t.TempDir())
	defer cache.Close()
	replayed, err := Run(ctx, RunSpec{Open: open, Name: "sci-000", Policy: NewLRUFactory(t), Config: cfg, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if direct != replayed {
		t.Errorf("direct %+v != replay %+v", direct, replayed)
	}
}

// NewLRUFactory returns an LRU factory via the registry, failing the
// test on a lookup error.
func NewLRUFactory(t *testing.T) PolicyFactory {
	t.Helper()
	fs, err := Factories([]string{"lru"})
	if err != nil {
		t.Fatal(err)
	}
	return fs[0].New
}

func TestRunSpecValidation(t *testing.T) {
	ctx := context.Background()
	w := workloads.ByName("db-000")
	lru := NewLRUFactory(t)
	cfg := DefaultTLBOnlyConfig(testInstr)
	open := func() (trace.Source, error) { return testSource(t, "db-000"), nil }
	cache := l2stream.NewCache(0, t.TempDir())
	defer cache.Close()

	cases := []struct {
		name string
		spec RunSpec
	}{
		{"no policy", RunSpec{Workload: w, Config: cfg}},
		{"no source", RunSpec{Policy: lru, Config: cfg}},
		{"both sources", RunSpec{Workload: w, Open: open, Policy: lru, Config: cfg}},
		{"cache without name", RunSpec{Open: open, Policy: lru, Config: cfg, Cache: cache}},
	}
	for _, tc := range cases {
		if _, err := Run(ctx, tc.spec); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}

	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := Run(cancelled, RunSpec{Workload: w, Policy: lru, Config: cfg}); err == nil {
		t.Error("cancelled context: no error")
	}
}

// TestCollectReuseSamplesStopsAtMax verifies the cutoff: a tight max
// must be hit exactly (no overshoot) even when the budget fills before
// the warmup boundary.
func TestCollectReuseSamplesStopsAtMax(t *testing.T) {
	const instr = 600_000
	cfg := DefaultTLBOnlyConfig(instr)
	const max = 100
	samples, err := CollectReuseSamples(trace.NewLimit(workloads.ByName("db-000").Source(), instr), cfg, max)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != max {
		t.Fatalf("got %d samples, want exactly %d", len(samples), max)
	}

	// The unbounded run over the same trace yields more — proving the
	// bounded one actually cut off rather than naturally producing max.
	all, err := CollectReuseSamples(trace.NewLimit(workloads.ByName("db-000").Source(), instr), cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) <= max {
		t.Fatalf("unbounded run yielded %d samples; test needs > %d to be meaningful", len(all), max)
	}
	// The bounded prefix must match the unbounded run's first max
	// samples: cutting off early must not change what was sampled.
	for i, s := range samples {
		if s != all[i] {
			t.Fatalf("sample %d differs: bounded %+v vs unbounded %+v", i, s, all[i])
		}
	}
}
