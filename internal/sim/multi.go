package sim

import (
	"context"
	"errors"
	"fmt"

	"github.com/chirplab/chirp/internal/l2stream"
	"github.com/chirplab/chirp/internal/tlb"
	"github.com/chirplab/chirp/internal/trace"
)

// ReplayMulti drives all N policies over a captured stream in a single
// pass: the stream is decoded once, in blocks, and every policy's L2
// TLB consumes each block before the next is decoded — instead of N
// independent traversals each materializing and walking the memoized
// views. Results are bit-identical to calling ReplayTLBOnly once per
// policy, in the same order as policies.
//
// The equivalence argument: the captured event sequence is fixed, and
// policy state lives entirely inside each policy's own TLB, so the
// callback sequence a given policy observes — Lookup, Insert, prefetch
// fills, branch and warmup callbacks, in event order — is exactly the
// solo replay's. Interleaving other policies' callbacks between them
// (here at block granularity) touches disjoint state. Branch events
// are walked only by policies that observe branches; the rest walk the
// access/warmup subsequence, which is what the solo replay's
// branch-free view contains. The stride prefetcher trains on the
// demand access stream, which is policy-invariant, so one shared
// prefetcher (trained once per block, before any policy walks it)
// reproduces every solo prefetcher's decisions; only the
// Contains-gated fills differ per policy, and those are driven per
// TLB.
func ReplayMulti(stream *l2stream.Stream, policies []tlb.Policy, cfg TLBOnlyConfig) ([]TLBOnlyResult, error) {
	if len(policies) == 0 {
		return nil, errors.New("sim: ReplayMulti needs at least one policy")
	}
	if got, want := stream.Config(), CaptureConfig(cfg); got != want {
		return nil, fmt.Errorf("sim: stream captured under %+v cannot replay %+v", got, want)
	}
	if stream.Spilled() {
		return replayMultiSpilled(stream, policies, cfg)
	}
	if !stream.Warmed() {
		return nil, fmt.Errorf("sim: trace ended before warmup boundary (%d < %d instructions)", stream.Instructions(), stream.WarmupAt())
	}

	ms := &multiReplayState{
		tlbs:   make([]*tlb.TLB, len(policies)),
		obs:    make([]tlb.BranchObserver, len(policies)),
		warm:   make([]tlb.Stats, len(policies)),
		accEvs: make([]l2stream.Event, replayBlock),
	}
	for i, p := range policies {
		t, err := tlb.New(cfg.Hierarchy.L2, p)
		if err != nil {
			return nil, err
		}
		ms.tlbs[i] = t
		if bo, ok := p.(tlb.BranchObserver); ok {
			ms.obs[i] = bo
		}
	}
	if cfg.PrefetchDistance > 0 {
		ms.pf = newStridePrefetcher(cfg.PrefetchDistance)
		ms.pfIdx = make([]int32, replayBlock*cfg.PrefetchDistance)
		ms.pfVPN = make([]uint64, replayBlock*cfg.PrefetchDistance)
	}

	// Stream the decode in blocks — a fused pass is single-shot, so
	// materializing the memoized views would be pure overhead. A
	// persistent-store load carries a fixed-width sidecar (see
	// store.go) that decodes several times cheaper than the varint
	// buffer; prefer it when present.
	var evs [replayBlock]l2stream.Event
	if fd, ok := stream.DecodeFixed(); ok {
		for {
			n := fd.NextBlock(evs[:])
			if n == 0 {
				break
			}
			ms.replayEvents(evs[:n])
		}
	} else {
		d := stream.Decode()
		for {
			n := d.NextBlock(evs[:])
			if n == 0 {
				break
			}
			ms.replayEvents(evs[:n])
		}
		if err := d.Err(); err != nil {
			return nil, err
		}
	}

	out := make([]TLBOnlyResult, len(policies))
	for i, p := range policies {
		l2 := ms.tlbs[i]
		l2.FlushAccounting()
		publishRun(p, l2)
		out[i] = replayResult(stream, p, l2, ms.warm[i])
	}
	return out, nil
}

// replayMultiSpilled replays a spilled stream: the event view never
// materialized, so each policy re-runs the direct driver over the
// record file — held retained for the whole fan-out so a racing
// Cache.Close cannot delete it mid-read.
func replayMultiSpilled(stream *l2stream.Stream, policies []tlb.Policy, cfg TLBOnlyConfig) ([]TLBOnlyResult, error) {
	path, release, err := stream.RetainSpill()
	if err != nil {
		return nil, err
	}
	defer release()
	out := make([]TLBOnlyResult, len(policies))
	for i, p := range policies {
		fs, err := trace.OpenFile(path)
		if err != nil {
			return nil, fmt.Errorf("sim: opening spilled stream: %w", err)
		}
		out[i], err = RunTLBOnly(fs, p, cfg)
		fs.Close()
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// replayBlock is the fused kernel's block size: small enough that a
// decoded block (~10 KB) stays L1-resident across every policy's walk,
// large enough to amortize the per-block classification pass.
const replayBlock = 256

// multiReplayState is the fused kernel's struct-of-arrays policy
// state: slot j of every slice belongs to policy j. The scratch slices
// are sized once at construction and reused every block — replayEvents
// is a hot path and must not allocate. The hoisted Access structs
// escape into the policy interface calls — loop-local ones would
// heap-allocate once per (event, policy).
type multiReplayState struct {
	tlbs []*tlb.TLB
	obs  []tlb.BranchObserver // slot j non-nil iff policy j observes branches
	warm []tlb.Stats          // per-policy stats latched at the warmup marker
	pf   *stridePrefetcher    // shared: its training input is policy-invariant

	accEvs []l2stream.Event // block scratch: dense access/warmup sub-block
	pfIdx  []int32          // block scratch: dense sub-block index of each prefetch fill
	pfVPN  []uint64

	a2, pa tlb.Access
}

// replayEvents drives one decoded event block through every policy
// TLB, block-policy-major: pass 0 does the policy-invariant work once
// (classify events, train the shared prefetcher, record its fills
// keyed by event index), then each policy walks the block with its TLB
// hot in cache. Non-observers walk only the access/warmup index list —
// the block-local analogue of the solo replay's branch-free view, so
// they never touch the branch events that outnumber accesses
// several-fold. Per policy the callback order matches the solo replay
// exactly: demand Lookup/Insert, then that event's prefetch fills in
// prefetcher order, branches in stream order for observers.
//
//chirp:hotpath
func (r *multiReplayState) replayEvents(evs []l2stream.Event) {
	// Pass 0: compact the access/warmup subsequence into the dense
	// sub-block non-observers walk (contiguous, L1-resident — the
	// block-local equivalent of the solo branch-free view, without its
	// allocation) and train the shared prefetcher, recording fills
	// against their access's dense index.
	nAcc, nPF := 0, 0
	for i := range evs {
		ev := &evs[i]
		switch ev.Kind {
		case l2stream.EventInstrAccess, l2stream.EventDataAccess:
			r.accEvs[nAcc] = *ev
			if r.pf != nil {
				for _, pv := range r.pf.observe(ev.PC, ev.VPN) {
					r.pfIdx[nPF] = int32(nAcc)
					r.pfVPN[nPF] = pv
					nPF++
				}
			}
			nAcc++
		case l2stream.EventWarmup:
			r.accEvs[nAcc] = *ev
			nAcc++
		}
	}
	acc := r.accEvs[:nAcc]
	for j := range r.tlbs {
		if bo := r.obs[j]; bo != nil {
			r.walkEvents(r.tlbs[j], j, bo, evs, r.pfIdx[:nPF])
		} else {
			r.walkAccesses(r.tlbs[j], j, acc, r.pfIdx[:nPF])
		}
	}
}

// walkAccesses replays one dense access/warmup sub-block into a
// non-observer policy's TLB. Fill indices key the sub-block.
//
//chirp:hotpath
func (r *multiReplayState) walkAccesses(t *tlb.TLB, j int, acc []l2stream.Event, pfIdx []int32) {
	pfk := 0
	for i := range acc {
		ev := &acc[i]
		if ev.Kind == l2stream.EventWarmup {
			r.warm[j] = t.Stats()
			continue
		}
		instr := ev.Kind == l2stream.EventInstrAccess
		r.a2 = tlb.Access{PC: ev.PC, VPN: ev.VPN, Instr: instr}
		if _, hit := t.Lookup(&r.a2); !hit {
			t.Insert(&r.a2, ev.VPN)
		}
		for pfk < len(pfIdx) && pfIdx[pfk] == int32(i) {
			pv := r.pfVPN[pfk]
			pfk++
			if t.Contains(pv) {
				continue
			}
			r.pa = tlb.Access{PC: ev.PC, VPN: pv, Instr: instr}
			t.InsertPrefetch(&r.pa, pv)
		}
	}
}

// walkEvents replays one full block into a branch-observing policy's
// TLB, walking every event; ord tracks the dense sub-block position so
// prefetch fills land on the same accesses walkAccesses lands them on.
//
//chirp:hotpath
func (r *multiReplayState) walkEvents(t *tlb.TLB, j int, bo tlb.BranchObserver, evs []l2stream.Event, pfIdx []int32) {
	pfk, ord := 0, int32(0)
	for i := range evs {
		ev := &evs[i]
		switch ev.Kind {
		case l2stream.EventInstrAccess, l2stream.EventDataAccess:
			instr := ev.Kind == l2stream.EventInstrAccess
			r.a2 = tlb.Access{PC: ev.PC, VPN: ev.VPN, Instr: instr}
			if _, hit := t.Lookup(&r.a2); !hit {
				t.Insert(&r.a2, ev.VPN)
			}
			for pfk < len(pfIdx) && pfIdx[pfk] == ord {
				pv := r.pfVPN[pfk]
				pfk++
				if t.Contains(pv) {
					continue
				}
				r.pa = tlb.Access{PC: ev.PC, VPN: pv, Instr: instr}
				t.InsertPrefetch(&r.pa, pv)
			}
			ord++
		case l2stream.EventBranch:
			bo.OnBranch(ev.PC, ev.Conditional, ev.Indirect, ev.Taken, ev.Target)
		case l2stream.EventWarmup:
			r.warm[j] = t.Stats()
			ord++
		}
	}
}

// RunMulti measures one workload under every policy in factories,
// sharing a single trace traversal when spec.Cache enables the
// capture/replay path (capture once, then one fused ReplayMulti pass).
// Without a cache it falls back to one direct run per policy — the
// bit-identical but unfused shape. spec.Policy is ignored; factories
// drives the fan-out. Results are ordered like factories.
func RunMulti(ctx context.Context, spec RunSpec, factories []PolicyFactory) ([]TLBOnlyResult, error) {
	if len(factories) == 0 {
		return nil, errors.New("sim: RunMulti needs at least one policy")
	}
	if err := spec.validateTrace(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if spec.Cache != nil {
		stream, err := StreamFor(spec.Cache, spec.name(), spec.Config, spec.open)
		if err != nil {
			return nil, fmt.Errorf("sim: capturing %s: %w", spec.name(), err)
		}
		ps := make([]tlb.Policy, len(factories))
		for i, f := range factories {
			ps[i] = f()
		}
		return ReplayMulti(stream, ps, spec.Config)
	}
	out := make([]TLBOnlyResult, len(factories))
	for i, f := range factories {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		src, err := spec.open()
		if err != nil {
			return nil, err
		}
		out[i], err = RunTLBOnly(src, f(), spec.Config)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
