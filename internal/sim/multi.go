package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/chirplab/chirp/internal/core"
	"github.com/chirplab/chirp/internal/l2stream"
	"github.com/chirplab/chirp/internal/policy"
	"github.com/chirplab/chirp/internal/tlb"
	"github.com/chirplab/chirp/internal/trace"
)

// ReplayMulti drives all N policies over a captured stream's derived
// views: the dense access sequence (PC/VPN/set-index arrays plus the
// precomputed stride-prefetch fill schedule) is materialized once per
// (stream, geometry, prefetch distance) and every policy walks it
// independently; predictive policies additionally consume their
// precomputed signature sequence (tlb.SignatureFed), so no policy
// maintains history registers at replay time. Policies are partitioned
// across min(N, GOMAXPROCS) goroutines sharing the read-only views.
// Results are bit-identical to calling ReplayTLBOnly once per policy,
// in the same order as policies.
//
// The equivalence argument: the captured event sequence is fixed and
// policy state lives entirely inside each policy's own TLB, so each
// policy's callback sequence — Lookup, Insert, prefetch fills, warmup
// latch, in access order — is exactly the solo replay's. What the solo
// replay derives per event (set indices, stride-prefetch decisions,
// CHiRP/GHRP signatures) is a pure function of the stream, computed
// once by the derived views through the same code the live policies
// run; branch events matter only through those signatures, so fed
// policies never walk them. A branch-observing policy outside the
// known signature families falls back to a solo-shaped replay over the
// memoized full event view.
func ReplayMulti(stream *l2stream.Stream, policies []tlb.Policy, cfg TLBOnlyConfig) ([]TLBOnlyResult, error) {
	return replayMulti(stream, policies, cfg, runtime.GOMAXPROCS(0))
}

// replayMulti is ReplayMulti with an explicit worker count, so tests
// can force the parallel schedule on any host.
func replayMulti(stream *l2stream.Stream, policies []tlb.Policy, cfg TLBOnlyConfig, workers int) ([]TLBOnlyResult, error) {
	if len(policies) == 0 {
		return nil, errors.New("sim: ReplayMulti needs at least one policy")
	}
	if got, want := stream.Config(), CaptureConfig(cfg); got != want {
		return nil, fmt.Errorf("sim: stream captured under %+v cannot replay %+v", got, want)
	}
	if stream.Spilled() {
		return replayMultiSpilled(stream, policies, cfg, workers)
	}
	if !stream.Warmed() {
		return nil, fmt.Errorf("sim: trace ended before warmup boundary (%d < %d instructions)", stream.Instructions(), stream.WarmupAt())
	}
	rv, err := replayViewFor(stream, cfg)
	if err != nil {
		return nil, err
	}

	out := make([]TLBOnlyResult, len(policies))
	errs := make([]error, len(policies))
	runPolicies(workers, len(policies), func(j int) {
		out[j], errs[j] = replayOne(stream, rv, policies[j], cfg)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// runPolicies executes job(0..n-1), fanning across workers goroutines
// when more than one is requested. Jobs touch disjoint state, so the
// only synchronization is the shared work counter and the final join.
// A panicking worker stops pulling jobs; its panic value is re-raised
// on the caller's goroutine after the join, preserving the caller's
// recover semantics (suite.go's protectMulti).
func runPolicies(workers, n int, job func(j int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for j := 0; j < n; j++ {
			job(j)
		}
		return
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		panicMu sync.Mutex
		panicV  any
	)
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicV == nil {
						panicV = r
					}
					panicMu.Unlock()
				}
			}()
			for {
				j := int(next.Add(1))
				if j >= n {
					return
				}
				job(j)
			}
		}()
	}
	wg.Wait()
	if panicV != nil {
		panic(panicV)
	}
}

// replayOne replays a single policy over the shared derived views:
// CHiRP and GHRP run in external-signature mode against their
// precomputed sequences, other branch observers fall back to the
// solo-shaped full-event replay (still over the memoized view), and
// everything else walks the dense access view directly.
func replayOne(stream *l2stream.Stream, rv *replayView, p tlb.Policy, cfg TLBOnlyConfig) (TLBOnlyResult, error) {
	switch pp := p.(type) {
	case *core.CHiRP:
		sigs, err := chirpSigsFor(stream, pp.Config())
		if err != nil {
			return TLBOnlyResult{}, err
		}
		t, err := tlb.New(cfg.Hierarchy.L2, p)
		if err != nil {
			return TLBOnlyResult{}, err
		}
		pp.BeginExternalSignatures()
		w := denseWalker{t: t}
		w.walkCHiRP(rv, pp, sigs)
		return finishReplay(stream, p, t, w.warm), nil
	case *policy.GHRP:
		sigs, err := ghrpSigsFor(stream)
		if err != nil {
			return TLBOnlyResult{}, err
		}
		t, err := tlb.New(cfg.Hierarchy.L2, p)
		if err != nil {
			return TLBOnlyResult{}, err
		}
		pp.BeginExternalSignatures()
		w := denseWalker{t: t}
		w.walkGHRP(rv, pp, sigs)
		return finishReplay(stream, p, t, w.warm), nil
	default:
		if _, observes := p.(tlb.BranchObserver); observes {
			return ReplayTLBOnly(stream, p, cfg)
		}
		t, err := tlb.New(cfg.Hierarchy.L2, p)
		if err != nil {
			return TLBOnlyResult{}, err
		}
		w := denseWalker{t: t}
		w.walkPlain(rv)
		return finishReplay(stream, p, t, w.warm), nil
	}
}

// finishReplay closes out one policy's replayed TLB: accounting flush,
// metric publication, result assembly — the same epilogue as the solo
// replay, off the hot path.
//
//chirp:releases tlbarrays
func finishReplay(stream *l2stream.Stream, p tlb.Policy, t *tlb.TLB, warm tlb.Stats) TLBOnlyResult {
	t.FlushAccounting()
	publishRun(p, t)
	res := replayResult(stream, p, t, warm)
	t.Release()
	return res
}

// denseWalker drives one policy's TLB over the dense replay view. The
// Access structs live in the struct: they escape into the policy
// interface calls, so loop-locals would heap-allocate per access.
//
// The walkers update a and pa with field writes rather than struct
// literals, skipping the per-access zeroing stores. That relies on two
// invariants: ASID stays at its zero value for the walk's lifetime
// (replay views are single-address-space), and the fields a walker
// does not write are either never read stale (pa.Set and pa.Prefetch
// are overwritten by InsertPrefetch before use) or never written by
// the TLB at all (a.Prefetch on the demand path).
type denseWalker struct {
	t     *tlb.TLB
	warm  tlb.Stats
	a, pa tlb.Access
}

// walkPlain replays the dense view into a policy with no signature
// feed: the demand walk plus Contains-gated prefetch fills, with the
// warm stats latched where the warmup marker sat.
//
//chirp:hotpath
func (w *denseWalker) walkPlain(v *replayView) {
	t := w.t
	pcs := v.pc
	// The reslices pin every column to len(pcs) so the loop indexes
	// without per-column bounds checks.
	vpns := v.vpn[:len(pcs)]
	sets := v.set[:len(pcs)]
	instrs := v.instr[:len(pcs)]
	pfOff, pfVPN := v.pfOff, v.pfVPN
	for i := range pcs {
		if i == v.warmIdx {
			w.warm = t.Stats()
		}
		instr := instrs[i] != 0
		vpn := vpns[i]
		w.a.PC = pcs[i]
		w.a.VPN = vpn
		w.a.Set = sets[i]
		w.a.Instr = instr
		if _, hit := t.LookupIndexed(&w.a); !hit {
			t.Insert(&w.a, vpn)
		}
		if pfOff != nil {
			for k := pfOff[i]; k < pfOff[i+1]; k++ {
				pv := pfVPN[k]
				if t.Contains(pv) {
					continue
				}
				w.pa.PC = pcs[i]
				w.pa.VPN = pv
				w.pa.Instr = instr
				t.InsertPrefetch(&w.pa, pv)
			}
		}
	}
	if v.warmIdx == len(pcs) {
		w.warm = t.Stats()
	}
}

// walkCHiRP is walkPlain feeding CHiRP its precomputed signature pair
// per access (demand in the low half, prefetch in the high half). The
// concrete receiver keeps the SetSignatures call devirtualized.
//
//chirp:hotpath
func (w *denseWalker) walkCHiRP(v *replayView, p *core.CHiRP, sigs []uint32) {
	t := w.t
	pcs := v.pc
	vpns := v.vpn[:len(pcs)]
	sets := v.set[:len(pcs)]
	instrs := v.instr[:len(pcs)]
	sigs = sigs[:len(pcs)]
	pfOff, pfVPN := v.pfOff, v.pfVPN
	for i := range pcs {
		if i == v.warmIdx {
			w.warm = t.Stats()
		}
		s := sigs[i]
		p.SetSignatures(uint64(s&0xffff), uint64(s>>16))
		instr := instrs[i] != 0
		vpn := vpns[i]
		w.a.PC = pcs[i]
		w.a.VPN = vpn
		w.a.Set = sets[i]
		w.a.Instr = instr
		if _, hit := t.LookupIndexed(&w.a); !hit {
			t.Insert(&w.a, vpn)
		}
		if pfOff != nil {
			for k := pfOff[i]; k < pfOff[i+1]; k++ {
				pv := pfVPN[k]
				if t.Contains(pv) {
					continue
				}
				w.pa.PC = pcs[i]
				w.pa.VPN = pv
				w.pa.Instr = instr
				t.InsertPrefetch(&w.pa, pv)
			}
		}
	}
	if v.warmIdx == len(pcs) {
		w.warm = t.Stats()
	}
}

// walkGHRP is walkPlain feeding GHRP its precomputed signature per
// access.
//
//chirp:hotpath
func (w *denseWalker) walkGHRP(v *replayView, p *policy.GHRP, sigs []uint64) {
	t := w.t
	pcs := v.pc
	vpns := v.vpn[:len(pcs)]
	sets := v.set[:len(pcs)]
	instrs := v.instr[:len(pcs)]
	sigs = sigs[:len(pcs)]
	pfOff, pfVPN := v.pfOff, v.pfVPN
	for i := range pcs {
		if i == v.warmIdx {
			w.warm = t.Stats()
		}
		p.SetSignatures(sigs[i], 0)
		instr := instrs[i] != 0
		vpn := vpns[i]
		w.a.PC = pcs[i]
		w.a.VPN = vpn
		w.a.Set = sets[i]
		w.a.Instr = instr
		if _, hit := t.LookupIndexed(&w.a); !hit {
			t.Insert(&w.a, vpn)
		}
		if pfOff != nil {
			for k := pfOff[i]; k < pfOff[i+1]; k++ {
				pv := pfVPN[k]
				if t.Contains(pv) {
					continue
				}
				w.pa.PC = pcs[i]
				w.pa.VPN = pv
				w.pa.Instr = instr
				t.InsertPrefetch(&w.pa, pv)
			}
		}
	}
	if v.warmIdx == len(pcs) {
		w.warm = t.Stats()
	}
}

// replayMultiSpilled replays a spilled stream: the event view never
// materialized, so each policy re-runs the direct driver over the
// record file — held retained for the whole fan-out so a racing
// Cache.Close cannot delete it mid-read. Policies fan across the same
// worker pool as the in-memory path; each opens its own reader.
func replayMultiSpilled(stream *l2stream.Stream, policies []tlb.Policy, cfg TLBOnlyConfig, workers int) ([]TLBOnlyResult, error) {
	path, release, err := stream.RetainSpill()
	if err != nil {
		return nil, err
	}
	defer release()
	out := make([]TLBOnlyResult, len(policies))
	errs := make([]error, len(policies))
	runPolicies(workers, len(policies), func(j int) {
		fs, err := trace.OpenFile(path)
		if err != nil {
			errs[j] = fmt.Errorf("sim: opening spilled stream: %w", err)
			return
		}
		out[j], errs[j] = RunTLBOnly(fs, policies[j], cfg)
		fs.Close()
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// RunMulti measures one workload under every policy in factories,
// sharing a single trace traversal when spec.Cache enables the
// capture/replay path (capture once, then one fused ReplayMulti pass).
// Without a cache it falls back to one direct run per policy — the
// bit-identical but unfused shape. spec.Policy is ignored; factories
// drives the fan-out. Results are ordered like factories.
func RunMulti(ctx context.Context, spec RunSpec, factories []PolicyFactory) ([]TLBOnlyResult, error) {
	if len(factories) == 0 {
		return nil, errors.New("sim: RunMulti needs at least one policy")
	}
	if err := spec.validateTrace(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if spec.Cache != nil {
		stream, err := StreamFor(spec.Cache, spec.name(), spec.specHash(), spec.Config, spec.open)
		if err != nil {
			return nil, fmt.Errorf("sim: capturing %s: %w", spec.name(), err)
		}
		ps := make([]tlb.Policy, len(factories))
		for i, f := range factories {
			ps[i] = f()
		}
		return ReplayMulti(stream, ps, spec.Config)
	}
	out := make([]TLBOnlyResult, len(factories))
	for i, f := range factories {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		src, err := spec.open()
		if err != nil {
			return nil, err
		}
		out[i], err = RunTLBOnly(src, f(), spec.Config)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
