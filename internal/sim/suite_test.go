package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/chirplab/chirp/internal/engine"
	"github.com/chirplab/chirp/internal/tlb"
	"github.com/chirplab/chirp/internal/workloads"
)

func TestParallelMatchesSerial(t *testing.T) {
	ws := workloads.SuiteN(4)
	pols, err := Factories([]string{"lru", "chirp"})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTLBOnlyConfig(150_000)
	serial, err := RunSuiteTLBOnly(ws, pols, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunSuiteTLBOnly(ws, pols, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i].MPKI != parallel[i].MPKI || serial[i].L2Misses != parallel[i].L2Misses {
			t.Fatalf("parallel result %d diverged: %+v vs %+v", i, serial[i], parallel[i])
		}
	}
}

func TestRunSuitePropagatesBadPolicy(t *testing.T) {
	if _, err := Factories([]string{"definitely-not-a-policy"}); err == nil {
		t.Fatal("Factories accepted an unknown policy")
	}
}

// panicPolicy explodes on its first access — the stand-in for a buggy
// replacement policy inside a long suite sweep.
type panicPolicy struct{}

func (panicPolicy) Name() string                      { return "panic-pol" }
func (panicPolicy) Attach(int, int)                   {}
func (panicPolicy) OnAccess(*tlb.Access)              { panic("policy bug") }
func (panicPolicy) OnHit(uint32, int, *tlb.Access)    {}
func (panicPolicy) Victim(uint32, *tlb.Access) int    { return 0 }
func (panicPolicy) OnInsert(uint32, int, *tlb.Access) {}

// TestSuitePanicSurfacesJobIdentity is the regression test for the
// old fanOut, where a panicking policy tore down the whole process:
// the panic must convert into an error naming the (workload, policy)
// pair, and results completed before it must survive.
func TestSuitePanicSurfacesJobIdentity(t *testing.T) {
	ws := workloads.SuiteN(2)
	pols := []NamedFactory{
		{Name: "lru", New: mustFactoryFor(t, "lru")},
		{Name: "panic-pol", New: func() tlb.Policy { return panicPolicy{} }},
	}
	cfg := DefaultTLBOnlyConfig(100_000)
	results, err := RunSuiteTLBOnlyCtx(context.Background(), ws, pols, cfg, SuiteOptions{Workers: 1})
	if err == nil {
		t.Fatal("panicking policy produced no error")
	}
	var je *engine.JobError
	if !errors.As(err, &je) {
		t.Fatalf("error %v carries no job identity", err)
	}
	if je.Key.Workload != ws[0].Name || je.Key.Policy != "panic-pol" {
		t.Errorf("blamed %v, want %s/panic-pol", je.Key, ws[0].Name)
	}
	var pe *engine.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v does not expose the panic", err)
	}
	if !strings.Contains(err.Error(), "panic") || !strings.Contains(err.Error(), "panic-pol") {
		t.Errorf("error text does not name the panic and policy: %v", err)
	}
	// The lru job that ran before the panic kept its result.
	if results[0].Workload != ws[0].Name || results[0].L2Accesses == 0 {
		t.Errorf("pre-panic result lost: %+v", results[0])
	}
}

// cancelAfter cancels a context once n jobs have finished — the test
// harness's stand-in for `kill` mid-sweep.
type cancelAfter struct {
	engine.Counters
	n      int64
	cancel context.CancelFunc
}

func (s *cancelAfter) JobDone(k engine.Key, elapsed time.Duration, err error) {
	s.Counters.JobDone(k, elapsed, err)
	if s.Done.Load() >= s.n {
		s.cancel()
	}
}

// TestSuiteCheckpointResumeByteIdentical kills a suite run after two
// jobs, resumes it from the checkpoint, and requires the resumed
// results to be byte-identical (as JSON) to an uninterrupted run's.
func TestSuiteCheckpointResumeByteIdentical(t *testing.T) {
	ws := workloads.SuiteN(3)
	pols, err := Factories([]string{"lru", "srrip"})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTLBOnlyConfig(120_000)

	clean, err := RunSuiteTLBOnly(ws, pols, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: cancelled after two completed jobs.
	path := t.TempDir() + "/suite.ckpt"
	ck, err := engine.Open(path, "suite-test")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sink := &cancelAfter{n: 2, cancel: cancel}
	_, err = RunSuiteTLBOnlyCtx(ctx, ws, pols, cfg, SuiteOptions{Workers: 1, Sink: sink, Checkpoint: ck})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run error = %v, want context.Canceled", err)
	}
	// Job granularity is fused: one job per workload, covering every
	// policy, so the checkpoint holds at most len(ws) rows.
	if ck.Len() < 2 || ck.Len() >= len(ws) {
		t.Fatalf("checkpoint holds %d rows, want a strict mid-run subset of %d", ck.Len(), len(ws))
	}
	ck.Close()

	// Resume against the same file; previously completed jobs must be
	// restored, not re-run, and the output must match exactly.
	ck2, err := engine.Open(path, "suite-test")
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	var c engine.Counters
	resumed, err := RunSuiteTLBOnlyCtx(context.Background(), ws, pols, cfg, SuiteOptions{Workers: 2, Sink: &c, Checkpoint: ck2})
	if err != nil {
		t.Fatal(err)
	}
	if c.Resumed.Load() < 2 {
		t.Errorf("resume restored %d jobs from checkpoint, want >= 2", c.Resumed.Load())
	}
	if int(c.Resumed.Load()+c.Done.Load()) != len(ws) {
		t.Errorf("resume completed %d jobs, want %d", c.Resumed.Load()+c.Done.Load(), len(ws))
	}

	cleanJSON, err := json.Marshal(clean)
	if err != nil {
		t.Fatal(err)
	}
	resumedJSON, err := json.Marshal(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cleanJSON, resumedJSON) {
		t.Errorf("resumed output diverged from uninterrupted run:\nclean:   %s\nresumed: %s", cleanJSON, resumedJSON)
	}
}

func mustFactoryFor(t *testing.T, name string) PolicyFactory {
	t.Helper()
	fs, err := Factories([]string{name})
	if err != nil {
		t.Fatal(err)
	}
	return fs[0].New
}
