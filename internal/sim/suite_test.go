package sim

import (
	"errors"
	"sync/atomic"
	"testing"

	"github.com/chirplab/chirp/internal/workloads"
)

func TestFanOutRunsAll(t *testing.T) {
	var count int64
	err := fanOut(100, 4, func(i int) error {
		atomic.AddInt64(&count, 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 100 {
		t.Errorf("ran %d/100 tasks", count)
	}
}

func TestFanOutPropagatesError(t *testing.T) {
	want := errors.New("boom")
	err := fanOut(10, 3, func(i int) error {
		if i == 7 {
			return want
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Errorf("error = %v, want %v", err, want)
	}
	// Serial path too.
	err = fanOut(10, 1, func(i int) error {
		if i == 3 {
			return want
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Errorf("serial error = %v, want %v", err, want)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	ws := workloads.SuiteN(4)
	pols, err := Factories([]string{"lru", "chirp"})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTLBOnlyConfig(150_000)
	serial, err := RunSuiteTLBOnly(ws, pols, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunSuiteTLBOnly(ws, pols, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i].MPKI != parallel[i].MPKI || serial[i].L2Misses != parallel[i].L2Misses {
			t.Fatalf("parallel result %d diverged: %+v vs %+v", i, serial[i], parallel[i])
		}
	}
}

func TestRunSuitePropagatesBadPolicy(t *testing.T) {
	if _, err := Factories([]string{"definitely-not-a-policy"}); err == nil {
		t.Fatal("Factories accepted an unknown policy")
	}
}
