package sim

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/chirplab/chirp/internal/pipeline"
	"github.com/chirplab/chirp/internal/policy"
	"github.com/chirplab/chirp/internal/tlb"
	"github.com/chirplab/chirp/internal/trace"
	"github.com/chirplab/chirp/internal/workloads"
)

// SuiteResult is one (workload, policy) TLB-only measurement.
type SuiteResult struct {
	Workload string
	Category string
	Profile  string
	TLBOnlyResult
}

// TimingResult is one (workload, policy) full-timing measurement.
type TimingResult struct {
	Workload string
	Category string
	Profile  string
	pipeline.Result
}

// RunSuiteTLBOnly measures each workload under each policy with the
// fast TLB-only driver, fanning (workload, policy) pairs across
// workers goroutines (GOMAXPROCS when workers <= 0). Results are
// ordered by workload then policy.
func RunSuiteTLBOnly(ws []*workloads.Workload, pols []NamedFactory, cfg TLBOnlyConfig, workers int) ([]SuiteResult, error) {
	results := make([]SuiteResult, len(ws)*len(pols))
	err := fanOut(len(ws)*len(pols), workers, func(i int) error {
		w := ws[i/len(pols)]
		p := pols[i%len(pols)]
		prog := w.Program()
		src := trace.NewLimit(workloads.NewGenerator(prog), cfg.Instructions)
		res, err := RunTLBOnly(src, p.New(), cfg)
		if err != nil {
			return fmt.Errorf("%s/%s: %w", w.Name, p.Name, err)
		}
		res.Policy = p.Name
		results[i] = SuiteResult{Workload: w.Name, Category: w.Category, Profile: prog.Profile, TLBOnlyResult: res}
		return nil
	})
	return results, err
}

// RunSuiteTiming measures each workload under each policy with the
// full timing model.
func RunSuiteTiming(ws []*workloads.Workload, pols []NamedFactory, cfg pipeline.Config, workers int) ([]TimingResult, error) {
	results := make([]TimingResult, len(ws)*len(pols))
	err := fanOut(len(ws)*len(pols), workers, func(i int) error {
		w := ws[i/len(pols)]
		p := pols[i%len(pols)]
		prog := w.Program()
		m, err := pipeline.New(cfg, p.New(), func() tlb.Policy { return policy.NewLRU() })
		if err != nil {
			return fmt.Errorf("%s/%s: %w", w.Name, p.Name, err)
		}
		src := trace.NewLimit(workloads.NewGenerator(prog), cfg.Instructions)
		res, err := m.Run(src)
		if err != nil {
			return fmt.Errorf("%s/%s: %w", w.Name, p.Name, err)
		}
		res.Policy = p.Name
		results[i] = TimingResult{Workload: w.Name, Category: w.Category, Profile: prog.Profile, Result: res}
		return nil
	})
	return results, err
}

// fanOut runs fn(0..n-1) across a bounded worker pool and returns the
// first error.
func fanOut(n, workers int, fn func(i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		err1 error
		next = make(chan int)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					mu.Lock()
					if err1 == nil {
						err1 = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return err1
}
