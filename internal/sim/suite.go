package sim

import (
	"context"
	"fmt"

	"github.com/chirplab/chirp/internal/engine"
	"github.com/chirplab/chirp/internal/l2stream"
	"github.com/chirplab/chirp/internal/pipeline"
	"github.com/chirplab/chirp/internal/policy"
	"github.com/chirplab/chirp/internal/tlb"
	"github.com/chirplab/chirp/internal/trace"
	"github.com/chirplab/chirp/internal/workloads"
)

// SuiteResult is one (workload, policy) TLB-only measurement.
type SuiteResult struct {
	Workload string
	Category string
	Profile  string
	TLBOnlyResult
}

// TimingResult is one (workload, policy) full-timing measurement.
type TimingResult struct {
	Workload string
	Category string
	Profile  string
	pipeline.Result
}

// SuiteOptions carries the cross-cutting controls of a suite run;
// the zero value runs serially with no telemetry or checkpointing.
type SuiteOptions struct {
	// Workers bounds simulation parallelism (<= 0 means GOMAXPROCS).
	Workers int
	// Sink observes per-job progress (nil = silent).
	Sink engine.Sink
	// Checkpoint, when non-nil, restores already-completed (workload,
	// policy) rows instead of re-simulating them and records each new
	// completion, so a killed run resumes where it stopped.
	Checkpoint *engine.Checkpoint
	// Scope namespaces this invocation's checkpoint keys. Callers that
	// run the suite more than once against one checkpoint file (config
	// sweeps reusing policy names) must pass distinct scopes.
	Scope string
	// StreamCache, when non-nil, shares captured L2 event streams
	// across suite invocations, so repeated calls that differ only in
	// the L2 policy, L2 geometry, or prefetch distance capture each
	// workload once total. When nil, the TLB-only runner owns a
	// per-call cache (released on return) so the per-workload capture
	// is still shared across this call's policies.
	StreamCache *l2stream.Cache
	// StreamBudget is the byte budget of the owned per-call cache
	// (0 = l2stream.DefaultBudget). A negative budget disables
	// capture/replay entirely: every (workload, policy) cell runs the
	// direct RunTLBOnly path. Ignored when StreamCache is set.
	StreamBudget int64
}

// suiteJobs builds one engine job per (workload, policy) pair, in
// workload-major order — the result ordering both runners guarantee.
func suiteJobs[T any](ws []*workloads.Workload, pols []NamedFactory, scope string,
	run func(ctx context.Context, w *workloads.Workload, p NamedFactory) (T, error)) []engine.Job[T] {
	jobs := make([]engine.Job[T], 0, len(ws)*len(pols))
	for _, w := range ws {
		for _, p := range pols {
			w, p := w, p
			jobs = append(jobs, engine.Job[T]{
				Key: engine.Key{Scope: scope, Workload: w.Name, Policy: p.Name},
				Run: func(ctx context.Context) (T, error) { return run(ctx, w, p) },
			})
		}
	}
	return jobs
}

// RunSuiteTLBOnlyCtx measures each workload under each policy with
// the fast TLB-only driver, fanning (workload, policy) pairs across
// the engine's worker pool. Results are ordered by workload then
// policy. On failure (including a panicking policy, which surfaces as
// an error naming its pair instead of crashing the process) the
// completed results are still returned — and still checkpointed, when
// opts.Checkpoint is set.
func RunSuiteTLBOnlyCtx(ctx context.Context, ws []*workloads.Workload, pols []NamedFactory, cfg TLBOnlyConfig, opts SuiteOptions) ([]SuiteResult, error) {
	cache := opts.StreamCache
	if cache == nil && opts.StreamBudget >= 0 {
		cache = l2stream.NewCache(opts.StreamBudget, "")
		defer cache.Close()
	}
	jobs := suiteJobs(ws, pols, opts.Scope, func(ctx context.Context, w *workloads.Workload, p NamedFactory) (SuiteResult, error) {
		// Every cell goes through the one Run entry point; the spec's
		// Cache field (shared across this workload's policies — and
		// across suite calls when opts.StreamCache is) selects
		// capture/replay vs the direct path.
		res, err := Run(ctx, RunSpec{Workload: w, Policy: p.New, Config: cfg, Cache: cache})
		if err != nil {
			return SuiteResult{}, fmt.Errorf("%s/%s: %w", w.Name, p.Name, err)
		}
		res.Policy = p.Name
		return SuiteResult{Workload: w.Name, Category: w.Category, Profile: w.Program().Profile, TLBOnlyResult: res}, nil
	})
	return engine.Run(ctx, jobs, engine.Config{Workers: opts.Workers, Sink: opts.Sink, Checkpoint: opts.Checkpoint})
}

// RunSuiteTLBOnly is RunSuiteTLBOnlyCtx without cancellation,
// telemetry or checkpointing.
//
// Deprecated: use RunSuiteTLBOnlyCtx (or Run for a single cell). This
// wrapper exists for source compatibility with pre-engine callers and
// will not grow new options.
//
//chirp:allow ctx-first deprecated pre-engine wrapper; its signature cannot grow a ctx
func RunSuiteTLBOnly(ws []*workloads.Workload, pols []NamedFactory, cfg TLBOnlyConfig, workers int) ([]SuiteResult, error) {
	return RunSuiteTLBOnlyCtx(context.Background(), ws, pols, cfg, SuiteOptions{Workers: workers})
}

// RunSuiteTimingCtx measures each workload under each policy with the
// full timing model, with the same engine semantics as
// RunSuiteTLBOnlyCtx.
func RunSuiteTimingCtx(ctx context.Context, ws []*workloads.Workload, pols []NamedFactory, cfg pipeline.Config, opts SuiteOptions) ([]TimingResult, error) {
	jobs := suiteJobs(ws, pols, opts.Scope, func(_ context.Context, w *workloads.Workload, p NamedFactory) (TimingResult, error) {
		prog := w.Program()
		m, err := pipeline.New(cfg, p.New(), func() tlb.Policy { return policy.NewLRU() })
		if err != nil {
			return TimingResult{}, fmt.Errorf("%s/%s: %w", w.Name, p.Name, err)
		}
		src := trace.NewLimit(workloads.NewGenerator(prog), cfg.Instructions)
		res, err := m.Run(src)
		if err != nil {
			return TimingResult{}, fmt.Errorf("%s/%s: %w", w.Name, p.Name, err)
		}
		res.Policy = p.Name
		return TimingResult{Workload: w.Name, Category: w.Category, Profile: prog.Profile, Result: res}, nil
	})
	return engine.Run(ctx, jobs, engine.Config{Workers: opts.Workers, Sink: opts.Sink, Checkpoint: opts.Checkpoint})
}

// RunSuiteTiming is RunSuiteTimingCtx without cancellation, telemetry
// or checkpointing.
//
// Deprecated: use RunSuiteTimingCtx. This wrapper exists for source
// compatibility with pre-engine callers and will not grow new options.
//
//chirp:allow ctx-first deprecated pre-engine wrapper; its signature cannot grow a ctx
func RunSuiteTiming(ws []*workloads.Workload, pols []NamedFactory, cfg pipeline.Config, workers int) ([]TimingResult, error) {
	return RunSuiteTimingCtx(context.Background(), ws, pols, cfg, SuiteOptions{Workers: workers})
}
