package sim

import (
	"context"
	"fmt"
	"runtime/debug"
	"strings"

	"github.com/chirplab/chirp/internal/engine"
	"github.com/chirplab/chirp/internal/l2stream"
	"github.com/chirplab/chirp/internal/pipeline"
	"github.com/chirplab/chirp/internal/policy"
	"github.com/chirplab/chirp/internal/tlb"
	"github.com/chirplab/chirp/internal/trace"
	"github.com/chirplab/chirp/internal/workloads"
)

// SuiteResult is one (workload, policy) TLB-only measurement.
type SuiteResult struct {
	Workload string
	Category string
	Profile  string
	TLBOnlyResult
}

// TimingResult is one (workload, policy) full-timing measurement.
type TimingResult struct {
	Workload string
	Category string
	Profile  string
	pipeline.Result
}

// SuiteOptions carries the cross-cutting controls of a suite run;
// the zero value runs serially with no telemetry or checkpointing.
type SuiteOptions struct {
	// Workers bounds simulation parallelism (<= 0 means GOMAXPROCS).
	Workers int
	// Sink observes per-job progress (nil = silent).
	Sink engine.Sink
	// Checkpoint, when non-nil, restores already-completed (workload,
	// policy) rows instead of re-simulating them and records each new
	// completion, so a killed run resumes where it stopped.
	Checkpoint *engine.Checkpoint
	// Scope namespaces this invocation's checkpoint keys. Callers that
	// run the suite more than once against one checkpoint file (config
	// sweeps reusing policy names) must pass distinct scopes.
	Scope string
	// StreamCache, when non-nil, shares captured L2 event streams
	// across suite invocations, so repeated calls that differ only in
	// the L2 policy, L2 geometry, or prefetch distance capture each
	// workload once total. When nil, the TLB-only runner owns a
	// per-call cache (released on return) so the per-workload capture
	// is still shared across this call's policies.
	StreamCache *l2stream.Cache
	// StreamBudget is the byte budget of the owned per-call cache
	// (0 = l2stream.DefaultBudget). A negative budget disables
	// capture/replay entirely: every (workload, policy) cell runs the
	// direct RunTLBOnly path. Ignored when StreamCache is set.
	StreamBudget int64
}

// suiteJobs builds one engine job per (workload, policy) pair, in
// workload-major order — the result ordering both runners guarantee.
func suiteJobs[T any](ws []*workloads.Workload, pols []NamedFactory, scope string,
	run func(ctx context.Context, w *workloads.Workload, p NamedFactory) (T, error)) []engine.Job[T] {
	jobs := make([]engine.Job[T], 0, len(ws)*len(pols))
	for _, w := range ws {
		for _, p := range pols {
			w, p := w, p
			jobs = append(jobs, engine.Job[T]{
				Key: engine.Key{Scope: scope, Workload: w.Name, Policy: p.Name},
				Run: func(ctx context.Context) (T, error) { return run(ctx, w, p) },
			})
		}
	}
	return jobs
}

// RunSuiteTLBOnlyCtx measures each workload under each policy with
// the fast TLB-only driver, fanning (workload, policy) pairs across
// the engine's worker pool. Results are ordered by workload then
// policy. On failure (including a panicking policy, which surfaces as
// an error naming its pair instead of crashing the process) the
// completed results are still returned — and still checkpointed, when
// opts.Checkpoint is set.
func RunSuiteTLBOnlyCtx(ctx context.Context, ws []*workloads.Workload, pols []NamedFactory, cfg TLBOnlyConfig, opts SuiteOptions) ([]SuiteResult, error) {
	cache := opts.StreamCache
	if cache == nil && opts.StreamBudget >= 0 {
		cache = l2stream.NewCache(opts.StreamBudget, "")
		defer cache.Close()
	}
	if cache != nil {
		return runSuiteFused(ctx, ws, pols, cfg, cache, opts)
	}
	jobs := suiteJobs(ws, pols, opts.Scope, func(ctx context.Context, w *workloads.Workload, p NamedFactory) (SuiteResult, error) {
		// Direct mode (capture/replay disabled): every cell is its own
		// full trace run through the one Run entry point.
		res, err := Run(ctx, RunSpec{Workload: w, Policy: p.New, Config: cfg})
		if err != nil {
			return SuiteResult{}, fmt.Errorf("%s/%s: %w", w.Name, p.Name, err)
		}
		res.Policy = p.Name
		return SuiteResult{Workload: w.Name, Category: w.Category, Profile: w.Profile(), TLBOnlyResult: res}, nil
	})
	return engine.Run(ctx, jobs, engine.Config{Workers: opts.Workers, Sink: opts.Sink, Checkpoint: opts.Checkpoint})
}

// runSuiteFused is the capture/replay suite path: one engine job per
// workload captures (or reuses) the stream and replays every policy in
// a single fused pass (ReplayMulti), instead of len(pols) jobs that
// each re-walk the decoded view. Results keep the workload-major,
// policy-minor order the per-cell path guarantees, and a failed
// workload still leaves its policy rows in place (zero-valued) so
// callers indexing cell (i, j) stay correct.
//
// Checkpoint keys are per fused job — Policy is the "+"-joined policy
// list — so a resumed run re-replays a half-finished workload instead
// of trusting partial rows (replays are cheap; captures are what the
// persistent cache tier saves).
func runSuiteFused(ctx context.Context, ws []*workloads.Workload, pols []NamedFactory, cfg TLBOnlyConfig, cache *l2stream.Cache, opts SuiteOptions) ([]SuiteResult, error) {
	factories := make([]PolicyFactory, len(pols))
	names := make([]string, len(pols))
	for i, p := range pols {
		factories[i], names[i] = p.New, p.Name
	}
	joined := strings.Join(names, "+")
	jobs := make([]engine.Job[[]SuiteResult], 0, len(ws))
	for _, w := range ws {
		w := w
		jobs = append(jobs, engine.Job[[]SuiteResult]{
			Key: engine.Key{Scope: opts.Scope, Workload: w.Name, Policy: joined},
			Run: func(ctx context.Context) ([]SuiteResult, error) {
				return runWorkloadFused(ctx, w, pols, factories, cfg, cache, opts.Scope)
			},
		})
	}
	grouped, err := engine.Run(ctx, jobs, engine.Config{Workers: opts.Workers, Sink: opts.Sink, Checkpoint: opts.Checkpoint})
	flat := make([]SuiteResult, 0, len(ws)*len(pols))
	for _, rows := range grouped {
		if rows == nil {
			rows = make([]SuiteResult, len(pols))
		}
		flat = append(flat, rows...)
	}
	return flat, err
}

// runWorkloadFused runs one workload's fused job. The fast path is a
// single ReplayMulti pass. If that pass fails — one broken policy
// errors or panics mid-event, which necessarily takes the whole fused
// group down — the job degrades to solo per-policy runs over the
// (already captured) stream, so every healthy policy still delivers
// its row and the error blames the precise (workload, policy) cell,
// exactly as the per-cell scheduling used to. The returned rows
// accompany the error; the engine keeps both.
func runWorkloadFused(ctx context.Context, w *workloads.Workload, pols []NamedFactory, factories []PolicyFactory, cfg TLBOnlyConfig, cache *l2stream.Cache, scope string) ([]SuiteResult, error) {
	row := func(res TLBOnlyResult, name string) SuiteResult {
		res.Policy = name
		return SuiteResult{Workload: w.Name, Category: w.Category, Profile: w.Profile(), TLBOnlyResult: res}
	}
	rs, err := protectMulti(ctx, w, factories, cfg, cache)
	if err == nil {
		rows := make([]SuiteResult, len(rs))
		for i := range rs {
			rows[i] = row(rs[i], pols[i].Name)
		}
		return rows, nil
	}

	rows := make([]SuiteResult, len(pols))
	var firstErr error
	for i, p := range pols {
		res, rerr := protectCell(ctx, w, p, cfg, cache)
		if rerr != nil {
			if firstErr == nil {
				firstErr = &engine.JobError{
					Key: engine.Key{Scope: scope, Workload: w.Name, Policy: p.Name},
					Err: rerr,
				}
			}
			continue
		}
		rows[i] = row(res, p.Name)
	}
	if firstErr == nil {
		// The fused pass failed but every solo rerun passed (a capture
		// error that resolved, or a flaky policy): report the original
		// failure rather than pretending it did not happen.
		firstErr = fmt.Errorf("%s: fused replay failed (solo reruns passed): %w", w.Name, err)
	}
	return rows, firstErr
}

// protectMulti runs the fused pass, converting a policy panic into an
// error so the job can fall back to solo runs instead of relying on
// the engine's recovery (which would blame the whole fused key).
func protectMulti(ctx context.Context, w *workloads.Workload, factories []PolicyFactory, cfg TLBOnlyConfig, cache *l2stream.Cache) (rs []TLBOnlyResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &engine.PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return RunMulti(ctx, RunSpec{Workload: w, Config: cfg, Cache: cache}, factories)
}

// protectCell runs one (workload, policy) cell solo with the same
// panic conversion the engine applies, so the fallback's blame carries
// the panic value and stack.
func protectCell(ctx context.Context, w *workloads.Workload, p NamedFactory, cfg TLBOnlyConfig, cache *l2stream.Cache) (res TLBOnlyResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &engine.PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return Run(ctx, RunSpec{Workload: w, Policy: p.New, Config: cfg, Cache: cache})
}

// RunSuiteTLBOnly is RunSuiteTLBOnlyCtx without cancellation,
// telemetry or checkpointing.
//
// Deprecated: use RunSuiteTLBOnlyCtx (or Run for a single cell). This
// wrapper exists for source compatibility with pre-engine callers and
// will not grow new options.
//
//chirp:allow ctx-first deprecated pre-engine wrapper; its signature cannot grow a ctx
func RunSuiteTLBOnly(ws []*workloads.Workload, pols []NamedFactory, cfg TLBOnlyConfig, workers int) ([]SuiteResult, error) {
	return RunSuiteTLBOnlyCtx(context.Background(), ws, pols, cfg, SuiteOptions{Workers: workers})
}

// RunSuiteTimingCtx measures each workload under each policy with the
// full timing model, with the same engine semantics as
// RunSuiteTLBOnlyCtx.
func RunSuiteTimingCtx(ctx context.Context, ws []*workloads.Workload, pols []NamedFactory, cfg pipeline.Config, opts SuiteOptions) ([]TimingResult, error) {
	jobs := suiteJobs(ws, pols, opts.Scope, func(_ context.Context, w *workloads.Workload, p NamedFactory) (TimingResult, error) {
		m, err := pipeline.New(cfg, p.New(), func() tlb.Policy { return policy.NewLRU() })
		if err != nil {
			return TimingResult{}, fmt.Errorf("%s/%s: %w", w.Name, p.Name, err)
		}
		src := trace.NewLimit(w.Source(), cfg.Instructions)
		res, err := m.Run(src)
		if err != nil {
			return TimingResult{}, fmt.Errorf("%s/%s: %w", w.Name, p.Name, err)
		}
		res.Policy = p.Name
		return TimingResult{Workload: w.Name, Category: w.Category, Profile: w.Profile(), Result: res}, nil
	})
	return engine.Run(ctx, jobs, engine.Config{Workers: opts.Workers, Sink: opts.Sink, Checkpoint: opts.Checkpoint})
}

// RunSuiteTiming is RunSuiteTimingCtx without cancellation, telemetry
// or checkpointing.
//
// Deprecated: use RunSuiteTimingCtx. This wrapper exists for source
// compatibility with pre-engine callers and will not grow new options.
//
//chirp:allow ctx-first deprecated pre-engine wrapper; its signature cannot grow a ctx
func RunSuiteTiming(ws []*workloads.Workload, pols []NamedFactory, cfg pipeline.Config, workers int) ([]TimingResult, error) {
	return RunSuiteTimingCtx(context.Background(), ws, pols, cfg, SuiteOptions{Workers: workers})
}
