package sim

import (
	"fmt"

	"github.com/chirplab/chirp/internal/l2stream"
	"github.com/chirplab/chirp/internal/tlb"
	"github.com/chirplab/chirp/internal/trace"
)

// CaptureConfig projects a TLB-only configuration onto its
// policy-invariant part — everything above the L2 policy boundary.
// Runs whose CaptureConfigs are equal share one captured stream, no
// matter which L2 policy, L2 geometry (beyond the page size), or
// prefetch distance they use.
func CaptureConfig(cfg TLBOnlyConfig) l2stream.Config {
	return l2stream.Config{
		L1I:            cfg.Hierarchy.L1I,
		L1D:            cfg.Hierarchy.L1D,
		PageShift:      cfg.Hierarchy.L2.PageShift,
		Instructions:   cfg.Instructions,
		WarmupFraction: cfg.WarmupFraction,
	}
}

// CaptureKey returns the stream-cache key for a workload under cfg.
// spec is the content hash of the workload spec the workload came from
// ("" for legacy suite workloads and trace files); it keeps captures
// from colliding across specs that reuse a workload name.
func CaptureKey(workload, spec string, cfg TLBOnlyConfig) l2stream.Key {
	return l2stream.Key{Workload: workload, Spec: spec, Config: CaptureConfig(cfg)}
}

// StreamFor returns the captured stream for a workload from cache,
// capturing it on first use. open must return a fresh bounded source
// for the workload (it is only called when the capture actually runs).
func StreamFor(cache *l2stream.Cache, workload, spec string, cfg TLBOnlyConfig, open func() (trace.Source, error)) (*l2stream.Stream, error) {
	return cache.GetOrCapture(CaptureKey(workload, spec, cfg), func(opts l2stream.CaptureOptions) (*l2stream.Stream, error) {
		src, err := open()
		if err != nil {
			return nil, err
		}
		return l2stream.Capture(src, CaptureConfig(cfg), opts)
	})
}

// ReplayTLBOnly drives the L2 TLB under l2p over a captured stream,
// producing a TLBOnlyResult bit-identical to RunTLBOnly over the same
// trace and configuration: the event sequence reproduces every L2
// lookup, insert, prefetch-train and branch callback in order, and the
// policy-invariant scalars (instruction totals, warmup position, L1
// miss counts) come from the capture. Spilled streams replay as a
// direct run over the spill file, which holds exactly the record
// prefix RunTLBOnly would consume.
func ReplayTLBOnly(stream *l2stream.Stream, l2p tlb.Policy, cfg TLBOnlyConfig) (TLBOnlyResult, error) {
	if got, want := stream.Config(), CaptureConfig(cfg); got != want {
		return TLBOnlyResult{}, fmt.Errorf("sim: stream captured under %+v cannot replay %+v", got, want)
	}
	if stream.Spilled() {
		// Hold a reference for the whole pass: a Cache.Close racing
		// this replay defers the file's deletion until release runs.
		path, release, err := stream.RetainSpill()
		if err != nil {
			return TLBOnlyResult{}, err
		}
		defer release()
		fs, err := trace.OpenFile(path)
		if err != nil {
			return TLBOnlyResult{}, fmt.Errorf("sim: opening spilled stream: %w", err)
		}
		defer fs.Close()
		return RunTLBOnly(fs, l2p, cfg)
	}
	if !stream.Warmed() {
		// The same failure RunTLBOnly reports for a too-short trace.
		return TLBOnlyResult{}, fmt.Errorf("sim: trace ended before warmup boundary (%d < %d instructions)", stream.Instructions(), stream.WarmupAt())
	}

	l2, err := tlb.New(cfg.Hierarchy.L2, l2p)
	if err != nil {
		return TLBOnlyResult{}, err
	}
	defer l2.Release()
	bo, observesBranches := l2p.(tlb.BranchObserver)

	var pf *stridePrefetcher
	if cfg.PrefetchDistance > 0 {
		pf = newStridePrefetcher(cfg.PrefetchDistance)
	}

	// One decode per stream, shared across the policy fan-out: the
	// first replay materializes the event slice, the rest iterate it.
	// Policies that do not observe branches replay the branch-free
	// access view, so they never touch the branch events they would
	// discard (both views are memoized single-flight on the stream).
	var evs []l2stream.Event
	var err2 error
	if observesBranches {
		evs, err2 = stream.DecodeAll()
	} else {
		evs, err2 = stream.DecodeAccesses()
	}
	if err2 != nil {
		return TLBOnlyResult{}, err2
	}
	rs := &replayState{l2: l2, pf: pf, bo: bo}
	warmStats := rs.replayEvents(evs)

	l2.FlushAccounting()
	publishRun(l2p, l2)
	return replayResult(stream, l2p, l2, warmStats), nil
}

// replayResult assembles a replayed policy's result from its finished
// L2 TLB and the stats latched at the warmup marker. Shared by the
// solo and fused replay drivers so they agree field for field.
func replayResult(stream *l2stream.Stream, l2p tlb.Policy, l2 *tlb.TLB, warmStats tlb.Stats) TLBOnlyResult {
	st := l2.Stats()
	res := TLBOnlyResult{
		Policy:       l2p.Name(),
		Instructions: stream.Instructions() - stream.WarmupInstructions(),
		L2Accesses:   st.Accesses,
		L2Misses:     st.Misses - warmStats.Misses,
		Efficiency:   st.Efficiency(),
		L1IMisses:    stream.L1IMisses(),
		L1DMisses:    stream.L1DMisses(),
	}
	if res.Instructions > 0 {
		res.MPKI = float64(res.L2Misses) / (float64(res.Instructions) / 1000)
	}
	if ta, ok := l2p.(tlb.TableAccounting); ok {
		res.TableReads, res.TableWrites = ta.TableAccesses()
		if st.Accesses > 0 {
			res.TableAccessRate = float64(res.TableReads+res.TableWrites) / float64(st.Accesses)
		}
	}
	return res
}

// replayState is the replay driver's inner-loop state. The event walk
// is a method rather than inline code because it is //chirp:hotpath,
// and the per-event Access structs live in the struct: they escape
// into the policy interface calls, so a loop-local struct would
// heap-allocate once per event.
type replayState struct {
	l2     *tlb.TLB
	pf     *stridePrefetcher
	bo     tlb.BranchObserver // nil when the policy ignores branches
	a2, pa tlb.Access
}

// replayEvents drives the decoded event sequence through the L2 TLB
// and returns the L2 stats latched at the warmup marker.
//
//chirp:hotpath
func (r *replayState) replayEvents(evs []l2stream.Event) tlb.Stats {
	var warmStats tlb.Stats
	for i := range evs {
		ev := &evs[i]
		switch ev.Kind {
		case l2stream.EventInstrAccess, l2stream.EventDataAccess:
			instr := ev.Kind == l2stream.EventInstrAccess
			r.a2 = tlb.Access{PC: ev.PC, VPN: ev.VPN, Instr: instr}
			if _, hit := r.l2.Lookup(&r.a2); !hit {
				r.l2.Insert(&r.a2, ev.VPN)
			}
			if r.pf != nil {
				// Same contract as RunTLBOnly: train on the full demand
				// stream, fill through InsertPrefetch.
				for _, pv := range r.pf.observe(ev.PC, ev.VPN) {
					if r.l2.Contains(pv) {
						continue
					}
					r.pa = tlb.Access{PC: ev.PC, VPN: pv, Instr: instr}
					r.l2.InsertPrefetch(&r.pa, pv)
				}
			}
		case l2stream.EventBranch:
			if r.bo != nil {
				r.bo.OnBranch(ev.PC, ev.Conditional, ev.Indirect, ev.Taken, ev.Target)
			}
		case l2stream.EventWarmup:
			warmStats = r.l2.Stats()
		}
	}
	return warmStats
}

// StreamVPNs extracts the L2 demand-access VPN sequence from a
// captured stream — the input CollectL2Stream produces, without
// re-running the generator and L1 filters. Spilled streams fall back
// to CollectL2Stream over the spill file.
func StreamVPNs(stream *l2stream.Stream, cfg TLBOnlyConfig) ([]uint64, error) {
	if got, want := stream.Config(), CaptureConfig(cfg); got != want {
		return nil, fmt.Errorf("sim: stream captured under %+v cannot serve %+v", got, want)
	}
	if stream.Spilled() {
		path, release, err := stream.RetainSpill()
		if err != nil {
			return nil, err
		}
		defer release()
		fs, err := trace.OpenFile(path)
		if err != nil {
			return nil, fmt.Errorf("sim: opening spilled stream: %w", err)
		}
		defer fs.Close()
		return CollectL2Stream(fs, cfg)
	}
	// The branch-free view is exactly the access sequence (plus the
	// warmup marker), and it is the memo the OPT oracle's policy-side
	// replays share.
	evs, err := stream.DecodeAccesses()
	if err != nil {
		return nil, err
	}
	vpns := make([]uint64, 0, stream.Accesses())
	for i := range evs {
		if k := evs[i].Kind; k == l2stream.EventInstrAccess || k == l2stream.EventDataAccess {
			vpns = append(vpns, evs[i].VPN)
		}
	}
	return vpns, nil
}
