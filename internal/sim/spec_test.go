package sim

import (
	"context"
	"testing"

	"github.com/chirplab/chirp/internal/l2stream"
	"github.com/chirplab/chirp/internal/workloads/spec"
)

// multiTenantDoc is a two-tenant population with deliberately skewed
// footprints: tenant "edge" runs a small crypto kernel, tenant "lake" a
// page-hungry random-access scan, so their isolated MPKI must differ.
const multiTenantDoc = `{
  "version": 1, "name": "mt-e2e",
  "clients": [
    {"id": "sign", "tenant": "edge", "rateFraction": 0.5, "template": "crypto"},
    {"id": "scan", "tenant": "lake", "rateFraction": 0.5, "program": {
      "regions": [{"name": "heap", "pages": 16384}],
      "kernels": [{"name": "probe", "loads": 4}],
      "sites": [{"kernel": "probe", "region": "heap", "behavior": "gups", "pagesPerCall": 8}]
    }}
  ]
}`

// TestRunSpecWorkloadEndToEnd drives a spec-compiled multi-tenant
// workload through the full Run pipeline: the combined population and
// each tenant view simulate under CHiRP, capture/replay stays
// bit-identical to the direct path for composite sources, the tenant
// views report distinct MPKI, and the spec hash keys captures apart
// when the master seed changes.
func TestRunSpecWorkloadEndToEnd(t *testing.T) {
	s, err := spec.Parse([]byte(multiTenantDoc))
	if err != nil {
		t.Fatal(err)
	}
	c, err := spec.Compile(s, spec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTLBOnlyConfig(200000)
	factories, err := Factories([]string{"chirp"})
	if err != nil {
		t.Fatal(err)
	}
	chirp := factories[0].New

	cache := l2stream.NewCache(0, t.TempDir())
	defer cache.Close()
	ctx := context.Background()

	comb := c.Combined()
	direct, err := Run(ctx, RunSpec{Workload: comb, Policy: chirp, Config: cfg})
	if err != nil {
		t.Fatalf("combined direct: %v", err)
	}
	replayed, err := Run(ctx, RunSpec{Workload: comb, Policy: chirp, Config: cfg, Cache: cache})
	if err != nil {
		t.Fatalf("combined replay: %v", err)
	}
	if direct != replayed {
		t.Errorf("composite capture/replay diverged: direct %+v, replay %+v", direct, replayed)
	}
	if direct.Instructions == 0 || direct.L2Misses == 0 {
		t.Errorf("combined run measured nothing: %+v", direct)
	}

	views := c.Tenants()
	if len(views) != 2 {
		t.Fatalf("expected 2 tenant views, got %d", len(views))
	}
	mpki := make(map[string]float64, len(views))
	for _, v := range views {
		r, err := Run(ctx, RunSpec{Workload: v, Policy: chirp, Config: cfg, Cache: cache})
		if err != nil {
			t.Fatalf("tenant view %s: %v", v.Name, err)
		}
		mpki[v.Name] = r.MPKI
	}
	if mpki["mt-e2e/edge"] == mpki["mt-e2e/lake"] {
		t.Errorf("tenant views report identical MPKI %.3f despite disjoint footprints", mpki["mt-e2e/edge"])
	}

	// A master-seed override changes the spec hash but not the workload
	// name; the stream cache must treat it as a new capture rather than
	// replaying the stale stream.
	c2, err := spec.Compile(s, spec.Options{Seed: 42, SeedSet: true})
	if err != nil {
		t.Fatal(err)
	}
	if c2.Hash == c.Hash || c2.Combined().Name != comb.Name {
		t.Fatalf("seed override: hash %s vs %s, name %s vs %s",
			c2.Hash, c.Hash, c2.Combined().Name, comb.Name)
	}
	before := cache.Len()
	if _, err := Run(ctx, RunSpec{Workload: c2.Combined(), Policy: chirp, Config: cfg, Cache: cache}); err != nil {
		t.Fatalf("seed-overridden combined: %v", err)
	}
	if cache.Len() != before+1 {
		t.Errorf("seed-overridden spec did not get its own capture (cache %d -> %d)", before, cache.Len())
	}
}
