// Derived replay views: the stream-pure precomputations ReplayMulti
// drives policies from. Everything here is a pure function of one
// captured l2stream.Stream plus a small configuration key, never of
// TLB or policy state:
//
//   - replayView: the dense access sequence as struct-of-arrays (PC,
//     VPN, set index for one L2 geometry, instruction-side flag), the
//     warmup boundary's position in it, and the stride prefetcher's
//     fill schedule as a CSR — stride decisions depend only on the
//     demand stream, so they are computed once and only the per-policy
//     Contains gate runs at replay time.
//   - CHiRP signature sequence: per access, the Figure 5 demand
//     signature (pre path-push) and the prefetch-fill signature (post
//     path-push), packed into one uint32. Shared by every CHiRP
//     variant that agrees on the signature-relevant config subset
//     (core.Config.SignatureKey).
//   - GHRP signature sequence: one uint64 per access; GHRP's histories
//     advance only on branches, so it covers the demand hit/insert and
//     any prefetch fills alike.
//
// The views are memoized on the stream (l2stream.Derived: single-
// flight, budget-accounted) and persisted as derived sidecars when the
// stream belongs to a -capturedir store, so warm sweeps skip both the
// decode and the signature recomputation.
package sim

import (
	"encoding/binary"
	"fmt"

	"github.com/chirplab/chirp/internal/core"
	"github.com/chirplab/chirp/internal/l2stream"
	"github.com/chirplab/chirp/internal/policy"
)

// replayView is the dense struct-of-arrays access view for one (L2
// geometry, prefetch distance). All slices are indexed by demand
// access ordinal; it is shared read-only across policies and replays.
type replayView struct {
	pc    []uint64
	vpn   []uint64
	set   []uint32 // VPN & setMask for the keyed geometry
	instr []uint8  // 1 = instruction-side access

	// warmIdx is the number of accesses preceding the warmup marker
	// (len(pc) when the marker trails every access, -1 when the stream
	// has no marker); replay latches warm stats right before access
	// warmIdx, which is where the marker event sat.
	warmIdx int

	// Prefetch fill schedule, CSR over access ordinals: access i's
	// fill candidates are pfVPN[pfOff[i]:pfOff[i+1]]. pfOff is nil
	// when the view was built with prefetching off.
	pfOff []uint32
	pfVPN []uint64
}

func (v *replayView) bytes() int64 {
	return int64(len(v.pc)*8+len(v.vpn)*8+len(v.set)*4+len(v.instr)) +
		int64(len(v.pfOff)*4+len(v.pfVPN)*8)
}

// replayViewFor materializes (or recalls) the stream's dense replay
// view for cfg's L2 geometry and prefetch distance.
func replayViewFor(stream *l2stream.Stream, cfg TLBOnlyConfig) (*replayView, error) {
	sets := cfg.Hierarchy.L2.Entries / cfg.Hierarchy.L2.Ways
	pd := cfg.PrefetchDistance
	spec := &l2stream.DerivedSpec{
		Key:   fmt.Sprintf("rv1:s%d:pd%d", sets, pd),
		Build: func(s *l2stream.Stream) (any, error) { return buildReplayView(s, sets, pd) },
		Bytes: func(view any) int64 { return view.(*replayView).bytes() },
		Encode: func(view any) []byte {
			return encodeReplayView(view.(*replayView))
		},
		Decode: func(s *l2stream.Stream, data []byte) (any, bool) {
			return decodeReplayView(s, data, sets, pd)
		},
	}
	v, err := stream.Derived(spec)
	if err != nil {
		return nil, err
	}
	return v.(*replayView), nil
}

// buildReplayView walks the branch-free access view once, running the
// shared stride prefetcher exactly as a live replay would.
func buildReplayView(s *l2stream.Stream, sets, pd int) (*replayView, error) {
	evs, err := s.DecodeAccesses()
	if err != nil {
		return nil, err
	}
	n := int(s.Accesses())
	v := &replayView{
		pc:      make([]uint64, 0, n),
		vpn:     make([]uint64, 0, n),
		set:     make([]uint32, 0, n),
		instr:   make([]uint8, 0, n),
		warmIdx: -1,
	}
	var pf *stridePrefetcher
	if pd > 0 {
		pf = newStridePrefetcher(pd)
		v.pfOff = make([]uint32, 1, n+1)
	}
	mask := uint64(sets - 1)
	for i := range evs {
		ev := &evs[i]
		if ev.Kind == l2stream.EventWarmup {
			v.warmIdx = len(v.pc)
			continue
		}
		v.pc = append(v.pc, ev.PC)
		v.vpn = append(v.vpn, ev.VPN)
		v.set = append(v.set, uint32(ev.VPN&mask))
		if ev.Kind == l2stream.EventInstrAccess {
			v.instr = append(v.instr, 1)
		} else {
			v.instr = append(v.instr, 0)
		}
		if pf != nil {
			v.pfVPN = append(v.pfVPN, pf.observe(ev.PC, ev.VPN)...)
			v.pfOff = append(v.pfOff, uint32(len(v.pfVPN)))
		}
	}
	if len(v.pc) != n {
		return nil, fmt.Errorf("sim: replay view decoded %d accesses, stream reports %d", len(v.pc), n)
	}
	return v, nil
}

// encodeReplayView serializes the view for the derived sidecar. The
// set-index array is recomputed at decode (one mask per access) rather
// than stored.
func encodeReplayView(v *replayView) []byte {
	n := len(v.pc)
	size := 8 + 8 + 1 + n*8 + n*8 + n
	if v.pfOff != nil {
		size += len(v.pfOff)*4 + len(v.pfVPN)*8
	}
	out := make([]byte, 0, size)
	out = binary.LittleEndian.AppendUint64(out, uint64(n))
	out = binary.LittleEndian.AppendUint64(out, uint64(int64(v.warmIdx)))
	if v.pfOff != nil {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	out = appendU64s(out, v.pc)
	out = appendU64s(out, v.vpn)
	out = append(out, v.instr...)
	if v.pfOff != nil {
		out = appendU32s(out, v.pfOff)
		out = appendU64s(out, v.pfVPN)
	}
	return out
}

// decodeReplayView validates a sidecar payload against the stream and
// the view's configuration and rebuilds the in-memory form. ok=false
// means corrupt or stale — the caller rebuilds from the stream.
func decodeReplayView(s *l2stream.Stream, data []byte, sets, pd int) (*replayView, bool) {
	if len(data) < 17 {
		return nil, false
	}
	n := int(binary.LittleEndian.Uint64(data))
	warmIdx := int(int64(binary.LittleEndian.Uint64(data[8:])))
	hasPF := data[16]
	if uint64(n) != s.Accesses() || warmIdx < -1 || warmIdx > n {
		return nil, false
	}
	if (hasPF != 0) != (pd > 0) || hasPF > 1 {
		return nil, false
	}
	pos := 17
	fixed := pos + n*8 + n*8 + n
	if hasPF != 0 {
		if len(data) < fixed+(n+1)*4 {
			return nil, false
		}
		nPF := int(binary.LittleEndian.Uint32(data[fixed+n*4:]))
		if len(data) != fixed+(n+1)*4+nPF*8 {
			return nil, false
		}
	} else if len(data) != fixed {
		return nil, false
	}
	v := &replayView{warmIdx: warmIdx}
	v.pc, pos = readU64s(data, pos, n)
	v.vpn, pos = readU64s(data, pos, n)
	v.instr = append([]uint8(nil), data[pos:pos+n]...)
	pos += n
	for i := range v.instr {
		if v.instr[i] > 1 {
			return nil, false
		}
	}
	if hasPF != 0 {
		v.pfOff, pos = readU32s(data, pos, n+1)
		last := uint32(0)
		for _, o := range v.pfOff {
			if o < last {
				return nil, false
			}
			last = o
		}
		v.pfVPN, _ = readU64s(data, pos, int(last))
	}
	mask := uint64(sets - 1)
	v.set = make([]uint32, n)
	for i, vpn := range v.vpn {
		v.set[i] = uint32(vpn & mask)
	}
	return v, true
}

// chirpSigsFor materializes (or recalls) the CHiRP signature sequence
// for cfg's signature-relevant configuration: per access, demand
// signature in the low half, prefetch-fill signature in the high half.
func chirpSigsFor(stream *l2stream.Stream, cfg core.Config) ([]uint32, error) {
	spec := &l2stream.DerivedSpec{
		Key:   "chirp:" + cfg.SignatureKey(),
		Build: func(s *l2stream.Stream) (any, error) { return buildCHiRPSigs(s, cfg) },
		Bytes: func(view any) int64 { return int64(len(view.([]uint32)) * 4) },
		Encode: func(view any) []byte {
			sigs := view.([]uint32)
			out := binary.LittleEndian.AppendUint64(make([]byte, 0, 8+len(sigs)*4), uint64(len(sigs)))
			return appendU32s(out, sigs)
		},
		Decode: func(s *l2stream.Stream, data []byte) (any, bool) {
			if len(data) < 8 {
				return nil, false
			}
			n := int(binary.LittleEndian.Uint64(data))
			if uint64(n) != s.Accesses() || len(data) != 8+n*4 {
				return nil, false
			}
			sigs, _ := readU32s(data, 8, n)
			return sigs, true
		},
	}
	v, err := stream.Derived(spec)
	if err != nil {
		return nil, err
	}
	return v.([]uint32), nil
}

// buildCHiRPSigs replays the signature computation over the full event
// view once, through the same Histories/signature code the live policy
// runs (core.SigSequencer).
func buildCHiRPSigs(s *l2stream.Stream, cfg core.Config) ([]uint32, error) {
	evs, err := s.DecodeAll()
	if err != nil {
		return nil, err
	}
	q := core.NewSigSequencer(cfg)
	out := make([]uint32, 0, s.Accesses())
	for i := range evs {
		ev := &evs[i]
		switch ev.Kind {
		case l2stream.EventInstrAccess, l2stream.EventDataAccess:
			sig, psig := q.OnAccess(ev.PC)
			out = append(out, uint32(sig)|uint32(psig)<<16)
		case l2stream.EventBranch:
			q.OnBranch(ev.PC, ev.Conditional, ev.Indirect)
		}
	}
	if uint64(len(out)) != s.Accesses() {
		return nil, fmt.Errorf("sim: chirp signature view built %d entries, stream reports %d accesses", len(out), s.Accesses())
	}
	return out, nil
}

// ghrpSigsFor materializes (or recalls) the GHRP signature sequence:
// one signature per access, valid for its hit/insert and prefetch
// fills alike.
func ghrpSigsFor(stream *l2stream.Stream) ([]uint64, error) {
	spec := &l2stream.DerivedSpec{
		Key:   "ghrp:gs1",
		Build: buildGHRPSigs,
		Bytes: func(view any) int64 { return int64(len(view.([]uint64)) * 8) },
		Encode: func(view any) []byte {
			sigs := view.([]uint64)
			out := binary.LittleEndian.AppendUint64(make([]byte, 0, 8+len(sigs)*8), uint64(len(sigs)))
			return appendU64s(out, sigs)
		},
		Decode: func(s *l2stream.Stream, data []byte) (any, bool) {
			if len(data) < 8 {
				return nil, false
			}
			n := int(binary.LittleEndian.Uint64(data))
			if uint64(n) != s.Accesses() || len(data) != 8+n*8 {
				return nil, false
			}
			sigs, _ := readU64s(data, 8, n)
			return sigs, true
		},
	}
	v, err := stream.Derived(spec)
	if err != nil {
		return nil, err
	}
	return v.([]uint64), nil
}

func buildGHRPSigs(s *l2stream.Stream) (any, error) {
	evs, err := s.DecodeAll()
	if err != nil {
		return nil, err
	}
	var h policy.GHRPHistory
	out := make([]uint64, 0, s.Accesses())
	for i := range evs {
		ev := &evs[i]
		switch ev.Kind {
		case l2stream.EventInstrAccess, l2stream.EventDataAccess:
			out = append(out, h.Signature(ev.PC))
		case l2stream.EventBranch:
			h.OnBranch(ev.PC, ev.Conditional, ev.Taken)
		}
	}
	if uint64(len(out)) != s.Accesses() {
		return nil, fmt.Errorf("sim: ghrp signature view built %d entries, stream reports %d accesses", len(out), s.Accesses())
	}
	return out, nil
}

func appendU64s(dst []byte, xs []uint64) []byte {
	for _, x := range xs {
		dst = binary.LittleEndian.AppendUint64(dst, x)
	}
	return dst
}

func appendU32s(dst []byte, xs []uint32) []byte {
	for _, x := range xs {
		dst = binary.LittleEndian.AppendUint32(dst, x)
	}
	return dst
}

func readU64s(data []byte, pos, n int) ([]uint64, int) {
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(data[pos:])
		pos += 8
	}
	return out, pos
}

func readU32s(data []byte, pos, n int) ([]uint32, int) {
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(data[pos:])
		pos += 4
	}
	return out, pos
}
