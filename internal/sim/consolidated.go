package sim

import (
	"fmt"

	"github.com/chirplab/chirp/internal/policy"
	"github.com/chirplab/chirp/internal/tlb"
	"github.com/chirplab/chirp/internal/trace"
	"github.com/chirplab/chirp/internal/workloads"
)

// ConsolidatedConfig parameterises a multi-address-space run: several
// workloads time-share one core and its TLB hierarchy, as consolidated
// servers do (the §I motivation: growing footprints and working-set
// pressure). Each workload runs in its own address space (ASID);
// context switches happen every Quantum instructions.
type ConsolidatedConfig struct {
	Hierarchy Hierarchy
	// Quantum is the timeslice in committed instructions.
	Quantum uint64
	// Instructions bounds the total run across all workloads.
	Instructions uint64
	// FlushOnSwitch models hardware without ASID tags: the whole TLB
	// hierarchy is invalidated at every context switch.
	FlushOnSwitch bool
	// WarmupFraction of total instructions before measurement.
	WarmupFraction float64
}

// DefaultConsolidatedConfig time-shares at a 50 k-instruction quantum.
func DefaultConsolidatedConfig(instructions uint64) ConsolidatedConfig {
	return ConsolidatedConfig{
		Hierarchy:      DefaultHierarchy(),
		Quantum:        50_000,
		Instructions:   instructions,
		WarmupFraction: 0.5,
	}
}

// ConsolidatedResult reports one consolidated run.
type ConsolidatedResult struct {
	Policy       string
	Workloads    int
	Switches     uint64
	Instructions uint64 // measured (post-warmup)
	L2Misses     uint64 // post-warmup
	MPKI         float64
	Efficiency   float64
}

// RunConsolidated time-shares the given workloads over one TLB
// hierarchy under l2p. Address spaces are distinguished by ASID, so
// entries survive context switches unless FlushOnSwitch is set.
func RunConsolidated(ws []*workloads.Workload, l2p tlb.Policy, cfg ConsolidatedConfig) (ConsolidatedResult, error) {
	if len(ws) == 0 {
		return ConsolidatedResult{}, fmt.Errorf("sim: no workloads to consolidate")
	}
	if len(ws) > 1<<16 {
		return ConsolidatedResult{}, fmt.Errorf("sim: too many workloads for 16-bit ASIDs")
	}
	l1i, err := tlb.New(cfg.Hierarchy.L1I, policy.NewLRU())
	if err != nil {
		return ConsolidatedResult{}, err
	}
	defer l1i.Release()
	l1d, err := tlb.New(cfg.Hierarchy.L1D, policy.NewLRU())
	if err != nil {
		return ConsolidatedResult{}, err
	}
	defer l1d.Release()
	l2, err := tlb.New(cfg.Hierarchy.L2, l2p)
	if err != nil {
		return ConsolidatedResult{}, err
	}
	defer l2.Release()
	bo, hasBO := l2p.(tlb.BranchObserver)

	sources := make([]trace.Source, len(ws))
	for i, w := range ws {
		sources[i] = w.Source() // unbounded; the run bound applies globally
	}
	pageShift := cfg.Hierarchy.L2.PageShift
	warmupAt := uint64(float64(cfg.Instructions) * cfg.WarmupFraction)

	var (
		total     uint64
		switches  uint64
		cur       int
		slice     uint64
		warmStats tlb.Stats
		warmed    = warmupAt == 0
		warmAt    uint64
		rec       trace.Record
	)
	access := func(l1 *tlb.TLB, pc, vpn uint64, asid uint16, instr bool) {
		a := tlb.Access{PC: pc, VPN: vpn, ASID: asid, Instr: instr}
		if _, hit := l1.Lookup(&a); hit {
			return
		}
		a2 := tlb.Access{PC: pc, VPN: vpn, ASID: asid, Instr: instr}
		if _, hit := l2.Lookup(&a2); !hit {
			l2.Insert(&a2, vpn)
		}
		l1.Insert(&a, vpn)
	}
	for total < cfg.Instructions || cfg.Instructions == 0 {
		if !sources[cur].Next(&rec) {
			break // suite generators are unbounded; defensive only
		}
		total += rec.Instructions()
		slice += rec.Instructions()
		if !warmed && total >= warmupAt {
			warmed = true
			warmStats = l2.Stats()
			warmAt = total
		}
		asid := uint16(cur)
		access(l1i, rec.PC, rec.PC>>pageShift, asid, true)
		switch {
		case rec.Class.IsMemory():
			access(l1d, rec.PC, rec.EA>>pageShift, asid, false)
		case rec.Class.IsBranch():
			if hasBO {
				bo.OnBranch(rec.PC,
					rec.Class == trace.ClassCondBranch,
					rec.Class == trace.ClassUncondIndirect,
					rec.Taken, rec.Target)
			}
		}
		if slice >= cfg.Quantum {
			slice = 0
			switches++
			cur = (cur + 1) % len(sources)
			if cfg.FlushOnSwitch {
				l1i.Flush()
				l1d.Flush()
				l2.Flush()
			}
		}
		if cfg.Instructions == 0 {
			break
		}
	}
	if !warmed {
		return ConsolidatedResult{}, fmt.Errorf("sim: consolidated run ended before warmup")
	}
	l2.FlushAccounting()
	st := l2.Stats()
	res := ConsolidatedResult{
		Policy:       l2p.Name(),
		Workloads:    len(ws),
		Switches:     switches,
		Instructions: total - warmAt,
		L2Misses:     st.Misses - warmStats.Misses,
		Efficiency:   st.Efficiency(),
	}
	if res.Instructions > 0 {
		res.MPKI = float64(res.L2Misses) / (float64(res.Instructions) / 1000)
	}
	return res, nil
}
