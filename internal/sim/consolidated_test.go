package sim

import (
	"testing"

	"github.com/chirplab/chirp/internal/policy"
	"github.com/chirplab/chirp/internal/tlb"
	"github.com/chirplab/chirp/internal/trace"
	"github.com/chirplab/chirp/internal/workloads"
)

func TestRunConsolidatedBasics(t *testing.T) {
	ws := workloads.SuiteN(4)
	cfg := DefaultConsolidatedConfig(400_000)
	res, err := RunConsolidated(ws, policy.NewLRU(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workloads != 4 || res.Switches == 0 {
		t.Fatalf("consolidation shape wrong: %+v", res)
	}
	if res.MPKI <= 0 {
		t.Errorf("MPKI = %v, want positive", res.MPKI)
	}
}

func TestConsolidatedFlushCostsMore(t *testing.T) {
	ws := workloads.SuiteN(2)
	cfg := DefaultConsolidatedConfig(400_000)
	asid, err := RunConsolidated(ws, policy.NewLRU(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.FlushOnSwitch = true
	flush, err := RunConsolidated(ws, policy.NewLRU(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if flush.MPKI <= asid.MPKI {
		t.Errorf("flush-per-switch MPKI (%v) must exceed ASID-tagged MPKI (%v)", flush.MPKI, asid.MPKI)
	}
}

func TestConsolidatedRejectsEmpty(t *testing.T) {
	if _, err := RunConsolidated(nil, policy.NewLRU(), DefaultConsolidatedConfig(1000)); err == nil {
		t.Fatal("empty workload set accepted")
	}
}

func TestConsolidatedASIDIsolation(t *testing.T) {
	// Two different workloads may touch the same VPNs; ASID tagging
	// must keep their translations apart. Drive a tiny TLB directly.
	tl, err := tlb.New(tlb.Config{Name: "t", Entries: 16, Ways: 8, PageShift: 12}, policy.NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	a0 := &tlb.Access{VPN: 5, ASID: 0}
	a1 := &tlb.Access{VPN: 5, ASID: 1}
	tl.Lookup(a0)
	tl.Insert(a0, 100)
	if _, hit := tl.Lookup(a1); hit {
		t.Fatal("ASID 1 hit ASID 0's entry")
	}
	tl.Insert(a1, 200)
	if ppn, hit := tl.Lookup(a0); !hit || ppn != 100 {
		t.Errorf("ASID 0 translation corrupted: (%d, %v)", ppn, hit)
	}
	if ppn, hit := tl.Lookup(a1); !hit || ppn != 200 {
		t.Errorf("ASID 1 translation wrong: (%d, %v)", ppn, hit)
	}
	tl.FlushASID(0)
	if _, hit := tl.Lookup(a0); hit {
		t.Error("FlushASID(0) left ASID 0 entries resident")
	}
	if _, hit := tl.Lookup(a1); !hit {
		t.Error("FlushASID(0) removed ASID 1 entries")
	}
	tl.Flush()
	if _, hit := tl.Lookup(a1); hit {
		t.Error("Flush left entries resident")
	}
}

func TestStridePrefetcherLearns(t *testing.T) {
	pf := newStridePrefetcher(2)
	const pc = 0x4000
	// Stride-1 misses: after two repeats, prefetches fire.
	var got []uint64
	for v := uint64(10); v < 20; v++ {
		got = pf.observe(pc, v)
	}
	if len(got) != 2 || got[0] != 20 || got[1] != 21 {
		t.Fatalf("prefetch targets = %v, want [20 21]", got)
	}
	// A stride change drops confidence and silences prefetching.
	if out := pf.observe(pc, 100); out != nil {
		t.Errorf("stride break still prefetched: %v", out)
	}
}

func TestStridePrefetcherNegativeStride(t *testing.T) {
	pf := newStridePrefetcher(1)
	const pc = 0x8000
	var got []uint64
	for v := uint64(100); v > 90; v -= 2 {
		got = pf.observe(pc, v)
	}
	if len(got) != 1 || got[0] != 90 {
		t.Fatalf("negative-stride prefetch = %v, want [90]", got)
	}
}

func TestPrefetchReducesStreamMisses(t *testing.T) {
	// A pure sequential stream through a dedicated PC: the stride
	// prefetcher must remove a large share of its L2 misses.
	var recs []trace.Record
	for i := 0; i < 40_000; i++ {
		recs = append(recs, trace.Record{
			PC: 0x400100, Class: trace.ClassLoad,
			EA: uint64(0x10000000) + uint64(i)*4096, Skip: 9,
		})
	}
	run := func(dist int) float64 {
		cfg := DefaultTLBOnlyConfig(uint64(len(recs) * 10))
		cfg.PrefetchDistance = dist
		res, err := RunTLBOnly(trace.NewSliceSource(recs), policy.NewLRU(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.MPKI
	}
	without := run(0)
	with := run(4)
	if with >= without*0.5 {
		t.Errorf("stride prefetch MPKI %v, want < half of %v on a pure stream", with, without)
	}
}
