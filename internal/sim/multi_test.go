package sim

import (
	"context"
	"testing"

	"github.com/chirplab/chirp/internal/l2stream"
	"github.com/chirplab/chirp/internal/tlb"
	"github.com/chirplab/chirp/internal/trace"
	"github.com/chirplab/chirp/internal/workloads"
)

// TestReplayMultiEquivalence is the fused kernel's correctness gate:
// one ReplayMulti pass over every registered policy at once must
// reproduce each policy's solo ReplayTLBOnly result bit for bit —
// across workload categories, with and without prefetching. The
// policy list deliberately interleaves branch observers (ghrp, chirp)
// with non-observers, so both view groups and the result re-ordering
// are exercised.
func TestReplayMultiEquivalence(t *testing.T) {
	const instructions = 400000
	names := PolicyNames()
	for _, pd := range []int{0, 4} {
		cfg := DefaultTLBOnlyConfig(instructions)
		cfg.PrefetchDistance = pd
		for _, wname := range equivalenceWorkloads {
			stream := captureFor(t, wname, cfg)
			pols := make([]tlb.Policy, len(names))
			for i, pname := range names {
				pol, err := NewPolicy(pname)
				if err != nil {
					t.Fatal(err)
				}
				pols[i] = pol
			}
			fused, err := ReplayMulti(stream, pols, cfg)
			if err != nil {
				t.Fatalf("%s pd=%d fused: %v", wname, pd, err)
			}
			if len(fused) != len(names) {
				t.Fatalf("%s pd=%d: fused returned %d results for %d policies", wname, pd, len(fused), len(names))
			}
			for i, pname := range names {
				solo, err := NewPolicy(pname)
				if err != nil {
					t.Fatal(err)
				}
				want, err := ReplayTLBOnly(stream, solo, cfg)
				if err != nil {
					t.Fatalf("%s/%s solo replay: %v", wname, pname, err)
				}
				// TLBOnlyResult is all scalars, so == is field-by-field.
				if fused[i] != want {
					t.Errorf("%s/%s pd=%d: fused replay diverged\n solo:  %+v\n fused: %+v",
						wname, pname, pd, want, fused[i])
				}
			}
		}
	}
}

// TestReplayMultiSpilledEquivalence: the spilled fallback (per-policy
// direct runs over the retained record file) must also match solo
// replays, and the spill file must survive a concurrent-style Close.
func TestReplayMultiSpilledEquivalence(t *testing.T) {
	cfg := DefaultTLBOnlyConfig(200000)
	cfg.PrefetchDistance = 2
	w := workloads.ByName("db-003")
	src := trace.NewLimit(w.Source(), cfg.Instructions)
	stream, err := l2stream.Capture(src, CaptureConfig(cfg),
		l2stream.CaptureOptions{MaxBytes: 1024, SpillDir: t.TempDir()})
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	defer stream.Close()
	if !stream.Spilled() {
		t.Fatal("1 KiB budget must force a spill")
	}
	names := []string{"lru", "chirp", "ghrp"}
	pols := make([]tlb.Policy, len(names))
	for i, n := range names {
		pols[i], _ = NewPolicy(n)
	}
	fused, err := ReplayMulti(stream, pols, cfg)
	if err != nil {
		t.Fatalf("fused spilled replay: %v", err)
	}
	for i, n := range names {
		solo, _ := NewPolicy(n)
		want, err := ReplayTLBOnly(stream, solo, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if fused[i] != want {
			t.Errorf("%s: fused spilled replay diverged\n solo:  %+v\n fused: %+v", n, want, fused[i])
		}
	}
}

// TestRunMultiMatchesRun: the fused entry point must agree with N
// independent Run calls on both paths — capture/replay (shared cache)
// and direct (no cache).
func TestRunMultiMatchesRun(t *testing.T) {
	w := workloads.ByName("web-001")
	cfg := DefaultTLBOnlyConfig(150000)
	names := []string{"lru", "ghrp", "srrip", "chirp"}
	factories := make([]PolicyFactory, len(names))
	for i, n := range names {
		nf, err := Factories([]string{n})
		if err != nil {
			t.Fatal(err)
		}
		factories[i] = nf[0].New
	}
	ctx := context.Background()

	for _, withCache := range []bool{true, false} {
		var cache *l2stream.Cache
		if withCache {
			cache = l2stream.NewCache(0, t.TempDir())
			defer cache.Close()
		}
		fused, err := RunMulti(ctx, RunSpec{Workload: w, Config: cfg, Cache: cache}, factories)
		if err != nil {
			t.Fatalf("RunMulti(cache=%v): %v", withCache, err)
		}
		for i, f := range factories {
			// A fresh per-policy cache keeps solo captures independent of
			// the fused run while staying on the same path.
			var soloCache *l2stream.Cache
			if withCache {
				soloCache = l2stream.NewCache(0, t.TempDir())
				defer soloCache.Close()
			}
			want, err := Run(ctx, RunSpec{Workload: w, Policy: f, Config: cfg, Cache: soloCache})
			if err != nil {
				t.Fatal(err)
			}
			if fused[i] != want {
				t.Errorf("cache=%v %s: RunMulti diverged from Run\n solo:  %+v\n fused: %+v",
					withCache, names[i], want, fused[i])
			}
		}
	}
}

// TestRunMultiValidates: argument errors surface before any work.
func TestRunMultiValidates(t *testing.T) {
	ctx := context.Background()
	if _, err := RunMulti(ctx, RunSpec{Workload: workloads.ByName("spec-000"), Config: DefaultTLBOnlyConfig(1000)}, nil); err == nil {
		t.Error("RunMulti accepted an empty policy list")
	}
	lru, err := Factories([]string{"lru"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunMulti(ctx, RunSpec{Config: DefaultTLBOnlyConfig(1000)}, []PolicyFactory{lru[0].New}); err == nil {
		t.Error("RunMulti accepted a spec with no trace source")
	}
}
