package sim

import (
	"testing"

	"github.com/chirplab/chirp/internal/pipeline"
	"github.com/chirplab/chirp/internal/policy"
	"github.com/chirplab/chirp/internal/tlb"
	"github.com/chirplab/chirp/internal/trace"
	"github.com/chirplab/chirp/internal/workloads"
)

const testInstr = 120_000

func testSource(t *testing.T, name string) trace.Source {
	t.Helper()
	w := workloads.ByName(name)
	if w == nil {
		t.Fatalf("workload %s missing", name)
	}
	return trace.NewLimit(w.Source(), testInstr)
}

func TestRunTLBOnlyBasics(t *testing.T) {
	cfg := DefaultTLBOnlyConfig(testInstr)
	res, err := RunTLBOnly(testSource(t, "spec-000"), policy.NewLRU(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "lru" {
		t.Errorf("policy = %q", res.Policy)
	}
	if res.Instructions == 0 || res.L2Accesses == 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if res.MPKI < 0 || res.MPKI > 1000 {
		t.Errorf("implausible MPKI %v", res.MPKI)
	}
	if res.Efficiency < 0 || res.Efficiency > 1 {
		t.Errorf("efficiency out of range: %v", res.Efficiency)
	}
}

func TestRunTLBOnlyDeterministic(t *testing.T) {
	cfg := DefaultTLBOnlyConfig(testInstr)
	a, err := RunTLBOnly(testSource(t, "db-000"), policy.NewSRRIP(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTLBOnly(testSource(t, "db-000"), policy.NewSRRIP(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.MPKI != b.MPKI || a.L2Misses != b.L2Misses {
		t.Errorf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestRunTLBOnlyWarmupShort(t *testing.T) {
	cfg := DefaultTLBOnlyConfig(1_000_000)
	src := trace.NewLimit(workloads.ByName("spec-000").Source(), 1000)
	if _, err := RunTLBOnly(src, policy.NewLRU(), cfg); err == nil {
		t.Fatal("trace shorter than warmup must error")
	}
}

func TestTableAccountingSurfaced(t *testing.T) {
	cfg := DefaultTLBOnlyConfig(testInstr)
	ch, err := NewPolicy("chirp")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunTLBOnly(testSource(t, "db-000"), ch, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TableReads == 0 || res.TableWrites == 0 {
		t.Error("CHiRP table accounting not surfaced")
	}
	if res.TableAccessRate <= 0 || res.TableAccessRate > 2 {
		t.Errorf("table access rate = %v out of plausible range", res.TableAccessRate)
	}
}

func TestCollectL2StreamConsistent(t *testing.T) {
	cfg := DefaultTLBOnlyConfig(testInstr)
	s1, err := CollectL2Stream(testSource(t, "sci-000"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := CollectL2Stream(testSource(t, "sci-000"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s1) == 0 || len(s1) != len(s2) {
		t.Fatalf("stream lengths: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("L2 stream not deterministic")
		}
	}
	// The stream must equal the L2 access count of a simulated run.
	res, err := RunTLBOnly(testSource(t, "sci-000"), policy.NewLRU(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(s1)) != res.L2Accesses {
		t.Errorf("stream length %d != L2 accesses %d", len(s1), res.L2Accesses)
	}
}

func TestRegistry(t *testing.T) {
	names := PolicyNames()
	if len(names) < 8 {
		t.Fatalf("registry too small: %v", names)
	}
	for _, n := range names {
		p, err := NewPolicy(n)
		if err != nil {
			t.Fatalf("NewPolicy(%s): %v", n, err)
		}
		if p.Name() == "" {
			t.Errorf("policy %s has empty name", n)
		}
	}
	if _, err := NewPolicy("belady-magic"); err == nil {
		t.Error("unknown policy accepted")
	}
	fs, err := Factories(PaperPolicies)
	if err != nil || len(fs) != len(PaperPolicies) {
		t.Fatalf("Factories: %v", err)
	}
	// Factories must create fresh instances.
	if fs[0].New() == fs[0].New() {
		t.Error("factory returned a shared instance")
	}
}

func TestRunSuiteTLBOnly(t *testing.T) {
	ws := workloads.SuiteN(4)
	pols, err := Factories([]string{"lru", "chirp"})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTLBOnlyConfig(testInstr)
	results, err := RunSuiteTLBOnly(ws, pols, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 {
		t.Fatalf("results = %d, want 8", len(results))
	}
	for i, r := range results {
		wantW := ws[i/2].Name
		wantP := pols[i%2].Name
		if r.Workload != wantW || r.Policy != wantP {
			t.Errorf("result %d = (%s, %s), want (%s, %s)", i, r.Workload, r.Policy, wantW, wantP)
		}
		if r.Profile == "" {
			t.Errorf("result %d missing profile", i)
		}
	}
}

func TestRunSuiteTiming(t *testing.T) {
	ws := workloads.SuiteN(2)
	pols, err := Factories([]string{"lru", "chirp"})
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipeline.DefaultConfig(testInstr, 150)
	results, err := RunSuiteTiming(ws, pols, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d, want 4", len(results))
	}
	for _, r := range results {
		if r.IPC <= 0 || r.IPC > 1 {
			t.Errorf("%s/%s IPC = %v, want (0, 1]", r.Workload, r.Policy, r.IPC)
		}
	}
}

func TestCollectReuseSamples(t *testing.T) {
	// Lifetime samples only appear once the 1024-entry L2 TLB starts
	// evicting, so this test needs a longer run than the others.
	const instr = 600_000
	cfg := DefaultTLBOnlyConfig(instr)
	samples, err := CollectReuseSamples(trace.NewLimit(workloads.ByName("db-000").Source(), instr), cfg, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("no reuse samples collected")
	}
	reused, dead := 0, 0
	for _, s := range samples {
		if s.PC == 0 {
			t.Fatal("sample with zero PC")
		}
		if s.Reused {
			reused++
		} else {
			dead++
		}
	}
	if reused == 0 || dead == 0 {
		t.Errorf("degenerate labels: %d reused, %d dead", reused, dead)
	}
}

func TestOPTNeverLosesOnSuite(t *testing.T) {
	cfg := DefaultTLBOnlyConfig(testInstr)
	for _, name := range []string{"spec-000", "sci-000"} {
		stream, err := CollectL2Stream(testSource(t, name), cfg)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := RunTLBOnly(testSource(t, name), policy.NewOPT(policy.BuildOracle(stream)), cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, pn := range PaperPolicies {
			p, err := NewPolicy(pn)
			if err != nil {
				t.Fatal(err)
			}
			res, err := RunTLBOnly(testSource(t, name), p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			// OPT minimises misses over the same L2 access stream; allow
			// a 2% slack for warmup-boundary accounting.
			if float64(opt.L2Misses) > float64(res.L2Misses)*1.02 {
				t.Errorf("%s: OPT (%d misses) beaten by %s (%d misses)", name, opt.L2Misses, pn, res.L2Misses)
			}
		}
	}
}

var _ tlb.Policy = (*reuseRecorder)(nil)

func TestFileReplayMatchesGenerator(t *testing.T) {
	// Materialising a workload to a trace file and replaying it must
	// produce bit-identical simulation results — the integration
	// contract across generator, binary format and driver.
	const instr = 150_000
	w := workloads.ByName("db-000")
	path := t.TempDir() + "/db-000.chtr"
	if _, _, err := trace.WriteFile(path, trace.NewLimit(w.Source(), instr)); err != nil {
		t.Fatal(err)
	}
	fs, err := trace.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	cfg := DefaultTLBOnlyConfig(instr)
	chirpA, err := NewPolicy("chirp")
	if err != nil {
		t.Fatal(err)
	}
	fromGen, err := RunTLBOnly(trace.NewLimit(w.Source(), instr), chirpA, cfg)
	if err != nil {
		t.Fatal(err)
	}
	chirpB, err := NewPolicy("chirp")
	if err != nil {
		t.Fatal(err)
	}
	fromFile, err := RunTLBOnly(fs, chirpB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fromGen.L2Misses != fromFile.L2Misses || fromGen.L2Accesses != fromFile.L2Accesses {
		t.Errorf("file replay diverged: gen (%d misses, %d accesses) vs file (%d, %d)",
			fromGen.L2Misses, fromGen.L2Accesses, fromFile.L2Misses, fromFile.L2Accesses)
	}
}
