package sim

import (
	"fmt"
	"sort"

	"github.com/chirplab/chirp/internal/core"
	"github.com/chirplab/chirp/internal/policy"
	"github.com/chirplab/chirp/internal/tlb"
)

// PolicyFactory builds a fresh policy instance; every simulation run
// needs its own because policies hold per-TLB metadata.
type PolicyFactory func() tlb.Policy

// NamedFactory pairs a display name with a factory.
type NamedFactory struct {
	Name string
	New  PolicyFactory
}

// builtinFactories lists every policy the paper evaluates, in the
// paper's presentation order, plus this reproduction's extensions
// (ship-unlimited/ship-sampled from §III, opt is oracle-driven and
// constructed separately).
func builtinFactories() map[string]PolicyFactory {
	return map[string]PolicyFactory{
		"lru":            func() tlb.Policy { return policy.NewLRU() },
		"random":         func() tlb.Policy { return policy.NewRandom(1) },
		"srrip":          func() tlb.Policy { return policy.NewSRRIP() },
		"ship":           func() tlb.Policy { return policy.NewSHiP(16384) },
		"ship-unlimited": func() tlb.Policy { return policy.NewSHiPUnlimited() },
		"ship-sampled":   func() tlb.Policy { return policy.NewSHiPSampled(16384, 2) },
		"ghrp":           func() tlb.Policy { return policy.NewGHRP(4096) },
		"chirp":          func() tlb.Policy { return core.MustNew(core.DefaultConfig()) },
		// Extension baselines beyond the paper's comparison set.
		"sdbp":       func() tlb.Policy { return policy.NewSDBP(4096, 5) },
		"drrip":      func() tlb.Policy { return policy.NewDRRIP() },
		"perceptron": func() tlb.Policy { return policy.NewPerceptronReuse(1024) },
	}
}

// ExtendedPolicies is the extension comparison set: the paper's six
// plus the additional literature baselines this reproduction
// implements (SDBP with set sampling — §II-B's negative result —
// DRRIP, and perceptron-based reuse prediction).
var ExtendedPolicies = []string{"lru", "random", "srrip", "drrip", "ship", "sdbp", "perceptron", "ghrp", "chirp"}

// PaperPolicies is the Figure 7 comparison set in presentation order.
var PaperPolicies = []string{"lru", "random", "srrip", "ship", "ghrp", "chirp"}

// PolicyNames returns every registered policy name, sorted.
func PolicyNames() []string {
	m := builtinFactories()
	names := make([]string, 0, len(m))
	//chirp:allow determinism keys are sorted below before anything observes the order
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NewPolicy builds a fresh instance of the named policy.
func NewPolicy(name string) (tlb.Policy, error) {
	f, ok := builtinFactories()[name]
	if !ok {
		return nil, fmt.Errorf("sim: unknown policy %q (have %v)", name, PolicyNames())
	}
	return f(), nil
}

// Factories resolves names into NamedFactory values.
func Factories(names []string) ([]NamedFactory, error) {
	m := builtinFactories()
	out := make([]NamedFactory, 0, len(names))
	for _, n := range names {
		f, ok := m[n]
		if !ok {
			return nil, fmt.Errorf("sim: unknown policy %q (have %v)", n, PolicyNames())
		}
		out = append(out, NamedFactory{Name: n, New: f})
	}
	return out, nil
}

// CHiRPFactory wraps an explicit CHiRP configuration (for the Figure
// 2/6/9 sweeps).
func CHiRPFactory(cfg core.Config) PolicyFactory {
	return func() tlb.Policy { return core.MustNew(cfg) }
}
