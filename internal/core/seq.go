package core

import "fmt"

// SigSequencer replays the signature computation of one CHiRP instance
// over a captured event stream, without any TLB or prediction state:
// feed it the committed branches and demand accesses in stream order
// and it produces, per access, the exact signature pair a live CHiRP
// would compute — the demand signature under the pre-access histories
// and the prefetch signature after the access's own path push. The
// sequencer shares signatureOf and the Histories implementation with
// the policy, so equality is structural, not coincidental.
//
// The produced sequence depends only on the event stream and on the
// signature-relevant subset of Config (see SignatureKey), which makes
// it a valid l2stream derived view shared by every CHiRP variant that
// agrees on those knobs.
type SigSequencer struct {
	cfg  Config
	hist *Histories
}

// NewSigSequencer builds a sequencer for cfg's signature configuration.
func NewSigSequencer(cfg Config) *SigSequencer {
	return &SigSequencer{cfg: cfg, hist: NewHistories(cfg.History)}
}

// OnBranch mirrors CHiRP.OnBranch for the committed branch stream.
//
//chirp:hotpath
func (q *SigSequencer) OnBranch(pc uint64, conditional, indirect bool) {
	switch {
	case conditional:
		if q.cfg.UseCondHistory {
			q.hist.PushCond(pc)
		}
	case indirect:
		if q.cfg.UseIndirectHistory {
			q.hist.PushIndirect(pc)
		}
	}
}

// OnAccess consumes one demand access and returns its signature pair:
// sig is the Figure 5 signature computed before the path push (what
// the demand access itself uses), psig the signature of the same PC
// after the push (what a prefetch fill triggered by this access would
// compute — branch events never interleave between an access and its
// prefetch fills, so the post-push histories are exactly the fill-time
// histories).
//
//chirp:hotpath
func (q *SigSequencer) OnAccess(pc uint64) (sig, psig uint16) {
	sig = signatureOf(&q.cfg, q.hist, pc)
	if q.cfg.UsePathHistory {
		q.hist.PushAccess(pc)
	}
	psig = signatureOf(&q.cfg, q.hist, pc)
	return sig, psig
}

// SignatureKey returns the invalidation key fragment for cfg's
// signature sequence: every knob the sequence depends on — history
// geometry and feature switches — and nothing else, so CHiRP variants
// that differ only in table size, thresholds, or victim selection
// share one derived view.
func (c Config) SignatureKey() string {
	return fmt.Sprintf("cs1:p%d.%t:b%d:f%t%t%t",
		c.History.PathLength, c.History.PathLeadingZeros, c.History.BranchLength,
		c.UsePathHistory, c.UseCondHistory, c.UseIndirectHistory)
}
