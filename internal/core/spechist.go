package core

// DualHistory implements the paper's misprediction-recovery scheme
// (§VI-E): "CHIRP maintains two path histories: the speculative
// history updated using the outcome of the branch predictor, and a
// non-speculative history updated when a branch commits." The
// front-end speculatively updates one copy; when a branch resolves as
// mispredicted, the speculative copy is rewound to the architectural
// one. Prediction-table updates happen only at commit with right-path
// branches, which the simulation drivers honour by feeding policies
// the committed stream.
type DualHistory struct {
	spec *Histories
	arch *Histories
	// scratch is the reusable checkpoint buffer Squash copies the
	// architectural state through, so a squash allocates nothing after
	// the first (mispredictions are frequent enough to care).
	scratch HistoriesSnapshot
}

// NewDualHistory builds speculative and architectural history copies
// with the same configuration.
func NewDualHistory(cfg HistoryConfig) *DualHistory {
	return &DualHistory{spec: NewHistories(cfg), arch: NewHistories(cfg)}
}

// Speculative returns the front-end (speculative) histories.
func (d *DualHistory) Speculative() *Histories { return d.spec }

// Architectural returns the committed histories.
func (d *DualHistory) Architectural() *Histories { return d.arch }

// SpeculateCond records a predicted conditional branch into the
// speculative history only.
func (d *DualHistory) SpeculateCond(pc uint64) { d.spec.PushCond(pc) }

// SpeculateIndirect records a predicted indirect branch into the
// speculative history only.
func (d *DualHistory) SpeculateIndirect(pc uint64) { d.spec.PushIndirect(pc) }

// SpeculateAccess records a speculative L2 TLB access.
func (d *DualHistory) SpeculateAccess(pc uint64) { d.spec.PushAccess(pc) }

// CommitCond retires a conditional branch into the architectural
// history.
func (d *DualHistory) CommitCond(pc uint64) { d.arch.PushCond(pc) }

// CommitIndirect retires an indirect branch into the architectural
// history.
func (d *DualHistory) CommitIndirect(pc uint64) { d.arch.PushIndirect(pc) }

// CommitAccess retires an L2 TLB access into the architectural
// history.
func (d *DualHistory) CommitAccess(pc uint64) { d.arch.PushAccess(pc) }

// Squash rewinds the speculative copy to the architectural state, as
// happens on a branch misprediction. It reuses a scratch snapshot, so
// steady-state squashes are allocation-free.
func (d *DualHistory) Squash() {
	d.arch.SnapshotInto(&d.scratch)
	d.spec.Restore(d.scratch)
}
