// Package core implements CHiRP — Control-flow History Reuse
// Prediction — the paper's contribution: a predictive replacement
// policy for the L2 TLB driven by a signature built from the global
// path history of PC bits, the conditional-branch address history and
// the indirect-branch address history (paper §IV, Figure 5).
package core

import "math/bits"

// histReg is a conceptual shift-register history of fixed-width
// elements, folded to 64 bits.
//
// The paper's registers are literal 64-bit shift registers: the path
// history holds 16 elements of 4 bits (two PC bits plus two injected
// leading zeros — the §III-B shift-and-scale transform), and each
// branch history holds 8 elements of 8 bits (PC bits [11:4]). When
// length × width is exactly 64 this type degenerates to that register.
// Longer histories (the Figure 2 sweep) are folded: the conceptual
// long register is XOR-folded into 64-bit chunks, the standard
// hardware trick for long branch histories.
//
// The folded value is maintained incrementally: because width divides
// 64, every element occupies an aligned lane [off, off+width) that
// never straddles the 64-bit boundary, so ageing the whole history by
// one element is a rotate-left of the fold by width bits, after which
// the expired oldest element sits at lane (length·width) mod 64 and
// can be XOR-cancelled while the new element XORs into lane 0:
//
//	fold' = rotl64(fold, width) ^ (oldest << outShift) ^ newest
//
// This is what the paper's hardware does in registers each event;
// fold() is thereby a field read instead of an O(length) walk. The
// ring is kept as the reference state for snapshot/restore and for
// the equivalence tests against foldSlow.
type histReg struct {
	ring     []uint64 // most recent at (pos-1+len)%len
	pos      int
	width    uint   // bits per element; must divide 64
	fold64   uint64 // incrementally maintained fold()
	outShift uint   // (len(ring)·width) mod 64: expired element's lane
}

// newHistReg builds a history of length elements of width bits each.
func newHistReg(length int, width uint) *histReg {
	if length <= 0 {
		panic("core: history length must be positive")
	}
	if width == 0 || 64%width != 0 {
		panic("core: history element width must divide 64")
	}
	return &histReg{
		ring:     make([]uint64, length),
		width:    width,
		outShift: uint(length) * width % 64,
	}
}

// push shifts a new element into the history, ageing the rest and
// updating the cached fold in O(1).
//
//chirp:hotpath
func (h *histReg) push(v uint64) {
	v &= 1<<h.width - 1
	h.fold64 = bits.RotateLeft64(h.fold64, int(h.width)) ^ h.ring[h.pos]<<h.outShift ^ v
	h.ring[h.pos] = v
	h.pos++
	if h.pos == len(h.ring) {
		h.pos = 0
	}
}

// fold returns the 64-bit folded value of the conceptual register:
// element of age j sits at bit offset (j·width) mod 64. It is a field
// read; foldSlow is the reference recomputation.
//
//chirp:hotpath
func (h *histReg) fold() uint64 { return h.fold64 }

// foldSlow recomputes the fold by walking the ring — the reference
// implementation the incremental fold is property-tested against.
func (h *histReg) foldSlow() uint64 {
	var f uint64
	off := uint(0)
	idx := h.pos // walk from newest (pos-1) backwards
	for j := 0; j < len(h.ring); j++ {
		idx--
		if idx < 0 {
			idx = len(h.ring) - 1
		}
		f ^= h.ring[idx] << off
		off += h.width
		if off >= 64 {
			off -= 64
		}
	}
	return f
}

// reset clears the history.
func (h *histReg) reset() {
	for i := range h.ring {
		h.ring[i] = 0
	}
	h.pos = 0
	h.fold64 = 0
}

// snapshot and restore support speculative checkpointing. snapshot
// allocates a fresh buffer; snapshotInto reuses the destination's.
func (h *histReg) snapshot() histSnapshot {
	var s histSnapshot
	h.snapshotInto(&s)
	return s
}

// snapshotInto overwrites s with the current state, reusing s.ring
// when it has capacity — the allocation-free path the pipeline's
// per-branch speculative checkpointing uses.
func (h *histReg) snapshotInto(s *histSnapshot) {
	if cap(s.ring) < len(h.ring) {
		s.ring = make([]uint64, len(h.ring))
	}
	s.ring = s.ring[:len(h.ring)]
	copy(s.ring, h.ring)
	s.pos = h.pos
	s.fold64 = h.fold64
}

func (h *histReg) restore(s histSnapshot) {
	h.pos = s.pos
	h.fold64 = s.fold64
	copy(h.ring, s.ring)
}

type histSnapshot struct {
	ring   []uint64
	pos    int
	fold64 uint64
}

// Histories bundles CHiRP's three control-flow history registers
// (paper §IV-B): the global path history of L2-TLB-access PC bits, the
// conditional-branch address history and the unconditional-indirect-
// branch address history.
type Histories struct {
	path *histReg
	cond *histReg
	ind  *histReg

	// pathElemShift positions the two PC bits inside each path element
	// (the two injected leading zeros when the element is 4 bits wide).
	cfg HistoryConfig
}

// HistoryConfig sizes the three registers.
type HistoryConfig struct {
	// PathLength is the number of L2 TLB accesses recorded (paper: 16).
	PathLength int
	// PathLeadingZeros injects two zero bits per path element (paper
	// §III-B shift-and-scale; element width 4 instead of 2).
	PathLeadingZeros bool
	// BranchLength is the number of branches recorded per branch
	// history (paper: 8, at 8 bits of PC each).
	BranchLength int
}

// DefaultHistoryConfig returns the paper's configuration: 64-bit
// registers recording 16 accesses and 8 branches of each kind.
func DefaultHistoryConfig() HistoryConfig {
	return HistoryConfig{PathLength: 16, PathLeadingZeros: true, BranchLength: 8}
}

// NewHistories builds the three registers.
func NewHistories(cfg HistoryConfig) *Histories {
	if cfg.PathLength <= 0 {
		cfg.PathLength = 16
	}
	if cfg.BranchLength <= 0 {
		cfg.BranchLength = 8
	}
	pw := uint(2)
	if cfg.PathLeadingZeros {
		pw = 4
	}
	return &Histories{
		path: newHistReg(cfg.PathLength, pw),
		cond: newHistReg(cfg.BranchLength, 8),
		ind:  newHistReg(cfg.BranchLength, 8),
		cfg:  cfg,
	}
}

// PushAccess records an L2 TLB access by pc (paper Figure 5, procedure
// UpdatePathHist): the two low-order PC bits (bits 2 and 3, the bits
// the ADALINE study found most salient) enter the path history,
// followed by two injected zeros when shift-and-scale is on.
//
//chirp:hotpath
func (h *Histories) PushAccess(pc uint64) { h.path.push((pc >> 2) & 0x3) }

// PushCond records a conditional branch (paper Figure 5, procedure
// UpdateBrHist): PC bits [11:4].
//
//chirp:hotpath
func (h *Histories) PushCond(pc uint64) { h.cond.push((pc >> 4) & 0xff) }

// PushIndirect records an unconditional indirect branch: PC bits
// [11:4] into the indirect history.
//
//chirp:hotpath
func (h *Histories) PushIndirect(pc uint64) { h.ind.push((pc >> 4) & 0xff) }

// Path returns the folded 64-bit path history.
//
//chirp:hotpath
func (h *Histories) Path() uint64 { return h.path.fold() }

// Cond returns the folded 64-bit conditional-branch history.
//
//chirp:hotpath
func (h *Histories) Cond() uint64 { return h.cond.fold() }

// Indirect returns the folded 64-bit indirect-branch history.
//
//chirp:hotpath
func (h *Histories) Indirect() uint64 { return h.ind.fold() }

// Reset clears all three registers.
func (h *Histories) Reset() {
	h.path.reset()
	h.cond.reset()
	h.ind.reset()
}

// Snapshot captures the complete history state for speculative
// checkpointing. It allocates fresh buffers; checkpoint-per-branch
// callers should hold a HistoriesSnapshot and use SnapshotInto, which
// reuses them.
func (h *Histories) Snapshot() HistoriesSnapshot {
	var s HistoriesSnapshot
	h.SnapshotInto(&s)
	return s
}

// SnapshotInto overwrites s with the current history state, reusing
// s's ring buffers when they are already sized — zero allocations in
// steady state.
func (h *Histories) SnapshotInto(s *HistoriesSnapshot) {
	h.path.snapshotInto(&s.path)
	h.cond.snapshotInto(&s.cond)
	h.ind.snapshotInto(&s.ind)
}

// Restore rewinds to a snapshot.
func (h *Histories) Restore(s HistoriesSnapshot) {
	h.path.restore(s.path)
	h.cond.restore(s.cond)
	h.ind.restore(s.ind)
}

// HistoriesSnapshot is an opaque checkpoint of all three registers.
type HistoriesSnapshot struct {
	path, cond, ind histSnapshot
}
