package core

import (
	"fmt"

	"github.com/chirplab/chirp/internal/policy"
	"github.com/chirplab/chirp/internal/tlb"
)

// Config parameterises CHiRP. The zero value is not valid; use
// DefaultConfig. Every Figure 6 ablation and every Figure 2/9 sweep is
// expressible through these knobs.
type Config struct {
	// TableEntries is the number of saturating counters in the single
	// prediction table (power of two). The paper's 1 KB main budget is
	// 4096 two-bit counters; Figure 9 sweeps 128 B (512) to 8 KB
	// (32768).
	TableEntries int
	// CounterBits is the width of each prediction counter (paper: 2).
	CounterBits uint
	// DeadThreshold predicts dead when counter > DeadThreshold (paper
	// Figure 5, procedure Predict; 1 for 2-bit counters).
	DeadThreshold uint8

	// History sizes the three control-flow history registers.
	History HistoryConfig

	// Feature switches for the signature (paper §IV-B; all true in the
	// full design). The current PC (shifted right by two) is always a
	// component.
	UsePathHistory     bool
	UseCondHistory     bool
	UseIndirectHistory bool

	// SelectiveHitUpdate suppresses prediction-table traffic on hits to
	// the same TLB set as the immediately preceding access (§III
	// Observation 2 and §IV-D; on in the full design).
	SelectiveHitUpdate bool
	// FirstHitOnly trains the table on an entry's first hit only
	// (§IV-E; on in the full design). When off, every (non-suppressed)
	// hit trains, as SHiP and GHRP do.
	FirstHitOnly bool
	// DeadBlockVictim selects predicted-dead entries first on a miss
	// (on in the full design; off degenerates to pure LRU with
	// signature bookkeeping).
	DeadBlockVictim bool
	// GracefulDeadVictim evicts the dead-predicted entry deepest in the
	// LRU stack instead of the first one in way order (the paper's
	// Figure 5 scans ways in order). The grace period lets a
	// mispredicted entry receive its first hit and retrain, damping
	// counter fluctuation at the cost of keeping genuinely dead entries
	// slightly longer. Off in the paper-faithful default; the
	// chirpsweep tool ablates it.
	GracefulDeadVictim bool
}

// DefaultConfig returns the paper's main configuration: a 1 KB
// prediction table (4096 × 2-bit counters), 64-bit histories, all
// features and both update filters on.
func DefaultConfig() Config {
	return Config{
		TableEntries:       4096,
		CounterBits:        2,
		DeadThreshold:      1,
		History:            DefaultHistoryConfig(),
		UsePathHistory:     true,
		UseCondHistory:     true,
		UseIndirectHistory: true,
		SelectiveHitUpdate: true,
		FirstHitOnly:       true,
		DeadBlockVictim:    true,
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.TableEntries <= 0 || c.TableEntries&(c.TableEntries-1) != 0 {
		return fmt.Errorf("chirp: table entries %d must be a positive power of two", c.TableEntries)
	}
	if c.CounterBits == 0 || c.CounterBits > 8 {
		return fmt.Errorf("chirp: counter bits %d out of range 1..8", c.CounterBits)
	}
	if max := uint8(1<<c.CounterBits - 1); c.DeadThreshold >= max {
		return fmt.Errorf("chirp: dead threshold %d must be below counter max %d", c.DeadThreshold, max)
	}
	return nil
}

// CHiRP is the Control-flow History Reuse Prediction replacement
// policy (paper Figure 5) for a set-associative L2 TLB.
//
// It implements tlb.Policy, tlb.BranchObserver and
// tlb.TableAccounting.
type CHiRP struct {
	cfg  Config
	hist *Histories

	table *policy.CounterTable
	rec   *tlb.Recency
	ways  int

	// Per-entry CHiRP metadata (paper Table I: 16-bit signature, 1
	// prediction bit; the 3 LRU bits live in rec; firstHit is the
	// §IV-E training filter).
	sig      []uint16
	dead     []bool
	firstHit []bool

	// Per-access cached state, filled by OnAccess.
	curSig  uint16
	sameSet bool
	lastSet uint32
	haveSet bool

	// External-signature mode (tlb.SignatureFed): when extSigs is set,
	// OnAccess consumes the fed extSig/extPSig pair instead of reading
	// and advancing the history registers — the driver has precomputed
	// the identical sequence from the captured stream.
	extSigs bool
	extSig  uint16
	extPSig uint16

	reads, writes uint64
	accesses      uint64

	// Prediction-outcome tallies (see obs.go): deadOnArrival counts
	// inserts whose entry was predicted dead at fill time, falseDead
	// counts hits landing on a dead-marked entry — each such hit is
	// direct evidence of a misprediction the victim scan could have
	// acted on.
	deadOnArrival uint64
	falseDead     uint64

	// published mirrors the counters as of the last PublishMetrics, so
	// repeated publishes emit deltas (see obs.go).
	published struct {
		reads, writes, accesses, deadOnArrival, falseDead uint64
	}
}

var (
	_ tlb.Policy          = (*CHiRP)(nil)
	_ tlb.BranchObserver  = (*CHiRP)(nil)
	_ tlb.TableAccounting = (*CHiRP)(nil)
	_ tlb.SignatureFed    = (*CHiRP)(nil)
)

// New builds a CHiRP policy from cfg.
func New(cfg Config) (*CHiRP, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &CHiRP{
		cfg:   cfg,
		hist:  NewHistories(cfg.History),
		table: policy.NewCounterTable(cfg.TableEntries, cfg.CounterBits),
	}, nil
}

// MustNew is New for known-good configurations; it panics on error.
func MustNew(cfg Config) *CHiRP {
	p, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Name implements tlb.Policy.
func (*CHiRP) Name() string { return "chirp" }

// Config returns the policy's configuration.
func (p *CHiRP) Config() Config { return p.cfg }

// Histories exposes the history registers (used by the pipeline's
// speculative checkpointing and by tests).
func (p *CHiRP) Histories() *Histories { return p.hist }

// Attach implements tlb.Policy.
func (p *CHiRP) Attach(sets, ways int) {
	p.ways = ways
	n := sets * ways
	p.sig = make([]uint16, n)
	p.dead = make([]bool, n)
	p.firstHit = make([]bool, n)
	p.rec = tlb.NewRecency(sets, ways)
}

// OnBranch implements tlb.BranchObserver: conditional branches feed
// the conditional history, unconditional indirect branches feed the
// indirect history (paper Figure 5, lines 23–26). Direct unconditional
// branches and branch outcomes do not enter the signature — the paper
// notes the signature "relies on bits from the branch PC, not
// conditional branch outcomes or bits from branch targets".
//
//chirp:hotpath
func (p *CHiRP) OnBranch(pc uint64, conditional, indirect, _ bool, _ uint64) {
	switch {
	case conditional:
		if p.cfg.UseCondHistory {
			p.hist.PushCond(pc)
		}
	case indirect:
		if p.cfg.UseIndirectHistory {
			p.hist.PushIndirect(pc)
		}
	}
}

// signatureOf combines the enabled features (paper Figure 5, lines
// 5–6): sign ← PC≫2 ⊕ pathHist ⊕ condBrHist ⊕ unCondBrHist, hashed to
// 16 bits. Shared by the policy and SigSequencer so the precomputed
// sequence is the same computation, not a reimplementation.
//
//chirp:hotpath
func signatureOf(cfg *Config, hist *Histories, pc uint64) uint16 {
	sig := pc >> 2
	if cfg.UsePathHistory {
		sig ^= hist.Path()
	}
	if cfg.UseCondHistory {
		sig ^= hist.Cond()
	}
	if cfg.UseIndirectHistory {
		sig ^= hist.Indirect()
	}
	return uint16(policy.Mix64(sig))
}

// Signature returns the 16-bit hashed signature for pc under the
// current histories (paper Figure 5, line 6).
//
//chirp:hotpath
func (p *CHiRP) Signature(pc uint64) uint16 {
	return signatureOf(&p.cfg, p.hist, pc)
}

// index maps a 16-bit signature onto the prediction table.
//
//chirp:hotpath
func (p *CHiRP) index(sig uint16) uint64 {
	return uint64(sig) & uint64(p.cfg.TableEntries-1)
}

// predict applies the dead threshold (paper Figure 5, procedure
// Predict) to the counter for sig, counting the table read.
//
//chirp:hotpath
func (p *CHiRP) predict(sig uint16) bool {
	p.reads++
	return p.table.Read(p.index(sig)) > p.cfg.DeadThreshold
}

// train moves sig's counter toward dead or live (paper Figure 5,
// procedure UpdatePredTable).
//
//chirp:hotpath
func (p *CHiRP) train(sig uint16, dead bool) {
	p.writes++
	if dead {
		p.table.Inc(p.index(sig))
	} else {
		p.table.Dec(p.index(sig))
	}
}

// OnAccess implements tlb.Policy: compute the access's signature from
// the pre-update histories (Figure 5 computes sign before
// UpdatePathHist runs), update the path history, and latch the
// selective-hit-update same-set condition.
//
// Prefetch fills (a.Prefetch, per the tlb.Policy contract) only
// refresh the signature the following OnInsert will tag the entry
// with: a prefetch is not part of the committed access stream, so it
// must neither push the path history (the triggering PC already did
// when its demand access was observed) nor disturb the same-set latch
// that filters consecutive demand hits.
//
//chirp:hotpath
func (p *CHiRP) OnAccess(a *tlb.Access) {
	if a.Prefetch {
		if p.extSigs {
			p.curSig = p.extPSig
		} else {
			p.curSig = p.Signature(a.PC)
		}
		return
	}
	p.accesses++
	p.sameSet = p.haveSet && a.Set == p.lastSet
	p.lastSet, p.haveSet = a.Set, true
	if p.extSigs {
		p.curSig = p.extSig
		return
	}
	p.curSig = p.Signature(a.PC)
	if p.cfg.UsePathHistory {
		p.hist.PushAccess(a.PC)
	}
}

// BeginExternalSignatures implements tlb.SignatureFed: from now on the
// driver supplies the signature pair per access and the policy's own
// histories stay untouched (the driver delivers no branches either).
func (p *CHiRP) BeginExternalSignatures() { p.extSigs = true }

// SetSignatures implements tlb.SignatureFed: demand is the Figure 5
// signature under the pre-access histories, prefetch the signature of
// the same PC after the access's own path push — the value a trailing
// prefetch fill would compute live.
//
//chirp:hotpath
func (p *CHiRP) SetSignatures(demand, prefetch uint64) {
	p.extSig = uint16(demand)
	p.extPSig = uint16(prefetch)
}

// OnHit implements tlb.Policy (paper Figure 5, lines 13–21 plus the
// §IV-D selective hit update): consecutive hits to the same set only
// refresh the entry's signature; otherwise, on the entry's first hit,
// the old signature trains toward live and the entry is re-predicted
// under the new signature.
//
//chirp:hotpath
func (p *CHiRP) OnHit(set uint32, way int, _ *tlb.Access) {
	p.rec.Touch(set, way)
	i := int(set)*p.ways + way
	if p.dead[i] {
		p.falseDead++
	}
	if p.cfg.SelectiveHitUpdate && p.sameSet {
		p.sig[i] = p.curSig
		return
	}
	if p.firstHit[i] || !p.cfg.FirstHitOnly {
		p.train(p.sig[i], false)
		p.dead[i] = p.predict(p.curSig)
		p.firstHit[i] = false
	}
	p.sig[i] = p.curSig
}

// Victim implements tlb.Policy (paper Figure 5, procedure
// VictimEntry): a predicted-dead entry if one exists — the first in
// way order, as Figure 5's loop scans, or the LRU-deepest one under
// GracefulDeadVictim — else the LRU entry, in which case the LRU
// victim's signature trains toward dead (lines 10–12: the entry just
// proved dead under that signature).
//
//chirp:hotpath
func (p *CHiRP) Victim(set uint32, _ *tlb.Access) int {
	base := int(set) * p.ways
	if p.cfg.DeadBlockVictim {
		if p.cfg.GracefulDeadVictim {
			best, bestPos := -1, -1
			for w := 0; w < p.ways; w++ {
				if p.dead[base+w] {
					if pos := p.rec.Position(set, w); pos > bestPos {
						best, bestPos = w, pos
					}
				}
			}
			if best >= 0 {
				return best
			}
		} else {
			for w := 0; w < p.ways; w++ {
				if p.dead[base+w] {
					return w
				}
			}
		}
	}
	way := p.rec.LRU(set)
	p.train(p.sig[base+way], true)
	return way
}

// OnInsert implements tlb.Policy: tag the new entry with the access's
// signature, predict its fate from the table, and arm the first-hit
// training filter.
//
//chirp:hotpath
func (p *CHiRP) OnInsert(set uint32, way int, _ *tlb.Access) {
	p.rec.Touch(set, way)
	i := int(set)*p.ways + way
	p.sig[i] = p.curSig
	p.dead[i] = p.predict(p.curSig)
	if p.dead[i] {
		p.deadOnArrival++
	}
	p.firstHit[i] = true
}

// TableAccesses implements tlb.TableAccounting.
func (p *CHiRP) TableAccesses() (reads, writes uint64) { return p.reads, p.writes }

// Accesses returns how many TLB accesses the policy has observed.
func (p *CHiRP) Accesses() uint64 { return p.accesses }

// Storage describes CHiRP's hardware budget, reproducing Table I.
type Storage struct {
	PredictionBits int // 1 bit × entries
	SignatureBits  int // 16 bits × entries
	HistoryBits    int // 3 × 64-bit registers
	CounterBits    int // table entries × counter width
}

// TotalBits returns the summed budget.
func (s Storage) TotalBits() int {
	return s.PredictionBits + s.SignatureBits + s.HistoryBits + s.CounterBits
}

// TotalBytes returns the summed budget in bytes.
func (s Storage) TotalBytes() float64 { return float64(s.TotalBits()) / 8 }

// StorageFor computes the Table I budget for a TLB with entries
// entries under cfg.
func StorageFor(cfg Config, entries int) Storage {
	return Storage{
		PredictionBits: entries,
		SignatureBits:  16 * entries,
		HistoryBits:    3 * 64,
		CounterBits:    cfg.TableEntries * int(cfg.CounterBits),
	}
}

// DeadMarked reports whether the entry at (set, way) is currently
// predicted dead. Exposed for tests and diagnostic tooling.
func (p *CHiRP) DeadMarked(set uint32, way int) bool {
	return p.dead[int(set)*p.ways+way]
}

// TrainVictimDead applies the LRU-eviction training step (paper Figure
// 5, lines 10–12) for the entry at (set, way). External victim
// arbiters — like the mixed-page-size cost-aware wrapper — use it when
// they choose an LRU victim themselves instead of calling Victim.
func (p *CHiRP) TrainVictimDead(set uint32, way int) {
	p.train(p.sig[int(set)*p.ways+way], true)
}

// ForceDead overrides the dead mark of (set, way). Test and
// diagnostic hook only.
func (p *CHiRP) ForceDead(set uint32, way int, dead bool) {
	p.dead[int(set)*p.ways+way] = dead
}
