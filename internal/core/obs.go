package core

import "github.com/chirplab/chirp/internal/obs"

// Predictor metric counters in the default registry. As with the TLB
// metrics, the hot path only bumps plain struct fields; PublishMetrics
// flushes deltas when a run finishes.
var (
	obsPredicts = obs.Default.Counter("chirp_predictor_predictions_total",
		"Prediction-table reads (dead/live predictions).")
	obsTrains = obs.Default.Counter("chirp_predictor_trains_total",
		"Prediction-table writes (training updates).")
	obsAccesses = obs.Default.Counter("chirp_predictor_accesses_total",
		"Demand TLB accesses observed by the predictor.")
	obsDeadOnArrival = obs.Default.Counter("chirp_predictor_dead_on_arrival_total",
		"Entries predicted dead at insert time.")
	obsFalseDead = obs.Default.Counter("chirp_predictor_false_dead_total",
		"Hits landing on entries marked dead (mispredictions).")
)

// PublishMetrics implements obs.Publisher: it adds the predictor's
// counter movement since the previous publish to obs.Default. The
// simulation drivers call it once per finished run.
func (p *CHiRP) PublishMetrics() {
	obsPredicts.Add(p.reads - p.published.reads)
	obsTrains.Add(p.writes - p.published.writes)
	obsAccesses.Add(p.accesses - p.published.accesses)
	obsDeadOnArrival.Add(p.deadOnArrival - p.published.deadOnArrival)
	obsFalseDead.Add(p.falseDead - p.published.falseDead)
	p.published.reads, p.published.writes = p.reads, p.writes
	p.published.accesses = p.accesses
	p.published.deadOnArrival = p.deadOnArrival
	p.published.falseDead = p.falseDead
}

// PredictionOutcomes returns the dead-on-arrival and false-dead
// tallies: how many fills were predicted dead, and how many hits
// landed on dead-marked entries. Exposed for tests and diagnostics.
func (p *CHiRP) PredictionOutcomes() (deadOnArrival, falseDead uint64) {
	return p.deadOnArrival, p.falseDead
}
