package core

import (
	"math/rand"
	"testing"

	"github.com/chirplab/chirp/internal/tlb"
)

// TestSigSequencerMatchesLivePolicy is the property the derived
// signature view rests on: over an arbitrary interleaving of committed
// branches and demand accesses, the sequencer's (sig, psig) pair must
// equal what a live CHiRP computes for the demand access and for a
// prefetch fill it triggers. The live side is driven exactly as the
// TLB drives it — OnBranch plus OnAccess — and compared through its
// cached per-access signature.
func TestSigSequencerMatchesLivePolicy(t *testing.T) {
	configs := map[string]func(*Config){
		"default":      func(*Config) {},
		"no-path":      func(c *Config) { c.UsePathHistory = false },
		"no-cond":      func(c *Config) { c.UseCondHistory = false },
		"no-indirect":  func(c *Config) { c.UseIndirectHistory = false },
		"short-hist":   func(c *Config) { c.History.PathLength = 4; c.History.BranchLength = 2 },
		"no-lead-zero": func(c *Config) { c.History.PathLeadingZeros = false },
	}
	for name, mut := range configs {
		t.Run(name, func(t *testing.T) {
			cfg := DefaultConfig()
			mut(&cfg)
			p := MustNew(cfg)
			p.Attach(64, 8)
			q := NewSigSequencer(cfg)

			rng := rand.New(rand.NewSource(42))
			for i := 0; i < 20000; i++ {
				pc := rng.Uint64() & 0xffff_ffff
				if rng.Intn(3) == 0 {
					conditional := rng.Intn(2) == 0
					indirect := !conditional && rng.Intn(2) == 0
					p.OnBranch(pc, conditional, indirect, rng.Intn(2) == 0, rng.Uint64())
					q.OnBranch(pc, conditional, indirect)
					continue
				}
				sig, psig := q.OnAccess(pc)
				a := tlb.Access{PC: pc, VPN: rng.Uint64() & 0xfffff, Set: uint32(i % 64)}
				p.OnAccess(&a)
				if p.curSig != sig {
					t.Fatalf("event %d: demand signature %#x, live policy computed %#x", i, sig, p.curSig)
				}
				pa := tlb.Access{PC: pc, VPN: a.VPN + 1, Set: a.Set, Prefetch: true}
				p.OnAccess(&pa)
				if p.curSig != psig {
					t.Fatalf("event %d: prefetch signature %#x, live policy computed %#x", i, psig, p.curSig)
				}
			}
		})
	}
}

// TestSignatureKeySensitivity: the derived-view key must separate every
// configuration the signature sequence depends on, and nothing else.
func TestSignatureKeySensitivity(t *testing.T) {
	base := DefaultConfig()
	distinct := []func(*Config){
		func(c *Config) { c.History.PathLength = 4 },
		func(c *Config) { c.History.PathLeadingZeros = !c.History.PathLeadingZeros },
		func(c *Config) { c.History.BranchLength = 2 },
		func(c *Config) { c.UsePathHistory = false },
		func(c *Config) { c.UseCondHistory = false },
		func(c *Config) { c.UseIndirectHistory = false },
	}
	seen := map[string]bool{base.SignatureKey(): true}
	for i, mut := range distinct {
		c := base
		mut(&c)
		key := c.SignatureKey()
		if seen[key] {
			t.Errorf("mutation %d: signature-relevant change did not change SignatureKey %q", i, key)
		}
		seen[key] = true
	}
	// Knobs outside the signature computation must share the view.
	c := base
	c.TableEntries = 512
	c.CounterBits = 3
	c.SelectiveHitUpdate = !c.SelectiveHitUpdate
	if c.SignatureKey() != base.SignatureKey() {
		t.Errorf("signature-irrelevant knobs changed SignatureKey: %q vs %q", c.SignatureKey(), base.SignatureKey())
	}
}
