package core

import (
	"testing"
	"testing/quick"

	"github.com/chirplab/chirp/internal/tlb"
)

func TestConfigValidate(t *testing.T) {
	ok := DefaultConfig()
	if err := ok.Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
	bad := []Config{
		func() Config { c := DefaultConfig(); c.TableEntries = 0; return c }(),
		func() Config { c := DefaultConfig(); c.TableEntries = 1000; return c }(),
		func() Config { c := DefaultConfig(); c.CounterBits = 0; return c }(),
		func() Config { c := DefaultConfig(); c.CounterBits = 9; return c }(),
		func() Config { c := DefaultConfig(); c.DeadThreshold = 3; return c }(),
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(bad[0]); err == nil {
		t.Error("New accepted invalid config")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew must panic on invalid config")
		}
	}()
	c := DefaultConfig()
	c.TableEntries = 3
	MustNew(c)
}

func TestHistRegShiftSemantics(t *testing.T) {
	// With 16 elements of 4 bits the fold is exactly the paper's 64-bit
	// shift register: h = h<<4 | elem.
	h := newHistReg(16, 4)
	var ref uint64
	vals := []uint64{1, 2, 3, 0, 1, 3, 2, 2, 1, 0, 3, 3, 1, 2, 0, 1, 2, 3, 1}
	for _, v := range vals {
		h.push(v)
		ref = ref<<4 | v
	}
	if got := h.fold(); got != ref {
		t.Errorf("fold = %#x, want shift-register value %#x", got, ref)
	}
}

func TestHistRegBranchSemantics(t *testing.T) {
	// 8 elements × 8 bits: h = h<<8 | elem.
	h := newHistReg(8, 8)
	var ref uint64
	for _, v := range []uint64{0xab, 0xcd, 0x12, 0x44, 0x99, 0x01, 0xfe, 0x7a, 0x3c} {
		h.push(v)
		ref = ref<<8 | v
	}
	if got := h.fold(); got != ref {
		t.Errorf("fold = %#x, want %#x", got, ref)
	}
}

func TestHistRegLongFolds(t *testing.T) {
	// A 32-element 4-bit history folds the 128-bit conceptual register
	// into 64 bits; pushing 32 distinct elements must influence the
	// fold (no element silently dropped).
	h := newHistReg(32, 4)
	h.push(0xf)
	first := h.fold()
	for i := 0; i < 31; i++ {
		h.push(0)
	}
	// The first element is now at age 31 → offset (31*4)%64 = 60.
	if got := h.fold(); got != 0xf<<60 {
		t.Errorf("aged fold = %#x, want %#x", got, uint64(0xf)<<60)
	}
	_ = first
	h.push(0)
	if got := h.fold(); got != 0 {
		t.Errorf("fully-aged-out fold = %#x, want 0", got)
	}
}

func TestHistRegValidation(t *testing.T) {
	for _, f := range []func(){
		func() { newHistReg(0, 4) },
		func() { newHistReg(8, 0) },
		func() { newHistReg(8, 3) }, // 3 does not divide 64
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestHistoriesUpdateRules(t *testing.T) {
	h := NewHistories(DefaultHistoryConfig())
	// Path: PC bits [3:2] with two injected zeros.
	h.PushAccess(0b1100) // bits 3:2 = 0b11
	if got := h.Path(); got != 0b0011 {
		t.Errorf("path after one access = %#b, want 0b0011", got)
	}
	h.PushAccess(0b0100) // bits 3:2 = 0b01
	if got := h.Path(); got != 0b0011_0001 {
		t.Errorf("path after two accesses = %#b, want 0b00110001", got)
	}
	// Conditional: PC bits [11:4].
	h.PushCond(0xabc0)
	if got := h.Cond(); got != 0xbc {
		t.Errorf("cond = %#x, want 0xbc", got)
	}
	// Indirect is independent.
	if got := h.Indirect(); got != 0 {
		t.Errorf("indirect = %#x, want 0", got)
	}
	h.PushIndirect(0x1230)
	if got := h.Indirect(); got != 0x23 {
		t.Errorf("indirect = %#x, want 0x23", got)
	}
	h.Reset()
	if h.Path() != 0 || h.Cond() != 0 || h.Indirect() != 0 {
		t.Error("Reset must clear all histories")
	}
}

func TestHistoriesSnapshotRestore(t *testing.T) {
	h := NewHistories(DefaultHistoryConfig())
	for i := uint64(0); i < 10; i++ {
		h.PushAccess(i << 2)
		h.PushCond(i << 4)
	}
	snap := h.Snapshot()
	p, c := h.Path(), h.Cond()
	for i := uint64(0); i < 5; i++ {
		h.PushAccess(0xfc)
		h.PushIndirect(0xff0)
	}
	h.Restore(snap)
	if h.Path() != p || h.Cond() != c || h.Indirect() != 0 {
		t.Error("Restore did not rewind history state")
	}
}

func TestSignatureComposition(t *testing.T) {
	p := MustNew(DefaultConfig())
	p.Attach(8, 8)
	// With clean histories the signature depends only on the PC.
	s1 := p.Signature(0x4000)
	s2 := p.Signature(0x8000)
	if s1 == s2 {
		t.Error("different PCs must give different signatures")
	}
	// Conditional branch history changes the signature of the same PC.
	p.OnBranch(0x1230, true, false, true, 0)
	if p.Signature(0x4000) == s1 {
		t.Error("conditional-branch history must perturb the signature")
	}
	// Indirect history too.
	before := p.Signature(0x4000)
	p.OnBranch(0x5670, false, true, true, 0)
	if p.Signature(0x4000) == before {
		t.Error("indirect-branch history must perturb the signature")
	}
	// Direct unconditional branches must NOT perturb it (they enter no
	// history).
	before = p.Signature(0x4000)
	p.OnBranch(0x9990, false, false, true, 0)
	if p.Signature(0x4000) != before {
		t.Error("direct branches must not perturb the signature")
	}
}

func TestFeatureSwitches(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UseCondHistory = false
	cfg.UseIndirectHistory = false
	cfg.UsePathHistory = false
	p := MustNew(cfg)
	p.Attach(8, 8)
	s := p.Signature(0x4000)
	p.OnBranch(0x123c, true, false, true, 0)
	p.OnBranch(0x567c, false, true, true, 0)
	a := &tlb.Access{PC: 0x7000, VPN: 1, Set: 1}
	p.OnAccess(a) // would push path history if enabled
	if p.Signature(0x4000) != s {
		t.Error("disabled features must not affect the signature")
	}
	if got := uint64(s); got != uint64(p.Signature(0x4000)) {
		t.Errorf("signature unstable: %d vs %d", s, got)
	}
}

// drive pushes a VPN stream through a TLB under p, with one PC per
// distinct VPN region.
func drive(t *testing.T, p tlb.Policy, entries, ways int, accesses []tlb.Access) *tlb.TLB {
	t.Helper()
	tl, err := tlb.New(tlb.Config{Name: "t", Entries: entries, Ways: ways, PageShift: 12}, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range accesses {
		a := accesses[i]
		if _, hit := tl.Lookup(&a); !hit {
			tl.Insert(&a, a.VPN)
		}
	}
	return tl
}

func TestCHiRPLearnsDeadStreams(t *testing.T) {
	// Streaming pages (never reused) inserted under one control-flow
	// context, hot pages under another. After warmup CHiRP must keep
	// the hot set resident by evicting predicted-dead stream pages.
	p := MustNew(DefaultConfig())
	tl, err := tlb.New(tlb.Config{Name: "t", Entries: 8, Ways: 8, PageShift: 12}, p)
	if err != nil {
		t.Fatal(err)
	}
	hot := []uint64{1, 2, 3, 4}
	next := uint64(100)
	touch := func(pc, vpn uint64) {
		a := &tlb.Access{PC: pc, VPN: vpn}
		if _, hit := tl.Lookup(a); !hit {
			tl.Insert(a, vpn)
		}
	}
	for rep := 0; rep < 500; rep++ {
		for _, h := range hot {
			p.OnBranch(0x100, true, false, true, 0) // hot-loop branch context
			touch(0x4000, h)
		}
		p.OnBranch(0x2000, true, false, false, 0) // stream context
		touch(0x4000, next)                       // same PC as hot accesses!
		next++
	}
	st := tl.Stats()
	hitRatio := float64(st.Hits) / float64(st.Accesses)
	if hitRatio < 0.7 {
		t.Errorf("CHiRP hit ratio %.3f too low; failed to keep hot set resident", hitRatio)
	}
	for _, h := range hot {
		if !tl.Contains(h) {
			t.Errorf("hot VPN %d not resident at end", h)
		}
	}
}

func TestCHiRPSelectiveHitUpdateSuppressesTraffic(t *testing.T) {
	run := func(selective bool) (rate float64) {
		cfg := DefaultConfig()
		cfg.SelectiveHitUpdate = selective
		cfg.FirstHitOnly = false // isolate the selective filter
		p := MustNew(cfg)
		tl, err := tlb.New(tlb.Config{Name: "t", Entries: 64, Ways: 8, PageShift: 12}, p)
		if err != nil {
			t.Fatal(err)
		}
		// Repeatedly hit the same page: every access lands in the same
		// set as the previous one.
		a := &tlb.Access{PC: 0x1000, VPN: 5}
		tl.Lookup(a)
		tl.Insert(a, 5)
		for i := 0; i < 1000; i++ {
			tl.Lookup(a)
		}
		r, w := p.TableAccesses()
		return float64(r+w) / float64(tl.Stats().Accesses)
	}
	withFilter := run(true)
	without := run(false)
	if withFilter > 0.1 {
		t.Errorf("selective hit update: table access rate %.3f, want near 0 on same-set hits", withFilter)
	}
	if without < 1.0 {
		t.Errorf("without filter every hit must touch the table; rate %.3f", without)
	}
}

func TestCHiRPFirstHitOnlyTraining(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SelectiveHitUpdate = false // isolate the first-hit filter
	p := MustNew(cfg)
	tl, err := tlb.New(tlb.Config{Name: "t", Entries: 64, Ways: 8, PageShift: 12}, p)
	if err != nil {
		t.Fatal(err)
	}
	a := &tlb.Access{PC: 0x1000, VPN: 5}
	tl.Lookup(a)
	tl.Insert(a, 5)
	_, w0 := p.TableAccesses()
	tl.Lookup(a) // first hit → trains
	_, w1 := p.TableAccesses()
	if w1 != w0+1 {
		t.Fatalf("first hit must write the table once: Δwrites = %d", w1-w0)
	}
	for i := 0; i < 10; i++ {
		tl.Lookup(a) // subsequent hits → no training
	}
	_, w2 := p.TableAccesses()
	if w2 != w1 {
		t.Errorf("subsequent hits must not write the table: Δwrites = %d", w2-w1)
	}
}

func TestCHiRPLRUEvictionTrainsDead(t *testing.T) {
	cfg := DefaultConfig()
	p := MustNew(cfg)
	p.Attach(1, 2)
	a := &tlb.Access{PC: 0x1000, VPN: 1, Set: 0}
	p.OnAccess(a)
	p.OnInsert(0, 0, a)
	sig0 := p.sig[0]
	b := &tlb.Access{PC: 0x2000, VPN: 2, Set: 0}
	p.OnAccess(b)
	p.OnInsert(0, 1, b)
	// No dead entries: Victim must return the LRU way (0) and increment
	// its signature's counter.
	c := &tlb.Access{PC: 0x3000, VPN: 3, Set: 0}
	p.OnAccess(c)
	before := p.table.Read(p.index(sig0))
	if w := p.Victim(0, c); w != 0 {
		t.Fatalf("victim = %d, want LRU way 0", w)
	}
	after := p.table.Read(p.index(sig0))
	if after != before+1 {
		t.Errorf("LRU eviction must increment victim-signature counter: %d → %d", before, after)
	}
}

func TestCHiRPDeadVictimSelection(t *testing.T) {
	p := MustNew(DefaultConfig())
	p.Attach(1, 4)
	a := &tlb.Access{PC: 0x1000, VPN: 1, Set: 0}
	for w := 0; w < 4; w++ {
		p.OnAccess(a)
		p.OnInsert(0, w, a)
	}
	p.dead[2] = true
	if w := p.Victim(0, a); w != 2 {
		t.Errorf("victim = %d, want predicted-dead way 2", w)
	}
	// With DeadBlockVictim off it must ignore the dead bit.
	cfg := DefaultConfig()
	cfg.DeadBlockVictim = false
	q := MustNew(cfg)
	q.Attach(1, 4)
	for w := 0; w < 4; w++ {
		q.OnAccess(a)
		q.OnInsert(0, w, a)
	}
	q.dead[2] = true
	if w := q.Victim(0, a); w != 0 {
		t.Errorf("victim with DeadBlockVictim off = %d, want LRU way 0", w)
	}
}

func TestCHiRPDeadThreshold(t *testing.T) {
	p := MustNew(DefaultConfig())
	p.Attach(1, 1)
	sig := uint16(0x1234)
	idx := p.index(sig)
	if p.predict(sig) {
		t.Error("zero counter must predict live")
	}
	p.table.Inc(idx)
	if p.predict(sig) {
		t.Error("counter 1 (== threshold) must predict live")
	}
	p.table.Inc(idx)
	if !p.predict(sig) {
		t.Error("counter 2 (> threshold) must predict dead")
	}
}

func TestStorageForMatchesTableI(t *testing.T) {
	// Paper Table I (1024-entry TLB): prediction bits 1024 (128 B),
	// signature 16×1024 (2 KB), three 64-bit registers (24 B), plus the
	// counter table. For the 1 KB (4096×2-bit) budget: total = 128 +
	// 2048 + 24 + 1024 = 3224 bytes ≈ 3.15 KB.
	cfg := DefaultConfig()
	s := StorageFor(cfg, 1024)
	if s.PredictionBits != 1024 {
		t.Errorf("prediction bits = %d, want 1024", s.PredictionBits)
	}
	if s.SignatureBits != 16*1024 {
		t.Errorf("signature bits = %d, want %d", s.SignatureBits, 16*1024)
	}
	if s.HistoryBits != 192 {
		t.Errorf("history bits = %d, want 192", s.HistoryBits)
	}
	if s.CounterBits != 8192 {
		t.Errorf("counter bits = %d, want 8192", s.CounterBits)
	}
	if got := s.TotalBytes(); got != 3224 {
		t.Errorf("total bytes = %v, want 3224", got)
	}
	// The paper's small-end column: 512-counter table ≈ 2.65 KB total
	// with the same metadata.
	small := cfg
	small.TableEntries = 512
	if got := StorageFor(small, 1024).TotalBytes(); got != 2328 {
		t.Errorf("small-table total = %v bytes, want 2328", got)
	}
}

func TestDualHistorySquash(t *testing.T) {
	d := NewDualHistory(DefaultHistoryConfig())
	// Commit some right-path history.
	d.CommitCond(0x100)
	d.CommitAccess(0x200)
	d.SpeculateCond(0x100)
	d.SpeculateAccess(0x200)
	// Wrong-path speculation diverges the speculative copy.
	d.SpeculateCond(0xbad0)
	d.SpeculateIndirect(0xbad4)
	d.SpeculateAccess(0xbad8)
	if d.Speculative().Cond() == d.Architectural().Cond() {
		t.Fatal("speculation must diverge the speculative history")
	}
	d.Squash()
	if d.Speculative().Cond() != d.Architectural().Cond() ||
		d.Speculative().Path() != d.Architectural().Path() ||
		d.Speculative().Indirect() != d.Architectural().Indirect() {
		t.Error("Squash must restore speculative history to architectural state")
	}
}

func TestSignatureDeterminism(t *testing.T) {
	f := func(pc uint64, branches []uint16) bool {
		mk := func() *CHiRP {
			p := MustNew(DefaultConfig())
			p.Attach(8, 8)
			for _, b := range branches {
				p.OnBranch(uint64(b)<<2, b&1 == 0, b&1 == 1, true, 0)
			}
			return p
		}
		return mk().Signature(pc) == mk().Signature(pc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTableIndexWithinBounds(t *testing.T) {
	f := func(sig uint16, sizeLog uint8) bool {
		cfg := DefaultConfig()
		cfg.TableEntries = 1 << (7 + sizeLog%9) // 128 … 32768
		p := MustNew(cfg)
		return p.index(sig) < uint64(cfg.TableEntries)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
