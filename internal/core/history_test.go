package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHistRegFoldMatchesNaive(t *testing.T) {
	// Property: the incremental ring fold equals a naive reconstruction
	// of the conceptual long register folded into 64-bit chunks.
	f := func(vals []uint8, lengthRaw, widthSel uint8) bool {
		widths := []uint{2, 4, 8}
		width := widths[int(widthSel)%len(widths)]
		length := int(lengthRaw%48) + 1
		h := newHistReg(length, width)
		var window []uint64 // newest first
		for _, v := range vals {
			e := uint64(v) & (1<<width - 1)
			h.push(e)
			window = append([]uint64{e}, window...)
			if len(window) > length {
				window = window[:length]
			}
		}
		var want uint64
		off := uint(0)
		for _, e := range window {
			want ^= e << off
			off += width
			if off >= 64 {
				off -= 64
			}
		}
		return h.fold() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestHistRegIncrementalFoldMatchesReference pins the tentpole
// invariant: the O(1) rotate-XOR fold maintained by push is
// bit-identical to the reference ring walk (foldSlow) at every step
// of a randomized push/snapshot/restore interleaving, across the
// paper configuration (16×4, 8×8 — exactly 64-bit registers) and the
// Figure 2 sweep lengths, including conceptual registers far past 64
// bits (40×4 = 160 bits, 32×8 = 256 bits) where the XOR-folding
// actually wraps.
func TestHistRegIncrementalFoldMatchesReference(t *testing.T) {
	configs := []struct {
		length int
		width  uint
	}{
		{16, 4}, {8, 8}, // paper: exactly 64-bit registers
		{4, 4}, {8, 4}, {12, 4}, {24, 4}, {32, 4}, {40, 4}, // Fig. 2 path sweep
		{2, 8}, {16, 8}, {32, 8}, // branch-history sweep, >64-bit conceptual
		{7, 2}, {33, 2}, {64, 1}, // odd lengths, minimal width
	}
	rng := rand.New(rand.NewSource(0x5eed))
	for _, cfg := range configs {
		h := newHistReg(cfg.length, cfg.width)
		var snaps []histSnapshot
		for step := 0; step < 800; step++ {
			switch rng.Intn(10) {
			case 0:
				snaps = append(snaps, h.snapshot())
			case 1:
				if len(snaps) > 0 {
					h.restore(snaps[rng.Intn(len(snaps))])
				}
			case 2:
				if step%97 == 0 {
					h.reset()
				} else {
					h.push(rng.Uint64())
				}
			default:
				h.push(rng.Uint64())
			}
			if got, want := h.fold(), h.foldSlow(); got != want {
				t.Fatalf("len=%d width=%d step %d: incremental fold %#x != reference %#x",
					cfg.length, cfg.width, step, got, want)
			}
		}
	}
}

// TestHistoriesSnapshotIntoAllocFree pins the checkpointing satellite:
// steady-state SnapshotInto and DualHistory.Squash must not allocate.
func TestHistoriesSnapshotIntoAllocFree(t *testing.T) {
	h := NewHistories(DefaultHistoryConfig())
	var snap HistoriesSnapshot
	h.SnapshotInto(&snap) // first call sizes the buffers
	if allocs := testing.AllocsPerRun(100, func() {
		h.PushAccess(0x40)
		h.PushCond(0x80)
		h.SnapshotInto(&snap)
		h.Restore(snap)
	}); allocs != 0 {
		t.Errorf("SnapshotInto/Restore allocated %.1f objects per checkpoint, want 0", allocs)
	}

	d := NewDualHistory(DefaultHistoryConfig())
	d.Squash() // first squash sizes the scratch snapshot
	if allocs := testing.AllocsPerRun(100, func() {
		d.SpeculateCond(0x40)
		d.SpeculateAccess(0x80)
		d.Squash()
	}); allocs != 0 {
		t.Errorf("Squash allocated %.1f objects per misprediction, want 0", allocs)
	}
}

// TestSnapshotIntoMatchesSnapshot: the reusing path and the allocating
// path must capture identical state, including after a shrink-resize
// pattern (restoring a snapshot taken from a differently-sized
// history is not supported; reuse within one history is).
func TestSnapshotIntoMatchesSnapshot(t *testing.T) {
	h := NewHistories(HistoryConfig{PathLength: 24, PathLeadingZeros: true, BranchLength: 16})
	var reused HistoriesSnapshot
	for i := uint64(0); i < 100; i++ {
		h.PushAccess(i << 2)
		if i%3 == 0 {
			h.PushCond(i << 4)
		}
		if i%7 == 0 {
			h.PushIndirect(i << 4)
		}
		fresh := h.Snapshot()
		h.SnapshotInto(&reused)
		other := NewHistories(HistoryConfig{PathLength: 24, PathLeadingZeros: true, BranchLength: 16})
		other.Restore(reused)
		if other.Path() != h.Path() || other.Cond() != h.Cond() || other.Indirect() != h.Indirect() {
			t.Fatalf("step %d: SnapshotInto state diverged from live history", i)
		}
		other.Restore(fresh)
		if other.Path() != h.Path() || other.Cond() != h.Cond() || other.Indirect() != h.Indirect() {
			t.Fatalf("step %d: Snapshot state diverged from live history", i)
		}
	}
}

func TestHistRegSnapshotIsolation(t *testing.T) {
	h := newHistReg(8, 8)
	h.push(0xaa)
	snap := h.snapshot()
	h.push(0xbb)
	// Mutating after snapshot must not corrupt the snapshot.
	h.restore(snap)
	if got := h.fold(); got != 0xaa {
		t.Errorf("restored fold = %#x, want 0xaa", got)
	}
}

func TestHistoriesIndependentRegisters(t *testing.T) {
	h := NewHistories(DefaultHistoryConfig())
	h.PushCond(0xff0)
	if h.Path() != 0 || h.Indirect() != 0 {
		t.Error("cond push leaked into other registers")
	}
	h.PushAccess(0xc)
	if h.Indirect() != 0 {
		t.Error("access push leaked into indirect register")
	}
}

func TestHistoryConfigDefaults(t *testing.T) {
	// Zero lengths fall back to the paper's values.
	h := NewHistories(HistoryConfig{PathLeadingZeros: true})
	if len(h.path.ring) != 16 || len(h.cond.ring) != 8 {
		t.Errorf("defaulted lengths = %d/%d, want 16/8", len(h.path.ring), len(h.cond.ring))
	}
	// Without leading zeros, path elements are 2 bits wide.
	h2 := NewHistories(HistoryConfig{PathLength: 16})
	if h2.path.width != 2 {
		t.Errorf("no-leading-zero width = %d, want 2", h2.path.width)
	}
}

func TestPathLeadingZerosChangeEncoding(t *testing.T) {
	withLZ := NewHistories(HistoryConfig{PathLength: 16, PathLeadingZeros: true})
	without := NewHistories(HistoryConfig{PathLength: 16})
	for _, pc := range []uint64{0xc, 0x8, 0x4, 0xc} {
		withLZ.PushAccess(pc)
		without.PushAccess(pc)
	}
	// 4-bit vs 2-bit element packing must diverge after ≥2 pushes.
	if withLZ.Path() == without.Path() {
		t.Error("leading-zero injection did not change the folded history")
	}
}

func TestSignatureUses16Bits(t *testing.T) {
	p := MustNew(DefaultConfig())
	p.Attach(8, 8)
	seen := map[uint16]bool{}
	for pc := uint64(0); pc < 3000; pc++ {
		seen[p.Signature(pc<<2)] = true
		p.OnBranch(pc<<4, pc%2 == 0, pc%3 == 0, true, 0)
	}
	// The 16-bit hash must spread well beyond a few values.
	if len(seen) < 2000 {
		t.Errorf("signature diversity = %d/3000, suspiciously low", len(seen))
	}
}

func TestDualHistoryCommitFlowsMatchDirect(t *testing.T) {
	// Committing through DualHistory must produce the same
	// architectural state as pushing into a bare Histories.
	d := NewDualHistory(DefaultHistoryConfig())
	direct := NewHistories(DefaultHistoryConfig())
	for i := uint64(0); i < 30; i++ {
		d.CommitCond(i << 4)
		direct.PushCond(i << 4)
		d.CommitAccess(i << 2)
		direct.PushAccess(i << 2)
		if i%3 == 0 {
			d.CommitIndirect(i << 5)
			direct.PushIndirect(i << 5)
		}
	}
	if d.Architectural().Cond() != direct.Cond() ||
		d.Architectural().Path() != direct.Path() ||
		d.Architectural().Indirect() != direct.Indirect() {
		t.Error("dual-history commits diverged from direct pushes")
	}
}
