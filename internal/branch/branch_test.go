package branch

import (
	"testing"
	"testing/quick"
)

func TestPerceptronLearnsBias(t *testing.T) {
	p := NewPerceptron(DefaultPerceptronConfig())
	const pc = 0x40001c
	// Always-taken branch must converge to near-perfect prediction.
	wrong := 0
	for i := 0; i < 1000; i++ {
		pred := p.Predict(pc)
		if i > 100 && !pred {
			wrong++
		}
		p.Train(true)
	}
	if wrong > 5 {
		t.Errorf("always-taken branch mispredicted %d times after warmup", wrong)
	}
}

func TestPerceptronLearnsAlternation(t *testing.T) {
	p := NewPerceptron(DefaultPerceptronConfig())
	const pc = 0x5000a4
	wrong := 0
	for i := 0; i < 4000; i++ {
		taken := i%2 == 0
		pred := p.Predict(pc)
		if i > 1000 && pred != taken {
			wrong++
		}
		p.Train(taken)
	}
	// Alternation is trivially history-predictable.
	if wrong > 60 {
		t.Errorf("alternating branch mispredicted %d/3000 after warmup", wrong)
	}
}

func TestPerceptronLearnsCorrelation(t *testing.T) {
	p := NewPerceptron(DefaultPerceptronConfig())
	// Branch B's outcome equals branch A's last outcome: pure
	// history correlation, invisible to per-PC bias.
	const pcA, pcB = 0x1000, 0x2000
	lastA := false
	wrong := 0
	rng := uint64(12345)
	for i := 0; i < 6000; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		takenA := rng>>62&1 == 1
		p.Predict(pcA)
		p.Train(takenA)
		lastA = takenA

		predB := p.Predict(pcB)
		takenB := lastA
		if i > 2000 && predB != takenB {
			wrong++
		}
		p.Train(takenB)
	}
	if wrong > 400 {
		t.Errorf("correlated branch mispredicted %d/4000 after warmup", wrong)
	}
}

func TestPerceptronStats(t *testing.T) {
	p := NewPerceptron(DefaultPerceptronConfig())
	p.Predict(0x100)
	p.Train(true)
	preds, _ := p.Stats()
	if preds != 1 {
		t.Errorf("predictions = %d, want 1", preds)
	}
	if acc := p.Accuracy(); acc < 0 || acc > 1 {
		t.Errorf("accuracy out of range: %v", acc)
	}
}

func TestPerceptronConfigPanics(t *testing.T) {
	for _, cfg := range []PerceptronConfig{
		{Tables: 0, TableEntries: 64},
		{Tables: 32, TableEntries: 64},
		{Tables: 4, TableEntries: 100},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v accepted", cfg)
				}
			}()
			NewPerceptron(cfg)
		}()
	}
}

func TestBTBStoresTargets(t *testing.T) {
	b := NewBTB(64, 4)
	if _, hit := b.Lookup(0x1000); hit {
		t.Fatal("empty BTB must miss")
	}
	b.Update(0x1000, 0x2000)
	target, hit := b.Lookup(0x1000)
	if !hit || target != 0x2000 {
		t.Fatalf("Lookup = (%#x, %v), want (0x2000, true)", target, hit)
	}
	// Update in place.
	b.Update(0x1000, 0x3000)
	if target, _ := b.Lookup(0x1000); target != 0x3000 {
		t.Errorf("updated target = %#x, want 0x3000", target)
	}
}

func TestBTBEvictsLRUWithinSet(t *testing.T) {
	b := NewBTB(8, 2) // 4 sets, 2 ways
	// PCs mapping to set 0: pc>>2 ≡ 0 mod 4 → pc multiples of 16.
	b.Update(0x00, 1)
	b.Update(0x10, 2)
	b.Lookup(0x00)    // refresh
	b.Update(0x20, 3) // evicts 0x10
	if _, hit := b.Lookup(0x10); hit {
		t.Error("LRU entry not evicted")
	}
	if _, hit := b.Lookup(0x00); !hit {
		t.Error("refreshed entry evicted")
	}
}

func TestBTBPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewBTB(0, 4) },
		func() { NewBTB(10, 4) },
		func() { NewBTB(24, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestIndirectLearnsPerHistoryTargets(t *testing.T) {
	ip := NewIndirect(1024)
	// A switch-like indirect branch whose target depends on the
	// preceding target history.
	const pc = 0x7700
	targets := []uint64{0xa000, 0xb000, 0xc000}
	wrong := 0
	for i := 0; i < 3000; i++ {
		want := targets[i%len(targets)]
		got, hit := ip.Predict(pc)
		if i > 500 && (!hit || got != want) {
			wrong++
		}
		ip.Update(pc, want)
	}
	if wrong > 250 {
		t.Errorf("cyclic indirect mispredicted %d/2500 after warmup", wrong)
	}
	if r := ip.HitRatio(); r <= 0 || r > 1 {
		t.Errorf("hit ratio out of range: %v", r)
	}
}

func TestIndirectSizePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-power-of-two size")
		}
	}()
	NewIndirect(1000)
}

func TestBTBPropertyNeverFalsePositiveTarget(t *testing.T) {
	// Whatever sequence of updates happens, a Lookup hit must return
	// the most recent target installed for that PC.
	f := func(ops []uint16) bool {
		b := NewBTB(64, 4)
		last := map[uint64]uint64{}
		for i, op := range ops {
			pc := uint64(op%64) << 2
			target := uint64(i + 1)
			b.Update(pc, target)
			last[pc] = target
			if got, hit := b.Lookup(pc); hit && got != last[pc] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
