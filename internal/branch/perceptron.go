// Package branch implements the paper's branch prediction unit
// (Table II): a hashed perceptron direction predictor [Tarjan &
// Skadron, TACO 2005], a 4K-entry set-associative branch target
// buffer, and a global-history-hashed indirect target predictor. The
// timing model charges the 20-cycle penalty on any front-end
// misprediction.
package branch

// PerceptronConfig sizes the hashed perceptron predictor.
type PerceptronConfig struct {
	// Tables is the number of weight tables, each indexed by a hash of
	// the PC with a distinct segment of global history.
	Tables int
	// TableEntries is the rows per table (power of two).
	TableEntries int
	// HistoryBits is the global-history length hashed across tables.
	HistoryBits int
	// WeightMax bounds the signed weights (±WeightMax).
	WeightMax int
	// ThresholdScale sets the training threshold θ ≈ scale × Tables.
	ThresholdScale int
}

// DefaultPerceptronConfig returns an 8-table, 1K-row, 64-bit-history
// hashed perceptron comparable to the paper's "hashed perceptron"
// direction predictor.
func DefaultPerceptronConfig() PerceptronConfig {
	return PerceptronConfig{
		Tables:         8,
		TableEntries:   1024,
		HistoryBits:    64,
		WeightMax:      127,
		ThresholdScale: 18,
	}
}

// Perceptron is a hashed perceptron direction predictor.
type Perceptron struct {
	cfg     PerceptronConfig
	weights [][]int16
	history uint64
	theta   int

	// Last prediction state, latched by Predict for Train.
	lastIdx [16]uint32
	lastSum int

	predictions uint64
	mispredicts uint64
}

// NewPerceptron builds the predictor.
func NewPerceptron(cfg PerceptronConfig) *Perceptron {
	if cfg.Tables <= 0 || cfg.Tables > 16 {
		panic("branch: perceptron needs 1..16 tables")
	}
	if cfg.TableEntries <= 0 || cfg.TableEntries&(cfg.TableEntries-1) != 0 {
		panic("branch: perceptron table entries must be a power of two")
	}
	w := make([][]int16, cfg.Tables)
	for i := range w {
		w[i] = make([]int16, cfg.TableEntries)
	}
	return &Perceptron{cfg: cfg, weights: w, theta: cfg.ThresholdScale * cfg.Tables}
}

// mix hashes PC with a history segment for table t.
func (p *Perceptron) mix(pc uint64, t int) uint32 {
	seg := p.cfg.HistoryBits / p.cfg.Tables
	if seg == 0 {
		seg = 1
	}
	lo := t * seg
	h := (p.history >> uint(lo)) & (1<<uint(seg) - 1)
	x := pc>>2 ^ h*0x9e3779b97f4a7c15 ^ uint64(t)<<57
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	return uint32(x) & uint32(p.cfg.TableEntries-1)
}

// Predict returns the predicted direction for the conditional branch
// at pc and latches state for Train.
func (p *Perceptron) Predict(pc uint64) bool {
	sum := 0
	for t := 0; t < p.cfg.Tables; t++ {
		idx := p.mix(pc, t)
		p.lastIdx[t] = idx
		sum += int(p.weights[t][idx])
	}
	p.lastSum = sum
	p.predictions++
	return sum >= 0
}

// Train updates the weights with the actual outcome of the branch last
// predicted and shifts the outcome into the global history. It returns
// whether the prediction was correct.
func (p *Perceptron) Train(taken bool) bool {
	correct := (p.lastSum >= 0) == taken
	if !correct {
		p.mispredicts++
	}
	if !correct || abs(p.lastSum) <= p.theta {
		for t := 0; t < p.cfg.Tables; t++ {
			w := &p.weights[t][p.lastIdx[t]]
			if taken {
				if int(*w) < p.cfg.WeightMax {
					*w++
				}
			} else {
				if int(*w) > -p.cfg.WeightMax {
					*w--
				}
			}
		}
	}
	bit := uint64(0)
	if taken {
		bit = 1
	}
	p.history = p.history<<1 | bit
	return correct
}

// Accuracy returns the fraction of correct direction predictions.
func (p *Perceptron) Accuracy() float64 {
	if p.predictions == 0 {
		return 0
	}
	return 1 - float64(p.mispredicts)/float64(p.predictions)
}

// Stats returns (predictions, mispredictions).
func (p *Perceptron) Stats() (predictions, mispredicts uint64) {
	return p.predictions, p.mispredicts
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
