package branch

// BTB is a set-associative branch target buffer (4K entries in Table
// II) with LRU replacement.
type BTB struct {
	entries int
	ways    int
	sets    int
	tags    []uint64
	targets []uint64
	valid   []bool
	lru     []uint8

	lookups uint64
	hits    uint64
}

// NewBTB builds an entries-entry, ways-way BTB.
func NewBTB(entries, ways int) *BTB {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic("branch: BTB entries must be a positive multiple of ways")
	}
	sets := entries / ways
	if sets&(sets-1) != 0 {
		panic("branch: BTB set count must be a power of two")
	}
	b := &BTB{
		entries: entries, ways: ways, sets: sets,
		tags:    make([]uint64, entries),
		targets: make([]uint64, entries),
		valid:   make([]bool, entries),
		lru:     make([]uint8, entries),
	}
	for s := 0; s < sets; s++ {
		for w := 0; w < ways; w++ {
			b.lru[s*ways+w] = uint8(w)
		}
	}
	return b
}

func (b *BTB) index(pc uint64) (set int, tag uint64) {
	line := pc >> 2
	return int(line & uint64(b.sets-1)), line >> uint(log2(b.sets))
}

func (b *BTB) touch(base, way int) {
	p := b.lru[base+way]
	for w := 0; w < b.ways; w++ {
		if b.lru[base+w] < p {
			b.lru[base+w]++
		}
	}
	b.lru[base+way] = 0
}

// Lookup returns the predicted target for the branch at pc.
func (b *BTB) Lookup(pc uint64) (target uint64, hit bool) {
	b.lookups++
	set, tag := b.index(pc)
	base := set * b.ways
	for w := 0; w < b.ways; w++ {
		if b.valid[base+w] && b.tags[base+w] == tag {
			b.hits++
			b.touch(base, w)
			return b.targets[base+w], true
		}
	}
	return 0, false
}

// Update installs or refreshes the target for the branch at pc.
func (b *BTB) Update(pc, target uint64) {
	set, tag := b.index(pc)
	base := set * b.ways
	victim := -1
	for w := 0; w < b.ways; w++ {
		if b.valid[base+w] && b.tags[base+w] == tag {
			victim = w
			break
		}
	}
	if victim < 0 {
		for w := 0; w < b.ways; w++ {
			if !b.valid[base+w] {
				victim = w
				break
			}
		}
	}
	if victim < 0 {
		worst := uint8(0)
		for w := 0; w < b.ways; w++ {
			if b.lru[base+w] >= worst {
				worst, victim = b.lru[base+w], w
			}
		}
	}
	b.tags[base+victim] = tag
	b.targets[base+victim] = target
	b.valid[base+victim] = true
	b.touch(base, victim)
}

// HitRatio returns hits/lookups.
func (b *BTB) HitRatio() float64 {
	if b.lookups == 0 {
		return 0
	}
	return float64(b.hits) / float64(b.lookups)
}

func log2(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}

// Indirect predicts indirect-branch targets from a hash of the PC and
// a folded global target history (an ITTAGE-flavoured single table).
type Indirect struct {
	size    int
	tags    []uint64
	targets []uint64
	history uint64

	lookups uint64
	hits    uint64
}

// NewIndirect builds a size-entry (power of two) indirect predictor.
func NewIndirect(size int) *Indirect {
	if size <= 0 || size&(size-1) != 0 {
		panic("branch: indirect predictor size must be a power of two")
	}
	return &Indirect{size: size, tags: make([]uint64, size), targets: make([]uint64, size)}
}

func (ip *Indirect) index(pc uint64) (idx int, tag uint64) {
	x := pc>>2 ^ ip.history*0x9e3779b97f4a7c15
	x ^= x >> 31
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 29
	return int(x & uint64(ip.size-1)), x >> 48
}

// Predict returns the predicted target for the indirect branch at pc.
func (ip *Indirect) Predict(pc uint64) (target uint64, hit bool) {
	ip.lookups++
	idx, tag := ip.index(pc)
	if ip.tags[idx] == tag && ip.targets[idx] != 0 {
		ip.hits++
		return ip.targets[idx], true
	}
	return 0, false
}

// Update records the actual target and folds it into the history. The
// fold mixes a spread of target bits so that page-aligned targets
// (whose low bits are all zero) still perturb the history.
func (ip *Indirect) Update(pc, target uint64) {
	idx, tag := ip.index(pc)
	ip.tags[idx] = tag
	ip.targets[idx] = target
	nib := (target >> 2) ^ (target >> 8) ^ (target >> 14)
	ip.history = ip.history<<4 ^ nib&0xf ^ ip.history>>60
}

// HitRatio returns hits/lookups.
func (ip *Indirect) HitRatio() float64 {
	if ip.lookups == 0 {
		return 0
	}
	return float64(ip.hits) / float64(ip.lookups)
}
