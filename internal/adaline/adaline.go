// Package adaline implements the ADALINE (ADAptive LINear Element)
// learner of Widrow & Hoff that the paper uses offline (§II-D, §III-A)
// to score which PC bits carry reuse information. Each input is one PC
// bit (encoded ±1); the target is whether the touched TLB entry was
// reused before eviction. After training, the magnitude of each
// input's weight measures that bit's salience — Figure 3 shows bits 2
// and 3 dominating, which is why CHiRP's path history records exactly
// those bits.
package adaline

import "math"

// Config parameterises training.
type Config struct {
	// Inputs is the feature count (one per PC bit studied).
	Inputs int
	// LearningRate is the Widrow-Hoff µ.
	LearningRate float64
	// L1Decay is the regularisation strength that pulls unused weights
	// to zero (the paper: "incorporation of appropriate regularization
	// terms ... encourages such weights to converge to zero").
	L1Decay float64
}

// DefaultConfig studies PC bits 2..33 (32 inputs) with a conservative
// rate.
func DefaultConfig() Config {
	return Config{Inputs: 32, LearningRate: 0.01, L1Decay: 0.0005}
}

// Adaline is a trained linear element.
type Adaline struct {
	cfg     Config
	weights []float64
	bias    float64
	seen    uint64
	errors  uint64
}

// New builds an untrained ADALINE.
func New(cfg Config) *Adaline {
	if cfg.Inputs <= 0 {
		panic("adaline: inputs must be positive")
	}
	return &Adaline{cfg: cfg, weights: make([]float64, cfg.Inputs)}
}

// Output computes y = wᵀx + θ for a ±1-encoded input vector.
func (a *Adaline) Output(x []float64) float64 {
	y := a.bias
	for i, xi := range x {
		if i >= len(a.weights) {
			break
		}
		y += a.weights[i] * xi
	}
	return y
}

// Predict thresholds the output into the two classes.
func (a *Adaline) Predict(x []float64) bool { return a.Output(x) >= 0 }

// Train performs one Widrow-Hoff update toward target d ∈ {−1, +1}:
// w ← w + µ(d − y)x, with L1 decay pulling weights toward zero.
func (a *Adaline) Train(x []float64, d float64) {
	y := a.Output(x)
	a.seen++
	if (y >= 0) != (d >= 0) {
		a.errors++
	}
	e := a.cfg.LearningRate * (d - y)
	for i := range a.weights {
		if i < len(x) {
			a.weights[i] += e * x[i]
		}
		// L1 shrinkage.
		switch {
		case a.weights[i] > a.cfg.L1Decay:
			a.weights[i] -= a.cfg.L1Decay
		case a.weights[i] < -a.cfg.L1Decay:
			a.weights[i] += a.cfg.L1Decay
		default:
			a.weights[i] = 0
		}
	}
	a.bias += e
}

// Weights returns a copy of the trained weight vector.
func (a *Adaline) Weights() []float64 { return append([]float64(nil), a.weights...) }

// Salience returns |w| normalised to the maximum weight magnitude —
// the per-bit colour intensity of Figure 3's rows.
func (a *Adaline) Salience() []float64 {
	out := make([]float64, len(a.weights))
	max := 0.0
	for _, w := range a.weights {
		if m := math.Abs(w); m > max {
			max = m
		}
	}
	if max == 0 {
		return out
	}
	for i, w := range a.weights {
		out[i] = math.Abs(w) / max
	}
	return out
}

// Accuracy returns the online training accuracy.
func (a *Adaline) Accuracy() float64 {
	if a.seen == 0 {
		return 0
	}
	return 1 - float64(a.errors)/float64(a.seen)
}

// EncodePCBits expands pc into a ±1 input vector over bits
// [firstBit, firstBit+n).
func EncodePCBits(pc uint64, firstBit, n int) []float64 {
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		if pc>>(uint(firstBit+i))&1 == 1 {
			x[i] = 1
		} else {
			x[i] = -1
		}
	}
	return x
}
