package adaline

import (
	"testing"

	"github.com/chirplab/chirp/internal/trace"
)

func TestLearnsSingleInformativeBit(t *testing.T) {
	// Target = sign of input bit 0: ADALINE must put (almost) all its
	// weight there.
	a := New(Config{Inputs: 8, LearningRate: 0.05, L1Decay: 0.001})
	rng := trace.NewRNG(1)
	for i := 0; i < 5000; i++ {
		pc := rng.Uint64()
		x := EncodePCBits(pc, 0, 8)
		d := x[0] // target equals bit 0
		a.Train(x, d)
	}
	s := a.Salience()
	if s[0] != 1 {
		t.Fatalf("bit 0 salience = %v, want 1 (max)", s[0])
	}
	for i := 1; i < 8; i++ {
		if s[i] > 0.3 {
			t.Errorf("uninformative bit %d salience = %v, want < 0.3", i, s[i])
		}
	}
	if a.Accuracy() < 0.8 {
		t.Errorf("training accuracy = %v, want > 0.8", a.Accuracy())
	}
}

func TestL1DecayKillsUnusedWeights(t *testing.T) {
	a := New(Config{Inputs: 4, LearningRate: 0.05, L1Decay: 0.01})
	rng := trace.NewRNG(2)
	// Pure noise: all weights must decay to (near) zero.
	for i := 0; i < 3000; i++ {
		x := EncodePCBits(rng.Uint64(), 0, 4)
		d := 1.0
		if rng.Bool(0.5) {
			d = -1
		}
		a.Train(x, d)
	}
	for i, w := range a.Weights() {
		if w > 0.5 || w < -0.5 {
			t.Errorf("noise-trained weight %d = %v, want near 0", i, w)
		}
	}
}

func TestPredictThreshold(t *testing.T) {
	a := New(Config{Inputs: 2, LearningRate: 0.1, L1Decay: 0})
	x := []float64{1, 1}
	for i := 0; i < 200; i++ {
		a.Train(x, 1)
	}
	if !a.Predict(x) {
		t.Error("trained positive pattern predicted negative")
	}
	if out := a.Output(x); out <= 0 {
		t.Errorf("output = %v, want positive", out)
	}
}

func TestEncodePCBits(t *testing.T) {
	x := EncodePCBits(0b1010, 1, 3) // bits 1..3 = 1,0,1
	want := []float64{1, -1, 1}
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("EncodePCBits = %v, want %v", x, want)
		}
	}
}

func TestSalienceZeroWhenUntrained(t *testing.T) {
	a := New(DefaultConfig())
	for _, s := range a.Salience() {
		if s != 0 {
			t.Fatal("untrained salience must be all zero")
		}
	}
	if a.Accuracy() != 0 {
		t.Error("untrained accuracy must be 0")
	}
}

func TestNewPanicsOnBadInputs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New must panic for non-positive inputs")
		}
	}()
	New(Config{Inputs: 0})
}
