package engine

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Sink observes engine progress. Implementations must be safe for
// concurrent use: JobDone is called from every worker goroutine.
type Sink interface {
	// RunStart announces the job population: total jobs, of which
	// resumed were restored from a checkpoint without running.
	RunStart(total, resumed int)
	// JobDone reports one finished job; err is non-nil on failure
	// (including recovered panics).
	JobDone(key Key, elapsed time.Duration, err error)
	// RunEnd is called after the last JobDone of the run.
	RunEnd()
}

// Counters is a Sink that tallies run progress atomically — the
// engine's observable state for tests and for reporters built on top.
type Counters struct {
	Total   atomic.Int64 // jobs in the run, including resumed
	Resumed atomic.Int64 // restored from checkpoint, not executed
	Done    atomic.Int64 // executed successfully
	Failed  atomic.Int64 // executed and failed (error or panic)
	// WallNanos accumulates per-job wall time over executed jobs.
	WallNanos atomic.Int64
}

// RunStart implements Sink.
func (c *Counters) RunStart(total, resumed int) {
	c.Total.Store(int64(total))
	c.Resumed.Store(int64(resumed))
}

// JobDone implements Sink.
func (c *Counters) JobDone(_ Key, elapsed time.Duration, err error) {
	c.WallNanos.Add(int64(elapsed))
	if err != nil {
		c.Failed.Add(1)
		return
	}
	c.Done.Add(1)
}

// RunEnd implements Sink.
func (*Counters) RunEnd() {}

// Completed returns executed + resumed jobs (failures included): the
// numerator of a progress display.
func (c *Counters) Completed() int64 {
	return c.Done.Load() + c.Failed.Load() + c.Resumed.Load()
}

// Reporter is a Sink that prints a one-line progress report to an
// io.Writer every interval, plus a final summary line: jobs done/total,
// failures, resumed count, mean per-job wall time and an ETA derived
// from the observed completion rate.
type Reporter struct {
	Counters
	w        io.Writer
	interval time.Duration

	mu      sync.Mutex
	start   time.Time
	stop    chan struct{}
	stopped sync.WaitGroup
}

// NewReporter builds a Reporter writing to w every interval (5s when
// interval <= 0).
func NewReporter(w io.Writer, interval time.Duration) *Reporter {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	return &Reporter{w: w, interval: interval}
}

// RunStart implements Sink: it starts the periodic report loop.
func (r *Reporter) RunStart(total, resumed int) {
	r.Counters.RunStart(total, resumed)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.start = time.Now()
	stop := make(chan struct{}) // captured, not re-read: RunEnd nils the field
	r.stop = stop
	r.stopped.Add(1)
	go func() {
		defer r.stopped.Done()
		t := time.NewTicker(r.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				fmt.Fprintln(r.w, r.line())
			case <-stop:
				return
			}
		}
	}()
	if resumed > 0 {
		fmt.Fprintf(r.w, "engine: resumed %d/%d jobs from checkpoint\n", resumed, total)
	}
}

// RunEnd implements Sink: it stops the loop and prints the summary.
func (r *Reporter) RunEnd() {
	r.mu.Lock()
	if r.stop != nil {
		close(r.stop)
		r.stop = nil
	}
	r.mu.Unlock()
	r.stopped.Wait()
	fmt.Fprintf(r.w, "%s in %v\n", r.line(), time.Since(r.start).Round(time.Millisecond))
}

// line renders one progress report.
func (r *Reporter) line() string {
	total := r.Total.Load()
	completed := r.Completed()
	failed := r.Failed.Load()
	resumed := r.Resumed.Load()
	executed := r.Done.Load() + failed

	s := fmt.Sprintf("engine: %d/%d jobs", completed, total)
	if failed > 0 {
		s += fmt.Sprintf(", %d failed", failed)
	}
	if resumed > 0 {
		s += fmt.Sprintf(", %d resumed", resumed)
	}
	if executed > 0 {
		mean := time.Duration(r.WallNanos.Load() / executed).Round(time.Millisecond)
		s += fmt.Sprintf(", %v/job", mean)
		elapsed := time.Since(r.start)
		if remaining := total - completed; remaining > 0 && elapsed > 0 {
			rate := float64(executed) / elapsed.Seconds()
			if rate > 0 {
				eta := time.Duration(float64(remaining) / rate * float64(time.Second))
				s += fmt.Sprintf(", eta %v", eta.Round(time.Second))
			}
		}
	}
	return s
}

// MultiSink fans events out to several sinks.
func MultiSink(sinks ...Sink) Sink { return multiSink(sinks) }

type multiSink []Sink

func (m multiSink) RunStart(total, resumed int) {
	for _, s := range m {
		s.RunStart(total, resumed)
	}
}

func (m multiSink) JobDone(k Key, elapsed time.Duration, err error) {
	for _, s := range m {
		s.JobDone(k, elapsed, err)
	}
}

func (m multiSink) RunEnd() {
	for _, s := range m {
		s.RunEnd()
	}
}
