package engine

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// checkpointVersion guards the on-disk record layout.
const checkpointVersion = 1

// Checkpoint is an append-only JSONL record of completed job results.
//
// File format: the first line is a header
//
//	{"chirp_checkpoint":1,"meta":"<run fingerprint>"}
//
// and every subsequent line is one completed job
//
//	{"key":{"scope":"fig7","workload":"db-003","policy":"chirp"},"result":{...}}
//
// Records are appended and fsynced as jobs complete, so a killed run
// leaves at most one truncated trailing line, which Open discards.
// The meta string fingerprints the run's parameters (suite size,
// instruction budget, tool); resuming against a file whose meta
// differs is refused rather than silently mixing incompatible rows.
// Results round-trip through encoding/json, whose float64 encoding is
// exact, so a resumed run reproduces an uninterrupted run's output
// byte for byte.
type Checkpoint struct {
	mu   sync.Mutex
	path string
	f    *os.File
	done map[Key]json.RawMessage
}

type checkpointHeader struct {
	Version int    `json:"chirp_checkpoint"`
	Meta    string `json:"meta"`
}

type checkpointRow struct {
	Key    Key             `json:"key"`
	Result json.RawMessage `json:"result"`
}

// Open creates path (writing the header) or resumes from it (loading
// every completed row) after validating that its meta matches.
func Open(path, meta string) (*Checkpoint, error) {
	c := &Checkpoint{path: path, done: make(map[Key]json.RawMessage)}
	data, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err) || (err == nil && len(data) == 0):
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		hdr, _ := json.Marshal(checkpointHeader{Version: checkpointVersion, Meta: meta})
		if _, err := f.Write(append(hdr, '\n')); err != nil {
			f.Close()
			return nil, fmt.Errorf("checkpoint %s: writing header: %w", path, err)
		}
		c.f = f
		return c, nil
	case err != nil:
		return nil, err
	}

	lines := bytes.Split(data, []byte("\n"))
	var hdr checkpointHeader
	if err := json.Unmarshal(lines[0], &hdr); err != nil {
		return nil, fmt.Errorf("checkpoint %s: unreadable header: %w", path, err)
	}
	if hdr.Version != checkpointVersion {
		return nil, fmt.Errorf("checkpoint %s: version %d, want %d", path, hdr.Version, checkpointVersion)
	}
	if hdr.Meta != meta {
		return nil, fmt.Errorf("checkpoint %s was written by a different run (its meta %q, this run %q); use a fresh file or matching parameters", path, hdr.Meta, meta)
	}
	for n, line := range lines[1:] {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var row checkpointRow
		if err := json.Unmarshal(line, &row); err != nil {
			if n == len(lines)-2 {
				break // truncated final line from a killed writer
			}
			return nil, fmt.Errorf("checkpoint %s: corrupt row %d: %w", path, n+2, err)
		}
		c.done[row.Key] = row.Result
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	c.f = f
	return c, nil
}

// Len reports how many completed rows the checkpoint holds.
func (c *Checkpoint) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.done)
}

// Has reports whether the key has a completed result.
func (c *Checkpoint) Has(k Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.done[k]
	return ok
}

// Get unmarshals the key's result into out, reporting whether the key
// was present.
func (c *Checkpoint) Get(k Key, out any) (bool, error) {
	c.mu.Lock()
	raw, ok := c.done[k]
	c.mu.Unlock()
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return true, fmt.Errorf("checkpoint %s: decoding %s: %w", c.path, k, err)
	}
	return true, nil
}

// Put appends one completed result and syncs it to disk.
func (c *Checkpoint) Put(k Key, result any) error {
	raw, err := json.Marshal(result)
	if err != nil {
		return fmt.Errorf("checkpoint %s: encoding %s: %w", c.path, k, err)
	}
	line, err := json.Marshal(checkpointRow{Key: k, Result: raw})
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	w := bufio.NewWriter(c.f)
	w.Write(line)
	w.WriteByte('\n')
	if err := w.Flush(); err != nil {
		return fmt.Errorf("checkpoint %s: appending %s: %w", c.path, k, err)
	}
	if err := c.f.Sync(); err != nil {
		return fmt.Errorf("checkpoint %s: syncing: %w", c.path, err)
	}
	c.done[k] = raw
	return nil
}

// Close releases the underlying file. The Checkpoint can still serve
// Has/Get afterwards; Put will fail.
func (c *Checkpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	err := c.f.Close()
	c.f = nil
	return err
}
