package engine

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func job(i int, run func(ctx context.Context) (int, error)) Job[int] {
	return Job[int]{
		Key: Key{Workload: fmt.Sprintf("w%03d", i), Policy: "p"},
		Run: run,
	}
}

func okJobs(n int, ran *atomic.Int64) []Job[int] {
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = job(i, func(context.Context) (int, error) {
			if ran != nil {
				ran.Add(1)
			}
			return i * i, nil
		})
	}
	return jobs
}

func TestRunAllSucceed(t *testing.T) {
	var ran atomic.Int64
	var c Counters
	res, err := Run(context.Background(), okJobs(50, &ran), Config{Workers: 4, Sink: &c})
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 50 {
		t.Errorf("ran %d/50 jobs", ran.Load())
	}
	for i, v := range res {
		if v != i*i {
			t.Errorf("result[%d] = %d, want %d", i, v, i*i)
		}
	}
	if c.Done.Load() != 50 || c.Failed.Load() != 0 || c.Total.Load() != 50 {
		t.Errorf("counters = done %d failed %d total %d", c.Done.Load(), c.Failed.Load(), c.Total.Load())
	}
}

// TestCancelOnFirstFailure is the regression test for the old fanOut,
// which kept feeding every remaining job after a failure: with one
// worker, a failure at job 2 must prevent jobs 3..9 from ever running.
func TestCancelOnFirstFailure(t *testing.T) {
	var ran atomic.Int64
	boom := errors.New("boom")
	jobs := make([]Job[int], 10)
	for i := range jobs {
		i := i
		jobs[i] = job(i, func(context.Context) (int, error) {
			ran.Add(1)
			if i == 2 {
				return 0, boom
			}
			return i, nil
		})
	}
	res, err := Run(context.Background(), jobs, Config{Workers: 1})
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v, want wrapped %v", err, boom)
	}
	if got := ran.Load(); got != 3 {
		t.Errorf("ran %d jobs after failure at job 2, want 3 (dispatch must stop)", got)
	}
	// Results completed before the failure survive.
	if res[0] != 0 || res[1] != 1 {
		t.Errorf("pre-failure results lost: %v", res[:2])
	}
}

// TestMultiErrorAggregation is the regression test for the old
// fanOut's silent discarding of every error but the first: two jobs
// that fail while both are in flight must both be reported, each
// naming its own job.
func TestMultiErrorAggregation(t *testing.T) {
	var gate sync.WaitGroup
	gate.Add(2)
	fail := func(i int) Job[int] {
		return job(i, func(context.Context) (int, error) {
			gate.Done()
			gate.Wait() // both failures are in flight before either returns
			return 0, fmt.Errorf("fail-%d", i)
		})
	}
	_, err := Run(context.Background(), []Job[int]{fail(0), fail(1)}, Config{Workers: 2})
	if err == nil {
		t.Fatal("no error")
	}
	for _, want := range []string{"job w000/p: fail-0", "job w001/p: fail-1"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("aggregated error missing %q:\n%v", want, err)
		}
	}
}

func TestPanicBecomesErrorWithIdentity(t *testing.T) {
	jobs := okJobs(4, nil)
	jobs[2] = Job[int]{
		Key: Key{Scope: "suite", Workload: "db-003", Policy: "chirp"},
		Run: func(context.Context) (int, error) { panic("policy exploded") },
	}
	_, err := Run(context.Background(), jobs, Config{Workers: 1})
	if err == nil {
		t.Fatal("panic did not surface as an error")
	}
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("error %v does not carry a *JobError", err)
	}
	if je.Key.Workload != "db-003" || je.Key.Policy != "chirp" {
		t.Errorf("JobError key = %v, want db-003/chirp", je.Key)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v does not carry a *PanicError", err)
	}
	if pe.Value != "policy exploded" || len(pe.Stack) == 0 {
		t.Errorf("PanicError = value %v, stack %d bytes", pe.Value, len(pe.Stack))
	}
	if !strings.Contains(err.Error(), "db-003/chirp") {
		t.Errorf("error text does not name the job: %v", err)
	}
}

func TestExternalCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	jobs := make([]Job[int], 20)
	for i := range jobs {
		i := i
		jobs[i] = job(i, func(context.Context) (int, error) {
			if ran.Add(1) == 3 {
				cancel()
			}
			return i, nil
		})
	}
	_, err := Run(ctx, jobs, Config{Workers: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got >= 20 {
		t.Errorf("cancellation did not stop dispatch (ran %d)", got)
	}
}

func TestCheckpointResume(t *testing.T) {
	path := t.TempDir() + "/run.ckpt"

	// First attempt: job 3 fails, everything before it completes and
	// is checkpointed.
	ck, err := Open(path, "meta-v1")
	if err != nil {
		t.Fatal(err)
	}
	jobs := okJobs(6, nil)
	jobs[3] = job(3, func(context.Context) (int, error) { return 0, errors.New("transient") })
	if _, err := Run(context.Background(), jobs, Config{Workers: 1, Checkpoint: ck}); err == nil {
		t.Fatal("first attempt should fail")
	}
	if ck.Len() != 3 {
		t.Fatalf("checkpoint holds %d rows after interrupt, want 3", ck.Len())
	}
	ck.Close()

	// Resume: the same run with the failure healed must restore rows
	// 0..2 without re-running them and produce the full result set.
	ck2, err := Open(path, "meta-v1")
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	var ran atomic.Int64
	var c Counters
	res, err := Run(context.Background(), okJobs(6, &ran), Config{Workers: 2, Sink: &c, Checkpoint: ck2})
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 3 {
		t.Errorf("resume re-ran %d jobs, want 3", ran.Load())
	}
	if c.Resumed.Load() != 3 {
		t.Errorf("sink saw %d resumed, want 3", c.Resumed.Load())
	}
	for i, v := range res {
		if v != i*i {
			t.Errorf("resumed result[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestCheckpointMetaMismatch(t *testing.T) {
	path := t.TempDir() + "/run.ckpt"
	ck, err := Open(path, "n=870 instr=2000000")
	if err != nil {
		t.Fatal(err)
	}
	ck.Close()
	if _, err := Open(path, "n=96 instr=1000000"); err == nil {
		t.Fatal("resuming with different parameters must be refused")
	}
}

// TestCheckpointTruncatedTail simulates a run killed mid-append: the
// partial trailing line is discarded, the complete rows survive.
func TestCheckpointTruncatedTail(t *testing.T) {
	path := t.TempDir() + "/run.ckpt"
	ck, err := Open(path, "m")
	if err != nil {
		t.Fatal(err)
	}
	ck.Put(Key{Workload: "a", Policy: "p"}, 1)
	ck.Put(Key{Workload: "b", Policy: "p"}, 2)
	ck.Close()

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"key":{"worklo`) // killed mid-write, no newline
	f.Close()

	ck2, err := Open(path, "m")
	if err != nil {
		t.Fatalf("truncated tail not tolerated: %v", err)
	}
	defer ck2.Close()
	if ck2.Len() != 2 {
		t.Errorf("recovered %d rows, want 2", ck2.Len())
	}
	var v int
	if ok, err := ck2.Get(Key{Workload: "b", Policy: "p"}, &v); !ok || err != nil || v != 2 {
		t.Errorf("Get(b/p) = %v %v %v", ok, err, v)
	}
}

func TestReporterLines(t *testing.T) {
	var buf strings.Builder
	r := NewReporter(&buf, time.Hour) // no periodic ticks; just start/end lines
	r.RunStart(4, 1)
	r.JobDone(Key{Workload: "w", Policy: "p"}, 10*time.Millisecond, nil)
	r.JobDone(Key{Workload: "w", Policy: "q"}, 10*time.Millisecond, errors.New("x"))
	r.RunEnd()
	out := buf.String()
	for _, want := range []string{"resumed 1/4", "3/4 jobs", "1 failed"} {
		if !strings.Contains(out, want) {
			t.Errorf("reporter output missing %q:\n%s", want, out)
		}
	}
}

// TestParallelRace exercises the full engine (sink, checkpoint,
// cancellation plumbing) under parallelism; `go test -race` makes it
// a data-race check.
func TestParallelRace(t *testing.T) {
	ck, err := Open(t.TempDir()+"/race.ckpt", "race")
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	var c Counters
	rep := NewReporter(&strings.Builder{}, time.Millisecond)
	res, err := Run(context.Background(), okJobs(64, nil),
		Config{Workers: 8, Sink: MultiSink(&c, rep), Checkpoint: ck})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 64 || c.Done.Load() != 64 {
		t.Errorf("parallel run incomplete: %d results, %d done", len(res), c.Done.Load())
	}
}

func TestStartProfilesWritesBothFiles(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := dir+"/cpu.pprof", dir+"/mem.pprof"
	stop, err := StartProfiles(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU and heap so the profiles have content.
	sink := make([]byte, 0, 1<<16)
	for i := 0; i < 1000; i++ {
		sink = append(sink, byte(i))
	}
	_ = sink
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s missing: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestStartProfilesNoOp(t *testing.T) {
	stop, err := StartProfiles("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Errorf("no-op stop returned %v", err)
	}
}
