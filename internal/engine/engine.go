// Package engine runs batches of independent simulation jobs — one
// per (workload, policy) pair — across a bounded worker pool with the
// hardening a multi-hour suite sweep needs and the bare fan-out it
// replaces lacked:
//
//   - context-based cancellation: the first failure (or an external
//     cancel) stops dispatching new jobs; in-flight jobs drain;
//   - panic safety: a panic inside a job is recovered and converted
//     into an error carrying the job's identity and stack, instead of
//     tearing down the process and every completed result with it;
//   - multi-error aggregation: every failure that occurred is
//     reported, wrapped in a *JobError naming its (workload, policy),
//     not just whichever error happened to land first;
//   - checkpointing: completed results append to a JSONL checkpoint
//     file, so a killed run resumes exactly where it stopped (see
//     Checkpoint);
//   - telemetry: a pluggable Sink observes job starts/completions;
//     Counters tallies them for tests and Reporter renders periodic
//     one-line progress reports with an ETA.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"github.com/chirplab/chirp/internal/obs"
)

// Engine metrics in the default registry: how many jobs are executing
// right now, how long they take, and how they finish. One histogram
// observation and a couple of atomic bumps per job — invisible next to
// a simulation that runs for milliseconds at minimum.
var (
	obsJobsInFlight = obs.Default.Gauge("chirp_engine_jobs_inflight",
		"Jobs currently executing across all engine runs.")
	obsJobSeconds = obs.Default.Histogram("chirp_engine_job_seconds",
		"Per-job wall time.", obs.DurationBuckets())
	obsJobs = obs.Default.CounterVec("chirp_engine_jobs_total",
		"Finished jobs by outcome (ok, error, resumed).", "status")
)

// Key identifies one job inside a run — and inside a checkpoint file,
// so it must be stable across process restarts. Scope namespaces
// multiple engine invocations sharing one checkpoint (e.g. the stages
// of a sweep that reuse policy names under different configurations).
type Key struct {
	Scope    string `json:"scope,omitempty"`
	Workload string `json:"workload"`
	Policy   string `json:"policy"`
}

// String renders the key for error messages and progress lines.
func (k Key) String() string {
	if k.Scope == "" {
		return k.Workload + "/" + k.Policy
	}
	return k.Scope + ":" + k.Workload + "/" + k.Policy
}

// Job couples a key with the work that produces its result.
type Job[T any] struct {
	Key Key
	Run func(ctx context.Context) (T, error)
}

// Config parameterises one engine run.
type Config struct {
	// Workers bounds parallelism (<= 0 means GOMAXPROCS).
	Workers int
	// Sink observes progress; nil means no telemetry.
	Sink Sink
	// Checkpoint, when non-nil, is consulted before dispatch (jobs
	// whose key it already holds are restored, not re-run) and
	// appended to after every completed job.
	Checkpoint *Checkpoint
}

// JobError attributes one job failure to its (workload, policy) key.
type JobError struct {
	Key Key
	Err error

	index int // dispatch position, for deterministic aggregation order
}

// Error implements error.
func (e *JobError) Error() string { return fmt.Sprintf("job %s: %v", e.Key, e.Err) }

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *JobError) Unwrap() error { return e.Err }

// PanicError is the cause of a JobError whose job panicked.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// Run executes jobs across the worker pool and returns their results
// in job order. Jobs already present in cfg.Checkpoint are restored
// without running. On failure the returned error aggregates one
// *JobError per failed job (extract them with errors.As, or unwrap
// the slice via errors.Join semantics); results of jobs that did
// complete are still filled in, so callers holding a checkpoint lose
// nothing.
func Run[T any](ctx context.Context, jobs []Job[T], cfg Config) ([]T, error) {
	results := make([]T, len(jobs))

	// Restore checkpointed jobs and collect the rest for dispatch.
	pending := make([]int, 0, len(jobs))
	for i, j := range jobs {
		if cfg.Checkpoint != nil {
			ok, err := cfg.Checkpoint.Get(j.Key, &results[i])
			if err != nil {
				return results, fmt.Errorf("engine: restoring %s: %w", j.Key, err)
			}
			if ok {
				obsJobs.With("resumed").Inc()
				continue
			}
		}
		pending = append(pending, i)
	}
	if cfg.Sink != nil {
		cfg.Sink.RunStart(len(jobs), len(jobs)-len(pending))
		defer cfg.Sink.RunEnd()
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pending) {
		workers = len(pending)
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu   sync.Mutex
		errs []*JobError
	)
	fail := func(i int, key Key, err error) {
		// A job that returns a *JobError directly has attributed its
		// failure to a finer-grained key (a fused multi-policy job
		// blaming one policy's cell); keep that attribution instead of
		// re-wrapping it under the job's own key.
		je, ok := err.(*JobError)
		if !ok {
			je = &JobError{Key: key, Err: err}
		}
		je.index = i
		mu.Lock()
		errs = append(errs, je)
		mu.Unlock()
		cancel() // first failure stops dispatch; in-flight jobs drain
	}
	runOne := func(i int) {
		j := jobs[i]
		start := time.Now()
		obsJobsInFlight.Inc()
		res, err := protect(runCtx, j)
		obsJobsInFlight.Dec()
		// Keep whatever the job produced even when it also failed: a
		// fused job returns the rows of its healthy policies alongside
		// the error blaming the broken one. Only successes checkpoint.
		results[i] = res
		if err == nil {
			if cfg.Checkpoint != nil {
				if cerr := cfg.Checkpoint.Put(j.Key, res); cerr != nil {
					err = fmt.Errorf("checkpointing result: %w", cerr)
				}
			}
		}
		elapsed := time.Since(start)
		obsJobSeconds.Observe(elapsed.Seconds())
		if err != nil {
			obsJobs.With("error").Inc()
			fail(i, j.Key, err)
		} else {
			obsJobs.With("ok").Inc()
		}
		if cfg.Sink != nil {
			cfg.Sink.JobDone(j.Key, elapsed, err)
		}
	}

	// Dispatch. The feeding select observes cancellation, so after the
	// first failure no further job starts.
	dispatch := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range dispatch {
				runOne(i)
			}
		}()
	}
feed:
	for _, i := range pending {
		if runCtx.Err() != nil {
			break // cancellation wins over a simultaneously-ready send
		}
		select {
		case dispatch <- i:
		case <-runCtx.Done():
			break feed
		}
	}
	close(dispatch)
	wg.Wait()

	if len(errs) == 0 && ctx.Err() == nil {
		return results, nil
	}
	sort.Slice(errs, func(a, b int) bool { return errs[a].index < errs[b].index })
	joined := make([]error, 0, len(errs)+1)
	for _, e := range errs {
		joined = append(joined, e)
	}
	if err := ctx.Err(); err != nil {
		// External cancellation: surface it alongside any job errors.
		joined = append(joined, err)
	}
	return results, errors.Join(joined...)
}

// protect runs one job, converting a panic into an error that keeps
// the job's stack.
func protect[T any](ctx context.Context, j Job[T]) (res T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return j.Run(ctx)
}
