package engine

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins writing a CPU profile to path and returns
// the function that stops profiling and closes the file.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile writes an up-to-date allocation profile to path,
// running a GC first so the numbers reflect live memory rather than
// whatever the last collection happened to leave.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("memprofile: %w", err)
	}
	return f.Close()
}

// StartProfiles is the one profile-setup helper behind the
// -cpuprofile/-memprofile flag pair the cmd tools share: it starts a
// CPU profile when cpuPath is non-empty and returns a stop function
// that ends it and then writes the heap profile when memPath is
// non-empty. Either path may be empty; with both empty the returned
// stop is a no-op, so callers can defer it unconditionally.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var stopCPU func() error
	if cpuPath != "" {
		stopCPU, err = StartCPUProfile(cpuPath)
		if err != nil {
			return nil, err
		}
	}
	return func() error {
		var first error
		if stopCPU != nil {
			first = stopCPU()
		}
		if memPath != "" {
			if err := WriteHeapProfile(memPath); err != nil && first == nil {
				first = err
			}
		}
		return first
	}, nil
}
