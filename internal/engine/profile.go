package engine

import (
	"fmt"
	"os"
	"runtime/pprof"
)

// StartCPUProfile begins writing a CPU profile to path and returns
// the function that stops profiling and closes the file. It backs the
// -cpuprofile flag the cmd tools share.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}
