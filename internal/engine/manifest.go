package engine

import (
	"time"

	"github.com/chirplab/chirp/internal/obs"
)

// ManifestSink adapts an obs.Manifest into a Sink: every finished job
// appends one manifest row recording the job's key, wall time, outcome
// and the registry movement since the previous row. Combine it with a
// Reporter via MultiSink to get both progress lines and a durable
// record of the run.
//
// The manifest serialises rows internally, so the sink is safe for the
// engine's concurrent JobDone calls. Manifest.Record never fails a job:
// a write error is remembered by the manifest and surfaced by its
// Close, keeping telemetry failures out of the simulation results.
func ManifestSink(m *obs.Manifest) Sink { return manifestSink{m} }

type manifestSink struct{ m *obs.Manifest }

func (manifestSink) RunStart(total, resumed int) {}

func (s manifestSink) JobDone(k Key, elapsed time.Duration, err error) {
	s.m.Record(k.Scope, k.Workload, k.Policy, elapsed, err)
}

func (manifestSink) RunEnd() {}
