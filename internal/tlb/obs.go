package tlb

import "github.com/chirplab/chirp/internal/obs"

// Per-level TLB metric families in the default registry, labeled by
// the TLB's configured name ("L1 iTLB", "L1 dTLB", "L2 TLB", or
// whatever a custom geometry carries). Nothing here runs on the
// lookup/insert hot path: the TLB aggregates into its plain Stats
// struct as always, and PublishMetrics flushes deltas at run
// boundaries.
var (
	obsLookups = obs.Default.CounterVec("chirp_tlb_lookups_total",
		"Demand lookups per TLB level.", "level")
	obsHits = obs.Default.CounterVec("chirp_tlb_hits_total",
		"Demand lookup hits per TLB level.", "level")
	obsMisses = obs.Default.CounterVec("chirp_tlb_misses_total",
		"Demand lookup misses per TLB level.", "level")
	obsInserts = obs.Default.CounterVec("chirp_tlb_inserts_total",
		"Fills (demand and prefetch) per TLB level.", "level")
	obsPrefetchInserts = obs.Default.CounterVec("chirp_tlb_prefetch_inserts_total",
		"Prefetch fills per TLB level.", "level")
	obsEvictions = obs.Default.CounterVec("chirp_tlb_evictions_total",
		"Valid-entry evictions per TLB level.", "level")
)

// PublishMetrics implements obs.Publisher: it adds the TLB's counter
// movement since the previous publish to the per-level families in
// obs.Default. Simulation drivers call it once per finished run;
// calling it again publishes only what accrued in between, so partial
// publishes never double count.
func (t *TLB) PublishMetrics() {
	st, last := t.stats, t.published
	level := t.cfg.Name
	obsLookups.With(level).Add(st.Accesses - last.Accesses)
	obsHits.With(level).Add(st.Hits - last.Hits)
	obsMisses.With(level).Add(st.Misses - last.Misses)
	obsInserts.With(level).Add(st.Inserts - last.Inserts)
	obsPrefetchInserts.With(level).Add(st.PrefetchInserts - last.PrefetchInserts)
	obsEvictions.With(level).Add(st.Evictions - last.Evictions)
	t.published = st
}
