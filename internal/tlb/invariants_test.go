package tlb

import (
	"testing"
	"testing/quick"
)

// TestAccountingInvariants drives random access streams through a TLB
// with a FIFO policy and checks the counter identities that every
// driver depends on.
func TestAccountingInvariants(t *testing.T) {
	f := func(ops []uint16, instrBits []bool) bool {
		p := &fifoPolicy{}
		tl, err := New(Config{Name: "q", Entries: 32, Ways: 4, PageShift: 12}, p)
		if err != nil {
			return false
		}
		for i, op := range ops {
			instr := i < len(instrBits) && instrBits[i]
			a := &Access{PC: uint64(op) << 2, VPN: uint64(op % 97), Instr: instr}
			if _, hit := tl.Lookup(a); !hit {
				tl.Insert(a, a.VPN)
			}
		}
		st := tl.Stats()
		if st.Hits+st.Misses != st.Accesses {
			return false
		}
		if st.InstrAccess+st.DataAccess != st.Accesses {
			return false
		}
		if st.InstrMisses > st.InstrAccess || st.DataMisses > st.DataAccess {
			return false
		}
		if st.Evictions > st.Misses {
			return false
		}
		return st.Accesses == uint64(len(ops))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestLookupAfterInsertAlwaysHits is the fundamental TLB contract.
func TestLookupAfterInsertAlwaysHits(t *testing.T) {
	f := func(vpns []uint16) bool {
		tl, err := New(Config{Name: "q", Entries: 64, Ways: 8, PageShift: 12}, &fifoPolicy{})
		if err != nil {
			return false
		}
		for _, v := range vpns {
			a := &Access{VPN: uint64(v)}
			if _, hit := tl.Lookup(a); !hit {
				tl.Insert(a, uint64(v)*7)
			}
			// Immediately after a miss+insert (or a hit), the VPN must be
			// resident and translate consistently.
			b := &Access{VPN: uint64(v)}
			ppn, hit := tl.Lookup(b)
			if !hit || ppn != uint64(v)*7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestEfficiencyBounded checks 0 ≤ efficiency ≤ 1 under arbitrary
// streams.
func TestEfficiencyBounded(t *testing.T) {
	f := func(vpns []uint8) bool {
		tl, err := New(Config{Name: "q", Entries: 16, Ways: 4, PageShift: 12}, &fifoPolicy{})
		if err != nil {
			return false
		}
		for _, v := range vpns {
			a := &Access{VPN: uint64(v % 40)}
			if _, hit := tl.Lookup(a); !hit {
				tl.Insert(a, 1)
			}
		}
		tl.FlushAccounting()
		eff := tl.Stats().Efficiency()
		return eff >= 0 && eff <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
